//! A 5-point Jacobi stencil in all four code flavours, timed on the
//! out-of-order model: the workload class the paper's Fig. 8 evaluates
//! under "stencil".
//!
//! ```text
//! cargo run --release --example stencil
//! ```

use uve::cpu::CpuConfig;
use uve::kernels::jacobi::Jacobi2d;
use uve::kernels::{Benchmark, Flavor};

fn main() {
    let bench = Jacobi2d::new(64, 2);
    let cpu = CpuConfig::default();
    let mut baseline = None;
    for flavor in [Flavor::Scalar, Flavor::Neon, Flavor::Sve, Flavor::Uve] {
        let run = uve::kernels::run(&bench, flavor).expect("kernel runs");
        bench.check(&run.emulator).expect("kernel is correct");
        let core = uve::cpu::OoOCore::new(cpu.clone());
        let stats = core.run_warm(&run.result.trace);
        let cycles = stats.cycles;
        let speedup = match baseline {
            None => {
                baseline = Some(cycles);
                1.0
            }
            Some(b) => b as f64 / cycles as f64,
        };
        println!(
            "{flavor:>6}: {:>9} instructions, {:>9} cycles, {:>5.2}x vs scalar",
            run.result.committed, cycles, speedup
        );
    }
}
