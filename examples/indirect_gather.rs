//! Indirect streaming (`B[A[i]]`, the paper's Fig. 3.B5): builds the
//! descriptor by hand with `uve-stream`, walks the generated addresses, and
//! then runs the equivalent UVE program on the emulator.
//!
//! ```text
//! cargo run --release --example indirect_gather
//! ```

use uve::core::{EmuConfig, Emulator};
use uve::isa::assemble;
use uve::mem::Memory;
use uve::stream::{ElemWidth, IndirectBehaviour, Param, Pattern, Walker};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- descriptor level -------------------------------------------------
    let mut mem = Memory::new();
    let idx: Vec<i32> = vec![7, 2, 5, 0, 3, 6, 1, 4];
    let data: Vec<f32> = (0..8).map(|i| (i * i) as f32).collect();
    mem.write_i32_slice(0x1000, &idx);
    mem.write_f32_slice(0x2000, &data);

    let origin = Pattern::linear(0x1000, ElemWidth::Word, idx.len() as u64)?;
    let gather = Pattern::builder(0x2000, ElemWidth::Word)
        .dim(0, 1, 0)
        .indirect_outer(
            Param::Offset,
            IndirectBehaviour::SetAdd,
            origin,
            idx.len() as u64,
        )
        .build()?;

    print!("walker addresses:");
    for e in Walker::new(&gather).iter(&mem) {
        print!(" {:#x}", e.addr);
    }
    println!();

    // --- ISA level --------------------------------------------------------
    let program = assemble(
        "gather-sum",
        "
    li x10, 8
    li x11, 0x1000
    li x12, 0x2000
    li x13, 1
    li x6, 1
    ss.ld.w u2, x11, x10, x13          ; origin stream over the index table
    ss.ld.w.sta u0, x12, x6, x0        ; one element per origin value
    ss.end.ind.off.setadd u0, u2       ; offset = B[i]
    so.v.dup.w.fp u5, f31              ; accumulator = 0
loop:
    so.a.hadd.w.fp u6, u0, p0          ; one gathered element
    so.a.add.w.fp u5, u5, u6, p0
    so.b.nend u0, loop
    so.v.extr.f.w f1, u5[0]
    li x20, 0x3000
    fst.w f1, 0(x20)
    halt
",
    )?;
    let mut emu = Emulator::new(EmuConfig::default(), mem);
    emu.run(&program)?;
    let sum = emu.mem.read_f32(0x3000);
    let expect: f32 = idx.iter().map(|&i| data[i as usize]).sum();
    assert_eq!(sum, expect);
    println!("gathered sum via UVE streams: {sum} (expected {expect})");
    Ok(())
}
