//! The paper's Fig. 2: the maximum across the rows of three different
//! matrix access patterns — full, lower-triangular, and indirect — computed
//! by **the same UVE loop**; only the stream configuration changes
//! (feature F3: pattern complexity lives in descriptors, not code).
//!
//! ```text
//! cargo run --release --example matrix_max
//! ```

use uve::kernels::mamr::Mamr;
use uve::kernels::{run_checked, Flavor};

fn main() {
    let n = 64;
    for (label, bench) in [
        ("full matrix      ", Mamr::full(n)),
        ("lower triangular ", Mamr::diag(n)),
        ("indirect A[B[i]] ", Mamr::indirect(n)),
    ] {
        let uve = run_checked(&bench, Flavor::Uve).expect("correct");
        let scalar = run_checked(&bench, Flavor::Scalar).expect("correct");
        println!(
            "{label}: UVE {:>7} instructions vs scalar {:>7}  ({:.1}x fewer), loop code identical",
            uve.result.committed,
            scalar.result.committed,
            scalar.result.committed as f64 / uve.result.committed as f64,
        );
    }
}
