//! Quickstart: the paper's running example (Fig. 1.D / Fig. 4), end to end.
//!
//! Assembles the UVE saxpy kernel, executes it functionally, verifies the
//! result, and times it on the out-of-order model against the SVE-like
//! baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use uve::core::{EmuConfig, Emulator};
use uve::cpu::{CpuConfig, OoOCore};
use uve::isa::{assemble, FReg};
use uve::mem::Memory;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: usize = 4096;
    const A: f32 = 2.0;

    // The paper's Fig. 1.D: three streams configured at the loop preamble,
    // then a loop of two arithmetic instructions and one stream branch.
    let program = assemble(
        "saxpy",
        &format!(
            "
    li x10, {N}
    li x11, 0x100000       ; &x
    li x12, 0x200000       ; &y
    li x13, 1
    ss.ld.w u0, x11, x10, x13   ; u0 << x[...]
    ss.ld.w u1, x12, x10, x13   ; u1 << y[...]
    ss.st.w u2, x12, x10, x13   ; u2 >> y[...]
    so.v.dup.w.fp u3, f10       ; broadcast a
loop:
    so.a.mul.w.fp u4, u3, u0, p0
    so.a.add.w.fp u2, u4, u1, p0
    so.b.nend u0, loop
    halt
"
        ),
    )?;

    // Functional execution.
    let mut emu = Emulator::new(EmuConfig::default(), Memory::new());
    emu.set_f(FReg::FA0, f64::from(A));
    let x: Vec<f32> = (0..N).map(|i| i as f32).collect();
    let y: Vec<f32> = (0..N).map(|i| (2 * i) as f32).collect();
    emu.mem.write_f32_slice(0x100000, &x);
    emu.mem.write_f32_slice(0x200000, &y);
    let result = emu.run(&program)?;

    // Verify y = a*x + y.
    let out = emu.mem.read_f32_slice(0x200000, N);
    for i in 0..N {
        assert_eq!(out[i], A * x[i] + y[i], "y[{i}]");
    }
    println!(
        "functional: OK ({} committed instructions)",
        result.committed
    );
    println!(
        "streams: {} instances, {} total elements",
        result.trace.streams.len(),
        result
            .trace
            .streams
            .iter()
            .map(|s| s.elements())
            .sum::<u64>()
    );

    // Timing on the Cortex-A76-like model (Table I).
    let core = OoOCore::new(CpuConfig::default());
    let stats = core.run(&result.trace);
    println!(
        "timing: {} cycles, IPC {:.2}, bus utilization {:.1}%",
        stats.cycles,
        stats.ipc(),
        100.0 * stats.bus_utilization
    );
    Ok(())
}
