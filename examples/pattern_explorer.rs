//! Pattern explorer: reproduces the five example patterns of the paper's
//! Fig. 3.B with hierarchical descriptors and prints the exact address
//! sequences the Streaming Engine would generate.
//!
//! ```text
//! cargo run --release --example pattern_explorer
//! ```

use uve::stream::{
    Behaviour, ElemWidth, IndirectBehaviour, NoMemory, Param, Pattern, SliceMemory, Walker,
};

fn show(name: &str, pattern: &Pattern, mem: &SliceMemory) {
    let addrs: Vec<u64> = Walker::new(pattern).iter(mem).map(|e| e.addr / 4).collect();
    println!("{name:<24} {addrs:?}");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let no_data = SliceMemory::new(vec![]);
    let _ = NoMemory;

    // B1: linear
    let b1 = Pattern::linear(0, ElemWidth::Word, 8)?;
    show("B1 linear", &b1, &no_data);

    // B2: rectangular (3×4 row-major matrix)
    let b2 = Pattern::builder(0, ElemWidth::Word)
        .dim(0, 4, 1)
        .dim(0, 3, 4)
        .build()?;
    show("B2 rectangular", &b2, &no_data);

    // B3: rectangular scattered (every other row / element)
    let b3 = Pattern::builder(0, ElemWidth::Word)
        .dim(0, 2, 2)
        .dim(0, 2, 8)
        .build()?;
    show("B3 scattered", &b3, &no_data);

    // B4: lower triangular (static size modifier)
    let b4 = Pattern::builder(0, ElemWidth::Word)
        .dim(0, 0, 1)
        .dim(0, 4, 4)
        .static_mod(Param::Size, Behaviour::Add, 1, 4)
        .build()?;
    show("B4 lower triangular", &b4, &no_data);

    // B5: indirection B[A[i]] with A = [3, 0, 2, 1]
    let indices = SliceMemory::new(vec![3, 0, 2, 1]);
    let origin = Pattern::linear(0, ElemWidth::Word, 4)?;
    let b5 = Pattern::builder(0, ElemWidth::Word)
        .dim(0, 1, 0)
        .indirect_outer(Param::Offset, IndirectBehaviour::SetAdd, origin, 4)
        .build()?;
    show("B5 indirect", &b5, &indices);

    Ok(())
}
