#!/usr/bin/env bash
# Repo CI gate. Runs entirely offline: the workspace has no registry
# dependencies (see the `proptest`/`bench` marker features in the crate
# manifests), so every step must pass with the network unplugged.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: build + tests (offline) =="
cargo build --release --workspace --offline
cargo test -q --workspace --offline

echo "CI OK"
