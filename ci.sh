#!/usr/bin/env bash
# Repo CI gate. Runs entirely offline: the workspace has no registry
# dependencies (see the `bench` marker feature in uve-bench; the randomized
# suites run on the in-tree uve-conform generator), so every step must pass
# with the network unplugged.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: build + tests (offline) =="
cargo build --release --workspace --offline
cargo test -q --workspace --offline

echo "== conformance: fuzz smoke (fixed seed, offline) =="
# Bounded differential-fuzz run; deterministic for a given seed, so a
# failure here is reproducible with the printed (engine, seed, case).
# The checked-in regression corpus replays as part of `cargo test` above.
./target/release/uve-conform --engine all --seed 7 --cases 2000 --quiet

echo "== fault subsystem: conform smoke + watchdog + poisoned-job isolation =="
# 2000 dedicated fault-engine cases: never panic, recover bit-identically,
# keep the cycle accounting conserved under injection (the `all` run above
# only gives the fault engine a tenth of the budget).
./target/release/uve-conform --engine fault --seed 7 --cases 2000 --quiet
# The no-retire watchdog must turn a deadlocked timing run into a
# catchable diagnostic dump rather than a hang.
cargo test -q -p uve-cpu --offline watchdog_dumps_accounting_on_deadlock
# One poisoned job must not take down a sweep: pool-level catch_unwind
# isolation and the runner's repro-line reporting.
cargo test -q -p uve-bench --offline panicking_item_is_isolated
cargo test -q -p uve-bench --offline poisoned_job_is_isolated_and_reported
cargo test -q --offline --test fault_recovery

echo "== multicore: coherence smoke + scheduling determinism =="
# 2-core sharded run over three kernels: nonzero cross-core snoop traffic,
# single-writer MOESI invariant verified on every event plus a periodic
# full scan, per-core/per-program cycle conservation — all asserted inside
# the binary. Serial and 8-worker sweeps must print bit-identical tables.
./target/release/smp --small --kernels memcpy,saxpy,stream --cores 1,2 \
    --check-every 64 --quiet --serial > target/smp_serial.txt
./target/release/smp --small --kernels memcpy,saxpy,stream --cores 1,2 \
    --check-every 64 --quiet --jobs 8 > target/smp_jobs8.txt
diff -u target/smp_serial.txt target/smp_jobs8.txt
# 200 dedicated smp-engine cases: coherence, conservation, liveness,
# determinism, and architecturally invisible context switching (the `all`
# run above only gives the smp engine a twentieth of the budget).
./target/release/uve-conform --engine smp --seed 7 --cases 200 --quiet

echo "== indirect packing: both-mode conform smoke + MAMR-Ind assertion =="
# The pattern and kernel engines diff packed AND unpacked chunking against
# the same oracle on every case (the `all` run above splits its budget);
# give each a dedicated slice so both packing modes get real coverage.
./target/release/uve-conform --engine pattern --seed 7 --cases 4000 --quiet
./target/release/uve-conform --engine kernel --seed 7 --cases 200 --quiet
# Packed/unpacked A/B over the full suite: asserts every kernel without an
# indirect modifier is bit-identical across modes.
./target/release/packing --quiet > /dev/null
# Headline JSON: asserts the packed MAMR-Ind speedup vs scalar stays >= 1.0x
# (the paper-deviation fix this gate exists to protect) and refreshes the
# checked-in perf-trajectory artifact; fail if the numbers drifted.
./target/release/fig8 --panel b --quiet --json BENCH_fig8.json > /dev/null
git diff --exit-code -- BENCH_fig8.json

echo "== assembler + DSP/sparse families: asm smoke, family conformance, drift gate =="
# 2000 dedicated asm-engine cases: assemble->disassemble->assemble text
# fixpoints on decorated programs, `.include` split equivalence, and
# hostile byte-level mutants that must produce spanned typed errors or
# reassemblable programs, never panics.
./target/release/uve-conform --engine asm --seed 7 --cases 2000 --quiet
# A wider kernel-engine slice than the packing section's 200 cases, so the
# DSP and sparse family arms (6 of the 25 kernel variants the generator
# draws from) get real coverage — including the `.uve`-text UVE flavors.
./target/release/uve-conform --engine kernel --seed 7 --cases 600 --quiet
# Per-kernel vs-scalar ratios for both families. In-binary asserts: no
# kernel below 0.95x of its scalar twin (Histogram is scatter-serialized
# parity by design) and each family's geomean >= 1.0x; the JSON artifact
# is drift-gated like BENCH_fig8.json.
./target/release/dsp --quiet --json BENCH_dsp.json > /dev/null
git diff --exit-code -- BENCH_dsp.json

echo "== translated execution: throughput gate + interpreter-differential smoke =="
# Emulated-instruction throughput over the 19-kernel suite × 4 flavors in
# both execution modes. In-binary asserts: every point bit-identical across
# modes, serial == --jobs, and the dispatch-bound scalar flavor >= 5x. The
# JSON artifact's deterministic suite section (point count, committed
# instructions, state digest) is drift-gated like BENCH_fig8.json; the
# Minst/s numbers are machine-local reference only and do not churn the
# file.
./target/release/emu --quiet --json BENCH_emu.json > /dev/null
git diff --exit-code -- BENCH_emu.json
# 2000 dedicated exec-engine cases: random kernels/flavors/vector lengths
# diffed between interpreter and translated mode — full traces, digests,
# memory, sliced resume and fault rollback (the `all` run above only gives
# the exec engine a tenth of the budget).
./target/release/uve-conform --engine exec --seed 7 --cases 2000 --quiet

echo "== distributed sweeps: coordinator + 2 workers vs serial, warm cache =="
# A real coordinator process and two real worker processes over loopback
# TCP, sweeping a small grid twice. Pass 1 must be byte-identical to the
# in-process serial baseline; pass 2 must be served entirely from the
# content-addressed result cache (--expect-cached exits nonzero if any
# point was re-executed). Zero re-emulation is further asserted by
# counters in tests/sweep_service.rs.
./target/release/uve-sweep serve --bind 127.0.0.1:0 --no-persist > target/sweep_listen.txt &
SWEEP_PIDS=($!)
trap 'kill "${SWEEP_PIDS[@]}" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    grep -q '^LISTEN ' target/sweep_listen.txt 2>/dev/null && break
    sleep 0.1
done
SWEEP_ADDR=$(awk '/^LISTEN /{print $2; exit}' target/sweep_listen.txt)
./target/release/uve-sweep worker --connect "$SWEEP_ADDR" --name ci-w0 &
SWEEP_PIDS+=($!)
./target/release/uve-sweep worker --connect "$SWEEP_ADDR" --name ci-w1 &
SWEEP_PIDS+=($!)
SWEEP_GRID=(--small --kernels memcpy,saxpy,gemm --flavors uve,scalar)
./target/release/uve-sweep serial "${SWEEP_GRID[@]}" > target/sweep_serial.txt
./target/release/uve-sweep run --connect "$SWEEP_ADDR" --quiet \
    "${SWEEP_GRID[@]}" > target/sweep_dist.txt
diff -u target/sweep_serial.txt target/sweep_dist.txt
./target/release/uve-sweep run --connect "$SWEEP_ADDR" --quiet --expect-cached \
    "${SWEEP_GRID[@]}" > target/sweep_warm.txt
diff -u target/sweep_serial.txt target/sweep_warm.txt
./target/release/uve-sweep shutdown --connect "$SWEEP_ADDR"
wait "${SWEEP_PIDS[@]}"
trap - EXIT
# 500 dedicated sweep-engine cases: wire-codec fixpoint round trips,
# hostile decodes (truncation, bit flips, garbage) never panic,
# shuffled-completion-order merges stay bit-identical, and durable-cache
# WAL/snapshot images survive truncation/bit-flip/garbage without panics
# (the `all` run above only gives the sweep engine a sliver of the budget).
./target/release/uve-conform --engine sweep --seed 7 --cases 500 --quiet

echo "== crash safety: kill -9 + torn WAL recovery, snapshot replay, stable fingerprints =="
# The durable cache is only durable if job keys are stable across builds;
# the golden-fingerprint pins are what hold that contract (also covered by
# tier-1, repeated here so this gate is self-contained).
cargo test -q --offline --test fingerprint_golden
rm -rf target/sweep-cache
CRASH_GRID=(--small --kernels memcpy,saxpy --flavors uve,scalar)
./target/release/uve-sweep serial "${CRASH_GRID[@]}" > target/sweep_crash_serial.txt
start_crash_serve() {
    : > target/sweep_crash_listen.txt
    ./target/release/uve-sweep serve --bind 127.0.0.1:0 --workers 2 \
        --cache-dir target/sweep-cache > target/sweep_crash_listen.txt 2> target/sweep_crash_err.txt &
    CRASH_PID=$!
    for _ in $(seq 1 100); do
        grep -q '^LISTEN ' target/sweep_crash_listen.txt 2>/dev/null && break
        sleep 0.1
    done
    CRASH_ADDR=$(awk '/^LISTEN /{print $2; exit}' target/sweep_crash_listen.txt)
}
trap 'kill -9 "$CRASH_PID" 2>/dev/null || true' EXIT
# Pass 1 populates the WAL; SIGKILL denies the coordinator any chance to
# checkpoint or flush, then the WAL tail is torn like an interrupted append.
start_crash_serve
./target/release/uve-sweep run --connect "$CRASH_ADDR" --quiet "${CRASH_GRID[@]}" > /dev/null
kill -9 "$CRASH_PID"; wait "$CRASH_PID" 2>/dev/null || true
truncate -s -5 target/sweep-cache/wal.bin
# Pass 2 restarts from the torn cache: the torn row re-executes (so no
# --expect-cached yet), and the merged table must still match serial
# byte-for-byte. The replay immediately after must then be fully cached.
start_crash_serve
./target/release/uve-sweep run --connect "$CRASH_ADDR" --quiet \
    "${CRASH_GRID[@]}" > target/sweep_crash_recovered.txt
diff -u target/sweep_crash_serial.txt target/sweep_crash_recovered.txt
./target/release/uve-sweep run --connect "$CRASH_ADDR" --quiet --expect-cached \
    "${CRASH_GRID[@]}" > target/sweep_crash_warm.txt
diff -u target/sweep_crash_serial.txt target/sweep_crash_warm.txt
# Graceful shutdown checkpoints the WAL into a snapshot; a third
# incarnation must be fully cached from disk alone.
./target/release/uve-sweep shutdown --connect "$CRASH_ADDR"
wait "$CRASH_PID" 2>/dev/null || true
start_crash_serve
./target/release/uve-sweep run --connect "$CRASH_ADDR" --quiet --expect-cached \
    "${CRASH_GRID[@]}" > target/sweep_crash_snap.txt
diff -u target/sweep_crash_serial.txt target/sweep_crash_snap.txt
./target/release/uve-sweep shutdown --connect "$CRASH_ADDR"
wait "$CRASH_PID" 2>/dev/null || true
trap - EXIT

echo "== observability: --explain smoke + golden trace (offline) =="
# One figure run with stall attribution: maybe_explain() panics unless the
# cycle-accounting conservation laws hold for every kernel in the table.
./target/release/fig8 --panel e --explain --quiet > /dev/null
# The Chrome trace exporter must reproduce the checked-in golden snapshot
# byte-for-byte (regenerate with the same command if the model changes).
./target/release/trace --tiny-saxpy --out target/tiny_saxpy_trace.json
diff -u crates/uve-bench/tests/golden/saxpy_tiny_trace.json \
    target/tiny_saxpy_trace.json

echo "CI OK"
