#!/usr/bin/env bash
# Repo CI gate. Runs entirely offline: the workspace has no registry
# dependencies (see the `bench` marker feature in uve-bench; the randomized
# suites run on the in-tree uve-conform generator), so every step must pass
# with the network unplugged.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: build + tests (offline) =="
cargo build --release --workspace --offline
cargo test -q --workspace --offline

echo "== conformance: fuzz smoke (fixed seed, offline) =="
# Bounded differential-fuzz run; deterministic for a given seed, so a
# failure here is reproducible with the printed (engine, seed, case).
# The checked-in regression corpus replays as part of `cargo test` above.
./target/release/uve-conform --engine all --seed 7 --cases 2000 --quiet

echo "CI OK"
