//! Crash-recovery integration test against the real `uve-sweep` binary:
//! a coordinator process is `kill -9`'d mid-sweep and restarted from the
//! same `--cache-dir`. The restarted service must (a) recover every row
//! the dead incarnation finished, (b) produce a merged table bit-identical
//! to `uve-sweep serial`, and (c) serve a warm replay entirely from the
//! cache — zero new emulations — across the process boundary.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use uve_kernels::Flavor;
use uve_sweep::{request_sweep, run_serial, SweepSpec};

struct Serve {
    child: Child,
    addr: String,
}

/// Starts `uve-sweep serve --cache-dir <dir> --workers 2` and parses the
/// `LISTEN <addr>` line for the ephemeral port.
fn serve(dir: &std::path::Path) -> Serve {
    let mut child = Command::new(env!("CARGO_BIN_EXE_uve-sweep"))
        .args(["serve", "--workers", "2", "--cache-dir"])
        .arg(dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn uve-sweep serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read LISTEN line");
    let addr = line
        .trim()
        .strip_prefix("LISTEN ")
        .unwrap_or_else(|| panic!("expected LISTEN line, got {line:?}"))
        .to_string();
    Serve { child, addr }
}

fn grid() -> SweepSpec {
    SweepSpec {
        small: true,
        kernels: ["saxpy", "memcpy", "gemm", "mvt"]
            .map(str::to_string)
            .to_vec(),
        flavors: vec![Flavor::Uve, Flavor::Scalar],
        ..SweepSpec::default()
    }
}

#[test]
fn kill_dash_nine_mid_sweep_recovers_bit_identically() {
    let dir = std::env::temp_dir().join(format!("uve-sweep-kill9-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = grid();

    // Incarnation 1: start a sweep, SIGKILL the whole process the moment
    // two jobs have completed (and were durably logged).
    let mut first = serve(&dir);
    let done = Arc::new(AtomicU32::new(0));
    let client_err = std::thread::scope(|s| {
        let sweeper = {
            let addr = first.addr.clone();
            let spec = spec.clone();
            let done = Arc::clone(&done);
            s.spawn(move || {
                request_sweep(&addr, &spec, |d, _, _| {
                    done.fetch_max(d, Ordering::SeqCst);
                })
            })
        };
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        while done.load(Ordering::SeqCst) < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "timed out waiting for two finished jobs"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        first.child.kill().expect("SIGKILL the coordinator");
        sweeper.join().unwrap()
    });
    let _ = first.child.wait();
    client_err.expect_err("the killed sweep must fail at the client");

    // The WAL exists and holds the finished rows; its tail may be torn
    // (the kill can land mid-append) — recovery must not care.
    assert!(dir.join("wal.bin").exists(), "WAL written before the kill");

    // Incarnation 2: same cache dir, fresh port. The sweep completes,
    // bit-identical to serial, re-executing only what the kill lost.
    let second = serve(&dir);
    let out = request_sweep(&second.addr, &spec, |_, _, _| {}).expect("post-restart sweep");
    let (serial, serial_emulations) = run_serial(&spec).unwrap();
    assert_eq!(out.rows, serial, "recovered sweep bit-identical to serial");
    assert!(
        out.stats.cached >= 2,
        "rows finished before the kill must be cache hits: {:?}",
        out.stats
    );
    assert!(
        out.stats.emulations < serial_emulations,
        "recovery must re-emulate strictly less than a cold run: {:?}",
        out.stats
    );

    // Warm replay on the same incarnation: fully cached, zero fresh
    // emulation — and the emulation counter is stable across replays.
    let warm = request_sweep(&second.addr, &spec, |_, _, _| {}).expect("warm replay");
    assert_eq!(warm.rows, serial, "warm replay bit-identical");
    assert_eq!(warm.stats.cached, warm.stats.total, "fully cached");
    assert_eq!(warm.stats.executed, 0);
    assert_eq!(
        warm.stats.emulations, out.stats.emulations,
        "no new emulation work across the replay"
    );

    // Kill incarnation 2 and restart once more: the *cold-start* replay
    // (everything from disk, nothing in memory) is also fully cached.
    let mut second = second;
    second.child.kill().expect("kill incarnation 2");
    let _ = second.child.wait();
    let mut third = serve(&dir);
    let cold = request_sweep(&third.addr, &spec, |_, _, _| {}).expect("cold warm replay");
    assert_eq!(cold.rows, serial, "cold replay bit-identical");
    assert_eq!(
        cold.stats.cached, cold.stats.total,
        "cold replay fully cached"
    );
    assert_eq!(cold.stats.executed, 0, "zero re-executions after restart");

    third.child.kill().ok();
    let _ = third.child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
