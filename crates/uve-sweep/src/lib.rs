//! Distributed sweep service for the UVE evaluation.
//!
//! A persistent **coordinator** accepts sweep requests — kernel × flavor ×
//! vector-length × cores × fault-seed grids over the same `Runner`/`Job`
//! machinery the figure binaries use — shards the grid across **worker**
//! processes over a length-prefixed TCP protocol ([`messages`]), streams
//! progress back to clients, and memoizes finished rows in a
//! content-addressed [`ResultCache`] keyed by the full job identity
//! ([`spec::job_key`]): functional knobs, timing configuration,
//! [`ExecMode`](uve_core::ExecMode) and
//! [`IndirectPacking`](uve_core::IndirectPacking).
//!
//! The headline invariant, enforced end-to-end by the `sweep_service`
//! integration tests and the `sweep` conformance engine: **a sweep's merged
//! output is bit-identical to a serial in-process run**
//! ([`spec::run_serial`]) regardless of worker count, request interleaving,
//! cache hits, or workers dying mid-sweep. Workers run jobs under the same
//! isolation the PR-4 pool uses (`catch_unwind` plus cooperative
//! deadlines), the coordinator requeues jobs lost to worker death or
//! timeout with bounded retries, and a repeated identical sweep performs
//! **zero** new functional emulations — observable through the
//! `emulations` counter carried in
//! [`SweepStats`](spec::SweepStats).
//!
//! The service is additionally **crash-safe** (PR 9): the cache can run
//! durably over a checksummed write-ahead log with checkpoint snapshots
//! ([`wal`], [`cache`]) so a `kill -9`'d coordinator restarted from the
//! same `--cache-dir` replays finished rows instead of re-executing them;
//! job keys are build-stable FNV-1a fingerprints
//! ([`uve_core::program_fingerprint`]) so that durability means something
//! across binaries; workers stream [`Msg::Heartbeat`] during long jobs so
//! the coordinator distinguishes slow from dead; and clients can ride out
//! coordinator restarts with [`request_sweep_resilient`] (capped,
//! jittered exponential backoff plus idempotent resubmission).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
pub mod coordinator;
pub mod messages;
pub mod spec;
mod sync;
pub mod wal;
pub mod worker;

pub use cache::{PersistError, RecoveryReport, ResultCache};
pub use client::{
    ping, request_sweep, request_sweep_resilient, shutdown, ReconnectPolicy, SweepFailure,
    SweepOutcome,
};
pub use coordinator::{Coordinator, CoordinatorOptions};
pub use messages::{read_msg, write_msg, Msg, WireError, PROTOCOL_VERSION};
pub use spec::{
    catalog, job_key, render_rows, resolve, rows_digest, run_point, run_serial, run_serial_on,
    Assembly, PointRow, PointSpec, SweepSpec, SweepStats,
};
pub use worker::{run_worker, WorkerOptions};
