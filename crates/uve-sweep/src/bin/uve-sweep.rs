//! The distributed sweep service CLI.
//!
//! Subcommands:
//!
//! - `serve [--bind ADDR] [--workers N] [--max-attempts N] [--job-timeout S]
//!   [--cache-dir DIR | --no-persist] [--verbose]` — run a coordinator
//!   (prints `LISTEN <addr>` once bound; `--workers` spawns in-process
//!   worker threads so one command is a whole fleet). The result cache is
//!   durable by default (WAL + snapshots under `uve-sweep-cache/`, or
//!   `--cache-dir DIR`); `--no-persist` keeps it purely in memory;
//! - `worker --connect ADDR [--name S] [--exec-mode interpret|translated]
//!   [--die-after N] [--panic-on KERNEL] [--job-timeout S] [--verbose]` —
//!   run one worker against a coordinator;
//! - `run --connect ADDR <grid flags> [--expect-cached]` — submit a sweep
//!   and print the merged rows (stdout carries only the table, so it can
//!   be diffed against `serial`). Submission rides the reconnecting
//!   client: dropped connections and coordinator restarts back off and
//!   resubmit idempotently;
//! - `serial <grid flags>` — the in-process serial baseline, printing the
//!   byte-identical table any coordinator run must match;
//! - `fig8 --connect ADDR [--small]` — render the Fig. 8 speed-up panel
//!   from a distributed sweep;
//! - `ping --connect ADDR` / `shutdown --connect ADDR`.
//!
//! Grid flags (for `run`/`serial`): `--small`, `--kernels a,b,..`,
//! `--flavors uve,sve,neon,scalar`, `--levels l1,l2,mem`,
//! `--packings packed,unpacked`, `--exec-modes interpret,translated`,
//! `--fault-seeds 0,7,..`, `--cores 1,2,..`, `--vec-prfs 0,96,..`,
//! `--fifo-depths 0,16,..`. Unset axes take their defaults.

use std::process::ExitCode;
use std::time::Duration;

use uve_bench::{geomean, parse_exec_mode};
use uve_core::IndirectPacking;
use uve_isa::MemLevel;
use uve_kernels::Flavor;
use uve_sweep::{
    ping, render_rows, request_sweep, request_sweep_resilient, run_serial, run_worker, shutdown,
    Coordinator, CoordinatorOptions, ReconnectPolicy, SweepSpec, WorkerOptions,
};

fn fail(msg: &str) -> ExitCode {
    eprintln!("uve-sweep: {msg}");
    ExitCode::FAILURE
}

/// Pulls `--flag value` out of `args`, removing both tokens.
fn take_opt(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("uve-sweep: {flag} needs a value");
        std::process::exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

/// Pulls a boolean `--flag` out of `args`.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn parse_list<T>(s: &str, what: &str, f: impl Fn(&str) -> Option<T>) -> Result<Vec<T>, String> {
    s.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| f(p.trim()).ok_or_else(|| format!("bad {what}: {p:?}")))
        .collect()
}

fn parse_flavor(s: &str) -> Option<Flavor> {
    match s.to_ascii_lowercase().as_str() {
        "uve" => Some(Flavor::Uve),
        "sve" => Some(Flavor::Sve),
        "neon" => Some(Flavor::Neon),
        "scalar" => Some(Flavor::Scalar),
        _ => None,
    }
}

fn parse_level(s: &str) -> Option<MemLevel> {
    match s.to_ascii_lowercase().as_str() {
        "l1" => Some(MemLevel::L1),
        "l2" => Some(MemLevel::L2),
        "mem" | "dram" => Some(MemLevel::Mem),
        _ => None,
    }
}

fn parse_packing(s: &str) -> Option<IndirectPacking> {
    match s.to_ascii_lowercase().as_str() {
        "packed" => Some(IndirectPacking::Packed),
        "unpacked" => Some(IndirectPacking::Unpacked),
        _ => None,
    }
}

/// Builds a [`SweepSpec`] from the shared grid flags.
fn grid_spec(args: &mut Vec<String>) -> Result<SweepSpec, String> {
    let mut spec = SweepSpec {
        small: take_flag(args, "--small"),
        ..SweepSpec::default()
    };
    if let Some(v) = take_opt(args, "--kernels") {
        spec.kernels = v.split(',').map(|s| s.trim().to_string()).collect();
    }
    if let Some(v) = take_opt(args, "--flavors") {
        spec.flavors = parse_list(&v, "flavor", parse_flavor)?;
    }
    if let Some(v) = take_opt(args, "--levels") {
        spec.levels = parse_list(&v, "level", parse_level)?;
    }
    if let Some(v) = take_opt(args, "--packings") {
        spec.packings = parse_list(&v, "packing", parse_packing)?;
    }
    if let Some(v) = take_opt(args, "--exec-modes") {
        spec.execs = parse_list(&v, "exec mode", parse_exec_mode)?;
    }
    if let Some(v) = take_opt(args, "--fault-seeds") {
        spec.fault_seeds = parse_list(&v, "fault seed", |s| s.parse().ok())?;
    }
    if let Some(v) = take_opt(args, "--cores") {
        spec.cores = parse_list(&v, "core count", |s| s.parse().ok())?;
    }
    if let Some(v) = take_opt(args, "--vec-prfs") {
        spec.vec_prfs = parse_list(&v, "vec-prf", |s| s.parse().ok())?;
    }
    if let Some(v) = take_opt(args, "--fifo-depths") {
        spec.fifo_depths = parse_list(&v, "fifo depth", |s| s.parse().ok())?;
    }
    Ok(spec)
}

fn need_connect(args: &mut Vec<String>) -> Result<String, String> {
    take_opt(args, "--connect").ok_or_else(|| "--connect ADDR is required".to_string())
}

fn secs(v: Option<String>, what: &str) -> Result<Option<Duration>, String> {
    v.map(|s| {
        s.parse::<u64>()
            .map(Duration::from_secs)
            .map_err(|_| format!("bad {what}: {s:?}"))
    })
    .transpose()
}

fn cmd_serve(mut args: Vec<String>) -> Result<(), String> {
    let bind = take_opt(&mut args, "--bind").unwrap_or_else(|| "127.0.0.1:0".to_string());
    let workers: usize = take_opt(&mut args, "--workers")
        .map(|s| s.parse().map_err(|_| format!("bad --workers: {s:?}")))
        .transpose()?
        .unwrap_or(0);
    let verbose = take_flag(&mut args, "--verbose");
    let mut opts = CoordinatorOptions {
        quiet: !verbose,
        ..CoordinatorOptions::default()
    };
    if let Some(n) = take_opt(&mut args, "--max-attempts") {
        opts.max_attempts = n
            .parse()
            .map_err(|_| format!("bad --max-attempts: {n:?}"))?;
    }
    if let Some(t) = secs(take_opt(&mut args, "--job-timeout"), "--job-timeout")? {
        opts.job_timeout = t;
    }
    let cache_dir = take_opt(&mut args, "--cache-dir");
    let no_persist = take_flag(&mut args, "--no-persist");
    if cache_dir.is_some() && no_persist {
        return Err("--cache-dir and --no-persist are mutually exclusive".to_string());
    }
    // Durable by default: crash-safety should not require remembering a
    // flag. `--no-persist` restores the purely in-memory cache.
    opts.cache_dir = if no_persist {
        None
    } else {
        Some(
            cache_dir
                .unwrap_or_else(|| "uve-sweep-cache".to_string())
                .into(),
        )
    };
    reject_leftovers(&args)?;
    let coordinator = Coordinator::bind(&bind, opts).map_err(|e| format!("bind {bind}: {e}"))?;
    if let Some(report) = coordinator.recovery() {
        eprintln!(
            "uve-sweep: recovered {} cached rows ({} from snapshot, {} from WAL){}{}",
            report.rows(),
            report.snapshot_rows,
            report.wal_rows,
            if report.corrupt_records > 0 {
                format!("; skipped {} corrupt records", report.corrupt_records)
            } else {
                String::new()
            },
            if report.truncated_tail {
                "; dropped a torn WAL tail"
            } else {
                ""
            },
        );
    }
    let addr = coordinator.local_addr();
    // The smoke scripts and tests parse this line for the ephemeral port.
    println!("LISTEN {addr}");
    let mut fleet = Vec::new();
    for i in 0..workers {
        let worker_opts = WorkerOptions {
            name: format!("inproc-{i}"),
            quiet: !verbose,
            ..WorkerOptions::default()
        };
        let worker_addr = addr.to_string();
        fleet.push(std::thread::spawn(move || {
            if let Err(e) = run_worker(&worker_addr, &worker_opts) {
                eprintln!("uve-sweep: in-process worker {i}: {e}");
            }
        }));
    }
    while !coordinator.is_shutdown() {
        std::thread::sleep(Duration::from_millis(100));
    }
    coordinator.shutdown();
    for h in fleet {
        let _ = h.join();
    }
    Ok(())
}

fn cmd_worker(mut args: Vec<String>) -> Result<(), String> {
    let addr = need_connect(&mut args)?;
    let mut opts = WorkerOptions {
        quiet: !take_flag(&mut args, "--verbose"),
        ..WorkerOptions::default()
    };
    if let Some(n) = take_opt(&mut args, "--name") {
        opts.name = n;
    }
    if let Some(m) = take_opt(&mut args, "--exec-mode") {
        opts.exec_override =
            Some(parse_exec_mode(&m).ok_or_else(|| format!("bad --exec-mode: {m:?}"))?);
    }
    if let Some(n) = take_opt(&mut args, "--die-after") {
        opts.die_after = Some(n.parse().map_err(|_| format!("bad --die-after: {n:?}"))?);
    }
    if let Some(k) = take_opt(&mut args, "--panic-on") {
        opts.panic_on = Some(k);
    }
    if let Some(t) = secs(take_opt(&mut args, "--job-timeout"), "--job-timeout")? {
        opts.job_timeout = t;
    }
    reject_leftovers(&args)?;
    run_worker(&addr, &opts)
}

fn cmd_run(mut args: Vec<String>) -> Result<(), String> {
    let addr = need_connect(&mut args)?;
    let expect_cached = take_flag(&mut args, "--expect-cached");
    let quiet = take_flag(&mut args, "--quiet");
    let spec = grid_spec(&mut args)?;
    reject_leftovers(&args)?;
    let outcome = request_sweep_resilient(
        || addr.clone(),
        &spec,
        &ReconnectPolicy::default(),
        |done, total, cached| {
            if !quiet {
                eprintln!("progress: {done}/{total} ({cached} cached)");
            }
        },
    )
    .map_err(|e| e.to_string())?;
    // Stdout carries only the table, byte-identical to `serial`.
    print!("{}", render_rows(&outcome.rows));
    eprintln!(
        "stats: total={} cached={} joined={} executed={} retries={} worker_deaths={} emulations={}",
        outcome.stats.total,
        outcome.stats.cached,
        outcome.stats.joined,
        outcome.stats.executed,
        outcome.stats.retries,
        outcome.stats.worker_deaths,
        outcome.stats.emulations,
    );
    if expect_cached && outcome.stats.cached != outcome.stats.total {
        return Err(format!(
            "expected a fully cached sweep, but only {}/{} points hit the cache",
            outcome.stats.cached, outcome.stats.total
        ));
    }
    Ok(())
}

fn cmd_serial(mut args: Vec<String>) -> Result<(), String> {
    let spec = grid_spec(&mut args)?;
    reject_leftovers(&args)?;
    let (rows, emulations) = run_serial(&spec)?;
    print!("{}", render_rows(&rows));
    eprintln!("stats: total={} emulations={emulations}", rows.len());
    Ok(())
}

/// Fig. 8 panel B (speed-up over scalar) rendered from a distributed
/// sweep: one request covering the whole catalog in both flavours; the
/// coordinator shards it, and the client reduces the merged rows.
fn cmd_fig8(mut args: Vec<String>) -> Result<(), String> {
    let addr = need_connect(&mut args)?;
    let spec = SweepSpec {
        small: take_flag(&mut args, "--small"),
        flavors: vec![Flavor::Uve, Flavor::Scalar],
        ..SweepSpec::default()
    };
    reject_leftovers(&args)?;
    let outcome = request_sweep(&addr, &spec, |_, _, _| {})?;
    println!("=== Fig. 8.B speed-up over scalar (distributed sweep) ===");
    let mut ratios = Vec::new();
    // Canonical order: for each kernel, Uve then Scalar.
    for pair in outcome.rows.chunks(2) {
        let [uve, scalar] = pair else { continue };
        let speedup = scalar.cycles as f64 / uve.cycles as f64;
        ratios.push(speedup);
        println!("{:<16} {speedup:>8.2}x", uve.point.kernel);
    }
    println!("{:<16} {:>8.2}x", "geomean", geomean(&ratios));
    Ok(())
}

fn reject_leftovers(args: &[String]) -> Result<(), String> {
    if args.is_empty() {
        Ok(())
    } else {
        Err(format!("unrecognized arguments: {args:?}"))
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: uve-sweep <serve|worker|run|serial|fig8|ping|shutdown> [options]\n\
         see crate docs (src/bin/uve-sweep.rs) for the full flag list"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let cmd = args.remove(0);
    let result = match cmd.as_str() {
        "serve" => cmd_serve(args),
        "worker" => cmd_worker(args),
        "run" => cmd_run(args),
        "serial" => cmd_serial(args),
        "fig8" => cmd_fig8(args),
        "ping" => {
            let mut args = args;
            need_connect(&mut args).and_then(|addr| ping(&addr).map(|()| println!("PONG {addr}")))
        }
        "shutdown" => {
            let mut args = args;
            need_connect(&mut args).and_then(|addr| shutdown(&addr))
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&e),
    }
}
