//! The wire protocol of the sweep service: typed messages over
//! length-prefixed frames.
//!
//! Every frame is a little-endian `u32` payload length followed by the
//! payload; the payload is a tag byte followed by the message fields.
//! Integers are fixed-width little-endian, strings are a `u32` length
//! plus UTF-8 bytes, enums are tag bytes. There is no self-description
//! and no versioning beyond [`PROTOCOL_VERSION`] in the hello messages —
//! both ends are built from the same tree.
//!
//! The decoding contract, enforced by the `sweep` conformance engine:
//!
//! - **fixpoint** — `encode(decode(encode(m))) == encode(m)` and
//!   `decode(encode(m)) == m` for every valid message;
//! - **never panics** — any byte sequence, truncated or corrupt, decodes
//!   to `Ok` or a typed [`WireError`], never a panic or an abort; frame
//!   lengths are capped at [`MAX_FRAME`] so a hostile peer cannot force
//!   an unbounded allocation.

use std::io::{Read, Write};

use crate::spec::{PointRow, PointSpec, SweepSpec, SweepStats};
use uve_core::{ExecMode, IndirectPacking};
use uve_isa::MemLevel;
use uve_kernels::Flavor;

/// Protocol version carried by the hello messages; bumped on any codec
/// change so a stale worker fails loudly instead of mis-decoding.
/// Version 2 added [`Msg::Unavailable`] (retryable coordinator-side
/// abandon) and [`Msg::Heartbeat`] (worker liveness during long jobs).
pub const PROTOCOL_VERSION: u32 = 2;

/// Upper bound on a frame payload (16 MiB): decoding rejects larger
/// length prefixes before allocating.
pub const MAX_FRAME: usize = 16 << 20;

/// A typed decode failure. Decoding never panics; every malformed input
/// maps to one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the field being read.
    Truncated,
    /// Unknown message or enum tag.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A length prefix exceeded [`MAX_FRAME`] or a collection count was
    /// implausibly large for the remaining payload.
    Oversized(u64),
    /// Decoding finished with payload bytes left over.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::BadTag(t) => write!(f, "unknown tag {t}"),
            WireError::BadUtf8 => write!(f, "string field is not UTF-8"),
            WireError::Oversized(n) => write!(f, "length {n} exceeds the frame cap"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after the message"),
        }
    }
}

impl std::error::Error for WireError {}

/// Byte-buffer writer for the fixed-width little-endian wire format.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked reader over a received payload.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool byte; any nonzero value is `true`.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        Ok(self.u8()? != 0)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        if n > MAX_FRAME {
            return Err(WireError::Oversized(n as u64));
        }
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// Reads a collection count, rejecting counts that could not possibly
    /// fit in the remaining payload (each element is ≥ `min_elem` bytes).
    pub fn count(&mut self, min_elem: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem.max(1)) > self.remaining() {
            return Err(WireError::Oversized(n as u64));
        }
        Ok(n)
    }
}

// --- enum tag codecs ---------------------------------------------------

pub(crate) fn put_flavor(w: &mut Writer, f: Flavor) {
    w.u8(match f {
        Flavor::Uve => 0,
        Flavor::Sve => 1,
        Flavor::Neon => 2,
        Flavor::Scalar => 3,
    });
}

pub(crate) fn get_flavor(r: &mut Reader) -> Result<Flavor, WireError> {
    match r.u8()? {
        0 => Ok(Flavor::Uve),
        1 => Ok(Flavor::Sve),
        2 => Ok(Flavor::Neon),
        3 => Ok(Flavor::Scalar),
        t => Err(WireError::BadTag(t)),
    }
}

pub(crate) fn put_level(w: &mut Writer, l: MemLevel) {
    w.u8(match l {
        MemLevel::L1 => 0,
        MemLevel::L2 => 1,
        MemLevel::Mem => 2,
    });
}

pub(crate) fn get_level(r: &mut Reader) -> Result<MemLevel, WireError> {
    match r.u8()? {
        0 => Ok(MemLevel::L1),
        1 => Ok(MemLevel::L2),
        2 => Ok(MemLevel::Mem),
        t => Err(WireError::BadTag(t)),
    }
}

pub(crate) fn put_packing(w: &mut Writer, p: IndirectPacking) {
    w.u8(match p {
        IndirectPacking::Packed => 0,
        IndirectPacking::Unpacked => 1,
    });
}

pub(crate) fn get_packing(r: &mut Reader) -> Result<IndirectPacking, WireError> {
    match r.u8()? {
        0 => Ok(IndirectPacking::Packed),
        1 => Ok(IndirectPacking::Unpacked),
        t => Err(WireError::BadTag(t)),
    }
}

pub(crate) fn put_exec(w: &mut Writer, e: ExecMode) {
    w.u8(match e {
        ExecMode::Interpret => 0,
        ExecMode::Translated => 1,
    });
}

pub(crate) fn get_exec(r: &mut Reader) -> Result<ExecMode, WireError> {
    match r.u8()? {
        0 => Ok(ExecMode::Interpret),
        1 => Ok(ExecMode::Translated),
        t => Err(WireError::BadTag(t)),
    }
}

// --- messages ----------------------------------------------------------

/// Every message either end of a connection can send.
///
/// Clients send `ClientHello`, then `SweepRequest`/`Ping`/`Shutdown`;
/// the coordinator answers with `Progress`*, then `SweepDone` or `Error`.
/// Workers send `WorkerHello`, then answer each `RunJob` with `JobOk` or
/// `JobErr`.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// First frame of a client connection.
    ClientHello {
        /// [`PROTOCOL_VERSION`] of the client build.
        version: u32,
    },
    /// First frame of a worker connection.
    WorkerHello {
        /// [`PROTOCOL_VERSION`] of the worker build.
        version: u32,
        /// Human-readable worker label (diagnostics only).
        name: String,
    },
    /// Client → coordinator: run this sweep grid.
    SweepRequest {
        /// The grid.
        spec: SweepSpec,
    },
    /// Coordinator → client: jobs of the requested sweep finished so far.
    Progress {
        /// Rows filled (cache hits + completed jobs).
        done: u32,
        /// Total rows in the sweep.
        total: u32,
        /// Rows satisfied straight from the result cache.
        cached: u32,
    },
    /// Coordinator → client: the merged sweep, in canonical grid order.
    SweepDone {
        /// Result rows, one per grid point, in [`SweepSpec::points`]
        /// order regardless of completion order.
        rows: Vec<PointRow>,
        /// Operational counters (not part of the determinism contract).
        stats: SweepStats,
    },
    /// Coordinator → client: the sweep (or request) failed.
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// Coordinator → worker: execute one job.
    RunJob {
        /// Content-addressed job key (echoed back in the reply).
        job: u64,
        /// The grid point to evaluate.
        point: PointSpec,
    },
    /// Worker → coordinator: job finished.
    JobOk {
        /// Echoed job key.
        job: u64,
        /// The measured row.
        row: PointRow,
        /// Fresh functional emulations this job cost the worker (0 when
        /// its local trace cache was warm).
        emulations: u32,
    },
    /// Worker → coordinator: job panicked or timed out on this worker.
    JobErr {
        /// Echoed job key.
        job: u64,
        /// Panic message or timeout marker.
        message: String,
    },
    /// Liveness probe.
    Ping,
    /// Probe answer.
    Pong,
    /// Client → coordinator: drain and exit (also coordinator → worker:
    /// disconnect cleanly).
    Shutdown,
    /// Coordinator → client: the sweep was abandoned for an operational
    /// (non-semantic) reason — e.g. the coordinator is shutting down.
    /// Unlike [`Msg::Error`], this is **retryable**: a reconnecting
    /// client resubmits the same sweep and, thanks to content-addressed
    /// rows, pays nothing for the work already done.
    Unavailable {
        /// Human-readable reason.
        message: String,
    },
    /// Worker → coordinator: still alive and working on `job`. Sent
    /// periodically while a job runs so the coordinator can tell a slow
    /// job from a dead worker without waiting out the whole job budget.
    Heartbeat {
        /// The job key being worked on.
        job: u64,
    },
}

impl Msg {
    /// Encodes the message payload (no frame length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Msg::ClientHello { version } => {
                w.u8(1);
                w.u32(*version);
            }
            Msg::WorkerHello { version, name } => {
                w.u8(2);
                w.u32(*version);
                w.str(name);
            }
            Msg::SweepRequest { spec } => {
                w.u8(3);
                spec.encode(&mut w);
            }
            Msg::Progress {
                done,
                total,
                cached,
            } => {
                w.u8(4);
                w.u32(*done);
                w.u32(*total);
                w.u32(*cached);
            }
            Msg::SweepDone { rows, stats } => {
                w.u8(5);
                w.u32(rows.len() as u32);
                for row in rows {
                    row.encode(&mut w);
                }
                stats.encode(&mut w);
            }
            Msg::Error { message } => {
                w.u8(6);
                w.str(message);
            }
            Msg::RunJob { job, point } => {
                w.u8(7);
                w.u64(*job);
                point.encode(&mut w);
            }
            Msg::JobOk {
                job,
                row,
                emulations,
            } => {
                w.u8(8);
                w.u64(*job);
                row.encode(&mut w);
                w.u32(*emulations);
            }
            Msg::JobErr { job, message } => {
                w.u8(9);
                w.u64(*job);
                w.str(message);
            }
            Msg::Ping => w.u8(10),
            Msg::Pong => w.u8(11),
            Msg::Shutdown => w.u8(12),
            Msg::Unavailable { message } => {
                w.u8(13);
                w.str(message);
            }
            Msg::Heartbeat { job } => {
                w.u8(14);
                w.u64(*job);
            }
        }
        w.into_bytes()
    }

    /// Decodes one message from a full payload.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on any malformed input — truncated fields,
    /// unknown tags, bad UTF-8, oversized counts, or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let msg = match r.u8()? {
            1 => Msg::ClientHello { version: r.u32()? },
            2 => Msg::WorkerHello {
                version: r.u32()?,
                name: r.str()?,
            },
            3 => Msg::SweepRequest {
                spec: SweepSpec::decode(&mut r)?,
            },
            4 => Msg::Progress {
                done: r.u32()?,
                total: r.u32()?,
                cached: r.u32()?,
            },
            5 => {
                let n = r.count(PointRow::MIN_WIRE_BYTES)?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(PointRow::decode(&mut r)?);
                }
                Msg::SweepDone {
                    rows,
                    stats: SweepStats::decode(&mut r)?,
                }
            }
            6 => Msg::Error { message: r.str()? },
            7 => Msg::RunJob {
                job: r.u64()?,
                point: PointSpec::decode(&mut r)?,
            },
            8 => Msg::JobOk {
                job: r.u64()?,
                row: PointRow::decode(&mut r)?,
                emulations: r.u32()?,
            },
            9 => Msg::JobErr {
                job: r.u64()?,
                message: r.str()?,
            },
            10 => Msg::Ping,
            11 => Msg::Pong,
            12 => Msg::Shutdown,
            13 => Msg::Unavailable { message: r.str()? },
            14 => Msg::Heartbeat { job: r.u64()? },
            t => return Err(WireError::BadTag(t)),
        };
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes(r.remaining()));
        }
        Ok(msg)
    }
}

// --- framing -----------------------------------------------------------

/// Writes one message as a length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors from the underlying stream.
pub fn write_msg<W: Write>(stream: &mut W, msg: &Msg) -> std::io::Result<()> {
    let payload = msg.encode();
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(&payload)?;
    stream.flush()
}

/// Reads one length-prefixed frame and decodes it.
///
/// # Errors
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary; I/O errors and
/// [`WireError`]s (mapped to `InvalidData`) otherwise.
pub fn read_msg<R: Read>(stream: &mut R) -> std::io::Result<Option<Msg>> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            WireError::Oversized(n as u64),
        ));
    }
    let mut payload = vec![0u8; n];
    stream.read_exact(&mut payload)?;
    Msg::decode(&payload)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;

    fn round_trip(msg: &Msg) {
        let bytes = msg.encode();
        let back = Msg::decode(&bytes).expect("decodes");
        assert_eq!(&back, msg);
        assert_eq!(back.encode(), bytes, "re-encode fixpoint");
    }

    #[test]
    fn simple_messages_round_trip() {
        round_trip(&Msg::Ping);
        round_trip(&Msg::Pong);
        round_trip(&Msg::Shutdown);
        round_trip(&Msg::ClientHello { version: 1 });
        round_trip(&Msg::WorkerHello {
            version: 1,
            name: "w0".to_string(),
        });
        round_trip(&Msg::Progress {
            done: 3,
            total: 9,
            cached: 1,
        });
        round_trip(&Msg::Error {
            message: "no such kernel".to_string(),
        });
        round_trip(&Msg::SweepRequest {
            spec: SweepSpec::small_default(),
        });
        round_trip(&Msg::Unavailable {
            message: "coordinator shutting down".to_string(),
        });
        round_trip(&Msg::Heartbeat { job: 0xdead_beef });
    }

    #[test]
    fn truncation_never_panics() {
        let bytes = Msg::SweepRequest {
            spec: SweepSpec::small_default(),
        }
        .encode();
        for cut in 0..bytes.len() {
            assert!(Msg::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Msg::Ping.encode();
        bytes.push(0);
        assert_eq!(Msg::decode(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn oversized_counts_are_rejected_before_allocating() {
        // SweepDone claiming u32::MAX rows in a tiny payload.
        let mut w = Writer::new();
        w.u8(5);
        w.u32(u32::MAX);
        assert!(matches!(
            Msg::decode(&w.into_bytes()),
            Err(WireError::Oversized(_) | WireError::Truncated)
        ));
    }

    #[test]
    fn framing_round_trips_and_eof_is_clean() {
        let mut buf = Vec::new();
        write_msg(&mut buf, &Msg::Ping).unwrap();
        write_msg(&mut buf, &Msg::Pong).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_msg(&mut cursor).unwrap(), Some(Msg::Ping));
        assert_eq!(read_msg(&mut cursor).unwrap(), Some(Msg::Pong));
        assert_eq!(read_msg(&mut cursor).unwrap(), None);
    }
}
