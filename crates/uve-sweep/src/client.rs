//! Client helpers: run a sweep against a coordinator and collect the
//! merged rows, or poke the service (ping, remote shutdown).

use std::net::TcpStream;
use std::time::Duration;

use crate::messages::{read_msg, write_msg, Msg, PROTOCOL_VERSION};
use crate::spec::{PointRow, SweepSpec, SweepStats};

/// A completed sweep as seen by a client: merged rows in canonical order
/// plus the coordinator's operational counters.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// Merged rows, canonical grid order — bit-identical to
    /// [`run_serial`](crate::spec::run_serial) on the same spec.
    pub rows: Vec<PointRow>,
    /// Operational counters (cache hits, joins, retries, emulations).
    pub stats: SweepStats,
}

fn connect(addr: &str) -> Result<TcpStream, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    Ok(stream)
}

/// Submits `spec` to the coordinator at `addr`, invoking `progress(done,
/// total, cached)` for every progress frame, and returns the merged
/// result.
///
/// # Errors
///
/// Returns connection, protocol, and coordinator-reported failures.
pub fn request_sweep(
    addr: &str,
    spec: &SweepSpec,
    mut progress: impl FnMut(u32, u32, u32),
) -> Result<SweepOutcome, String> {
    let mut stream = connect(addr)?;
    write_msg(
        &mut stream,
        &Msg::ClientHello {
            version: PROTOCOL_VERSION,
        },
    )
    .map_err(|e| format!("hello: {e}"))?;
    write_msg(&mut stream, &Msg::SweepRequest { spec: spec.clone() })
        .map_err(|e| format!("request: {e}"))?;
    loop {
        match read_msg(&mut stream).map_err(|e| format!("read: {e}"))? {
            Some(Msg::Progress {
                done,
                total,
                cached,
            }) => progress(done, total, cached),
            Some(Msg::SweepDone { rows, stats }) => return Ok(SweepOutcome { rows, stats }),
            Some(Msg::Error { message }) => return Err(format!("coordinator: {message}")),
            Some(other) => return Err(format!("unexpected message: {other:?}")),
            None => return Err("coordinator hung up mid-sweep".to_string()),
        }
    }
}

/// Pings the coordinator at `addr`.
///
/// # Errors
///
/// Returns connection and protocol failures.
pub fn ping(addr: &str) -> Result<(), String> {
    let mut stream = connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
    write_msg(&mut stream, &Msg::Ping).map_err(|e| format!("ping: {e}"))?;
    match read_msg(&mut stream).map_err(|e| format!("read: {e}"))? {
        Some(Msg::Pong) => Ok(()),
        other => Err(format!("expected Pong, got {other:?}")),
    }
}

/// Asks the coordinator at `addr` to shut down.
///
/// # Errors
///
/// Returns connection failures.
pub fn shutdown(addr: &str) -> Result<(), String> {
    let mut stream = connect(addr)?;
    write_msg(&mut stream, &Msg::Shutdown).map_err(|e| format!("shutdown: {e}"))
}
