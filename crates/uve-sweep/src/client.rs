//! Client helpers: run a sweep against a coordinator and collect the
//! merged rows, or poke the service (ping, remote shutdown).
//!
//! Two submission paths share one request loop:
//!
//! - [`request_sweep`] is one-shot: any failure is returned to the caller.
//! - [`request_sweep_resilient`] survives coordinator restarts. Sweep
//!   submission is **idempotent** — results are memoized by content-
//!   addressed job key, so resubmitting the same spec after a dropped
//!   connection re-executes only rows the (durable) cache has not already
//!   absorbed. The resilient client therefore classifies failures
//!   ([`SweepFailure`]): *transport* errors (connect refused, mid-sweep
//!   hangup, [`Msg::Unavailable`]) trigger capped exponential backoff with
//!   deterministic jitter and a fresh attempt, while *fatal* errors (the
//!   coordinator answered [`Msg::Error`], a protocol violation) surface
//!   immediately. The target address is re-resolved through a caller
//!   closure on every attempt, so a restarted coordinator may come back on
//!   a different port.

use std::net::TcpStream;
use std::time::Duration;

use crate::messages::{read_msg, write_msg, Msg, PROTOCOL_VERSION};
use crate::spec::{PointRow, SweepSpec, SweepStats};
use uve_kernels::common::SplitMix64;

/// A completed sweep as seen by a client: merged rows in canonical order
/// plus the coordinator's operational counters.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// Merged rows, canonical grid order — bit-identical to
    /// [`run_serial`](crate::spec::run_serial) on the same spec.
    pub rows: Vec<PointRow>,
    /// Operational counters (cache hits, joins, retries, emulations).
    pub stats: SweepStats,
}

/// Why one sweep attempt failed, split by whether retrying can help.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepFailure {
    /// The connection died or the coordinator abandoned the request for
    /// operational reasons (shutdown mid-sweep). Resubmitting the same
    /// spec is safe and cheap: finished rows are already cached.
    Transport(String),
    /// The coordinator processed the request and rejected it, or spoke
    /// the protocol wrong. Retrying would fail identically.
    Fatal(String),
}

impl std::fmt::Display for SweepFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepFailure::Transport(m) => write!(f, "transport: {m}"),
            SweepFailure::Fatal(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for SweepFailure {}

/// Backoff schedule for [`request_sweep_resilient`].
#[derive(Debug, Clone)]
pub struct ReconnectPolicy {
    /// Total submission attempts before giving up (first try included).
    pub max_attempts: u32,
    /// Delay before the second attempt; doubles per failure.
    pub base_delay: Duration,
    /// Ceiling the doubling saturates at.
    pub max_delay: Duration,
    /// Seed for the deterministic jitter stream, so tests can replay an
    /// exact backoff schedule.
    pub seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_secs(5),
            seed: 0x5eed_c11e,
        }
    }
}

impl ReconnectPolicy {
    /// The sleep before attempt `attempt` (1-based count of *failures* so
    /// far): exponential with a cap, jittered to `[delay/2, delay)` so a
    /// fleet of clients does not reconnect in lockstep.
    fn delay(&self, failures: u32, rng: &mut SplitMix64) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << failures.saturating_sub(1).min(20));
        let capped = exp.min(self.max_delay).max(Duration::from_millis(1));
        let half = capped / 2;
        let jitter_ns = rng.next_u64() % half.as_nanos().max(1) as u64;
        half + Duration::from_nanos(jitter_ns)
    }
}

fn connect(addr: &str) -> Result<TcpStream, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    Ok(stream)
}

/// One submission attempt, with failures classified for the retry loop.
fn try_sweep(
    addr: &str,
    spec: &SweepSpec,
    progress: &mut impl FnMut(u32, u32, u32),
) -> Result<SweepOutcome, SweepFailure> {
    let mut stream = connect(addr).map_err(SweepFailure::Transport)?;
    write_msg(
        &mut stream,
        &Msg::ClientHello {
            version: PROTOCOL_VERSION,
        },
    )
    .map_err(|e| SweepFailure::Transport(format!("hello: {e}")))?;
    write_msg(&mut stream, &Msg::SweepRequest { spec: spec.clone() })
        .map_err(|e| SweepFailure::Transport(format!("request: {e}")))?;
    loop {
        match read_msg(&mut stream).map_err(|e| SweepFailure::Transport(format!("read: {e}")))? {
            Some(Msg::Progress {
                done,
                total,
                cached,
            }) => progress(done, total, cached),
            Some(Msg::SweepDone { rows, stats }) => return Ok(SweepOutcome { rows, stats }),
            Some(Msg::Unavailable { message }) => {
                // Operational abandon (e.g. shutdown mid-sweep): the
                // request was fine, the moment was not.
                return Err(SweepFailure::Transport(format!("coordinator: {message}")));
            }
            Some(Msg::Error { message }) => {
                return Err(SweepFailure::Fatal(format!("coordinator: {message}")))
            }
            Some(other) => {
                return Err(SweepFailure::Fatal(format!(
                    "unexpected message: {other:?}"
                )))
            }
            None => {
                return Err(SweepFailure::Transport(
                    "coordinator hung up mid-sweep".to_string(),
                ))
            }
        }
    }
}

/// Submits `spec` to the coordinator at `addr`, invoking `progress(done,
/// total, cached)` for every progress frame, and returns the merged
/// result.
///
/// # Errors
///
/// Returns connection, protocol, and coordinator-reported failures.
pub fn request_sweep(
    addr: &str,
    spec: &SweepSpec,
    mut progress: impl FnMut(u32, u32, u32),
) -> Result<SweepOutcome, String> {
    try_sweep(addr, spec, &mut progress).map_err(|e| e.to_string())
}

/// Submits `spec`, retrying across dropped connections and coordinator
/// restarts.
///
/// `addr_of` is called before every attempt to resolve the current
/// coordinator address (a restarted coordinator may listen on a new
/// port). Transport failures back off exponentially per
/// [`ReconnectPolicy`] and resubmit — safe because submission is
/// idempotent over the content-addressed result cache. Fatal failures
/// return immediately.
///
/// # Errors
///
/// Returns [`SweepFailure::Fatal`] verbatim, or the last
/// [`SweepFailure::Transport`] once `max_attempts` is exhausted.
pub fn request_sweep_resilient(
    addr_of: impl Fn() -> String,
    spec: &SweepSpec,
    policy: &ReconnectPolicy,
    mut progress: impl FnMut(u32, u32, u32),
) -> Result<SweepOutcome, SweepFailure> {
    let mut rng = SplitMix64::new(policy.seed);
    let mut failures = 0u32;
    loop {
        let addr = addr_of();
        match try_sweep(&addr, spec, &mut progress) {
            Ok(outcome) => return Ok(outcome),
            Err(fatal @ SweepFailure::Fatal(_)) => return Err(fatal),
            Err(transport) => {
                failures += 1;
                if failures >= policy.max_attempts.max(1) {
                    return Err(transport);
                }
                let delay = policy.delay(failures, &mut rng);
                eprintln!(
                    "[client] attempt {failures} failed ({transport}); retrying in {delay:?}"
                );
                std::thread::sleep(delay);
            }
        }
    }
}

/// Pings the coordinator at `addr`.
///
/// # Errors
///
/// Returns connection and protocol failures.
pub fn ping(addr: &str) -> Result<(), String> {
    let mut stream = connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
    write_msg(&mut stream, &Msg::Ping).map_err(|e| format!("ping: {e}"))?;
    match read_msg(&mut stream).map_err(|e| format!("read: {e}"))? {
        Some(Msg::Pong) => Ok(()),
        other => Err(format!("expected Pong, got {other:?}")),
    }
}

/// Asks the coordinator at `addr` to shut down.
///
/// # Errors
///
/// Returns connection failures.
pub fn shutdown(addr: &str) -> Result<(), String> {
    let mut stream = connect(addr)?;
    write_msg(&mut stream, &Msg::Shutdown).map_err(|e| format!("shutdown: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_jitters_and_caps() {
        let policy = ReconnectPolicy::default();
        let mut rng = SplitMix64::new(policy.seed);
        let mut prev_half = Duration::ZERO;
        for failures in 1..=12 {
            let d = policy.delay(failures, &mut rng);
            let exp = policy
                .base_delay
                .saturating_mul(1u32 << (failures - 1).min(20))
                .min(policy.max_delay);
            assert!(
                d >= exp / 2 && d < exp,
                "failure {failures}: {d:?} vs {exp:?}"
            );
            assert!(exp / 2 >= prev_half, "monotone until the cap");
            prev_half = exp / 2;
        }
        // Deterministic: same seed replays the same schedule.
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        assert_eq!(policy.delay(3, &mut a), policy.delay(3, &mut b));
    }

    #[test]
    fn resilient_client_gives_up_after_max_attempts() {
        // Nothing listens on this address; every attempt is a transport
        // failure, so the policy's attempt budget is what ends the loop.
        let policy = ReconnectPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            ..ReconnectPolicy::default()
        };
        let calls = std::cell::Cell::new(0u32);
        let err = request_sweep_resilient(
            || {
                calls.set(calls.get() + 1);
                "127.0.0.1:1".to_string()
            },
            &crate::spec::SweepSpec::small_default(),
            &policy,
            |_, _, _| {},
        )
        .unwrap_err();
        assert!(matches!(err, SweepFailure::Transport(_)), "{err}");
        assert_eq!(calls.get(), 3, "address re-resolved once per attempt");
    }
}
