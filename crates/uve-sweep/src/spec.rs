//! Sweep grids, job keys, and the one true job executor.
//!
//! A [`SweepSpec`] names a kernel × flavor × stream-level × packing ×
//! exec-mode × fault-seed × cores × timing-knob grid. [`SweepSpec::points`]
//! enumerates it in **canonical order** (the order the axes are nested in
//! the struct), and every transport in the service preserves that order:
//! the coordinator merges completed jobs back into canonical slots, so
//! the merged output of a sweep is bit-identical to
//! [`run_serial`] — a serial in-process [`Runner`] loop — regardless of
//! worker count, request interleaving, cache hits, or worker crashes.
//!
//! [`job_key`] is the content address of one grid point: an FNV-1a digest
//! over the encoded [`PointSpec`] plus the program fingerprint of the
//! resolved kernel (the same fingerprint [`TraceKey`] carries, so two
//! kernels sharing a display name but differing in parameters can never
//! alias). Everything a job's result depends on — functional knobs
//! ([`TraceKey`]), the timing configuration, [`ExecMode`], and
//! [`IndirectPacking`] — is in the key, so a cache hit is always safe to
//! replay.

use std::time::Duration;

use crate::messages::{
    get_exec, get_flavor, get_level, get_packing, put_exec, put_flavor, put_level, put_packing,
    Reader, WireError, Writer,
};
use uve_bench::{replay, Runner, TraceKey};
use uve_core::{ExecMode, IndirectPacking};
use uve_cpu::CpuConfig;
use uve_isa::MemLevel;
use uve_kernels::{Benchmark, Flavor};
use uve_smp::{run_lockstep, shard_trace};

/// Hard cap on the number of grid points in one sweep request.
pub const MAX_GRID_POINTS: usize = 65_536;

/// Maximum cores a multicore grid point may request (matches the `smp`
/// figure's largest configuration).
pub const MAX_CORES: u32 = 8;

/// Shared write prefix (in cache lines) used when a point shards its
/// trace over multiple cores — the `smp` binary's default, kept fixed so
/// multicore points are reproducible from the spec alone.
pub const SHARED_PREFIX_LINES: usize = 16;

/// One sweep request: the cross product of every axis. Empty axes take
/// their defaults in [`SweepSpec::normalized`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SweepSpec {
    /// Use the smoke-test kernel catalog (small problem sizes) instead of
    /// the paper's evaluation sizes.
    pub small: bool,
    /// Kernel names (case-insensitive; empty = the whole catalog).
    pub kernels: Vec<String>,
    /// Code flavours (empty = `[Uve]`).
    pub flavors: Vec<Flavor>,
    /// Default stream memory levels (empty = `[L2]`).
    pub levels: Vec<MemLevel>,
    /// Indirect-chunking modes (empty = `[Packed]`).
    pub packings: Vec<IndirectPacking>,
    /// Functional execution strategies (empty = `[Interpret]`).
    pub execs: Vec<ExecMode>,
    /// Stream page-fault plan seeds; 0 = clean (empty = `[0]`).
    pub fault_seeds: Vec<u64>,
    /// Core counts; 1 = single-core OoO replay, >1 = MOESI-coherent
    /// lockstep sharding (empty = `[1]`).
    pub cores: Vec<u32>,
    /// Physical-vector-register counts; 0 = the Table I default
    /// (empty = `[0]`).
    pub vec_prfs: Vec<u32>,
    /// Streaming Engine FIFO depths; 0 = the Table I default
    /// (empty = `[0]`).
    pub fifo_depths: Vec<u32>,
}

/// One grid point, fully self-describing (carries the `small` catalog
/// flag so a worker resolves the same kernel instance the coordinator
/// keyed).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PointSpec {
    /// Catalog flag (smoke-test or paper sizes).
    pub small: bool,
    /// Kernel name, canonical case (as the catalog spells it).
    pub kernel: String,
    /// Code flavour.
    pub flavor: Flavor,
    /// Default stream memory level.
    pub level: MemLevel,
    /// Indirect-chunking mode.
    pub packing: IndirectPacking,
    /// Functional execution strategy.
    pub exec: ExecMode,
    /// Stream page-fault plan seed (0 = clean).
    pub fault_seed: u64,
    /// Core count (1 = single-core replay).
    pub cores: u32,
    /// Physical vector registers (0 = default).
    pub vec_prf: u32,
    /// Streaming Engine FIFO depth (0 = default).
    pub fifo_depth: u32,
}

/// One measured grid point — the unit of the determinism contract.
///
/// `digest` is an FNV-1a hash over the `Debug` rendering of the complete
/// timing statistics (every counter, the full cycle-accounting breakdown,
/// and for multicore points the per-core statistics and snoop counters),
/// so "two rows are equal" means the underlying runs were bit-identical,
/// not merely cycle-count-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct PointRow {
    /// The grid point this row measures.
    pub point: PointSpec,
    /// Cycles (makespan of the slowest core for multicore points).
    pub cycles: u64,
    /// Committed instructions (summed over cores).
    pub committed: u64,
    /// Rename-blocked cycles (summed over cores) — Fig. 8.C numerator.
    pub rename_blocked: u64,
    /// DRAM bus utilization as IEEE-754 bits (Fig. 8.D), bit-exact over
    /// the wire.
    pub bus_util_bits: u64,
    /// FNV-1a digest of the full timing statistics.
    pub digest: u64,
}

impl PointRow {
    /// Conservative lower bound on the wire size of a row, used to reject
    /// hostile collection counts before allocating.
    pub const MIN_WIRE_BYTES: usize = 64;

    /// The bus utilization as a float.
    pub fn bus_utilization(&self) -> f64 {
        f64::from_bits(self.bus_util_bits)
    }
}

/// Operational counters for one completed sweep. **Not** part of the
/// determinism contract: identical sweeps produce identical rows but
/// different stats depending on what the cache already held.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepStats {
    /// Grid points in the sweep.
    pub total: u32,
    /// Points satisfied straight from the result cache at request time.
    pub cached: u32,
    /// Points already in flight for another sweep that this one joined.
    pub joined: u32,
    /// Points this sweep itself enqueued for execution.
    pub executed: u32,
    /// Job retries observed service-wide up to completion.
    pub retries: u32,
    /// Worker deaths observed service-wide up to completion.
    pub worker_deaths: u32,
    /// Fresh functional emulations performed service-wide up to
    /// completion (the "second identical sweep re-emulates nothing"
    /// observable).
    pub emulations: u64,
}

// --- wire codecs -------------------------------------------------------

fn put_str_vec(w: &mut Writer, v: &[String]) {
    w.u32(v.len() as u32);
    for s in v {
        w.str(s);
    }
}

fn get_str_vec(r: &mut Reader) -> Result<Vec<String>, WireError> {
    let n = r.count(4)?;
    (0..n).map(|_| r.str()).collect()
}

fn put_u64_vec(w: &mut Writer, v: &[u64]) {
    w.u32(v.len() as u32);
    for &x in v {
        w.u64(x);
    }
}

fn get_u64_vec(r: &mut Reader) -> Result<Vec<u64>, WireError> {
    let n = r.count(8)?;
    (0..n).map(|_| r.u64()).collect()
}

fn put_u32_vec(w: &mut Writer, v: &[u32]) {
    w.u32(v.len() as u32);
    for &x in v {
        w.u32(x);
    }
}

fn get_u32_vec(r: &mut Reader) -> Result<Vec<u32>, WireError> {
    let n = r.count(4)?;
    (0..n).map(|_| r.u32()).collect()
}

impl SweepSpec {
    /// Encodes the spec (wire format, no tag).
    pub fn encode(&self, w: &mut Writer) {
        w.bool(self.small);
        put_str_vec(w, &self.kernels);
        w.u32(self.flavors.len() as u32);
        for &f in &self.flavors {
            put_flavor(w, f);
        }
        w.u32(self.levels.len() as u32);
        for &l in &self.levels {
            put_level(w, l);
        }
        w.u32(self.packings.len() as u32);
        for &p in &self.packings {
            put_packing(w, p);
        }
        w.u32(self.execs.len() as u32);
        for &e in &self.execs {
            put_exec(w, e);
        }
        put_u64_vec(w, &self.fault_seeds);
        put_u32_vec(w, &self.cores);
        put_u32_vec(w, &self.vec_prfs);
        put_u32_vec(w, &self.fifo_depths);
    }

    /// Decodes a spec.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed input; semantic validation
    /// (unknown kernels, oversized grids) is separate, in
    /// [`SweepSpec::validate`].
    pub fn decode(r: &mut Reader) -> Result<Self, WireError> {
        let small = r.bool()?;
        let kernels = get_str_vec(r)?;
        let n = r.count(1)?;
        let flavors = (0..n).map(|_| get_flavor(r)).collect::<Result<_, _>>()?;
        let n = r.count(1)?;
        let levels = (0..n).map(|_| get_level(r)).collect::<Result<_, _>>()?;
        let n = r.count(1)?;
        let packings = (0..n).map(|_| get_packing(r)).collect::<Result<_, _>>()?;
        let n = r.count(1)?;
        let execs = (0..n).map(|_| get_exec(r)).collect::<Result<_, _>>()?;
        Ok(Self {
            small,
            kernels,
            flavors,
            levels,
            packings,
            execs,
            fault_seeds: get_u64_vec(r)?,
            cores: get_u32_vec(r)?,
            vec_prfs: get_u32_vec(r)?,
            fifo_depths: get_u32_vec(r)?,
        })
    }

    /// A tiny two-kernel smoke grid (used by tests and doc examples).
    pub fn small_default() -> Self {
        Self {
            small: true,
            kernels: vec!["SAXPY".to_string(), "memcpy".to_string()],
            flavors: vec![Flavor::Uve, Flavor::Scalar],
            ..Self::default()
        }
    }

    /// The spec with every empty axis replaced by its default and kernel
    /// names replaced by their canonical catalog spelling.
    ///
    /// # Errors
    ///
    /// Returns a description of the first unknown kernel name.
    pub fn normalized(&self) -> Result<Self, String> {
        let catalog = catalog(self.small);
        let canonical = |name: &str| -> Result<String, String> {
            catalog
                .iter()
                .find(|b| b.name().eq_ignore_ascii_case(name))
                .map(|b| b.name().to_string())
                .ok_or_else(|| {
                    format!(
                        "unknown kernel {name:?}; catalog: {}",
                        catalog
                            .iter()
                            .map(|b| b.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })
        };
        let kernels = if self.kernels.is_empty() {
            catalog.iter().map(|b| b.name().to_string()).collect()
        } else {
            self.kernels
                .iter()
                .map(|k| canonical(k))
                .collect::<Result<Vec<_>, _>>()?
        };
        fn or<T: Clone>(v: &[T], d: T) -> Vec<T> {
            if v.is_empty() {
                vec![d]
            } else {
                v.to_vec()
            }
        }
        Ok(Self {
            small: self.small,
            kernels,
            flavors: or(&self.flavors, Flavor::Uve),
            levels: or(&self.levels, MemLevel::L2),
            packings: or(&self.packings, IndirectPacking::Packed),
            execs: or(&self.execs, ExecMode::Interpret),
            fault_seeds: or(&self.fault_seeds, 0),
            cores: or(&self.cores, 1),
            vec_prfs: or(&self.vec_prfs, 0),
            fifo_depths: or(&self.fifo_depths, 0),
        })
    }

    /// Validates a normalized spec: known kernels, sane core counts, and
    /// a bounded grid.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        let normalized = self.normalized()?;
        if let Some(&c) = normalized.cores.iter().find(|&&c| c == 0 || c > MAX_CORES) {
            return Err(format!("cores must be in 1..={MAX_CORES}, got {c}"));
        }
        let total = normalized.grid_size();
        if total == 0 {
            return Err("empty grid".to_string());
        }
        if total > MAX_GRID_POINTS {
            return Err(format!(
                "grid has {total} points, exceeding the {MAX_GRID_POINTS} cap"
            ));
        }
        Ok(())
    }

    /// Number of grid points (after normalization; 0 only if an axis is
    /// somehow empty).
    pub fn grid_size(&self) -> usize {
        self.kernels
            .len()
            .saturating_mul(self.flavors.len())
            .saturating_mul(self.levels.len())
            .saturating_mul(self.packings.len())
            .saturating_mul(self.execs.len())
            .saturating_mul(self.fault_seeds.len())
            .saturating_mul(self.cores.len())
            .saturating_mul(self.vec_prfs.len())
            .saturating_mul(self.fifo_depths.len())
    }

    /// Enumerates the grid in canonical order: kernels outermost, then
    /// flavors, levels, packings, execs, fault seeds, cores, vec-PRF,
    /// FIFO depth innermost. Every merge in the service reproduces this
    /// order, whatever order jobs complete in.
    ///
    /// # Errors
    ///
    /// Propagates [`SweepSpec::validate`] failures.
    pub fn points(&self) -> Result<Vec<PointSpec>, String> {
        self.validate()?;
        let s = self.normalized()?;
        let mut out = Vec::with_capacity(s.grid_size());
        for kernel in &s.kernels {
            for &flavor in &s.flavors {
                for &level in &s.levels {
                    for &packing in &s.packings {
                        for &exec in &s.execs {
                            for &fault_seed in &s.fault_seeds {
                                for &cores in &s.cores {
                                    for &vec_prf in &s.vec_prfs {
                                        for &fifo_depth in &s.fifo_depths {
                                            out.push(PointSpec {
                                                small: s.small,
                                                kernel: kernel.clone(),
                                                flavor,
                                                level,
                                                packing,
                                                exec,
                                                fault_seed,
                                                cores,
                                                vec_prf,
                                                fifo_depth,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

impl PointSpec {
    /// Encodes the point (wire format, no tag).
    pub fn encode(&self, w: &mut Writer) {
        w.bool(self.small);
        w.str(&self.kernel);
        put_flavor(w, self.flavor);
        put_level(w, self.level);
        put_packing(w, self.packing);
        put_exec(w, self.exec);
        w.u64(self.fault_seed);
        w.u32(self.cores);
        w.u32(self.vec_prf);
        w.u32(self.fifo_depth);
    }

    /// Decodes a point.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed input.
    pub fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(Self {
            small: r.bool()?,
            kernel: r.str()?,
            flavor: get_flavor(r)?,
            level: get_level(r)?,
            packing: get_packing(r)?,
            exec: get_exec(r)?,
            fault_seed: r.u64()?,
            cores: r.u32()?,
            vec_prf: r.u32()?,
            fifo_depth: r.u32()?,
        })
    }

    /// The timing configuration this point replays under: Table I with
    /// the point's knobs applied.
    pub fn cpu_config(&self) -> CpuConfig {
        let mut cpu = CpuConfig::default();
        if self.vec_prf != 0 {
            cpu.vec_prf = self.vec_prf as usize;
        }
        if self.fifo_depth != 0 {
            cpu.engine.fifo_depth = self.fifo_depth as usize;
        }
        cpu
    }

    /// One-line rendering used by the `uve-sweep` binary's tables.
    pub fn label(&self) -> String {
        format!(
            "{} {} {:?} {:?} {:?} seed={} cores={} prf={} fifo={}",
            self.kernel,
            self.flavor,
            self.level,
            self.packing,
            self.exec,
            self.fault_seed,
            self.cores,
            self.vec_prf,
            self.fifo_depth,
        )
    }
}

impl PointRow {
    /// Encodes the row (wire format, no tag).
    pub fn encode(&self, w: &mut Writer) {
        self.point.encode(w);
        w.u64(self.cycles);
        w.u64(self.committed);
        w.u64(self.rename_blocked);
        w.u64(self.bus_util_bits);
        w.u64(self.digest);
    }

    /// Decodes a row.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed input.
    pub fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(Self {
            point: PointSpec::decode(r)?,
            cycles: r.u64()?,
            committed: r.u64()?,
            rename_blocked: r.u64()?,
            bus_util_bits: r.u64()?,
            digest: r.u64()?,
        })
    }
}

impl SweepStats {
    /// Encodes the stats (wire format, no tag).
    pub fn encode(&self, w: &mut Writer) {
        w.u32(self.total);
        w.u32(self.cached);
        w.u32(self.joined);
        w.u32(self.executed);
        w.u32(self.retries);
        w.u32(self.worker_deaths);
        w.u64(self.emulations);
    }

    /// Decodes the stats.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed input.
    pub fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(Self {
            total: r.u32()?,
            cached: r.u32()?,
            joined: r.u32()?,
            executed: r.u32()?,
            retries: r.u32()?,
            worker_deaths: r.u32()?,
            emulations: r.u64()?,
        })
    }
}

// --- kernel catalog ----------------------------------------------------

/// The kernel catalog a sweep resolves names against: the paper's
/// 19-kernel evaluation suite plus the DSP and sparse follow-on
/// families, or the same kernels at smoke-test sizes when `small` (the
/// `smp` binary's `--small` sizes).
pub fn catalog(small: bool) -> Vec<Box<dyn Benchmark>> {
    use uve_kernels::*;
    if !small {
        return extended_suite();
    }
    vec![
        Box::new(memcpy::Memcpy::new(4096)),
        Box::new(stream::Stream::new(3072)),
        Box::new(saxpy::Saxpy::new(4096)),
        Box::new(gemm::Gemm::new(16, 16, 16)),
        Box::new(threemm::ThreeMm::new(16)),
        Box::new(mvt::Mvt::new(48)),
        Box::new(gemver::Gemver::new(48)),
        Box::new(trisolv::Trisolv::new(48)),
        Box::new(jacobi::Jacobi1d::new(1024, 2)),
        Box::new(jacobi::Jacobi2d::new(24, 2)),
        Box::new(irsmk::Irsmk::new(1024)),
        Box::new(haccmk::Haccmk::new(32)),
        Box::new(knn::Knn::new(128, 8)),
        Box::new(covariance::Covariance::new(16, 16)),
        Box::new(mamr::Mamr::full(48)),
        Box::new(mamr::Mamr::diag(48)),
        Box::new(mamr::Mamr::indirect(48)),
        Box::new(seidel::Seidel2d::new(20, 2)),
        Box::new(floyd::FloydWarshall::new(16)),
        Box::new(dsp::Fir::new(96, 16)),
        Box::new(dsp::ChanEst::new(128)),
        Box::new(dsp::FftStage::new(128, 2)),
        Box::new(sparse::Spmv::new(24, 48, 20)),
        Box::new(sparse::GatherReduce::new(192, 96)),
        Box::new(sparse::Histogram::new(128, 32)),
    ]
}

/// Resolves a kernel name (case-insensitive) against [`catalog`].
///
/// # Errors
///
/// Returns a description listing the catalog on an unknown name.
pub fn resolve(name: &str, small: bool) -> Result<Box<dyn Benchmark>, String> {
    let mut cat = catalog(small);
    match cat.iter().position(|b| b.name().eq_ignore_ascii_case(name)) {
        Some(i) => Ok(cat.swap_remove(i)),
        None => Err(format!(
            "unknown kernel {name:?}; catalog: {}",
            catalog(small)
                .iter()
                .map(|b| b.name())
                .collect::<Vec<_>>()
                .join(", ")
        )),
    }
}

// --- content addressing ------------------------------------------------

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// FNV-1a over a byte slice, continuing from `h`.
pub fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over a byte slice from the standard offset basis.
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    fnv1a(FNV_OFFSET, bytes)
}

/// The content address of one grid point: everything its result depends
/// on. Composes the encoded [`PointSpec`] (functional knobs, timing
/// knobs, exec mode, fault seed, core count) with the resolved kernel's
/// program fingerprint from [`TraceKey`], so renaming-but-reparametrising
/// a kernel can never alias a stale cache entry. Every ingredient is
/// build-stable (the fingerprint is canonical FNV-1a, see
/// `uve_core::program_fingerprint`), so a key minted by one binary hits a
/// durable cache written by another — pinned by
/// `tests/fingerprint_golden.rs`.
///
/// # Errors
///
/// Propagates kernel-resolution failures.
pub fn job_key(point: &PointSpec) -> Result<u64, String> {
    let bench = resolve(&point.kernel, point.small)?;
    let tk = TraceKey::of_full(
        bench.as_ref(),
        point.flavor,
        point.level,
        point.packing,
        point.exec,
        point.fault_seed,
    );
    let mut w = Writer::new();
    point.encode(&mut w);
    let mut h = fnv1a_bytes(&w.into_bytes());
    h = fnv1a(h, &tk.program.to_le_bytes());
    h = fnv1a(h, &(tk.vlen as u64).to_le_bytes());
    Ok(h)
}

// --- execution ---------------------------------------------------------

/// Evaluates one grid point on `runner` (whose trace cache makes repeated
/// points over the same functional trace cheap). This is the **only**
/// executor in the service: workers call it, and [`run_serial`] — the
/// determinism baseline — calls it with a serial [`Runner`], so the two
/// can only ever differ if scheduling leaked into the model (which the
/// integration tests exist to rule out).
///
/// # Errors
///
/// Returns kernel-resolution and coherence failures; emulation and
/// timing-model panics propagate (workers wrap this in `catch_unwind`).
pub fn run_point(runner: &Runner, point: &PointSpec) -> Result<PointRow, String> {
    let bench = resolve(&point.kernel, point.small)?;
    let cpu = point.cpu_config();
    let cached = runner.trace_full(
        bench.as_ref(),
        point.flavor,
        point.level,
        point.packing,
        point.exec,
        point.fault_seed,
    );
    if point.cores <= 1 {
        let m = replay(bench.name(), point.flavor, &cached, &cpu);
        return Ok(PointRow {
            point: point.clone(),
            cycles: m.stats.cycles,
            committed: m.committed,
            rename_blocked: m.stats.rename_blocked_cycles,
            bus_util_bits: m.stats.bus_utilization.to_bits(),
            digest: fnv1a_bytes(format!("{:?}", m.stats).as_bytes()),
        });
    }
    let traces: Vec<_> = (0..point.cores as usize)
        .map(|c| shard_trace(&cached.trace, c, SHARED_PREFIX_LINES))
        .collect();
    let run = run_lockstep(&cpu, &traces, 0).map_err(|v| {
        format!(
            "{}/{}: coherence violation: {v:?}",
            point.kernel, point.flavor
        )
    })?;
    let mut h = FNV_OFFSET;
    for s in &run.per_core {
        h = fnv1a(h, format!("{s:?}").as_bytes());
    }
    for s in &run.snoop {
        h = fnv1a(h, format!("{s:?}").as_bytes());
    }
    h = fnv1a(h, &run.makespan.to_le_bytes());
    h = fnv1a(h, &run.bus_transactions.to_le_bytes());
    let committed: u64 = run.per_core.iter().map(|s| s.committed).sum();
    let rename_blocked: u64 = run.per_core.iter().map(|s| s.rename_blocked_cycles).sum();
    let bus = run
        .per_core
        .first()
        .map_or(0.0, |s| s.bus_utilization)
        .to_bits();
    Ok(PointRow {
        point: point.clone(),
        cycles: run.makespan,
        committed,
        rename_blocked,
        bus_util_bits: bus,
        digest: h,
    })
}

/// The determinism baseline: runs the whole grid serially, in canonical
/// order, on one in-process serial [`Runner`]. Any sweep's merged output
/// must be bit-identical to this, whatever the worker count, request
/// interleaving, cache temperature, or crash history.
///
/// Returns the rows plus the number of fresh functional emulations the
/// serial runner performed.
///
/// # Errors
///
/// Propagates validation and execution failures.
pub fn run_serial(spec: &SweepSpec) -> Result<(Vec<PointRow>, u64), String> {
    run_serial_on(&Runner::serial().verbose(false), spec)
}

/// [`run_serial`] on a caller-provided runner (lets tests share one trace
/// cache across baselines, and the worker share its runner with ad-hoc
/// local sweeps).
///
/// # Errors
///
/// Propagates validation and execution failures.
pub fn run_serial_on(runner: &Runner, spec: &SweepSpec) -> Result<(Vec<PointRow>, u64), String> {
    let before = runner.emulations();
    let rows = spec
        .points()?
        .iter()
        .map(|p| run_point(runner, p))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((rows, runner.emulations() - before))
}

/// Renders rows as the deterministic table the `uve-sweep` binary prints
/// (and CI diffs against the serial baseline).
pub fn render_rows(rows: &[PointRow]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for r in rows {
        let _ = writeln!(
            out,
            "{:<64} cycles={:<10} committed={:<10} digest={:016x}",
            r.point.label(),
            r.cycles,
            r.committed,
            r.digest
        );
    }
    let _ = writeln!(out, "rows={} digest={:016x}", rows.len(), rows_digest(rows));
    out
}

/// A single digest over a whole result set (order-sensitive — canonical
/// order is part of the contract).
pub fn rows_digest(rows: &[PointRow]) -> u64 {
    let mut w = Writer::new();
    for r in rows {
        r.encode(&mut w);
    }
    fnv1a_bytes(&w.into_bytes())
}

/// Default per-job wall-clock budget a worker arms around [`run_point`].
pub const DEFAULT_WORKER_JOB_TIMEOUT: Duration = Duration::from_secs(600);

// --- merge assembly ----------------------------------------------------

/// The coordinator-side merge of one sweep: canonical slots filled as
/// jobs complete, in whatever order they complete.
#[derive(Debug)]
pub struct Assembly {
    points: Vec<PointSpec>,
    keys: Vec<u64>,
    slots: Vec<Option<PointRow>>,
    filled: usize,
}

impl Assembly {
    /// Plans the sweep: enumerates the grid and computes every job key.
    ///
    /// # Errors
    ///
    /// Propagates validation failures.
    pub fn new(spec: &SweepSpec) -> Result<Self, String> {
        let points = spec.points()?;
        let keys = points.iter().map(job_key).collect::<Result<Vec<_>, _>>()?;
        let slots = vec![None; points.len()];
        Ok(Self {
            points,
            keys,
            slots,
            filled: 0,
        })
    }

    /// The grid, canonical order.
    pub fn points(&self) -> &[PointSpec] {
        &self.points
    }

    /// Job keys, parallel to [`Assembly::points`]. Duplicates are
    /// possible when grid axes collapse to the same job (the service
    /// runs such a job once and fills every slot).
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Offers a completed row for `key`; fills every still-empty slot
    /// with that key and returns how many it filled.
    pub fn offer(&mut self, key: u64, row: &PointRow) -> usize {
        let mut n = 0;
        for (i, k) in self.keys.iter().enumerate() {
            if *k == key && self.slots[i].is_none() {
                // The row's point came from whichever slot enqueued the
                // job first; restamp it with this slot's (identical by
                // key construction) point for canonical output.
                self.slots[i] = Some(PointRow {
                    point: self.points[i].clone(),
                    ..row.clone()
                });
                self.filled += 1;
                n += 1;
            }
        }
        n
    }

    /// Slots filled so far.
    pub fn filled(&self) -> usize {
        self.filled
    }

    /// Grid size.
    pub fn total(&self) -> usize {
        self.slots.len()
    }

    /// Whether every slot is filled.
    pub fn is_complete(&self) -> bool {
        self.filled == self.slots.len()
    }

    /// The merged rows, canonical order.
    ///
    /// # Errors
    ///
    /// Returns the index of the first unfilled slot if incomplete.
    pub fn finish(self) -> Result<Vec<PointRow>, usize> {
        let mut out = Vec::with_capacity(self.slots.len());
        for (i, slot) in self.slots.into_iter().enumerate() {
            match slot {
                Some(row) => out.push(row),
                None => return Err(i),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_fills_defaults_and_canonicalizes_names() {
        let spec = SweepSpec {
            small: true,
            kernels: vec!["saxpy".to_string()],
            ..SweepSpec::default()
        };
        let n = spec.normalized().unwrap();
        assert_eq!(n.kernels, vec!["SAXPY"]);
        assert_eq!(n.flavors, vec![Flavor::Uve]);
        assert_eq!(n.cores, vec![1]);
        assert_eq!(spec.points().unwrap().len(), 1);
    }

    #[test]
    fn unknown_kernel_is_rejected() {
        let spec = SweepSpec {
            kernels: vec!["nope".to_string()],
            ..SweepSpec::default()
        };
        assert!(spec.validate().unwrap_err().contains("unknown kernel"));
    }

    #[test]
    fn oversized_grid_is_rejected() {
        let spec = SweepSpec {
            small: true,
            fault_seeds: (0..2000).collect(),
            vec_prfs: (0..2000).collect(),
            ..SweepSpec::default()
        };
        assert!(spec.validate().unwrap_err().contains("cap"));
    }

    #[test]
    fn canonical_order_is_stable() {
        let spec = SweepSpec {
            small: true,
            kernels: vec!["SAXPY".to_string(), "memcpy".to_string()],
            flavors: vec![Flavor::Uve, Flavor::Scalar],
            ..SweepSpec::default()
        };
        let pts = spec.points().unwrap();
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].kernel, "SAXPY");
        assert_eq!(pts[0].flavor, Flavor::Uve);
        assert_eq!(pts[1].flavor, Flavor::Scalar);
        assert_eq!(pts[2].kernel, "Memcpy", "canonical catalog spelling");
    }

    #[test]
    fn job_keys_separate_every_axis() {
        let base = PointSpec {
            small: true,
            kernel: "SAXPY".to_string(),
            flavor: Flavor::Uve,
            level: MemLevel::L2,
            packing: IndirectPacking::Packed,
            exec: ExecMode::Interpret,
            fault_seed: 0,
            cores: 1,
            vec_prf: 0,
            fifo_depth: 0,
        };
        let k0 = job_key(&base).unwrap();
        let variants = [
            PointSpec {
                exec: ExecMode::Translated,
                ..base.clone()
            },
            PointSpec {
                fault_seed: 7,
                ..base.clone()
            },
            PointSpec {
                cores: 2,
                ..base.clone()
            },
            PointSpec {
                vec_prf: 96,
                ..base.clone()
            },
            PointSpec {
                small: false,
                ..base.clone()
            },
            PointSpec {
                packing: IndirectPacking::Unpacked,
                ..base.clone()
            },
        ];
        for v in &variants {
            assert_ne!(job_key(v).unwrap(), k0, "{v:?}");
        }
        assert_eq!(job_key(&base).unwrap(), k0, "keys are deterministic");
    }

    #[test]
    fn assembly_merges_any_completion_order() {
        let spec = SweepSpec::small_default();
        let mut a = Assembly::new(&spec).unwrap();
        let mut b = Assembly::new(&spec).unwrap();
        let runner = Runner::serial().verbose(false);
        let rows: Vec<(u64, PointRow)> = a
            .points()
            .iter()
            .zip(a.keys())
            .map(|(p, &k)| (k, run_point(&runner, p).unwrap()))
            .collect();
        for (k, r) in &rows {
            a.offer(*k, r);
        }
        for (k, r) in rows.iter().rev() {
            b.offer(*k, r);
        }
        let fa = a.finish().unwrap();
        let fb = b.finish().unwrap();
        assert_eq!(fa, fb, "merge is completion-order independent");
        assert_eq!(rows_digest(&fa), rows_digest(&fb));
    }

    #[test]
    fn run_point_multicore_is_deterministic() {
        let runner = Runner::serial().verbose(false);
        let point = PointSpec {
            small: true,
            kernel: "memcpy".to_string(),
            flavor: Flavor::Scalar,
            level: MemLevel::L2,
            packing: IndirectPacking::Packed,
            exec: ExecMode::Interpret,
            fault_seed: 0,
            cores: 2,
            vec_prf: 0,
            fifo_depth: 0,
        };
        let a = run_point(&runner, &point).unwrap();
        let b = run_point(&runner, &point).unwrap();
        assert_eq!(a, b);
        assert!(a.cycles > 0);
    }
}
