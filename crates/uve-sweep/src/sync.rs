//! Poison-recovering synchronization helpers.
//!
//! Every connection in the service is served by its own thread, and a
//! panic on one of them (a hostile frame tripping an assert, a bug in a
//! handler) poisons whatever `Mutex` it held. The default `.unwrap()`
//! response would then cascade: every other serving thread touching the
//! same lock panics too, and one bad connection takes down the whole
//! coordinator. All shared state here is crash-consistent — the scheduler
//! re-derives job phases from retries and the cache is first-write-wins —
//! so recovering the guard and continuing is always safe.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Locks `m`, recovering the guard if a panicking thread poisoned it.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`] that recovers a poisoned guard the same way
/// (the timeout-or-not distinction is irrelevant to the polling loops
/// here, which re-check their condition either way).
pub(crate) fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> MutexGuard<'a, T> {
    match cv.wait_timeout(guard, dur) {
        Ok((g, _)) => g,
        Err(poisoned) => poisoned.into_inner().0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Condvar, Mutex};

    #[test]
    fn lock_recovers_from_poison() {
        let m = Mutex::new(7u32);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(m.is_poisoned(), "mutex must actually be poisoned");
        assert_eq!(*lock(&m), 7, "recovered guard still reads the value");
        *lock(&m) += 1;
        assert_eq!(*lock(&m), 8);
    }

    #[test]
    fn wait_timeout_recovers_from_poison() {
        let m = Mutex::new(0u32);
        let cv = Condvar::new();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison it");
        }));
        let g = lock(&m);
        let g = wait_timeout(&cv, g, Duration::from_millis(1));
        assert_eq!(*g, 0);
    }
}
