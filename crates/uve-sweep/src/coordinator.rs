//! The sweep coordinator: accepts client sweeps and worker connections,
//! shards grid points across workers, merges results in canonical order,
//! and memoizes finished rows in the content-addressed [`ResultCache`].
//!
//! Scheduling model: one job in flight per worker connection. Each worker
//! is served by its own thread, which pulls job keys off a shared queue
//! (preferring jobs that have not already failed on that worker), writes
//! [`Msg::RunJob`], and blocks for the reply under a heartbeat deadline
//! ([`CoordinatorOptions::heartbeat_deadline`]): workers stream
//! [`Msg::Heartbeat`] while a job runs, so a dead worker is detected
//! within one deadline instead of one whole job budget. A clean
//! [`Msg::JobOk`] caches the row (durably, when a cache directory is
//! configured) and wakes waiting sweeps; a [`Msg::JobErr`], a dropped
//! connection, a missed heartbeat deadline, or an exhausted
//! [`CoordinatorOptions::job_timeout`] requeues the job with bounded
//! retries ([`CoordinatorOptions::max_attempts`]) — a job only fails a
//! sweep once its retry budget is exhausted. Shared locks are taken
//! through poison-recovering helpers ([`crate::sync`]), so one panicking
//! serving thread cannot cascade into a dead service.
//!
//! Sweeps are merged through [`Assembly`], which fills canonical slots as
//! jobs complete, in whatever order they complete — this is what makes the
//! merged output bit-identical to [`run_serial`](crate::spec::run_serial)
//! no matter how many workers raced, died, or joined mid-sweep.
//! Overlapping sweeps share work three ways: rows already cached are
//! filled at request time, jobs already in flight are joined (never
//! re-enqueued), and only genuinely new points are queued.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::cache::ResultCache;
use crate::messages::{read_msg, write_msg, Msg, PROTOCOL_VERSION};
use crate::spec::{Assembly, PointRow, PointSpec, SweepSpec, SweepStats};
use crate::sync::{lock, wait_timeout};

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct CoordinatorOptions {
    /// Dispatch budget per job: a job that has been handed to workers this
    /// many times and never completed fails its sweeps.
    pub max_attempts: u32,
    /// Overall wall-clock budget per job dispatch: a worker that keeps
    /// heartbeating but never finishes is cut off and its job requeued
    /// once this much time has passed. Workers arm their own (shorter)
    /// cooperative deadline, so this only fires for truly wedged workers.
    pub job_timeout: Duration,
    /// How long the coordinator waits without hearing *anything* from a
    /// working worker — reply or [`Msg::Heartbeat`] — before declaring it
    /// dead and requeueing its job. Dead workers are detected at this
    /// cadence instead of only after the whole `job_timeout`.
    pub heartbeat_deadline: Duration,
    /// Durable cache directory: `Some(dir)` opens (or creates) a
    /// crash-safe [`ResultCache`] there; `None` keeps results in memory
    /// only.
    pub cache_dir: Option<PathBuf>,
    /// Suppress per-event logging to stderr.
    pub quiet: bool,
}

impl Default for CoordinatorOptions {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            job_timeout: Duration::from_secs(630),
            heartbeat_deadline: Duration::from_secs(15),
            cache_dir: None,
            quiet: true,
        }
    }
}

/// Where one job currently stands.
#[derive(Debug)]
enum JobPhase {
    /// Waiting in the queue.
    Queued,
    /// Dispatched to a worker.
    Running,
    /// Finished; the row is also in the cache.
    Done(PointRow),
    /// Retry budget exhausted.
    Failed(String),
}

/// Scheduler state for one job key.
#[derive(Debug)]
struct JobState {
    point: PointSpec,
    phase: JobPhase,
    /// Times the job has been dispatched.
    attempts: u32,
    /// Workers the job already failed on (death or error); the scheduler
    /// steers retries elsewhere while other workers exist.
    failed_on: HashSet<u64>,
    /// Until this instant, workers in `failed_on` may not re-take the
    /// job. Workers it has never failed on ignore the cooldown, so a
    /// healthy worker picks a poisoned job up immediately while the
    /// worker that just failed it can't spin through its retry budget.
    cooldown_until: Instant,
}

/// The shared scheduler: job table plus ready queue.
#[derive(Debug, Default)]
struct Sched {
    queue: VecDeque<u64>,
    jobs: HashMap<u64, JobState>,
}

/// State shared by every connection thread.
struct Shared {
    opts: CoordinatorOptions,
    cache: ResultCache,
    sched: Mutex<Sched>,
    /// Wakes workers when jobs are queued.
    job_cv: Condvar,
    /// Wakes sweeps when jobs finish (or fail).
    done_cv: Condvar,
    shutdown: AtomicBool,
    retries: AtomicU32,
    worker_deaths: AtomicU32,
    /// Workers currently connected (serving threads alive).
    workers_connected: AtomicU32,
    /// Sum of worker-reported fresh emulation counts.
    emulations: AtomicU64,
    next_worker_id: AtomicU64,
}

impl Shared {
    fn log(&self, msg: &str) {
        if !self.opts.quiet {
            eprintln!("[coordinator] {msg}");
        }
    }

    /// Requeues (or permanently fails) a job that did not complete on
    /// `worker`, bumping the retry counter when it goes back on the queue.
    fn bounce(&self, key: u64, worker: u64, why: &str) {
        let mut sched = lock(&self.sched);
        let Some(js) = sched.jobs.get_mut(&key) else {
            return;
        };
        if matches!(js.phase, JobPhase::Done(_)) {
            return;
        }
        js.failed_on.insert(worker);
        if js.attempts >= self.opts.max_attempts {
            js.phase = JobPhase::Failed(format!(
                "{why} (after {} attempts): {}",
                js.attempts,
                js.point.label()
            ));
            self.done_cv.notify_all();
        } else {
            js.phase = JobPhase::Queued;
            js.cooldown_until = Instant::now() + Duration::from_millis(250);
            sched.queue.push_back(key);
            self.retries.fetch_add(1, Ordering::Relaxed);
            self.job_cv.notify_all();
        }
        self.log(&format!("requeue {key:016x} ({why})"));
    }
}

/// A running coordinator: a listener plus its accept thread. Dropping it
/// (or calling [`Coordinator::shutdown`]) stops the service.
pub struct Coordinator {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl Coordinator {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// accepting clients and workers.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str, opts: CoordinatorOptions) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let cache = match &opts.cache_dir {
            Some(dir) => {
                let cache = ResultCache::open(dir).map_err(io::Error::other)?;
                if !opts.quiet {
                    if let Some(r) = cache.recovery() {
                        eprintln!(
                            "[coordinator] cache {}: recovered {} row(s) ({} snapshot + {} WAL), \
                             {} corrupt record(s) skipped{}{}",
                            dir.display(),
                            r.rows(),
                            r.snapshot_rows,
                            r.wal_rows,
                            r.corrupt_records,
                            if r.truncated_tail {
                                ", torn WAL tail dropped"
                            } else {
                                ""
                            },
                            if r.rejected_files > 0 {
                                ", unusable file reset"
                            } else {
                                ""
                            },
                        );
                    }
                }
                cache
            }
            None => ResultCache::new(),
        };
        let shared = Arc::new(Shared {
            opts,
            cache,
            sched: Mutex::new(Sched::default()),
            job_cv: Condvar::new(),
            done_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            retries: AtomicU32::new(0),
            worker_deaths: AtomicU32::new(0),
            workers_connected: AtomicU32::new(0),
            emulations: AtomicU64::new(0),
            next_worker_id: AtomicU64::new(1),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
        Ok(Self {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (for `127.0.0.1:0` binds, the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The content-addressed result cache (counters are live).
    pub fn cache(&self) -> &ResultCache {
        &self.shared.cache
    }

    /// Job requeues so far.
    pub fn retries(&self) -> u32 {
        self.shared.retries.load(Ordering::Relaxed)
    }

    /// Worker connections lost mid-job so far.
    pub fn worker_deaths(&self) -> u32 {
        self.shared.worker_deaths.load(Ordering::Relaxed)
    }

    /// Workers currently connected.
    pub fn workers_connected(&self) -> u32 {
        self.shared.workers_connected.load(Ordering::Relaxed)
    }

    /// Fresh functional emulations reported by workers so far.
    pub fn emulations(&self) -> u64 {
        self.shared.emulations.load(Ordering::Relaxed)
    }

    /// True once shutdown has been requested, locally or by a remote
    /// [`Msg::Shutdown`].
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// What cache recovery found, when this coordinator was opened with a
    /// durable cache directory.
    pub fn recovery(&self) -> Option<&crate::cache::RecoveryReport> {
        self.shared.cache.recovery()
    }

    /// Stops the service: wakes every parked thread, tells idle workers to
    /// shut down, joins the accept loop, and flushes the durable cache
    /// (checkpointing the WAL into a snapshot).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        // The shutdown flag may already be set (remote Msg::Shutdown);
        // the local join + flush below must still run exactly once, so it
        // is keyed on taking the accept handle, not on the flag.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.job_cv.notify_all();
        self.shared.done_cv.notify_all();
        if let Some(h) = self.accept.take() {
            // Unblock the accept loop with a throwaway connection.
            drop(TcpStream::connect(self.addr));
            let _ = h.join();
            // Graceful-shutdown flush: compact everything into the
            // snapshot. (Rows arriving from still-draining workers after
            // this append to the WAL as usual — nothing is lost, just not
            // compacted.)
            if self.shared.cache.checkpoint() {
                self.shared.log("cache checkpointed on shutdown");
            }
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Accepts connections and hands each to a dispatch thread; exits when the
/// shutdown flag is set.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) => {
                shared.log(&format!("accept: {e}"));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let conn_shared = Arc::clone(shared);
        std::thread::spawn(move || dispatch(stream, &conn_shared));
    }
}

/// Reads a connection's hello and routes it to the client or worker
/// handler.
fn dispatch(mut stream: TcpStream, shared: &Arc<Shared>) {
    stream.set_nodelay(true).ok();
    // Hellos must arrive promptly; handlers retune the timeout after.
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
    loop {
        match read_msg(&mut stream) {
            Ok(Some(Msg::ClientHello { version })) => {
                if version != PROTOCOL_VERSION {
                    let msg = format!(
                        "protocol version mismatch: client {version}, coordinator {PROTOCOL_VERSION}"
                    );
                    let _ = write_msg(&mut stream, &Msg::Error { message: msg });
                    return;
                }
                handle_client(stream, shared);
                return;
            }
            Ok(Some(Msg::WorkerHello { version, name })) => {
                if version != PROTOCOL_VERSION {
                    shared.log(&format!("worker {name}: version mismatch ({version})"));
                    let _ = write_msg(&mut stream, &Msg::Shutdown);
                    return;
                }
                handle_worker(stream, &name, shared);
                return;
            }
            Ok(Some(Msg::Ping)) => {
                if write_msg(&mut stream, &Msg::Pong).is_err() {
                    return;
                }
            }
            Ok(Some(Msg::Shutdown)) => {
                // Remote shutdown: flip the flag and poke the accept loop.
                if !shared.shutdown.swap(true, Ordering::SeqCst) {
                    shared.job_cv.notify_all();
                    shared.done_cv.notify_all();
                }
                return;
            }
            Ok(Some(other)) => {
                let _ = write_msg(
                    &mut stream,
                    &Msg::Error {
                        message: format!("expected a hello, got {other:?}"),
                    },
                );
                return;
            }
            Ok(None) | Err(_) => return,
        }
    }
}

// --- client side -------------------------------------------------------

/// Serves one client connection: any number of sweep requests in
/// sequence.
fn handle_client(mut stream: TcpStream, shared: &Arc<Shared>) {
    // Clients may idle between sweeps; keep a long but bounded timeout so
    // the thread dies eventually after shutdown.
    stream
        .set_read_timeout(Some(Duration::from_secs(3600)))
        .ok();
    loop {
        match read_msg(&mut stream) {
            Ok(Some(Msg::SweepRequest { spec })) => {
                if serve_sweep(&mut stream, &spec, shared).is_err() {
                    return; // client hung up mid-sweep
                }
            }
            Ok(Some(Msg::Ping)) => {
                if write_msg(&mut stream, &Msg::Pong).is_err() {
                    return;
                }
            }
            Ok(Some(other)) => {
                let _ = write_msg(
                    &mut stream,
                    &Msg::Error {
                        message: format!("expected a sweep request, got {other:?}"),
                    },
                );
                return;
            }
            Ok(None) | Err(_) => return,
        }
    }
}

/// Plans, schedules, and merges one sweep, streaming progress and ending
/// with [`Msg::SweepDone`] or [`Msg::Error`].
fn serve_sweep(stream: &mut TcpStream, spec: &SweepSpec, shared: &Arc<Shared>) -> io::Result<()> {
    let mut assembly = match Assembly::new(spec) {
        Ok(a) => a,
        Err(e) => return write_msg(stream, &Msg::Error { message: e }),
    };
    let mut stats = SweepStats {
        total: assembly.total() as u32,
        ..SweepStats::default()
    };
    // Slot multiplicity per job key (axes can collapse onto one job).
    let mut slots_of: HashMap<u64, u32> = HashMap::new();
    for &k in assembly.keys() {
        *slots_of.entry(k).or_insert(0) += 1;
    }
    shared.log(&format!(
        "sweep: {} points, {} distinct jobs",
        assembly.total(),
        slots_of.len()
    ));

    // Request-time pass: fill from cache, join in-flight jobs, enqueue
    // the rest. One sched critical section so two overlapping sweeps
    // can't both enqueue the same job.
    let mut pending: HashSet<u64> = HashSet::new();
    {
        let keys: Vec<u64> = assembly.keys().to_vec();
        let mut seen = HashSet::new();
        let mut sched = lock(&shared.sched);
        for (i, key) in keys.into_iter().enumerate() {
            if !seen.insert(key) {
                continue;
            }
            if let Some(row) = shared.cache.get(key) {
                stats.cached += assembly.offer(key, &row) as u32;
                continue;
            }
            let point = assembly.points()[i].clone();
            match sched.jobs.get_mut(&key) {
                Some(js) => match &js.phase {
                    JobPhase::Done(row) => {
                        // Raced with completion between the cache probe
                        // and here; treat as a cache fill.
                        let row = row.clone();
                        stats.cached += assembly.offer(key, &row) as u32;
                    }
                    JobPhase::Queued | JobPhase::Running => {
                        stats.joined += slots_of[&key];
                        pending.insert(key);
                    }
                    JobPhase::Failed(_) => {
                        // A past sweep exhausted this job's retries; give
                        // it a fresh budget for this sweep.
                        js.phase = JobPhase::Queued;
                        js.attempts = 0;
                        js.failed_on.clear();
                        js.cooldown_until = Instant::now();
                        sched.queue.push_back(key);
                        stats.executed += slots_of[&key];
                        pending.insert(key);
                        shared.job_cv.notify_all();
                    }
                },
                None => {
                    sched.jobs.insert(
                        key,
                        JobState {
                            point,
                            phase: JobPhase::Queued,
                            attempts: 0,
                            failed_on: HashSet::new(),
                            cooldown_until: Instant::now(),
                        },
                    );
                    sched.queue.push_back(key);
                    stats.executed += slots_of[&key];
                    pending.insert(key);
                    shared.job_cv.notify_all();
                }
            }
        }
    }

    let progress = |stream: &mut TcpStream, a: &Assembly, stats: &SweepStats| {
        write_msg(
            stream,
            &Msg::Progress {
                done: a.filled() as u32,
                total: a.total() as u32,
                cached: stats.cached,
            },
        )
    };
    progress(stream, &assembly, &stats)?;

    // Merge loop: fill slots as jobs finish, in completion order.
    while !assembly.is_complete() {
        if shared.shutdown.load(Ordering::SeqCst) {
            // Operational abandon, not a semantic failure: a resilient
            // client treats this as "reconnect and resubmit".
            return write_msg(
                stream,
                &Msg::Unavailable {
                    message: "coordinator shutting down".to_string(),
                },
            );
        }
        let mut done: Vec<(u64, PointRow)> = Vec::new();
        let mut failed: Option<String> = None;
        {
            let mut sched = lock(&shared.sched);
            harvest(&sched, &mut pending, &mut done, &mut failed);
            if done.is_empty() && failed.is_none() {
                sched = wait_timeout(&shared.done_cv, sched, Duration::from_millis(100));
                harvest(&sched, &mut pending, &mut done, &mut failed);
            }
        }
        if let Some(msg) = failed {
            return write_msg(stream, &Msg::Error { message: msg });
        }
        if done.is_empty() {
            continue;
        }
        for (key, row) in &done {
            assembly.offer(*key, row);
        }
        progress(stream, &assembly, &stats)?;
    }

    stats.retries = shared.retries.load(Ordering::Relaxed);
    stats.worker_deaths = shared.worker_deaths.load(Ordering::Relaxed);
    stats.emulations = shared.emulations.load(Ordering::Relaxed);
    match assembly.finish() {
        Ok(rows) => write_msg(stream, &Msg::SweepDone { rows, stats }),
        Err(i) => write_msg(
            stream,
            &Msg::Error {
                message: format!("internal: slot {i} unfilled in a complete assembly"),
            },
        ),
    }
}

/// Moves every pending key whose job is now done or failed out of
/// `pending` and into `done`/`failed`.
fn harvest(
    sched: &Sched,
    pending: &mut HashSet<u64>,
    done: &mut Vec<(u64, PointRow)>,
    failed: &mut Option<String>,
) {
    pending.retain(|key| match sched.jobs.get(key) {
        Some(js) => match &js.phase {
            JobPhase::Done(row) => {
                done.push((*key, row.clone()));
                false
            }
            JobPhase::Failed(msg) => {
                *failed = Some(msg.clone());
                false
            }
            _ => true,
        },
        None => true,
    });
}

// --- worker side -------------------------------------------------------

/// Serves one worker connection: one job in flight at a time, with death
/// and timeout detection.
fn handle_worker(mut stream: TcpStream, name: &str, shared: &Arc<Shared>) {
    let worker_id = shared.next_worker_id.fetch_add(1, Ordering::Relaxed);
    shared.log(&format!("worker {name} connected (id {worker_id})"));
    // A working worker heartbeats, so silence for a whole deadline means
    // it is dead (or wedged past saving) — no need to wait out the much
    // longer job budget to requeue its job.
    stream
        .set_read_timeout(Some(shared.opts.heartbeat_deadline))
        .ok();
    shared.workers_connected.fetch_add(1, Ordering::Relaxed);
    // Decrement on every exit path, including panics.
    struct Connected<'a>(&'a AtomicU32);
    impl Drop for Connected<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::Relaxed);
        }
    }
    let _connected = Connected(&shared.workers_connected);
    loop {
        // Pull the next job, preferring ones this worker hasn't failed.
        let (key, point) = {
            let mut sched = lock(&shared.sched);
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    let _ = write_msg(&mut stream, &Msg::Shutdown);
                    return;
                }
                let now = Instant::now();
                let pick = sched.queue.iter().position(|k| {
                    sched.jobs.get(k).is_none_or(|js| {
                        !js.failed_on.contains(&worker_id) || now >= js.cooldown_until
                    })
                });
                if let Some(pos) = pick {
                    let key = sched.queue.remove(pos).expect("picked index exists");
                    let Some(js) = sched.jobs.get_mut(&key) else {
                        continue;
                    };
                    js.phase = JobPhase::Running;
                    js.attempts += 1;
                    break (key, js.point.clone());
                }
                sched = wait_timeout(&shared.job_cv, sched, Duration::from_millis(100));
            }
        };
        if write_msg(
            &mut stream,
            &Msg::RunJob {
                job: key,
                point: point.clone(),
            },
        )
        .is_err()
        {
            shared.worker_deaths.fetch_add(1, Ordering::Relaxed);
            shared.bounce(key, worker_id, "worker write failed");
            return;
        }
        let started = Instant::now();
        loop {
            match read_msg(&mut stream) {
                Ok(Some(Msg::Heartbeat { job })) if job == key => {
                    // Alive and working — but a job may not heartbeat its
                    // way past the overall budget.
                    if started.elapsed() > shared.opts.job_timeout {
                        shared.log(&format!(
                            "worker {name}: job {key:016x} exceeded its budget; cutting off"
                        ));
                        shared.worker_deaths.fetch_add(1, Ordering::Relaxed);
                        shared.bounce(key, worker_id, "job budget exceeded");
                        return;
                    }
                }
                Ok(Some(Msg::JobOk {
                    job,
                    row,
                    emulations,
                })) if job == key => {
                    shared
                        .emulations
                        .fetch_add(u64::from(emulations), Ordering::Relaxed);
                    shared.cache.put(key, &row);
                    let mut sched = lock(&shared.sched);
                    if let Some(js) = sched.jobs.get_mut(&key) {
                        js.phase = JobPhase::Done(row);
                    }
                    drop(sched);
                    shared.done_cv.notify_all();
                    break;
                }
                Ok(Some(Msg::JobErr { job, message })) if job == key => {
                    shared.bounce(key, worker_id, &format!("job error: {message}"));
                    break;
                }
                Ok(Some(other)) => {
                    shared.log(&format!("worker {name}: protocol error: {other:?}"));
                    shared.worker_deaths.fetch_add(1, Ordering::Relaxed);
                    shared.bounce(key, worker_id, "worker protocol error");
                    return;
                }
                Ok(None) => {
                    shared.log(&format!("worker {name} died mid-job"));
                    shared.worker_deaths.fetch_add(1, Ordering::Relaxed);
                    shared.bounce(key, worker_id, "worker died");
                    return;
                }
                Err(e) => {
                    shared.log(&format!(
                        "worker {name} missed its heartbeat deadline or errored: {e}"
                    ));
                    shared.worker_deaths.fetch_add(1, Ordering::Relaxed);
                    shared.bounce(key, worker_id, "worker heartbeat deadline missed");
                    return;
                }
            }
        }
    }
}
