//! The coordinator's content-addressed result cache.
//!
//! Keyed by [`job_key`](crate::spec::job_key) — the digest of everything a
//! job's result depends on — so a hit can be replayed into any sweep that
//! asks for the same point, across clients and across time. The cache is
//! in-memory by design: job keys fold in `DefaultHasher` program
//! fingerprints, which are stable within one build of the service but not
//! across builds, and the coordinator plus its workers are always one
//! build.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::spec::PointRow;

/// Content-addressed map from job key to finished row, with hit/miss
/// counters (surfaced in `SweepStats` and the `uve-sweep serve` log).
#[derive(Debug, Default)]
pub struct ResultCache {
    rows: Mutex<HashMap<u64, PointRow>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up `key`, counting the hit or miss.
    pub fn get(&self, key: u64) -> Option<PointRow> {
        let got = self.rows.lock().unwrap().get(&key).cloned();
        match got {
            Some(row) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(row)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a finished row under `key`. First write wins: a re-executed
    /// job (requeued after a worker death whose original result later
    /// trickled in) must not flap the cached value.
    pub fn put(&self, key: u64, row: &PointRow) {
        self.rows
            .lock()
            .unwrap()
            .entry(key)
            .or_insert_with(|| row.clone());
    }

    /// Cached entries.
    pub fn len(&self) -> usize {
        self.rows.lock().unwrap().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{run_point, SweepSpec};
    use uve_bench::Runner;

    #[test]
    fn first_write_wins_and_counters_track() {
        let cache = ResultCache::new();
        let spec = SweepSpec::small_default();
        let runner = Runner::serial().verbose(false);
        let points = spec.points().unwrap();
        let row = run_point(&runner, &points[0]).unwrap();
        assert!(cache.get(1).is_none());
        cache.put(1, &row);
        let mut tampered = row.clone();
        tampered.cycles += 1;
        cache.put(1, &tampered);
        assert_eq!(cache.get(1).unwrap(), row, "first write wins");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }
}
