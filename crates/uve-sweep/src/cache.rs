//! The coordinator's content-addressed result cache, with an optional
//! durable backend.
//!
//! Keyed by [`job_key`](crate::spec::job_key) — the digest of everything a
//! job's result depends on — so a hit can be replayed into any sweep that
//! asks for the same point, across clients and across time. Job keys fold
//! in the **build-stable** program fingerprint
//! ([`uve_core::program_fingerprint`], FNV-1a over the canonical
//! instruction-word encoding), so a key minted by one build of the service
//! means the same thing to the next build — which is what makes persisting
//! the cache sound.
//!
//! Durability ([`ResultCache::open`]) is an append-only write-ahead log
//! plus checkpoint snapshots in one directory (format in [`crate::wal`]):
//! every fresh row is appended (and flushed) to `wal.bin` as it arrives,
//! so rows survive a `kill -9` of the coordinator; [`ResultCache::checkpoint`]
//! — called on graceful shutdown and automatically once the WAL grows past
//! [`WAL_COMPACT_RECORDS`] — atomically rewrites `snapshot.bin`
//! (temp-file + rename) and truncates the WAL. Recovery loads snapshot
//! then WAL (first write wins, so the crash window between rename and
//! truncate only costs harmless duplicates), tolerates a torn tail, skips
//! corrupt records with a typed [`RecordError`](crate::wal::RecordError)
//! and a counter, and never panics on hostile bytes. The durability bar is
//! process death, not power loss: appends reach the OS, checkpoints are
//! synced.
//!
//! A persistence failure at runtime (disk full, directory deleted)
//! degrades the cache to in-memory with a loud warning rather than taking
//! the service down.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::spec::PointRow;
use crate::sync::lock;
use crate::wal::{self, LoadReport};

/// Checkpoint the WAL into a snapshot once it holds this many records.
pub const WAL_COMPACT_RECORDS: u64 = 4096;

/// A cache-directory I/O failure (the only way [`ResultCache::open`]
/// fails — corrupt *content* is recovered from, not errored on).
#[derive(Debug)]
pub struct PersistError {
    path: PathBuf,
    source: io::Error,
}

impl PersistError {
    fn new(path: &Path, source: io::Error) -> Self {
        Self {
            path: path.to_path_buf(),
            source,
        }
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.source)
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// What [`ResultCache::open`] found on disk.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Rows recovered from the snapshot.
    pub snapshot_rows: usize,
    /// Rows recovered from the WAL (before dedup against the snapshot).
    pub wal_rows: usize,
    /// Corrupt records skipped across both files.
    pub corrupt_records: usize,
    /// A torn tail (interrupted append) was dropped from the WAL.
    pub truncated_tail: bool,
    /// Files whose header was unusable (wrong magic/version); the WAL is
    /// reset in place, a snapshot is left to be overwritten.
    pub rejected_files: usize,
}

impl RecoveryReport {
    /// Distinct rows the cache starts with.
    pub fn rows(&self) -> usize {
        self.snapshot_rows + self.wal_rows
    }
}

/// The live durable backend.
struct Persist {
    dir: PathBuf,
    wal: File,
    /// Records appended to the WAL since the last checkpoint.
    wal_records: u64,
}

/// Content-addressed map from job key to finished row, with hit/miss
/// counters (surfaced in `SweepStats` and the `uve-sweep serve` log) and
/// an optional write-ahead-logged disk backend.
#[derive(Default)]
pub struct ResultCache {
    rows: Mutex<HashMap<u64, PointRow>>,
    persist: Mutex<Option<Persist>>,
    recovery: Option<RecoveryReport>,
    hits: AtomicU64,
    misses: AtomicU64,
    conflicts: AtomicU64,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("len", &self.len())
            .field("durable", &lock(&self.persist).is_some())
            .field("recovery", &self.recovery)
            .finish()
    }
}

impl ResultCache {
    /// An empty, in-memory cache (no durability).
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens (or creates) a durable cache rooted at `dir`: loads
    /// `snapshot.bin` then `wal.bin`, repairs what a crash left behind
    /// (torn tail truncated, corrupt records skipped and counted, files
    /// with unusable headers reset), and arms the WAL for appends.
    ///
    /// # Errors
    ///
    /// Only on genuine I/O failures (unreadable directory, permission
    /// errors). Corrupt or hostile *content* never fails the open; see
    /// [`ResultCache::recovery`] for what was dropped.
    pub fn open(dir: &Path) -> Result<Self, PersistError> {
        fs::create_dir_all(dir).map_err(|e| PersistError::new(dir, e))?;
        let snap_path = dir.join("snapshot.bin");
        let wal_path = dir.join("wal.bin");
        let mut report = RecoveryReport::default();
        let mut rows: HashMap<u64, PointRow> = HashMap::new();

        if let Some(bytes) = read_optional(&snap_path)? {
            let (pairs, load) = wal::decode_image(&bytes, wal::SNAP_MAGIC);
            report.snapshot_rows = pairs.len();
            absorb_load(&mut report, &load);
            rows.extend(pairs);
        }

        let mut wal_reset = false;
        let mut wal_valid_len = 0u64;
        if let Some(bytes) = read_optional(&wal_path)? {
            let (pairs, load) = wal::decode_image(&bytes, wal::WAL_MAGIC);
            absorb_load(&mut report, &load);
            for (key, row) in pairs {
                // First write wins: a row present in both files (the
                // checkpoint crash window) keeps the snapshot copy.
                if let Entry::Vacant(v) = rows.entry(key) {
                    v.insert(row);
                    report.wal_rows += 1;
                }
            }
            if load.rejected.is_some() {
                wal_reset = true;
            } else {
                wal_valid_len = load.valid_len as u64;
            }
        }

        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)
            .map_err(|e| PersistError::new(&wal_path, e))?;
        let on_disk = wal
            .metadata()
            .map_err(|e| PersistError::new(&wal_path, e))?
            .len();
        if wal_reset {
            wal.set_len(0)
                .map_err(|e| PersistError::new(&wal_path, e))?;
        } else if wal_valid_len < on_disk {
            // Drop the torn tail (or untrusted framing) before appending.
            wal.set_len(wal_valid_len)
                .map_err(|e| PersistError::new(&wal_path, e))?;
        }
        let mut persist = Persist {
            dir: dir.to_path_buf(),
            wal,
            wal_records: report.wal_rows as u64,
        };
        if wal_reset || wal_valid_len == 0 {
            persist
                .wal
                .write_all(&wal::header(wal::WAL_MAGIC))
                .map_err(|e| PersistError::new(&wal_path, e))?;
            persist.wal_records = 0;
        }

        Ok(Self {
            rows: Mutex::new(rows),
            persist: Mutex::new(Some(persist)),
            recovery: Some(report),
            ..Self::default()
        })
    }

    /// What recovery found, when this cache was opened from disk.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// True when the cache has a live durable backend.
    pub fn is_durable(&self) -> bool {
        lock(&self.persist).is_some()
    }

    /// Looks up `key`, counting the hit or miss.
    pub fn get(&self, key: u64) -> Option<PointRow> {
        let got = lock(&self.rows).get(&key).cloned();
        match got {
            Some(row) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(row)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a finished row under `key` and appends it to the WAL.
    ///
    /// First write wins: a re-executed job (requeued after a worker death
    /// whose original result later trickled in) must not flap the cached
    /// value. A second write that *disagrees semantically* is counted in
    /// [`ResultCache::conflicts`] and warned about loudly — under the
    /// determinism contract two executions of one job key are
    /// bit-identical, so a conflict means that contract broke.
    pub fn put(&self, key: u64, row: &PointRow) {
        {
            let mut rows = lock(&self.rows);
            match rows.entry(key) {
                Entry::Occupied(existing) => {
                    if existing.get() != row {
                        self.conflicts.fetch_add(1, Ordering::Relaxed);
                        eprintln!(
                            "[cache] CONFLICT on job {key:016x}: a re-execution produced a \
                             semantically different row (kept the first write). The sweep \
                             determinism contract is broken — this is a bug, not an \
                             operational hiccup."
                        );
                    }
                    return;
                }
                Entry::Vacant(slot) => {
                    slot.insert(row.clone());
                }
            }
        }
        self.append(key, row);
    }

    /// Appends one record to the WAL, degrading to in-memory (loudly) if
    /// the disk fails, and checkpointing once the WAL is due.
    fn append(&self, key: u64, row: &PointRow) {
        let mut guard = lock(&self.persist);
        let Some(persist) = guard.as_mut() else {
            return;
        };
        let record = wal::encode_record(key, row);
        if let Err(e) = persist
            .wal
            .write_all(&record)
            .and_then(|()| persist.wal.flush())
        {
            eprintln!(
                "[cache] WAL append failed ({}): {e}; persistence disabled, cache is \
                 in-memory from here on",
                persist.dir.display()
            );
            *guard = None;
            return;
        }
        persist.wal_records += 1;
        if persist.wal_records >= WAL_COMPACT_RECORDS {
            self.checkpoint_guarded(&mut guard);
        }
    }

    /// Checkpoints the cache: atomically rewrites the snapshot from the
    /// full in-memory table and truncates the WAL. Called automatically
    /// when the WAL is due for compaction and by the coordinator on
    /// graceful shutdown. Returns `true` if a snapshot was written
    /// (`false` for in-memory caches and on a failed, now-disabled
    /// backend).
    pub fn checkpoint(&self) -> bool {
        let mut guard = lock(&self.persist);
        self.checkpoint_guarded(&mut guard)
    }

    fn checkpoint_guarded(&self, guard: &mut Option<Persist>) -> bool {
        let Some(persist) = guard.as_mut() else {
            return false;
        };
        // Deterministic snapshot image: rows sorted by key.
        let mut pairs: Vec<(u64, PointRow)> = {
            let rows = lock(&self.rows);
            rows.iter().map(|(k, v)| (*k, v.clone())).collect()
        };
        pairs.sort_unstable_by_key(|(k, _)| *k);
        let image = wal::encode_image(&pairs, wal::SNAP_MAGIC);
        let snap = persist.dir.join("snapshot.bin");
        let tmp = persist.dir.join("snapshot.tmp");
        let result = fs::write(&tmp, &image)
            .and_then(|()| File::open(&tmp).and_then(|f| f.sync_all()))
            .and_then(|()| fs::rename(&tmp, &snap))
            .and_then(|()| {
                persist
                    .wal
                    .set_len(wal::header(wal::WAL_MAGIC).len() as u64)
            })
            .and_then(|()| persist.wal.sync_data());
        match result {
            Ok(()) => {
                persist.wal_records = 0;
                true
            }
            Err(e) => {
                eprintln!(
                    "[cache] checkpoint failed ({}): {e}; persistence disabled, cache is \
                     in-memory from here on",
                    persist.dir.display()
                );
                *guard = None;
                false
            }
        }
    }

    /// Cached entries.
    pub fn len(&self) -> usize {
        lock(&self.rows).len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Semantically conflicting second writes observed (should be zero
    /// forever; see [`ResultCache::put`]).
    pub fn conflicts(&self) -> u64 {
        self.conflicts.load(Ordering::Relaxed)
    }
}

fn absorb_load(report: &mut RecoveryReport, load: &LoadReport) {
    report.corrupt_records += load.skipped.len();
    report.truncated_tail |= load.truncated_tail;
    report.rejected_files += usize::from(load.rejected.is_some());
}

fn read_optional(path: &Path) -> Result<Option<Vec<u8>>, PersistError> {
    match fs::read(path) {
        Ok(bytes) => Ok(Some(bytes)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(PersistError::new(path, e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{run_point, SweepSpec};
    use uve_bench::Runner;

    fn sample_row() -> PointRow {
        let spec = SweepSpec::small_default();
        let runner = Runner::serial().verbose(false);
        let points = spec.points().unwrap();
        run_point(&runner, &points[0]).unwrap()
    }

    /// A unique scratch directory for one test, removed on drop.
    struct TmpDir(PathBuf);
    impl TmpDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("uve-sweep-cache-test-{}-{tag}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            Self(dir)
        }
    }
    impl Drop for TmpDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn first_write_wins_and_counters_track() {
        let cache = ResultCache::new();
        let row = sample_row();
        assert!(cache.get(1).is_none());
        cache.put(1, &row);
        let mut tampered = row.clone();
        tampered.cycles += 1;
        cache.put(1, &tampered);
        assert_eq!(cache.get(1).unwrap(), row, "first write wins");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.conflicts(),
            1,
            "a semantically different second write is counted"
        );
        // An identical second write is benign (the normal requeue race).
        cache.put(1, &row);
        assert_eq!(cache.conflicts(), 1);
    }

    #[test]
    fn rows_survive_reopen_via_wal_and_via_snapshot() {
        let tmp = TmpDir::new("reopen");
        let row = sample_row();
        {
            let cache = ResultCache::open(&tmp.0).unwrap();
            assert!(cache.is_durable());
            assert_eq!(cache.recovery().unwrap().rows(), 0);
            cache.put(10, &row);
            cache.put(11, &row);
            // No checkpoint, no graceful anything: drop = process death.
        }
        {
            let cache = ResultCache::open(&tmp.0).unwrap();
            let rec = cache.recovery().unwrap().clone();
            assert_eq!(rec.wal_rows, 2, "{rec:?}");
            assert_eq!(cache.get(10).unwrap(), row);
            assert!(cache.checkpoint(), "snapshot written");
            cache.put(12, &row);
        }
        let cache = ResultCache::open(&tmp.0).unwrap();
        let rec = cache.recovery().unwrap().clone();
        assert_eq!(rec.snapshot_rows, 2, "{rec:?}");
        assert_eq!(rec.wal_rows, 1, "post-checkpoint put lands in the WAL");
        assert_eq!(rec.corrupt_records, 0);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn torn_tail_and_garbage_are_recovered_from() {
        let tmp = TmpDir::new("torn");
        let row = sample_row();
        {
            let cache = ResultCache::open(&tmp.0).unwrap();
            cache.put(1, &row);
            cache.put(2, &row);
        }
        // Simulate a crash mid-append: chop bytes off the WAL tail.
        let wal_path = tmp.0.join("wal.bin");
        let len = fs::metadata(&wal_path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .unwrap()
            .set_len(len - 5)
            .unwrap();
        {
            let cache = ResultCache::open(&tmp.0).unwrap();
            let rec = cache.recovery().unwrap().clone();
            assert_eq!(rec.wal_rows, 1, "torn record dropped: {rec:?}");
            assert!(rec.truncated_tail);
            // Appending after recovery lands on clean framing.
            cache.put(3, &row);
        }
        let cache = ResultCache::open(&tmp.0).unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1).is_some() && cache.get(3).is_some());

        // An outright hostile WAL never panics the loader and is reset.
        fs::write(&wal_path, b"not a wal file at all").unwrap();
        let cache = ResultCache::open(&tmp.0).unwrap();
        let rec = cache.recovery().unwrap().clone();
        assert_eq!(rec.rejected_files, 1, "{rec:?}");
        cache.put(4, &row);
        drop(cache);
        let cache = ResultCache::open(&tmp.0).unwrap();
        assert!(cache.get(4).is_some(), "reset WAL accepts appends");
    }

    #[test]
    fn corrupt_record_is_skipped_with_a_counter() {
        let tmp = TmpDir::new("corrupt");
        let row = sample_row();
        {
            let cache = ResultCache::open(&tmp.0).unwrap();
            cache.put(1, &row);
            cache.put(2, &row);
            cache.put(3, &row);
        }
        // Flip one payload byte in the middle record.
        let wal_path = tmp.0.join("wal.bin");
        let mut bytes = fs::read(&wal_path).unwrap();
        let rec_len = wal::encode_record(1, &row).len();
        bytes[12 + rec_len + 20] ^= 0x40;
        fs::write(&wal_path, &bytes).unwrap();
        let cache = ResultCache::open(&tmp.0).unwrap();
        let rec = cache.recovery().unwrap().clone();
        assert_eq!(rec.wal_rows, 2, "{rec:?}");
        assert_eq!(rec.corrupt_records, 1);
        assert!(!rec.truncated_tail, "framing stayed intact");
    }
}
