//! The sweep worker: a job loop over one coordinator connection.
//!
//! A worker connects, announces itself, and then serves [`Msg::RunJob`]
//! requests one at a time, replying [`Msg::JobOk`] or [`Msg::JobErr`].
//! Each job runs under the PR-4 isolation discipline: `catch_unwind`
//! around the executor plus a cooperative wall-clock deadline
//! ([`uve_core::deadline`]), so a poisoned grid point or a wedged model
//! becomes a reported failure, never a hung or dead worker. The worker
//! keeps its own [`Runner`] so repeated points over one functional trace
//! reuse it, and reports the *fresh* emulation count of every job so the
//! coordinator can account service-wide emulation work (the "second
//! identical sweep re-emulates nothing" observable).
//!
//! Hostility knobs ([`WorkerOptions::die_after`],
//! [`WorkerOptions::panic_on`]) exist for the crash-recovery tests: they
//! make a worker drop its connection mid-job or panic deterministically on
//! a chosen kernel, which the coordinator must survive without the merged
//! sweep output changing by a single bit.

use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::time::Duration;

use crate::messages::{read_msg, write_msg, Msg, PROTOCOL_VERSION};
use crate::spec::{run_point, PointRow, PointSpec, DEFAULT_WORKER_JOB_TIMEOUT};
use uve_bench::{panic_message, Runner};
use uve_core::{deadline, ExecMode};

/// Configuration for one worker process (or in-process worker thread).
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Name reported in the hello (shows up in coordinator logs).
    pub name: String,
    /// Replace every job's functional execution strategy at run time.
    /// Safe by the PR-7 contract — translated execution is bit-identical
    /// to interpretation — and *only* applied to emulation: the reply
    /// row still carries the job's own point, so merged outputs are
    /// unchanged. Lets a fleet run translated for speed while clients
    /// sweep the default interpreter axis.
    pub exec_override: Option<ExecMode>,
    /// Hostility: drop the connection (without replying) upon receiving
    /// the N-th job, 1-based. Simulates a worker killed mid-job.
    pub die_after: Option<u64>,
    /// Hostility: panic inside the isolated job body whenever the job's
    /// kernel name matches (case-insensitive). Simulates a poisoned job.
    pub panic_on: Option<String>,
    /// Cooperative per-job wall-clock budget.
    pub job_timeout: Duration,
    /// How often to send [`Msg::Heartbeat`] while a job runs, so the
    /// coordinator can tell this worker apart from a dead one without
    /// waiting out the job budget. Must be comfortably under the
    /// coordinator's `heartbeat_deadline`.
    pub heartbeat: Duration,
    /// Suppress per-job logging to stderr.
    pub quiet: bool,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        Self {
            name: "worker".to_string(),
            exec_override: None,
            die_after: None,
            panic_on: None,
            job_timeout: DEFAULT_WORKER_JOB_TIMEOUT,
            heartbeat: Duration::from_secs(2),
            quiet: true,
        }
    }
}

/// Runs one job under `catch_unwind` + a cooperative deadline, exactly the
/// isolation the PR-4 pool applies, and restamps the reply row with the
/// job's own point (undoing any [`WorkerOptions::exec_override`] applied
/// to the emulation).
fn run_isolated_point(
    runner: &Runner,
    point: &PointSpec,
    opts: &WorkerOptions,
) -> Result<PointRow, String> {
    let mut exec_point = point.clone();
    if let Some(exec) = opts.exec_override {
        exec_point.exec = exec;
    }
    let caught = catch_unwind(AssertUnwindSafe(|| {
        deadline::arm(Some(opts.job_timeout));
        if let Some(poison) = &opts.panic_on {
            assert!(
                !point.kernel.eq_ignore_ascii_case(poison),
                "poisoned job: {}",
                point.kernel
            );
        }
        let row = run_point(runner, &exec_point);
        deadline::disarm();
        row
    }));
    deadline::disarm();
    let row = match caught {
        Ok(inner) => inner?,
        Err(payload) => return Err(panic_message(payload)),
    };
    Ok(PointRow {
        point: point.clone(),
        ..row
    })
}

/// Runs one job on a scoped thread while the connection thread streams
/// [`Msg::Heartbeat`] frames every [`WorkerOptions::heartbeat`], so a
/// long job and a dead worker look different to the coordinator. The
/// outer `Err` is a connection failure (heartbeat unwritable — the
/// worker's exit message); the inner `Result` is the job's own outcome.
fn run_with_heartbeats(
    stream: &mut TcpStream,
    runner: &Runner,
    job: u64,
    point: &PointSpec,
    opts: &WorkerOptions,
) -> Result<Result<PointRow, String>, String> {
    std::thread::scope(|s| {
        let (tx, rx) = mpsc::channel();
        s.spawn(move || {
            // A send failure means the connection thread bailed; the
            // result is moot either way.
            let _ = tx.send(run_isolated_point(runner, point, opts));
        });
        loop {
            match rx.recv_timeout(opts.heartbeat) {
                Ok(outcome) => return Ok(outcome),
                Err(RecvTimeoutError::Timeout) => {
                    write_msg(stream, &Msg::Heartbeat { job })
                        .map_err(|e| format!("heartbeat: {e}"))?;
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Ok(Err("job thread exited without a result".to_string()));
                }
            }
        }
    })
}

/// Connects to the coordinator at `addr` and serves jobs until the
/// coordinator sends [`Msg::Shutdown`] or the connection closes.
///
/// # Errors
///
/// Returns connection and protocol failures as strings (the binary's exit
/// message).
pub fn run_worker(addr: &str, opts: &WorkerOptions) -> Result<(), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("connect to coordinator {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    write_msg(
        &mut stream,
        &Msg::WorkerHello {
            version: PROTOCOL_VERSION,
            name: opts.name.clone(),
        },
    )
    .map_err(|e| format!("hello: {e}"))?;
    let runner = Runner::serial().verbose(false);
    let mut jobs_seen = 0u64;
    loop {
        let msg = match read_msg(&mut stream) {
            Ok(Some(m)) => m,
            Ok(None) => return Ok(()), // coordinator hung up
            Err(e) => return Err(format!("read: {e}")),
        };
        match msg {
            Msg::RunJob { job, point } => {
                jobs_seen += 1;
                if opts.die_after.is_some_and(|n| jobs_seen >= n) {
                    if !opts.quiet {
                        eprintln!("[{}] dying on job {job:016x}", opts.name);
                    }
                    // Drop the connection with the job unanswered — from
                    // the coordinator's side this is a worker death.
                    return Ok(());
                }
                let before = runner.emulations();
                let reply = match run_with_heartbeats(&mut stream, &runner, job, &point, opts)? {
                    Ok(row) => Msg::JobOk {
                        job,
                        row,
                        emulations: (runner.emulations() - before) as u32,
                    },
                    Err(message) => {
                        if !opts.quiet {
                            eprintln!("[{}] job {job:016x} failed: {message}", opts.name);
                        }
                        Msg::JobErr { job, message }
                    }
                };
                write_msg(&mut stream, &reply).map_err(|e| format!("reply: {e}"))?;
            }
            Msg::Ping => {
                write_msg(&mut stream, &Msg::Pong).map_err(|e| format!("pong: {e}"))?;
            }
            Msg::Shutdown => return Ok(()),
            other => return Err(format!("unexpected message from coordinator: {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;
    use uve_core::IndirectPacking;
    use uve_isa::MemLevel;
    use uve_kernels::Flavor;

    fn point(kernel: &str) -> PointSpec {
        PointSpec {
            small: true,
            kernel: kernel.to_string(),
            flavor: Flavor::Uve,
            level: MemLevel::L2,
            packing: IndirectPacking::Packed,
            exec: ExecMode::Interpret,
            fault_seed: 0,
            cores: 1,
            vec_prf: 0,
            fifo_depth: 0,
        }
    }

    #[test]
    fn poisoned_job_is_caught_not_fatal() {
        let runner = Runner::serial().verbose(false);
        let opts = WorkerOptions {
            panic_on: Some("saxpy".to_string()),
            ..WorkerOptions::default()
        };
        let err = run_isolated_point(&runner, &point("SAXPY"), &opts).unwrap_err();
        assert!(err.contains("poisoned job"), "{err}");
        // Other kernels are unaffected, and the worker runner survives.
        let ok = run_isolated_point(&runner, &point("memcpy"), &opts).unwrap();
        assert!(ok.cycles > 0);
    }

    #[test]
    fn exec_override_changes_nothing_visible() {
        let runner = Runner::serial().verbose(false);
        let p = SweepSpec::small_default().points().unwrap().remove(0);
        let plain = run_isolated_point(&runner, &p, &WorkerOptions::default()).unwrap();
        let translated = run_isolated_point(
            &runner,
            &p,
            &WorkerOptions {
                exec_override: Some(ExecMode::Translated),
                ..WorkerOptions::default()
            },
        )
        .unwrap();
        assert_eq!(plain, translated, "override is invisible in results");
    }
}
