//! The durable cache's on-disk format: a pure byte codec for the
//! append-only write-ahead log and its checkpoint snapshots.
//!
//! Both files share one image layout so there is exactly one loader to
//! harden:
//!
//! ```text
//! [8-byte magic][u32 format version]            // header
//! [u32 len][payload][u64 FNV-1a of payload]*    // records
//! ```
//!
//! where a record payload is the `u64` job key followed by the
//! [`PointRow`] in the PR-8 wire encoding. The WAL uses [`WAL_MAGIC`],
//! snapshots use [`SNAP_MAGIC`]; both carry [`CACHE_FORMAT_VERSION`], so a
//! cache written by an incompatible build misses cleanly instead of
//! aliasing.
//!
//! The loading contract, enforced by the `sweep` conformance engine's
//! cache-file target and the unit tests here: [`decode_image`] is
//! **total**. Arbitrary bytes — truncated tails from a `kill -9` mid-
//! append, flipped bits, outright garbage — load partially or report a
//! typed [`RecordError`], and never panic. A torn final record is the
//! *expected* crash artifact and is silently dropped (the row it held
//! simply re-executes); a corrupt record with intact framing is skipped
//! and counted so operators can see disk rot.
//!
//! This module is deliberately filesystem-free (buffers in, buffers out):
//! the file handling lives in [`crate::cache`], and the fuzzer can hammer
//! the codec without touching disk.

use crate::messages::{Reader, WireError, Writer, MAX_FRAME};
use crate::spec::{fnv1a_bytes, PointRow};

/// Magic of the append-only write-ahead log.
pub const WAL_MAGIC: &[u8; 8] = b"UVEWAL01";
/// Magic of a checkpoint snapshot.
pub const SNAP_MAGIC: &[u8; 8] = b"UVESNAP1";
/// On-disk format version carried by both headers; bump on any layout
/// change.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// Why a cache image, or one record in it, was rejected during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The file does not start with the expected magic.
    BadMagic,
    /// The header's format version is not [`CACHE_FORMAT_VERSION`].
    BadVersion(u32),
    /// The file ends inside the header.
    TruncatedHeader,
    /// A record's length prefix exceeds [`MAX_FRAME`]; framing cannot be
    /// trusted past this point.
    BadLength(u64),
    /// A record's payload does not match its stored checksum.
    Checksum,
    /// A record passed its checksum but its payload failed to decode
    /// (possible only across a format change; counted, never fatal).
    Decode(WireError),
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::BadMagic => write!(f, "bad magic"),
            RecordError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            RecordError::TruncatedHeader => write!(f, "truncated header"),
            RecordError::BadLength(n) => write!(f, "record length {n} exceeds the frame cap"),
            RecordError::Checksum => write!(f, "record checksum mismatch"),
            RecordError::Decode(e) => write!(f, "record payload: {e}"),
        }
    }
}

impl std::error::Error for RecordError {}

/// What [`decode_image`] recovered and what it had to drop.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct LoadReport {
    /// Rows decoded successfully.
    pub rows: usize,
    /// Corrupt records skipped (framing intact, content rejected), with
    /// their typed causes.
    pub skipped: Vec<RecordError>,
    /// The image ended mid-record — the torn tail of an interrupted
    /// append (or a length field framing can't be trusted past).
    pub truncated_tail: bool,
    /// The header itself was unusable; no rows were read.
    pub rejected: Option<RecordError>,
    /// Bytes of trustworthy framing from the start of the image: the
    /// point to truncate to before appending new records.
    pub valid_len: usize,
}

impl LoadReport {
    /// True when the whole image decoded with nothing dropped.
    pub fn is_clean(&self) -> bool {
        self.skipped.is_empty() && !self.truncated_tail && self.rejected.is_none()
    }
}

/// The 12-byte image header for `magic`.
pub fn header(magic: &[u8; 8]) -> [u8; 12] {
    let mut h = [0u8; 12];
    h[..8].copy_from_slice(magic);
    h[8..].copy_from_slice(&CACHE_FORMAT_VERSION.to_le_bytes());
    h
}

/// Encodes one `(key, row)` record: length-prefixed payload plus its
/// FNV-1a checksum.
pub fn encode_record(key: u64, row: &PointRow) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(key);
    row.encode(&mut w);
    let payload = w.into_bytes();
    let mut out = Vec::with_capacity(payload.len() + 12);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&fnv1a_bytes(&payload).to_le_bytes());
    out
}

/// Encodes a whole image: header plus one record per row.
pub fn encode_image(rows: &[(u64, PointRow)], magic: &[u8; 8]) -> Vec<u8> {
    let mut out = header(magic).to_vec();
    for (key, row) in rows {
        out.extend_from_slice(&encode_record(*key, row));
    }
    out
}

/// Decodes a cache image, recovering every intact record. Total: hostile
/// bytes produce a partial load and a typed report, never a panic.
pub fn decode_image(bytes: &[u8], magic: &[u8; 8]) -> (Vec<(u64, PointRow)>, LoadReport) {
    let mut report = LoadReport::default();
    let mut rows = Vec::new();
    if bytes.is_empty() {
        // A file created but never written (crash between create and
        // header): nothing to recover, nothing wrong.
        return (rows, report);
    }
    if bytes.len() < 12 {
        report.rejected = Some(RecordError::TruncatedHeader);
        return (rows, report);
    }
    if &bytes[..8] != magic {
        report.rejected = Some(RecordError::BadMagic);
        return (rows, report);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 header bytes"));
    if version != CACHE_FORMAT_VERSION {
        report.rejected = Some(RecordError::BadVersion(version));
        return (rows, report);
    }
    let mut at = 12usize;
    report.valid_len = at;
    while at < bytes.len() {
        if bytes.len() - at < 4 {
            report.truncated_tail = true;
            break;
        }
        let len =
            u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 length bytes")) as usize;
        if len > MAX_FRAME {
            // Framing is garbage from here on; treat the rest as a torn
            // tail but record why.
            report.skipped.push(RecordError::BadLength(len as u64));
            report.truncated_tail = true;
            break;
        }
        let Some(end) = at.checked_add(4 + len + 8).filter(|&e| e <= bytes.len()) else {
            report.truncated_tail = true;
            break;
        };
        let payload = &bytes[at + 4..at + 4 + len];
        let stored = u64::from_le_bytes(bytes[end - 8..end].try_into().expect("8 checksum bytes"));
        at = end;
        // Framing is intact whatever the content says; appends after this
        // record are trustworthy.
        report.valid_len = at;
        if fnv1a_bytes(payload) != stored {
            report.skipped.push(RecordError::Checksum);
            continue;
        }
        match decode_payload(payload) {
            Ok(pair) => {
                rows.push(pair);
                report.rows += 1;
            }
            Err(e) => report.skipped.push(RecordError::Decode(e)),
        }
    }
    (rows, report)
}

fn decode_payload(payload: &[u8]) -> Result<(u64, PointRow), WireError> {
    let mut r = Reader::new(payload);
    let key = r.u64()?;
    let row = PointRow::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok((key, row))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{run_point, SweepSpec};
    use uve_bench::Runner;

    fn sample_rows(n: usize) -> Vec<(u64, PointRow)> {
        let spec = SweepSpec::small_default();
        let runner = Runner::serial().verbose(false);
        let points = spec.points().unwrap();
        let row = run_point(&runner, &points[0]).unwrap();
        (0..n)
            .map(|i| {
                let mut r = row.clone();
                r.cycles += i as u64;
                (0x1000 + i as u64, r)
            })
            .collect()
    }

    #[test]
    fn image_round_trips_bit_identically() {
        let rows = sample_rows(3);
        for magic in [WAL_MAGIC, SNAP_MAGIC] {
            let image = encode_image(&rows, magic);
            let (back, report) = decode_image(&image, magic);
            assert_eq!(back, rows);
            assert!(report.is_clean(), "{report:?}");
            assert_eq!(report.valid_len, image.len());
            // Re-encode fixpoint.
            assert_eq!(encode_image(&back, magic), image);
        }
    }

    #[test]
    fn every_truncation_loads_a_clean_prefix() {
        let rows = sample_rows(3);
        let image = encode_image(&rows, WAL_MAGIC);
        // Offsets at which a cut leaves a well-formed image: the header
        // end and every record boundary after it.
        let mut boundaries = vec![12usize];
        for (key, row) in &rows {
            boundaries.push(boundaries.last().unwrap() + encode_record(*key, row).len());
        }
        for cut in 0..image.len() {
            let (back, report) = decode_image(&image[..cut], WAL_MAGIC);
            assert!(back.len() <= rows.len());
            assert_eq!(back, rows[..back.len()], "cut at {cut}");
            if cut >= 12 {
                // Mid-record cuts flag the torn tail; boundary cuts are
                // clean shorter images.
                assert_eq!(
                    report.truncated_tail,
                    !boundaries.contains(&cut),
                    "tail flag wrong at cut {cut}"
                );
                assert_eq!(
                    report.valid_len,
                    *boundaries.iter().filter(|&&b| b <= cut).max().unwrap()
                );
            }
        }
    }

    #[test]
    fn corrupt_record_is_skipped_and_counted_not_fatal() {
        let rows = sample_rows(3);
        let mut image = encode_image(&rows, WAL_MAGIC);
        // Flip a byte inside the *second* record's payload.
        let rec = encode_record(rows[0].0, &rows[0].1).len();
        image[12 + rec + 10] ^= 0xff;
        let (back, report) = decode_image(&image, WAL_MAGIC);
        assert_eq!(back.len(), 2, "two of three records survive");
        assert_eq!(back[0], rows[0]);
        assert_eq!(back[1], rows[2]);
        assert_eq!(report.skipped, vec![RecordError::Checksum]);
        assert!(!report.truncated_tail);
        assert_eq!(
            report.valid_len,
            image.len(),
            "framing stayed intact past the corrupt record"
        );
    }

    #[test]
    fn hostile_headers_are_typed_errors() {
        let rows = sample_rows(1);
        let (r, rep) = decode_image(b"", WAL_MAGIC);
        assert!(r.is_empty() && rep.rejected.is_none());
        let (_, rep) = decode_image(b"short", WAL_MAGIC);
        assert_eq!(rep.rejected, Some(RecordError::TruncatedHeader));
        let (_, rep) = decode_image(&encode_image(&rows, SNAP_MAGIC), WAL_MAGIC);
        assert_eq!(rep.rejected, Some(RecordError::BadMagic));
        let mut bad_version = encode_image(&rows, WAL_MAGIC);
        bad_version[8] = 0xee;
        let (_, rep) = decode_image(&bad_version, WAL_MAGIC);
        assert!(matches!(rep.rejected, Some(RecordError::BadVersion(_))));
    }

    #[test]
    fn oversized_length_field_stops_without_allocating() {
        let mut image = header(WAL_MAGIC).to_vec();
        image.extend_from_slice(&u32::MAX.to_le_bytes());
        image.extend_from_slice(&[0u8; 32]);
        let (rows, report) = decode_image(&image, WAL_MAGIC);
        assert!(rows.is_empty());
        assert!(report.truncated_tail);
        assert!(matches!(report.skipped[..], [RecordError::BadLength(_)]));
    }
}
