//! Functional preemptive scheduling: round-robin time slicing of more
//! runnable programs than cores, with full stream-context save/restore at
//! every preemption.
//!
//! This is the architectural half of the multiprogramming story (the
//! timing half is [`crate::sim::run_multiprogrammed`]): each job runs on
//! its own [`Emulator`] and is advanced `quantum` dynamic instructions at
//! a time through [`Emulator::resume`]. At every preemption the scheduler
//! performs the paper's context-switch protocol — save every active
//! stream's walker state ([`Emulator::save_stream_context`]), discard the
//! prefetched FIFO contents, and restore from the saved walkers on the
//! next slice — so a slice boundary landing mid-chunk, inside an
//! indirect-modifier region, or at a non-VLEN-multiple element must still
//! produce a final architectural state bit-identical to an uninterrupted
//! run.

use uve_core::{EmuError, Emulator, RunCursor};
use uve_isa::Program;

/// One runnable program with its private emulator.
pub struct Job {
    /// Display name.
    pub name: String,
    /// The program to run.
    pub program: Program,
    /// The emulator (pre-loaded with the job's working set).
    pub emu: Emulator,
}

/// Final state of one job after the schedule completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutcome {
    /// Display name.
    pub name: String,
    /// Dynamic instructions executed.
    pub steps: u64,
    /// Scheduling slices received.
    pub slices: u64,
    /// Preemptions taken (slices that ended before halt).
    pub preemptions: u64,
    /// FNV digest of the final architectural register state.
    pub arch_digest: u64,
    /// Content hash of the final memory image.
    pub mem_hash: u64,
}

/// Errors from a round-robin schedule.
#[derive(Debug)]
pub enum SchedError {
    /// A job's emulation failed.
    Emu {
        /// The failing job's name.
        name: String,
        /// The underlying emulator error.
        err: EmuError,
    },
    /// The scheduler exceeded its slice budget without every job halting —
    /// a livelock (this is what the conformance no-deadlock probe checks).
    Livelock {
        /// Slices executed before giving up.
        slices: u64,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::Emu { name, err } => write!(f, "job {name}: {err}"),
            SchedError::Livelock { slices } => {
                write!(f, "scheduler livelock: {slices} slices without completion")
            }
        }
    }
}

impl std::error::Error for SchedError {}

/// Runs `jobs` to completion under round-robin preemptive scheduling with
/// a `quantum`-instruction time slice, returning per-job outcomes in input
/// order.
///
/// `cores` bounds how many jobs are considered resident at once; it does
/// not change any architectural result (the jobs are functionally
/// independent) but mirrors the timing scheduler's slice pattern, so the
/// two modes preempt at the same program points for equal quanta.
///
/// # Errors
///
/// Propagates the first emulation failure, or reports a livelock if the
/// slice budget (derived from each emulator's own fuel limit) is exhausted.
pub fn run_round_robin(
    jobs: Vec<Job>,
    cores: usize,
    quantum: u64,
) -> Result<Vec<JobOutcome>, SchedError> {
    let quantum = quantum.max(1);
    let _ = cores;
    let mut slice_budget: u64 = 0;
    for job in &jobs {
        // Each job can take at most fuel/quantum slices before its own
        // OutOfFuel error fires; anything beyond that is a scheduler bug.
        slice_budget = slice_budget.saturating_add(job.emu.config().max_steps / quantum + 2);
    }
    let mut names = Vec::new();
    let mut states: Vec<(Program, Emulator, RunCursor, u64, u64)> = Vec::new();
    for job in jobs {
        names.push(job.name);
        states.push((job.program, job.emu, RunCursor::new(), 0, 0));
    }
    let mut queue: std::collections::VecDeque<usize> = (0..states.len()).collect();
    let mut slices: u64 = 0;
    while let Some(idx) = queue.pop_front() {
        if slices >= slice_budget {
            return Err(SchedError::Livelock { slices });
        }
        slices += 1;
        let (program, emu, cursor, job_slices, preemptions) = &mut states[idx];
        *job_slices += 1;
        let halted = emu
            .resume(program, cursor, Some(quantum))
            .map_err(|err| SchedError::Emu {
                name: names[idx].clone(),
                err,
            })?;
        if halted {
            continue;
        }
        // Context switch: save the active stream walkers, then restore
        // from the saved state — the restore path discards any prefetched
        // FIFO data and re-derives it from memory, exactly what a switch
        // to another program's context forces.
        *preemptions += 1;
        let saved = emu.save_stream_context();
        emu.restore_stream_context(&saved);
        queue.push_back(idx);
    }
    Ok(names
        .into_iter()
        .zip(states)
        .map(|(name, (_, emu, cursor, slices, preemptions))| JobOutcome {
            name,
            steps: cursor.steps(),
            slices,
            preemptions,
            arch_digest: emu.arch_digest(),
            mem_hash: emu.mem.content_hash(),
        })
        .collect())
}
