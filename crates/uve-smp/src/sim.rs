//! Lockstep multicore timing simulation and preemptive multiprogramming.
//!
//! Both modes step [`CorePipeline`]s cycle by cycle against one shared
//! [`SmpMem`] hierarchy; coherence between the per-core L1s is maintained
//! live by the MOESI snoop bus inside `SmpMem`, and can additionally be
//! audited with a full single-writer cross-product scan every `check_every`
//! global cycles.

use std::collections::VecDeque;
use uve_core::Trace;
use uve_cpu::{CorePipeline, CpuConfig, TimingStats};
use uve_mem::{
    CoherenceViolation, FaultStats, MemPort, MemStats, Path, ReadOutcome, SmpMem, SmpPort,
    SnoopStats, Translation,
};

/// A core's port with its clock shifted forward by a constant offset.
///
/// Shared-resource arbitration (snoop bus, L2 ports, DRAM banks) keeps
/// absolute `free` timestamps, which is correct while all cores share one
/// clock (lockstep mode). Under preemptive multiprogramming a requeued
/// program resumes with its *program-local* clock, which lags global time
/// by however long it sat in the run queue — presented raw, `free.max(now)`
/// would charge it a phantom stall spanning the whole wait. The scheduler
/// therefore shifts each request into global time (`local + offset`) and
/// shifts the returned ready cycle back, preserving latencies exactly.
struct ShiftedPort<'m> {
    inner: SmpPort<'m>,
    offset: u64,
}

impl MemPort for ShiftedPort<'_> {
    fn translate(&mut self, vaddr: u64) -> Translation {
        self.inner.translate(vaddr)
    }

    fn fault_transient(&mut self, line: u64, attempt: u32) -> bool {
        self.inner.fault_transient(line, attempt)
    }

    fn fault_poisoned(&mut self, line: u64, attempt: u32, from_dram: bool, path: Path) -> bool {
        self.inner.fault_poisoned(line, attempt, from_dram, path)
    }

    fn fault_backoff(&self, attempt: u32) -> u64 {
        self.inner.fault_backoff(attempt)
    }

    fn fault_stats(&self) -> FaultStats {
        self.inner.fault_stats()
    }

    fn read_explained(&mut self, addr: u64, pc: u64, now: u64, path: Path) -> ReadOutcome {
        let mut r = self.inner.read_explained(addr, pc, now + self.offset, path);
        r.ready = r.ready.saturating_sub(self.offset);
        r
    }

    fn write(&mut self, addr: u64, pc: u64, now: u64, path: Path) -> u64 {
        self.inner
            .write(addr, pc, now + self.offset, path)
            .saturating_sub(self.offset)
    }

    fn write_full_line(&mut self, addr: u64, pc: u64, now: u64, path: Path) -> u64 {
        self.inner
            .write_full_line(addr, pc, now + self.offset, path)
            .saturating_sub(self.offset)
    }

    fn stats(&self) -> MemStats {
        self.inner.stats()
    }

    fn bus_utilization(&self, cycles: u64) -> f64 {
        self.inner.bus_utilization(cycles)
    }
}

/// Result of one multicore timing run.
#[derive(Debug)]
pub struct SmpRun {
    /// Per-core timing statistics (cycle accounting obeys the single-core
    /// conservation laws on every core).
    pub per_core: Vec<TimingStats>,
    /// Per-core snoop counters.
    pub snoop: Vec<SnoopStats>,
    /// Total snoop-bus transactions.
    pub bus_transactions: u64,
    /// Makespan: the slowest core's cycle count.
    pub makespan: u64,
    /// Full coherence scans performed (beyond the per-event verification
    /// that is always on).
    pub coherence_scans: u64,
}

/// Runs one trace per core in lockstep over a shared hierarchy.
///
/// Core `c` executes `traces[c]`; all cores advance one cycle per global
/// step (finished cores idle). With a single trace this is cycle-identical
/// to `OoOCore::run_with` over a single-core `MemSystem`.
///
/// # Errors
///
/// Returns the first single-writer violation found by the periodic full
/// scan (`check_every` global cycles; `0` scans only at the end).
pub fn run_lockstep(
    cpu: &CpuConfig,
    traces: &[Trace],
    check_every: u64,
) -> Result<SmpRun, CoherenceViolation> {
    let ncores = traces.len().max(1);
    let mut mem = SmpMem::new(cpu.mem.clone(), ncores);
    let mut pipes: Vec<Option<CorePipeline>> = traces
        .iter()
        .enumerate()
        .map(|(c, t)| {
            if t.ops.is_empty() {
                None
            } else {
                Some(CorePipeline::new(cpu.clone(), t, c, false))
            }
        })
        .collect();
    let mut scans = 0;
    let mut global: u64 = 0;
    loop {
        let mut live = false;
        for (core, slot) in pipes.iter_mut().enumerate() {
            if let Some(pipe) = slot {
                if !pipe.finished() {
                    let mut port = mem.port(core);
                    pipe.step(&traces[core], &mut port, None);
                    live = true;
                }
            }
        }
        if check_every > 0 && global.is_multiple_of(check_every) {
            mem.check_coherence()?;
            scans += 1;
        }
        if !live {
            break;
        }
        global += 1;
    }
    mem.check_coherence()?;
    scans += 1;
    finishup(pipes, &mut mem, scans)
}

fn finishup(
    pipes: Vec<Option<CorePipeline>>,
    mem: &mut SmpMem,
    coherence_scans: u64,
) -> Result<SmpRun, CoherenceViolation> {
    let ncores = mem.cores();
    let per_core: Vec<TimingStats> = pipes
        .into_iter()
        .enumerate()
        .map(|(core, p)| match p {
            Some(p) => {
                let port = mem.port(core);
                p.finish(&port)
            }
            None => TimingStats::default(),
        })
        .collect();
    let snoop = (0..ncores).map(|c| mem.snoop_stats(c)).collect();
    let makespan = per_core.iter().map(|s| s.cycles).max().unwrap_or(0);
    Ok(SmpRun {
        per_core,
        snoop,
        bus_transactions: mem.bus_transactions(),
        makespan,
        coherence_scans,
    })
}

/// Multiprogrammed-mode configuration.
#[derive(Debug, Clone)]
pub struct MpConfig {
    /// Physical cores to time-slice over.
    pub cores: usize,
    /// Cycles a program may run before the scheduler freezes its front end
    /// and begins draining it for preemption.
    pub quantum: u64,
    /// Cycles the core spends restoring a preempted program's stream
    /// contexts (saved walkers re-derived, pipeline refilled) before the
    /// slice's first fetch; the program occupies the core for the duration
    /// and the cycles are charged to its `frontend` account.
    pub restore_penalty: u64,
    /// Global-cycle period of the full coherence scan (`0`: end only).
    pub check_every: u64,
}

impl Default for MpConfig {
    fn default() -> Self {
        Self {
            cores: 2,
            quantum: 5_000,
            restore_penalty: 200,
            check_every: 0,
        }
    }
}

/// Per-program outcome of a multiprogrammed run.
#[derive(Debug)]
pub struct MpOutcome {
    /// The program's own timing statistics (program-local cycles; cycle
    /// accounting conservation holds, restore penalties included under
    /// `frontend`).
    pub stats: TimingStats,
    /// Times the program was preempted (drained and requeued).
    pub preemptions: u64,
    /// Scheduling slices the program received.
    pub slices: u64,
}

/// Result of a multiprogrammed timing run.
#[derive(Debug)]
pub struct MpRun {
    /// Per-program outcomes, in input order.
    pub programs: Vec<MpOutcome>,
    /// Global scheduler ticks until the last program finished.
    pub scheduler_ticks: u64,
    /// Per-core snoop counters.
    pub snoop: Vec<SnoopStats>,
    /// Total snoop-bus transactions.
    pub bus_transactions: u64,
}

/// Why a program currently holds (or left) a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slice {
    Running,
    Draining,
}

struct MpProg<'t> {
    trace: &'t Trace,
    pipe: Option<CorePipeline>,
    slice_start: u64,
    /// Global time minus program-local time, fixed for the current slice.
    /// Local clocks only ever lag global time (they advance one cycle per
    /// scheduled tick), so the offset is non-negative.
    offset: u64,
    /// Restore ticks still to burn before this slice's first fetch.
    restore_left: u64,
    mode: Slice,
    pending_restore: bool,
    preemptions: u64,
    slices: u64,
    last_core: usize,
    done: bool,
}

/// Time-slices more runnable programs than cores, round robin, preempting
/// at `quantum`-cycle boundaries by draining the pipeline (freeze fetch,
/// let the in-flight window retire) and requeueing — deterministic for a
/// given input order.
///
/// Each program keeps one pipeline for its whole life, so its
/// program-local cycle count and cycle accounting accumulate across slices
/// exactly like a solo run plus explicitly-charged restore penalties.
///
/// # Errors
///
/// Returns the first single-writer violation found by the periodic full
/// coherence scan.
///
/// # Panics
///
/// Panics if a draining program fails to drain within the no-retire
/// watchdog (a model bug).
pub fn run_multiprogrammed(
    cpu: &CpuConfig,
    traces: &[&Trace],
    cfg: &MpConfig,
) -> Result<MpRun, CoherenceViolation> {
    let ncores = cfg.cores.max(1);
    let quantum = cfg.quantum.max(1);
    let mut mem = SmpMem::new(cpu.mem.clone(), ncores);
    let mut progs: Vec<MpProg> = traces
        .iter()
        .map(|t| MpProg {
            trace: t,
            pipe: None,
            slice_start: 0,
            offset: 0,
            restore_left: 0,
            mode: Slice::Running,
            pending_restore: false,
            preemptions: 0,
            slices: 0,
            last_core: 0,
            done: t.ops.is_empty(),
        })
        .collect();
    let mut queue: VecDeque<usize> = (0..progs.len()).filter(|&i| !progs[i].done).collect();
    let mut slots: Vec<Option<usize>> = vec![None; ncores];
    let mut ticks: u64 = 0;

    while !queue.is_empty() || slots.iter().any(Option::is_some) {
        // Fill free cores round robin.
        for (core, slot) in slots.iter_mut().enumerate() {
            if slot.is_none() {
                if let Some(idx) = queue.pop_front() {
                    let p = &mut progs[idx];
                    let pipe = p.pipe.get_or_insert_with(|| {
                        CorePipeline::new(cpu.clone(), p.trace, core, false)
                    });
                    if p.pending_restore {
                        p.restore_left = cfg.restore_penalty;
                        p.pending_restore = false;
                    }
                    p.offset = ticks - pipe.now();
                    // Restore ticks advance the local clock one-for-one, so
                    // the quantum starts where the restore ends.
                    p.slice_start = pipe.now() + p.restore_left;
                    p.mode = Slice::Running;
                    p.slices += 1;
                    p.last_core = core;
                    *slot = Some(idx);
                }
            }
        }
        // Step every occupied core one cycle, in core order.
        for (core, slot) in slots.iter_mut().enumerate() {
            let Some(idx) = *slot else { continue };
            let p = &mut progs[idx];
            let pipe = p.pipe.as_mut().expect("scheduled program has a pipeline");
            if p.restore_left > 0 {
                // The core is busy re-deriving stream contexts: local and
                // global clocks advance together, no instructions move.
                pipe.charge_restore_penalty(1);
                p.restore_left -= 1;
                continue;
            }
            let mut port = ShiftedPort {
                inner: mem.port(core),
                offset: p.offset,
            };
            pipe.step(p.trace, &mut port, None);
            if pipe.finished() {
                p.done = true;
                *slot = None;
                continue;
            }
            match p.mode {
                Slice::Running => {
                    if pipe.now().saturating_sub(p.slice_start) >= quantum {
                        // Quantum expired: stop fetching, drain in place.
                        pipe.set_fetch_frozen(true);
                        p.mode = Slice::Draining;
                    }
                }
                Slice::Draining => {
                    if pipe.drained() {
                        pipe.set_fetch_frozen(false);
                        p.preemptions += 1;
                        p.pending_restore = true;
                        *slot = None;
                        queue.push_back(idx);
                    }
                }
            }
        }
        if cfg.check_every > 0 && ticks.is_multiple_of(cfg.check_every) {
            mem.check_coherence()?;
        }
        ticks += 1;
    }
    mem.check_coherence()?;

    let snoop = (0..ncores).map(|c| mem.snoop_stats(c)).collect();
    let bus_transactions = mem.bus_transactions();
    let programs = progs
        .into_iter()
        .map(|p| {
            let stats = match p.pipe {
                Some(pipe) => {
                    let port = mem.port(p.last_core);
                    pipe.finish(&port)
                }
                None => TimingStats::default(),
            };
            MpOutcome {
                stats,
                preemptions: p.preemptions,
                slices: p.slices,
            }
        })
        .collect();
    Ok(MpRun {
        programs,
        scheduler_ticks: ticks,
        snoop,
        bus_transactions,
    })
}
