//! Multicore timing model for the UVE evaluation.
//!
//! Builds an N-core system out of the single-core pieces:
//!
//! - each core is a [`uve_cpu::CorePipeline`] (private L1-D/TLB/stride
//!   prefetcher plus its own Streaming Engine) stepped cycle by cycle;
//! - all cores share the L2/AMPM/DRAM through [`uve_mem::SmpMem`], whose
//!   snoop bus keeps the private L1s MOESI-coherent live — cross-core
//!   invalidations on writes, `M`/`O` → `S` downgrades with dirty
//!   cache-to-cache owner forwarding on reads, and per-core snoop
//!   statistics;
//! - two execution modes: [`sim::run_lockstep`] (one trace per core,
//!   data-parallel over [`shard::shard_trace`]d kernels) and
//!   [`sim::run_multiprogrammed`] (more programs than cores, preemptive
//!   round-robin time slicing with pipeline drain);
//! - the architectural half of preemption lives in
//!   [`sched::run_round_robin`]: instruction-granularity time slicing via
//!   [`uve_core::Emulator::resume`] with full stream-context save/restore
//!   at every switch, which must be invisible in the final state.

#![warn(missing_docs)]

pub mod sched;
pub mod shard;
pub mod sim;

pub use sched::{run_round_robin, Job, JobOutcome, SchedError};
pub use shard::{relocate_trace, shard_trace, written_lines, SHARD_STRIDE_LINES};
pub use sim::{run_lockstep, run_multiprogrammed, MpConfig, MpOutcome, MpRun, SmpRun};

#[cfg(test)]
mod tests {
    use super::*;
    use uve_core::{EmuConfig, Emulator, Trace};
    use uve_cpu::{CpuConfig, OoOCore};
    use uve_kernels::{memcpy::Memcpy, saxpy::Saxpy, Benchmark, Flavor};
    use uve_mem::Memory;

    fn kernel_trace(bench: &dyn Benchmark, flavor: Flavor) -> Trace {
        uve_kernels::run(bench, flavor)
            .expect("kernel must run")
            .result
            .trace
    }

    #[test]
    fn one_core_lockstep_matches_single_core() {
        let trace = kernel_trace(&Saxpy::new(512), Flavor::Uve);
        let cpu = CpuConfig::default();
        let solo = OoOCore::new(cpu.clone()).run(&trace);
        let smp = run_lockstep(&cpu, std::slice::from_ref(&trace), 0)
            .expect("single core cannot violate coherence");
        assert_eq!(smp.per_core.len(), 1);
        assert_eq!(smp.per_core[0].cycles, solo.cycles);
        assert_eq!(smp.per_core[0].committed, solo.committed);
        assert_eq!(smp.per_core[0].account, solo.account);
        assert_eq!(smp.per_core[0].account.snoop_wait, 0);
    }

    #[test]
    fn sharded_two_core_run_generates_coherence_traffic() {
        let trace = kernel_trace(&Saxpy::new(512), Flavor::Scalar);
        let cpu = CpuConfig::default();
        let traces: Vec<Trace> = (0..2).map(|c| shard_trace(&trace, c, 8)).collect();
        let smp = run_lockstep(&cpu, &traces, 64).expect("single-writer invariant must hold");
        let cross: u64 = smp.snoop.iter().map(|s| s.cross_core_events()).sum();
        assert!(cross > 0, "shared written lines must cause snoop traffic");
        assert!(smp.bus_transactions > 0);
        for s in &smp.per_core {
            s.account
                .check(s.cycles)
                .expect("per-core cycle accounting must conserve");
            assert!(s.committed == trace.committed());
        }
    }

    #[test]
    fn sharding_slows_no_core_below_useful_progress() {
        // A fully-private shard (no shared written lines) must behave like
        // independent cores: same committed work, zero-ish interference
        // beyond shared-L2/DRAM contention.
        let trace = kernel_trace(&Memcpy::new(2048), Flavor::Scalar);
        let cpu = CpuConfig::default();
        let solo = OoOCore::new(cpu.clone()).run(&trace);
        let traces: Vec<Trace> = (0..2).map(|c| shard_trace(&trace, c, 0)).collect();
        let smp = run_lockstep(&cpu, &traces, 0).expect("coherent");
        for s in &smp.per_core {
            assert_eq!(s.committed, solo.committed);
            s.account.check(s.cycles).expect("conserves");
        }
    }

    #[test]
    fn multiprogrammed_preempts_and_conserves() {
        // UVE flavours commit one op per 16 elements, so those kernels must
        // be large enough not to fit inside the instruction window (a
        // program whose whole trace is already in flight at the first
        // freeze finishes during the drain and is never preempted again).
        let t0 = kernel_trace(&Saxpy::new(8192), Flavor::Uve);
        let t1 = kernel_trace(&Memcpy::new(1024), Flavor::Scalar);
        let t2 = kernel_trace(&Saxpy::new(1024), Flavor::Scalar);
        let t3 = kernel_trace(&Memcpy::new(8192), Flavor::Uve);
        let cpu = CpuConfig::default();
        let solo: Vec<u64> = [&t0, &t1, &t2, &t3]
            .iter()
            .map(|t| OoOCore::new(cpu.clone()).run(t).committed)
            .collect();
        // UVE flavours finish 1024 elements in few cycles, so the quantum
        // must be small for every program to be preempted at least twice.
        let cfg = MpConfig {
            cores: 2,
            quantum: 150,
            restore_penalty: 200,
            check_every: 256,
        };
        let run = run_multiprogrammed(&cpu, &[&t0, &t1, &t2, &t3], &cfg)
            .expect("single-writer invariant must hold");
        assert_eq!(run.programs.len(), 4);
        for (p, &solo_committed) in run.programs.iter().zip(&solo) {
            assert!(
                p.preemptions >= 2,
                "quantum {} must preempt each program at least twice (got {})",
                cfg.quantum,
                p.preemptions
            );
            assert_eq!(p.stats.committed, solo_committed);
            p.stats
                .account
                .check(p.stats.cycles)
                .expect("per-program cycle accounting must conserve across preemptions");
        }
    }

    #[test]
    fn round_robin_schedule_is_architecturally_invisible() {
        let benches: [(&dyn Benchmark, Flavor); 3] = [
            (&Saxpy::new(300), Flavor::Uve),
            (&Memcpy::new(300), Flavor::Uve),
            (&Saxpy::new(300), Flavor::Scalar),
        ];
        let mut jobs = Vec::new();
        let mut solo = Vec::new();
        for (bench, flavor) in benches {
            let run = uve_kernels::run(bench, flavor).expect("solo run");
            solo.push((run.emulator.arch_digest(), run.emulator.mem.content_hash()));
            let cfg = EmuConfig {
                vlen_bytes: flavor.vlen_bytes(),
                ..EmuConfig::default()
            };
            let mut emu = Emulator::new(cfg, Memory::new());
            bench.setup(&mut emu);
            jobs.push(Job {
                name: format!("{}-{flavor}", bench.name()),
                program: bench.program(flavor),
                emu,
            });
        }
        // UVE flavours commit few dynamic instructions (one op per 16
        // elements), so the quantum must be small to force preemptions.
        let outcomes = run_round_robin(jobs, 2, 20).expect("schedule must complete");
        for (out, (digest, hash)) in outcomes.iter().zip(&solo) {
            assert!(
                out.preemptions >= 2,
                "{}: wanted >=2 preemptions, got {}",
                out.name,
                out.preemptions
            );
            assert_eq!(
                out.arch_digest, *digest,
                "{}: register state differs",
                out.name
            );
            assert_eq!(out.mem_hash, *hash, "{}: memory image differs", out.name);
        }
    }
}
