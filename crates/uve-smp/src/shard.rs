//! Data-parallel trace sharding.
//!
//! The sharded-kernel evaluation mode runs the *same* kernel trace on every
//! core, with each core's written working set relocated to a private slice
//! of the address space — except for the first few written lines, which stay
//! at their original addresses on every core. The result is a workload with
//! a controlled mix of coherence behaviours:
//!
//! - **private writes** (the relocated majority): each core takes lines to
//!   `Modified` in its own L1 with no bus interference;
//! - **shared writes** (the retained prefix): every core writes the same
//!   lines, so ownership migrates over the snoop bus — cross-core
//!   invalidations, `M`/`O` → `S` downgrades, and dirty cache-to-cache
//!   forwarding all fire on the previously-dead MOESI hooks;
//! - **shared reads** (untouched read-only inputs): all cores load the same
//!   input arrays and hold them `Shared`.

use std::collections::HashSet;
use uve_core::Trace;
use uve_isa::Dir;
use uve_mem::LINE_BYTES;

/// Distance between per-core private address-space slices, in cache lines
/// (`1 << 20` lines = 64 MiB). Far larger than any kernel footprint, so
/// relocated lines never collide with another core's slice or with the
/// shared inputs.
pub const SHARD_STRIDE_LINES: u64 = 1 << 20;

/// Cache lines written by the trace — explicit stores and store-stream
/// chunks — in deterministic first-touch order, deduplicated.
pub fn written_lines(trace: &Trace) -> Vec<u64> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for op in &trace.ops {
        if op.is_store {
            for &line in &op.mem_lines {
                if seen.insert(line) {
                    out.push(line);
                }
            }
        }
    }
    for s in &trace.streams {
        if s.dir == Dir::Store {
            for chunk in &s.chunks {
                for &line in &chunk.lines {
                    if seen.insert(line) {
                        out.push(line);
                    }
                }
            }
        }
    }
    out
}

/// Relocates `trace`'s written lines for `core`, keeping the first
/// `shared_written` written lines (and every read-only line) at their
/// original addresses.
///
/// Core 0 always runs the unmodified trace; core `c` adds
/// `c * SHARD_STRIDE_LINES` to each private written line, everywhere it
/// appears (explicit accesses, access addresses, and stream chunk line
/// lists — including indirection-origin reads), so the relocated trace
/// stays self-consistent.
pub fn shard_trace(trace: &Trace, core: usize, shared_written: usize) -> Trace {
    let mut out = trace.clone();
    if core == 0 {
        return out;
    }
    let private: HashSet<u64> = written_lines(trace)
        .into_iter()
        .skip(shared_written)
        .collect();
    let delta = core as u64 * SHARD_STRIDE_LINES;
    let remap = |line: u64| {
        if private.contains(&line) {
            line + delta
        } else {
            line
        }
    };
    for op in &mut out.ops {
        for line in &mut op.mem_lines {
            *line = remap(*line);
        }
        let (line, offset) = (op.mem_addr / LINE_BYTES, op.mem_addr % LINE_BYTES);
        op.mem_addr = remap(line) * LINE_BYTES + offset;
    }
    for s in &mut out.streams {
        for chunk in &mut s.chunks {
            for line in &mut chunk.lines {
                *line = remap(*line);
            }
        }
    }
    out
}

/// Relocates *every* line of `trace` into address-space slot `slot` —
/// reads and writes alike — modelling the disjoint physical address spaces
/// of unrelated programs in a multi-programmed mix. Slot 0 is the identity.
///
/// Without this, two different kernels time-sliced over the same hierarchy
/// would write the same physical lines (every kernel generator places its
/// arrays at the same low addresses) and false-share them through the
/// coherence protocol.
pub fn relocate_trace(trace: &Trace, slot: usize) -> Trace {
    let mut out = trace.clone();
    if slot == 0 {
        return out;
    }
    let delta = slot as u64 * SHARD_STRIDE_LINES;
    for op in &mut out.ops {
        for line in &mut op.mem_lines {
            *line += delta;
        }
        if op.mem_addr != 0 || !op.mem_lines.is_empty() {
            op.mem_addr += delta * LINE_BYTES;
        }
    }
    for s in &mut out.streams {
        for chunk in &mut s.chunks {
            for line in &mut chunk.lines {
                *line += delta;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uve_core::{ChunkMeta, StreamTrace, TraceOp};
    use uve_isa::{ElemWidth, ExecClass, MemLevel};

    fn toy_trace() -> Trace {
        let mut t = Trace::new();
        let mut store = TraceOp::new(0, ExecClass::Store);
        store.is_store = true;
        store.mem_lines = vec![10, 11];
        store.mem_addr = 10 * LINE_BYTES + 8;
        t.ops.push(store);
        let mut load = TraceOp::new(1, ExecClass::Load);
        load.mem_lines = vec![10, 99];
        load.mem_addr = 99 * LINE_BYTES;
        t.ops.push(load);
        t.streams.push(StreamTrace {
            u: 2,
            dir: Dir::Store,
            level: MemLevel::L2,
            width: ElemWidth::Word,
            chunks: vec![ChunkMeta {
                lines: vec![11, 20],
                dim_switches: 0,
                valid: 16,
            }],
            cfg_insts: 1,
        });
        t
    }

    #[test]
    fn written_lines_are_deduped_in_order() {
        assert_eq!(written_lines(&toy_trace()), vec![10, 11, 20]);
    }

    #[test]
    fn core_zero_is_untouched() {
        let t = toy_trace();
        let s = shard_trace(&t, 0, 1);
        assert_eq!(s.ops[0].mem_lines, t.ops[0].mem_lines);
        assert_eq!(s.streams[0].chunks[0].lines, t.streams[0].chunks[0].lines);
    }

    #[test]
    fn private_writes_relocate_and_shared_prefix_stays() {
        let t = toy_trace();
        // First written line (10) stays shared; 11 and 20 go private.
        let s = shard_trace(&t, 2, 1);
        let d = 2 * SHARD_STRIDE_LINES;
        assert_eq!(s.ops[0].mem_lines, vec![10, 11 + d]);
        assert_eq!(s.ops[0].mem_addr, 10 * LINE_BYTES + 8);
        // The read of written line 10 stays shared; read-only 99 untouched.
        assert_eq!(s.ops[1].mem_lines, vec![10, 99]);
        assert_eq!(s.streams[0].chunks[0].lines, vec![11 + d, 20 + d]);
    }

    #[test]
    fn relocation_moves_every_line() {
        let t = toy_trace();
        let r = relocate_trace(&t, 2);
        let d = 2 * SHARD_STRIDE_LINES;
        assert_eq!(r.ops[0].mem_lines, vec![10 + d, 11 + d]);
        assert_eq!(r.ops[0].mem_addr, (10 + d) * LINE_BYTES + 8);
        assert_eq!(r.ops[1].mem_lines, vec![10 + d, 99 + d]);
        assert_eq!(r.streams[0].chunks[0].lines, vec![11 + d, 20 + d]);
        let id = relocate_trace(&t, 0);
        assert_eq!(id.ops[0].mem_lines, t.ops[0].mem_lines);
    }

    #[test]
    fn all_written_lines_shared_means_identity() {
        let t = toy_trace();
        let s = shard_trace(&t, 3, usize::MAX);
        assert_eq!(s.ops[0].mem_lines, t.ops[0].mem_lines);
        assert_eq!(s.streams[0].chunks[0].lines, t.streams[0].chunks[0].lines);
    }
}
