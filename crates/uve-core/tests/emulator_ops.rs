//! Instruction-level semantics tests for the emulator: one small program
//! per behaviour, covering the parts of the ISA the kernel suite exercises
//! only incidentally.

use uve_core::{EmuConfig, Emulator, RunResult};
use uve_isa::{assemble, FReg, XReg};
use uve_mem::Memory;

fn run(text: &str, setup: impl FnOnce(&mut Emulator)) -> (Emulator, RunResult) {
    let prog = assemble("t", text).expect("assembles");
    let mut emu = Emulator::new(EmuConfig::default(), Memory::new());
    setup(&mut emu);
    let r = emu.run(&prog).expect("runs");
    (emu, r)
}

#[test]
fn scalar_alu_semantics() {
    let (emu, _) = run(
        "
    li x1, 7
    li x2, -3
    add x3, x1, x2
    sub x4, x1, x2
    mul x5, x1, x2
    div x6, x1, x2
    rem x7, x1, x2
    and x8, x1, x2
    or x9, x1, x2
    xor x10, x1, x2
    min x11, x1, x2
    max x12, x1, x2
    slt x13, x2, x1
    sltu x14, x2, x1
    halt
",
        |_| {},
    );
    assert_eq!(emu.x(XReg::new(3)), 4);
    assert_eq!(emu.x(XReg::new(4)), 10);
    assert_eq!(emu.x(XReg::new(5)), -21);
    assert_eq!(emu.x(XReg::new(6)), -2); // trunc toward zero
    assert_eq!(emu.x(XReg::new(7)), 1);
    assert_eq!(emu.x(XReg::new(8)), 7 & -3);
    assert_eq!(emu.x(XReg::new(9)), 7 | -3);
    assert_eq!(emu.x(XReg::new(10)), 7 ^ -3);
    assert_eq!(emu.x(XReg::new(11)), -3);
    assert_eq!(emu.x(XReg::new(12)), 7);
    assert_eq!(emu.x(XReg::new(13)), 1); // -3 < 7 signed
    assert_eq!(emu.x(XReg::new(14)), 0); // unsigned: huge > 7
}

#[test]
fn division_by_zero_riscv_semantics() {
    let (emu, _) = run(
        "
    li x1, 42
    li x2, 0
    div x3, x1, x2
    rem x4, x1, x2
    halt
",
        |_| {},
    );
    assert_eq!(emu.x(XReg::new(3)), -1);
    assert_eq!(emu.x(XReg::new(4)), 42);
}

#[test]
fn shifts_mask_their_amount() {
    let (emu, _) = run(
        "
    li x1, 1
    li x2, 65
    sll x3, x1, x2      ; 65 & 63 = 1
    li x4, -8
    li x5, 2
    sra x6, x4, x5
    srl x7, x4, x5
    halt
",
        |_| {},
    );
    assert_eq!(emu.x(XReg::new(3)), 2);
    assert_eq!(emu.x(XReg::new(6)), -2);
    assert!(emu.x(XReg::new(7)) > 0);
}

#[test]
fn jal_links_and_jumps() {
    let (emu, _) = run(
        "
    jal x1, target
    li x2, 111          ; skipped
target:
    li x3, 5
    halt
",
        |_| {},
    );
    assert_eq!(emu.x(XReg::new(1)), 1);
    assert_eq!(emu.x(XReg::new(2)), 0);
    assert_eq!(emu.x(XReg::new(3)), 5);
}

#[test]
fn fp_conversions_and_moves() {
    let (emu, _) = run(
        "
    li x1, -7
    fcvt.f.x.w f1, x1
    fcvt.x.f.w x2, f1
    fmv.w f2, f1
    fneg.w f3, f1
    fabs.w f4, f3
    halt
",
        |_| {},
    );
    assert_eq!(emu.x(XReg::new(2)), -7);
    assert_eq!(emu.f(FReg::new(2)), -7.0);
    assert_eq!(emu.f(FReg::new(3)), 7.0);
    assert_eq!(emu.f(FReg::new(4)), 7.0);
}

#[test]
fn vector_int_ops_all_widths() {
    // Byte-wide vector add with wraparound.
    let (emu, _) = run(
        "
    li x1, 127
    so.v.dup.b.sg u1, x1
    li x2, 1
    so.v.dup.b.sg u2, x2
    so.a.add.b.sg u3, u1, u2, p0
    so.v.extr.x.b x3, u3[0]
    so.a.add.h.sg u4, u1, u2, p0
    halt
",
        |_| {},
    );
    assert_eq!(emu.x(XReg::new(3)), -128); // i8 wrap
}

#[test]
fn vector_compare_and_predicated_op() {
    let (emu, _) = run(
        "
    li x1, 3
    so.v.dup.w.sg u1, x1
    li x2, 5
    so.v.dup.w.sg u2, x2
    so.p.lt.w.sg p1, u1, u2        ; all true
    so.p.gt.w.sg p2, u1, u2        ; all false
    so.p.not p3, p2
    so.p.and p4, p1, p3
    so.a.add.w.sg u3, u1, u2, p4   ; executes on all lanes
    so.v.extr.x.w x3, u3[7]
    so.a.add.w.sg u4, u1, u2, p2   ; no lanes
    so.v.extr.x.w x4, u4[0]
    halt
",
        |_| {},
    );
    assert_eq!(emu.x(XReg::new(3)), 8);
    assert_eq!(emu.x(XReg::new(4)), 0); // lane invalid → zero
}

#[test]
fn predicate_branches() {
    let (emu, _) = run(
        "
    li x1, 0
    li x2, 1
    so.v.dup.w.sg u1, x1
    so.v.dup.w.sg u2, x2
    so.p.lt.w.sg p1, u1, u2      ; all true
    so.b.pnone p1, bad
    so.b.pany p1, good
bad:
    li x5, 99
    halt
good:
    li x5, 7
    so.p.gt.w.sg p2, u1, u2     ; all false
    so.b.pfirst p2, bad
    halt
",
        |_| {},
    );
    assert_eq!(emu.x(XReg::new(5)), 7);
}

#[test]
fn legacy_post_increment_vector_memory() {
    let (emu, _) = run(
        "
    li x1, 0x1000
    li x2, 0x2000
    ss.load.w u1, x1, p0
    ss.store.w u1, x2, p0
    ss.load.w u2, x1, p0      ; x1 advanced by one vector
    halt
",
        |emu| {
            let data: Vec<f32> = (0..32).map(|i| i as f32).collect();
            emu.mem.write_f32_slice(0x1000, &data);
        },
    );
    // Base registers post-incremented by VL (64 bytes).
    assert_eq!(emu.x(XReg::new(1)), 0x1000 + 128);
    assert_eq!(emu.x(XReg::new(2)), 0x2000 + 64);
    assert_eq!(emu.mem.read_f32(0x2000), 0.0);
    assert_eq!(emu.mem.read_f32(0x2000 + 60), 15.0);
    assert_eq!(emu.v(uve_isa::VReg::new(2)).float(0), 16.0);
}

#[test]
fn getvl_reports_lanes_per_width() {
    let (emu, _) = run(
        "
    ss.getvl.b x1
    ss.getvl.h x2
    ss.getvl.w x3
    ss.getvl.d x4
    halt
",
        |_| {},
    );
    assert_eq!(emu.x(XReg::new(1)), 64);
    assert_eq!(emu.x(XReg::new(2)), 32);
    assert_eq!(emu.x(XReg::new(3)), 16);
    assert_eq!(emu.x(XReg::new(4)), 8);
}

#[test]
fn narrow_machine_gets_narrow_vectors() {
    let prog = assemble("t", "ss.getvl.w x1\nhalt").unwrap();
    let mut emu = Emulator::new(
        EmuConfig {
            vlen_bytes: 16,
            ..EmuConfig::default()
        },
        Memory::new(),
    );
    emu.run(&prog).unwrap();
    assert_eq!(emu.x(XReg::new(1)), 4);
}

#[test]
fn double_width_stream_roundtrip() {
    let (emu, _) = run(
        "
    li x10, 12
    li x11, 0x1000
    li x12, 0x2000
    li x13, 1
    ss.ld.d u0, x11, x10, x13
    ss.st.d u1, x12, x10, x13
loop:
    so.a.mul.vs.d.fp u1, u0, f10, p0
    so.b.nend u0, loop
    halt
",
        |emu| {
            emu.set_f(FReg::FA0, 3.0);
            let data: Vec<f64> = (0..12).map(|i| i as f64).collect();
            emu.mem.write_f64_slice(0x1000, &data);
        },
    );
    let out = emu.mem.read_f64_slice(0x2000, 12);
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, 3.0 * i as f64);
    }
}

#[test]
fn stream_level_configuration_instruction() {
    let (_, r) = run(
        "
    li x10, 16
    li x11, 0x1000
    li x13, 1
    so.cfg.mem.l1 u0
    ss.ld.w u0, x11, x10, x13
    so.cfg.mem.dram u1
    ss.st.w u1, x11, x10, x13
loop:
    so.v.mv u1, u0
    so.b.nend u0, loop
    halt
",
        |_| {},
    );
    assert_eq!(r.trace.streams[0].level, uve_isa::MemLevel::L1);
    assert_eq!(r.trace.streams[1].level, uve_isa::MemLevel::Mem);
}

#[test]
fn gather_with_duplicate_indices() {
    let (emu, _) = run(
        "
    li x1, 0x1000
    li x2, 4
    li x3, 0
    whilelt.w p1, x3, x2
    vl1.w u1, x4, x3, p1
    vgather.w u2, x1, u1, p1
    so.a.hadd.w.sg u3, u2, p0
    so.v.extr.x.w x5, u3[0]
    halt
",
        |emu| {
            emu.set_x(XReg::new(4), 0x2000);
            emu.mem.write_i32_slice(0x2000, &[1, 1, 2, 1]);
            emu.mem.write_i32_slice(0x1000, &[10, 20, 30, 40]);
        },
    );
    assert_eq!(emu.x(XReg::new(5)), 20 + 20 + 30 + 20);
}

#[test]
fn vector_min_max_and_reductions() {
    let (emu, _) = run(
        "
    li x10, 5
    li x11, 0x1000
    li x13, 1
    ss.ld.w u0, x11, x10, x13
    so.a.hmin.w.fp u5, u0, p0
    so.v.extr.f.w f1, u5[0]
    li x20, 0x2000
    fst.w f1, 0(x20)
    halt
",
        |emu| {
            emu.mem.write_f32_slice(0x1000, &[3.0, -1.5, 7.0, 0.0, 2.0]);
        },
    );
    assert_eq!(emu.mem.read_f32(0x2000), -1.5);
}

#[test]
fn halt_is_recorded_in_trace() {
    let (_, r) = run("halt", |_| {});
    assert_eq!(r.committed, 1);
    assert_eq!(r.trace.ops.len(), 1);
}

#[test]
fn setvl_narrows_and_restores_vector_length() {
    let (emu, _) = run(
        "
    ss.getvl.w x1          ; hardware max
    li x2, 4
    ss.setvl.w x3, x2      ; narrow to 4 word lanes
    ss.getvl.w x4
    li x5, 9999
    ss.setvl.w x6, x5      ; clamped back to the maximum
    halt
",
        |_| {},
    );
    assert_eq!(emu.x(XReg::new(1)), 16);
    assert_eq!(emu.x(XReg::new(3)), 4);
    assert_eq!(emu.x(XReg::new(4)), 4);
    assert_eq!(emu.x(XReg::new(6)), 16);
    assert_eq!(emu.active_vlen_bytes(), 64);
}

#[test]
fn setvl_shrinks_stream_chunks() {
    // With VL narrowed to 4 lanes, a 16-element stream takes 4 chunks.
    let (_, r) = run(
        "
    li x2, 4
    ss.setvl.w x3, x2
    li x10, 16
    li x11, 0x1000
    li x13, 1
    ss.ld.w u0, x11, x10, x13
loop:
    so.v.mv u5, u0
    so.b.nend u0, loop
    halt
",
        |_| {},
    );
    assert_eq!(r.trace.streams[0].chunks.len(), 4);
    assert!(r.trace.streams[0].chunks.iter().all(|c| c.valid == 4));
}

#[test]
fn predicate_from_valid_lanes() {
    // A stream tail leaves invalid lanes; `so.p.fromvalid` exposes them as
    // a predicate for a subsequent conditional branch.
    let (emu, _) = run(
        "
    li x10, 5
    li x11, 0x1000
    li x13, 1
    ss.ld.w u0, x11, x10, x13
    so.v.mv u5, u0             ; 5 valid lanes of 16
    so.p.fromvalid p1, u5
    so.b.pfirst p1, has_data
    li x1, 0
    halt
has_data:
    li x1, 1
    halt
",
        |_| {},
    );
    assert_eq!(emu.x(XReg::new(1)), 1);
}

#[test]
fn li_expands_large_constants() {
    // Exercises all three `li` expansion tiers, including the 64-bit path
    // that assembles the low half in the scratch register t6.
    for value in [
        0i64,
        -1,
        2047,
        -2048,
        4096,
        0x7fff_f000,
        -0x8000_0000,
        0x1_2345_6789i64,
        0x7fff_ffff_ffff_ffff,
        -0x1234_5678_9abc_def0,
    ] {
        let (emu, _) = run(&format!("li x20, {value}\nhalt"), |_| {});
        assert_eq!(emu.x(XReg::new(20)), value, "li {value:#x}");
    }
}
