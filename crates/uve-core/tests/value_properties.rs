//! Randomized tests on the vector-value layer: lane encodings, validity
//! propagation, and the reinterpretation rules the emulator relies on.
//!
//! Parameters come from the `uve-conform` offline RNG (reproducible from
//! `(seed, case)`, no registry dependency).

use uve_conform::FuzzRng;
use uve_core::{PredVal, VecVal};
use uve_isa::ElemWidth;

const SEED: u64 = 0xa1_0e5;
const CASES: u64 = 256;

const WIDTHS: [ElemWidth; 4] = [
    ElemWidth::Byte,
    ElemWidth::Half,
    ElemWidth::Word,
    ElemWidth::Double,
];

/// Integer lanes round-trip after truncation to the lane width.
#[test]
fn int_lane_roundtrip() {
    for case in 0..CASES {
        let mut rng = FuzzRng::for_case(SEED, "int", case);
        let w = *rng.pick(&WIDTHS);
        let lane = rng.range_usize(0, 7);
        let v = rng.u64() as i64;
        let mut val = VecVal::empty(64, w);
        val.set_int(lane, v);
        let bits = w.bytes() * 8;
        let expect = (v << (64 - bits)) >> (64 - bits); // sign-truncate
        assert_eq!(val.int(lane), expect, "case {case}");
    }
}

/// Float lanes round-trip exactly at f64, through f32 rounding at Word.
#[test]
fn float_lane_roundtrip() {
    for case in 0..CASES {
        let mut rng = FuzzRng::for_case(SEED, "float", case);
        let lane = rng.range_usize(0, 7);
        // Full-precision mantissa in [-1, 1] scaled over a wide exponent
        // range: exercises values no f32 can represent exactly.
        let m = (rng.u64() as i64 as f64) / (1u64 << 63) as f64;
        let e = rng.range_i64(-60, 60) as i32;
        let v = m * f64::powi(2.0, e);
        let mut d = VecVal::empty(64, ElemWidth::Double);
        d.set_float(lane, v);
        assert_eq!(d.float(lane), v, "case {case}");
        let mut s = VecVal::empty(64, ElemWidth::Word);
        s.set_float(lane, v);
        assert_eq!(s.float(lane), f64::from(v as f32), "case {case}");
    }
}

/// `from_ints` marks exactly the provided lanes valid, in order.
#[test]
fn from_ints_valid_prefix() {
    for case in 0..CASES {
        let mut rng = FuzzRng::for_case(SEED, "prefix", case);
        let len = rng.range_usize(0, 15);
        let vals: Vec<i64> = (0..len).map(|_| rng.range_i64(-100, 99)).collect();
        let v = VecVal::from_ints(64, ElemWidth::Word, &vals);
        assert_eq!(v.valid_count(), vals.len(), "case {case}");
        assert_eq!(v.valid_prefix(), vals.len(), "case {case}");
        for (i, x) in vals.iter().enumerate() {
            assert_eq!(v.int(i), *x, "case {case}");
        }
    }
}

/// Reinterpreting preserves raw bytes: Word→Byte→Word is the identity
/// on the valid prefix.
#[test]
fn reinterpret_preserves_bytes() {
    for case in 0..CASES {
        let mut rng = FuzzRng::for_case(SEED, "reinterpret", case);
        let len = rng.range_usize(1, 15);
        let vals: Vec<i32> = (0..len).map(|_| rng.u64() as i32).collect();
        let as_i64: Vec<i64> = vals.iter().map(|&x| i64::from(x)).collect();
        let w = VecVal::from_ints(64, ElemWidth::Word, &as_i64);
        let b = w.reinterpret(ElemWidth::Byte);
        let back = b.reinterpret(ElemWidth::Word);
        assert_eq!(back.valid_prefix(), vals.len(), "case {case}");
        for (i, x) in vals.iter().enumerate() {
            assert_eq!(back.int(i) as i32, *x, "case {case}");
        }
    }
}

/// De Morgan over predicate lanes.
#[test]
fn pred_de_morgan() {
    for case in 0..CASES {
        let mut rng = FuzzRng::for_case(SEED, "demorgan", case);
        let a: Vec<bool> = (0..16).map(|_| rng.bool()).collect();
        let b: Vec<bool> = (0..16).map(|_| rng.bool()).collect();
        let pa = PredVal::from_bools(&a);
        let pb = PredVal::from_bools(&b);
        let lhs = pa.and(&pb).not(16);
        let rhs = pa.not(16).or(&pb.not(16));
        for i in 0..16 {
            assert_eq!(lhs.get(i), rhs.get(i), "case {case}");
        }
    }
}

/// Predicate counting is consistent with `any`.
#[test]
fn pred_count_vs_any() {
    for case in 0..CASES {
        let mut rng = FuzzRng::for_case(SEED, "count", case);
        let len = rng.range_usize(1, 31);
        let a: Vec<bool> = (0..len).map(|_| rng.bool()).collect();
        let p = PredVal::from_bools(&a);
        assert_eq!(p.any(a.len()), p.count(a.len()) > 0, "case {case}");
    }
}
