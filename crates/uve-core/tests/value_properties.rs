//! Property tests on the vector-value layer: lane encodings, validity
//! propagation, and the reinterpretation rules the emulator relies on.

// Compiled only with `--features proptest` (requires the registry-hosted
// `proptest` dev-dependency; see the workspace Cargo.toml note).
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use uve_core::{PredVal, VecVal};
use uve_isa::ElemWidth;

fn widths() -> impl Strategy<Value = ElemWidth> {
    prop_oneof![
        Just(ElemWidth::Byte),
        Just(ElemWidth::Half),
        Just(ElemWidth::Word),
        Just(ElemWidth::Double),
    ]
}

proptest! {
    /// Integer lanes round-trip after truncation to the lane width.
    #[test]
    fn int_lane_roundtrip(w in widths(), lane in 0usize..8, v in any::<i64>()) {
        let mut val = VecVal::empty(64, w);
        val.set_int(lane, v);
        let bits = w.bytes() * 8;
        let expect = (v << (64 - bits)) >> (64 - bits); // sign-truncate
        prop_assert_eq!(val.int(lane), expect);
    }

    /// Float lanes round-trip exactly at f64, through f32 rounding at Word.
    #[test]
    fn float_lane_roundtrip(lane in 0usize..8, v in -1e30f64..1e30) {
        let mut d = VecVal::empty(64, ElemWidth::Double);
        d.set_float(lane, v);
        prop_assert_eq!(d.float(lane), v);
        let mut s = VecVal::empty(64, ElemWidth::Word);
        s.set_float(lane, v);
        prop_assert_eq!(s.float(lane), f64::from(v as f32));
    }

    /// `from_ints` marks exactly the provided lanes valid, in order.
    #[test]
    fn from_ints_valid_prefix(vals in prop::collection::vec(-100i64..100, 0..16)) {
        let v = VecVal::from_ints(64, ElemWidth::Word, &vals);
        prop_assert_eq!(v.valid_count(), vals.len());
        prop_assert_eq!(v.valid_prefix(), vals.len());
        for (i, x) in vals.iter().enumerate() {
            prop_assert_eq!(v.int(i), *x);
        }
    }

    /// Reinterpreting preserves raw bytes: Word→Byte→Word is the identity
    /// on the valid prefix.
    #[test]
    fn reinterpret_preserves_bytes(vals in prop::collection::vec(any::<i32>(), 1..16)) {
        let as_i64: Vec<i64> = vals.iter().map(|&x| i64::from(x)).collect();
        let w = VecVal::from_ints(64, ElemWidth::Word, &as_i64);
        let b = w.reinterpret(ElemWidth::Byte);
        let back = b.reinterpret(ElemWidth::Word);
        prop_assert_eq!(back.valid_prefix(), vals.len());
        for (i, x) in vals.iter().enumerate() {
            prop_assert_eq!(back.int(i) as i32, *x);
        }
    }

    /// De Morgan over predicate lanes.
    #[test]
    fn pred_de_morgan(a in prop::collection::vec(any::<bool>(), 16),
                      b in prop::collection::vec(any::<bool>(), 16)) {
        let pa = PredVal::from_bools(&a);
        let pb = PredVal::from_bools(&b);
        let lhs = pa.and(&pb).not(16);
        let rhs = pa.not(16).or(&pb.not(16));
        for i in 0..16 {
            prop_assert_eq!(lhs.get(i), rhs.get(i));
        }
    }

    /// Predicate counting is consistent with `any`.
    #[test]
    fn pred_count_vs_any(a in prop::collection::vec(any::<bool>(), 1..32)) {
        let p = PredVal::from_bools(&a);
        prop_assert_eq!(p.any(a.len()), p.count(a.len()) > 0);
    }
}
