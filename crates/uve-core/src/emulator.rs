//! The functional emulator: executes a [`Program`] with full ISA semantics,
//! producing results in memory and a dynamic [`Trace`] for the timing model.

use crate::stream_unit::{StreamError, StreamUnit};
use crate::trace::{BranchOutcome, Trace, TraceOp};
use crate::translate::{ExecMode, TranslationCache};
use crate::value::{PredVal, Scalar, VecVal};
use std::borrow::Cow;
use std::collections::HashSet;
use std::fmt;
use uve_isa::{
    AluOp, BrCond, Dir, DupSrc, ElemWidth, ExecClass, FlatOp, FpOp, FpUnOp, HorizOp, Inst,
    PredCond, PredOp, Program, RegClass, StreamCond, StreamCtl, VCmpOp, VOp, VReg, VType, VUnOp,
    XReg,
};
use uve_mem::{Memory, LINE_BYTES};

/// Emulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmuConfig {
    /// Vector length in bytes (512-bit = 64 by default; NEON-like baselines
    /// run with 16).
    pub vlen_bytes: usize,
    /// Dynamic instruction budget; exceeding it aborts the run.
    pub max_steps: u64,
    /// Record a trace (disable for pure functional runs to save memory).
    pub record_trace: bool,
    /// Default memory level for streams (Fig. 11 knob; `so.cfg.mem`
    /// overrides per register).
    pub stream_level: uve_isa::MemLevel,
    /// Chunking mode for indirectly modified streams: packed to full vector
    /// width (default) or closed at every dimension-0 boundary.
    pub packing: uve_stream::IndirectPacking,
    /// Execution strategy: decode-dispatch interpretation (the default and
    /// the reference oracle) or the basic-block translation cache
    /// ([`ExecMode::Translated`]), bit-identical but faster.
    pub exec: ExecMode,
}

impl Default for EmuConfig {
    fn default() -> Self {
        Self {
            vlen_bytes: 64,
            max_steps: 200_000_000,
            record_trace: true,
            stream_level: uve_isa::MemLevel::L2,
            packing: uve_stream::IndirectPacking::default(),
            exec: ExecMode::default(),
        }
    }
}

/// Errors aborting emulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// A stream operation failed.
    Stream {
        /// Program counter of the offending instruction.
        pc: u32,
        /// The underlying stream error.
        err: StreamError,
    },
    /// The PC left the program without reaching `halt`.
    PcOutOfRange(u32),
    /// The dynamic instruction budget was exhausted (likely an infinite
    /// loop).
    OutOfFuel(u64),
    /// An instruction combined operands in a way the ISA leaves undefined
    /// (e.g. a bitwise vector op with an FP type tag).
    Unsupported {
        /// Program counter of the offending instruction.
        pc: u32,
        /// What was attempted.
        what: String,
    },
    /// A lane extraction addressed beyond the active vector length.
    LaneOutOfRange {
        /// Program counter of the offending instruction.
        pc: u32,
        /// Requested lane.
        lane: u8,
        /// Active lanes at the instruction's width.
        lanes: usize,
    },
    /// An internal invariant failed — a model bug, reported as an error
    /// instead of a panic so sweeps and fuzzers can isolate the input.
    Internal {
        /// Program counter of the offending instruction.
        pc: u32,
        /// The violated invariant.
        what: &'static str,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::Stream { pc, err } => write!(f, "stream error at pc {pc}: {err}"),
            EmuError::PcOutOfRange(pc) => write!(f, "pc {pc} out of range (missing halt?)"),
            EmuError::OutOfFuel(n) => write!(f, "exceeded instruction budget of {n}"),
            EmuError::Unsupported { pc, what } => write!(f, "unsupported at pc {pc}: {what}"),
            EmuError::LaneOutOfRange { pc, lane, lanes } => {
                write!(
                    f,
                    "pc {pc}: lane {lane} out of range ({lanes} active lanes)"
                )
            }
            EmuError::Internal { pc, what } => {
                write!(f, "internal model invariant violated at pc {pc}: {what}")
            }
        }
    }
}

impl std::error::Error for EmuError {}

/// Deterministic first-touch page-fault plan for precise stream-fault
/// testing (paper Sec. II-C/V).
///
/// Whether a page faults is a pure hash of `(seed, page)`, independent of
/// traversal order, and each page faults at most once: the first probe
/// marks it resident (the "handler" maps it), so the instruction-level
/// retry is guaranteed to make progress. Recovered runs are therefore
/// reproducible from the seed alone and end bit-identical to fault-free
/// runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamFaultPlan {
    seed: u64,
    rate: u64,
    handled: HashSet<u64>,
}

impl StreamFaultPlan {
    /// A plan faulting roughly one in `rate` first-touched pages
    /// (`rate == 0` disables injection).
    pub fn new(seed: u64, rate: u64) -> Self {
        Self {
            seed,
            rate,
            handled: HashSet::new(),
        }
    }

    /// Pages touched (and therefore mapped) so far.
    pub fn touched_pages(&self) -> usize {
        self.handled.len()
    }

    /// Decides the fate of `page`; only the very first touch can fault.
    fn faults_on(&mut self, page: u64) -> bool {
        if self.rate == 0 || !self.handled.insert(page) {
            return false;
        }
        splitmix(self.seed ^ page.wrapping_mul(0x9e37_79b9_7f4a_7c15)).is_multiple_of(self.rate)
    }
}

/// SplitMix64 finalizer — the same order-independent decision hash the
/// timing-layer injector uses.
fn splitmix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Result of a completed emulation.
#[derive(Debug)]
pub struct RunResult {
    /// Committed dynamic instruction count.
    pub committed: u64,
    /// The dynamic trace (empty if tracing was disabled).
    pub trace: Trace,
}

/// Resumable execution position of a program on an [`Emulator`] — the
/// functional half of a context switch. A scheduler runs a program in
/// budgeted slices via [`Emulator::resume`]; between slices the cursor
/// holds the PC, the fuel spent so far and the trace accumulated so far,
/// while the architectural state (registers, memory, stream unit) lives in
/// the emulator itself.
#[derive(Debug, Default)]
pub struct RunCursor {
    pc: u32,
    steps: u64,
    halted: bool,
    trace: Trace,
}

impl RunCursor {
    /// A cursor at the program entry point with no fuel spent.
    pub fn new() -> Self {
        Self::default()
    }

    /// Dynamic instructions committed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// True once the program reached `halt`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The trace accumulated so far (complete once [`halted`](Self::halted)).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the cursor into a [`RunResult`] (normally after halt).
    pub fn into_result(self) -> RunResult {
        RunResult {
            committed: self.steps,
            trace: self.trace,
        }
    }
}

/// Outcome of the shared front-end gates + fetch (see
/// [`Emulator::fetch_decoded`]).
enum FrontEnd {
    /// The slice budget expired before the next instruction.
    SliceExpired,
    /// The fetched instruction at the cursor's PC.
    Inst(Inst),
}

/// The functional machine: scalar/vector/predicate registers, memory, and
/// the stream unit.
#[derive(Debug)]
pub struct Emulator {
    cfg: EmuConfig,
    /// The simulated memory (public: kernels place their arrays here).
    pub mem: Memory,
    x: [i64; 32],
    f: [f64; 32],
    v: Vec<VecVal>,
    p: Vec<PredVal>,
    streams: StreamUnit,
    /// Active vector length in bytes (`ss.setvl` can narrow it below the
    /// hardware maximum `cfg.vlen_bytes`).
    vl_bytes: usize,
    /// Optional page-fault injection plan (precise stream faults).
    fault_plan: Option<StreamFaultPlan>,
    /// Precise stream-fault traps taken and recovered so far.
    faults_taken: u64,
    /// Translated basic blocks (used only under [`ExecMode::Translated`]).
    cache: TranslationCache,
}

impl Emulator {
    /// Creates an emulator with the given configuration over `mem`.
    pub fn new(cfg: EmuConfig, mem: Memory) -> Self {
        let v = (0..32)
            .map(|_| VecVal::empty(cfg.vlen_bytes, ElemWidth::Word))
            .collect();
        let mut p: Vec<PredVal> = (0..16).map(|_| PredVal::all_false()).collect();
        p[0] = PredVal::all_true(); // hardwired p0
        Self {
            cfg,
            mem,
            x: [0; 32],
            f: [0.0; 32],
            v,
            p,
            streams: StreamUnit::with_config(cfg.stream_level, cfg.packing),
            vl_bytes: cfg.vlen_bytes,
            fault_plan: None,
            faults_taken: 0,
            cache: TranslationCache::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> EmuConfig {
        self.cfg
    }

    /// Installs (or clears) a page-fault injection plan. Faulting stream
    /// elements then trap precisely at the consuming instruction, run the
    /// plan's implicit handler, and re-execute.
    pub fn set_fault_plan(&mut self, plan: Option<StreamFaultPlan>) {
        self.fault_plan = plan;
    }

    /// Precise stream-fault traps taken (and recovered) so far.
    pub fn faults_taken(&self) -> u64 {
        self.faults_taken
    }

    /// FNV-1a digest of the architectural register state (integer, FP,
    /// vector and predicate registers plus the active vector length);
    /// combined with [`Memory::content_hash`] it summarises a run's final
    /// state for bit-identity comparisons.
    pub fn arch_digest(&self) -> u64 {
        const PRIME: u64 = 0x100_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let put = |h: &mut u64, v: u64| {
            for b in v.to_le_bytes() {
                *h = (*h ^ u64::from(b)).wrapping_mul(PRIME);
            }
        };
        for &x in &self.x {
            put(&mut h, x as u64);
        }
        for &f in &self.f {
            put(&mut h, f.to_bits());
        }
        for v in &self.v {
            put(&mut h, v.width().bytes() as u64);
            for i in 0..v.lanes() {
                put(&mut h, v.int(i) as u64);
                put(&mut h, u64::from(v.lane_valid(i)));
            }
        }
        for p in &self.p {
            for i in 0..crate::value::MAX_LANES {
                put(&mut h, u64::from(p.get(i)));
            }
        }
        put(&mut h, self.vl_bytes as u64);
        h
    }

    /// Reads a scalar integer register.
    pub fn x(&self, r: XReg) -> i64 {
        self.x[r.index()]
    }

    /// Writes a scalar integer register (`x0` stays zero).
    pub fn set_x(&mut self, r: XReg, v: i64) {
        if r != XReg::ZERO {
            self.x[r.index()] = v;
        }
    }

    /// Reads a scalar FP register.
    pub fn f(&self, r: uve_isa::FReg) -> f64 {
        self.f[r.index()]
    }

    /// Writes a scalar FP register.
    pub fn set_f(&mut self, r: uve_isa::FReg, v: f64) {
        self.f[r.index()] = v;
    }

    /// Reads a vector register (plain value; does not consume streams).
    pub fn v(&self, r: VReg) -> &VecVal {
        &self.v[r.index()]
    }

    /// The stream unit (for inspection in tests).
    pub fn streams(&self) -> &StreamUnit {
        &self.streams
    }

    /// Active vector lanes at `width` (respects `ss.setvl`).
    fn lanes(&self, width: ElemWidth) -> usize {
        self.vl_bytes / width.bytes()
    }

    /// The active vector length in bytes.
    pub fn active_vlen_bytes(&self) -> usize {
        self.vl_bytes
    }

    fn is_input_stream(&self, r: VReg) -> bool {
        self.streams.get(r).is_some_and(|s| s.dir == Dir::Load)
    }

    fn is_output_stream(&self, r: VReg) -> bool {
        self.streams.get(r).is_some_and(|s| s.dir == Dir::Store)
    }

    /// Reads a vector operand, consuming one chunk if it is an input
    /// stream. Consumed registers are tracked in `consumed` so a register
    /// used twice in one instruction is only iterated once.
    fn read_v(
        &mut self,
        r: VReg,
        trace: &mut Trace,
        op: &mut TraceOp,
        consumed: &mut Vec<(VReg, VecVal)>,
        pc: u32,
    ) -> Result<VecVal, EmuError> {
        if let Some((_, val)) = consumed.iter().find(|(c, _)| *c == r) {
            return Ok(val.clone());
        }
        if self.is_input_stream(r) {
            let mut probe;
            let fault: Option<&mut dyn FnMut(u64) -> bool> = if self.fault_plan.is_some() {
                let plan = &mut self.fault_plan;
                probe = move |page: u64| plan.as_mut().is_some_and(|p| p.faults_on(page));
                Some(&mut probe)
            } else {
                None
            };
            let c = self
                .streams
                .consume_with(r, &self.mem, self.vl_bytes, trace, fault)
                .map_err(|err| EmuError::Stream { pc, err })?;
            let inst = self
                .streams
                .get(r)
                .ok_or(EmuError::Internal {
                    pc,
                    what: "stream vanished during consume",
                })?
                .instance;
            op.stream_reads.push((inst, c.chunk));
            if self.streams.get(r).is_some_and(|s| s.at_end()) {
                // Pattern complete: the stream terminates and the register
                // reverts to a plain vector register (Sec. IV-A, Stream
                // Termination).
                op.stream_close = Some(inst);
                let _ = self.streams.stop(r);
            }
            self.v[r.index()] = c.value.clone();
            consumed.push((r, c.value.clone()));
            Ok(c.value)
        } else {
            if self.is_output_stream(r) {
                return Err(EmuError::Stream {
                    pc,
                    err: StreamError::WrongDirection(r.num()),
                });
            }
            Ok(self.v[r.index()].clone())
        }
    }

    /// Writes a vector destination, producing into an output stream if one
    /// is bound.
    fn write_v(
        &mut self,
        r: VReg,
        val: VecVal,
        trace: &mut Trace,
        op: &mut TraceOp,
        pc: u32,
    ) -> Result<(), EmuError> {
        if self.is_output_stream(r) {
            let mut probe;
            let fault: Option<&mut dyn FnMut(u64) -> bool> = if self.fault_plan.is_some() {
                let plan = &mut self.fault_plan;
                probe = move |page: u64| plan.as_mut().is_some_and(|p| p.faults_on(page));
                Some(&mut probe)
            } else {
                None
            };
            let chunk = self
                .streams
                .produce_with(r, &mut self.mem, &val, trace, fault)
                .map_err(|err| EmuError::Stream { pc, err })?;
            let inst = self
                .streams
                .get(r)
                .ok_or(EmuError::Internal {
                    pc,
                    what: "stream vanished during produce",
                })?
                .instance;
            op.stream_writes.push((inst, chunk));
            if self.streams.get(r).is_some_and(|s| s.at_end()) {
                op.stream_close = Some(inst);
                let _ = self.streams.stop(r);
            }
        } else if self.is_input_stream(r) {
            return Err(EmuError::Stream {
                pc,
                err: StreamError::WrongDirection(r.num()),
            });
        }
        self.v[r.index()] = val;
        Ok(())
    }

    fn dup_value(&self, src: DupSrc, width: ElemWidth, ty: VType) -> VecVal {
        let mut v = VecVal::empty(self.cfg.vlen_bytes, width);
        let lanes = self.lanes(width);
        for i in 0..lanes {
            match (ty, src) {
                (VType::Int, DupSrc::X(r)) => v.set_int(i, self.x[r.index()]),
                (VType::Int, DupSrc::F(r)) => v.set_int(i, self.f[r.index()] as i64),
                (VType::Fp, DupSrc::F(r)) => v.set_float(i, self.f[r.index()]),
                (VType::Fp, DupSrc::X(r)) => v.set_float(i, self.x[r.index()] as f64),
            }
            v.set_lane_valid(i, true);
        }
        v
    }

    /// Runs `program` from index 0 to `halt`.
    ///
    /// # Errors
    ///
    /// Returns the first execution error (stream misuse, runaway loop, PC
    /// escape).
    pub fn run(&mut self, program: &Program) -> Result<RunResult, EmuError> {
        let mut cursor = RunCursor::new();
        self.resume(program, &mut cursor, None)?;
        Ok(cursor.into_result())
    }

    /// Runs `program` from `cursor` for at most `budget` dynamic
    /// instructions (to halt when `None`), advancing the cursor in place —
    /// the preemption primitive a multiprogramming scheduler time-slices
    /// with. Returns `true` once the program halted. The slice boundary
    /// falls between instructions, so it can land mid-stream (including
    /// inside an indirect-modifier region at a non-VLEN-multiple element);
    /// [`save_stream_context`](Self::save_stream_context) /
    /// [`restore_stream_context`](Self::restore_stream_context) carry the
    /// stream state across the switch.
    ///
    /// # Errors
    ///
    /// Returns the first execution error; the global `max_steps` fuel bound
    /// applies to the cursor's cumulative step count.
    pub fn resume(
        &mut self,
        program: &Program,
        cursor: &mut RunCursor,
        budget: Option<u64>,
    ) -> Result<bool, EmuError> {
        if cursor.halted {
            return Ok(true);
        }
        let slice_end = budget.map(|b| cursor.steps.saturating_add(b));
        if self.cfg.exec == ExecMode::Translated {
            return self.resume_translated(program, cursor, slice_end);
        }
        loop {
            let inst = match self.fetch_decoded(program, cursor, slice_end)? {
                FrontEnd::SliceExpired => return Ok(false),
                FrontEnd::Inst(inst) => inst,
            };
            if inst == Inst::Halt {
                self.retire_halt(cursor);
                return Ok(true);
            }
            let next = if self.fault_plan.is_some() {
                self.step_with_recovery(inst, cursor.pc, &mut cursor.trace)?
            } else {
                self.step(inst, cursor.pc, &mut cursor.trace)?
            };
            cursor.steps += 1;
            cursor.pc = next;
        }
    }

    /// The per-step front-end shared by the interpreter loop and the
    /// translated executor: fuel and slice gates, periodic deadline poll,
    /// then fetch. This is the single insertion point where a PC meets its
    /// instruction — the translation cache hooks in right after it (looking
    /// up a whole block instead of stepping one instruction) and re-applies
    /// the same gates at block granularity.
    fn fetch_decoded(
        &self,
        program: &Program,
        cursor: &RunCursor,
        slice_end: Option<u64>,
    ) -> Result<FrontEnd, EmuError> {
        if self.front_gates(cursor, slice_end)? {
            return Ok(FrontEnd::SliceExpired);
        }
        match program.fetch(cursor.pc) {
            Some(inst) => Ok(FrontEnd::Inst(inst)),
            None => Err(EmuError::PcOutOfRange(cursor.pc)),
        }
    }

    /// The fuel and slice gates plus the periodic deadline poll, applied
    /// before every instruction (interpreter) and before every block
    /// (translated executor, whose span capping makes the gates fire at the
    /// same step numbers). Returns `true` when the slice expired.
    #[inline]
    fn front_gates(&self, cursor: &RunCursor, slice_end: Option<u64>) -> Result<bool, EmuError> {
        if cursor.steps >= self.cfg.max_steps {
            return Err(EmuError::OutOfFuel(self.cfg.max_steps));
        }
        if slice_end.is_some_and(|end| cursor.steps >= end) {
            return Ok(true);
        }
        if cursor.steps & 0xF_FFFF == 0 {
            crate::deadline::check("emulator");
        }
        Ok(false)
    }

    /// Retires `halt` at the cursor's PC: one committed step, a trace op if
    /// recording, and the halted flag.
    fn retire_halt(&self, cursor: &mut RunCursor) {
        cursor.steps += 1;
        if self.cfg.record_trace {
            cursor
                .trace
                .ops
                .push(TraceOp::new(cursor.pc, ExecClass::Simple));
        }
        cursor.halted = true;
    }

    /// Block-at-a-time executor for [`ExecMode::Translated`]. Bit-identical
    /// to the interpreter loop: the front-end gates of
    /// [`fetch_decoded`](Self::fetch_decoded) run before every block, each
    /// block's straight-line span is capped so the fuel / slice / deadline
    /// gates fire at exactly the interpreter's step numbers, and tracing or
    /// fault-injection runs route every instruction through the
    /// interpreter's own `step` path (the flat fast path only handles the
    /// untraced, fault-free case).
    fn resume_translated(
        &mut self,
        program: &Program,
        cursor: &mut RunCursor,
        slice_end: Option<u64>,
    ) -> Result<bool, EmuError> {
        // The cache is moved out of `self` for the duration of the run so
        // translated blocks can be borrowed across `exec_flat`/`step` calls
        // without a per-block refcount; nothing inside `step` touches it.
        let mut cache = std::mem::take(&mut self.cache);
        cache.ensure_program(program);
        let r = self.run_blocks(program, cursor, slice_end, &mut cache);
        self.cache = cache;
        r
    }

    /// The translated dispatch loop proper (see
    /// [`resume_translated`](Self::resume_translated) for the contract).
    fn run_blocks(
        &mut self,
        program: &Program,
        cursor: &mut RunCursor,
        slice_end: Option<u64>,
        cache: &mut TranslationCache,
    ) -> Result<bool, EmuError> {
        // Invariant across the whole resume: tracing and fault plans are
        // per-run configuration, never toggled mid-slice.
        let fast = !self.cfg.record_trace && self.fault_plan.is_none();
        loop {
            if self.front_gates(cursor, slice_end)? {
                return Ok(false);
            }
            let Some(block) = cache.block_at(program, cursor.pc) else {
                // No straight-line body at this PC: either `halt` (retired
                // here, exactly as the interpreter loop does) or a PC out
                // of range.
                return match program.fetch(cursor.pc) {
                    Some(Inst::Halt) => {
                        self.retire_halt(cursor);
                        Ok(true)
                    }
                    _ => Err(EmuError::PcOutOfRange(cursor.pc)),
                };
            };
            // Cap the straight-line span so the next fuel / slice / deadline
            // gate lands exactly on a loop re-entry, as in the interpreter.
            let next_poll = (cursor.steps | 0xF_FFFF) + 1;
            let mut gate = self.cfg.max_steps.min(next_poll);
            if let Some(end) = slice_end {
                gate = gate.min(end);
            }
            let span = usize::try_from(gate - cursor.steps)
                .map_or(block.flats.len(), |g| g.min(block.flats.len()));
            if fast && block.simple_body && span == block.flats.len() {
                // All-simple body: no op before the last can fail, branch,
                // or touch a stream, so the body runs with no per-op
                // dispatch machinery; the final op alone decides the
                // successor (or errors, uncommitted, as in the
                // interpreter). A branch back to the block's own start (the
                // canonical tight loop) stays fused in this closed loop —
                // `budget` pre-counts how many whole iterations fit before
                // the next fuel / slice / deadline gate, so gate step
                // numbers still match the interpreter exactly.
                let n = block.flats.len();
                let last_pc = block.start_pc + (n - 1) as u32;
                let mut budget = (gate - cursor.steps) / n as u64;
                loop {
                    for flat in &block.flats[..n - 1] {
                        self.exec_simple(flat);
                    }
                    match self.exec_flat(
                        &block.flats[n - 1],
                        &block.insts[n - 1],
                        last_pc,
                        &mut cursor.trace,
                    ) {
                        Ok(rd) => {
                            cursor.steps += n as u64;
                            cursor.pc = rd.unwrap_or(last_pc + 1);
                            budget -= 1;
                            if budget == 0 || cursor.pc != block.start_pc {
                                break;
                            }
                        }
                        Err(e) => {
                            cursor.steps += (n - 1) as u64;
                            cursor.pc = last_pc;
                            return Err(e);
                        }
                    }
                }
                continue;
            }
            let mut redirect = None;
            let mut done = 0usize;
            let ops = block.flats[..span].iter().zip(&block.insts[..span]);
            for (i, (flat, inst)) in ops.enumerate() {
                let pc = block.start_pc + i as u32;
                let r = if fast {
                    self.exec_flat(flat, inst, pc, &mut cursor.trace)
                } else if self.fault_plan.is_some() {
                    self.step_with_recovery(*inst, pc, &mut cursor.trace)
                        .map(|next| (next != pc + 1).then_some(next))
                } else {
                    self.step(*inst, pc, &mut cursor.trace)
                        .map(|next| (next != pc + 1).then_some(next))
                };
                match r {
                    Ok(rd) => {
                        done = i + 1;
                        if rd.is_some() {
                            redirect = rd;
                            break;
                        }
                    }
                    Err(e) => {
                        // As in the interpreter: the failing instruction is
                        // not committed and the cursor points at it.
                        cursor.steps += i as u64;
                        cursor.pc = pc;
                        return Err(e);
                    }
                }
            }
            cursor.steps += done as u64;
            cursor.pc = redirect.unwrap_or(block.start_pc + done as u32);
        }
    }

    /// Writes integer register `rd` by raw index (`x0` stays zero) — the
    /// flat-path twin of [`set_x`](Self::set_x).
    #[inline]
    fn set_x_idx(&mut self, rd: u8, v: i64) {
        if rd != 0 {
            // `& 31` proves the index in range; the decoder/lowerer never
            // emits a register number >= 32, so it's a no-op semantically
            // and elides the bounds-check branch on the hot path.
            self.x[(rd & 31) as usize] = v;
        }
    }

    /// True when `r` currently has a stream bound (either direction) — the
    /// flat fast path re-checks this per vector operand and falls back to
    /// the interpreter when any operand streams, since stream consumption
    /// mutates the stream unit and the trace's chunk metadata.
    #[inline]
    fn stream_bound(&self, r: VReg) -> bool {
        self.streams.get(r).is_some()
    }

    /// Routes one translated op through the interpreter's `step`, mapping
    /// its next-PC result to the flat executor's redirect convention.
    fn step_fallback(
        &mut self,
        inst: Inst,
        pc: u32,
        trace: &mut Trace,
    ) -> Result<Option<u32>, EmuError> {
        self.step(inst, pc, trace)
            .map(|next| (next != pc + 1).then_some(next))
    }

    /// Executes one pre-resolved flat op. Only reached on untraced,
    /// fault-free runs; returns `Some(target)` when a taken branch
    /// redirects control. Architectural effects are bit-identical to
    /// [`step`](Self::step): lane loops go through the same shared `_ref`
    /// helpers, arithmetic uses the same expressions, and anything
    /// involving a bound stream (or an op lowered to [`FlatOp::Fallback`])
    /// re-routes through `step` itself.
    #[inline(always)]
    fn exec_flat(
        &mut self,
        flat: &FlatOp,
        inst: &Inst,
        pc: u32,
        trace: &mut Trace,
    ) -> Result<Option<u32>, EmuError> {
        if flat.is_simple() {
            self.exec_simple(flat);
            return Ok(None);
        }
        match *flat {
            FlatOp::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let a = self.x[(rs1 & 31) as usize];
                let b = self.x[(rs2 & 31) as usize];
                let taken = match cond {
                    BrCond::Eq => a == b,
                    BrCond::Ne => a != b,
                    BrCond::Lt => a < b,
                    BrCond::Ge => a >= b,
                    BrCond::Ltu => (a as u64) < (b as u64),
                    BrCond::Geu => (a as u64) >= (b as u64),
                };
                Ok(taken.then_some(target))
            }
            FlatOp::Jal { rd, target } => {
                self.set_x_idx(rd, (pc + 1) as i64);
                Ok(Some(target))
            }
            FlatOp::BrPred { cond, p, target } => {
                let pv = &self.p[p as usize];
                let taken = match cond {
                    PredCond::First => pv.first(),
                    PredCond::Any => pv.any(crate::value::MAX_LANES),
                    PredCond::None => !pv.any(crate::value::MAX_LANES),
                };
                Ok(taken.then_some(target))
            }
            FlatOp::SsBranch { cond, u, target } => {
                let (flags, at_end) = self.streams.branch_flags(u).ok_or(EmuError::Stream {
                    pc,
                    err: StreamError::NotConfigured(u.num()),
                })?;
                let taken = match cond {
                    StreamCond::NotEnd => !at_end,
                    StreamCond::End => at_end,
                    StreamCond::DimNotEnd(k) => !flags.ends_dim(k as usize),
                    StreamCond::DimEnd(k) => flags.ends_dim(k as usize),
                };
                Ok(taken.then_some(target))
            }
            // Vector ops (and `Fallback`) live in the outlined second half,
            // keeping this hot function small enough to inline into the
            // block dispatch loop.
            _ => self.exec_flat_vec(flat, inst, pc, trace),
        }
    }

    /// Executes one *simple* op ([`FlatOp::is_simple`]): scalar-only state,
    /// infallible, no control transfer. This is the innermost fast path —
    /// a translated block whose body is all-simple runs these back to back
    /// with no per-instruction dispatch machinery.
    #[inline(always)]
    fn exec_simple(&mut self, flat: &FlatOp) {
        match *flat {
            FlatOp::Alu { op, rd, rs1, rs2 } => {
                let a = self.x[(rs1 & 31) as usize];
                let b = self.x[(rs2 & 31) as usize];
                self.set_x_idx(rd, scalar_alu(op, a, b));
            }
            FlatOp::AluImm { op, rd, rs1, imm } => {
                let a = self.x[(rs1 & 31) as usize];
                self.set_x_idx(rd, scalar_alu(op, a, imm));
            }
            FlatOp::Li { rd, imm } => self.set_x_idx(rd, imm),
            FlatOp::Ld {
                rd,
                base,
                off,
                width,
            } => {
                let addr = (self.x[(base & 31) as usize] + off) as u64;
                let v = self.mem.read_elem(addr, width);
                self.set_x_idx(rd, v);
            }
            FlatOp::St {
                src,
                base,
                off,
                width,
            } => {
                let addr = (self.x[(base & 31) as usize] + off) as u64;
                self.mem
                    .write_elem(addr, width, self.x[(src & 31) as usize]);
            }
            FlatOp::Fld {
                fd,
                base,
                off,
                width,
            } => {
                let addr = (self.x[(base & 31) as usize] + off) as u64;
                self.f[(fd & 31) as usize] = match width {
                    ElemWidth::Double => self.mem.read_f64(addr),
                    _ => self.mem.read_f32(addr) as f64,
                };
            }
            FlatOp::Fst {
                src,
                base,
                off,
                width,
            } => {
                let addr = (self.x[(base & 31) as usize] + off) as u64;
                match width {
                    ElemWidth::Double => self.mem.write_f64(addr, self.f[(src & 31) as usize]),
                    _ => self.mem.write_f32(addr, self.f[(src & 31) as usize] as f32),
                }
            }
            FlatOp::FAlu {
                op,
                width,
                fd,
                fs1,
                fs2,
            } => {
                let a = self.f[(fs1 & 31) as usize];
                let b = self.f[(fs2 & 31) as usize];
                self.f[(fd & 31) as usize] = fp_alu(op, a, b, width);
            }
            FlatOp::FMac {
                width,
                fd,
                fs1,
                fs2,
                fs3,
            } => {
                let r = self.f[(fs1 & 31) as usize] * self.f[(fs2 & 31) as usize]
                    + self.f[(fs3 & 31) as usize];
                self.f[(fd & 31) as usize] = round_fp(r, width);
            }
            FlatOp::FUn { op, width, fd, fs } => {
                let a = self.f[(fs & 31) as usize];
                let r = match op {
                    FpUnOp::Sqrt => a.sqrt(),
                    FpUnOp::Abs => a.abs(),
                    FpUnOp::Neg => -a,
                    FpUnOp::Mv => a,
                };
                self.f[(fd & 31) as usize] = round_fp(r, width);
            }
            FlatOp::FMvXF { rd, fs } => {
                let v = self.f[(fs & 31) as usize].to_bits() as i64;
                self.set_x_idx(rd, v);
            }
            FlatOp::FMvFX { fd, rs } => {
                self.f[(fd & 31) as usize] = f64::from_bits(self.x[(rs & 31) as usize] as u64);
            }
            FlatOp::FCvtFX { width, fd, rs } => {
                self.f[(fd & 31) as usize] = round_fp(self.x[(rs & 31) as usize] as f64, width);
            }
            FlatOp::FCvtXF { rd, fs } => {
                let v = self.f[(fs & 31) as usize] as i64;
                self.set_x_idx(rd, v);
            }
            FlatOp::Nop => {}
            FlatOp::SsGetVl { rd, width } => {
                let n = self.lanes(width) as i64;
                self.set_x_idx(rd, n);
            }
            FlatOp::SsSetVl { rd, rs, width } => {
                let max = self.cfg.vlen_bytes / width.bytes();
                let req = self.x[(rs & 31) as usize].max(0) as usize;
                let granted = req.min(max).max(1);
                self.vl_bytes = granted * width.bytes();
                self.set_x_idx(rd, granted as i64);
            }
            FlatOp::IncVl { rd, width } => {
                let n = self.lanes(width) as i64;
                self.set_x_idx(rd, self.x[(rd & 31) as usize] + n);
            }
            FlatOp::CntVl { rd, width } => {
                let n = self.lanes(width) as i64;
                self.set_x_idx(rd, n);
            }
            FlatOp::WhileLt {
                pd,
                rs1,
                rs2,
                width,
            } => {
                let a = self.x[(rs1 & 31) as usize];
                let b = self.x[(rs2 & 31) as usize];
                self.p[pd as usize] = whilelt_ref(a, b, self.lanes(width));
                self.p[0] = PredVal::all_true();
            }
            FlatOp::PredAlu { op, pd, ps1, ps2 } => {
                let a = self.p[ps1 as usize].clone();
                let b = self.p[ps2 as usize].clone();
                self.p[pd as usize] = match op {
                    PredOp::Mov => a,
                    PredOp::Not => a.not(crate::value::MAX_LANES),
                    PredOp::And => a.and(&b),
                    PredOp::Or => a.or(&b),
                };
                self.p[0] = PredVal::all_true();
            }
            _ => unreachable!("non-simple op dispatched to exec_simple"),
        }
    }

    /// The vector half of [`exec_flat`](Self::exec_flat): stream-probing
    /// vector ops and the interpreter fallback, outlined so the scalar hot
    /// path stays compact. Any op not matched here routes through `step`,
    /// which is bit-identical by construction.
    #[allow(clippy::too_many_lines)]
    fn exec_flat_vec(
        &mut self,
        flat: &FlatOp,
        inst: &Inst,
        pc: u32,
        trace: &mut Trace,
    ) -> Result<Option<u32>, EmuError> {
        let vlen = self.cfg.vlen_bytes;
        match *flat {
            FlatOp::VDup { vd, src, width, ty } => {
                if self.stream_bound(vd) {
                    return self.step_fallback(*inst, pc, trace);
                }
                self.v[vd.index()] = self.dup_value(src, width, ty);
            }
            FlatOp::VMv { vd, vs } => {
                if self.stream_bound(vd) || self.stream_bound(vs) {
                    return self.step_fallback(*inst, pc, trace);
                }
                let val = self.v[vs.index()].clone();
                self.v[vd.index()] = val;
            }
            FlatOp::VUn {
                op,
                ty,
                width,
                vd,
                vs,
                pred,
            } => {
                if self.stream_bound(vd) || self.stream_bound(vs) {
                    return self.step_fallback(*inst, pc, trace);
                }
                let out = vun_ref(
                    op,
                    ty,
                    width,
                    &self.v[vs.index()],
                    &self.p[pred as usize],
                    self.lanes(width),
                    vlen,
                );
                self.v[vd.index()] = out;
            }
            FlatOp::VArith {
                op,
                ty,
                width,
                vd,
                vs1,
                vs2,
                pred,
            } => {
                if self.stream_bound(vd) || self.stream_bound(vs1) || self.stream_bound(vs2) {
                    return self.step_fallback(*inst, pc, trace);
                }
                let out = lanewise_ref(
                    op,
                    ty,
                    width,
                    &self.v[vs1.index()],
                    &self.v[vs2.index()],
                    &self.p[pred as usize],
                    self.lanes(width),
                    vlen,
                    pc,
                )?;
                self.v[vd.index()] = out;
            }
            FlatOp::VArithVS {
                op,
                ty,
                width,
                vd,
                vs1,
                scalar,
                pred,
            } => {
                if self.stream_bound(vd) || self.stream_bound(vs1) {
                    return self.step_fallback(*inst, pc, trace);
                }
                let b = self.dup_value(scalar, width, ty);
                let out = lanewise_ref(
                    op,
                    ty,
                    width,
                    &self.v[vs1.index()],
                    &b,
                    &self.p[pred as usize],
                    self.lanes(width),
                    vlen,
                    pc,
                )?;
                self.v[vd.index()] = out;
            }
            FlatOp::VMac {
                ty,
                width,
                vd,
                vs1,
                vs2,
                pred,
            } => {
                if self.stream_bound(vd) || self.stream_bound(vs1) || self.stream_bound(vs2) {
                    return self.step_fallback(*inst, pc, trace);
                }
                let out = mac_lanes_ref(
                    &self.p[pred as usize],
                    &self.v[vd.index()],
                    &self.v[vs1.index()],
                    &self.v[vs2.index()],
                    ty,
                    width,
                    vlen,
                );
                self.v[vd.index()] = out;
            }
            FlatOp::VMacVS {
                ty,
                width,
                vd,
                vs1,
                scalar,
                pred,
            } => {
                if self.stream_bound(vd) || self.stream_bound(vs1) {
                    return self.step_fallback(*inst, pc, trace);
                }
                let b = self.dup_value(scalar, width, ty);
                let out = mac_lanes_ref(
                    &self.p[pred as usize],
                    &self.v[vd.index()],
                    &self.v[vs1.index()],
                    &b,
                    ty,
                    width,
                    vlen,
                );
                self.v[vd.index()] = out;
            }
            FlatOp::VRed {
                op,
                ty,
                width,
                vd,
                vs,
                pred,
            } => {
                if self.stream_bound(vd) || self.stream_bound(vs) {
                    return self.step_fallback(*inst, pc, trace);
                }
                let out = vred_ref(
                    op,
                    ty,
                    width,
                    &self.v[vs.index()],
                    &self.p[pred as usize],
                    self.lanes(width),
                    vlen,
                    pc,
                )?;
                self.v[vd.index()] = out;
            }
            FlatOp::VCmp {
                op,
                ty,
                width,
                pd,
                vs1,
                vs2,
            } => {
                if self.stream_bound(vs1) || self.stream_bound(vs2) {
                    return self.step_fallback(*inst, pc, trace);
                }
                let pv = vcmp_ref(
                    op,
                    ty,
                    width,
                    &self.v[vs1.index()],
                    &self.v[vs2.index()],
                    self.lanes(width),
                );
                self.p[pd as usize] = pv;
            }
            FlatOp::PredFromValid { pd, vs } => {
                if self.stream_bound(vs) {
                    return self.step_fallback(*inst, pc, trace);
                }
                self.p[pd as usize] = pred_from_valid_ref(&self.v[vs.index()]);
            }
            FlatOp::VLoad {
                vd,
                base,
                index,
                width,
                pred,
            } => {
                if self.stream_bound(vd) {
                    return self.step_fallback(*inst, pc, trace);
                }
                let lanes = self.lanes(width);
                let b = self.x[base as usize] as u64;
                let idx = self.x[index as usize];
                let wb = width.bytes() as u64;
                let mut out = VecVal::empty(vlen, width);
                {
                    let pm = &self.p[pred as usize];
                    for l in 0..lanes {
                        if pm.get(l) {
                            let addr = b.wrapping_add(((idx + l as i64) as u64).wrapping_mul(wb));
                            out.set_int(l, self.mem.read_elem(addr, width));
                            out.set_lane_valid(l, true);
                        }
                    }
                }
                self.v[vd.index()] = out;
            }
            FlatOp::VStore {
                vs,
                base,
                index,
                width,
                pred,
            } => {
                if self.stream_bound(vs) {
                    return self.step_fallback(*inst, pc, trace);
                }
                let lanes = self.lanes(width);
                let b = self.x[base as usize] as u64;
                let idx = self.x[index as usize];
                let wb = width.bytes() as u64;
                let val = aligned(&self.v[vs.index()], width);
                let pm = &self.p[pred as usize];
                for l in 0..lanes {
                    if pm.get(l) && val.lane_valid(l) {
                        let addr = b.wrapping_add(((idx + l as i64) as u64).wrapping_mul(wb));
                        self.mem.write_elem(addr, width, val.int(l));
                    }
                }
            }
            FlatOp::VGather {
                vd,
                base,
                idx,
                width,
                pred,
            } => {
                if self.stream_bound(vd) || self.stream_bound(idx) {
                    return self.step_fallback(*inst, pc, trace);
                }
                let lanes = self.lanes(width);
                let b = self.x[base as usize] as u64;
                let wb = width.bytes() as u64;
                let mut out = VecVal::empty(vlen, width);
                {
                    let iv = aligned(&self.v[idx.index()], width);
                    let pm = &self.p[pred as usize];
                    for l in 0..lanes {
                        if pm.get(l) && iv.lane_valid(l) {
                            let addr = b.wrapping_add((iv.int(l) as u64).wrapping_mul(wb));
                            out.set_int(l, self.mem.read_elem(addr, width));
                            out.set_lane_valid(l, true);
                        }
                    }
                }
                self.v[vd.index()] = out;
            }
            FlatOp::VScatter {
                vs,
                base,
                idx,
                width,
                pred,
            } => {
                if self.stream_bound(vs) || self.stream_bound(idx) {
                    return self.step_fallback(*inst, pc, trace);
                }
                let lanes = self.lanes(width);
                let b = self.x[base as usize] as u64;
                let wb = width.bytes() as u64;
                let val = aligned(&self.v[vs.index()], width);
                let iv = aligned(&self.v[idx.index()], width);
                let pm = &self.p[pred as usize];
                for l in 0..lanes {
                    if pm.get(l) && val.lane_valid(l) && iv.lane_valid(l) {
                        let addr = b.wrapping_add((iv.int(l) as u64).wrapping_mul(wb));
                        self.mem.write_elem(addr, width, val.int(l));
                    }
                }
            }
            FlatOp::VLoadPost {
                vd,
                base,
                width,
                pred,
            } => {
                if self.stream_bound(vd) {
                    return self.step_fallback(*inst, pc, trace);
                }
                let lanes = self.lanes(width);
                let b = self.x[base as usize] as u64;
                let wb = width.bytes() as u64;
                let mut out = VecVal::empty(vlen, width);
                {
                    let pm = &self.p[pred as usize];
                    for l in 0..lanes {
                        if pm.get(l) {
                            let addr = b + l as u64 * wb;
                            out.set_int(l, self.mem.read_elem(addr, width));
                            out.set_lane_valid(l, true);
                        }
                    }
                }
                self.v[vd.index()] = out;
                self.set_x_idx(base, (b + vlen as u64) as i64);
            }
            FlatOp::VStorePost {
                vs,
                base,
                width,
                pred,
            } => {
                if self.stream_bound(vs) {
                    return self.step_fallback(*inst, pc, trace);
                }
                let lanes = self.lanes(width);
                let b = self.x[base as usize] as u64;
                let wb = width.bytes() as u64;
                {
                    let val = aligned(&self.v[vs.index()], width);
                    let pm = &self.p[pred as usize];
                    for l in 0..lanes {
                        if pm.get(l) && val.lane_valid(l) {
                            let addr = b + l as u64 * wb;
                            self.mem.write_elem(addr, width, val.int(l));
                        }
                    }
                }
                self.set_x_idx(base, (b + vlen as u64) as i64);
            }
            _ => return self.step_fallback(*inst, pc, trace),
        }
        Ok(None)
    }

    /// Saves the committed iteration state of every active stream — the
    /// architectural context a context switch must preserve (Sec. IV-A).
    pub fn save_stream_context(&self) -> Vec<(u8, uve_stream::SavedWalker)> {
        self.streams.save_context()
    }

    /// Restores stream contexts saved by
    /// [`save_stream_context`](Self::save_stream_context). Pre-fetched
    /// buffer data is discarded and re-loaded from memory, as the paper
    /// specifies for the restore path.
    pub fn restore_stream_context(&mut self, saved: &[(u8, uve_stream::SavedWalker)]) {
        self.streams.restore_context(saved, &self.mem);
    }

    /// Executes one instruction with precise stream-fault recovery: the
    /// architectural state (registers, stream unit, trace tail) is
    /// snapshotted, and a [`StreamError::PageFault`] rolls everything back
    /// to the snapshot — as a trap before the instruction would — runs the
    /// plan's implicit handler (the faulting page becomes resident), and
    /// re-executes. Partial stream stores need no undo: replay rewrites the
    /// same values to the same addresses. The recovered instruction's trace
    /// op records how many traps it took so the timing model can charge
    /// them.
    fn step_with_recovery(
        &mut self,
        inst: Inst,
        pc: u32,
        trace: &mut Trace,
    ) -> Result<u32, EmuError> {
        let snap_x = self.x;
        let snap_f = self.f;
        let snap_v = self.v.clone();
        let snap_p = self.p.clone();
        let snap_vl = self.vl_bytes;
        let snap_streams = self.streams.clone();
        let ops_len = trace.ops.len();
        let streams_len = trace.streams.len();
        let chunk_lens: Vec<usize> = trace.streams.iter().map(|s| s.chunks.len()).collect();
        let mut faults: u32 = 0;
        loop {
            match self.step(inst, pc, trace) {
                Ok(next) => {
                    if faults > 0 {
                        if let Some(op) = trace.ops.last_mut() {
                            op.stream_faults = faults;
                        }
                    }
                    return Ok(next);
                }
                Err(EmuError::Stream {
                    err: StreamError::PageFault { .. },
                    ..
                }) => {
                    // Each page faults at most once (the probe marks it
                    // resident), so the retry loop is bounded by the pages
                    // one instruction touches.
                    faults += 1;
                    if faults > 4096 {
                        return Err(EmuError::Internal {
                            pc,
                            what: "stream-fault retry did not converge",
                        });
                    }
                    self.x = snap_x;
                    self.f = snap_f;
                    self.v.clone_from(&snap_v);
                    self.p.clone_from(&snap_p);
                    self.vl_bytes = snap_vl;
                    self.streams.clone_from(&snap_streams);
                    trace.ops.truncate(ops_len);
                    trace.streams.truncate(streams_len);
                    for (s, &len) in trace.streams.iter_mut().zip(&chunk_lens) {
                        s.chunks.truncate(len);
                    }
                    self.faults_taken += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Executes one instruction at `pc`, returning the next PC.
    #[allow(clippy::too_many_lines)]
    fn step(&mut self, inst: Inst, pc: u32, trace: &mut Trace) -> Result<u32, EmuError> {
        let mut op = TraceOp::new(pc, inst.exec_class());
        let mut next = pc + 1;
        let mut consumed: Vec<(VReg, VecVal)> = Vec::new();
        let vlen = self.cfg.vlen_bytes;

        match inst {
            Inst::Alu {
                op: o,
                rd,
                rs1,
                rs2,
            } => {
                let a = self.x[rs1.index()];
                let b = self.x[rs2.index()];
                self.set_x(rd, scalar_alu(o, a, b));
            }
            Inst::AluImm {
                op: o,
                rd,
                rs1,
                imm,
            } => {
                let a = self.x[rs1.index()];
                self.set_x(rd, scalar_alu(o, a, imm as i64));
            }
            Inst::Lui { rd, imm } => self.set_x(rd, (imm as i64) << 12),
            Inst::Ld {
                rd,
                base,
                off,
                width,
            } => {
                let addr = (self.x[base.index()] + off as i64) as u64;
                self.set_x(rd, self.mem.read_elem(addr, width));
                record_mem(&mut op, addr, width.bytes() as u64, false);
            }
            Inst::St {
                src,
                base,
                off,
                width,
            } => {
                let addr = (self.x[base.index()] + off as i64) as u64;
                self.mem.write_elem(addr, width, self.x[src.index()]);
                record_mem(&mut op, addr, width.bytes() as u64, true);
            }
            Inst::Fld {
                fd,
                base,
                off,
                width,
            } => {
                let addr = (self.x[base.index()] + off as i64) as u64;
                let v = match width {
                    ElemWidth::Double => self.mem.read_f64(addr),
                    _ => self.mem.read_f32(addr) as f64,
                };
                self.set_f(fd, v);
                record_mem(&mut op, addr, width.bytes() as u64, false);
            }
            Inst::Fst {
                src,
                base,
                off,
                width,
            } => {
                let addr = (self.x[base.index()] + off as i64) as u64;
                match width {
                    ElemWidth::Double => self.mem.write_f64(addr, self.f[src.index()]),
                    _ => self.mem.write_f32(addr, self.f[src.index()] as f32),
                }
                record_mem(&mut op, addr, width.bytes() as u64, true);
            }
            Inst::FAlu {
                op: o,
                width,
                fd,
                fs1,
                fs2,
            } => {
                let a = self.f[fs1.index()];
                let b = self.f[fs2.index()];
                self.set_f(fd, fp_alu(o, a, b, width));
            }
            Inst::FMac {
                width,
                fd,
                fs1,
                fs2,
                fs3,
            } => {
                let r = self.f[fs1.index()] * self.f[fs2.index()] + self.f[fs3.index()];
                self.set_f(fd, round_fp(r, width));
            }
            Inst::FUn {
                op: o,
                width,
                fd,
                fs,
            } => {
                let a = self.f[fs.index()];
                let r = match o {
                    FpUnOp::Sqrt => a.sqrt(),
                    FpUnOp::Abs => a.abs(),
                    FpUnOp::Neg => -a,
                    FpUnOp::Mv => a,
                };
                self.set_f(fd, round_fp(r, width));
            }
            Inst::FMvXF { rd, fs } => self.set_x(rd, self.f[fs.index()].to_bits() as i64),
            Inst::FMvFX { fd, rs } => self.set_f(fd, f64::from_bits(self.x[rs.index()] as u64)),
            Inst::FCvtFX { width, fd, rs } => {
                self.set_f(fd, round_fp(self.x[rs.index()] as f64, width));
            }
            Inst::FCvtXF { width: _, rd, fs } => self.set_x(rd, self.f[fs.index()] as i64),
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let a = self.x[rs1.index()];
                let b = self.x[rs2.index()];
                let taken = match cond {
                    BrCond::Eq => a == b,
                    BrCond::Ne => a != b,
                    BrCond::Lt => a < b,
                    BrCond::Ge => a >= b,
                    BrCond::Ltu => (a as u64) < (b as u64),
                    BrCond::Geu => (a as u64) >= (b as u64),
                };
                if taken {
                    next = target;
                }
                op.branch = Some(BranchOutcome {
                    taken,
                    next_pc: next,
                });
            }
            Inst::Jal { rd, target } => {
                self.set_x(rd, (pc + 1) as i64);
                next = target;
                op.branch = Some(BranchOutcome {
                    taken: true,
                    next_pc: next,
                });
            }
            Inst::Halt | Inst::Nop => {}
            Inst::SsStart {
                u,
                dir,
                width,
                base,
                size,
                stride,
                done,
            } => {
                let inst_id = self
                    .streams
                    .start(
                        u,
                        dir,
                        width,
                        self.x[base.index()] as u64,
                        self.x[size.index()] as u64,
                        self.x[stride.index()],
                        done,
                        trace,
                    )
                    .map_err(|err| EmuError::Stream { pc, err })?;
                op.stream_open = inst_id;
            }
            Inst::SsApp {
                u,
                offset,
                size,
                stride,
                end,
            } => {
                let inst_id = self
                    .streams
                    .append_dim(
                        u,
                        self.x[offset.index()],
                        self.x[size.index()] as u64,
                        self.x[stride.index()],
                        end,
                        trace,
                    )
                    .map_err(|err| EmuError::Stream { pc, err })?;
                op.stream_open = inst_id;
            }
            Inst::SsAppMod {
                u,
                target,
                behaviour,
                disp,
                count,
                end,
            } => {
                let inst_id = self
                    .streams
                    .append_static_mod(
                        u,
                        target,
                        behaviour,
                        self.x[disp.index()],
                        self.x[count.index()] as u64,
                        end,
                        trace,
                    )
                    .map_err(|err| EmuError::Stream { pc, err })?;
                op.stream_open = inst_id;
            }
            Inst::SsAppInd {
                u,
                target,
                behaviour,
                origin,
                end,
            } => {
                let inst_id = self
                    .streams
                    .append_indirect_mod(u, target, behaviour, origin, end, &self.mem, trace)
                    .map_err(|err| EmuError::Stream { pc, err })?;
                op.stream_open = inst_id;
            }
            Inst::SsCtl { op: ctl, u } => {
                let r = match ctl {
                    StreamCtl::Suspend => self.streams.suspend(u).map(|()| None),
                    StreamCtl::Resume => self.streams.resume(u).map(|()| None),
                    StreamCtl::Stop => self.streams.stop(u).map(Some),
                };
                op.stream_close = r.map_err(|err| EmuError::Stream { pc, err })?;
            }
            Inst::SsCfgMem { u, level } => self.streams.set_level(u, level),
            Inst::SsBranch { cond, u, target } => {
                let (flags, at_end) = self.streams.branch_flags(u).ok_or(EmuError::Stream {
                    pc,
                    err: StreamError::NotConfigured(u.num()),
                })?;
                let taken = match cond {
                    StreamCond::NotEnd => !at_end,
                    StreamCond::End => at_end,
                    StreamCond::DimNotEnd(k) => !flags.ends_dim(k as usize),
                    StreamCond::DimEnd(k) => flags.ends_dim(k as usize),
                };
                if taken {
                    next = target;
                }
                op.branch = Some(BranchOutcome {
                    taken,
                    next_pc: next,
                });
            }
            Inst::SsGetVl { rd, width } => {
                self.set_x(rd, self.lanes(width) as i64);
            }
            Inst::SsSetVl { rd, rs, width } => {
                let max = self.cfg.vlen_bytes / width.bytes();
                let req = self.x[rs.index()].max(0) as usize;
                let granted = req.min(max).max(1);
                self.vl_bytes = granted * width.bytes();
                self.set_x(rd, granted as i64);
            }
            Inst::VDup { vd, src, width, ty } => {
                let val = self.dup_value(src, width, ty);
                self.write_v(vd, val, trace, &mut op, pc)?;
            }
            Inst::VMv { vd, vs } => {
                let val = self.read_v(vs, trace, &mut op, &mut consumed, pc)?;
                self.write_v(vd, val, trace, &mut op, pc)?;
            }
            Inst::VUn {
                op: o,
                ty,
                width,
                vd,
                vs,
                pred,
            } => {
                let a = self.read_v(vs, trace, &mut op, &mut consumed, pc)?;
                let out = vun_ref(
                    o,
                    ty,
                    width,
                    &a,
                    &self.p[pred.index()],
                    self.lanes(width),
                    vlen,
                );
                self.write_v(vd, out, trace, &mut op, pc)?;
            }
            Inst::VArith {
                op: o,
                ty,
                width,
                vd,
                vs1,
                vs2,
                pred,
            } => {
                let a = self.read_v(vs1, trace, &mut op, &mut consumed, pc)?;
                let b = self.read_v(vs2, trace, &mut op, &mut consumed, pc)?;
                let out = self.lanewise(o, ty, width, &a, &b, pred, pc)?;
                self.write_v(vd, out, trace, &mut op, pc)?;
            }
            Inst::VArithVS {
                op: o,
                ty,
                width,
                vd,
                vs1,
                scalar,
                pred,
            } => {
                let a = self.read_v(vs1, trace, &mut op, &mut consumed, pc)?;
                let b = self.dup_value(scalar, width, ty);
                let out = self.lanewise(o, ty, width, &a, &b, pred, pc)?;
                self.write_v(vd, out, trace, &mut op, pc)?;
            }
            Inst::VMacVS {
                ty,
                width,
                vd,
                vs1,
                scalar,
                pred,
            } => {
                let acc = self.read_v(vd, trace, &mut op, &mut consumed, pc)?;
                let a = self.read_v(vs1, trace, &mut op, &mut consumed, pc)?;
                let b = self.dup_value(scalar, width, ty);
                let out = mac_lanes(self, acc, a, b, ty, width, pred, vlen);
                self.write_v(vd, out, trace, &mut op, pc)?;
            }
            Inst::VMac {
                ty,
                width,
                vd,
                vs1,
                vs2,
                pred,
            } => {
                let acc = self.read_v(vd, trace, &mut op, &mut consumed, pc)?;
                let a = self.read_v(vs1, trace, &mut op, &mut consumed, pc)?;
                let b = self.read_v(vs2, trace, &mut op, &mut consumed, pc)?;
                let out = mac_lanes(self, acc, a, b, ty, width, pred, vlen);
                self.write_v(vd, out, trace, &mut op, pc)?;
            }
            Inst::VRed {
                op: o,
                ty,
                width,
                vd,
                vs,
                pred,
            } => {
                let a = self.read_v(vs, trace, &mut op, &mut consumed, pc)?;
                let out = vred_ref(
                    o,
                    ty,
                    width,
                    &a,
                    &self.p[pred.index()],
                    self.lanes(width),
                    vlen,
                    pc,
                )?;
                self.write_v(vd, out, trace, &mut op, pc)?;
            }
            Inst::VCmp {
                op: o,
                ty,
                width,
                pd,
                vs1,
                vs2,
            } => {
                let a = self.read_v(vs1, trace, &mut op, &mut consumed, pc)?;
                let b = self.read_v(vs2, trace, &mut op, &mut consumed, pc)?;
                let pv = vcmp_ref(o, ty, width, &a, &b, self.lanes(width));
                self.p[pd.index()] = pv;
            }
            Inst::PredAlu {
                op: o,
                pd,
                ps1,
                ps2,
            } => {
                let a = self.p[ps1.index()].clone();
                let b = self.p[ps2.index()].clone();
                self.p[pd.index()] = match o {
                    PredOp::Mov => a,
                    PredOp::Not => a.not(crate::value::MAX_LANES),
                    PredOp::And => a.and(&b),
                    PredOp::Or => a.or(&b),
                };
                // p0 stays hardwired.
                self.p[0] = PredVal::all_true();
            }
            Inst::PredFromValid { pd, vs } => {
                let a = self.read_v(vs, trace, &mut op, &mut consumed, pc)?;
                self.p[pd.index()] = pred_from_valid_ref(&a);
            }
            Inst::BrPred { cond, p, target } => {
                let pv = &self.p[p.index()];
                let taken = match cond {
                    PredCond::First => pv.first(),
                    PredCond::Any => pv.any(crate::value::MAX_LANES),
                    PredCond::None => !pv.any(crate::value::MAX_LANES),
                };
                if taken {
                    next = target;
                }
                op.branch = Some(BranchOutcome {
                    taken,
                    next_pc: next,
                });
            }
            Inst::VExtractF {
                fd,
                vs,
                lane,
                width,
            } => {
                let lanes = self.lanes(width);
                if usize::from(lane) >= lanes {
                    return Err(EmuError::LaneOutOfRange { pc, lane, lanes });
                }
                let a = self.read_v(vs, trace, &mut op, &mut consumed, pc)?;
                let a = align_width(a, width);
                self.set_f(fd, a.float(lane as usize));
            }
            Inst::VExtractX {
                rd,
                vs,
                lane,
                width,
            } => {
                let lanes = self.lanes(width);
                if usize::from(lane) >= lanes {
                    return Err(EmuError::LaneOutOfRange { pc, lane, lanes });
                }
                let a = self.read_v(vs, trace, &mut op, &mut consumed, pc)?;
                let a = align_width(a, width);
                self.set_x(rd, a.int(lane as usize));
            }
            Inst::VLoad {
                vd,
                base,
                index,
                width,
                pred,
            } => {
                let b = self.x[base.index()] as u64;
                let idx = self.x[index.index()];
                let pm = self.p[pred.index()].clone();
                let mut out = VecVal::empty(vlen, width);
                let wb = width.bytes() as u64;
                let mut first_addr = None;
                for l in 0..self.lanes(width) {
                    if pm.get(l) {
                        let addr = b.wrapping_add(((idx + l as i64) as u64).wrapping_mul(wb));
                        out.set_int(l, self.mem.read_elem(addr, width));
                        out.set_lane_valid(l, true);
                        first_addr.get_or_insert(addr);
                        push_line(&mut op.mem_lines, addr, wb);
                    }
                }
                op.mem_addr = first_addr.unwrap_or(b);
                self.write_v(vd, out, trace, &mut op, pc)?;
            }
            Inst::VStore {
                vs,
                base,
                index,
                width,
                pred,
            } => {
                let val = self.read_v(vs, trace, &mut op, &mut consumed, pc)?;
                let val = align_width(val, width);
                let b = self.x[base.index()] as u64;
                let idx = self.x[index.index()];
                let pm = self.p[pred.index()].clone();
                let wb = width.bytes() as u64;
                op.is_store = true;
                let mut first_addr = None;
                for l in 0..self.lanes(width) {
                    if pm.get(l) && val.lane_valid(l) {
                        let addr = b.wrapping_add(((idx + l as i64) as u64).wrapping_mul(wb));
                        self.mem.write_elem(addr, width, val.int(l));
                        first_addr.get_or_insert(addr);
                        push_line(&mut op.mem_lines, addr, wb);
                    }
                }
                op.mem_addr = first_addr.unwrap_or(b);
            }
            Inst::VGather {
                vd,
                base,
                idx,
                width,
                pred,
            } => {
                let b = self.x[base.index()] as u64;
                let iv = self.read_v(idx, trace, &mut op, &mut consumed, pc)?;
                let iv = align_width(iv, width);
                let pm = self.p[pred.index()].clone();
                let mut out = VecVal::empty(vlen, width);
                let wb = width.bytes() as u64;
                let mut first_addr = None;
                for l in 0..self.lanes(width) {
                    if pm.get(l) && iv.lane_valid(l) {
                        let addr = b.wrapping_add((iv.int(l) as u64).wrapping_mul(wb));
                        out.set_int(l, self.mem.read_elem(addr, width));
                        out.set_lane_valid(l, true);
                        first_addr.get_or_insert(addr);
                        push_line(&mut op.mem_lines, addr, wb);
                    }
                }
                op.mem_addr = first_addr.unwrap_or(b);
                self.write_v(vd, out, trace, &mut op, pc)?;
            }
            Inst::VScatter {
                vs,
                base,
                idx,
                width,
                pred,
            } => {
                let val = self.read_v(vs, trace, &mut op, &mut consumed, pc)?;
                let val = align_width(val, width);
                let b = self.x[base.index()] as u64;
                let iv = self.read_v(idx, trace, &mut op, &mut consumed, pc)?;
                let iv = align_width(iv, width);
                let pm = self.p[pred.index()].clone();
                let wb = width.bytes() as u64;
                op.is_store = true;
                let mut first_addr = None;
                for l in 0..self.lanes(width) {
                    if pm.get(l) && val.lane_valid(l) && iv.lane_valid(l) {
                        let addr = b.wrapping_add((iv.int(l) as u64).wrapping_mul(wb));
                        self.mem.write_elem(addr, width, val.int(l));
                        first_addr.get_or_insert(addr);
                        push_line(&mut op.mem_lines, addr, wb);
                    }
                }
                op.mem_addr = first_addr.unwrap_or(b);
            }
            Inst::WhileLt {
                pd,
                rs1,
                rs2,
                width,
            } => {
                let a = self.x[rs1.index()];
                let b = self.x[rs2.index()];
                self.p[pd.index()] = whilelt_ref(a, b, self.lanes(width));
                self.p[0] = PredVal::all_true();
            }
            Inst::IncVl { rd, width } => {
                let n = self.lanes(width) as i64;
                self.set_x(rd, self.x[rd.index()] + n);
            }
            Inst::CntVl { rd, width } => {
                let n = self.lanes(width) as i64;
                self.set_x(rd, n);
            }
            Inst::VLoadPost {
                vd,
                base,
                width,
                pred,
            } => {
                let b = self.x[base.index()] as u64;
                let pm = self.p[pred.index()].clone();
                let mut out = VecVal::empty(vlen, width);
                let wb = width.bytes() as u64;
                for l in 0..self.lanes(width) {
                    if pm.get(l) {
                        let addr = b + l as u64 * wb;
                        out.set_int(l, self.mem.read_elem(addr, width));
                        out.set_lane_valid(l, true);
                        push_line(&mut op.mem_lines, addr, wb);
                    }
                }
                op.mem_addr = b;
                self.write_v(vd, out, trace, &mut op, pc)?;
                self.set_x(base, (b + vlen as u64) as i64);
            }
            Inst::VStorePost {
                vs,
                base,
                width,
                pred,
            } => {
                let val = self.read_v(vs, trace, &mut op, &mut consumed, pc)?;
                let val = align_width(val, width);
                let b = self.x[base.index()] as u64;
                let pm = self.p[pred.index()].clone();
                let wb = width.bytes() as u64;
                op.is_store = true;
                op.mem_addr = b;
                for l in 0..self.lanes(width) {
                    if pm.get(l) && val.lane_valid(l) {
                        let addr = b + l as u64 * wb;
                        self.mem.write_elem(addr, width, val.int(l));
                        push_line(&mut op.mem_lines, addr, wb);
                    }
                }
                self.set_x(base, (b + vlen as u64) as i64);
            }
        }

        if self.cfg.record_trace {
            // Register dependencies, with stream-register operands removed
            // (they travel through the FIFO readiness interface instead).
            op.srcs = inst
                .srcs()
                .into_iter()
                .filter(|r| {
                    !(r.class == RegClass::Vec
                        && op
                            .stream_reads
                            .iter()
                            .any(|(i, _)| trace.streams[*i as usize].u == r.num))
                })
                .collect();
            op.dests = inst
                .dests()
                .into_iter()
                .filter(|r| {
                    !(r.class == RegClass::Vec
                        && op
                            .stream_writes
                            .iter()
                            .any(|(i, _)| trace.streams[*i as usize].u == r.num))
                })
                .collect();
            trace.ops.push(op);
        }
        Ok(next)
    }

    #[allow(clippy::too_many_arguments)]
    fn lanewise(
        &self,
        o: VOp,
        ty: VType,
        width: ElemWidth,
        a: &VecVal,
        b: &VecVal,
        pred: uve_isa::PReg,
        pc: u32,
    ) -> Result<VecVal, EmuError> {
        lanewise_ref(
            o,
            ty,
            width,
            a,
            b,
            &self.p[pred.index()],
            self.lanes(width),
            self.cfg.vlen_bytes,
            pc,
        )
    }
}

/// Owning `width`-alignment (interpreter arms that already hold a value).
fn align_width(v: VecVal, width: ElemWidth) -> VecVal {
    if v.width() == width {
        v
    } else {
        v.reinterpret(width)
    }
}

/// Borrowing `width`-alignment: reinterprets only when widths differ,
/// avoiding a clone on the (overwhelmingly common) matching-width path.
fn aligned(v: &VecVal, width: ElemWidth) -> Cow<'_, VecVal> {
    if v.width() == width {
        Cow::Borrowed(v)
    } else {
        Cow::Owned(v.reinterpret(width))
    }
}

/// Predicated lanewise binary op — the single implementation behind both
/// the interpreter's `VArith`/`VArithVS` arms and the flat fast path.
#[allow(clippy::too_many_arguments)]
fn lanewise_ref(
    o: VOp,
    ty: VType,
    width: ElemWidth,
    a: &VecVal,
    b: &VecVal,
    pm: &PredVal,
    lanes: usize,
    vlen: usize,
    pc: u32,
) -> Result<VecVal, EmuError> {
    let a = aligned(a, width);
    let b = aligned(b, width);
    let mut out = VecVal::empty(vlen, width);
    for i in 0..lanes {
        if a.lane_valid(i) && b.lane_valid(i) && pm.get(i) {
            match ty {
                VType::Fp => {
                    let r =
                        fp_vop(o, a.float(i), b.float(i)).ok_or_else(|| EmuError::Unsupported {
                            pc,
                            what: format!("bitwise vector op {o:?} with an FP type tag"),
                        })?;
                    out.set_float(i, round_fp(r, width));
                }
                VType::Int => out.set_int(i, int_vop(o, a.int(i), b.int(i))),
            }
            out.set_lane_valid(i, true);
        }
    }
    Ok(out)
}

/// Predicated lanewise unary op (shared by interpreter and fast path).
fn vun_ref(
    o: VUnOp,
    ty: VType,
    width: ElemWidth,
    a: &VecVal,
    pm: &PredVal,
    lanes: usize,
    vlen: usize,
) -> VecVal {
    let a = aligned(a, width);
    let mut out = VecVal::empty(vlen, width);
    for i in 0..lanes {
        if a.lane_valid(i) && pm.get(i) {
            let s = match (ty, o) {
                (VType::Fp, VUnOp::Abs) => Scalar::Fp(a.float(i).abs()),
                (VType::Fp, VUnOp::Neg) => Scalar::Fp(-a.float(i)),
                (VType::Fp, VUnOp::Sqrt) => Scalar::Fp(a.float(i).sqrt()),
                (VType::Fp, VUnOp::Mv) => Scalar::Fp(a.float(i)),
                (VType::Int, VUnOp::Abs) => Scalar::Int(a.int(i).wrapping_abs()),
                (VType::Int, VUnOp::Neg) => Scalar::Int(a.int(i).wrapping_neg()),
                (VType::Int, VUnOp::Sqrt) => Scalar::Int((a.int(i).max(0) as f64).sqrt() as i64),
                (VType::Int, VUnOp::Mv) => Scalar::Int(a.int(i)),
            };
            out.set_scalar(i, s);
            out.set_lane_valid(i, true);
        }
    }
    out
}

/// Predicated horizontal reduction (shared by interpreter and fast path).
#[allow(clippy::too_many_arguments)]
fn vred_ref(
    o: HorizOp,
    ty: VType,
    width: ElemWidth,
    a: &VecVal,
    pm: &PredVal,
    lanes: usize,
    vlen: usize,
    pc: u32,
) -> Result<VecVal, EmuError> {
    let a = aligned(a, width);
    let mut out = VecVal::empty(vlen, width);
    let mut acc: Option<Scalar> = None;
    for i in 0..lanes {
        if !(a.lane_valid(i) && pm.get(i)) {
            continue;
        }
        let x = a.scalar(i, ty);
        acc = Some(match (acc, ty) {
            (None, _) => x,
            (Some(Scalar::Fp(v)), VType::Fp) => Scalar::Fp(match o {
                HorizOp::Add => v + x.as_fp(),
                HorizOp::Max => v.max(x.as_fp()),
                HorizOp::Min => v.min(x.as_fp()),
            }),
            (Some(Scalar::Int(v)), VType::Int) => Scalar::Int(match o {
                HorizOp::Add => v.wrapping_add(x.as_int()),
                HorizOp::Max => v.max(x.as_int()),
                HorizOp::Min => v.min(x.as_int()),
            }),
            _ => {
                return Err(EmuError::Internal {
                    pc,
                    what: "reduction accumulator type confusion",
                })
            }
        });
    }
    if let Some(s) = acc {
        out.set_scalar(0, s);
        out.set_lane_valid(0, true);
    }
    Ok(out)
}

/// Vector compare into a predicate (shared by interpreter and fast path).
fn vcmp_ref(
    o: VCmpOp,
    ty: VType,
    width: ElemWidth,
    a: &VecVal,
    b: &VecVal,
    lanes: usize,
) -> PredVal {
    let a = aligned(a, width);
    let b = aligned(b, width);
    let mut pv = PredVal::all_false();
    for i in 0..lanes {
        if a.lane_valid(i) && b.lane_valid(i) {
            let r = match ty {
                VType::Fp => cmp_f(o, a.float(i), b.float(i)),
                VType::Int => cmp_i(o, a.int(i), b.int(i)),
            };
            pv.set(i, r);
        }
    }
    pv
}

/// `so.p.valid`: predicate from the operand's valid-lane mask.
fn pred_from_valid_ref(a: &VecVal) -> PredVal {
    let mut pv = PredVal::all_false();
    for i in 0..a.lanes() {
        pv.set(i, a.lane_valid(i));
    }
    pv
}

/// `whilelt`: lanes active while `a + lane < b`.
fn whilelt_ref(a: i64, b: i64, lanes: usize) -> PredVal {
    let mut pv = PredVal::all_false();
    for l in 0..lanes {
        pv.set(l, a + (l as i64) < b);
    }
    pv
}

fn acc_lane_f(acc: &VecVal, i: usize) -> f64 {
    if acc.lane_valid(i) {
        acc.float(i)
    } else {
        0.0
    }
}

fn acc_lane_i(acc: &VecVal, i: usize) -> i64 {
    if acc.lane_valid(i) {
        acc.int(i)
    } else {
        0
    }
}

#[allow(clippy::too_many_arguments)]
fn mac_lanes(
    emu: &Emulator,
    acc: VecVal,
    a: VecVal,
    b: VecVal,
    ty: VType,
    width: ElemWidth,
    pred: uve_isa::PReg,
    vlen: usize,
) -> VecVal {
    mac_lanes_ref(&emu.p[pred.index()], &acc, &a, &b, ty, width, vlen)
}

/// Predicated multiply-accumulate over the *hardware* lane count (shared by
/// interpreter and fast path). Accumulator lanes beyond the operand tail
/// pass through unchanged (predicated-off behaviour of fmla).
fn mac_lanes_ref(
    pm: &PredVal,
    acc: &VecVal,
    a: &VecVal,
    b: &VecVal,
    ty: VType,
    width: ElemWidth,
    vlen: usize,
) -> VecVal {
    let acc = aligned(acc, width);
    let a = aligned(a, width);
    let b = aligned(b, width);
    let mut out = VecVal::empty(vlen, width);
    for i in 0..vlen / width.bytes() {
        if a.lane_valid(i) && b.lane_valid(i) && pm.get(i) {
            match ty {
                VType::Fp => out.set_float(
                    i,
                    round_fp(acc_lane_f(&acc, i) + a.float(i) * b.float(i), width),
                ),
                VType::Int => out.set_int(
                    i,
                    acc_lane_i(&acc, i).wrapping_add(a.int(i).wrapping_mul(b.int(i))),
                ),
            }
            out.set_lane_valid(i, true);
        } else if acc.lane_valid(i) {
            out.set_int(i, acc.int(i));
            out.set_lane_valid(i, true);
        }
    }
    out
}

fn record_mem(op: &mut TraceOp, addr: u64, bytes: u64, is_store: bool) {
    op.mem_addr = addr;
    op.is_store = is_store;
    push_line(&mut op.mem_lines, addr, bytes);
}

fn push_line(lines: &mut Vec<u64>, addr: u64, bytes: u64) {
    let first = addr / LINE_BYTES;
    let last = (addr + bytes - 1) / LINE_BYTES;
    for l in first..=last {
        if lines.last() != Some(&l) {
            lines.push(l);
        }
    }
}

fn scalar_alu(op: AluOp, a: i64, b: i64) -> i64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => ((a as i128 * b as i128) >> 64) as i64,
        AluOp::Div => {
            if b == 0 {
                -1
            } else {
                a.wrapping_div(b)
            }
        }
        AluOp::Rem => {
            if b == 0 {
                a
            } else {
                a.wrapping_rem(b)
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => a.wrapping_shl((b & 63) as u32),
        AluOp::Srl => ((a as u64).wrapping_shr((b & 63) as u32)) as i64,
        AluOp::Sra => a.wrapping_shr((b & 63) as u32),
        AluOp::Slt => i64::from(a < b),
        AluOp::Sltu => i64::from((a as u64) < (b as u64)),
        AluOp::Min => a.min(b),
        AluOp::Max => a.max(b),
    }
}

fn round_fp(v: f64, width: ElemWidth) -> f64 {
    match width {
        ElemWidth::Double => v,
        _ => v as f32 as f64,
    }
}

fn fp_alu(op: FpOp, a: f64, b: f64, width: ElemWidth) -> f64 {
    let r = match op {
        FpOp::Add => a + b,
        FpOp::Sub => a - b,
        FpOp::Mul => a * b,
        FpOp::Div => a / b,
        FpOp::Min => a.min(b),
        FpOp::Max => a.max(b),
    };
    round_fp(r, width)
}

fn fp_vop(o: VOp, a: f64, b: f64) -> Option<f64> {
    Some(match o {
        VOp::Add => a + b,
        VOp::Sub => a - b,
        VOp::Mul => a * b,
        VOp::Div => a / b,
        VOp::Min => a.min(b),
        VOp::Max => a.max(b),
        // Bitwise ops have no FP interpretation — reported as a typed
        // error by the caller, not a panic.
        VOp::And | VOp::Or | VOp::Xor | VOp::Shl | VOp::Shr => return None,
    })
}

fn int_vop(o: VOp, a: i64, b: i64) -> i64 {
    match o {
        VOp::Add => a.wrapping_add(b),
        VOp::Sub => a.wrapping_sub(b),
        VOp::Mul => a.wrapping_mul(b),
        VOp::Div => {
            if b == 0 {
                -1
            } else {
                a.wrapping_div(b)
            }
        }
        VOp::Min => a.min(b),
        VOp::Max => a.max(b),
        VOp::And => a & b,
        VOp::Or => a | b,
        VOp::Xor => a ^ b,
        VOp::Shl => a.wrapping_shl((b & 63) as u32),
        VOp::Shr => a.wrapping_shr((b & 63) as u32),
    }
}

fn cmp_f(o: VCmpOp, a: f64, b: f64) -> bool {
    match o {
        VCmpOp::Eq => a == b,
        VCmpOp::Ne => a != b,
        VCmpOp::Lt => a < b,
        VCmpOp::Le => a <= b,
        VCmpOp::Gt => a > b,
        VCmpOp::Ge => a >= b,
    }
}

fn cmp_i(o: VCmpOp, a: i64, b: i64) -> bool {
    match o {
        VCmpOp::Eq => a == b,
        VCmpOp::Ne => a != b,
        VCmpOp::Lt => a < b,
        VCmpOp::Le => a <= b,
        VCmpOp::Gt => a > b,
        VCmpOp::Ge => a >= b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uve_isa::assemble;

    fn run_text(text: &str, setup: impl FnOnce(&mut Emulator)) -> (Emulator, RunResult) {
        let prog = assemble("t", text).expect("assembles");
        let mut emu = Emulator::new(EmuConfig::default(), Memory::new());
        setup(&mut emu);
        let r = emu.run(&prog).expect("runs");
        (emu, r)
    }

    #[test]
    fn scalar_loop() {
        let (emu, r) = run_text(
            "
    li x10, 0
    li x11, 10
loop:
    addi x10, x10, 1
    bne x10, x11, loop
    halt
",
            |_| {},
        );
        assert_eq!(emu.x(XReg::A0), 10);
        assert_eq!(r.committed, 2 + 10 * 2 + 1);
    }

    #[test]
    fn uve_saxpy_fig4() {
        // The paper's Fig. 4 saxpy: y = a*x + y over 20 f32 elements
        // (one full vector + padded tail).
        let n = 20usize;
        let (emu, r) = run_text(
            "
    li x10, 20          ; n
    li x11, 0x10000     ; &x
    li x12, 0x20000     ; &y
    li x13, 1           ; stride
    ss.ld.w u0, x11, x10, x13
    ss.ld.w u1, x12, x10, x13
    ss.st.w u2, x12, x10, x13
    so.v.dup.w.fp u3, f10
loop:
    so.a.mul.w.fp u4, u3, u0, p0
    so.a.add.w.fp u2, u4, u1, p0
    so.b.nend u0, loop
    halt
",
            |emu| {
                emu.set_f(uve_isa::FReg::FA0, 2.0);
                let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
                let y: Vec<f32> = (0..n).map(|i| (i * 10) as f32).collect();
                emu.mem.write_f32_slice(0x10000, &x);
                emu.mem.write_f32_slice(0x20000, &y);
            },
        );
        let y = emu.mem.read_f32_slice(0x20000, n);
        for (i, v) in y.iter().enumerate() {
            assert_eq!(*v, 2.0 * i as f32 + (i * 10) as f32, "y[{i}]");
        }
        // Trace recorded 3 streams with chunks.
        assert_eq!(r.trace.streams.len(), 3);
        assert_eq!(r.trace.streams[0].elements(), 20);
        assert_eq!(r.trace.streams[2].elements(), 20);
    }

    #[test]
    fn sve_saxpy_baseline() {
        // SVE-like predicated loop equivalent of Fig. 1.B.
        let n = 20usize;
        let (emu, _r) = run_text(
            "
    li x10, 0            ; i
    li x11, 20           ; n
    li x12, 0x10000      ; &x (element base)
    li x13, 0x20000      ; &y
    so.v.dup.w.fp u0, f10
    whilelt.w p1, x10, x11
loop:
    vl1.w u1, x12, x10, p1
    vl1.w u2, x13, x10, p1
    so.a.mul.w.fp u3, u0, u1, p1
    so.a.add.w.fp u4, u3, u2, p1
    vs1.w u4, x13, x10, p1
    incvl.w x10
    whilelt.w p1, x10, x11
    so.b.pfirst p1, loop
    halt
",
            |emu| {
                emu.set_f(uve_isa::FReg::FA0, 2.0);
                let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
                let y: Vec<f32> = (0..n).map(|i| (i * 10) as f32).collect();
                emu.mem.write_f32_slice(0x10000, &x);
                emu.mem.write_f32_slice(0x20000, &y);
            },
        );
        let y = emu.mem.read_f32_slice(0x20000, n);
        for (i, v) in y.iter().enumerate() {
            assert_eq!(*v, 2.0 * i as f32 + (i * 10) as f32, "y[{i}]");
        }
    }

    #[test]
    fn row_max_fig2() {
        // The paper's Fig. 2: maximum across rows of a 3×5 matrix.
        let (emu, _r) = run_text(
            "
    li x10, 5            ; Nc
    li x11, 3            ; Nr
    li x12, 0x10000      ; &A
    li x13, 0x20000      ; &C
    li x14, 1
    ss.ld.w.sta u0, x12, x10, x14
    ss.end u0, x0, x11, x10
    ss.st.w u1, x13, x11, x14
next_line:
    so.v.mv u5, u0
    so.b.dim0.end u0, hmax
loop:
    so.a.max.w.fp u5, u5, u0, p0
    so.b.dim0.nend u0, loop
hmax:
    so.a.hmax.w.fp u1, u5, p0
    so.b.nend u0, next_line
    halt
",
            |emu| {
                #[rustfmt::skip]
                let a: Vec<f32> = vec![
                    1.0, 9.0, 2.0, 3.0, 4.0,
                    5.0, 0.0, 5.5, 1.0, 2.0,
                    7.0, 6.0, 3.0, 8.0, 2.5,
                ];
                emu.mem.write_f32_slice(0x10000, &a);
            },
        );
        let c = emu.mem.read_f32_slice(0x20000, 3);
        assert_eq!(c, vec![9.0, 5.5, 8.0]);
    }

    #[test]
    fn stream_direction_misuse_errors() {
        let prog = assemble(
            "t",
            "
    li x10, 4
    li x11, 0x1000
    li x12, 1
    ss.st.w u0, x11, x10, x12
    so.a.add.w.fp u1, u0, u0, p0
    halt
",
        )
        .unwrap();
        let mut emu = Emulator::new(EmuConfig::default(), Memory::new());
        let err = emu.run(&prog).unwrap_err();
        assert!(matches!(
            err,
            EmuError::Stream {
                err: StreamError::WrongDirection(0),
                ..
            }
        ));
    }

    #[test]
    fn out_of_fuel_detects_infinite_loop() {
        let prog = assemble("t", "loop: jal x0, loop\nhalt").unwrap();
        let mut emu = Emulator::new(
            EmuConfig {
                max_steps: 1000,
                ..EmuConfig::default()
            },
            Memory::new(),
        );
        assert!(matches!(emu.run(&prog), Err(EmuError::OutOfFuel(1000))));
    }

    #[test]
    fn missing_halt_detected() {
        let prog = assemble("t", "addi x1, x0, 1").unwrap();
        let mut emu = Emulator::new(EmuConfig::default(), Memory::new());
        assert!(matches!(emu.run(&prog), Err(EmuError::PcOutOfRange(1))));
    }

    #[test]
    fn trace_excludes_stream_regs_from_deps() {
        let (_, r) = run_text(
            "
    li x10, 16
    li x11, 0x1000
    li x13, 1
    ss.ld.w u0, x11, x10, x13
    so.a.add.w.fp u4, u0, u0, p0
    halt
",
            |_| {},
        );
        let add = r
            .trace
            .ops
            .iter()
            .find(|o| !o.stream_reads.is_empty())
            .expect("stream-consuming op present");
        // u0 must not appear as a register dependency.
        assert!(add.srcs.iter().all(|s| s.class != RegClass::Vec));
        assert_eq!(add.stream_reads.len(), 1); // consumed once, used twice
    }

    #[test]
    fn scalar_mem_roundtrip() {
        let (emu, r) = run_text(
            "
    li x10, 1234
    li x11, 0x3000
    st.w x10, 4(x11)
    ld.w x12, 4(x11)
    halt
",
            |_| {},
        );
        assert_eq!(emu.x(XReg::A2), 1234);
        let st = r.trace.ops.iter().find(|o| o.is_store).unwrap();
        assert_eq!(st.mem_lines, vec![0x3004 / 64]);
    }

    #[test]
    fn fp_scalar_ops() {
        let (emu, _) = run_text(
            "
    fadd.w f2, f0, f1
    fmul.w f3, f0, f1
    fmadd.w f4, f0, f1, f2
    fsqrt.w f5, f3
    halt
",
            |emu| {
                emu.set_f(uve_isa::FReg::new(0), 3.0);
                emu.set_f(uve_isa::FReg::new(1), 4.0);
            },
        );
        assert_eq!(emu.f(uve_isa::FReg::new(2)), 7.0);
        assert_eq!(emu.f(uve_isa::FReg::new(3)), 12.0);
        assert_eq!(emu.f(uve_isa::FReg::new(4)), 19.0);
        assert!((emu.f(uve_isa::FReg::new(5)) - 12f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn fault_recovery_is_bit_identical_on_saxpy() {
        let n = 4096usize;
        let text = "
    li x10, 4096
    li x11, 0x10000
    li x12, 0x20000
    li x13, 1
    ss.ld.w u0, x11, x10, x13
    ss.ld.w u1, x12, x10, x13
    ss.st.w u2, x12, x10, x13
    so.v.dup.w.fp u3, f10
loop:
    so.a.mul.w.fp u4, u3, u0, p0
    so.a.add.w.fp u2, u4, u1, p0
    so.b.nend u0, loop
    halt
";
        let setup = |emu: &mut Emulator| {
            emu.set_f(uve_isa::FReg::FA0, 2.0);
            let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let y: Vec<f32> = (0..n).map(|i| (i * 3) as f32).collect();
            emu.mem.write_f32_slice(0x10000, &x);
            emu.mem.write_f32_slice(0x20000, &y);
        };
        let prog = assemble("t", text).unwrap();
        let mut clean = Emulator::new(EmuConfig::default(), Memory::new());
        setup(&mut clean);
        let clean_run = clean.run(&prog).unwrap();

        let mut faulty = Emulator::new(EmuConfig::default(), Memory::new());
        setup(&mut faulty);
        // Fault every first-touched page: 4096 f32 over two arrays = 8
        // pages, so every stream takes several precise traps.
        faulty.set_fault_plan(Some(StreamFaultPlan::new(7, 1)));
        let faulty_run = faulty.run(&prog).unwrap();

        assert!(faulty.faults_taken() > 0, "plan must fire");
        assert_eq!(
            clean.mem.content_hash(),
            faulty.mem.content_hash(),
            "recovered memory must be bit-identical"
        );
        assert_eq!(
            clean.arch_digest(),
            faulty.arch_digest(),
            "recovered registers must be bit-identical"
        );
        assert_eq!(clean_run.committed, faulty_run.committed);
        // The recovered trace matches except for the fault stamps.
        assert_eq!(clean_run.trace.ops.len(), faulty_run.trace.ops.len());
        let stamped: u64 = faulty_run
            .trace
            .ops
            .iter()
            .map(|o| u64::from(o.stream_faults))
            .sum();
        assert_eq!(stamped, faulty.faults_taken(), "every trap is stamped");
        let mut scrubbed = faulty_run.trace.ops.clone();
        for o in &mut scrubbed {
            o.stream_faults = 0;
        }
        assert_eq!(clean_run.trace.ops, scrubbed);
        assert_eq!(clean_run.trace.streams, faulty_run.trace.streams);
    }

    #[test]
    fn fault_plan_is_deterministic_across_runs() {
        let text = "
    li x10, 512
    li x11, 0x10000
    li x13, 1
    ss.ld.w u0, x11, x10, x13
loop:
    so.a.add.w.fp u5, u0, u0, p0
    so.b.nend u0, loop
    halt
";
        let prog = assemble("t", text).unwrap();
        let mut counts = Vec::new();
        for _ in 0..2 {
            let mut emu = Emulator::new(EmuConfig::default(), Memory::new());
            let x: Vec<f32> = (0..512).map(|i| i as f32).collect();
            emu.mem.write_f32_slice(0x10000, &x);
            emu.set_fault_plan(Some(StreamFaultPlan::new(42, 1)));
            emu.run(&prog).unwrap();
            counts.push((emu.faults_taken(), emu.arch_digest()));
        }
        assert_eq!(counts[0], counts[1]);
        assert!(counts[0].0 > 0);
    }

    #[test]
    fn bitwise_fp_vop_is_a_typed_error() {
        let prog = assemble(
            "t",
            "
    so.v.dup.w.fp u1, f0
    so.a.and.w.fp u2, u1, u1, p0
    halt
",
        )
        .unwrap();
        let mut emu = Emulator::new(EmuConfig::default(), Memory::new());
        match emu.run(&prog) {
            Err(EmuError::Unsupported { .. }) => {}
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    fn saxpy_text() -> &'static str {
        "
    li x10, 100
    li x11, 0x10000
    li x12, 0x20000
    li x13, 1
    ss.ld.w u0, x11, x10, x13
    ss.ld.w u1, x12, x10, x13
    ss.st.w u2, x12, x10, x13
    so.v.dup.w.fp u3, f10
loop:
    so.a.mul.w.fp u4, u3, u0, p0
    so.a.add.w.fp u2, u4, u1, p0
    so.b.nend u0, loop
    halt
"
    }

    fn saxpy_setup(emu: &mut Emulator) {
        emu.set_f(uve_isa::FReg::FA0, 2.0);
        let x: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let y: Vec<f32> = (0..100).map(|i| (i * 3) as f32).collect();
        emu.mem.write_f32_slice(0x10000, &x);
        emu.mem.write_f32_slice(0x20000, &y);
    }

    #[test]
    fn translated_mode_is_bit_identical_on_saxpy() {
        let prog = assemble("t", saxpy_text()).unwrap();
        let mut interp = Emulator::new(EmuConfig::default(), Memory::new());
        saxpy_setup(&mut interp);
        let ri = interp.run(&prog).unwrap();

        let cfg = EmuConfig {
            exec: ExecMode::Translated,
            ..EmuConfig::default()
        };
        let mut trans = Emulator::new(cfg, Memory::new());
        saxpy_setup(&mut trans);
        let rt = trans.run(&prog).unwrap();

        assert_eq!(ri.committed, rt.committed);
        assert_eq!(interp.arch_digest(), trans.arch_digest());
        assert_eq!(interp.mem.content_hash(), trans.mem.content_hash());
        assert_eq!(ri.trace.ops, rt.trace.ops);
        assert_eq!(ri.trace.streams, rt.trace.streams);
    }

    #[test]
    fn translated_untraced_matches_interpreter() {
        let base = EmuConfig {
            record_trace: false,
            ..EmuConfig::default()
        };
        let prog = assemble("t", saxpy_text()).unwrap();
        let mut interp = Emulator::new(base, Memory::new());
        saxpy_setup(&mut interp);
        let ri = interp.run(&prog).unwrap();

        let mut trans = Emulator::new(
            EmuConfig {
                exec: ExecMode::Translated,
                ..base
            },
            Memory::new(),
        );
        saxpy_setup(&mut trans);
        let rt = trans.run(&prog).unwrap();

        assert_eq!(ri.committed, rt.committed);
        assert_eq!(interp.arch_digest(), trans.arch_digest());
        assert_eq!(interp.mem.content_hash(), trans.mem.content_hash());
        // Stream chunk metadata is recorded unconditionally in both modes.
        assert_eq!(ri.trace.streams, rt.trace.streams);
    }

    #[test]
    fn translated_single_step_slices_match_interpreter() {
        let prog = assemble("t", saxpy_text()).unwrap();
        let mut interp = Emulator::new(EmuConfig::default(), Memory::new());
        saxpy_setup(&mut interp);
        let ri = interp.run(&prog).unwrap();

        let cfg = EmuConfig {
            exec: ExecMode::Translated,
            ..EmuConfig::default()
        };
        let mut trans = Emulator::new(cfg, Memory::new());
        saxpy_setup(&mut trans);
        let mut cursor = RunCursor::new();
        let mut slices = 0u64;
        while !trans.resume(&prog, &mut cursor, Some(1)).unwrap() {
            slices += 1;
            assert!(slices < 10_000, "runaway");
        }
        assert_eq!(cursor.steps(), ri.committed);
        assert_eq!(interp.arch_digest(), trans.arch_digest());
        assert_eq!(interp.mem.content_hash(), trans.mem.content_hash());
        assert_eq!(ri.trace.ops, cursor.trace().ops);
        assert_eq!(ri.trace.streams, cursor.trace().streams);
    }

    #[test]
    fn translated_fault_recovery_matches_interpreter() {
        let prog = assemble("t", saxpy_text()).unwrap();
        let mut interp = Emulator::new(EmuConfig::default(), Memory::new());
        saxpy_setup(&mut interp);
        interp.set_fault_plan(Some(StreamFaultPlan::new(9, 1)));
        let ri = interp.run(&prog).unwrap();

        let cfg = EmuConfig {
            exec: ExecMode::Translated,
            ..EmuConfig::default()
        };
        let mut trans = Emulator::new(cfg, Memory::new());
        saxpy_setup(&mut trans);
        trans.set_fault_plan(Some(StreamFaultPlan::new(9, 1)));
        let rt = trans.run(&prog).unwrap();

        assert!(interp.faults_taken() > 0);
        assert_eq!(interp.faults_taken(), trans.faults_taken());
        assert_eq!(ri.trace.ops, rt.trace.ops, "fault stamps must match");
        assert_eq!(interp.arch_digest(), trans.arch_digest());
        assert_eq!(interp.mem.content_hash(), trans.mem.content_hash());
    }

    #[test]
    fn translated_errors_match_interpreter() {
        // Out-of-fuel, pc escape and stream misuse must surface at the same
        // step counts and pcs in both modes.
        for (text, fuel) in [
            ("loop: jal x0, loop\nhalt", 1000u64),
            ("addi x1, x0, 1", 1000),
            (
                "
    li x10, 4
    li x11, 0x1000
    li x12, 1
    ss.st.w u0, x11, x10, x12
    so.a.add.w.fp u1, u0, u0, p0
    halt
",
                1000,
            ),
        ] {
            let prog = assemble("t", text).unwrap();
            let mk = |exec| {
                Emulator::new(
                    EmuConfig {
                        max_steps: fuel,
                        exec,
                        ..EmuConfig::default()
                    },
                    Memory::new(),
                )
            };
            let ei = mk(ExecMode::Interpret).run(&prog).unwrap_err();
            let et = mk(ExecMode::Translated).run(&prog).unwrap_err();
            assert_eq!(ei, et, "error divergence on {text:?}");
        }
    }

    #[test]
    fn gather_scatter() {
        let (emu, _) = run_text(
            "
    li x10, 0x1000      ; base
    li x11, 4
    li x12, 0
    whilelt.w p1, x12, x11
    vl1.w u1, x13, x12, p1   ; load indices from 0x2000 (x13 set below)
    vgather.w u2, x10, u1, p1
    vscatter.w u2, x14, u1, p1
    halt
",
            |emu| {
                emu.set_x(XReg::A3, 0x2000);
                emu.set_x(XReg::A4, 0x3000);
                emu.mem.write_i32_slice(0x2000, &[3, 1, 0, 2]);
                emu.mem.write_i32_slice(0x1000, &[100, 101, 102, 103]);
            },
        );
        // gather: u2 = A[idx] = [103, 101, 100, 102]; scatter writes them
        // back permuted to 0x3000[idx] → identity at distinct slots.
        assert_eq!(emu.mem.read_i32_slice(0x3000, 4), vec![100, 101, 102, 103]);
    }
}
