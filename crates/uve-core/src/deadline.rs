//! Cooperative per-thread wall-clock deadlines for long model runs.
//!
//! Scoped worker threads cannot be killed, so runaway jobs (a model bug, a
//! pathological configuration) are bounded cooperatively: the harness arms
//! a deadline on the worker thread, and the emulator and timing model poll
//! it at a coarse stride. An expired deadline panics with a recognisable
//! message, which the harness catches with `catch_unwind` and reports as a
//! per-job timeout instead of hanging the whole sweep.

use std::cell::Cell;
use std::time::{Duration, Instant};

thread_local! {
    static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Message prefix of deadline panics — harnesses match on it to classify a
/// caught unwind as a timeout rather than a model failure.
pub const TIMEOUT_MARKER: &str = "wall-clock deadline exceeded";

/// Arms a deadline `budget` from now on this thread (`None` disarms).
pub fn arm(budget: Option<Duration>) {
    DEADLINE.with(|d| d.set(budget.map(|b| Instant::now() + b)));
}

/// Disarms this thread's deadline.
pub fn disarm() {
    DEADLINE.with(|d| d.set(None));
}

/// `true` once an armed deadline has passed.
#[must_use]
pub fn expired() -> bool {
    DEADLINE.with(|d| d.get().is_some_and(|t| Instant::now() > t))
}

/// Panics (unwind-catchable, starting with [`TIMEOUT_MARKER`]) if this
/// thread's deadline has passed; `site` names the polling loop.
pub fn check(site: &str) {
    assert!(!expired(), "{TIMEOUT_MARKER} ({site})");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_never_expires() {
        disarm();
        assert!(!expired());
        check("test");
    }

    #[test]
    fn armed_deadline_expires_and_panics() {
        arm(Some(Duration::from_nanos(1)));
        std::thread::sleep(Duration::from_millis(2));
        assert!(expired());
        let err = std::panic::catch_unwind(|| check("test")).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.starts_with(TIMEOUT_MARKER), "{msg}");
        disarm();
        assert!(!expired());
    }
}
