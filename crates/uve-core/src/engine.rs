//! Cycle-level Streaming Engine model (paper Sec. IV-B and Fig. 7).
//!
//! The engine manages all input/output streams of the core:
//!
//! - a **Stream Configuration** module with the SCROB (Stream Configuration
//!   Reorder Buffer) processing configuration instructions in order, one per
//!   cycle;
//! - a **Stream Table** holding up to 32 concurrent stream configurations
//!   (8 dimensions + 7 modifiers each) with speculative and committed
//!   iteration state;
//! - a **Stream Scheduler** selecting, each cycle, up to
//!   `processing_modules` streams to iterate, prioritizing streams with the
//!   lowest FIFO occupancy;
//! - **Stream Processing Modules** (address generators) producing up to one
//!   cache-line request per cycle each, with one extra cycle per
//!   descriptor-dimension switch and same-line request coalescing;
//! - per-stream **Load/Store FIFOs** (default depth 8) buffering vector
//!   chunks between the memory hierarchy and the register file.
//!
//! The timing engine replays the chunk/line metadata recorded by the
//! functional emulator (see [`crate::trace`]), so its requests are exactly
//! the addresses the architecture would generate. Buffered data is
//! architecturally "already consumed" — FIFO entries are freed at commit
//! and miss-speculated reads re-use buffered data without new memory
//! requests (architectural opportunity A3).

use crate::trace::{ChunkMeta, StreamInstance, StreamTrace};
use std::collections::HashMap;
use uve_isa::{Dir, MemLevel};
use uve_mem::{MemPort, Path, Translation, LINE_BYTES};

/// Streaming Engine configuration (Table I and Sec. VI-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of Stream Load/Store Processing Modules (Table I: 2).
    pub processing_modules: usize,
    /// Load/Store FIFO depth per stream, in vector entries (default 8).
    pub fifo_depth: usize,
    /// Maximum concurrent streams in the Stream Table (32).
    pub max_streams: usize,
    /// Maximum descriptor dimensions per stream (8).
    pub max_dims: usize,
    /// Maximum modifiers per stream (7).
    pub max_mods: usize,
    /// Memory Request Queue entries (16).
    pub request_queue: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            processing_modules: 2,
            fifo_depth: 8,
            max_streams: 32,
            max_dims: 8,
            max_mods: 7,
            request_queue: 16,
        }
    }
}

/// Storage inventory of the Streaming Engine (Sec. VI-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageReport {
    /// Stream Table + SCROB storage in bytes.
    pub stream_table_bytes: usize,
    /// Load/Store FIFO storage in bytes.
    pub fifo_bytes: usize,
    /// Memory Request Queue storage in bytes.
    pub request_queue_bytes: usize,
}

impl StorageReport {
    /// Total storage in bytes.
    pub fn total_bytes(&self) -> usize {
        self.stream_table_bytes + self.fifo_bytes + self.request_queue_bytes
    }
}

impl EngineConfig {
    /// Computes the storage inventory: per-stream table entries hold the
    /// descriptor parameters (32 B/dimension), modifier state
    /// (20 B/modifier) and dual (speculative + committed) iterator/flag
    /// state (52 B); FIFO entries are 66 B (64 B of vector data + validity/
    /// exception metadata); request-queue entries are 10 B — reproducing the
    /// paper's ≈14 KB + ≈17 KB + 160 B inventory at the default
    /// configuration.
    pub fn storage_report(&self) -> StorageReport {
        StorageReport {
            stream_table_bytes: self.max_streams * (self.max_dims * 32 + self.max_mods * 20 + 52),
            fifo_bytes: self.max_streams * self.fifo_depth * 66,
            request_queue_bytes: self.request_queue * 10,
        }
    }
}

/// Availability of a stream chunk at the FIFO interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkStatus {
    /// The engine has not yet fetched/reserved this chunk.
    NotFetched,
    /// The chunk's data (loads) or FIFO slot (stores) is available at the
    /// given cycle.
    Ready(u64),
}

/// Per-stream-register FIFO occupancy histogram, sampled once per open
/// stream per engine cycle.
///
/// `hist[u][occ]` counts the cycles stream register `u` held exactly `occ`
/// chunks in its FIFO; rows and columns grow lazily, so the shape is
/// independent of the configured depth. Conservation law (checked by
/// `tests/cycle_accounting.rs`): the grand total of all cells equals
/// [`FifoProfile::samples`], which is the number of (open stream, cycle)
/// pairs the engine observed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FifoProfile {
    /// `hist[u][occ]` = cycles stream register `u` sat at occupancy `occ`.
    pub hist: Vec<Vec<u64>>,
    /// Total samples recorded (one per open stream per cycle).
    pub samples: u64,
}

impl FifoProfile {
    /// Records one occupancy sample for stream register `u`.
    pub fn record(&mut self, u: u8, occ: usize) {
        let u = usize::from(u);
        if self.hist.len() <= u {
            self.hist.resize(u + 1, Vec::new());
        }
        let row = &mut self.hist[u];
        if row.len() <= occ {
            row.resize(occ + 1, 0);
        }
        row[occ] += 1;
        self.samples += 1;
    }

    /// Cycles stream register `u` was open (its row sum).
    pub fn open_cycles(&self, u: usize) -> u64 {
        self.hist.get(u).map_or(0, |row| row.iter().sum())
    }

    /// Mean FIFO occupancy of stream register `u` while open (0.0 if never
    /// open).
    pub fn mean_occupancy(&self, u: usize) -> f64 {
        let open = self.open_cycles(u);
        if open == 0 {
            return 0.0;
        }
        let weighted: u64 = self.hist[u]
            .iter()
            .enumerate()
            .map(|(occ, &n)| occ as u64 * n)
            .sum();
        weighted as f64 / open as f64
    }

    /// Highest occupancy ever sampled for stream register `u`.
    pub fn max_occupancy(&self, u: usize) -> usize {
        self.hist
            .get(u)
            .and_then(|row| row.iter().rposition(|&n| n > 0))
            .unwrap_or(0)
    }

    /// Stream registers that were open at least one cycle.
    pub fn used_registers(&self) -> Vec<usize> {
        (0..self.hist.len())
            .filter(|&u| self.open_cycles(u) > 0)
            .collect()
    }

    /// Grand total of all histogram cells — always equals `samples`.
    pub fn total(&self) -> u64 {
        (0..self.hist.len()).map(|u| self.open_cycles(u)).sum()
    }
}

/// Engine activity counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Cache-line requests issued by address generators.
    pub line_requests: u64,
    /// Chunks fetched into load FIFOs.
    pub load_chunks: u64,
    /// Chunks reserved in store FIFOs.
    pub store_chunks: u64,
    /// Cycles spent on descriptor-dimension switches.
    pub dim_switch_cycles: u64,
    /// Cycles at least one processing module was active.
    pub active_cycles: u64,
    /// Peak concurrent streams.
    pub peak_streams: usize,
    /// Faulting elements flagged by the arbiter's TLB lookup (handled at
    /// the commit stage, paper Sec. IV-A *Exception Handling*).
    pub page_faults: u64,
    /// Extra cycles spent on TLB walks.
    pub tlb_walk_cycles: u64,
    /// Line requests that transiently failed pre-issue and were retried
    /// after a backoff (fault injection).
    pub transient_retries: u64,
    /// Responses that arrived poisoned and were refetched (fault
    /// injection).
    pub poisoned_replays: u64,
    /// Per-stream-register FIFO occupancy histogram.
    pub fifo: FifoProfile,
}

#[derive(Debug)]
struct EngStream {
    dir: Dir,
    path: Path,
    /// Engine may start processing at this cycle (after SCROB).
    start_cycle: u64,
    /// Next chunk index to fetch (loads) / reserve (stores).
    next_chunk: usize,
    /// Line progress within the current chunk.
    line_idx: usize,
    /// Remaining dimension-switch penalty cycles for the current chunk.
    penalty: u32,
    /// Whether the current chunk's switch penalty was already charged.
    penalty_charged: bool,
    /// Max line-ready cycle accumulated for the current chunk.
    inflight_ready: u64,
    /// Ready cycle of each fetched chunk, indexed by chunk number.
    ready: Vec<u64>,
    /// Last line requested and its completion, for cross-iteration request
    /// coalescing (paper: succeeding iterations hitting the same cache line
    /// issue a single memory request).
    last_line: Option<(u64, u64)>,
    /// Chunks freed by commit (FIFO occupancy = fetched − committed).
    committed: usize,
    /// Retry attempt for the current line (0 outside fault replay).
    attempts: u32,
    /// The stream is ineligible until this cycle (fault backoff).
    retry_at: u64,
}

impl EngStream {
    fn occupancy(&self) -> usize {
        self.ready.len().saturating_sub(self.committed)
    }
}

/// The cycle-level Streaming Engine.
#[derive(Debug)]
pub struct EngineSim {
    cfg: EngineConfig,
    streams: HashMap<StreamInstance, EngStream>,
    scrob_free: u64,
    stats: EngineStats,
}

impl EngineSim {
    /// Creates an engine with the given configuration.
    pub fn new(cfg: EngineConfig) -> Self {
        Self {
            cfg,
            streams: HashMap::new(),
            scrob_free: 0,
            stats: EngineStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> EngineConfig {
        self.cfg
    }

    /// Activity statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats.clone()
    }

    /// Registers a stream instance when its completing configuration
    /// instruction reaches rename (speculative configuration, Sec. IV-A).
    /// The SCROB validates configurations in order, one per cycle.
    pub fn open(&mut self, instance: StreamInstance, info: &StreamTrace, now: u64) {
        let start = self.scrob_free.max(now) + u64::from(info.cfg_insts);
        self.scrob_free = start;
        let path = level_path(info.level);
        self.streams.insert(
            instance,
            EngStream {
                dir: info.dir,
                path,
                start_cycle: start,
                next_chunk: 0,
                line_idx: 0,
                penalty: 0,
                penalty_charged: false,
                inflight_ready: 0,
                ready: Vec::new(),
                last_line: None,
                committed: 0,
                attempts: 0,
                retry_at: 0,
            },
        );
        self.stats.peak_streams = self.stats.peak_streams.max(self.streams.len());
    }

    /// Deallocates a stream's engine structures (termination at commit).
    pub fn close(&mut self, instance: StreamInstance) {
        self.streams.remove(&instance);
    }

    /// Advances the engine by one cycle: the scheduler picks up to
    /// `processing_modules` streams (lowest FIFO occupancy first) and each
    /// processes one address-generator step against the memory hierarchy.
    ///
    /// Generic over [`MemPort`] so the same engine runs against the
    /// single-core hierarchy or one core's port into the shared multicore
    /// hierarchy.
    pub fn tick<M: MemPort>(&mut self, now: u64, streams: &[StreamTrace], mem: &mut M) {
        // Observability: sample every open stream's FIFO occupancy. The
        // iteration order over the HashMap is arbitrary, but the samples are
        // commutative counter increments, so the result is deterministic.
        for (inst, s) in self.streams.iter() {
            self.stats
                .fifo
                .record(streams[*inst as usize].u, s.occupancy());
        }
        // Scheduler: select eligible streams by ascending occupancy.
        let mut eligible: Vec<(usize, StreamInstance)> = self
            .streams
            .iter()
            .filter(|(inst, s)| {
                s.start_cycle <= now
                    && s.retry_at <= now
                    && s.next_chunk < streams[**inst as usize].chunks.len()
                    && s.occupancy() < self.cfg.fifo_depth
            })
            .map(|(inst, s)| (s.occupancy(), *inst))
            .collect();
        eligible.sort_unstable();
        eligible.truncate(self.cfg.processing_modules);
        if !eligible.is_empty() {
            self.stats.active_cycles += 1;
        }
        for (_, inst) in eligible {
            // `eligible` was drawn from `self.streams` above; a missing
            // entry would be a scheduler bug, degraded to a skipped slot
            // rather than a panic.
            let Some(s) = self.streams.get_mut(&inst) else {
                continue;
            };
            let chunks: &[ChunkMeta] = &streams[inst as usize].chunks;
            let chunk = &chunks[s.next_chunk];
            if s.line_idx == 0 && !s.penalty_charged && chunk.dim_switches > 0 {
                s.penalty = chunk.dim_switches;
                s.penalty_charged = true;
            }
            if s.penalty > 0 {
                s.penalty -= 1;
                self.stats.dim_switch_cycles += 1;
                continue;
            }
            if chunk.lines.is_empty() {
                // Degenerate chunk (e.g. zero-length run): ready at once.
                finish_chunk(s, now, &mut self.stats);
                continue;
            }
            let line = chunk.lines[s.line_idx];
            match s.dir {
                Dir::Load => {
                    // Cross-iteration coalescing: a repeat of the stream's
                    // previous line reuses its data without a new request.
                    let ready = match s.last_line {
                        Some((l, r)) if l == line => r,
                        _ => {
                            // The arbiter translates before issuing
                            // (Fig. 7): faulting elements are flagged for
                            // commit-stage handling instead of being
                            // requested — streams prefetch safely across
                            // page boundaries (opportunity A2).
                            match mem.translate(line * LINE_BYTES) {
                                Translation::Fault { .. } => {
                                    self.stats.page_faults += 1;
                                    now
                                }
                                Translation::Ok {
                                    paddr,
                                    extra_cycles,
                                } => {
                                    // An injected transient fault kills
                                    // the request before issue; the stream
                                    // backs off and retries (bounded).
                                    if mem.fault_transient(line, s.attempts) {
                                        s.attempts += 1;
                                        s.retry_at = now + mem.fault_backoff(s.attempts);
                                        self.stats.transient_retries += 1;
                                        continue;
                                    }
                                    self.stats.tlb_walk_cycles += extra_cycles;
                                    let out = mem.read_explained(
                                        paddr,
                                        u64::from(inst),
                                        now + extra_cycles,
                                        s.path,
                                    );
                                    self.stats.line_requests += 1;
                                    // A poisoned response is discarded on
                                    // arrival and refetched after a
                                    // backoff.
                                    if mem.fault_poisoned(line, s.attempts, out.from_dram, s.path) {
                                        s.attempts += 1;
                                        s.retry_at =
                                            out.ready.max(now) + mem.fault_backoff(s.attempts);
                                        self.stats.poisoned_replays += 1;
                                        continue;
                                    }
                                    s.attempts = 0;
                                    out.ready
                                }
                            }
                        }
                    };
                    s.last_line = Some((line, ready));
                    s.inflight_ready = s.inflight_ready.max(ready);
                }
                Dir::Store => {
                    // Store address generation only; the write is issued at
                    // commit (commit_write). Transient faults hit the
                    // address-generation slot the same way.
                    if mem.fault_transient(line, s.attempts) {
                        s.attempts += 1;
                        s.retry_at = now + mem.fault_backoff(s.attempts);
                        self.stats.transient_retries += 1;
                        continue;
                    }
                    s.attempts = 0;
                    s.inflight_ready = s.inflight_ready.max(now);
                    self.stats.line_requests += 1;
                }
            }
            s.line_idx += 1;
            if s.line_idx == chunk.lines.len() {
                static TRACE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
                let trace_on = *TRACE.get_or_init(|| std::env::var("UVE_ENGINE_TRACE").is_ok());
                if trace_on && (s.next_chunk % 512 < 4) {
                    eprintln!(
                        "engine: inst={inst} chunk={} fetched_at={now} ready={} committed={}",
                        s.next_chunk,
                        s.inflight_ready.max(now),
                        s.committed
                    );
                }
                finish_chunk(s, now, &mut self.stats);
            }
        }
    }

    /// Availability of a chunk at the register-file interface.
    pub fn chunk_status(&self, instance: StreamInstance, chunk: u32) -> ChunkStatus {
        match self.streams.get(&instance) {
            Some(s) => match s.ready.get(chunk as usize) {
                Some(&r) => ChunkStatus::Ready(r),
                None => ChunkStatus::NotFetched,
            },
            None => ChunkStatus::NotFetched,
        }
    }

    /// Commits a consumed load chunk, freeing its FIFO entry.
    pub fn commit_read(&mut self, instance: StreamInstance, chunk: u32) {
        if let Some(s) = self.streams.get_mut(&instance) {
            s.committed = s.committed.max(chunk as usize + 1);
        }
    }

    /// Commits a produced store chunk: the buffered data is written to the
    /// memory hierarchy and the FIFO entry freed.
    pub fn commit_write<M: MemPort>(
        &mut self,
        instance: StreamInstance,
        chunk: u32,
        now: u64,
        streams: &[StreamTrace],
        mem: &mut M,
    ) {
        if let Some(s) = self.streams.get_mut(&instance) {
            s.committed = s.committed.max(chunk as usize + 1);
            let path = s.path;
            if let Some(meta) = streams[instance as usize].chunks.get(chunk as usize) {
                for &line in &meta.lines {
                    // The descriptor describes the exact store pattern, so
                    // full lines are written without an allocate-read.
                    mem.write_full_line(line * LINE_BYTES, u64::from(instance), now, path);
                }
            }
        }
    }

    /// Miss-speculation recovery: the speculative consume pointer is
    /// CPU-side in this model, and buffered data is retained, so the engine
    /// itself only needs to keep its fetched chunks — which it does. This
    /// hook exists for symmetry and statistics.
    pub fn squash(&mut self, _instance: StreamInstance) {}

    /// Number of currently open streams.
    pub fn open_streams(&self) -> usize {
        self.streams.len()
    }

    /// True while `instance` is retrying an injected fault (backing off or
    /// mid-retry) — the core attributes head-of-ROB stalls on such a
    /// stream to the `fault-replay` cycle category.
    pub fn in_fault_replay(&self, instance: StreamInstance, now: u64) -> bool {
        self.streams
            .get(&instance)
            .is_some_and(|s| s.attempts > 0 || s.retry_at > now)
    }

    /// Current `(instance, FIFO occupancy)` of every open stream, sorted by
    /// instance — the event-log poll for occupancy timelines.
    pub fn occupancies(&self) -> Vec<(StreamInstance, usize)> {
        let mut v: Vec<(StreamInstance, usize)> = self
            .streams
            .iter()
            .map(|(inst, s)| (*inst, s.occupancy()))
            .collect();
        v.sort_unstable();
        v
    }
}

fn finish_chunk(s: &mut EngStream, now: u64, stats: &mut EngineStats) {
    let ready = s.inflight_ready.max(now);
    s.ready.push(ready);
    s.next_chunk += 1;
    s.line_idx = 0;
    s.penalty_charged = false;
    s.inflight_ready = 0;
    match s.dir {
        Dir::Load => stats.load_chunks += 1,
        Dir::Store => stats.store_chunks += 1,
    }
}

fn level_path(level: MemLevel) -> Path {
    match level {
        MemLevel::L1 => Path::StreamL1,
        MemLevel::L2 => Path::StreamL2,
        MemLevel::Mem => Path::StreamMem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uve_isa::ElemWidth;
    use uve_mem::{MemConfig, MemSystem};

    fn mk_stream(dir: Dir, chunks: Vec<ChunkMeta>) -> StreamTrace {
        StreamTrace {
            u: 0,
            dir,
            level: MemLevel::L2,
            width: ElemWidth::Word,
            chunks,
            cfg_insts: 1,
        }
    }

    fn lines(v: &[u64]) -> ChunkMeta {
        ChunkMeta {
            lines: v.to_vec(),
            dim_switches: 0,
            valid: 16,
        }
    }

    fn mem() -> MemSystem {
        MemSystem::new(MemConfig {
            l1_prefetcher: false,
            l2_prefetcher: false,
            ..MemConfig::default()
        })
    }

    #[test]
    fn storage_report_matches_paper() {
        let r = EngineConfig::default().storage_report();
        assert_eq!(r.stream_table_bytes, 14336); // ≈14 KB
        assert_eq!(r.fifo_bytes, 16896); // ≈17 KB
        assert_eq!(r.request_queue_bytes, 160);
        // Reduced configuration of Sec. VI-C: 8 streams, 4 dims → ≈6 KB.
        let reduced = EngineConfig {
            max_streams: 8,
            max_dims: 4,
            ..EngineConfig::default()
        };
        let r2 = reduced.storage_report();
        assert!(r2.total_bytes() < 8 * 1024, "{}", r2.total_bytes());
        // ≈10% of a 64 KB L1.
        let frac = r2.total_bytes() as f64 / (64.0 * 1024.0);
        assert!(frac > 0.08 && frac < 0.13, "{frac}");
    }

    #[test]
    fn load_stream_prefetches_ahead() {
        let streams = vec![mk_stream(
            Dir::Load,
            vec![lines(&[1]), lines(&[2]), lines(&[3])],
        )];
        let mut e = EngineSim::new(EngineConfig::default());
        let mut m = mem();
        e.open(0, &streams[0], 0);
        // After a few cycles, all three chunks should be fetched without any
        // CPU consumption.
        for now in 0..10 {
            e.tick(now, &streams, &mut m);
        }
        assert!(matches!(e.chunk_status(0, 0), ChunkStatus::Ready(_)));
        assert!(matches!(e.chunk_status(0, 2), ChunkStatus::Ready(_)));
        assert_eq!(e.stats().line_requests, 3);
    }

    #[test]
    fn fifo_depth_limits_runahead() {
        let chunks: Vec<ChunkMeta> = (0..20).map(|i| lines(&[i])).collect();
        let streams = vec![mk_stream(Dir::Load, chunks)];
        let cfg = EngineConfig {
            fifo_depth: 4,
            ..EngineConfig::default()
        };
        let mut e = EngineSim::new(cfg);
        let mut m = mem();
        e.open(0, &streams[0], 0);
        for now in 0..100 {
            e.tick(now, &streams, &mut m);
        }
        // Only fifo_depth chunks fetched without commits.
        assert!(matches!(e.chunk_status(0, 3), ChunkStatus::Ready(_)));
        assert_eq!(e.chunk_status(0, 4), ChunkStatus::NotFetched);
        // Committing frees an entry; the engine continues.
        e.commit_read(0, 0);
        for now in 100..110 {
            e.tick(now, &streams, &mut m);
        }
        assert!(matches!(e.chunk_status(0, 4), ChunkStatus::Ready(_)));
    }

    #[test]
    fn scheduler_prioritizes_low_occupancy() {
        // Two streams, one module: fetches should alternate.
        let streams = vec![
            mk_stream(Dir::Load, (0..4).map(|i| lines(&[i])).collect()),
            mk_stream(Dir::Load, (100..104).map(|i| lines(&[i])).collect()),
        ];
        let cfg = EngineConfig {
            processing_modules: 1,
            ..EngineConfig::default()
        };
        let mut e = EngineSim::new(cfg);
        let mut m = mem();
        e.open(0, &streams[0], 0);
        e.open(1, &streams[1], 0);
        for now in 0..12 {
            e.tick(now, &streams, &mut m);
        }
        // Both streams progressed (round-robin via occupancy priority).
        assert!(matches!(e.chunk_status(0, 1), ChunkStatus::Ready(_)));
        assert!(matches!(e.chunk_status(1, 1), ChunkStatus::Ready(_)));
    }

    #[test]
    fn dim_switch_penalty_costs_cycles() {
        let chunk = ChunkMeta {
            lines: vec![1],
            dim_switches: 3,
            valid: 4,
        };
        let streams = vec![mk_stream(Dir::Load, vec![chunk])];
        let mut e = EngineSim::new(EngineConfig::default());
        let mut m = mem();
        e.open(0, &streams[0], 0);
        for now in 0..2 {
            e.tick(now, &streams, &mut m);
        }
        // cfg(1 cycle SCROB) + 3 penalty cycles not yet elapsed.
        assert_eq!(e.chunk_status(0, 0), ChunkStatus::NotFetched);
        for now in 2..8 {
            e.tick(now, &streams, &mut m);
        }
        assert!(matches!(e.chunk_status(0, 0), ChunkStatus::Ready(_)));
        assert_eq!(e.stats().dim_switch_cycles, 3);
    }

    #[test]
    fn store_streams_write_at_commit() {
        let streams = vec![mk_stream(Dir::Store, vec![lines(&[5])])];
        let mut e = EngineSim::new(EngineConfig::default());
        let mut m = mem();
        e.open(0, &streams[0], 0);
        for now in 0..5 {
            e.tick(now, &streams, &mut m);
        }
        // Address generated, no memory write yet.
        assert!(matches!(e.chunk_status(0, 0), ChunkStatus::Ready(_)));
        assert_eq!(m.stats().writes, 0);
        e.commit_write(0, 0, 10, &streams, &mut m);
        assert_eq!(m.stats().writes, 1);
    }

    #[test]
    fn scrob_serializes_configurations() {
        let s0 = mk_stream(Dir::Load, vec![lines(&[1])]);
        let mut s1 = mk_stream(Dir::Load, vec![lines(&[2])]);
        s1.cfg_insts = 4;
        let streams = vec![s0, s1];
        let mut e = EngineSim::new(EngineConfig::default());
        e.open(0, &streams[0], 0);
        e.open(1, &streams[1], 0);
        // Stream 1's config completes only after stream 0's (1 cycle) plus
        // its own 4 instructions.
        let mut m = mem();
        e.tick(1, &streams, &mut m); // stream 0 eligible at cycle 1
        assert_eq!(e.stats().line_requests, 1);
        e.tick(2, &streams, &mut m); // stream 1 not yet (starts at 5)
        assert_eq!(e.stats().line_requests, 1);
        for now in 3..8 {
            e.tick(now, &streams, &mut m);
        }
        assert_eq!(e.stats().line_requests, 2);
    }

    #[test]
    fn faulting_pages_are_flagged_not_requested() {
        let streams = vec![mk_stream(Dir::Load, vec![lines(&[0x100]), lines(&[0x200])])];
        let mut e = EngineSim::new(EngineConfig::default());
        let mut m = mem();
        m.tlb_mut().mark_faulting(0x100 * 64);
        e.open(0, &streams[0], 0);
        for now in 0..10 {
            e.tick(now, &streams, &mut m);
        }
        assert_eq!(e.stats().page_faults, 1);
        // The faulting chunk is still delivered (flagged) and the stream
        // continues across the page boundary.
        assert!(matches!(e.chunk_status(0, 0), ChunkStatus::Ready(_)));
        assert!(matches!(e.chunk_status(0, 1), ChunkStatus::Ready(_)));
        assert_eq!(e.stats().line_requests, 1);
    }

    #[test]
    fn streams_cross_page_boundaries() {
        // 4 KiB pages = 64 lines; a stream spanning three pages keeps
        // prefetching (TLB misses charged, no faults).
        let chunks: Vec<ChunkMeta> = (0..192).step_by(32).map(|l| lines(&[l])).collect();
        let streams = vec![mk_stream(Dir::Load, chunks)];
        let mut e = EngineSim::new(EngineConfig::default());
        let mut m = mem();
        e.open(0, &streams[0], 0);
        for now in 0..40 {
            e.tick(now, &streams, &mut m);
        }
        assert_eq!(e.stats().page_faults, 0);
        assert!(e.stats().tlb_walk_cycles > 0);
        assert!(matches!(e.chunk_status(0, 5), ChunkStatus::Ready(_)));
    }

    #[test]
    fn fifo_profile_conserves_samples() {
        let chunks: Vec<ChunkMeta> = (0..8).map(|i| lines(&[i])).collect();
        let streams = vec![mk_stream(Dir::Load, chunks)];
        let mut e = EngineSim::new(EngineConfig::default());
        let mut m = mem();
        e.open(0, &streams[0], 0);
        for now in 0..50 {
            e.tick(now, &streams, &mut m);
        }
        let fifo = e.stats().fifo;
        // One open stream sampled once per cycle.
        assert_eq!(fifo.samples, 50);
        assert_eq!(fifo.total(), 50);
        assert_eq!(fifo.open_cycles(0), 50);
        assert_eq!(fifo.used_registers(), vec![0]);
        // Runahead fills the FIFO: with no commits, occupancy reaches the
        // full configured depth and never exceeds it.
        assert_eq!(fifo.max_occupancy(0), EngineConfig::default().fifo_depth);
        assert!(fifo.mean_occupancy(0) > 0.0);
    }

    #[test]
    fn occupancies_reports_open_streams_sorted() {
        let streams = vec![
            mk_stream(Dir::Load, (0..4).map(|i| lines(&[i])).collect()),
            mk_stream(Dir::Load, (100..104).map(|i| lines(&[i])).collect()),
        ];
        let mut e = EngineSim::new(EngineConfig::default());
        let mut m = mem();
        e.open(1, &streams[1], 0);
        e.open(0, &streams[0], 0);
        for now in 0..20 {
            e.tick(now, &streams, &mut m);
        }
        let occ = e.occupancies();
        assert_eq!(occ.len(), 2);
        assert_eq!((occ[0].0, occ[1].0), (0, 1));
        assert!(occ
            .iter()
            .all(|&(_, o)| o <= EngineConfig::default().fifo_depth));
    }

    #[test]
    fn injected_faults_delay_but_never_starve_a_stream() {
        use uve_mem::FaultConfig;
        let chunks: Vec<ChunkMeta> = (0..32).map(|i| lines(&[i * 64])).collect();
        let streams = vec![mk_stream(Dir::Load, chunks)];
        let mut e = EngineSim::new(EngineConfig::default());
        let mut m = MemSystem::new(MemConfig {
            l1_prefetcher: false,
            l2_prefetcher: false,
            fault: Some(FaultConfig {
                transient_rate: 4,
                poison_dram_rate: 4,
                poison_l2_rate: 4,
                tlb_fault_rate: 0,
                ..FaultConfig::hostile(3)
            }),
            ..MemConfig::default()
        });
        e.open(0, &streams[0], 0);
        let mut saw_replay = false;
        let mut now = 0;
        while !matches!(e.chunk_status(0, 31), ChunkStatus::Ready(_)) {
            e.tick(now, &streams, &mut m);
            saw_replay |= e.in_fault_replay(0, now);
            e.commit_read(0, 0); // keep the FIFO drained
            if let ChunkStatus::Ready(_) = e.chunk_status(0, 0) {
                for c in 0..32 {
                    if matches!(e.chunk_status(0, c), ChunkStatus::Ready(_)) {
                        e.commit_read(0, c);
                    }
                }
            }
            now += 1;
            assert!(now < 1_000_000, "injected faults must not livelock");
        }
        let st = e.stats();
        assert!(
            st.transient_retries + st.poisoned_replays > 0,
            "rates of 1-in-4 over 32 lines must fire"
        );
        assert!(saw_replay, "fault replay must be observable");
    }

    #[test]
    fn fault_free_engine_is_unchanged_by_fault_plumbing() {
        let chunks: Vec<ChunkMeta> = (0..8).map(|i| lines(&[i])).collect();
        let streams = vec![mk_stream(Dir::Load, chunks)];
        let mut e = EngineSim::new(EngineConfig::default());
        let mut m = mem();
        e.open(0, &streams[0], 0);
        for now in 0..50 {
            e.tick(now, &streams, &mut m);
            assert!(!e.in_fault_replay(0, now));
        }
        let st = e.stats();
        assert_eq!(st.transient_retries, 0);
        assert_eq!(st.poisoned_replays, 0);
    }

    #[test]
    fn close_releases_structures() {
        let streams = [mk_stream(Dir::Load, vec![lines(&[1])])];
        let mut e = EngineSim::new(EngineConfig::default());
        e.open(0, &streams[0], 0);
        assert_eq!(e.open_streams(), 1);
        e.close(0);
        assert_eq!(e.open_streams(), 0);
        assert_eq!(e.chunk_status(0, 0), ChunkStatus::NotFetched);
    }
}
