//! Build-stable program fingerprints.
//!
//! The distributed sweep service content-addresses results by everything a
//! job depends on, including the exact kernel program. Hashing the
//! program's `Debug` rendering with `std::hash::DefaultHasher` only
//! identifies it within one build: the hasher's keys and the derive-
//! generated formatting are both allowed to change between compiler
//! releases, so such a fingerprint cannot survive a cache written to disk
//! and read back by a rebuilt coordinator.
//!
//! This module fixes the identity instead of the hasher: a program is
//! fingerprinted as FNV-1a over a **canonical byte encoding** — the
//! architectural instruction words produced by [`uve_isa::encode`], in
//! program order, under a versioned header. Two builds (or two machines)
//! agree on the fingerprint because they agree on the ISA encoding, which
//! is pinned by the paper and by `uve-isa`'s own golden tests. Kernel
//! parameters (sizes, strides, immediates) are baked into the instruction
//! words, so re-parametrising a kernel changes its fingerprint.
//!
//! Golden fingerprint values are checked in (`tests/fingerprint_golden.rs`
//! at the workspace root) to pin the encoding: any change here or in the
//! ISA encoder that shifts fingerprints — and therefore invalidates
//! on-disk caches — fails loudly instead of silently aliasing.

use uve_isa::{encode, Program};

/// Version tag of the canonical encoding; bump on any layout change so
/// old persisted caches miss cleanly instead of aliasing.
const CANON_MAGIC: &[u8; 8] = b"UVEPROG1";

/// FNV-1a offset basis (same constants as `uve-sweep`'s content hashing).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// The canonical, build-independent byte encoding of a program: a
/// versioned header, the instruction count, then each instruction's
/// architectural encoding ([`uve_isa::encode`]) as a little-endian word.
///
/// Total: an instruction the encoder rejects (none of the in-tree kernels
/// produce one, but arbitrary [`Program`]s can) falls back to a tagged,
/// length-prefixed `Debug` rendering rather than panicking; such programs
/// get *a* deterministic fingerprint, just not one guaranteed stable
/// across compiler releases.
pub fn canonical_program_bytes(program: &Program) -> Vec<u8> {
    let insts = program.insts();
    let mut out = Vec::with_capacity(CANON_MAGIC.len() + 4 + insts.len() * 5);
    out.extend_from_slice(CANON_MAGIC);
    out.extend_from_slice(&(insts.len() as u32).to_le_bytes());
    for (pc, inst) in insts.iter().enumerate() {
        match encode(inst, pc as u32) {
            Ok(word) => {
                out.push(0);
                out.extend_from_slice(&word.to_le_bytes());
            }
            Err(_) => {
                let text = format!("{inst:?}");
                out.push(1);
                out.extend_from_slice(&(text.len() as u32).to_le_bytes());
                out.extend_from_slice(text.as_bytes());
            }
        }
    }
    out
}

/// FNV-1a over [`canonical_program_bytes`]: the build- and
/// machine-stable program identity the sweep service's `job_key` folds
/// in. Pinned by golden values; see the module docs.
pub fn program_fingerprint(program: &Program) -> u64 {
    let mut h = FNV_OFFSET;
    for b in canonical_program_bytes(program) {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use uve_isa::assemble;

    fn saxpy() -> Program {
        assemble(
            "saxpy",
            r#"
                li x10, 64
                li x11, 0x10000
                li x12, 0x20000
                li x13, 1
                ss.ld.w u0, x11, x10, x13
                ss.ld.w u1, x12, x10, x13
                ss.st.w u2, x12, x10, x13
                so.v.dup.w.fp u3, f10
            loop:
                so.a.mul.w.fp u4, u3, u0, p0
                so.a.add.w.fp u2, u4, u1, p0
                so.b.nend u0, loop
                halt
            "#,
        )
        .unwrap()
    }

    #[test]
    fn fingerprint_is_deterministic_and_content_sensitive() {
        let a = saxpy();
        assert_eq!(program_fingerprint(&a), program_fingerprint(&a));
        // Same instructions re-assembled: identical fingerprint.
        let b = saxpy();
        assert_eq!(program_fingerprint(&a), program_fingerprint(&b));
        // A one-instruction change moves it.
        let c = assemble("saxpy", "li x10, 65\nhalt").unwrap();
        assert_ne!(program_fingerprint(&a), program_fingerprint(&c));
    }

    #[test]
    fn canonical_bytes_start_with_versioned_header() {
        let bytes = canonical_program_bytes(&saxpy());
        assert_eq!(&bytes[..8], CANON_MAGIC);
        let n = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        assert_eq!(n as usize, saxpy().insts().len());
    }
}
