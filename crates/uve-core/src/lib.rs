//! The UVE core library: the paper's primary contribution.
//!
//! This crate implements the architectural and microarchitectural heart of
//! *"Unlimited Vector Extension with Data Streaming Support"* (ISCA 2021):
//!
//! - [`StreamUnit`]: the functional (value-level) stream infrastructure —
//!   stream configuration from `ss.*` instructions, destructive
//!   consumption/production with automatic out-of-bounds lane disabling,
//!   suspend/resume/stop, and context save/restore;
//! - [`Emulator`]: a full-ISA functional emulator executing
//!   [`uve_isa::Program`]s against [`uve_mem::Memory`], producing a dynamic
//!   [`Trace`];
//! - [`engine`]: the cycle-level Streaming Engine (Stream Table, SCROB,
//!   stream scheduler, load/store FIFOs, address-generator pacing) consumed
//!   by the out-of-order timing model in `uve-cpu`, plus the
//!   hardware-storage report of Sec. VI-C.
//!
//! # Example: running the paper's saxpy
//!
//! ```rust
//! use uve_core::{Emulator, EmuConfig};
//! use uve_isa::assemble;
//! use uve_mem::Memory;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble("saxpy", r#"
//!     li x10, 64
//!     li x11, 0x10000
//!     li x12, 0x20000
//!     li x13, 1
//!     ss.ld.w u0, x11, x10, x13
//!     ss.ld.w u1, x12, x10, x13
//!     ss.st.w u2, x12, x10, x13
//!     so.v.dup.w.fp u3, f10
//! loop:
//!     so.a.mul.w.fp u4, u3, u0, p0
//!     so.a.add.w.fp u2, u4, u1, p0
//!     so.b.nend u0, loop
//!     halt
//! "#)?;
//!
//! let mut emu = Emulator::new(EmuConfig::default(), Memory::new());
//! emu.set_f(uve_isa::FReg::FA0, 3.0);
//! emu.mem.write_f32_slice(0x10000, &vec![1.0; 64]);
//! emu.mem.write_f32_slice(0x20000, &vec![2.0; 64]);
//! let result = emu.run(&program)?;
//! assert_eq!(emu.mem.read_f32(0x20000), 5.0); // 3·1 + 2
//! assert!(result.trace.committed() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod deadline;
mod emulator;
pub mod engine;
pub mod fingerprint;
mod stream_unit;
mod trace;
pub mod translate;
mod value;

pub use emulator::{EmuConfig, EmuError, Emulator, RunCursor, RunResult, StreamFaultPlan};
pub use fingerprint::{canonical_program_bytes, program_fingerprint};
pub use stream_unit::{ActiveStream, Consumed, StreamError, StreamUnit};
pub use trace::{BranchOutcome, ChunkMeta, StreamInstance, StreamTrace, Trace, TraceOp};
pub use translate::ExecMode;
pub use value::{PredVal, Scalar, VecVal, MAX_LANES};

pub use uve_stream::IndirectPacking;
