//! Basic-block translation cache for the functional emulator.
//!
//! The interpreter re-decodes operand fields and walks a 60-arm `match` for
//! every dynamic instruction. Since program text is immutable (there is no
//! store-to-code path in the ISA), each *static* basic block can instead be
//! lowered once into a flat array of pre-resolved [`FlatOp`]s
//! ([`uve_isa::flat`]) and executed straight-line. The cache is keyed by
//! block start PC and owned per [`Emulator`](crate::Emulator), so budgeted
//! [`resume`](crate::Emulator::resume) slices, `uve-smp` context switches
//! and [`StreamFaultPlan`](crate::StreamFaultPlan) rollback all work
//! unchanged — a slice boundary or fault simply re-enters the loop at an
//! arbitrary PC, for which a (possibly overlapping) block is translated on
//! demand.
//!
//! Translations are never invalidated. The only way a cached block could go
//! stale is running a *different* program on the same emulator, which
//! [`TranslationCache::ensure_program`] detects by fingerprinting the
//! program's name and instruction words and clearing the cache on mismatch.

use uve_isa::{flat, FlatOp, Inst, Program};

/// Execution strategy for the emulator ([`EmuConfig::exec`](crate::EmuConfig)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecMode {
    /// Decode-dispatch interpretation of one instruction at a time — the
    /// reference semantics (and the oracle the `exec` conformance engine
    /// diffs against).
    #[default]
    Interpret,
    /// Basic-block translation: each static block is lowered once to flat
    /// pre-resolved ops and executed straight-line, bit-identical to the
    /// interpreter (traces, `arch_digest`, fault recovery and all).
    Translated,
}

/// One translated straight-line block.
///
/// `flats` and `insts` are parallel arrays: the pre-resolved [`FlatOp`]s the
/// fast path iterates (kept dense so the dispatch loop touches nothing
/// else), and the original [`Inst`]s the executor falls back to the
/// interpreter with (stream operands, trace recording, fault recovery)
/// without a second fetch. A block extends from `start_pc` up to and
/// including the first branch, or up to (excluding) `halt` / the end of the
/// program; `halt` is retired by the dispatch loop itself, never as a block
/// op.
#[derive(Debug)]
pub struct Block {
    /// PC of the first instruction in the block.
    pub start_pc: u32,
    /// Pre-resolved ops; op `i` sits at `start_pc + i`.
    pub flats: Vec<FlatOp>,
    /// The matching source instructions, for per-instruction fallback.
    pub insts: Vec<Inst>,
    /// True when every op before the last is [`FlatOp::is_simple`] —
    /// infallible, non-redirecting, scalar-only. The executor then runs the
    /// body with no per-instruction control-flow or error machinery (only
    /// the final op of a block can branch, by construction).
    pub simple_body: bool,
}

/// Per-emulator cache of translated blocks, indexed by block start PC.
///
/// The program's PCs are small dense integers, so the cache is a flat
/// `Vec` — a block lookup on the hot path is one bounds-checked index, not
/// a hash. Blocks may overlap: resuming mid-block (slice boundary, branch
/// into the middle of a previously translated region) just translates a
/// fresh block starting at that PC. Static code makes this cheap and
/// sound — both copies decode identically forever.
#[derive(Debug, Default)]
pub struct TranslationCache {
    fingerprint: u64,
    primed: bool,
    blocks: Vec<Option<Box<Block>>>,
}

impl TranslationCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct blocks translated so far.
    pub fn len(&self) -> usize {
        self.blocks.iter().filter(|b| b.is_some()).count()
    }

    /// True when no blocks have been translated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Re-keys the cache to `program`, clearing it if a different program
    /// was translated previously (same `Emulator` reused across programs).
    pub fn ensure_program(&mut self, program: &Program) {
        let fp = fingerprint(program);
        if !self.primed || self.fingerprint != fp {
            self.blocks.clear();
            self.blocks.resize_with(program.len(), || None);
            self.fingerprint = fp;
            self.primed = true;
        }
    }

    /// The block starting at `pc`, translating it on first use. Returns
    /// `None` only when `pc` has no executable body: out of range, or
    /// pointing at `halt` (which the dispatch loop retires itself).
    #[inline]
    pub fn block_at(&mut self, program: &Program, pc: u32) -> Option<&Block> {
        let slot = self.blocks.get_mut(pc as usize)?;
        if slot.is_none() {
            *slot = Some(Box::new(translate_block(program, pc)?));
        }
        slot.as_deref()
    }
}

/// Fingerprint of a program's identity: its name folded into the
/// canonical instruction-word fingerprint
/// ([`crate::fingerprint::program_fingerprint`]). The cache is a
/// per-emulator private detail, but sharing the service's build-stable
/// fingerprint means there is exactly one notion of program identity in
/// the tree. Collisions would need two different programs colliding under
/// FNV-1a — ignored, as programs in one process come from the same
/// builder.
fn fingerprint(program: &Program) -> u64 {
    let mut h = crate::fingerprint::program_fingerprint(program);
    for &b in program.name().as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Translates the straight-line block starting at `pc`: instructions are
/// lowered in order until the first branch (included — it decides the
/// successor at run time) or `halt` / end of program (excluded). Returns
/// `None` for an empty body (`pc` at `halt` or out of range).
fn translate_block(program: &Program, pc: u32) -> Option<Block> {
    let mut flats = Vec::new();
    let mut insts = Vec::new();
    let mut cur = pc;
    while let Some(inst) = program.fetch(cur) {
        if inst == Inst::Halt {
            break;
        }
        let is_branch = inst.is_branch();
        flats.push(flat::lower(&inst));
        insts.push(inst);
        cur += 1;
        if is_branch {
            break;
        }
    }
    if flats.is_empty() {
        return None;
    }
    let simple_body = flats[..flats.len() - 1].iter().all(FlatOp::is_simple);
    Some(Block {
        start_pc: pc,
        flats,
        insts,
        simple_body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uve_isa::assemble;

    fn prog(text: &str) -> Program {
        assemble("t", text).expect("assembles")
    }

    #[test]
    fn blocks_split_at_branches_and_halt() {
        let p = prog(
            "
    li x10, 0
    li x11, 10
loop:
    addi x10, x10, 1
    bne x10, x11, loop
    halt
",
        );
        let entry = translate_block(&p, 0).unwrap();
        // li, li, addi, bne — the branch terminates the block, halt is
        // excluded.
        assert_eq!(entry.flats.len(), 4);
        assert!(matches!(entry.insts[3], Inst::Branch { .. }));
        let body = translate_block(&p, 2).unwrap();
        assert_eq!(body.start_pc, 2);
        assert_eq!(body.flats.len(), 2);
        // A PC at halt or past the end has no block.
        assert!(translate_block(&p, 4).is_none());
        assert!(translate_block(&p, 99).is_none());
    }

    #[test]
    fn cache_rekeys_on_program_change() {
        let p1 = prog("li x10, 1\nhalt");
        let p2 = prog("li x10, 2\nhalt");
        let mut cache = TranslationCache::new();
        cache.ensure_program(&p1);
        assert!(cache.block_at(&p1, 0).is_some());
        assert_eq!(cache.len(), 1);
        cache.ensure_program(&p1);
        assert_eq!(cache.len(), 1, "same program keeps the cache");
        cache.ensure_program(&p2);
        assert!(cache.is_empty(), "different program clears the cache");
        let b = cache.block_at(&p2, 0).unwrap();
        assert!(matches!(
            b.flats[0],
            uve_isa::FlatOp::AluImm { imm: 2, .. } | uve_isa::FlatOp::Li { .. }
        ));
    }

    #[test]
    fn overlapping_blocks_decode_identically() {
        let p = prog(
            "
    addi x10, x10, 1
    addi x10, x10, 2
    addi x10, x10, 3
    halt
",
        );
        let full = translate_block(&p, 0).unwrap();
        let tail = translate_block(&p, 1).unwrap();
        assert_eq!(full.flats.len(), 3);
        assert_eq!(tail.flats.len(), 2);
        assert_eq!(full.flats[1], tail.flats[0]);
        assert_eq!(full.flats[2], tail.flats[1]);
        assert_eq!(full.insts[1], tail.insts[0]);
    }
}
