//! Dynamic instruction traces: the bridge between the functional emulator
//! and the out-of-order timing model.
//!
//! The emulator executes a program with full ISA semantics and records, per
//! dynamic instruction, everything the timing model needs: register
//! dependencies, touched cache lines, branch outcomes, and — for stream
//! operations — which *chunk* of which stream instance was consumed or
//! produced. Per-stream side tables ([`StreamTrace`]) describe the exact
//! line-request sequence of every chunk, so the timing Streaming Engine can
//! replay the paper's address-generator behaviour (one line request per
//! cycle, one extra cycle per descriptor-dimension switch, same-line
//! coalescing) without re-walking descriptors.

use uve_isa::{Dir, ElemWidth, ExecClass, MemLevel, RegRef};

/// Identifier of a dynamic stream instance (one per completed stream
/// configuration; a register reconfigured `n` times yields `n` instances).
pub type StreamInstance = u32;

/// Metadata of one vector-register-sized stream chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Cache-line addresses backing the chunk, in first-touch order and
    /// deduplicated for consecutive repeats (the engine's request
    /// coalescing). Includes lines read by indirection origins.
    pub lines: Vec<u64>,
    /// Descriptor-dimension switches performed while generating the chunk.
    pub dim_switches: u32,
    /// Valid elements in the chunk.
    pub valid: u32,
}

/// Per-instance stream description recorded by the emulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamTrace {
    /// Architectural register the stream was bound to (`u0`–`u31`).
    pub u: u8,
    /// Input (load) or output (store).
    pub dir: Dir,
    /// Memory level the stream was directed at.
    pub level: MemLevel,
    /// Element width.
    pub width: ElemWidth,
    /// The chunk sequence, in consumption/production order.
    pub chunks: Vec<ChunkMeta>,
    /// Number of configuration instructions used (SCROB occupancy).
    pub cfg_insts: u32,
}

impl StreamTrace {
    /// Total elements transferred by this stream.
    pub fn elements(&self) -> u64 {
        self.chunks.iter().map(|c| u64::from(c.valid)).sum()
    }

    /// Total line requests issued by this stream.
    pub fn line_requests(&self) -> u64 {
        self.chunks.iter().map(|c| c.lines.len() as u64).sum()
    }
}

/// Branch outcome of a dynamic control-transfer instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchOutcome {
    /// Whether the branch was taken.
    pub taken: bool,
    /// The next PC actually followed.
    pub next_pc: u32,
}

/// One dynamic instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOp {
    /// Static instruction index.
    pub pc: u32,
    /// Execution resource class.
    pub exec: ExecClass,
    /// Source registers (stream registers included — the timing model
    /// treats stream operands through the FIFO readiness interface instead
    /// of the register file when listed in `stream_reads`).
    pub srcs: Vec<RegRef>,
    /// Destination registers.
    pub dests: Vec<RegRef>,
    /// Cache lines touched by an explicit (non-stream) memory access.
    pub mem_lines: Vec<u64>,
    /// First byte address of the access (prefetcher training key uses
    /// `pc`).
    pub mem_addr: u64,
    /// `true` if the explicit access is a store.
    pub is_store: bool,
    /// Branch outcome, for control-transfer instructions.
    pub branch: Option<BranchOutcome>,
    /// Stream chunks consumed: `(instance, chunk index)`.
    pub stream_reads: Vec<(StreamInstance, u32)>,
    /// Stream chunks produced.
    pub stream_writes: Vec<(StreamInstance, u32)>,
    /// Stream instance whose configuration this instruction *completes*.
    pub stream_open: Option<StreamInstance>,
    /// Stream instance terminated by this instruction (explicit stop or
    /// completion-signalling consumption).
    pub stream_close: Option<StreamInstance>,
    /// Precise stream faults this instruction trapped on before finally
    /// executing (each one cost a handler round trip; the timing model
    /// charges `fault_trap_penalty` per fault).
    pub stream_faults: u32,
}

impl TraceOp {
    /// Creates a bare trace op for instruction `pc` of class `exec`.
    pub fn new(pc: u32, exec: ExecClass) -> Self {
        Self {
            pc,
            exec,
            srcs: Vec::new(),
            dests: Vec::new(),
            mem_lines: Vec::new(),
            mem_addr: 0,
            is_store: false,
            branch: None,
            stream_reads: Vec::new(),
            stream_writes: Vec::new(),
            stream_open: None,
            stream_close: None,
            stream_faults: 0,
        }
    }
}

/// A complete dynamic trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Dynamic instructions in program order.
    pub ops: Vec<TraceOp>,
    /// Stream instance side tables.
    pub streams: Vec<StreamTrace>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of dynamic (committed) instructions.
    pub fn committed(&self) -> u64 {
        self.ops.len() as u64
    }

    /// Committed instructions per execution class.
    pub fn class_histogram(&self) -> Vec<(ExecClass, u64)> {
        let mut map: Vec<(ExecClass, u64)> = Vec::new();
        for op in &self.ops {
            match map.iter_mut().find(|(c, _)| *c == op.exec) {
                Some((_, n)) => *n += 1,
                None => map.push((op.exec, 1)),
            }
        }
        map
    }

    /// Total dynamic branches and how many were taken.
    pub fn branch_profile(&self) -> (u64, u64) {
        let mut total = 0;
        let mut taken = 0;
        for op in &self.ops {
            if let Some(b) = op.branch {
                total += 1;
                taken += u64::from(b.taken);
            }
        }
        (total, taken)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts() {
        let mut t = Trace::new();
        t.ops.push(TraceOp::new(0, ExecClass::IntAlu));
        t.ops.push(TraceOp::new(1, ExecClass::IntAlu));
        t.ops.push(TraceOp::new(2, ExecClass::Branch));
        let h = t.class_histogram();
        assert!(h.contains(&(ExecClass::IntAlu, 2)));
        assert!(h.contains(&(ExecClass::Branch, 1)));
        assert_eq!(t.committed(), 3);
    }

    #[test]
    fn stream_trace_totals() {
        let s = StreamTrace {
            u: 0,
            dir: Dir::Load,
            level: MemLevel::L2,
            width: ElemWidth::Word,
            chunks: vec![
                ChunkMeta {
                    lines: vec![1, 2],
                    dim_switches: 0,
                    valid: 16,
                },
                ChunkMeta {
                    lines: vec![3],
                    dim_switches: 1,
                    valid: 4,
                },
            ],
            cfg_insts: 1,
        };
        assert_eq!(s.elements(), 20);
        assert_eq!(s.line_requests(), 3);
    }

    #[test]
    fn branch_profile() {
        let mut t = Trace::new();
        let mut b = TraceOp::new(0, ExecClass::Branch);
        b.branch = Some(BranchOutcome {
            taken: true,
            next_pc: 5,
        });
        t.ops.push(b.clone());
        b.branch = Some(BranchOutcome {
            taken: false,
            next_pc: 1,
        });
        t.ops.push(b);
        assert_eq!(t.branch_profile(), (2, 1));
    }
}
