//! Vector and predicate register values for the functional emulator.

use uve_isa::{ElemWidth, VType};

/// Maximum number of lanes any configuration can have (512-bit vector of
/// bytes).
pub const MAX_LANES: usize = 64;

/// A vector register value: raw little-endian bytes plus per-lane validity.
///
/// Lane validity implements the paper's automatic out-of-bounds disabling
/// (feature F5): stream reads shorter than the vector length yield trailing
/// invalid lanes, and operations propagate invalidity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VecVal {
    bytes: Vec<u8>,
    /// Element width the lanes were produced at.
    width: ElemWidth,
    /// Per-lane validity (length = bytes.len() / width).
    valid: Vec<bool>,
}

impl VecVal {
    /// Creates an all-invalid value of `vlen_bytes` at the given width.
    pub fn empty(vlen_bytes: usize, width: ElemWidth) -> Self {
        let lanes = vlen_bytes / width.bytes();
        Self {
            bytes: vec![0; vlen_bytes],
            width,
            valid: vec![false; lanes],
        }
    }

    /// Creates a value from lane integers (sign-truncated to `width`), all
    /// valid.
    pub fn from_ints(vlen_bytes: usize, width: ElemWidth, vals: &[i64]) -> Self {
        let mut v = Self::empty(vlen_bytes, width);
        for (i, &x) in vals.iter().enumerate().take(v.lanes()) {
            v.set_int(i, x);
            v.valid[i] = true;
        }
        v
    }

    /// Creates a value from lane floats, all valid.
    pub fn from_floats(vlen_bytes: usize, width: ElemWidth, vals: &[f64]) -> Self {
        let mut v = Self::empty(vlen_bytes, width);
        for (i, &x) in vals.iter().enumerate().take(v.lanes()) {
            v.set_float(i, x);
            v.valid[i] = true;
        }
        v
    }

    /// Number of lanes at this value's width.
    pub fn lanes(&self) -> usize {
        self.valid.len()
    }

    /// The element width.
    pub fn width(&self) -> ElemWidth {
        self.width
    }

    /// The raw bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Lane validity mask.
    pub fn valid(&self) -> &[bool] {
        &self.valid
    }

    /// `true` if lane `i` is valid.
    pub fn lane_valid(&self, i: usize) -> bool {
        self.valid.get(i).copied().unwrap_or(false)
    }

    /// Marks lane `i` (in)valid.
    pub fn set_lane_valid(&mut self, i: usize, v: bool) {
        if i < self.valid.len() {
            self.valid[i] = v;
        }
    }

    /// Number of valid lanes.
    pub fn valid_count(&self) -> usize {
        self.valid.iter().filter(|v| **v).count()
    }

    /// Number of leading valid lanes (the prefix written to output
    /// streams).
    pub fn valid_prefix(&self) -> usize {
        self.valid.iter().take_while(|v| **v).count()
    }

    /// Reinterprets the value at a different width (raw bytes preserved; all
    /// lanes become valid up to the previous valid byte extent).
    pub fn reinterpret(&self, width: ElemWidth) -> VecVal {
        let valid_bytes = self.valid_prefix() * self.width.bytes();
        let lanes = self.bytes.len() / width.bytes();
        let mut v = VecVal {
            bytes: self.bytes.clone(),
            width,
            valid: vec![false; lanes],
        };
        for i in 0..lanes {
            v.valid[i] = (i + 1) * width.bytes() <= valid_bytes;
        }
        v
    }

    /// Reads lane `i` as a sign-extended integer.
    pub fn int(&self, i: usize) -> i64 {
        let w = self.width.bytes();
        let off = i * w;
        let mut buf = [0u8; 8];
        buf[..w].copy_from_slice(&self.bytes[off..off + w]);
        let raw = u64::from_le_bytes(buf);
        match self.width {
            ElemWidth::Byte => raw as u8 as i8 as i64,
            ElemWidth::Half => raw as u16 as i16 as i64,
            ElemWidth::Word => raw as u32 as i32 as i64,
            ElemWidth::Double => raw as i64,
        }
    }

    /// Writes lane `i` from an integer (truncating to the width).
    pub fn set_int(&mut self, i: usize, v: i64) {
        let w = self.width.bytes();
        let off = i * w;
        self.bytes[off..off + w].copy_from_slice(&v.to_le_bytes()[..w]);
    }

    /// Reads lane `i` as a float (`Word` = f32, `Double` = f64).
    ///
    /// # Panics
    ///
    /// Panics for sub-word widths, which have no float interpretation.
    pub fn float(&self, i: usize) -> f64 {
        let w = self.width.bytes();
        let off = i * w;
        match self.width {
            ElemWidth::Word => {
                let mut b = [0u8; 4];
                b.copy_from_slice(&self.bytes[off..off + 4]);
                f32::from_le_bytes(b) as f64
            }
            ElemWidth::Double => {
                let mut b = [0u8; 8];
                b.copy_from_slice(&self.bytes[off..off + 8]);
                f64::from_le_bytes(b)
            }
            _ => panic!("no float interpretation at width {:?}", self.width),
        }
    }

    /// Writes lane `i` from a float.
    ///
    /// # Panics
    ///
    /// Panics for sub-word widths.
    pub fn set_float(&mut self, i: usize, v: f64) {
        let w = self.width.bytes();
        let off = i * w;
        match self.width {
            ElemWidth::Word => {
                self.bytes[off..off + 4].copy_from_slice(&(v as f32).to_le_bytes());
            }
            ElemWidth::Double => {
                self.bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
            }
            _ => panic!("no float interpretation at width {:?}", self.width),
        }
    }

    /// Reads lane `i` as a generic scalar of the instruction's type.
    pub fn scalar(&self, i: usize, ty: VType) -> Scalar {
        match ty {
            VType::Int => Scalar::Int(self.int(i)),
            VType::Fp => Scalar::Fp(self.float(i)),
        }
    }

    /// Writes lane `i` from a generic scalar.
    pub fn set_scalar(&mut self, i: usize, s: Scalar) {
        match s {
            Scalar::Int(v) => self.set_int(i, v),
            Scalar::Fp(v) => self.set_float(i, v),
        }
    }
}

/// A lane value of either interpretation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalar {
    /// Integer lane.
    Int(i64),
    /// Floating-point lane.
    Fp(f64),
}

impl Scalar {
    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if this is a float.
    pub fn as_int(self) -> i64 {
        match self {
            Scalar::Int(v) => v,
            Scalar::Fp(_) => panic!("expected integer lane"),
        }
    }

    /// The float payload.
    ///
    /// # Panics
    ///
    /// Panics if this is an integer.
    pub fn as_fp(self) -> f64 {
        match self {
            Scalar::Fp(v) => v,
            Scalar::Int(_) => panic!("expected float lane"),
        }
    }
}

/// A predicate register value: one boolean per (byte) lane position.
///
/// The effective mask at width `w` uses entry `i` for lane `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredVal {
    lanes: Vec<bool>,
}

impl PredVal {
    /// All-true predicate (the hardwired `p0`).
    pub fn all_true() -> Self {
        Self {
            lanes: vec![true; MAX_LANES],
        }
    }

    /// All-false predicate.
    pub fn all_false() -> Self {
        Self {
            lanes: vec![false; MAX_LANES],
        }
    }

    /// Builds from a boolean slice (padded with false).
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut lanes = vec![false; MAX_LANES];
        lanes[..bools.len().min(MAX_LANES)].copy_from_slice(&bools[..bools.len().min(MAX_LANES)]);
        Self { lanes }
    }

    /// Lane `i`.
    pub fn get(&self, i: usize) -> bool {
        self.lanes.get(i).copied().unwrap_or(false)
    }

    /// Sets lane `i`.
    pub fn set(&mut self, i: usize, v: bool) {
        if i < self.lanes.len() {
            self.lanes[i] = v;
        }
    }

    /// `true` if any of the first `n` lanes is set.
    pub fn any(&self, n: usize) -> bool {
        self.lanes[..n.min(MAX_LANES)].iter().any(|b| *b)
    }

    /// `true` if the first lane is set.
    pub fn first(&self) -> bool {
        self.lanes[0]
    }

    /// Count of set lanes among the first `n`.
    pub fn count(&self, n: usize) -> usize {
        self.lanes[..n.min(MAX_LANES)]
            .iter()
            .filter(|b| **b)
            .count()
    }

    /// Lane-wise NOT over the first `n` lanes.
    pub fn not(&self, n: usize) -> PredVal {
        let mut p = PredVal::all_false();
        for i in 0..n.min(MAX_LANES) {
            p.lanes[i] = !self.lanes[i];
        }
        p
    }

    /// Lane-wise AND.
    pub fn and(&self, other: &PredVal) -> PredVal {
        let mut p = PredVal::all_false();
        for i in 0..MAX_LANES {
            p.lanes[i] = self.lanes[i] && other.lanes[i];
        }
        p
    }

    /// Lane-wise OR.
    pub fn or(&self, other: &PredVal) -> PredVal {
        let mut p = PredVal::all_false();
        for i in 0..MAX_LANES {
            p.lanes[i] = self.lanes[i] || other.lanes[i];
        }
        p
    }
}

impl Default for PredVal {
    fn default() -> Self {
        Self::all_false()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_lane_roundtrip_all_widths() {
        for w in ElemWidth::all() {
            let mut v = VecVal::empty(64, w);
            v.set_int(0, -1);
            v.set_int(1, 42);
            assert_eq!(v.int(0), -1, "{w:?}");
            assert_eq!(v.int(1), 42);
        }
    }

    #[test]
    fn float_lane_roundtrip() {
        let mut v = VecVal::empty(64, ElemWidth::Word);
        v.set_float(3, -2.5);
        assert_eq!(v.float(3), -2.5);
        let mut d = VecVal::empty(64, ElemWidth::Double);
        d.set_float(7, 1e100);
        assert_eq!(d.float(7), 1e100);
    }

    #[test]
    fn lanes_by_width() {
        assert_eq!(VecVal::empty(64, ElemWidth::Word).lanes(), 16);
        assert_eq!(VecVal::empty(64, ElemWidth::Double).lanes(), 8);
        assert_eq!(VecVal::empty(16, ElemWidth::Word).lanes(), 4);
    }

    #[test]
    fn valid_prefix_vs_count() {
        let mut v = VecVal::from_ints(64, ElemWidth::Word, &[1, 2, 3, 4]);
        assert_eq!(v.valid_count(), 4);
        assert_eq!(v.valid_prefix(), 4);
        v.set_lane_valid(1, false);
        assert_eq!(v.valid_count(), 3);
        assert_eq!(v.valid_prefix(), 1);
    }

    #[test]
    fn from_floats_all_valid() {
        let v = VecVal::from_floats(64, ElemWidth::Word, &[1.0; 16]);
        assert_eq!(v.valid_count(), 16);
        assert_eq!(v.float(15), 1.0);
    }

    #[test]
    fn pred_ops() {
        let p = PredVal::from_bools(&[true, false, true]);
        assert!(p.first());
        assert!(p.any(3));
        assert_eq!(p.count(3), 2);
        let n = p.not(3);
        assert!(!n.first());
        assert_eq!(n.count(3), 1);
        let a = p.and(&PredVal::all_true());
        assert_eq!(a.count(3), 2);
        let o = p.or(&n);
        assert_eq!(o.count(3), 3);
    }

    #[test]
    fn scalar_accessors() {
        assert_eq!(Scalar::Int(5).as_int(), 5);
        assert_eq!(Scalar::Fp(2.0).as_fp(), 2.0);
    }

    #[test]
    #[should_panic(expected = "no float interpretation")]
    fn byte_lane_has_no_float() {
        VecVal::empty(64, ElemWidth::Byte).float(0);
    }
}
