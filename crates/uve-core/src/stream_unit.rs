//! Functional stream management: configuration, consumption, production,
//! control (suspend/resume/stop) and context switching.
//!
//! This is the *architectural* (value-level) half of the Streaming Engine;
//! the cycle-level half lives in [`crate::engine`].

use crate::trace::{ChunkMeta, StreamInstance, StreamTrace, Trace};
use crate::value::VecVal;
use std::cell::RefCell;
use std::fmt;
use uve_isa::{Dir, ElemWidth, MemLevel, VReg};
use uve_mem::{Memory, LINE_BYTES, PAGE_SIZE};
use uve_stream::{
    Behaviour, EndFlags, IndirectBehaviour, IndirectPacking, Param, Pattern, PatternError,
    SavedWalker, StreamMemory, Walker, MAX_DIMS, MAX_MODIFIERS,
};

/// Errors raised by stream operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// A configuration instruction targeted a register with no open
    /// configuration.
    NoPendingConfig(u8),
    /// A stream operation targeted a register with no active stream.
    NotConfigured(u8),
    /// Reading an output stream or writing an input stream ("a stream
    /// cannot simultaneously operate in both read and write modes",
    /// Fig. 4).
    WrongDirection(u8),
    /// Consuming from an exhausted stream.
    Exhausted(u8),
    /// Operating on a suspended stream.
    Suspended(u8),
    /// An indirect configuration referenced a register without a configured
    /// origin stream.
    NoOrigin(u8),
    /// An internal invariant of the stream unit failed — a model bug,
    /// reported as an error instead of a panic so sweeps and fuzzers can
    /// isolate the offending input.
    Internal(&'static str),
    /// The assembled pattern violated a hardware limit.
    Pattern(PatternError),
    /// A stream element touched a faulting page (Sec. II-C/V: the fault is
    /// precise — the walker has been rolled back to the chunk boundary and
    /// no chunk was emitted, so the consuming instruction can trap, run a
    /// handler, and re-execute).
    PageFault {
        /// Stream register.
        u: u8,
        /// Faulting virtual page number.
        page: u64,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::NoPendingConfig(u) => write!(f, "u{u}: no open stream configuration"),
            StreamError::NotConfigured(u) => write!(f, "u{u}: no active stream"),
            StreamError::WrongDirection(u) => {
                write!(f, "u{u}: stream accessed against its direction")
            }
            StreamError::Exhausted(u) => write!(f, "u{u}: stream exhausted"),
            StreamError::Suspended(u) => write!(f, "u{u}: stream suspended"),
            StreamError::NoOrigin(u) => write!(f, "u{u}: indirect origin not configured"),
            StreamError::Internal(what) => {
                write!(f, "internal stream-unit invariant violated: {what}")
            }
            StreamError::Pattern(e) => write!(f, "invalid stream pattern: {e}"),
            StreamError::PageFault { u, page } => {
                write!(f, "u{u}: stream element faulted on page {page:#x}")
            }
        }
    }
}

impl std::error::Error for StreamError {}

impl From<PatternError> for StreamError {
    fn from(e: PatternError) -> Self {
        StreamError::Pattern(e)
    }
}

/// An in-flight (not yet complete) stream configuration.
#[derive(Debug, Clone)]
struct PendingCfg {
    dir: Dir,
    width: ElemWidth,
    base: u64,
    dims: Vec<DimCfg>,
    cfg_insts: u32,
}

#[derive(Debug, Clone)]
struct DimCfg {
    offset: i64,
    size: u64,
    stride: i64,
    statics: Vec<(Param, Behaviour, i64, u64)>,
    indirects: Vec<(Param, IndirectBehaviour, Pattern)>,
}

/// An active (configured) stream bound to a vector register.
#[derive(Debug, Clone)]
pub struct ActiveStream {
    /// Dynamic instance id (index into the trace's stream table).
    pub instance: StreamInstance,
    /// Stream direction.
    pub dir: Dir,
    /// Element width.
    pub width: ElemWidth,
    /// Memory level the stream operates at.
    pub level: MemLevel,
    walker: Walker,
    flags: EndFlags,
    suspended: bool,
    pattern: Pattern,
}

impl ActiveStream {
    /// Boundary flags of the last consumption/production.
    pub fn flags(&self) -> EndFlags {
        self.flags
    }

    /// `true` once the underlying pattern is exhausted.
    pub fn at_end(&self) -> bool {
        self.walker.is_done()
    }

    /// `true` while suspended.
    pub fn is_suspended(&self) -> bool {
        self.suspended
    }

    /// The configured pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }
}

/// Memory wrapper recording the cache lines touched by indirection-origin
/// loads during chunk generation.
struct RecordingMem<'m> {
    mem: &'m Memory,
    touched: RefCell<Vec<u64>>,
}

impl StreamMemory for RecordingMem<'_> {
    fn load(&self, addr: u64, width: ElemWidth) -> i64 {
        let line = addr / LINE_BYTES;
        let mut t = self.touched.borrow_mut();
        if t.last() != Some(&line) {
            t.push(line);
        }
        self.mem.read_elem(addr, width)
    }
}

/// Result of consuming one input-stream chunk.
#[derive(Debug, Clone)]
pub struct Consumed {
    /// The loaded vector value (invalid lanes padded, feature F5).
    pub value: VecVal,
    /// Index of the chunk within the stream instance.
    pub chunk: u32,
}

/// The functional stream unit: 32 stream slots bound to `u0`–`u31`.
#[derive(Debug, Clone, Default)]
pub struct StreamUnit {
    slots: Vec<Option<ActiveStream>>,
    pending: Vec<Option<PendingCfg>>,
    levels: Vec<MemLevel>,
    /// Last boundary flags per register — survives stream termination so
    /// the `so.b.*` branches after the final consumption still resolve.
    last_flags: Vec<EndFlags>,
    /// Whether the register's last stream ran to completion.
    last_done: Vec<bool>,
    /// Whether a stream was ever configured on the register.
    seen: Vec<bool>,
    /// Chunking mode for indirectly modified streams (packed by default).
    packing: IndirectPacking,
}

impl StreamUnit {
    /// Creates an empty unit.
    pub fn new() -> Self {
        Self::with_default_level(MemLevel::default())
    }

    /// Creates an empty unit whose streams default to the given memory
    /// level (the Fig. 11 sensitivity knob; `so.cfg.mem` still overrides
    /// per register).
    pub fn with_default_level(level: MemLevel) -> Self {
        Self::with_config(level, IndirectPacking::default())
    }

    /// Creates an empty unit with an explicit default memory level and
    /// [`IndirectPacking`] mode for indirectly modified streams.
    pub fn with_config(level: MemLevel, packing: IndirectPacking) -> Self {
        Self {
            slots: vec![None; 32],
            pending: (0..32).map(|_| None).collect(),
            levels: vec![level; 32],
            last_flags: vec![EndFlags::NONE; 32],
            last_done: vec![false; 32],
            seen: vec![false; 32],
            packing,
        }
    }

    /// The configured chunking mode for indirect streams.
    pub fn packing(&self) -> IndirectPacking {
        self.packing
    }

    /// The active stream on `u`, if any.
    pub fn get(&self, u: VReg) -> Option<&ActiveStream> {
        self.slots[u.index()].as_ref()
    }

    /// Number of active streams.
    pub fn active_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Directs future (and current) streams on `u` at a memory level.
    pub fn set_level(&mut self, u: VReg, level: MemLevel) {
        self.levels[u.index()] = level;
        if let Some(s) = self.slots[u.index()].as_mut() {
            s.level = level;
        }
    }

    /// Begins a stream configuration (`ss.ld`/`ss.st`[`.sta`]); if `done`,
    /// the 1-D configuration completes immediately.
    ///
    /// # Errors
    ///
    /// Propagates pattern-validation failures on completion.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        &mut self,
        u: VReg,
        dir: Dir,
        width: ElemWidth,
        base: u64,
        size: u64,
        stride: i64,
        done: bool,
        trace: &mut Trace,
    ) -> Result<Option<StreamInstance>, StreamError> {
        let cfg = PendingCfg {
            dir,
            width,
            base,
            dims: vec![DimCfg {
                offset: 0,
                size,
                stride,
                statics: Vec::new(),
                indirects: Vec::new(),
            }],
            cfg_insts: 1,
        };
        self.pending[u.index()] = Some(cfg);
        if done {
            self.finish(u, trace).map(Some)
        } else {
            Ok(None)
        }
    }

    /// Appends an outer dimension (`ss.app`/`ss.end`).
    ///
    /// # Errors
    ///
    /// Fails without an open configuration; propagates validation failures
    /// on completion.
    #[allow(clippy::too_many_arguments)]
    pub fn append_dim(
        &mut self,
        u: VReg,
        offset: i64,
        size: u64,
        stride: i64,
        end: bool,
        trace: &mut Trace,
    ) -> Result<Option<StreamInstance>, StreamError> {
        let cfg = self.pending[u.index()]
            .as_mut()
            .ok_or(StreamError::NoPendingConfig(u.num()))?;
        cfg.dims.push(DimCfg {
            offset,
            size,
            stride,
            statics: Vec::new(),
            indirects: Vec::new(),
        });
        cfg.cfg_insts += 1;
        if end {
            self.finish(u, trace).map(Some)
        } else {
            Ok(None)
        }
    }

    /// Appends a static modifier to the last dimension
    /// (`ss.app.mod`/`ss.end.mod`).
    ///
    /// # Errors
    ///
    /// Fails without an open configuration.
    #[allow(clippy::too_many_arguments)]
    pub fn append_static_mod(
        &mut self,
        u: VReg,
        target: Param,
        behaviour: Behaviour,
        disp: i64,
        count: u64,
        end: bool,
        trace: &mut Trace,
    ) -> Result<Option<StreamInstance>, StreamError> {
        let cfg = self.pending[u.index()]
            .as_mut()
            .ok_or(StreamError::NoPendingConfig(u.num()))?;
        cfg.dims
            .last_mut()
            .ok_or(StreamError::Internal("pending config has no dimensions"))?
            .statics
            .push((target, behaviour, disp, count));
        cfg.cfg_insts += 1;
        if end {
            self.finish(u, trace).map(Some)
        } else {
            Ok(None)
        }
    }

    /// Appends an indirect modifier whose origin is the stream configured on
    /// `origin` (`ss.app.ind`/`ss.end.ind`). The origin's pattern is
    /// captured at configuration time.
    ///
    /// If the pending configuration's outermost dimension is the one the
    /// modifier should bind to from outside (the paper's Fig. 3.B5 single-
    /// descriptor indirect form), a virtual outer dimension sized by the
    /// origin stream length is created.
    ///
    /// # Errors
    ///
    /// Fails without an open configuration or configured origin.
    #[allow(clippy::too_many_arguments)]
    pub fn append_indirect_mod(
        &mut self,
        u: VReg,
        target: Param,
        behaviour: IndirectBehaviour,
        origin: VReg,
        end: bool,
        mem: &Memory,
        trace: &mut Trace,
    ) -> Result<Option<StreamInstance>, StreamError> {
        let origin_pattern = self.slots[origin.index()]
            .as_ref()
            .map(|s| s.pattern.clone())
            .ok_or(StreamError::NoOrigin(origin.num()))?;
        let origin_len = origin_pattern.count(mem);
        let cfg = self.pending[u.index()]
            .as_mut()
            .ok_or(StreamError::NoPendingConfig(u.num()))?;
        if cfg.dims.len() == 1 {
            // Fig. 3.B5 single-descriptor form: bind via a virtual outer
            // dimension iterated once per origin value.
            cfg.dims.push(DimCfg {
                offset: 0,
                size: origin_len,
                stride: 0,
                statics: Vec::new(),
                indirects: vec![(target, behaviour, origin_pattern)],
            });
        } else {
            // Attach to the most recently configured dimension.
            cfg.dims
                .last_mut()
                .ok_or(StreamError::Internal("pending config has no dimensions"))?
                .indirects
                .push((target, behaviour, origin_pattern));
        }
        cfg.cfg_insts += 1;
        if end {
            self.finish(u, trace).map(Some)
        } else {
            Ok(None)
        }
    }

    /// Completes the pending configuration on `u`, replacing any previously
    /// active stream (stream renaming allows this, Sec. IV-A).
    fn finish(&mut self, u: VReg, trace: &mut Trace) -> Result<StreamInstance, StreamError> {
        let cfg = self.pending[u.index()]
            .take()
            .ok_or(StreamError::NoPendingConfig(u.num()))?;
        let mut b = Pattern::builder(cfg.base, cfg.width);
        let mut nmods = 0usize;
        for d in &cfg.dims {
            b = b.dim(d.offset, d.size, d.stride);
            for &(t, bh, disp, count) in &d.statics {
                b = b.static_mod(t, bh, disp, count);
                nmods += 1;
            }
            for (t, bh, origin) in &d.indirects {
                b = b.indirect_mod(*t, *bh, origin.clone());
                nmods += 1;
            }
        }
        let _ = nmods.min(MAX_MODIFIERS).min(MAX_DIMS); // limits enforced by builder
        let pattern = b.build()?;
        let instance = trace.streams.len() as StreamInstance;
        trace.streams.push(StreamTrace {
            u: u.num(),
            dir: cfg.dir,
            level: self.levels[u.index()],
            width: cfg.width,
            chunks: Vec::new(),
            cfg_insts: cfg.cfg_insts,
        });
        self.seen[u.index()] = true;
        self.last_flags[u.index()] = EndFlags::NONE;
        self.last_done[u.index()] = false;
        self.slots[u.index()] = Some(ActiveStream {
            instance,
            dir: cfg.dir,
            width: cfg.width,
            level: self.levels[u.index()],
            walker: Walker::new(&pattern),
            flags: EndFlags::NONE,
            suspended: false,
            pattern,
        });
        Ok(instance)
    }

    /// Consumes one chunk (≤ `vlen_bytes / width` elements) from the input
    /// stream on `u`. Affine chunks never cross a dimension-0 boundary;
    /// indirectly modified streams pack across dimension-0 boundaries when
    /// the unit is configured [`IndirectPacking::Packed`] (the default),
    /// closing only at outer-dimension or stream boundaries.
    ///
    /// # Errors
    ///
    /// Fails on missing/suspended/exhausted streams or direction misuse.
    pub fn consume(
        &mut self,
        u: VReg,
        mem: &Memory,
        vlen_bytes: usize,
        trace: &mut Trace,
    ) -> Result<Consumed, StreamError> {
        self.consume_with(u, mem, vlen_bytes, trace, None)
    }

    /// [`consume`](Self::consume) with an optional page-fault probe.
    ///
    /// The probe is asked about every virtual page a stream element spans;
    /// answering `true` makes the consumption trap *precisely*: the walker
    /// is rolled back (via [`SavedWalker`]) to where this call found it, no
    /// chunk is emitted, no architectural state changes, and
    /// [`StreamError::PageFault`] reports the page so a handler can map it
    /// and the instruction can re-execute. Indirection-origin loads
    /// translate through the engine's origin FIFO and are modelled as
    /// non-faulting.
    ///
    /// # Errors
    ///
    /// As [`consume`](Self::consume), plus [`StreamError::PageFault`].
    pub fn consume_with(
        &mut self,
        u: VReg,
        mem: &Memory,
        vlen_bytes: usize,
        trace: &mut Trace,
        mut fault: Option<&mut dyn FnMut(u64) -> bool>,
    ) -> Result<Consumed, StreamError> {
        let packing = self.packing;
        let s = self.slots[u.index()]
            .as_mut()
            .ok_or(StreamError::NotConfigured(u.num()))?;
        if s.dir != Dir::Load {
            return Err(StreamError::WrongDirection(u.num()));
        }
        if s.suspended {
            return Err(StreamError::Suspended(u.num()));
        }
        let pack = packing == IndirectPacking::Packed && s.pattern.is_indirect();
        // Precise-fault rollback point: committed iteration state at entry.
        let entry = fault
            .as_ref()
            .map(|_| (SavedWalker::capture(&s.walker), s.flags));
        let vl = vlen_bytes / s.width.bytes();
        let rec = RecordingMem {
            mem,
            touched: RefCell::new(Vec::new()),
        };
        let mut value = VecVal::empty(vlen_bytes, s.width);
        let mut lines: Vec<u64> = Vec::new();
        let mut switches = 0u32;
        let mut n = 0usize;
        let wbytes = s.width.bytes() as u64;
        while n < vl {
            let Some(e) = s.walker.next_elem(&rec) else {
                if n == 0 {
                    return Err(StreamError::Exhausted(u.num()));
                }
                break;
            };
            if let Some(probe) = fault.as_mut() {
                if let Some(page) = faulting_page(probe, e.addr, wbytes) {
                    let Some((saved, flags)) = entry.as_ref() else {
                        return Err(StreamError::Internal("fault probe without entry snapshot"));
                    };
                    saved.restore(&mut s.walker, mem);
                    s.flags = *flags;
                    return Err(StreamError::PageFault { u: u.num(), page });
                }
            }
            value.set_int(n, mem.read_elem(e.addr, s.width));
            value.set_lane_valid(n, true);
            let first = e.addr / LINE_BYTES;
            let last = (e.addr + wbytes - 1) / LINE_BYTES;
            for l in first..=last {
                if lines.last() != Some(&l) {
                    lines.push(l);
                }
            }
            switches += e.ends.carry_depth();
            s.flags = e.ends;
            n += 1;
            let close = if pack {
                e.ends.ends_outer()
            } else {
                e.ends.ends_dim(0) || e.ends.ends_stream()
            };
            if close {
                break;
            }
        }
        // Indirection-origin lines also travelled through the engine.
        lines.extend(rec.touched.into_inner());
        let flags = s.flags;
        let done = s.walker.is_done();
        let st = &mut trace.streams[s.instance as usize];
        let chunk = st.chunks.len() as u32;
        st.chunks.push(ChunkMeta {
            lines,
            dim_switches: switches,
            valid: n as u32,
        });
        self.last_flags[u.index()] = flags;
        self.last_done[u.index()] = done;
        Ok(Consumed { value, chunk })
    }

    /// Produces `value`'s leading valid lanes into the output stream on `u`,
    /// writing memory and advancing the pattern by exactly that many
    /// elements.
    ///
    /// # Errors
    ///
    /// Fails on missing/suspended streams or direction misuse.
    pub fn produce(
        &mut self,
        u: VReg,
        mem: &mut Memory,
        value: &VecVal,
        trace: &mut Trace,
    ) -> Result<u32, StreamError> {
        self.produce_with(u, mem, value, trace, None)
    }

    /// [`produce`](Self::produce) with an optional page-fault probe (see
    /// [`consume_with`](Self::consume_with)).
    ///
    /// A faulting element traps *before* being written; elements already
    /// stored by this call stay in memory, which is safe because the
    /// rolled-back walker makes re-execution rewrite the same values to the
    /// same addresses (store replay is idempotent), so recovered runs end
    /// bit-identical to fault-free ones.
    ///
    /// # Errors
    ///
    /// As [`produce`](Self::produce), plus [`StreamError::PageFault`].
    pub fn produce_with(
        &mut self,
        u: VReg,
        mem: &mut Memory,
        value: &VecVal,
        trace: &mut Trace,
        mut fault: Option<&mut dyn FnMut(u64) -> bool>,
    ) -> Result<u32, StreamError> {
        let s = self.slots[u.index()]
            .as_mut()
            .ok_or(StreamError::NotConfigured(u.num()))?;
        if s.dir != Dir::Store {
            return Err(StreamError::WrongDirection(u.num()));
        }
        if s.suspended {
            return Err(StreamError::Suspended(u.num()));
        }
        let entry = fault
            .as_ref()
            .map(|_| (SavedWalker::capture(&s.walker), s.flags));
        let value = if value.width() == s.width {
            value.clone()
        } else {
            value.reinterpret(s.width)
        };
        let k = value.valid_prefix();
        let mut lines: Vec<u64> = Vec::new();
        let mut switches = 0u32;
        let mut written = 0u32;
        let wbytes = s.width.bytes() as u64;
        for i in 0..k {
            // Origin loads inside output patterns are rare but legal.
            let rec = RecordingMem {
                mem,
                touched: RefCell::new(Vec::new()),
            };
            let Some(e) = s.walker.next_elem(&rec) else {
                break; // out-of-bounds lanes disabled (padding)
            };
            if let Some(probe) = fault.as_mut() {
                if let Some(page) = faulting_page(probe, e.addr, wbytes) {
                    let Some((saved, flags)) = entry.as_ref() else {
                        return Err(StreamError::Internal("fault probe without entry snapshot"));
                    };
                    saved.restore(&mut s.walker, mem);
                    s.flags = *flags;
                    return Err(StreamError::PageFault { u: u.num(), page });
                }
            }
            lines.extend(rec.touched.into_inner());
            mem.write_elem(e.addr, s.width, value.int(i));
            let first = e.addr / LINE_BYTES;
            let last = (e.addr + wbytes - 1) / LINE_BYTES;
            for l in first..=last {
                if lines.last() != Some(&l) {
                    lines.push(l);
                }
            }
            switches += e.ends.carry_depth();
            s.flags = e.ends;
            written += 1;
            if e.ends.ends_stream() {
                break;
            }
        }
        let flags = s.flags;
        let done = s.walker.is_done();
        let st = &mut trace.streams[s.instance as usize];
        let chunk = st.chunks.len() as u32;
        st.chunks.push(ChunkMeta {
            lines,
            dim_switches: switches,
            valid: written,
        });
        self.last_flags[u.index()] = flags;
        self.last_done[u.index()] = done;
        Ok(chunk)
    }

    /// Stream state observed by the `so.b.*` branches: the boundary flags
    /// of the last consumption/production and whether the pattern has run
    /// to completion. Available even after the stream terminated (the
    /// architectural flags outlive the Stream Table entry); `None` if no
    /// stream was ever configured on `u`.
    pub fn branch_flags(&self, u: VReg) -> Option<(EndFlags, bool)> {
        if let Some(s) = self.slots[u.index()].as_ref() {
            return Some((s.flags, s.walker.is_done()));
        }
        if self.seen[u.index()] {
            return Some((self.last_flags[u.index()], self.last_done[u.index()]));
        }
        None
    }

    /// Suspends the stream on `u` (`ss.suspend`).
    ///
    /// # Errors
    ///
    /// Fails if no stream is configured.
    pub fn suspend(&mut self, u: VReg) -> Result<(), StreamError> {
        let s = self.slots[u.index()]
            .as_mut()
            .ok_or(StreamError::NotConfigured(u.num()))?;
        s.suspended = true;
        Ok(())
    }

    /// Resumes the stream on `u` (`ss.resume`).
    ///
    /// # Errors
    ///
    /// Fails if no stream is configured.
    pub fn resume(&mut self, u: VReg) -> Result<(), StreamError> {
        let s = self.slots[u.index()]
            .as_mut()
            .ok_or(StreamError::NotConfigured(u.num()))?;
        s.suspended = false;
        Ok(())
    }

    /// Terminates and deallocates the stream on `u` (`ss.stop`), returning
    /// its instance id.
    ///
    /// # Errors
    ///
    /// Fails if no stream is configured.
    pub fn stop(&mut self, u: VReg) -> Result<StreamInstance, StreamError> {
        let s = self.slots[u.index()]
            .take()
            .ok_or(StreamError::NotConfigured(u.num()))?;
        Ok(s.instance)
    }

    /// Saves the committed iteration state of every active stream (context
    /// switch, Sec. IV-A). Returns `(register, saved state)` pairs; the
    /// paper's per-stream state size (32 B–400 B) is available via
    /// [`SavedWalker::size_bytes`].
    pub fn save_context(&self) -> Vec<(u8, SavedWalker)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.as_ref()
                    .map(|s| (i as u8, SavedWalker::capture(&s.walker)))
            })
            .collect()
    }

    /// Restores previously saved iteration states (pre-fetched buffer data
    /// is lost and re-loaded, as the paper specifies — functionally the
    /// walker simply resumes from the commit point).
    pub fn restore_context(&mut self, saved: &[(u8, SavedWalker)], mem: &Memory) {
        for (u, state) in saved {
            if let Some(s) = self.slots[*u as usize].as_mut() {
                state.restore(&mut s.walker, mem);
            }
        }
    }
}

/// Asks the fault probe about every virtual page spanned by a `wbytes`-wide
/// element at `addr`; returns the first page it reports as faulting.
fn faulting_page<F>(probe: &mut F, addr: u64, wbytes: u64) -> Option<u64>
where
    F: FnMut(u64) -> bool + ?Sized,
{
    let first = addr / PAGE_SIZE;
    let last = (addr + wbytes - 1) / PAGE_SIZE;
    (first..=last).find(|&p| probe(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> (StreamUnit, Memory, Trace) {
        (StreamUnit::new(), Memory::new(), Trace::new())
    }

    fn setup_array(mem: &mut Memory, base: u64, n: usize) {
        for i in 0..n {
            mem.write_u32(base + 4 * i as u64, i as u32);
        }
    }

    #[test]
    fn simple_1d_consume() {
        let (mut su, mut mem, mut tr) = unit();
        setup_array(&mut mem, 0x1000, 20);
        su.start(
            VReg::new(0),
            Dir::Load,
            ElemWidth::Word,
            0x1000,
            20,
            1,
            true,
            &mut tr,
        )
        .unwrap();
        let c1 = su.consume(VReg::new(0), &mem, 64, &mut tr).unwrap();
        assert_eq!(c1.value.valid_count(), 16);
        assert_eq!(c1.value.int(0), 0);
        assert_eq!(c1.value.int(15), 15);
        let c2 = su.consume(VReg::new(0), &mem, 64, &mut tr).unwrap();
        assert_eq!(c2.value.valid_count(), 4); // tail padded
        assert_eq!(c2.value.int(0), 16);
        assert!(su.get(VReg::new(0)).unwrap().at_end());
        assert!(matches!(
            su.consume(VReg::new(0), &mem, 64, &mut tr),
            Err(StreamError::Exhausted(0))
        ));
    }

    #[test]
    fn chunk_lines_recorded() {
        let (mut su, mut mem, mut tr) = unit();
        setup_array(&mut mem, 0x1000, 16);
        su.start(
            VReg::new(0),
            Dir::Load,
            ElemWidth::Word,
            0x1000,
            16,
            1,
            true,
            &mut tr,
        )
        .unwrap();
        su.consume(VReg::new(0), &mem, 64, &mut tr).unwrap();
        assert_eq!(tr.streams[0].chunks[0].lines, vec![0x1000 / 64]);
        assert_eq!(tr.streams[0].chunks[0].valid, 16);
    }

    #[test]
    fn output_stream_produce() {
        let (mut su, mut mem, mut tr) = unit();
        su.start(
            VReg::new(2),
            Dir::Store,
            ElemWidth::Word,
            0x2000,
            8,
            1,
            true,
            &mut tr,
        )
        .unwrap();
        let v = VecVal::from_ints(64, ElemWidth::Word, &[9, 8, 7, 6, 5]);
        su.produce(VReg::new(2), &mut mem, &v, &mut tr).unwrap();
        assert_eq!(mem.read_u32(0x2000), 9);
        assert_eq!(mem.read_u32(0x2010), 5);
        // 3 more elements remain.
        assert!(!su.get(VReg::new(2)).unwrap().at_end());
        let v2 = VecVal::from_ints(64, ElemWidth::Word, &[1, 2, 3]);
        su.produce(VReg::new(2), &mut mem, &v2, &mut tr).unwrap();
        assert!(su.get(VReg::new(2)).unwrap().at_end());
    }

    #[test]
    fn direction_enforced() {
        let (mut su, mut mem, mut tr) = unit();
        su.start(
            VReg::new(0),
            Dir::Load,
            ElemWidth::Word,
            0,
            4,
            1,
            true,
            &mut tr,
        )
        .unwrap();
        su.start(
            VReg::new(1),
            Dir::Store,
            ElemWidth::Word,
            0,
            4,
            1,
            true,
            &mut tr,
        )
        .unwrap();
        let v = VecVal::from_ints(64, ElemWidth::Word, &[1]);
        assert!(matches!(
            su.produce(VReg::new(0), &mut mem, &v, &mut tr),
            Err(StreamError::WrongDirection(0))
        ));
        assert!(matches!(
            su.consume(VReg::new(1), &mem, 64, &mut tr),
            Err(StreamError::WrongDirection(1))
        ));
    }

    #[test]
    fn multi_dim_chunks_stop_at_rows() {
        let (mut su, mut mem, mut tr) = unit();
        setup_array(&mut mem, 0, 100);
        // 5 rows of 6 elements in a row-major 5×10 matrix.
        su.start(
            VReg::new(0),
            Dir::Load,
            ElemWidth::Word,
            0,
            6,
            1,
            false,
            &mut tr,
        )
        .unwrap();
        su.append_dim(VReg::new(0), 0, 5, 10, true, &mut tr)
            .unwrap();
        let c = su.consume(VReg::new(0), &mem, 64, &mut tr).unwrap();
        assert_eq!(c.value.valid_count(), 6); // row boundary < VL
        let s = su.get(VReg::new(0)).unwrap();
        assert!(s.flags().ends_dim(0));
        assert!(!s.flags().ends_stream());
        let c2 = su.consume(VReg::new(0), &mem, 64, &mut tr).unwrap();
        assert_eq!(c2.value.int(0), 10); // second row starts at element 10
    }

    #[test]
    fn static_modifier_triangular() {
        let (mut su, mut mem, mut tr) = unit();
        setup_array(&mut mem, 0, 100);
        // Lower-triangular over a 4×4 matrix: row i has i+1 elements.
        su.start(
            VReg::new(0),
            Dir::Load,
            ElemWidth::Word,
            0,
            0,
            1,
            false,
            &mut tr,
        )
        .unwrap();
        su.append_dim(VReg::new(0), 0, 4, 4, false, &mut tr)
            .unwrap();
        su.append_static_mod(
            VReg::new(0),
            Param::Size,
            Behaviour::Add,
            1,
            4,
            true,
            &mut tr,
        )
        .unwrap();
        let mut total = 0;
        while !su.get(VReg::new(0)).unwrap().at_end() {
            let c = su.consume(VReg::new(0), &mem, 64, &mut tr).unwrap();
            total += c.value.valid_count();
        }
        assert_eq!(total, 10); // 1+2+3+4
    }

    #[test]
    fn indirect_stream_via_origin() {
        let (mut su, mut mem, mut tr) = unit();
        // Index table A at 0x100: [3, 0, 2].
        mem.write_i32_slice(0x100, &[3, 0, 2]);
        // Data B at 0x200: [10, 11, 12, 13].
        mem.write_i32_slice(0x200, &[10, 11, 12, 13]);
        // Origin stream on u1 over A.
        su.start(
            VReg::new(1),
            Dir::Load,
            ElemWidth::Word,
            0x100,
            3,
            1,
            true,
            &mut tr,
        )
        .unwrap();
        // Indirect stream on u0: B[A[i]].
        su.start(
            VReg::new(0),
            Dir::Load,
            ElemWidth::Word,
            0x200,
            1,
            0,
            false,
            &mut tr,
        )
        .unwrap();
        su.append_indirect_mod(
            VReg::new(0),
            Param::Offset,
            IndirectBehaviour::SetAdd,
            VReg::new(1),
            true,
            &mem,
            &mut tr,
        )
        .unwrap();
        let mut vals = Vec::new();
        while !su.get(VReg::new(0)).unwrap().at_end() {
            let c = su.consume(VReg::new(0), &mem, 64, &mut tr).unwrap();
            for i in 0..c.value.valid_count() {
                vals.push(c.value.int(i));
            }
        }
        assert_eq!(vals, vec![13, 10, 12]);
        // Origin lines recorded in the indirect stream's chunks.
        let inst = su.get(VReg::new(0)).unwrap().instance as usize;
        assert!(tr.streams[inst]
            .chunks
            .iter()
            .any(|c| c.lines.contains(&(0x100 / 64))));
    }

    #[test]
    fn suspend_resume_stop() {
        let (mut su, mut mem, mut tr) = unit();
        setup_array(&mut mem, 0, 8);
        su.start(
            VReg::new(0),
            Dir::Load,
            ElemWidth::Word,
            0,
            8,
            1,
            true,
            &mut tr,
        )
        .unwrap();
        su.suspend(VReg::new(0)).unwrap();
        assert!(matches!(
            su.consume(VReg::new(0), &mem, 64, &mut tr),
            Err(StreamError::Suspended(0))
        ));
        su.resume(VReg::new(0)).unwrap();
        assert!(su.consume(VReg::new(0), &mem, 64, &mut tr).is_ok());
        let inst = su.stop(VReg::new(0)).unwrap();
        assert_eq!(inst, 0);
        assert!(su.get(VReg::new(0)).is_none());
        assert_eq!(su.active_count(), 0);
    }

    #[test]
    fn reconfiguration_creates_new_instance() {
        let (mut su, _mem, mut tr) = unit();
        su.start(
            VReg::new(0),
            Dir::Load,
            ElemWidth::Word,
            0,
            4,
            1,
            true,
            &mut tr,
        )
        .unwrap();
        su.start(
            VReg::new(0),
            Dir::Load,
            ElemWidth::Word,
            0x40,
            4,
            1,
            true,
            &mut tr,
        )
        .unwrap();
        assert_eq!(tr.streams.len(), 2);
        assert_eq!(su.get(VReg::new(0)).unwrap().instance, 1);
    }

    #[test]
    fn context_save_restore() {
        let (mut su, mut mem, mut tr) = unit();
        setup_array(&mut mem, 0, 32);
        su.start(
            VReg::new(0),
            Dir::Load,
            ElemWidth::Word,
            0,
            32,
            1,
            true,
            &mut tr,
        )
        .unwrap();
        su.consume(VReg::new(0), &mem, 64, &mut tr).unwrap();
        let saved = su.save_context();
        assert_eq!(saved.len(), 1);
        assert_eq!(saved[0].1.size_bytes(), 32); // 1-D state = 32 B
                                                 // Consume more, then roll back.
        su.consume(VReg::new(0), &mem, 64, &mut tr).unwrap();
        su.restore_context(&saved, &mem);
        let c = su.consume(VReg::new(0), &mem, 64, &mut tr).unwrap();
        assert_eq!(c.value.int(0), 16); // resumed after the first chunk
    }

    #[test]
    fn level_configuration_sticks() {
        let (mut su, _mem, mut tr) = unit();
        su.set_level(VReg::new(3), MemLevel::Mem);
        su.start(
            VReg::new(3),
            Dir::Load,
            ElemWidth::Word,
            0,
            4,
            1,
            true,
            &mut tr,
        )
        .unwrap();
        assert_eq!(su.get(VReg::new(3)).unwrap().level, MemLevel::Mem);
        assert_eq!(tr.streams[0].level, MemLevel::Mem);
    }

    #[test]
    fn consume_fault_is_precise_and_retryable() {
        let (mut su, mut mem, mut tr) = unit();
        setup_array(&mut mem, 0x1000, 32);
        su.start(
            VReg::new(0),
            Dir::Load,
            ElemWidth::Word,
            0x1000,
            32,
            1,
            true,
            &mut tr,
        )
        .unwrap();
        let c0 = su.consume(VReg::new(0), &mem, 64, &mut tr).unwrap();
        assert_eq!(c0.value.int(0), 0);
        let flags_before = su.branch_flags(VReg::new(0)).unwrap();
        // The second chunk traps: no chunk emitted, walker rolled back.
        let mut probe = |_p: u64| true;
        let err = su
            .consume_with(VReg::new(0), &mem, 64, &mut tr, Some(&mut probe))
            .unwrap_err();
        assert!(matches!(err, StreamError::PageFault { u: 0, page: 1 }));
        assert_eq!(tr.streams[0].chunks.len(), 1, "no chunk on fault");
        assert_eq!(su.branch_flags(VReg::new(0)).unwrap(), flags_before);
        // After the handler maps the page, the retry resumes precisely.
        let c1 = su.consume(VReg::new(0), &mem, 64, &mut tr).unwrap();
        assert_eq!(c1.value.int(0), 16);
        assert_eq!(c1.chunk, 1);
    }

    #[test]
    fn produce_fault_rolls_back_walker_and_replay_is_idempotent() {
        let (mut su, mut mem, mut tr) = unit();
        // 8 words starting 8 bytes before a page boundary: elements 0–1 on
        // page 1, elements 2–7 on page 2.
        su.start(
            VReg::new(2),
            Dir::Store,
            ElemWidth::Word,
            0x1ff8,
            8,
            1,
            true,
            &mut tr,
        )
        .unwrap();
        let v = VecVal::from_ints(64, ElemWidth::Word, &[10, 11, 12, 13, 14, 15, 16, 17]);
        let mut probe = |p: u64| p == 2;
        let err = su
            .produce_with(VReg::new(2), &mut mem, &v, &mut tr, Some(&mut probe))
            .unwrap_err();
        assert!(matches!(err, StreamError::PageFault { u: 2, page: 2 }));
        assert_eq!(tr.streams[0].chunks.len(), 0, "no chunk on fault");
        assert_eq!(mem.read_u32(0x1ff8), 10, "pre-fault stores persist");
        // Replay after handling rewrites the prefix (idempotent) and
        // finishes the chunk — bit-identical to a fault-free run.
        su.produce(VReg::new(2), &mut mem, &v, &mut tr).unwrap();
        assert_eq!(mem.read_u32(0x1ff8), 10);
        assert_eq!(mem.read_u32(0x2000), 12);
        assert_eq!(mem.read_u32(0x2014), 17);
        assert!(su.get(VReg::new(2)).unwrap().at_end());
    }

    #[test]
    fn missing_config_errors() {
        let (mut su, mem, mut tr) = unit();
        assert!(matches!(
            su.consume(VReg::new(5), &mem, 64, &mut tr),
            Err(StreamError::NotConfigured(5))
        ));
        assert!(matches!(
            su.append_dim(VReg::new(5), 0, 1, 1, false, &mut tr),
            Err(StreamError::NoPendingConfig(5))
        ));
        assert!(matches!(
            su.stop(VReg::new(5)),
            Err(StreamError::NotConfigured(5))
        ));
    }
}
