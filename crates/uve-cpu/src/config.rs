//! CPU timing-model configuration (Table I of the paper, based on public
//! ARM Cortex-A76 information).

use uve_core::engine::EngineConfig;
use uve_isa::ExecClass;
use uve_mem::MemConfig;

/// Out-of-order core configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuConfig {
    /// Instructions fetched per cycle (4-wide).
    pub fetch_width: usize,
    /// µOps committed per cycle (4-wide).
    pub commit_width: usize,
    /// µOps issued per cycle across all clusters (8-wide).
    pub issue_width: usize,
    /// Decode queue capacity between fetch and rename.
    pub decode_queue: usize,
    /// Reorder buffer entries (128).
    pub rob_entries: usize,
    /// Aggregate issue-queue entries (80).
    pub iq_entries: usize,
    /// Load queue entries (32).
    pub lq_entries: usize,
    /// Store queue entries (48).
    pub sq_entries: usize,
    /// Integer physical registers (128).
    pub int_prf: usize,
    /// Floating-point physical registers (192).
    pub fp_prf: usize,
    /// Vector physical registers (48 × 512-bit) — the Fig. 9 knob.
    pub vec_prf: usize,
    /// Predicate physical registers.
    pub pred_prf: usize,
    /// Integer ALUs (2, with a 24-entry scheduler).
    pub int_units: usize,
    /// Integer-vector/FP functional units (2, 24-entry scheduler).
    pub fpvec_units: usize,
    /// Load ports (2, shared 24-entry memory scheduler).
    pub load_ports: usize,
    /// Store ports (1).
    pub store_ports: usize,
    /// Scheduler entries per cluster (24).
    pub cluster_entries: usize,
    /// Front-end refill penalty after a branch mispredict, in cycles.
    pub mispredict_penalty: u64,
    /// Bimodal predictor table size (entries).
    pub predictor_entries: usize,
    /// Streaming Engine configuration (UVE only).
    pub engine: EngineConfig,
    /// Memory hierarchy configuration.
    pub mem: MemConfig,
    /// Hard cycle cap (runaway guard).
    pub max_cycles: u64,
    /// No-retire watchdog: if this many consecutive cycles pass without a
    /// commit, the model aborts with a diagnostic dump of the
    /// cycle-accounting tables instead of spinning to `max_cycles`.
    pub watchdog_cycles: u64,
    /// Commit-stage cost of one precise stream-fault trap (pipeline flush
    /// + handler + context restore), charged per recovered fault.
    pub fault_trap_penalty: u64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self {
            fetch_width: 4,
            commit_width: 4,
            issue_width: 8,
            decode_queue: 16,
            rob_entries: 128,
            iq_entries: 80,
            lq_entries: 32,
            sq_entries: 48,
            int_prf: 128,
            fp_prf: 192,
            vec_prf: 48,
            pred_prf: 32,
            int_units: 2,
            fpvec_units: 2,
            load_ports: 2,
            store_ports: 1,
            cluster_entries: 24,
            mispredict_penalty: 11,
            predictor_entries: 4096,
            engine: EngineConfig::default(),
            mem: MemConfig::default(),
            max_cycles: 2_000_000_000,
            watchdog_cycles: 1_000_000,
            fault_trap_penalty: 400,
        }
    }
}

impl CpuConfig {
    /// Execution latency of a resource class, in cycles (A76-flavoured).
    ///
    /// `Load`/`Store` latencies come from the memory model instead; the
    /// value here is the minimum pipeline occupancy.
    pub fn latency(&self, class: ExecClass) -> u64 {
        match class {
            ExecClass::IntAlu | ExecClass::Simple => 1,
            ExecClass::IntMul => 3,
            ExecClass::IntDiv => 12,
            ExecClass::FpAdd => 2,
            ExecClass::FpMul => 3,
            ExecClass::FpMac => 4,
            ExecClass::FpDiv => 11,
            ExecClass::VecInt => 2,
            ExecClass::Load => 1,
            ExecClass::Store => 1,
            ExecClass::Branch => 1,
            ExecClass::StreamCfg | ExecClass::StreamCtl => 1,
        }
    }

    /// Free physical registers per class after mapping the architectural
    /// state.
    pub fn free_regs(&self) -> [usize; 4] {
        [
            self.int_prf.saturating_sub(32).max(1),
            self.fp_prf.saturating_sub(32).max(1),
            self.vec_prf.saturating_sub(32).max(1),
            self.pred_prf.saturating_sub(16).max(1),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_i() {
        let c = CpuConfig::default();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.issue_width, 8);
        assert_eq!(c.rob_entries, 128);
        assert_eq!(c.lq_entries, 32);
        assert_eq!(c.sq_entries, 48);
        assert_eq!(c.vec_prf, 48);
        assert_eq!(c.engine.processing_modules, 2);
        assert_eq!(c.engine.fifo_depth, 8);
    }

    #[test]
    fn free_regs_subtract_architectural() {
        let c = CpuConfig::default();
        assert_eq!(c.free_regs(), [96, 160, 16, 16]);
    }

    #[test]
    fn latencies_sane() {
        let c = CpuConfig::default();
        assert!(c.latency(ExecClass::FpDiv) > c.latency(ExecClass::FpAdd));
        assert_eq!(c.latency(ExecClass::IntAlu), 1);
    }
}
