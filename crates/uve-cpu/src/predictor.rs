//! Branch prediction: a bimodal (2-bit saturating counter) direction
//! predictor. Targets are provided by an idealized BTB (the trace knows
//! them), so only direction mispredicts cost cycles.

/// A table of 2-bit saturating counters indexed by PC.
#[derive(Debug, Clone)]
pub struct Bimodal {
    counters: Vec<u8>,
    predictions: u64,
    mispredicts: u64,
}

impl Bimodal {
    /// Creates a predictor with `entries` counters (rounded up to a power
    /// of two), initialized to weakly taken.
    pub fn new(entries: usize) -> Self {
        Self {
            counters: vec![2; entries.next_power_of_two().max(2)],
            predictions: 0,
            mispredicts: 0,
        }
    }

    /// Predicts the direction of the branch at `pc`, trains on the actual
    /// outcome, and returns whether the prediction was correct.
    pub fn predict_and_train(&mut self, pc: u32, taken: bool) -> bool {
        let idx = (pc as usize) & (self.counters.len() - 1);
        let c = &mut self.counters[idx];
        let predicted = *c >= 2;
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.predictions += 1;
        let correct = predicted == taken;
        if !correct {
            self.mispredicts += 1;
        }
        correct
    }

    /// Total predictions made.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Total mispredictions.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Misprediction rate in [0, 1].
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_steady_loop() {
        let mut p = Bimodal::new(16);
        // Loop branch: taken 99 times then not taken.
        let mut wrong = 0;
        for i in 0..100 {
            let taken = i != 99;
            if !p.predict_and_train(4, taken) {
                wrong += 1;
            }
        }
        assert!(wrong <= 2, "bimodal should only miss the exit: {wrong}");
    }

    #[test]
    fn alternating_pattern_hurts() {
        let mut p = Bimodal::new(16);
        for i in 0..100 {
            p.predict_and_train(8, i % 2 == 0);
        }
        assert!(p.mispredict_rate() > 0.3);
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let mut p = Bimodal::new(16);
        for _ in 0..10 {
            p.predict_and_train(1, true);
            p.predict_and_train(2, false);
        }
        assert!(p.predict_and_train(1, true));
        assert!(p.predict_and_train(2, false));
    }
}
