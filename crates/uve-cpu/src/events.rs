//! Per-cycle event capture for single-run visualization.
//!
//! [`OoOCore::run_traced`](crate::OoOCore::run_traced) records, on top of
//! the aggregate statistics, the pipeline span of every committed
//! instruction, the load-to-use span of every stream chunk, and a
//! change-compressed timeline of per-stream FIFO occupancy. `uve-bench`
//! renders an [`EventLog`] as Chrome trace-event JSON (`--bin trace`).

use uve_isa::{Dir, ExecClass};

/// Pipeline span of one committed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpSpan {
    /// Index in the trace's committed-op order.
    pub idx: u32,
    /// Static instruction address.
    pub pc: u32,
    /// Execution class (selects the scheduler cluster).
    pub exec: ExecClass,
    /// Cycle the op was renamed into the backend.
    pub rename: u64,
    /// Cycle the op issued to its functional unit.
    pub issue: u64,
    /// Cycle the op's result became available.
    pub done: u64,
    /// Cycle the op committed.
    pub commit: u64,
}

/// One change-point in a stream register's FIFO occupancy timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoPoint {
    /// Cycle of the change.
    pub cycle: u64,
    /// Architectural stream register.
    pub u: u8,
    /// New occupancy in chunks (0 when the stream closes).
    pub occupancy: u32,
}

/// Lifetime of one stream chunk at the FIFO interface: from the cycle its
/// data (loads) or slot (stores) was ready to the cycle the consuming /
/// producing instruction committed — the load-to-use window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSpan {
    /// Architectural stream register.
    pub u: u8,
    /// Chunk index within the stream.
    pub chunk: u32,
    /// Load (data arrived) or store (slot reserved).
    pub dir: Dir,
    /// Cycle the chunk became ready in the FIFO.
    pub ready: u64,
    /// Cycle the chunk was committed (FIFO entry freed).
    pub commit: u64,
}

/// Everything [`run_traced`](crate::OoOCore::run_traced) captured from one
/// run.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    /// Total cycles of the run.
    pub cycles: u64,
    /// One span per committed instruction, in commit order.
    pub ops: Vec<OpSpan>,
    /// FIFO occupancy change-points, in cycle order.
    pub fifo: Vec<FifoPoint>,
    /// Stream chunk load-to-use spans, in commit order.
    pub chunks: Vec<ChunkSpan>,
}
