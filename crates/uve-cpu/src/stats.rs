//! Timing statistics reported by the out-of-order model — the quantities
//! the paper's figures are built from.

use crate::predictor::Bimodal;
use uve_core::engine::{EngineSim, EngineStats};
use uve_mem::{MemStats, MemSystem};

/// Why rename stalled in a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenameBlockReason {
    /// Reorder buffer full.
    Rob,
    /// Issue queue / scheduler cluster full.
    Iq,
    /// Load or store queue full.
    Lsq,
    /// No free physical register.
    Prf,
    /// Streaming Engine store FIFO slot not yet reserved.
    StoreFifo,
}

/// Per-reason rename-stall counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RenameBlockReasons {
    /// Cycles blocked on the ROB.
    pub rob: u64,
    /// Cycles blocked on issue queues.
    pub iq: u64,
    /// Cycles blocked on load/store queues.
    pub lsq: u64,
    /// Cycles blocked on physical registers.
    pub prf: u64,
    /// Cycles blocked on store-FIFO reservation.
    pub store_fifo: u64,
}

impl RenameBlockReasons {
    pub(crate) fn bump(&mut self, r: RenameBlockReason) {
        match r {
            RenameBlockReason::Rob => self.rob += 1,
            RenameBlockReason::Iq => self.iq += 1,
            RenameBlockReason::Lsq => self.lsq += 1,
            RenameBlockReason::Prf => self.prf += 1,
            RenameBlockReason::StoreFifo => self.store_fifo += 1,
        }
    }
}

/// Results of one timing simulation.
#[derive(Debug, Clone, Default)]
pub struct TimingStats {
    /// Total cycles to commit the trace.
    pub cycles: u64,
    /// Committed instructions.
    pub committed: u64,
    /// Cycles the rename stage was blocked (Fig. 8.C numerator).
    pub rename_blocked_cycles: u64,
    /// Rename-stall breakdown.
    pub rename_block_reasons: RenameBlockReasons,
    /// Dynamic branches fetched.
    pub branches: u64,
    /// Mispredicted branches.
    pub branch_mispredicts: u64,
    /// Memory hierarchy statistics.
    pub mem: MemStats,
    /// Streaming Engine statistics.
    pub engine: EngineStats,
    /// DRAM bus utilization `(read+write)/peak` over the run (Fig. 8.D).
    pub bus_utilization: f64,
}

impl TimingStats {
    pub(crate) fn empty() -> Self {
        Self::default()
    }

    pub(crate) fn finalize(&mut self, mem: &MemSystem, engine: &EngineSim, _pred: &Bimodal) {
        self.mem = mem.stats();
        self.engine = engine.stats();
        self.bus_utilization = mem.bus_utilization(self.cycles);
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Average rename blocks per cycle (Fig. 8.C metric).
    pub fn rename_blocks_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.rename_blocked_cycles as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut s = TimingStats::empty();
        s.cycles = 100;
        s.committed = 250;
        s.rename_blocked_cycles = 25;
        s.branches = 10;
        s.branch_mispredicts = 1;
        assert_eq!(s.ipc(), 2.5);
        assert_eq!(s.rename_blocks_per_cycle(), 0.25);
        assert_eq!(s.mispredict_rate(), 0.1);
    }

    #[test]
    fn zero_cycle_metrics_are_zero() {
        let s = TimingStats::empty();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.rename_blocks_per_cycle(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
    }

    #[test]
    fn reason_bumps() {
        let mut r = RenameBlockReasons::default();
        r.bump(RenameBlockReason::Prf);
        r.bump(RenameBlockReason::Prf);
        r.bump(RenameBlockReason::StoreFifo);
        assert_eq!(r.prf, 2);
        assert_eq!(r.store_fifo, 1);
        assert_eq!(r.rob, 0);
    }
}
