//! Timing statistics reported by the out-of-order model — the quantities
//! the paper's figures are built from.

use crate::predictor::Bimodal;
use uve_core::engine::{EngineSim, EngineStats};
use uve_mem::{MemPort, MemStats};

/// Why rename stalled in a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenameBlockReason {
    /// Reorder buffer full.
    Rob,
    /// Issue queue / scheduler cluster full.
    Iq,
    /// Load or store queue full.
    Lsq,
    /// No free physical register.
    Prf,
    /// Streaming Engine store FIFO slot not yet reserved.
    StoreFifo,
}

/// Per-reason rename-stall counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RenameBlockReasons {
    /// Cycles blocked on the ROB.
    pub rob: u64,
    /// Cycles blocked on issue queues.
    pub iq: u64,
    /// Cycles blocked on load/store queues.
    pub lsq: u64,
    /// Cycles blocked on physical registers.
    pub prf: u64,
    /// Cycles blocked on store-FIFO reservation.
    pub store_fifo: u64,
}

impl RenameBlockReasons {
    pub(crate) fn bump(&mut self, r: RenameBlockReason) {
        match r {
            RenameBlockReason::Rob => self.rob += 1,
            RenameBlockReason::Iq => self.iq += 1,
            RenameBlockReason::Lsq => self.lsq += 1,
            RenameBlockReason::Prf => self.prf += 1,
            RenameBlockReason::StoreFifo => self.store_fifo += 1,
        }
    }
}

/// Top-down cycle accounting: every core cycle is attributed to exactly
/// one category, so the fields always sum to [`TimingStats::cycles`]
/// (the conservation law checked by `tests/cycle_accounting.rs`).
///
/// The attribution cascade runs once per cycle, oldest-first:
/// 1. any instruction committed → `retiring`;
/// 2. the ROB head is an issued load still waiting on memory →
///    `mshr_wait` / `snoop_wait` / `dram_wait` / `cache_wait` (from the
///    load's recorded [`ReadOutcome`](uve_mem::ReadOutcome));
/// 3. the ROB head cannot issue because a stream chunk is not in its FIFO
///    → `fault_replay` if that stream is retrying an injected fault,
///    `fifo_empty` otherwise (also attributed per stream register);
/// 4. rename produced nothing because a resource is full → `rob_full` /
///    `iq_full` / `lsq_full` / `prf_starved` / `fifo_full`;
/// 5. the ROB head is otherwise executing or waiting on registers →
///    `fault_replay` if it is serving a precise stream-fault trap, else
///    `execute` / `depend`;
/// 6. the ROB is empty → `branch_redirect` while refetching after a
///    mispredict, `frontend` otherwise.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleAccount {
    /// At least one instruction committed.
    pub retiring: u64,
    /// ROB head waiting for a free MSHR slot.
    pub mshr_wait: u64,
    /// ROB head waiting on a DRAM-serviced load.
    pub dram_wait: u64,
    /// ROB head waiting on a cache-serviced load (L1/L2 latency).
    pub cache_wait: u64,
    /// ROB head waiting on a load served by a remote core's cache over the
    /// snoop bus (owner forwarding / coherence traffic). Always zero on a
    /// single-core run.
    pub snoop_wait: u64,
    /// ROB head waiting for a stream chunk that is not yet in its FIFO.
    pub fifo_empty: u64,
    /// ROB head waiting on a stream that is retrying an injected fault
    /// (transient/poison backoff), or serving a precise stream-fault trap.
    pub fault_replay: u64,
    /// Rename blocked: reorder buffer full.
    pub rob_full: u64,
    /// Rename blocked: issue queues full.
    pub iq_full: u64,
    /// Rename blocked: load/store queue full.
    pub lsq_full: u64,
    /// Rename blocked: no free physical register.
    pub prf_starved: u64,
    /// Rename blocked: store-stream FIFO slot not yet reserved.
    pub fifo_full: u64,
    /// ROB head issued and executing (non-load latency).
    pub execute: u64,
    /// ROB head waiting on register operands or issue ports.
    pub depend: u64,
    /// ROB empty while the front end refetches after a mispredict.
    pub branch_redirect: u64,
    /// ROB empty, front end filling (startup, taken-branch bubbles).
    pub frontend: u64,
    /// `fifo_empty` broken down by architectural stream register.
    pub fifo_empty_by_u: [u64; 32],
    /// `fifo_full` broken down by architectural stream register.
    pub fifo_full_by_u: [u64; 32],
}

impl CycleAccount {
    /// Category names, in [`CycleAccount::values`] order.
    pub const CATEGORIES: [&'static str; 16] = [
        "retiring",
        "mshr",
        "dram",
        "cache",
        "snoop",
        "fifo-empty",
        "fault-replay",
        "rob-full",
        "iq-full",
        "lsq-full",
        "prf",
        "fifo-full",
        "execute",
        "depend",
        "redirect",
        "frontend",
    ];

    /// Category counters, in [`CycleAccount::CATEGORIES`] order.
    pub fn values(&self) -> [u64; 16] {
        [
            self.retiring,
            self.mshr_wait,
            self.dram_wait,
            self.cache_wait,
            self.snoop_wait,
            self.fifo_empty,
            self.fault_replay,
            self.rob_full,
            self.iq_full,
            self.lsq_full,
            self.prf_starved,
            self.fifo_full,
            self.execute,
            self.depend,
            self.branch_redirect,
            self.frontend,
        ]
    }

    /// Sum over all categories — equals the run's cycle count.
    pub fn total(&self) -> u64 {
        self.values().iter().sum()
    }

    /// Verifies the conservation laws against a run of `cycles` cycles.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated law.
    pub fn check(&self, cycles: u64) -> Result<(), String> {
        if self.total() != cycles {
            return Err(format!(
                "cycle accounting leak: categories sum to {} but the run took {cycles} cycles",
                self.total()
            ));
        }
        let by_u: u64 = self.fifo_empty_by_u.iter().sum();
        if by_u != self.fifo_empty {
            return Err(format!(
                "fifo-empty per-stream sum {by_u} != total {}",
                self.fifo_empty
            ));
        }
        let by_u: u64 = self.fifo_full_by_u.iter().sum();
        if by_u != self.fifo_full {
            return Err(format!(
                "fifo-full per-stream sum {by_u} != total {}",
                self.fifo_full
            ));
        }
        Ok(())
    }
}

/// Results of one timing simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimingStats {
    /// Total cycles to commit the trace.
    pub cycles: u64,
    /// Committed instructions.
    pub committed: u64,
    /// Cycles the rename stage was blocked (Fig. 8.C numerator).
    pub rename_blocked_cycles: u64,
    /// Rename-stall breakdown.
    pub rename_block_reasons: RenameBlockReasons,
    /// Dynamic branches fetched.
    pub branches: u64,
    /// Mispredicted branches.
    pub branch_mispredicts: u64,
    /// Memory hierarchy statistics.
    pub mem: MemStats,
    /// Streaming Engine statistics.
    pub engine: EngineStats,
    /// DRAM bus utilization `(read+write)/peak` over the run (Fig. 8.D).
    pub bus_utilization: f64,
    /// Top-down attribution of every cycle to one stall category.
    pub account: CycleAccount,
}

impl TimingStats {
    pub(crate) fn empty() -> Self {
        Self::default()
    }

    pub(crate) fn finalize<M: MemPort>(&mut self, mem: &M, engine: &EngineSim, _pred: &Bimodal) {
        self.mem = mem.stats();
        self.engine = engine.stats();
        self.bus_utilization = mem.bus_utilization(self.cycles);
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Average rename blocks per cycle (Fig. 8.C metric).
    pub fn rename_blocks_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.rename_blocked_cycles as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut s = TimingStats::empty();
        s.cycles = 100;
        s.committed = 250;
        s.rename_blocked_cycles = 25;
        s.branches = 10;
        s.branch_mispredicts = 1;
        assert_eq!(s.ipc(), 2.5);
        assert_eq!(s.rename_blocks_per_cycle(), 0.25);
        assert_eq!(s.mispredict_rate(), 0.1);
    }

    #[test]
    fn zero_cycle_metrics_are_zero() {
        let s = TimingStats::empty();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.rename_blocks_per_cycle(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
    }

    #[test]
    fn account_conservation_check() {
        let mut a = CycleAccount {
            retiring: 60,
            dram_wait: 30,
            frontend: 10,
            ..CycleAccount::default()
        };
        assert_eq!(a.total(), 100);
        assert!(a.check(100).is_ok());
        assert!(a.check(99).is_err());
        a.fifo_empty = 5;
        assert!(a.check(105).is_err(), "per-u breakdown must match");
        a.fifo_empty_by_u[3] = 5;
        assert!(a.check(105).is_ok());
        assert_eq!(CycleAccount::CATEGORIES.len(), a.values().len());
    }

    #[test]
    fn reason_bumps() {
        let mut r = RenameBlockReasons::default();
        r.bump(RenameBlockReason::Prf);
        r.bump(RenameBlockReason::Prf);
        r.bump(RenameBlockReason::StoreFifo);
        assert_eq!(r.prf, 2);
        assert_eq!(r.store_fifo, 1);
        assert_eq!(r.rob, 0);
    }
}
