//! The cycle-driven out-of-order core timing model.
//!
//! The model replays a committed-path [`Trace`] through a Cortex-A76-like
//! pipeline (Table I): 4-wide fetch and commit, 8-wide issue across three
//! scheduler clusters (integer, FP/vector, memory), a 128-entry ROB,
//! 32/48-entry load/store queues, per-class physical register files, a
//! bimodal branch predictor with front-end refill penalties, the shared
//! memory hierarchy, and — for UVE code — the Streaming Engine.
//!
//! Being trace-driven, wrong-path instructions are not executed; their
//! dominant cost (front-end bubbles between a mispredicted branch's fetch
//! and its resolution plus the redirect penalty) is modelled, which is the
//! substitution documented in `DESIGN.md`.

use crate::config::CpuConfig;
use crate::events::{ChunkSpan, EventLog, FifoPoint, OpSpan};
use crate::predictor::Bimodal;
use crate::stats::{CycleAccount, RenameBlockReason, TimingStats};
use std::collections::{HashMap, VecDeque};
use uve_core::engine::{ChunkStatus, EngineSim};
use uve_core::{Trace, TraceOp};
use uve_isa::{Dir, ExecClass, RegClass, RegRef};
use uve_mem::{MemPort, MemSystem, Path, LINE_BYTES};

/// Scheduler cluster indices.
const CL_INT: usize = 0;
const CL_FPVEC: usize = 1;
const CL_MEM: usize = 2;

fn cluster_of(class: ExecClass) -> usize {
    match class {
        ExecClass::Load | ExecClass::Store => CL_MEM,
        ExecClass::FpAdd
        | ExecClass::FpMul
        | ExecClass::FpMac
        | ExecClass::FpDiv
        | ExecClass::VecInt => CL_FPVEC,
        _ => CL_INT,
    }
}

fn class_idx(c: RegClass) -> usize {
    match c {
        RegClass::Int => 0,
        RegClass::Fp => 1,
        RegClass::Vec => 2,
        RegClass::Pred => 3,
    }
}

const NOT_DONE: u64 = u64::MAX;

/// Renders the no-retire watchdog diagnostic: instead of spinning silently
/// to `max_cycles`, a deadlocked model dumps where commit is stuck and the
/// full cycle-accounting table so the stall is attributable post mortem.
#[allow(clippy::too_many_arguments)]
fn watchdog_report(
    watchdog_cycles: u64,
    now: u64,
    commit_ptr: usize,
    n: usize,
    rob_used: usize,
    account: &CycleAccount,
    head_op: &TraceOp,
    head_done: u64,
    engine: &EngineSim,
) -> String {
    use std::fmt::Write as _;
    let mut out =
        format!("no-retire watchdog: {watchdog_cycles} cycles without a commit at cycle {now}\n");
    let _ = writeln!(
        out,
        "  commit_ptr {commit_ptr}/{n}, rob_used {rob_used}, head pc={} exec={:?} done={}",
        head_op.pc,
        head_op.exec,
        if head_done == NOT_DONE {
            "never-issued".to_string()
        } else {
            head_done.to_string()
        },
    );
    if !head_op.stream_reads.is_empty() {
        let _ = writeln!(out, "  head stream_reads: {:?}", head_op.stream_reads);
    }
    let _ = writeln!(
        out,
        "  engine: {} open stream(s), occupancies {:?}",
        engine.open_streams(),
        engine.occupancies(),
    );
    let _ = writeln!(out, "  cycle accounting so far:");
    for (name, value) in CycleAccount::CATEGORIES.iter().zip(account.values()) {
        if value > 0 {
            let _ = writeln!(out, "    {name:<12} {value}");
        }
    }
    out
}

#[derive(Debug)]
struct IqEntry {
    idx: usize,
    deps: Vec<usize>,
}

/// The out-of-order core model.
#[derive(Debug, Clone)]
pub struct OoOCore {
    cfg: CpuConfig,
}

impl OoOCore {
    /// Creates a core with the given configuration.
    pub fn new(cfg: CpuConfig) -> Self {
        Self { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Simulates the trace to completion over a fresh (cold) memory
    /// hierarchy.
    pub fn run(&self, trace: &Trace) -> TimingStats {
        let mut mem = MemSystem::new(self.cfg.mem.clone());
        self.run_with(trace, &mut mem)
    }

    /// Simulates the trace twice over a fresh hierarchy and reports the
    /// second (warm) pass — the steady-state methodology used for the
    /// paper's figures.
    pub fn run_warm(&self, trace: &Trace) -> TimingStats {
        let mut mem = MemSystem::new(self.cfg.mem.clone());
        self.run_with(trace, &mut mem);
        mem.reset_stats();
        self.run_with(trace, &mut mem)
    }

    /// Simulates the trace once over a fresh (cold) hierarchy while
    /// capturing per-instruction pipeline spans, stream chunk load-to-use
    /// spans and FIFO occupancy timelines — the single-run visualization
    /// hook behind `uve-bench --bin trace`.
    pub fn run_traced(&self, trace: &Trace) -> (TimingStats, EventLog) {
        let mut mem = MemSystem::new(self.cfg.mem.clone());
        let mut log = EventLog::default();
        let stats = self.run_inner(trace, &mut mem, Some(&mut log));
        log.cycles = stats.cycles;
        (stats, log)
    }

    /// Simulates the trace to completion against an existing memory system
    /// and returns timing statistics.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds `max_cycles` (a model bug, not a
    /// user error).
    pub fn run_with(&self, trace: &Trace, mem: &mut MemSystem) -> TimingStats {
        self.run_inner(trace, mem, None)
    }

    fn run_inner(
        &self,
        trace: &Trace,
        mem: &mut MemSystem,
        mut events: Option<&mut EventLog>,
    ) -> TimingStats {
        if trace.ops.is_empty() {
            return TimingStats::empty();
        }
        let mut pipe = CorePipeline::new(self.cfg.clone(), trace, 0, events.is_some());
        while !pipe.finished() {
            pipe.step(trace, mem, events.as_deref_mut());
        }
        pipe.finish(mem)
    }
}

/// One core's pipeline state, steppable cycle by cycle.
///
/// [`OoOCore`] drives a single pipeline to completion over a
/// [`MemSystem`]; the multicore model steps N pipelines in lockstep, each
/// against its own port into the shared hierarchy. The per-cycle logic is
/// identical in both cases, so single-core runs are bit-identical to the
/// pre-refactor model.
#[derive(Debug)]
pub struct CorePipeline {
    cfg: CpuConfig,
    core_id: usize,
    n: usize,
    engine: EngineSim,
    predictor: Bimodal,
    done: Vec<u64>,
    // Front end.
    fetch_ptr: usize,
    decode_q: VecDeque<usize>,
    /// Fetch stalls until `done[idx] + penalty` after a mispredict.
    fetch_stalled_on: Option<usize>,
    /// Preemption support: a frozen front end fetches nothing, letting the
    /// in-flight window drain for a context switch.
    fetch_frozen: bool,
    // Rename / backend occupancy.
    commit_ptr: usize,
    rob_used: usize,
    lq_used: usize,
    sq_used: usize,
    free_regs: [usize; 4],
    iq: [Vec<IqEntry>; 3],
    last_writer: HashMap<RegRef, usize>,
    stats: TimingStats,
    now: u64,
    dbg: bool,
    dbg_rename: Vec<u64>,
    dbg_issue: Vec<u64>,
    /// Per-load issue outcome for stall attribution, in a ring indexed by
    /// op index modulo the ROB size: at most `rob_entries` ops are in
    /// flight, so slots are never reused before the head retires.
    /// `(issue cycle, MSHR wait, from DRAM, from a remote L1 over the bus)`.
    ring: usize,
    load_info: Vec<(u64, u64, bool, bool)>,
    // Event capture (only when a log was requested).
    track: bool,
    rename_at: Vec<u64>,
    issue_at: Vec<u64>,
    fifo_last: [u32; 32],
    /// No-retire watchdog: cycle of the most recent commit (or start).
    last_commit_cycle: u64,
}

impl CorePipeline {
    /// Creates a pipeline for `trace` on core `core_id`. `track` enables
    /// per-op span capture (pass the matching `events` log to every
    /// [`step`](Self::step)).
    pub fn new(cfg: CpuConfig, trace: &Trace, core_id: usize, track: bool) -> Self {
        let n = trace.ops.len();
        let engine = EngineSim::new(cfg.engine);
        let predictor = Bimodal::new(cfg.predictor_entries);
        static DBG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        let dbg = *DBG.get_or_init(|| std::env::var("UVE_CPU_TRACE").is_ok());
        let ring = cfg.rob_entries.max(1);
        let free_regs = cfg.free_regs();
        Self {
            cfg,
            core_id,
            n,
            engine,
            predictor,
            done: vec![NOT_DONE; n],
            fetch_ptr: 0,
            decode_q: VecDeque::new(),
            fetch_stalled_on: None,
            fetch_frozen: false,
            commit_ptr: 0,
            rob_used: 0,
            lq_used: 0,
            sq_used: 0,
            free_regs,
            iq: [Vec::new(), Vec::new(), Vec::new()],
            last_writer: HashMap::new(),
            stats: TimingStats::empty(),
            now: 0,
            dbg,
            dbg_rename: if dbg { vec![0; n] } else { Vec::new() },
            dbg_issue: if dbg { vec![0; n] } else { Vec::new() },
            ring,
            load_info: vec![(0, 0, false, false); ring],
            track,
            rename_at: if track { vec![0; n] } else { Vec::new() },
            issue_at: if track { vec![0; n] } else { Vec::new() },
            fifo_last: [0u32; 32],
            last_commit_cycle: 0,
        }
    }

    /// The core id this pipeline runs on.
    pub fn core_id(&self) -> usize {
        self.core_id
    }

    /// The current cycle (cycles stepped so far).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// True once every trace op has committed.
    pub fn finished(&self) -> bool {
        self.commit_ptr >= self.n
    }

    /// Instructions committed so far.
    pub fn committed(&self) -> u64 {
        self.stats.committed
    }

    /// The statistics accumulated so far (`cycles` is only stamped by
    /// [`finish`](Self::finish)).
    pub fn stats(&self) -> &TimingStats {
        &self.stats
    }

    /// Freezes or thaws the front end. A preempting scheduler freezes
    /// fetch, steps until [`drained`](Self::drained), and swaps pipelines.
    pub fn set_fetch_frozen(&mut self, frozen: bool) {
        self.fetch_frozen = frozen;
    }

    /// True when no instruction is in flight (ROB and decode queue empty) —
    /// the point where a context switch can take the core.
    pub fn drained(&self) -> bool {
        self.rob_used == 0 && self.decode_q.is_empty()
    }

    /// Charges `penalty` idle cycles for a context-switch restore (stream
    /// contexts reloaded, caches re-warmed by later misses). Attributed to
    /// the `frontend` category — the pipeline refills from scratch — so
    /// cycle-accounting conservation holds across preemptions.
    pub fn charge_restore_penalty(&mut self, penalty: u64) {
        self.now += penalty;
        self.stats.account.frontend += penalty;
    }

    /// Finishes the run: stamps the cycle count and pulls final statistics
    /// from the memory port.
    pub fn finish<M: MemPort>(mut self, mem: &M) -> TimingStats {
        self.stats.cycles = self.now;
        self.stats.finalize(mem, &self.engine, &self.predictor);
        self.stats
    }

    /// Advances the pipeline by one cycle against `mem`.
    ///
    /// # Panics
    ///
    /// Panics if the run exceeds `max_cycles` or the no-retire watchdog
    /// fires (model bugs, not user errors).
    #[allow(clippy::too_many_lines)]
    pub fn step<M: MemPort>(
        &mut self,
        trace: &Trace,
        mem: &mut M,
        mut events: Option<&mut EventLog>,
    ) {
        let now = self.now;
        assert!(
            now < self.cfg.max_cycles,
            "timing model exceeded {} cycles (commit_ptr={}/{})",
            self.cfg.max_cycles,
            self.commit_ptr,
            self.n
        );
        if now & 0xFFFF == 0 {
            uve_core::deadline::check("timing model");
        }
        if now.saturating_sub(self.last_commit_cycle) > self.cfg.watchdog_cycles {
            panic!(
                "{}",
                watchdog_report(
                    self.cfg.watchdog_cycles,
                    now,
                    self.commit_ptr,
                    self.n,
                    self.rob_used,
                    &self.stats.account,
                    &trace.ops[self.commit_ptr],
                    self.done[self.commit_ptr],
                    &self.engine,
                )
            );
        }

        // ---- commit (in order, commit_width per cycle) ----
        let mut committed = 0;
        while committed < self.cfg.commit_width && self.commit_ptr < self.n {
            let idx = self.commit_ptr;
            if self.done[idx] == NOT_DONE || self.done[idx] > now {
                break;
            }
            let op = &trace.ops[idx];
            if op.is_store {
                for &line in &op.mem_lines {
                    mem.write(line * LINE_BYTES, u64::from(op.pc), now, Path::Normal);
                }
            }
            for &(inst, chunk) in &op.stream_reads {
                if let Some(log) = events.as_deref_mut() {
                    if let ChunkStatus::Ready(ready) = self.engine.chunk_status(inst, chunk) {
                        log.chunks.push(ChunkSpan {
                            u: trace.streams[inst as usize].u,
                            chunk,
                            dir: Dir::Load,
                            ready,
                            commit: now,
                        });
                    }
                }
                self.engine.commit_read(inst, chunk);
            }
            for &(inst, chunk) in &op.stream_writes {
                if let Some(log) = events.as_deref_mut() {
                    if let ChunkStatus::Ready(ready) = self.engine.chunk_status(inst, chunk) {
                        log.chunks.push(ChunkSpan {
                            u: trace.streams[inst as usize].u,
                            chunk,
                            dir: Dir::Store,
                            ready,
                            commit: now,
                        });
                    }
                }
                self.engine
                    .commit_write(inst, chunk, now, &trace.streams, mem);
            }
            if let Some(inst) = op.stream_close {
                self.engine.close(inst);
            }
            for d in &op.dests {
                self.free_regs[class_idx(d.class)] += 1;
            }
            match op.exec {
                ExecClass::Load => self.lq_used -= 1,
                ExecClass::Store => self.sq_used -= 1,
                _ => {}
            }
            self.rob_used -= 1;
            if self.dbg
                && ((3000..3060).contains(&idx)
                    || (self.dbg_rename[idx] > 0 && now.saturating_sub(self.dbg_rename[idx]) > 200))
            {
                eprintln!(
                    "op{idx} pc={} {:?} rename={} issue={} done={} commit={now} sr={:?} sw={:?}",
                    op.pc,
                    op.exec,
                    self.dbg_rename[idx],
                    self.dbg_issue[idx],
                    self.done[idx],
                    op.stream_reads,
                    op.stream_writes
                );
            }
            if let Some(log) = events.as_deref_mut() {
                log.ops.push(OpSpan {
                    idx: idx as u32,
                    pc: op.pc,
                    exec: op.exec,
                    rename: self.rename_at[idx],
                    issue: self.issue_at[idx],
                    done: self.done[idx],
                    commit: now,
                });
            }
            self.commit_ptr += 1;
            committed += 1;
            self.stats.committed += 1;
        }
        if committed > 0 {
            self.last_commit_cycle = now;
        }

        // ---- issue (dataflow, bounded by ports and issue width) ----
        let mut issued_total = 0;
        let mut int_issued = 0;
        let mut fpvec_issued = 0;
        let mut loads_issued = 0;
        let mut stores_issued = 0;
        #[allow(clippy::needless_range_loop)] // `cl` selects ports too
        for cl in 0..3 {
            let mut i = 0;
            while i < self.iq[cl].len() {
                if issued_total >= self.cfg.issue_width {
                    break;
                }
                let ports_ok = match cl {
                    CL_INT => int_issued < self.cfg.int_units,
                    CL_FPVEC => fpvec_issued < self.cfg.fpvec_units,
                    _ => true,
                };
                if !ports_ok {
                    break;
                }
                let entry = &self.iq[cl][i];
                let idx = entry.idx;
                let op = &trace.ops[idx];
                // Per-port limits within the memory cluster.
                if cl == CL_MEM {
                    let is_store = op.exec == ExecClass::Store;
                    if is_store && stores_issued >= self.cfg.store_ports {
                        i += 1;
                        continue;
                    }
                    if !is_store && loads_issued >= self.cfg.load_ports {
                        i += 1;
                        continue;
                    }
                }
                // Register dependencies.
                let deps_ready = entry
                    .deps
                    .iter()
                    .all(|&d| self.done[d] != NOT_DONE && self.done[d] <= now);
                // Stream chunk dependencies (input FIFO readiness).
                let streams_ready = op.stream_reads.iter().all(|&(inst, chunk)| {
                    matches!(self.engine.chunk_status(inst, chunk),
                             ChunkStatus::Ready(r) if r <= now)
                });
                if !(deps_ready && streams_ready) {
                    i += 1;
                    continue;
                }
                // Issue it.
                let mut completion = match op.exec {
                    ExecClass::Load => {
                        if op.mem_lines.is_empty() {
                            now + 1
                        } else {
                            let mut ready = now;
                            let mut mshr_wait = 0;
                            let mut from_dram = false;
                            let mut from_snoop = false;
                            for &line in &op.mem_lines {
                                let r = mem.read_explained(
                                    line * LINE_BYTES,
                                    u64::from(op.pc),
                                    now,
                                    Path::Normal,
                                );
                                ready = ready.max(r.ready);
                                mshr_wait += r.mshr_wait;
                                from_dram |= r.from_dram;
                                from_snoop |= r.from_snoop;
                            }
                            self.load_info[idx % self.ring] =
                                (now, mshr_wait, from_dram, from_snoop);
                            ready
                        }
                    }
                    ExecClass::Store => now + 1,
                    class => now + self.cfg.latency(class),
                };
                // A precise stream-fault trap (recorded by the
                // functional emulator) costs a flush + handler +
                // restore round trip per fault.
                if op.stream_faults > 0 {
                    completion += self.cfg.fault_trap_penalty * u64::from(op.stream_faults);
                }
                self.done[idx] = completion;
                if self.track {
                    self.issue_at[idx] = now;
                }
                if self.dbg {
                    self.dbg_issue[idx] = now;
                }
                match cl {
                    CL_INT => int_issued += 1,
                    CL_FPVEC => fpvec_issued += 1,
                    _ => {
                        if op.exec == ExecClass::Store {
                            stores_issued += 1;
                        } else {
                            loads_issued += 1;
                        }
                    }
                }
                issued_total += 1;
                self.iq[cl].swap_remove(i);
                // Keep age order reasonably intact after swap_remove by
                // not advancing i (the swapped-in entry gets a chance).
            }
            // Restore age order for the next cycle.
            self.iq[cl].sort_unstable_by_key(|e| e.idx);
        }

        // ---- rename / dispatch (in order, fetch_width per cycle) ----
        let mut renamed = 0;
        // The reason rename made zero progress this cycle, if any (and,
        // for store-FIFO back-pressure, the stream register to blame).
        let mut cycle_block: Option<RenameBlockReason> = None;
        let mut cycle_block_u: u8 = 0;
        while renamed < self.cfg.fetch_width {
            let Some(&idx) = self.decode_q.front() else {
                break;
            };
            let op = &trace.ops[idx];
            // Resource checks.
            let mut block = None;
            if self.rob_used >= self.cfg.rob_entries {
                block = Some(RenameBlockReason::Rob);
            } else if self.iq.iter().map(Vec::len).sum::<usize>() >= self.cfg.iq_entries
                || self.iq[cluster_of(op.exec)].len() >= self.cfg.cluster_entries
            {
                block = Some(RenameBlockReason::Iq);
            } else if (op.exec == ExecClass::Load && self.lq_used >= self.cfg.lq_entries)
                || (op.exec == ExecClass::Store && self.sq_used >= self.cfg.sq_entries)
            {
                block = Some(RenameBlockReason::Lsq);
            } else if op
                .dests
                .iter()
                .any(|d| self.free_regs[class_idx(d.class)] == 0)
            {
                block = Some(RenameBlockReason::Prf);
            } else if op.stream_writes.iter().any(|&(inst, chunk)| {
                self.engine.chunk_status(inst, chunk) == ChunkStatus::NotFetched
            }) {
                // Store FIFO slot not yet reserved by the engine.
                block = Some(RenameBlockReason::StoreFifo);
            }
            if let Some(reason) = block {
                if renamed == 0 {
                    self.stats.rename_blocked_cycles += 1;
                    self.stats.rename_block_reasons.bump(reason);
                    cycle_block = Some(reason);
                    if reason == RenameBlockReason::StoreFifo {
                        cycle_block_u = op
                            .stream_writes
                            .iter()
                            .find(|&&(inst, chunk)| {
                                self.engine.chunk_status(inst, chunk) == ChunkStatus::NotFetched
                            })
                            .map_or(0, |&(inst, _)| trace.streams[inst as usize].u);
                    }
                }
                break;
            }
            self.decode_q.pop_front();
            self.rob_used += 1;
            match op.exec {
                ExecClass::Load => self.lq_used += 1,
                ExecClass::Store => self.sq_used += 1,
                _ => {}
            }
            for d in &op.dests {
                self.free_regs[class_idx(d.class)] -= 1;
            }
            // Stream configuration completes here (speculative config).
            if let Some(inst) = op.stream_open {
                self.engine.open(inst, &trace.streams[inst as usize], now);
            }
            // Dependencies on in-flight producers only.
            let deps: Vec<usize> = op
                .srcs
                .iter()
                .filter_map(|s| self.last_writer.get(s).copied())
                .filter(|&d| self.done[d] == NOT_DONE || self.done[d] > now)
                .collect();
            for d in &op.dests {
                self.last_writer.insert(*d, idx);
            }
            if self.track {
                self.rename_at[idx] = now;
            }
            if self.dbg {
                self.dbg_rename[idx] = now;
            }
            self.iq[cluster_of(op.exec)].push(IqEntry { idx, deps });
            renamed += 1;
        }

        // ---- fetch (in order, fetch_width per cycle) ----
        if let Some(b) = self.fetch_stalled_on {
            if self.done[b] != NOT_DONE && now >= self.done[b] + self.cfg.mispredict_penalty {
                self.fetch_stalled_on = None;
            }
        }
        if self.fetch_stalled_on.is_none() && !self.fetch_frozen {
            let mut fetched = 0;
            while fetched < self.cfg.fetch_width
                && self.decode_q.len() < self.cfg.decode_queue
                && self.fetch_ptr < self.n
            {
                let idx = self.fetch_ptr;
                let op = &trace.ops[idx];
                self.decode_q.push_back(idx);
                self.fetch_ptr += 1;
                fetched += 1;
                if let Some(b) = op.branch {
                    self.stats.branches += 1;
                    let correct = self.predictor.predict_and_train(op.pc, b.taken);
                    if !correct {
                        self.stats.branch_mispredicts += 1;
                        self.fetch_stalled_on = Some(idx);
                        break;
                    }
                    if b.taken {
                        // Taken-branch fetch bubble.
                        break;
                    }
                }
            }
        }

        // ---- streaming engine ----
        self.engine.tick(now, &trace.streams, mem);

        // ---- FIFO occupancy timeline (change-compressed) ----
        if let Some(log) = events {
            let mut cur = [0u32; 32];
            for (inst, occ) in self.engine.occupancies() {
                cur[usize::from(trace.streams[inst as usize].u) & 31] = occ as u32;
            }
            for (u, (&c, last)) in cur.iter().zip(self.fifo_last.iter_mut()).enumerate() {
                if c != *last {
                    log.fifo.push(FifoPoint {
                        cycle: now,
                        u: u as u8,
                        occupancy: c,
                    });
                    *last = c;
                }
            }
        }

        // ---- top-down cycle attribution ----
        // Exactly one category per cycle; see `CycleAccount` for the
        // cascade. `committed == 0` implies `commit_ptr` did not move,
        // so when the ROB is non-empty `trace.ops[commit_ptr]` is its
        // oldest (head) entry.
        let acct = &mut self.stats.account;
        if committed > 0 {
            acct.retiring += 1;
        } else {
            let head = self.commit_ptr;
            let head_op = &trace.ops[head];
            let head_issued = self.rob_used > 0 && self.done[head] != NOT_DONE;
            let head_waiting_mem = head_issued
                && self.done[head] > now
                && head_op.exec == ExecClass::Load
                && !head_op.mem_lines.is_empty();
            let head_stream_stall = if self.rob_used > 0 && self.done[head] == NOT_DONE {
                head_op
                    .stream_reads
                    .iter()
                    .find(|&&(inst, chunk)| {
                        !matches!(self.engine.chunk_status(inst, chunk),
                                  ChunkStatus::Ready(r) if r <= now)
                    })
                    .map(|&(inst, _)| (inst, trace.streams[inst as usize].u))
            } else {
                None
            };
            if head_waiting_mem {
                let (issue, mshr_wait, from_dram, from_snoop) = self.load_info[head % self.ring];
                if now < issue + mshr_wait {
                    acct.mshr_wait += 1;
                } else if from_snoop {
                    // Served cache-to-cache by a remote core over the snoop
                    // bus: a coherence stall, not a plain cache hit.
                    acct.snoop_wait += 1;
                } else if from_dram {
                    acct.dram_wait += 1;
                } else {
                    acct.cache_wait += 1;
                }
            } else if let Some((inst, u)) = head_stream_stall {
                if self.engine.in_fault_replay(inst, now) {
                    // The chunk is late because its stream is retrying
                    // an injected fault, not because the engine fell
                    // behind the consumer.
                    acct.fault_replay += 1;
                } else {
                    acct.fifo_empty += 1;
                    acct.fifo_empty_by_u[usize::from(u) & 31] += 1;
                }
            } else if let Some(reason) = cycle_block {
                match reason {
                    RenameBlockReason::Rob => acct.rob_full += 1,
                    RenameBlockReason::Iq => acct.iq_full += 1,
                    RenameBlockReason::Lsq => acct.lsq_full += 1,
                    RenameBlockReason::Prf => acct.prf_starved += 1,
                    RenameBlockReason::StoreFifo => {
                        acct.fifo_full += 1;
                        acct.fifo_full_by_u[usize::from(cycle_block_u) & 31] += 1;
                    }
                }
            } else if self.rob_used > 0 {
                if head_issued {
                    if head_op.stream_faults > 0 {
                        // The head's latency includes the precise
                        // stream-fault trap round trips it took in the
                        // functional run; attribute the wait to fault
                        // handling rather than plain execution.
                        acct.fault_replay += 1;
                    } else {
                        acct.execute += 1;
                    }
                } else {
                    acct.depend += 1;
                }
            } else if self.fetch_stalled_on.is_some() {
                acct.branch_redirect += 1;
            } else {
                acct.frontend += 1;
            }
        }

        self.now += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uve_core::{EmuConfig, Emulator};
    use uve_isa::assemble;
    use uve_mem::Memory;

    fn trace_of(text: &str, setup: impl FnOnce(&mut Emulator)) -> Trace {
        let prog = assemble("t", text).expect("test program must assemble");
        let mut emu = Emulator::new(EmuConfig::default(), Memory::new());
        setup(&mut emu);
        emu.run(&prog).expect("test program must run to halt").trace
    }

    #[test]
    fn empty_trace() {
        let s = OoOCore::new(CpuConfig::default()).run(&Trace::new());
        assert_eq!(s.cycles, 0);
    }

    #[test]
    fn straight_line_ipc_bounded_by_width() {
        // 400 independent ALU ops: IPC should approach the 2-ALU limit.
        let mut text = String::new();
        for i in 0..400 {
            text.push_str(&format!("addi x{}, x0, 1\n", 1 + (i % 8)));
        }
        text.push_str("halt\n");
        let t = trace_of(&text, |_| {});
        let s = OoOCore::new(CpuConfig::default()).run(&t);
        let ipc = s.committed as f64 / s.cycles as f64;
        assert!(ipc > 1.2 && ipc <= 2.2, "ipc={ipc}");
    }

    #[test]
    fn dependent_chain_serializes() {
        let mut text = String::new();
        for _ in 0..200 {
            text.push_str("addi x1, x1, 1\n");
        }
        text.push_str("halt\n");
        let t = trace_of(&text, |_| {});
        let s = OoOCore::new(CpuConfig::default()).run(&t);
        let ipc = s.committed as f64 / s.cycles as f64;
        assert!(ipc < 1.2, "dependent chain must not exceed 1 IPC: {ipc}");
    }

    #[test]
    fn loads_cost_memory_latency() {
        // A pointer-chase-like chain of dependent loads misses in all
        // caches initially.
        let mut text = String::from("li x1, 0x100000\n");
        for _ in 0..32 {
            text.push_str("ld.d x1, 0(x1)\n");
        }
        text.push_str("halt\n");
        let t = trace_of(&text, |emu| {
            // Each load lands on a different line; chain through memory.
            let mut addr = 0x100000u64;
            for i in 1..40u64 {
                let next = 0x100000 + i * 4096;
                emu.mem.write_u64(addr, next);
                addr = next;
            }
        });
        let cfg = CpuConfig::default();
        let s = OoOCore::new(cfg).run(&t);
        // 32 dependent DRAM-latency loads dominate.
        assert!(s.cycles > 32 * 90, "cycles={}", s.cycles);
    }

    #[test]
    fn mispredicts_cost_cycles() {
        // A data-dependent alternating branch pattern.
        let text = "
    li x1, 0
    li x2, 200
loop:
    addi x1, x1, 1
    andi x3, x1, 1
    beq x3, x0, skip
    addi x4, x4, 1
skip:
    bne x1, x2, loop
    halt
";
        // `andi` is not a mnemonic; use and with register: build differently
        let text = text.replace("andi x3, x1, 1", "addi x5, x0, 1\n    and x3, x1, x5");
        let t = trace_of(&text, |_| {});
        let s = OoOCore::new(CpuConfig::default()).run(&t);
        assert!(s.branch_mispredicts > 50, "{}", s.branch_mispredicts);
        // Each mispredict costs at least the redirect penalty in fetch
        // bubbles; the run must be visibly slower than 2 IPC.
        assert!(s.cycles > s.committed / 2);
    }

    #[test]
    fn cycle_account_partitions_every_run() {
        // Cold, warm, and a mispredict-heavy trace must all account for
        // exactly `cycles` cycles.
        let mut text = String::from("li x1, 0x100000\n");
        for _ in 0..16 {
            text.push_str("ld.d x1, 0(x1)\n");
        }
        text.push_str("halt\n");
        let chase = trace_of(&text, |emu| {
            let mut addr = 0x100000u64;
            for i in 1..20u64 {
                let next = 0x100000 + i * 4096;
                emu.mem.write_u64(addr, next);
                addr = next;
            }
        });
        let core = OoOCore::new(CpuConfig::default());
        for s in [core.run(&chase), core.run_warm(&chase)] {
            s.account
                .check(s.cycles)
                .expect("cycle accounting must conserve");
            // Dependent uncached loads: memory waits must dominate.
            assert!(
                s.account.dram_wait + s.account.cache_wait + s.account.mshr_wait > s.cycles / 4,
                "{:?}",
                s.account
            );
        }
    }

    #[test]
    fn traced_run_captures_spans_and_matches_cold_run() {
        let mut text = String::new();
        for i in 0..40 {
            text.push_str(&format!("addi x{}, x0, 1\n", 1 + (i % 8)));
        }
        text.push_str("halt\n");
        let t = trace_of(&text, |_| {});
        let core = OoOCore::new(CpuConfig::default());
        let (stats, log) = core.run_traced(&t);
        assert_eq!(stats, core.run(&t), "event capture must not perturb timing");
        assert_eq!(log.cycles, stats.cycles);
        assert_eq!(log.ops.len() as u64, stats.committed);
        for w in log.ops.windows(2) {
            assert!(w[0].commit <= w[1].commit, "commit order");
        }
        for op in &log.ops {
            assert!(op.rename <= op.issue && op.issue <= op.done && op.done <= op.commit);
        }
    }

    #[test]
    fn watchdog_dumps_accounting_on_deadlock() {
        use uve_core::{ChunkMeta, StreamTrace};
        use uve_isa::{ElemWidth, MemLevel};
        // One op consuming a chunk of a stream that is never opened: the
        // chunk stays NotFetched forever, so commit deadlocks and the
        // watchdog must fire with a diagnostic instead of spinning to
        // `max_cycles`.
        let mut t = Trace::new();
        let mut op = TraceOp::new(0, ExecClass::VecInt);
        op.stream_reads.push((0, 0));
        t.ops.push(op);
        t.streams.push(StreamTrace {
            u: 3,
            dir: Dir::Load,
            level: MemLevel::L2,
            width: ElemWidth::Word,
            chunks: vec![ChunkMeta {
                lines: vec![0x1000],
                dim_switches: 0,
                valid: 16,
            }],
            cfg_insts: 1,
        });
        let cfg = CpuConfig {
            watchdog_cycles: 500,
            ..CpuConfig::default()
        };
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| OoOCore::new(cfg).run(&t)))
                .expect_err("deadlocked model must panic");
        let msg = err
            .downcast_ref::<String>()
            .expect("watchdog panics with a String report");
        assert!(msg.contains("no-retire watchdog"), "{msg}");
        assert!(msg.contains("commit_ptr 0/1"), "{msg}");
        assert!(
            msg.contains("fifo-empty"),
            "report lists stall table: {msg}"
        );
    }

    #[test]
    fn injected_faults_slow_the_run_but_conserve_cycles() {
        use uve_mem::FaultConfig;
        let n = 16384usize;
        let setup = |emu: &mut Emulator| {
            let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
            emu.mem.write_f32_slice(0x100000, &x);
            emu.mem.write_f32_slice(0x200000, &x);
            emu.set_f(uve_isa::FReg::FA0, 2.0);
        };
        let t = trace_of(
            "
    li x10, 16384
    li x11, 0x100000
    li x12, 0x200000
    li x13, 1
    ss.ld.w u0, x11, x10, x13
    ss.ld.w u1, x12, x10, x13
    ss.st.w u2, x12, x10, x13
    so.v.dup.w.fp u3, f10
loop:
    so.a.mul.w.fp u4, u3, u0, p0
    so.a.add.w.fp u2, u4, u1, p0
    so.b.nend u0, loop
    halt
",
            setup,
        );
        let clean = OoOCore::new(CpuConfig::default()).run(&t);
        let mut cfg = CpuConfig::default();
        cfg.mem.fault = Some(FaultConfig::hostile(7));
        let faulty = OoOCore::new(cfg).run(&t);
        faulty
            .account
            .check(faulty.cycles)
            .expect("cycle accounting must conserve");
        assert_eq!(faulty.committed, clean.committed);
        let replays = faulty.engine.transient_retries + faulty.engine.poisoned_replays;
        assert!(replays > 0, "hostile rates must trigger retries");
        assert!(
            faulty.cycles > clean.cycles,
            "retry backoff must cost cycles: {} vs {}",
            faulty.cycles,
            clean.cycles
        );
        // And a second run with the same seed is bit-identical.
        let mut cfg2 = CpuConfig::default();
        cfg2.mem.fault = Some(FaultConfig::hostile(7));
        assert_eq!(OoOCore::new(cfg2).run(&t), faulty);
    }

    #[test]
    fn stream_fault_traps_charge_penalty_as_fault_replay() {
        let mut text = String::new();
        for i in 0..40 {
            text.push_str(&format!("addi x{}, x0, 1\n", 1 + (i % 8)));
        }
        text.push_str("halt\n");
        let t = trace_of(&text, |_| {});
        let clean = OoOCore::new(CpuConfig::default()).run(&t);
        let mut faulted = t.clone();
        faulted.ops[20].stream_faults = 2;
        let s = OoOCore::new(CpuConfig::default()).run(&faulted);
        s.account
            .check(s.cycles)
            .expect("cycle accounting must conserve");
        // Out-of-order overlap can hide a few cycles of the serial sum, so
        // bound from below with a small slack.
        let penalty = 2 * CpuConfig::default().fault_trap_penalty;
        assert!(
            s.cycles + 32 >= clean.cycles + penalty,
            "two traps must cost about {penalty}: {} vs {}",
            s.cycles,
            clean.cycles
        );
        assert!(
            s.account.fault_replay + 64 >= penalty,
            "trap service time lands in fault-replay: {:?}",
            s.account
        );
    }

    #[test]
    fn uve_stream_faster_than_sve_on_saxpy() {
        // DRAM-resident size: small warm sets are L1-resident, where
        // L1-hit baseline loads rival L2-level streaming (the Fig. 11
        // effect); the streaming win the paper reports is on working sets
        // beyond the L1.
        let n = 65536usize;
        let setup = |emu: &mut Emulator| {
            let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
            emu.mem.write_f32_slice(0x100000, &x);
            emu.mem.write_f32_slice(0x200000, &x);
            emu.set_f(uve_isa::FReg::FA0, 2.0);
        };
        let uve = trace_of(
            "
    li x10, 65536
    li x11, 0x100000
    li x12, 0x200000
    li x13, 1
    ss.ld.w u0, x11, x10, x13
    ss.ld.w u1, x12, x10, x13
    ss.st.w u2, x12, x10, x13
    so.v.dup.w.fp u3, f10
loop:
    so.a.mul.w.fp u4, u3, u0, p0
    so.a.add.w.fp u2, u4, u1, p0
    so.b.nend u0, loop
    halt
",
            setup,
        );
        let sve = trace_of(
            "
    li x10, 0
    li x11, 65536
    li x12, 0x100000
    li x13, 0x200000
    so.v.dup.w.fp u0, f10
    whilelt.w p1, x10, x11
loop:
    vl1.w u1, x12, x10, p1
    vl1.w u2, x13, x10, p1
    so.a.mul.w.fp u3, u0, u1, p1
    so.a.add.w.fp u4, u3, u2, p1
    vs1.w u4, x13, x10, p1
    incvl.w x10
    whilelt.w p1, x10, x11
    so.b.pfirst p1, loop
    halt
",
            setup,
        );
        let core = OoOCore::new(CpuConfig::default());
        let su = core.run(&uve);
        let ss = core.run(&sve);
        assert!(su.committed < ss.committed);
        assert!(
            su.cycles * 3 < ss.cycles * 2,
            "UVE ({}) should be well ahead of SVE ({})",
            su.cycles,
            ss.cycles
        );
        // Register pressure vanishes with streaming: UVE never blocks on
        // physical registers while SVE does (the Fig. 9 effect).
        assert!(su.rename_block_reasons.prf < ss.rename_block_reasons.prf);
        assert_eq!(su.rename_block_reasons.prf, 0);
        // And the streams drive the bus harder (Fig. 8.D shape).
        assert!(su.bus_utilization > ss.bus_utilization);
    }
}
