//! Cycle-level out-of-order CPU timing model for the UVE evaluation.
//!
//! Reproduces the simulation substrate of *"Unlimited Vector Extension with
//! Data Streaming Support"* (ISCA 2021): a Cortex-A76-like out-of-order
//! pipeline (Table I) extended with the Streaming Engine, replaying dynamic
//! traces produced by [`uve_core::Emulator`].
//!
//! # Example
//!
//! ```rust
//! use uve_core::{EmuConfig, Emulator};
//! use uve_cpu::{CpuConfig, OoOCore};
//! use uve_isa::assemble;
//! use uve_mem::Memory;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble("count", "
//!     li x1, 100
//! loop:
//!     addi x1, x1, -1
//!     bne x1, x0, loop
//!     halt
//! ")?;
//! let mut emu = Emulator::new(EmuConfig::default(), Memory::new());
//! let trace = emu.run(&program)?.trace;
//! let stats = OoOCore::new(CpuConfig::default()).run(&trace);
//! assert!(stats.cycles > 0);
//! println!("IPC = {:.2}", stats.ipc());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod config;
mod core;
mod events;
mod predictor;
mod stats;

pub use config::CpuConfig;
pub use core::{CorePipeline, OoOCore};
pub use events::{ChunkSpan, EventLog, FifoPoint, OpSpan};
pub use predictor::Bimodal;
pub use stats::{CycleAccount, RenameBlockReason, RenameBlockReasons, TimingStats};
