//! Structural tests of the out-of-order pipeline model: each resource limit
//! of Table I must be observable as back-pressure.

use uve_core::{EmuConfig, Emulator, Trace};
use uve_cpu::{CpuConfig, OoOCore};
use uve_isa::assemble;
use uve_mem::{MemConfig, Memory};

fn trace_of(text: &str, setup: impl FnOnce(&mut Emulator)) -> Trace {
    let prog = assemble("t", text).unwrap();
    let mut emu = Emulator::new(EmuConfig::default(), Memory::new());
    setup(&mut emu);
    emu.run(&prog).unwrap().trace
}

fn independent_alu_block(n: usize) -> String {
    let mut t = String::new();
    for i in 0..n {
        t.push_str(&format!("    addi x{}, x0, 1\n", 1 + (i % 8)));
    }
    t.push_str("    halt\n");
    t
}

#[test]
fn issue_width_caps_ipc() {
    let t = trace_of(&independent_alu_block(600), |_| {});
    // 2 integer ALUs: IPC can't exceed ~2 even with 8-wide issue.
    let s = OoOCore::new(CpuConfig::default()).run(&t);
    assert!(s.ipc() <= 2.2, "{}", s.ipc());
    // Doubling the ALUs lifts the ceiling (bounded by 4-wide fetch/commit).
    let s4 = OoOCore::new(CpuConfig {
        int_units: 4,
        ..CpuConfig::default()
    })
    .run(&t);
    assert!(s4.ipc() > s.ipc() * 1.3, "{} vs {}", s4.ipc(), s.ipc());
}

#[test]
fn rob_size_limits_latency_tolerance() {
    // Independent loads that all miss: a bigger ROB exposes more MLP.
    // Stride of 4096+64 bytes: distinct pages AND alternating DRAM
    // channels, so bandwidth never serializes the loads.
    let mut text = String::from("    li x1, 0x100000\n");
    for i in 0..64 {
        text.push_str(&format!("    li x9, {}\n", 0x100000 + i * 4160));
        text.push_str(&format!("    ld.w x{}, 0(x9)\n", 2 + (i % 7)));
    }
    text.push_str("    halt\n");
    let t = trace_of(&text, |_| {});
    // Disable prefetching and lift the MSHR caps so the ROB is the only
    // limit on memory-level parallelism.
    let no_pf = MemConfig {
        l1_prefetcher: false,
        l2_prefetcher: false,
        l1_mshrs: 64,
        l2_mshrs: 64,
        ..MemConfig::default()
    };
    let small = OoOCore::new(CpuConfig {
        rob_entries: 8,
        mem: no_pf.clone(),
        ..CpuConfig::default()
    })
    .run(&t);
    let large = OoOCore::new(CpuConfig {
        rob_entries: 128,
        mem: no_pf,
        ..CpuConfig::default()
    })
    .run(&t);
    assert!(
        large.cycles * 3 < small.cycles * 2,
        "large {} vs small {}",
        large.cycles,
        small.cycles
    );
}

#[test]
fn store_queue_backpressure() {
    let mut text = String::from("    li x1, 0x100000\n");
    for i in 0..200 {
        text.push_str(&format!("    st.w x1, {}(x1)\n", (i % 500) * 8));
    }
    text.push_str("    halt\n");
    let t = trace_of(&text, |_| {});
    let s = OoOCore::new(CpuConfig {
        sq_entries: 2,
        ..CpuConfig::default()
    })
    .run(&t);
    assert!(s.rename_block_reasons.lsq > 0);
}

#[test]
fn front_end_width_bounds_commit() {
    let t = trace_of(&independent_alu_block(400), |_| {});
    let s = OoOCore::new(CpuConfig {
        int_units: 8,
        fetch_width: 1,
        ..CpuConfig::default()
    })
    .run(&t);
    // 1-wide fetch: at most one instruction per cycle overall.
    assert!(s.ipc() <= 1.05, "{}", s.ipc());
}

#[test]
fn taken_branches_cost_fetch_bubbles() {
    // A chain of unconditional jumps: each taken redirect costs a bubble.
    let mut text = String::new();
    for i in 0..100 {
        text.push_str(&format!("    jal x0, l{i}\nl{i}:\n"));
    }
    text.push_str("    halt\n");
    let jumps = trace_of(&text, |_| {});
    let s = OoOCore::new(CpuConfig::default()).run(&jumps);
    // 100 jumps cannot retire at 4 IPC with one-per-cycle fetch redirects.
    assert!(s.cycles >= 100, "{}", s.cycles);
}

#[test]
fn stats_report_branch_profile() {
    let t = trace_of(
        "
    li x1, 50
loop:
    addi x1, x1, -1
    bne x1, x0, loop
    halt
",
        |_| {},
    );
    let s = OoOCore::new(CpuConfig::default()).run(&t);
    assert_eq!(s.branches, 50);
    assert!(s.branch_mispredicts <= 3);
    assert!(s.mispredict_rate() < 0.1);
}

#[test]
fn warm_and_cold_runs_share_functional_results() {
    let t = trace_of(
        "
    li x10, 256
    li x11, 0x100000
    li x12, 0x200000
    li x13, 1
    ss.ld.w u0, x11, x10, x13
    ss.st.w u1, x12, x10, x13
loop:
    so.v.mv u1, u0
    so.b.nend u0, loop
    halt
",
        |_| {},
    );
    let core = OoOCore::new(CpuConfig::default());
    let cold = core.run(&t);
    let warm = core.run_warm(&t);
    assert_eq!(cold.committed, warm.committed);
    assert!(warm.cycles <= cold.cycles);
}
