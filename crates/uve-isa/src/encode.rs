//! 32-bit binary instruction encoding.
//!
//! The paper reserves RISC-V opcode space for UVE but does not publish bit
//! layouts, so this crate defines its own dense little-endian field packing:
//! a 6-bit major opcode in the least-significant bits followed by
//! variant-specific fields. Branch targets are encoded PC-relative
//! (13 bits for conditional forms, 21 bits for `jal`), predicates in
//! data-processing instructions are limited to `p0`–`p7` (3 bits), matching
//! the paper's register-pressure design.
//!
//! [`encode`] and [`decode`] round-trip for every encodable instruction;
//! range violations are reported as typed errors rather than silently
//! truncated.

use crate::inst::*;
use crate::reg::{FReg, PReg, VReg, XReg};
use std::fmt;
use uve_stream::{Behaviour, ElemWidth, IndirectBehaviour, Param};

/// Error raised by [`encode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate exceeds its field width.
    ImmOutOfRange {
        /// Field width in bits (signed).
        bits: u32,
        /// Offending value.
        value: i64,
    },
    /// A branch target is out of PC-relative range.
    TargetOutOfRange {
        /// Offending displacement in instructions.
        rel: i64,
    },
    /// A data-processing predicate above `p7` cannot be encoded.
    PredOutOfRange {
        /// Offending predicate number.
        pred: u8,
    },
    /// A lane index exceeding 63 cannot be encoded.
    LaneOutOfRange {
        /// Offending lane.
        lane: u8,
    },
    /// A stream-branch dimension index exceeding 7 cannot be encoded
    /// (3-bit field; patterns have at most 8 dimensions).
    DimOutOfRange {
        /// Offending dimension index.
        dim: u8,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { bits, value } => {
                write!(f, "immediate {value} does not fit in {bits} signed bits")
            }
            EncodeError::TargetOutOfRange { rel } => {
                write!(f, "branch displacement {rel} out of range")
            }
            EncodeError::PredOutOfRange { pred } => {
                write!(
                    f,
                    "predicate p{pred} not encodable (data processing uses p0-p7)"
                )
            }
            EncodeError::LaneOutOfRange { lane } => write!(f, "lane {lane} not encodable"),
            EncodeError::DimOutOfRange { dim } => {
                write!(f, "stream-branch dimension {dim} not encodable (dim0-dim7)")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Error raised by [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The major opcode is not assigned.
    BadOpcode(u32),
    /// A register/enumeration field holds an invalid value.
    BadField {
        /// Major opcode of the word.
        opcode: u32,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "unassigned opcode {op}"),
            DecodeError::BadField { opcode } => write!(f, "invalid field in opcode {opcode}"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct W {
    word: u32,
    pos: u32,
}

impl W {
    fn new(opcode: u32) -> Self {
        debug_assert!(opcode < 64);
        Self {
            word: opcode,
            pos: 6,
        }
    }

    fn u(&mut self, v: u32, bits: u32) {
        debug_assert!(v < (1 << bits), "field overflow: {v} in {bits} bits");
        debug_assert!(self.pos + bits <= 32, "word overflow");
        self.word |= v << self.pos;
        self.pos += bits;
    }

    fn s(&mut self, v: i64, bits: u32) -> Result<(), EncodeError> {
        let min = -(1i64 << (bits - 1));
        let max = (1i64 << (bits - 1)) - 1;
        if v < min || v > max {
            return Err(EncodeError::ImmOutOfRange { bits, value: v });
        }
        self.u((v as u64 & ((1u64 << bits) - 1)) as u32, bits);
        Ok(())
    }
}

struct R {
    word: u32,
    pos: u32,
}

impl R {
    fn new(word: u32) -> (u32, Self) {
        (word & 0x3f, Self { word, pos: 6 })
    }

    fn u(&mut self, bits: u32) -> u32 {
        let v = (self.word >> self.pos) & ((1u32 << bits) - 1).max(u32::from(bits == 32));
        let v = if bits == 32 { self.word >> self.pos } else { v };
        self.pos += bits;
        v
    }

    fn s(&mut self, bits: u32) -> i64 {
        let raw = self.u(bits) as i64;
        let sign = 1i64 << (bits - 1);
        (raw ^ sign) - sign
    }
}

fn width_bits(w: ElemWidth) -> u32 {
    match w {
        ElemWidth::Byte => 0,
        ElemWidth::Half => 1,
        ElemWidth::Word => 2,
        ElemWidth::Double => 3,
    }
}

fn width_from(v: u32) -> ElemWidth {
    match v {
        0 => ElemWidth::Byte,
        1 => ElemWidth::Half,
        2 => ElemWidth::Word,
        _ => ElemWidth::Double,
    }
}

fn rel_target(target: u32, pc: u32, bits: u32) -> Result<i64, EncodeError> {
    let rel = i64::from(target) - i64::from(pc);
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if rel < min || rel > max {
        return Err(EncodeError::TargetOutOfRange { rel });
    }
    Ok(rel)
}

/// Resolves a decoded PC-relative displacement to an absolute target.
/// `None` when the displacement points before instruction 0 (a reserved
/// encoding: such words are rejected rather than wrapped to huge targets).
fn abs_target(rel: i64, pc: u32) -> Option<u32> {
    u32::try_from(i64::from(pc) + rel).ok()
}

fn pred3(p: PReg) -> Result<u32, EncodeError> {
    if p.num() >= 8 {
        return Err(EncodeError::PredOutOfRange { pred: p.num() });
    }
    Ok(u32::from(p.num()))
}

// Major opcodes.
const OP_ALU: u32 = 0;
const OP_ALUI: u32 = 1;
const OP_LUI: u32 = 2;
const OP_LD: u32 = 3;
const OP_ST: u32 = 4;
const OP_FLD: u32 = 5;
const OP_FST: u32 = 6;
const OP_FALU: u32 = 7;
const OP_FMAC: u32 = 8;
const OP_FUN: u32 = 9;
const OP_FMVXF: u32 = 10;
const OP_FMVFX: u32 = 11;
const OP_FCVTFX: u32 = 12;
const OP_FCVTXF: u32 = 13;
const OP_BRANCH: u32 = 14;
const OP_JAL: u32 = 15;
const OP_HALT: u32 = 16;
const OP_NOP: u32 = 17;
const OP_SS_START: u32 = 18;
const OP_SS_APP: u32 = 19;
const OP_SS_APP_MOD: u32 = 20;
const OP_SS_APP_IND: u32 = 21;
const OP_SS_CTL: u32 = 22;
const OP_SS_CFG_MEM: u32 = 23;
const OP_SS_BRANCH: u32 = 24;
const OP_SS_GETVL: u32 = 25;
const OP_VDUP: u32 = 26;
const OP_VMV: u32 = 27;
const OP_VUN: u32 = 28;
const OP_VARITH: u32 = 29;
const OP_VARITH_VS: u32 = 30;
const OP_VMAC: u32 = 31;
const OP_VRED: u32 = 32;
const OP_VCMP: u32 = 33;
const OP_PRED_ALU: u32 = 34;
const OP_BR_PRED: u32 = 35;
const OP_VEXTRACT_F: u32 = 36;
const OP_VEXTRACT_X: u32 = 37;
const OP_VLOAD: u32 = 38;
const OP_VSTORE: u32 = 39;
const OP_VGATHER: u32 = 40;
const OP_VSCATTER: u32 = 41;
const OP_WHILELT: u32 = 42;
const OP_INCVL: u32 = 43;
const OP_CNTVL: u32 = 44;
const OP_VLOAD_POST: u32 = 45;
const OP_VSTORE_POST: u32 = 46;
const OP_VMAC_VS: u32 = 47;
const OP_SS_SETVL: u32 = 48;
const OP_PRED_FROM_VALID: u32 = 49;

/// Encodes `inst` (located at instruction index `pc`) into a 32-bit word.
///
/// # Errors
///
/// Returns an error for out-of-range immediates, branch displacements, data
/// predicates above `p7`, or lanes above 63.
#[allow(clippy::too_many_lines)]
pub fn encode(inst: &Inst, pc: u32) -> Result<u32, EncodeError> {
    use Inst::*;
    let mut w;
    match *inst {
        Alu { op, rd, rs1, rs2 } => {
            w = W::new(OP_ALU);
            w.u(op as u32, 4);
            w.u(rd.num().into(), 5);
            w.u(rs1.num().into(), 5);
            w.u(rs2.num().into(), 5);
        }
        AluImm { op, rd, rs1, imm } => {
            w = W::new(OP_ALUI);
            w.u(op as u32, 4);
            w.u(rd.num().into(), 5);
            w.u(rs1.num().into(), 5);
            w.s(imm.into(), 12)?;
        }
        Lui { rd, imm } => {
            w = W::new(OP_LUI);
            w.u(rd.num().into(), 5);
            w.s(imm.into(), 20)?;
        }
        Ld {
            rd,
            base,
            off,
            width,
        } => {
            w = W::new(OP_LD);
            w.u(rd.num().into(), 5);
            w.u(base.num().into(), 5);
            w.s(off.into(), 12)?;
            w.u(width_bits(width), 2);
        }
        St {
            src,
            base,
            off,
            width,
        } => {
            w = W::new(OP_ST);
            w.u(src.num().into(), 5);
            w.u(base.num().into(), 5);
            w.s(off.into(), 12)?;
            w.u(width_bits(width), 2);
        }
        Fld {
            fd,
            base,
            off,
            width,
        } => {
            w = W::new(OP_FLD);
            w.u(fd.num().into(), 5);
            w.u(base.num().into(), 5);
            w.s(off.into(), 12)?;
            w.u(width_bits(width), 2);
        }
        Fst {
            src,
            base,
            off,
            width,
        } => {
            w = W::new(OP_FST);
            w.u(src.num().into(), 5);
            w.u(base.num().into(), 5);
            w.s(off.into(), 12)?;
            w.u(width_bits(width), 2);
        }
        FAlu {
            op,
            width,
            fd,
            fs1,
            fs2,
        } => {
            w = W::new(OP_FALU);
            w.u(op as u32, 3);
            w.u(width_bits(width), 2);
            w.u(fd.num().into(), 5);
            w.u(fs1.num().into(), 5);
            w.u(fs2.num().into(), 5);
        }
        FMac {
            width,
            fd,
            fs1,
            fs2,
            fs3,
        } => {
            w = W::new(OP_FMAC);
            w.u(width_bits(width), 2);
            w.u(fd.num().into(), 5);
            w.u(fs1.num().into(), 5);
            w.u(fs2.num().into(), 5);
            w.u(fs3.num().into(), 5);
        }
        FUn { op, width, fd, fs } => {
            w = W::new(OP_FUN);
            w.u(op as u32, 2);
            w.u(width_bits(width), 2);
            w.u(fd.num().into(), 5);
            w.u(fs.num().into(), 5);
        }
        FMvXF { rd, fs } => {
            w = W::new(OP_FMVXF);
            w.u(rd.num().into(), 5);
            w.u(fs.num().into(), 5);
        }
        FMvFX { fd, rs } => {
            w = W::new(OP_FMVFX);
            w.u(fd.num().into(), 5);
            w.u(rs.num().into(), 5);
        }
        FCvtFX { width, fd, rs } => {
            w = W::new(OP_FCVTFX);
            w.u(width_bits(width), 2);
            w.u(fd.num().into(), 5);
            w.u(rs.num().into(), 5);
        }
        FCvtXF { width, rd, fs } => {
            w = W::new(OP_FCVTXF);
            w.u(width_bits(width), 2);
            w.u(rd.num().into(), 5);
            w.u(fs.num().into(), 5);
        }
        Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            w = W::new(OP_BRANCH);
            w.u(cond as u32, 3);
            w.u(rs1.num().into(), 5);
            w.u(rs2.num().into(), 5);
            w.s(rel_target(target, pc, 13)?, 13)?;
        }
        Jal { rd, target } => {
            w = W::new(OP_JAL);
            w.u(rd.num().into(), 5);
            w.s(rel_target(target, pc, 21)?, 21)?;
        }
        Halt => w = W::new(OP_HALT),
        Nop => w = W::new(OP_NOP),
        SsStart {
            u,
            dir,
            width,
            base,
            size,
            stride,
            done,
        } => {
            w = W::new(OP_SS_START);
            w.u(u.num().into(), 5);
            w.u(matches!(dir, Dir::Store).into(), 1);
            w.u(width_bits(width), 2);
            w.u(base.num().into(), 5);
            w.u(size.num().into(), 5);
            w.u(stride.num().into(), 5);
            w.u(done.into(), 1);
        }
        SsApp {
            u,
            offset,
            size,
            stride,
            end,
        } => {
            w = W::new(OP_SS_APP);
            w.u(u.num().into(), 5);
            w.u(offset.num().into(), 5);
            w.u(size.num().into(), 5);
            w.u(stride.num().into(), 5);
            w.u(end.into(), 1);
        }
        SsAppMod {
            u,
            target,
            behaviour,
            disp,
            count,
            end,
        } => {
            w = W::new(OP_SS_APP_MOD);
            w.u(u.num().into(), 5);
            w.u(target as u32, 2);
            w.u(matches!(behaviour, Behaviour::Sub).into(), 1);
            w.u(disp.num().into(), 5);
            w.u(count.num().into(), 5);
            w.u(end.into(), 1);
        }
        SsAppInd {
            u,
            target,
            behaviour,
            origin,
            end,
        } => {
            w = W::new(OP_SS_APP_IND);
            w.u(u.num().into(), 5);
            w.u(target as u32, 2);
            w.u(behaviour as u32, 2);
            w.u(origin.num().into(), 5);
            w.u(end.into(), 1);
        }
        SsCtl { op, u } => {
            w = W::new(OP_SS_CTL);
            w.u(op as u32, 2);
            w.u(u.num().into(), 5);
        }
        SsCfgMem { u, level } => {
            w = W::new(OP_SS_CFG_MEM);
            w.u(u.num().into(), 5);
            w.u(level as u32, 2);
        }
        SsBranch { cond, u, target } => {
            w = W::new(OP_SS_BRANCH);
            let (kind, dim) = match cond {
                StreamCond::NotEnd => (0, 0),
                StreamCond::End => (1, 0),
                StreamCond::DimNotEnd(k) => (2, k),
                StreamCond::DimEnd(k) => (3, k),
            };
            if dim >= 8 {
                return Err(EncodeError::DimOutOfRange { dim });
            }
            w.u(kind, 2);
            w.u(dim.into(), 3);
            w.u(u.num().into(), 5);
            w.s(rel_target(target, pc, 13)?, 13)?;
        }
        SsGetVl { rd, width } => {
            w = W::new(OP_SS_GETVL);
            w.u(rd.num().into(), 5);
            w.u(width_bits(width), 2);
        }
        SsSetVl { rd, rs, width } => {
            w = W::new(OP_SS_SETVL);
            w.u(rd.num().into(), 5);
            w.u(rs.num().into(), 5);
            w.u(width_bits(width), 2);
        }
        PredFromValid { pd, vs } => {
            w = W::new(OP_PRED_FROM_VALID);
            w.u(pd.num().into(), 4);
            w.u(vs.num().into(), 5);
        }
        VDup { vd, src, width, ty } => {
            w = W::new(OP_VDUP);
            w.u(vd.num().into(), 5);
            let (is_f, r) = match src {
                DupSrc::X(r) => (0, r.num()),
                DupSrc::F(r) => (1, r.num()),
            };
            w.u(is_f, 1);
            w.u(r.into(), 5);
            w.u(width_bits(width), 2);
            w.u(matches!(ty, VType::Fp).into(), 1);
        }
        VMv { vd, vs } => {
            w = W::new(OP_VMV);
            w.u(vd.num().into(), 5);
            w.u(vs.num().into(), 5);
        }
        VUn {
            op,
            ty,
            width,
            vd,
            vs,
            pred,
        } => {
            w = W::new(OP_VUN);
            w.u(op as u32, 2);
            w.u(matches!(ty, VType::Fp).into(), 1);
            w.u(width_bits(width), 2);
            w.u(vd.num().into(), 5);
            w.u(vs.num().into(), 5);
            w.u(pred3(pred)?, 3);
        }
        VArith {
            op,
            ty,
            width,
            vd,
            vs1,
            vs2,
            pred,
        } => {
            w = W::new(OP_VARITH);
            w.u(op as u32, 4);
            w.u(matches!(ty, VType::Fp).into(), 1);
            w.u(width_bits(width), 2);
            w.u(vd.num().into(), 5);
            w.u(vs1.num().into(), 5);
            w.u(vs2.num().into(), 5);
            w.u(pred3(pred)?, 3);
        }
        VArithVS {
            op,
            ty,
            width,
            vd,
            vs1,
            scalar,
            pred,
        } => {
            w = W::new(OP_VARITH_VS);
            w.u(op as u32, 4);
            w.u(matches!(ty, VType::Fp).into(), 1);
            w.u(width_bits(width), 2);
            w.u(vd.num().into(), 5);
            w.u(vs1.num().into(), 5);
            let (is_f, r) = match scalar {
                DupSrc::X(r) => (0, r.num()),
                DupSrc::F(r) => (1, r.num()),
            };
            w.u(is_f, 1);
            w.u(r.into(), 5);
            w.u(pred3(pred)?, 3);
        }
        VMacVS {
            ty,
            width,
            vd,
            vs1,
            scalar,
            pred,
        } => {
            w = W::new(OP_VMAC_VS);
            w.u(matches!(ty, VType::Fp).into(), 1);
            w.u(width_bits(width), 2);
            w.u(vd.num().into(), 5);
            w.u(vs1.num().into(), 5);
            let (is_f, r) = match scalar {
                DupSrc::X(r) => (0, r.num()),
                DupSrc::F(r) => (1, r.num()),
            };
            w.u(is_f, 1);
            w.u(r.into(), 5);
            w.u(pred3(pred)?, 3);
        }
        VMac {
            ty,
            width,
            vd,
            vs1,
            vs2,
            pred,
        } => {
            w = W::new(OP_VMAC);
            w.u(matches!(ty, VType::Fp).into(), 1);
            w.u(width_bits(width), 2);
            w.u(vd.num().into(), 5);
            w.u(vs1.num().into(), 5);
            w.u(vs2.num().into(), 5);
            w.u(pred3(pred)?, 3);
        }
        VRed {
            op,
            ty,
            width,
            vd,
            vs,
            pred,
        } => {
            w = W::new(OP_VRED);
            w.u(op as u32, 2);
            w.u(matches!(ty, VType::Fp).into(), 1);
            w.u(width_bits(width), 2);
            w.u(vd.num().into(), 5);
            w.u(vs.num().into(), 5);
            w.u(pred3(pred)?, 3);
        }
        VCmp {
            op,
            ty,
            width,
            pd,
            vs1,
            vs2,
        } => {
            w = W::new(OP_VCMP);
            w.u(op as u32, 3);
            w.u(matches!(ty, VType::Fp).into(), 1);
            w.u(width_bits(width), 2);
            w.u(pd.num().into(), 4);
            w.u(vs1.num().into(), 5);
            w.u(vs2.num().into(), 5);
        }
        PredAlu { op, pd, ps1, ps2 } => {
            w = W::new(OP_PRED_ALU);
            w.u(op as u32, 2);
            w.u(pd.num().into(), 4);
            w.u(ps1.num().into(), 4);
            w.u(ps2.num().into(), 4);
        }
        BrPred { cond, p, target } => {
            w = W::new(OP_BR_PRED);
            w.u(cond as u32, 2);
            w.u(p.num().into(), 4);
            w.s(rel_target(target, pc, 13)?, 13)?;
        }
        VExtractF {
            fd,
            vs,
            lane,
            width,
        } => {
            if lane >= 64 {
                return Err(EncodeError::LaneOutOfRange { lane });
            }
            w = W::new(OP_VEXTRACT_F);
            w.u(fd.num().into(), 5);
            w.u(vs.num().into(), 5);
            w.u(lane.into(), 6);
            w.u(width_bits(width), 2);
        }
        VExtractX {
            rd,
            vs,
            lane,
            width,
        } => {
            if lane >= 64 {
                return Err(EncodeError::LaneOutOfRange { lane });
            }
            w = W::new(OP_VEXTRACT_X);
            w.u(rd.num().into(), 5);
            w.u(vs.num().into(), 5);
            w.u(lane.into(), 6);
            w.u(width_bits(width), 2);
        }
        VLoad {
            vd,
            base,
            index,
            width,
            pred,
        } => {
            w = W::new(OP_VLOAD);
            w.u(vd.num().into(), 5);
            w.u(base.num().into(), 5);
            w.u(index.num().into(), 5);
            w.u(width_bits(width), 2);
            w.u(pred3(pred)?, 3);
        }
        VStore {
            vs,
            base,
            index,
            width,
            pred,
        } => {
            w = W::new(OP_VSTORE);
            w.u(vs.num().into(), 5);
            w.u(base.num().into(), 5);
            w.u(index.num().into(), 5);
            w.u(width_bits(width), 2);
            w.u(pred3(pred)?, 3);
        }
        VGather {
            vd,
            base,
            idx,
            width,
            pred,
        } => {
            w = W::new(OP_VGATHER);
            w.u(vd.num().into(), 5);
            w.u(base.num().into(), 5);
            w.u(idx.num().into(), 5);
            w.u(width_bits(width), 2);
            w.u(pred3(pred)?, 3);
        }
        VScatter {
            vs,
            base,
            idx,
            width,
            pred,
        } => {
            w = W::new(OP_VSCATTER);
            w.u(vs.num().into(), 5);
            w.u(base.num().into(), 5);
            w.u(idx.num().into(), 5);
            w.u(width_bits(width), 2);
            w.u(pred3(pred)?, 3);
        }
        WhileLt {
            pd,
            rs1,
            rs2,
            width,
        } => {
            w = W::new(OP_WHILELT);
            w.u(pd.num().into(), 4);
            w.u(rs1.num().into(), 5);
            w.u(rs2.num().into(), 5);
            w.u(width_bits(width), 2);
        }
        IncVl { rd, width } => {
            w = W::new(OP_INCVL);
            w.u(rd.num().into(), 5);
            w.u(width_bits(width), 2);
        }
        CntVl { rd, width } => {
            w = W::new(OP_CNTVL);
            w.u(rd.num().into(), 5);
            w.u(width_bits(width), 2);
        }
        VLoadPost {
            vd,
            base,
            width,
            pred,
        } => {
            w = W::new(OP_VLOAD_POST);
            w.u(vd.num().into(), 5);
            w.u(base.num().into(), 5);
            w.u(width_bits(width), 2);
            w.u(pred3(pred)?, 3);
        }
        VStorePost {
            vs,
            base,
            width,
            pred,
        } => {
            w = W::new(OP_VSTORE_POST);
            w.u(vs.num().into(), 5);
            w.u(base.num().into(), 5);
            w.u(width_bits(width), 2);
            w.u(pred3(pred)?, 3);
        }
    }
    Ok(w.word)
}

fn alu_op(v: u32) -> AluOp {
    use AluOp::*;
    [
        Add, Sub, Mul, Mulh, Div, Rem, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu, Min, Max,
    ][v as usize]
}

fn vop(v: u32) -> Option<VOp> {
    use VOp::*;
    [Add, Sub, Mul, Div, Min, Max, And, Or, Xor, Shl, Shr]
        .get(v as usize)
        .copied()
}

/// Decodes a 32-bit word located at instruction index `pc`.
///
/// # Errors
///
/// Returns an error for unassigned opcodes or malformed fields.
#[allow(clippy::too_many_lines)]
pub fn decode(word: u32, pc: u32) -> Result<Inst, DecodeError> {
    let (opcode, mut r) = R::new(word);
    let bad = DecodeError::BadField { opcode };
    let x = |v: u32| XReg::try_new(v as u8).ok_or(bad);
    let f = |v: u32| FReg::try_new(v as u8).ok_or(bad);
    let v = |n: u32| VReg::try_new(n as u8).ok_or(bad);
    let p = |n: u32| PReg::try_new(n as u8).ok_or(bad);
    Ok(match opcode {
        OP_ALU => {
            let op = alu_op(r.u(4));
            Inst::Alu {
                op,
                rd: x(r.u(5))?,
                rs1: x(r.u(5))?,
                rs2: x(r.u(5))?,
            }
        }
        OP_ALUI => {
            let op = alu_op(r.u(4));
            Inst::AluImm {
                op,
                rd: x(r.u(5))?,
                rs1: x(r.u(5))?,
                imm: r.s(12) as i32,
            }
        }
        OP_LUI => Inst::Lui {
            rd: x(r.u(5))?,
            imm: r.s(20) as i32,
        },
        OP_LD => Inst::Ld {
            rd: x(r.u(5))?,
            base: x(r.u(5))?,
            off: r.s(12) as i32,
            width: width_from(r.u(2)),
        },
        OP_ST => Inst::St {
            src: x(r.u(5))?,
            base: x(r.u(5))?,
            off: r.s(12) as i32,
            width: width_from(r.u(2)),
        },
        OP_FLD => Inst::Fld {
            fd: f(r.u(5))?,
            base: x(r.u(5))?,
            off: r.s(12) as i32,
            width: width_from(r.u(2)),
        },
        OP_FST => Inst::Fst {
            src: f(r.u(5))?,
            base: x(r.u(5))?,
            off: r.s(12) as i32,
            width: width_from(r.u(2)),
        },
        OP_FALU => {
            let op = [
                FpOp::Add,
                FpOp::Sub,
                FpOp::Mul,
                FpOp::Div,
                FpOp::Min,
                FpOp::Max,
            ]
            .get(r.u(3) as usize)
            .copied()
            .ok_or(bad)?;
            Inst::FAlu {
                op,
                width: width_from(r.u(2)),
                fd: f(r.u(5))?,
                fs1: f(r.u(5))?,
                fs2: f(r.u(5))?,
            }
        }
        OP_FMAC => Inst::FMac {
            width: width_from(r.u(2)),
            fd: f(r.u(5))?,
            fs1: f(r.u(5))?,
            fs2: f(r.u(5))?,
            fs3: f(r.u(5))?,
        },
        OP_FUN => {
            let op = [FpUnOp::Sqrt, FpUnOp::Abs, FpUnOp::Neg, FpUnOp::Mv][r.u(2) as usize];
            Inst::FUn {
                op,
                width: width_from(r.u(2)),
                fd: f(r.u(5))?,
                fs: f(r.u(5))?,
            }
        }
        OP_FMVXF => Inst::FMvXF {
            rd: x(r.u(5))?,
            fs: f(r.u(5))?,
        },
        OP_FMVFX => Inst::FMvFX {
            fd: f(r.u(5))?,
            rs: x(r.u(5))?,
        },
        OP_FCVTFX => Inst::FCvtFX {
            width: width_from(r.u(2)),
            fd: f(r.u(5))?,
            rs: x(r.u(5))?,
        },
        OP_FCVTXF => Inst::FCvtXF {
            width: width_from(r.u(2)),
            rd: x(r.u(5))?,
            fs: f(r.u(5))?,
        },
        OP_BRANCH => {
            let cond = [
                BrCond::Eq,
                BrCond::Ne,
                BrCond::Lt,
                BrCond::Ge,
                BrCond::Ltu,
                BrCond::Geu,
            ]
            .get(r.u(3) as usize)
            .copied()
            .ok_or(bad)?;
            Inst::Branch {
                cond,
                rs1: x(r.u(5))?,
                rs2: x(r.u(5))?,
                target: abs_target(r.s(13), pc).ok_or(bad)?,
            }
        }
        OP_JAL => Inst::Jal {
            rd: x(r.u(5))?,
            target: abs_target(r.s(21), pc).ok_or(bad)?,
        },
        OP_HALT => Inst::Halt,
        OP_NOP => Inst::Nop,
        OP_SS_START => Inst::SsStart {
            u: v(r.u(5))?,
            dir: if r.u(1) == 1 { Dir::Store } else { Dir::Load },
            width: width_from(r.u(2)),
            base: x(r.u(5))?,
            size: x(r.u(5))?,
            stride: x(r.u(5))?,
            done: r.u(1) == 1,
        },
        OP_SS_APP => Inst::SsApp {
            u: v(r.u(5))?,
            offset: x(r.u(5))?,
            size: x(r.u(5))?,
            stride: x(r.u(5))?,
            end: r.u(1) == 1,
        },
        OP_SS_APP_MOD => Inst::SsAppMod {
            u: v(r.u(5))?,
            target: [Param::Offset, Param::Size, Param::Stride]
                .get(r.u(2) as usize)
                .copied()
                .ok_or(bad)?,
            behaviour: if r.u(1) == 1 {
                Behaviour::Sub
            } else {
                Behaviour::Add
            },
            disp: x(r.u(5))?,
            count: x(r.u(5))?,
            end: r.u(1) == 1,
        },
        OP_SS_APP_IND => Inst::SsAppInd {
            u: v(r.u(5))?,
            target: [Param::Offset, Param::Size, Param::Stride]
                .get(r.u(2) as usize)
                .copied()
                .ok_or(bad)?,
            behaviour: [
                IndirectBehaviour::SetAdd,
                IndirectBehaviour::SetSub,
                IndirectBehaviour::SetValue,
            ]
            .get(r.u(2) as usize)
            .copied()
            .ok_or(bad)?,
            origin: v(r.u(5))?,
            end: r.u(1) == 1,
        },
        OP_SS_CTL => Inst::SsCtl {
            op: [StreamCtl::Suspend, StreamCtl::Resume, StreamCtl::Stop]
                .get(r.u(2) as usize)
                .copied()
                .ok_or(bad)?,
            u: v(r.u(5))?,
        },
        OP_SS_CFG_MEM => Inst::SsCfgMem {
            u: v(r.u(5))?,
            level: [MemLevel::L1, MemLevel::L2, MemLevel::Mem]
                .get(r.u(2) as usize)
                .copied()
                .ok_or(bad)?,
        },
        OP_SS_BRANCH => {
            let kind = r.u(2);
            let dim = r.u(3) as u8;
            let cond = match kind {
                0 => StreamCond::NotEnd,
                1 => StreamCond::End,
                2 => StreamCond::DimNotEnd(dim),
                _ => StreamCond::DimEnd(dim),
            };
            Inst::SsBranch {
                cond,
                u: v(r.u(5))?,
                target: abs_target(r.s(13), pc).ok_or(bad)?,
            }
        }
        OP_SS_GETVL => Inst::SsGetVl {
            rd: x(r.u(5))?,
            width: width_from(r.u(2)),
        },
        OP_SS_SETVL => Inst::SsSetVl {
            rd: x(r.u(5))?,
            rs: x(r.u(5))?,
            width: width_from(r.u(2)),
        },
        OP_PRED_FROM_VALID => Inst::PredFromValid {
            pd: p(r.u(4))?,
            vs: v(r.u(5))?,
        },
        OP_VDUP => {
            let vd = v(r.u(5))?;
            let is_f = r.u(1) == 1;
            let reg = r.u(5);
            let src = if is_f {
                DupSrc::F(f(reg)?)
            } else {
                DupSrc::X(x(reg)?)
            };
            Inst::VDup {
                vd,
                src,
                width: width_from(r.u(2)),
                ty: if r.u(1) == 1 { VType::Fp } else { VType::Int },
            }
        }
        OP_VMV => Inst::VMv {
            vd: v(r.u(5))?,
            vs: v(r.u(5))?,
        },
        OP_VUN => {
            let op = [VUnOp::Abs, VUnOp::Neg, VUnOp::Sqrt, VUnOp::Mv][r.u(2) as usize];
            Inst::VUn {
                op,
                ty: if r.u(1) == 1 { VType::Fp } else { VType::Int },
                width: width_from(r.u(2)),
                vd: v(r.u(5))?,
                vs: v(r.u(5))?,
                pred: p(r.u(3))?,
            }
        }
        OP_VARITH => {
            let op = vop(r.u(4)).ok_or(bad)?;
            Inst::VArith {
                op,
                ty: if r.u(1) == 1 { VType::Fp } else { VType::Int },
                width: width_from(r.u(2)),
                vd: v(r.u(5))?,
                vs1: v(r.u(5))?,
                vs2: v(r.u(5))?,
                pred: p(r.u(3))?,
            }
        }
        OP_VARITH_VS => {
            let op = vop(r.u(4)).ok_or(bad)?;
            let ty = if r.u(1) == 1 { VType::Fp } else { VType::Int };
            let width = width_from(r.u(2));
            let vd = v(r.u(5))?;
            let vs1 = v(r.u(5))?;
            let is_f = r.u(1) == 1;
            let reg = r.u(5);
            let scalar = if is_f {
                DupSrc::F(f(reg)?)
            } else {
                DupSrc::X(x(reg)?)
            };
            Inst::VArithVS {
                op,
                ty,
                width,
                vd,
                vs1,
                scalar,
                pred: p(r.u(3))?,
            }
        }
        OP_VMAC => Inst::VMac {
            ty: if r.u(1) == 1 { VType::Fp } else { VType::Int },
            width: width_from(r.u(2)),
            vd: v(r.u(5))?,
            vs1: v(r.u(5))?,
            vs2: v(r.u(5))?,
            pred: p(r.u(3))?,
        },
        OP_VRED => {
            let op = [HorizOp::Add, HorizOp::Max, HorizOp::Min]
                .get(r.u(2) as usize)
                .copied()
                .ok_or(bad)?;
            Inst::VRed {
                op,
                ty: if r.u(1) == 1 { VType::Fp } else { VType::Int },
                width: width_from(r.u(2)),
                vd: v(r.u(5))?,
                vs: v(r.u(5))?,
                pred: p(r.u(3))?,
            }
        }
        OP_VCMP => {
            let op = [
                VCmpOp::Eq,
                VCmpOp::Ne,
                VCmpOp::Lt,
                VCmpOp::Le,
                VCmpOp::Gt,
                VCmpOp::Ge,
            ]
            .get(r.u(3) as usize)
            .copied()
            .ok_or(bad)?;
            Inst::VCmp {
                op,
                ty: if r.u(1) == 1 { VType::Fp } else { VType::Int },
                width: width_from(r.u(2)),
                pd: p(r.u(4))?,
                vs1: v(r.u(5))?,
                vs2: v(r.u(5))?,
            }
        }
        OP_PRED_ALU => Inst::PredAlu {
            op: [PredOp::Mov, PredOp::Not, PredOp::And, PredOp::Or][r.u(2) as usize],
            pd: p(r.u(4))?,
            ps1: p(r.u(4))?,
            ps2: p(r.u(4))?,
        },
        OP_BR_PRED => {
            let cond = [PredCond::First, PredCond::Any, PredCond::None]
                .get(r.u(2) as usize)
                .copied()
                .ok_or(bad)?;
            Inst::BrPred {
                cond,
                p: p(r.u(4))?,
                target: abs_target(r.s(13), pc).ok_or(bad)?,
            }
        }
        OP_VEXTRACT_F => Inst::VExtractF {
            fd: f(r.u(5))?,
            vs: v(r.u(5))?,
            lane: r.u(6) as u8,
            width: width_from(r.u(2)),
        },
        OP_VEXTRACT_X => Inst::VExtractX {
            rd: x(r.u(5))?,
            vs: v(r.u(5))?,
            lane: r.u(6) as u8,
            width: width_from(r.u(2)),
        },
        OP_VLOAD => Inst::VLoad {
            vd: v(r.u(5))?,
            base: x(r.u(5))?,
            index: x(r.u(5))?,
            width: width_from(r.u(2)),
            pred: p(r.u(3))?,
        },
        OP_VSTORE => Inst::VStore {
            vs: v(r.u(5))?,
            base: x(r.u(5))?,
            index: x(r.u(5))?,
            width: width_from(r.u(2)),
            pred: p(r.u(3))?,
        },
        OP_VGATHER => Inst::VGather {
            vd: v(r.u(5))?,
            base: x(r.u(5))?,
            idx: v(r.u(5))?,
            width: width_from(r.u(2)),
            pred: p(r.u(3))?,
        },
        OP_VSCATTER => Inst::VScatter {
            vs: v(r.u(5))?,
            base: x(r.u(5))?,
            idx: v(r.u(5))?,
            width: width_from(r.u(2)),
            pred: p(r.u(3))?,
        },
        OP_WHILELT => Inst::WhileLt {
            pd: p(r.u(4))?,
            rs1: x(r.u(5))?,
            rs2: x(r.u(5))?,
            width: width_from(r.u(2)),
        },
        OP_INCVL => Inst::IncVl {
            rd: x(r.u(5))?,
            width: width_from(r.u(2)),
        },
        OP_CNTVL => Inst::CntVl {
            rd: x(r.u(5))?,
            width: width_from(r.u(2)),
        },
        OP_VLOAD_POST => Inst::VLoadPost {
            vd: v(r.u(5))?,
            base: x(r.u(5))?,
            width: width_from(r.u(2)),
            pred: p(r.u(3))?,
        },
        OP_VMAC_VS => {
            let ty = if r.u(1) == 1 { VType::Fp } else { VType::Int };
            let width = width_from(r.u(2));
            let vd = v(r.u(5))?;
            let vs1 = v(r.u(5))?;
            let is_f = r.u(1) == 1;
            let reg = r.u(5);
            let scalar = if is_f {
                DupSrc::F(f(reg)?)
            } else {
                DupSrc::X(x(reg)?)
            };
            Inst::VMacVS {
                ty,
                width,
                vd,
                vs1,
                scalar,
                pred: p(r.u(3))?,
            }
        }
        OP_VSTORE_POST => Inst::VStorePost {
            vs: v(r.u(5))?,
            base: x(r.u(5))?,
            width: width_from(r.u(2)),
            pred: p(r.u(3))?,
        },
        other => return Err(DecodeError::BadOpcode(other)),
    })
}

/// Encodes a whole program into 32-bit words.
///
/// # Errors
///
/// Returns the first [`EncodeError`] with its instruction index.
pub fn encode_program(p: &crate::Program) -> Result<Vec<u32>, (u32, EncodeError)> {
    p.insts()
        .iter()
        .enumerate()
        .map(|(pc, i)| encode(i, pc as u32).map_err(|e| (pc as u32, e)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(i: Inst, pc: u32) {
        let w = encode(&i, pc).unwrap();
        let back = decode(w, pc).unwrap();
        assert_eq!(i, back, "word={w:#010x}");
    }

    #[test]
    fn roundtrip_scalar() {
        rt(
            Inst::Alu {
                op: AluOp::Max,
                rd: XReg::A0,
                rs1: XReg::T6,
                rs2: XReg::SP,
            },
            0,
        );
        rt(
            Inst::AluImm {
                op: AluOp::Add,
                rd: XReg::A0,
                rs1: XReg::ZERO,
                imm: -2048,
            },
            7,
        );
        rt(
            Inst::Lui {
                rd: XReg::A1,
                imm: -1,
            },
            0,
        );
        rt(
            Inst::Ld {
                rd: XReg::A3,
                base: XReg::SP,
                off: -4,
                width: ElemWidth::Half,
            },
            3,
        );
        rt(Inst::Halt, 9);
    }

    #[test]
    fn roundtrip_branches_relative() {
        rt(
            Inst::Branch {
                cond: BrCond::Ltu,
                rs1: XReg::A0,
                rs2: XReg::A1,
                target: 2,
            },
            100,
        );
        rt(
            Inst::Jal {
                rd: XReg::RA,
                target: 5000,
            },
            2,
        );
        rt(
            Inst::SsBranch {
                cond: StreamCond::DimEnd(5),
                u: VReg::new(31),
                target: 4,
            },
            10,
        );
        rt(
            Inst::BrPred {
                cond: PredCond::None,
                p: PReg::new(9),
                target: 0,
            },
            1,
        );
    }

    #[test]
    fn roundtrip_streams() {
        rt(
            Inst::SsStart {
                u: VReg::new(17),
                dir: Dir::Store,
                width: ElemWidth::Double,
                base: XReg::A1,
                size: XReg::A2,
                stride: XReg::A3,
                done: false,
            },
            0,
        );
        rt(
            Inst::SsAppMod {
                u: VReg::new(1),
                target: Param::Stride,
                behaviour: Behaviour::Sub,
                disp: XReg::T0,
                count: XReg::T1,
                end: true,
            },
            0,
        );
        rt(
            Inst::SsAppInd {
                u: VReg::new(2),
                target: Param::Offset,
                behaviour: IndirectBehaviour::SetValue,
                origin: VReg::new(3),
                end: false,
            },
            0,
        );
        rt(
            Inst::SsCtl {
                op: StreamCtl::Resume,
                u: VReg::new(30),
            },
            0,
        );
        rt(
            Inst::SsCfgMem {
                u: VReg::new(4),
                level: MemLevel::Mem,
            },
            0,
        );
    }

    #[test]
    fn roundtrip_vector() {
        rt(
            Inst::VArith {
                op: VOp::Shr,
                ty: VType::Int,
                width: ElemWidth::Byte,
                vd: VReg::new(31),
                vs1: VReg::new(30),
                vs2: VReg::new(29),
                pred: PReg::new(7),
            },
            0,
        );
        rt(
            Inst::VArithVS {
                op: VOp::Mul,
                ty: VType::Fp,
                width: ElemWidth::Word,
                vd: VReg::new(1),
                vs1: VReg::new(2),
                scalar: DupSrc::F(FReg::FA0),
                pred: PReg::P0,
            },
            0,
        );
        rt(
            Inst::VMacVS {
                ty: VType::Fp,
                width: ElemWidth::Word,
                vd: VReg::new(3),
                vs1: VReg::new(4),
                scalar: DupSrc::F(FReg::new(11)),
                pred: PReg::new(1),
            },
            0,
        );
        rt(
            Inst::VRed {
                op: HorizOp::Min,
                ty: VType::Fp,
                width: ElemWidth::Double,
                vd: VReg::new(5),
                vs: VReg::new(6),
                pred: PReg::new(2),
            },
            0,
        );
        rt(
            Inst::VExtractF {
                fd: FReg::new(31),
                vs: VReg::new(15),
                lane: 63,
                width: ElemWidth::Byte,
            },
            0,
        );
    }

    #[test]
    fn roundtrip_sve_like() {
        rt(
            Inst::VLoad {
                vd: VReg::new(9),
                base: XReg::A1,
                index: XReg::T3,
                width: ElemWidth::Word,
                pred: PReg::new(1),
            },
            0,
        );
        rt(
            Inst::VGather {
                vd: VReg::new(9),
                base: XReg::A1,
                idx: VReg::new(8),
                width: ElemWidth::Word,
                pred: PReg::new(1),
            },
            0,
        );
        rt(
            Inst::WhileLt {
                pd: PReg::new(15),
                rs1: XReg::T0,
                rs2: XReg::A0,
                width: ElemWidth::Word,
            },
            0,
        );
    }

    #[test]
    fn imm_out_of_range_rejected() {
        let e = encode(
            &Inst::AluImm {
                op: AluOp::Add,
                rd: XReg::A0,
                rs1: XReg::A0,
                imm: 4096,
            },
            0,
        )
        .unwrap_err();
        assert!(matches!(e, EncodeError::ImmOutOfRange { bits: 12, .. }));
    }

    #[test]
    fn target_out_of_range_rejected() {
        let e = encode(
            &Inst::Branch {
                cond: BrCond::Eq,
                rs1: XReg::A0,
                rs2: XReg::A0,
                target: 100_000,
            },
            0,
        )
        .unwrap_err();
        assert!(matches!(e, EncodeError::TargetOutOfRange { .. }));
    }

    #[test]
    fn high_pred_rejected_in_data_processing() {
        let e = encode(
            &Inst::VArith {
                op: VOp::Add,
                ty: VType::Fp,
                width: ElemWidth::Word,
                vd: VReg::new(0),
                vs1: VReg::new(1),
                vs2: VReg::new(2),
                pred: PReg::new(8),
            },
            0,
        )
        .unwrap_err();
        assert_eq!(e, EncodeError::PredOutOfRange { pred: 8 });
    }

    #[test]
    fn bad_opcode_rejected() {
        assert!(matches!(decode(63, 0), Err(DecodeError::BadOpcode(63))));
    }

    // Regression (uve-conform corpus `isa 7 ...`): a stream-branch
    // dimension index ≥ 8 used to overflow the 3-bit field — a
    // debug_assert in debug builds, silent word corruption in release.
    #[test]
    fn stream_branch_dim_out_of_range_is_typed() {
        let e = encode(
            &Inst::SsBranch {
                cond: StreamCond::DimEnd(8),
                u: VReg::new(0),
                target: 0,
            },
            0,
        )
        .unwrap_err();
        assert_eq!(e, EncodeError::DimOutOfRange { dim: 8 });
        // The boundary value still encodes.
        rt(
            Inst::SsBranch {
                cond: StreamCond::DimNotEnd(7),
                u: VReg::new(3),
                target: 5,
            },
            2,
        );
    }

    // Regression (uve-conform corpus `isa 7 ...`): a decoded negative
    // displacement larger than the PC wrapped to a huge absolute target,
    // so decode(word) produced an instruction that failed to re-encode.
    #[test]
    fn negative_displacement_before_zero_is_rejected() {
        // beq x0, x0, -16 encoded at pc 16 decodes fine at pc 16...
        let w = encode(
            &Inst::Branch {
                cond: BrCond::Eq,
                rs1: XReg::ZERO,
                rs2: XReg::ZERO,
                target: 0,
            },
            16,
        )
        .unwrap();
        assert!(decode(w, 16).is_ok());
        // ...but the same word at pc 4 would target instruction -12:
        // a reserved encoding, now a typed decode error.
        assert!(matches!(decode(w, 4), Err(DecodeError::BadField { .. })));
    }
}
