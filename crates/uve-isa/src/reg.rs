//! Architectural register files: scalar integer (`x`), scalar floating-point
//! (`f`), vector/stream (`u`) and predicate (`p`) registers.

use std::fmt;

/// Number of scalar integer registers (RISC-V base).
pub const NUM_XREGS: usize = 32;
/// Number of scalar floating-point registers (RISC-V F/D).
pub const NUM_FREGS: usize = 32;
/// Number of UVE vector registers `u0`–`u31` (paper Sec. III-A1).
pub const NUM_VREGS: usize = 32;
/// Number of UVE predicate registers `p0`–`p15`.
pub const NUM_PREGS: usize = 16;

macro_rules! reg_newtype {
    ($(#[$doc:meta])* $name:ident, $count:expr, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u8);

        impl $name {
            /// Creates register number `n`.
            ///
            /// # Panics
            ///
            /// Panics if `n` is out of range for this register file.
            pub const fn new(n: u8) -> Self {
                assert!((n as usize) < $count, "register index out of range");
                Self(n)
            }

            /// Creates register number `n`, or `None` if out of range.
            pub const fn try_new(n: u8) -> Option<Self> {
                if (n as usize) < $count {
                    Some(Self(n))
                } else {
                    None
                }
            }

            /// The register number.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// The register number as `u8`.
            pub const fn num(self) -> u8 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

reg_newtype!(
    /// A scalar integer register `x0`–`x31` (`x0` is hardwired to zero).
    XReg,
    NUM_XREGS,
    "x"
);
reg_newtype!(
    /// A scalar floating-point register `f0`–`f31`.
    FReg,
    NUM_FREGS,
    "f"
);
reg_newtype!(
    /// A UVE vector register `u0`–`u31`; may be associated with a data
    /// stream, in which case reads consume and writes produce stream
    /// elements.
    VReg,
    NUM_VREGS,
    "u"
);
reg_newtype!(
    /// A predicate register `p0`–`p15`; `p0` is hardwired to all-true.
    PReg,
    NUM_PREGS,
    "p"
);

impl XReg {
    /// The hardwired zero register.
    pub const ZERO: XReg = XReg(0);
    /// Return address (ABI).
    pub const RA: XReg = XReg(1);
    /// Stack pointer (ABI).
    pub const SP: XReg = XReg(2);
    /// Argument register `a0` = `x10`.
    pub const A0: XReg = XReg(10);
    /// Argument register `a1` = `x11`.
    pub const A1: XReg = XReg(11);
    /// Argument register `a2` = `x12`.
    pub const A2: XReg = XReg(12);
    /// Argument register `a3` = `x13`.
    pub const A3: XReg = XReg(13);
    /// Argument register `a4` = `x14`.
    pub const A4: XReg = XReg(14);
    /// Argument register `a5` = `x15`.
    pub const A5: XReg = XReg(15);
    /// Argument register `a6` = `x16`.
    pub const A6: XReg = XReg(16);
    /// Argument register `a7` = `x17`.
    pub const A7: XReg = XReg(17);
    /// Temporary `t0` = `x5`.
    pub const T0: XReg = XReg(5);
    /// Temporary `t1` = `x6`.
    pub const T1: XReg = XReg(6);
    /// Temporary `t2` = `x7`.
    pub const T2: XReg = XReg(7);
    /// Temporary `t3` = `x28`.
    pub const T3: XReg = XReg(28);
    /// Temporary `t4` = `x29`.
    pub const T4: XReg = XReg(29);
    /// Temporary `t5` = `x30`.
    pub const T5: XReg = XReg(30);
    /// Temporary `t6` = `x31`.
    pub const T6: XReg = XReg(31);
    /// Saved register `s2` = `x18`.
    pub const S2: XReg = XReg(18);
    /// Saved register `s3` = `x19`.
    pub const S3: XReg = XReg(19);
    /// Saved register `s4` = `x20`.
    pub const S4: XReg = XReg(20);
    /// Saved register `s5` = `x21`.
    pub const S5: XReg = XReg(21);
    /// Saved register `s6` = `x22`.
    pub const S6: XReg = XReg(22);
    /// Saved register `s7` = `x23`.
    pub const S7: XReg = XReg(23);
    /// Saved register `s8` = `x24`.
    pub const S8: XReg = XReg(24);
    /// Saved register `s9` = `x25`.
    pub const S9: XReg = XReg(25);
    /// Saved register `s10` = `x26`.
    pub const S10: XReg = XReg(26);
    /// Saved register `s11` = `x27`.
    pub const S11: XReg = XReg(27);
}

impl FReg {
    /// FP argument register `fa0` = `f10`.
    pub const FA0: FReg = FReg(10);
    /// FP argument register `fa1` = `f11`.
    pub const FA1: FReg = FReg(11);
    /// FP argument register `fa2` = `f12`.
    pub const FA2: FReg = FReg(12);
    /// FP argument register `fa3` = `f13`.
    pub const FA3: FReg = FReg(13);
    /// FP temporary `ft0` = `f0`.
    pub const FT0: FReg = FReg(0);
    /// FP temporary `ft1` = `f1`.
    pub const FT1: FReg = FReg(1);
    /// FP temporary `ft2` = `f2`.
    pub const FT2: FReg = FReg(2);
    /// FP temporary `ft3` = `f3`.
    pub const FT3: FReg = FReg(3);
}

impl PReg {
    /// The all-true hardwired predicate.
    pub const P0: PReg = PReg(0);
}

/// Register file class, used for renaming and dependence tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegClass {
    /// Scalar integer.
    Int,
    /// Scalar floating-point.
    Fp,
    /// Vector.
    Vec,
    /// Predicate.
    Pred,
}

/// A class-tagged architectural register reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegRef {
    /// The register file.
    pub class: RegClass,
    /// The architectural register number.
    pub num: u8,
}

impl RegRef {
    /// References an integer register.
    pub const fn x(r: XReg) -> Self {
        RegRef {
            class: RegClass::Int,
            num: r.num(),
        }
    }

    /// References a floating-point register.
    pub const fn f(r: FReg) -> Self {
        RegRef {
            class: RegClass::Fp,
            num: r.num(),
        }
    }

    /// References a vector register.
    pub const fn v(r: VReg) -> Self {
        RegRef {
            class: RegClass::Vec,
            num: r.num(),
        }
    }

    /// References a predicate register.
    pub const fn p(r: PReg) -> Self {
        RegRef {
            class: RegClass::Pred,
            num: r.num(),
        }
    }
}

impl fmt::Display for RegRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prefix = match self.class {
            RegClass::Int => 'x',
            RegClass::Fp => 'f',
            RegClass::Vec => 'u',
            RegClass::Pred => 'p',
        };
        write!(f, "{prefix}{}", self.num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(XReg::A0.to_string(), "x10");
        assert_eq!(FReg::FA0.to_string(), "f10");
        assert_eq!(VReg::new(3).to_string(), "u3");
        assert_eq!(PReg::P0.to_string(), "p0");
    }

    #[test]
    fn try_new_bounds() {
        assert!(XReg::try_new(31).is_some());
        assert!(XReg::try_new(32).is_none());
        assert!(PReg::try_new(15).is_some());
        assert!(PReg::try_new(16).is_none());
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn new_panics_out_of_range() {
        let _ = VReg::new(32);
    }

    #[test]
    fn regref_display() {
        assert_eq!(RegRef::v(VReg::new(7)).to_string(), "u7");
        assert_eq!(RegRef::p(PReg::new(2)).to_string(), "p2");
    }
}
