//! Decoded-instruction → flat-op lowering for the basic-block translation
//! cache (`uve-core`'s `translate` module).
//!
//! A [`FlatOp`] is one [`Inst`] with every operand pre-resolved at
//! translation time: register operands become direct array indices,
//! immediates are pre-sign-extended (and pre-shifted for `lui`), and branch
//! targets are absolute instruction indices ready to jump to. The executor
//! therefore dispatches on a flat, cache-friendly enum without re-decoding
//! operand fields on every dynamic instruction.
//!
//! Lowering is total but conservative: instructions whose semantics depend
//! on mutable stream-unit state in ways a static translation cannot
//! pre-resolve (stream configuration, stream control, lane extraction with
//! its ordered error checks) lower to [`FlatOp::Fallback`] and execute on
//! the interpreter path. Vector ops *are* lowered — whether an operand is a
//! bound stream is re-checked cheaply at execution time, because stream
//! bindings are machine state, not program text.

use crate::inst::{
    AluOp, BrCond, DupSrc, FpOp, FpUnOp, HorizOp, Inst, PredCond, PredOp, StreamCond, VCmpOp, VOp,
    VType, VUnOp,
};
use crate::reg::VReg;
use uve_stream::ElemWidth;

/// One pre-resolved operation of a translated basic block.
///
/// Scalar register operands are raw indices into the emulator's register
/// files (`x`/`f`/`p`); vector operands keep their [`VReg`] so the executor
/// can probe the stream unit. Immediates are fully sign-extended;
/// `Lui::imm` is pre-shifted. Branch `target`s are absolute instruction
/// indices (the translation layer resolves them to block entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // fields mirror the documented `Inst` variants
pub enum FlatOp {
    // ---- scalar ----
    Alu {
        op: AluOp,
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    AluImm {
        op: AluOp,
        rd: u8,
        rs1: u8,
        imm: i64,
    },
    /// `rd = imm` with the `<< 12` already applied.
    Li {
        rd: u8,
        imm: i64,
    },
    Ld {
        rd: u8,
        base: u8,
        off: i64,
        width: ElemWidth,
    },
    St {
        src: u8,
        base: u8,
        off: i64,
        width: ElemWidth,
    },
    Fld {
        fd: u8,
        base: u8,
        off: i64,
        width: ElemWidth,
    },
    Fst {
        src: u8,
        base: u8,
        off: i64,
        width: ElemWidth,
    },
    FAlu {
        op: FpOp,
        width: ElemWidth,
        fd: u8,
        fs1: u8,
        fs2: u8,
    },
    FMac {
        width: ElemWidth,
        fd: u8,
        fs1: u8,
        fs2: u8,
        fs3: u8,
    },
    FUn {
        op: FpUnOp,
        width: ElemWidth,
        fd: u8,
        fs: u8,
    },
    FMvXF {
        rd: u8,
        fs: u8,
    },
    FMvFX {
        fd: u8,
        rs: u8,
    },
    FCvtFX {
        width: ElemWidth,
        fd: u8,
        rs: u8,
    },
    FCvtXF {
        rd: u8,
        fs: u8,
    },
    Branch {
        cond: BrCond,
        rs1: u8,
        rs2: u8,
        target: u32,
    },
    Jal {
        rd: u8,
        target: u32,
    },
    Nop,

    // ---- vector length & predicates ----
    SsGetVl {
        rd: u8,
        width: ElemWidth,
    },
    SsSetVl {
        rd: u8,
        rs: u8,
        width: ElemWidth,
    },
    IncVl {
        rd: u8,
        width: ElemWidth,
    },
    CntVl {
        rd: u8,
        width: ElemWidth,
    },
    WhileLt {
        pd: u8,
        rs1: u8,
        rs2: u8,
        width: ElemWidth,
    },
    PredAlu {
        op: PredOp,
        pd: u8,
        ps1: u8,
        ps2: u8,
    },
    BrPred {
        cond: PredCond,
        p: u8,
        target: u32,
    },

    // ---- stream-conditional branch ----
    SsBranch {
        cond: StreamCond,
        u: VReg,
        target: u32,
    },

    // ---- vector data processing (stream-ness re-checked at runtime) ----
    VDup {
        vd: VReg,
        src: DupSrc,
        width: ElemWidth,
        ty: VType,
    },
    VMv {
        vd: VReg,
        vs: VReg,
    },
    VUn {
        op: VUnOp,
        ty: VType,
        width: ElemWidth,
        vd: VReg,
        vs: VReg,
        pred: u8,
    },
    VArith {
        op: VOp,
        ty: VType,
        width: ElemWidth,
        vd: VReg,
        vs1: VReg,
        vs2: VReg,
        pred: u8,
    },
    VArithVS {
        op: VOp,
        ty: VType,
        width: ElemWidth,
        vd: VReg,
        vs1: VReg,
        scalar: DupSrc,
        pred: u8,
    },
    VMac {
        ty: VType,
        width: ElemWidth,
        vd: VReg,
        vs1: VReg,
        vs2: VReg,
        pred: u8,
    },
    VMacVS {
        ty: VType,
        width: ElemWidth,
        vd: VReg,
        vs1: VReg,
        scalar: DupSrc,
        pred: u8,
    },
    VRed {
        op: HorizOp,
        ty: VType,
        width: ElemWidth,
        vd: VReg,
        vs: VReg,
        pred: u8,
    },
    VCmp {
        op: VCmpOp,
        ty: VType,
        width: ElemWidth,
        pd: u8,
        vs1: VReg,
        vs2: VReg,
    },
    PredFromValid {
        pd: u8,
        vs: VReg,
    },
    VLoad {
        vd: VReg,
        base: u8,
        index: u8,
        width: ElemWidth,
        pred: u8,
    },
    VStore {
        vs: VReg,
        base: u8,
        index: u8,
        width: ElemWidth,
        pred: u8,
    },
    VGather {
        vd: VReg,
        base: u8,
        idx: VReg,
        width: ElemWidth,
        pred: u8,
    },
    VScatter {
        vs: VReg,
        base: u8,
        idx: VReg,
        width: ElemWidth,
        pred: u8,
    },
    VLoadPost {
        vd: VReg,
        base: u8,
        width: ElemWidth,
        pred: u8,
    },
    VStorePost {
        vs: VReg,
        base: u8,
        width: ElemWidth,
        pred: u8,
    },

    /// Execute through the interpreter's `step` (stream configuration and
    /// control, lane extraction, `halt` reached mid-lowering).
    Fallback,
}

impl FlatOp {
    /// True for ops that are *simple*: they touch only scalar machine state
    /// (integer/float/predicate registers, `vl`, plain memory), can never
    /// fail, never redirect control, and never consult the stream unit. A
    /// translated block whose body (all ops before the last) is simple can
    /// be executed straight-line with no per-instruction control-flow or
    /// error machinery at all — only the final op of a block can branch by
    /// construction.
    #[must_use]
    pub fn is_simple(&self) -> bool {
        matches!(
            self,
            FlatOp::Alu { .. }
                | FlatOp::AluImm { .. }
                | FlatOp::Li { .. }
                | FlatOp::Ld { .. }
                | FlatOp::St { .. }
                | FlatOp::Fld { .. }
                | FlatOp::Fst { .. }
                | FlatOp::FAlu { .. }
                | FlatOp::FMac { .. }
                | FlatOp::FUn { .. }
                | FlatOp::FMvXF { .. }
                | FlatOp::FMvFX { .. }
                | FlatOp::FCvtFX { .. }
                | FlatOp::FCvtXF { .. }
                | FlatOp::Nop
                | FlatOp::SsGetVl { .. }
                | FlatOp::SsSetVl { .. }
                | FlatOp::IncVl { .. }
                | FlatOp::CntVl { .. }
                | FlatOp::WhileLt { .. }
                | FlatOp::PredAlu { .. }
        )
    }
}

/// Lowers one decoded instruction to its flat pre-resolved form.
///
/// Never fails: anything without a specialized flat form (the `ss.*`
/// configuration/control group and lane extraction) lowers to
/// [`FlatOp::Fallback`].
#[must_use]
pub fn lower(inst: &Inst) -> FlatOp {
    #[allow(clippy::cast_possible_truncation)] // register indices are < 32
    fn r(i: usize) -> u8 {
        i as u8
    }
    match *inst {
        Inst::Alu { op, rd, rs1, rs2 } => FlatOp::Alu {
            op,
            rd: r(rd.index()),
            rs1: r(rs1.index()),
            rs2: r(rs2.index()),
        },
        Inst::AluImm { op, rd, rs1, imm } => FlatOp::AluImm {
            op,
            rd: r(rd.index()),
            rs1: r(rs1.index()),
            imm: i64::from(imm),
        },
        Inst::Lui { rd, imm } => FlatOp::Li {
            rd: r(rd.index()),
            imm: i64::from(imm) << 12,
        },
        Inst::Ld {
            rd,
            base,
            off,
            width,
        } => FlatOp::Ld {
            rd: r(rd.index()),
            base: r(base.index()),
            off: i64::from(off),
            width,
        },
        Inst::St {
            src,
            base,
            off,
            width,
        } => FlatOp::St {
            src: r(src.index()),
            base: r(base.index()),
            off: i64::from(off),
            width,
        },
        Inst::Fld {
            fd,
            base,
            off,
            width,
        } => FlatOp::Fld {
            fd: r(fd.index()),
            base: r(base.index()),
            off: i64::from(off),
            width,
        },
        Inst::Fst {
            src,
            base,
            off,
            width,
        } => FlatOp::Fst {
            src: r(src.index()),
            base: r(base.index()),
            off: i64::from(off),
            width,
        },
        Inst::FAlu {
            op,
            width,
            fd,
            fs1,
            fs2,
        } => FlatOp::FAlu {
            op,
            width,
            fd: r(fd.index()),
            fs1: r(fs1.index()),
            fs2: r(fs2.index()),
        },
        Inst::FMac {
            width,
            fd,
            fs1,
            fs2,
            fs3,
        } => FlatOp::FMac {
            width,
            fd: r(fd.index()),
            fs1: r(fs1.index()),
            fs2: r(fs2.index()),
            fs3: r(fs3.index()),
        },
        Inst::FUn { op, width, fd, fs } => FlatOp::FUn {
            op,
            width,
            fd: r(fd.index()),
            fs: r(fs.index()),
        },
        Inst::FMvXF { rd, fs } => FlatOp::FMvXF {
            rd: r(rd.index()),
            fs: r(fs.index()),
        },
        Inst::FMvFX { fd, rs } => FlatOp::FMvFX {
            fd: r(fd.index()),
            rs: r(rs.index()),
        },
        Inst::FCvtFX { width, fd, rs } => FlatOp::FCvtFX {
            width,
            fd: r(fd.index()),
            rs: r(rs.index()),
        },
        Inst::FCvtXF { width: _, rd, fs } => FlatOp::FCvtXF {
            rd: r(rd.index()),
            fs: r(fs.index()),
        },
        Inst::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => FlatOp::Branch {
            cond,
            rs1: r(rs1.index()),
            rs2: r(rs2.index()),
            target,
        },
        Inst::Jal { rd, target } => FlatOp::Jal {
            rd: r(rd.index()),
            target,
        },
        Inst::Nop => FlatOp::Nop,
        Inst::SsGetVl { rd, width } => FlatOp::SsGetVl {
            rd: r(rd.index()),
            width,
        },
        Inst::SsSetVl { rd, rs, width } => FlatOp::SsSetVl {
            rd: r(rd.index()),
            rs: r(rs.index()),
            width,
        },
        Inst::IncVl { rd, width } => FlatOp::IncVl {
            rd: r(rd.index()),
            width,
        },
        Inst::CntVl { rd, width } => FlatOp::CntVl {
            rd: r(rd.index()),
            width,
        },
        Inst::WhileLt {
            pd,
            rs1,
            rs2,
            width,
        } => FlatOp::WhileLt {
            pd: r(pd.index()),
            rs1: r(rs1.index()),
            rs2: r(rs2.index()),
            width,
        },
        Inst::PredAlu { op, pd, ps1, ps2 } => FlatOp::PredAlu {
            op,
            pd: r(pd.index()),
            ps1: r(ps1.index()),
            ps2: r(ps2.index()),
        },
        Inst::BrPred { cond, p, target } => FlatOp::BrPred {
            cond,
            p: r(p.index()),
            target,
        },
        Inst::SsBranch { cond, u, target } => FlatOp::SsBranch { cond, u, target },
        Inst::VDup { vd, src, width, ty } => FlatOp::VDup { vd, src, width, ty },
        Inst::VMv { vd, vs } => FlatOp::VMv { vd, vs },
        Inst::VUn {
            op,
            ty,
            width,
            vd,
            vs,
            pred,
        } => FlatOp::VUn {
            op,
            ty,
            width,
            vd,
            vs,
            pred: r(pred.index()),
        },
        Inst::VArith {
            op,
            ty,
            width,
            vd,
            vs1,
            vs2,
            pred,
        } => FlatOp::VArith {
            op,
            ty,
            width,
            vd,
            vs1,
            vs2,
            pred: r(pred.index()),
        },
        Inst::VArithVS {
            op,
            ty,
            width,
            vd,
            vs1,
            scalar,
            pred,
        } => FlatOp::VArithVS {
            op,
            ty,
            width,
            vd,
            vs1,
            scalar,
            pred: r(pred.index()),
        },
        Inst::VMac {
            ty,
            width,
            vd,
            vs1,
            vs2,
            pred,
        } => FlatOp::VMac {
            ty,
            width,
            vd,
            vs1,
            vs2,
            pred: r(pred.index()),
        },
        Inst::VMacVS {
            ty,
            width,
            vd,
            vs1,
            scalar,
            pred,
        } => FlatOp::VMacVS {
            ty,
            width,
            vd,
            vs1,
            scalar,
            pred: r(pred.index()),
        },
        Inst::VRed {
            op,
            ty,
            width,
            vd,
            vs,
            pred,
        } => FlatOp::VRed {
            op,
            ty,
            width,
            vd,
            vs,
            pred: r(pred.index()),
        },
        Inst::VCmp {
            op,
            ty,
            width,
            pd,
            vs1,
            vs2,
        } => FlatOp::VCmp {
            op,
            ty,
            width,
            pd: r(pd.index()),
            vs1,
            vs2,
        },
        Inst::PredFromValid { pd, vs } => FlatOp::PredFromValid {
            pd: r(pd.index()),
            vs,
        },
        Inst::VLoad {
            vd,
            base,
            index,
            width,
            pred,
        } => FlatOp::VLoad {
            vd,
            base: r(base.index()),
            index: r(index.index()),
            width,
            pred: r(pred.index()),
        },
        Inst::VStore {
            vs,
            base,
            index,
            width,
            pred,
        } => FlatOp::VStore {
            vs,
            base: r(base.index()),
            index: r(index.index()),
            width,
            pred: r(pred.index()),
        },
        Inst::VGather {
            vd,
            base,
            idx,
            width,
            pred,
        } => FlatOp::VGather {
            vd,
            base: r(base.index()),
            idx,
            width,
            pred: r(pred.index()),
        },
        Inst::VScatter {
            vs,
            base,
            idx,
            width,
            pred,
        } => FlatOp::VScatter {
            vs,
            base: r(base.index()),
            idx,
            width,
            pred: r(pred.index()),
        },
        Inst::VLoadPost {
            vd,
            base,
            width,
            pred,
        } => FlatOp::VLoadPost {
            vd,
            base: r(base.index()),
            width,
            pred: r(pred.index()),
        },
        Inst::VStorePost {
            vs,
            base,
            width,
            pred,
        } => FlatOp::VStorePost {
            vs,
            base: r(base.index()),
            width,
            pred: r(pred.index()),
        },
        // Stream configuration/control mutate stream-unit state the
        // translation cannot pre-resolve; lane extraction keeps the
        // interpreter's error-check ordering; `halt` is a block terminator,
        // never an op.
        Inst::SsStart { .. }
        | Inst::SsApp { .. }
        | Inst::SsAppMod { .. }
        | Inst::SsAppInd { .. }
        | Inst::SsCtl { .. }
        | Inst::SsCfgMem { .. }
        | Inst::VExtractF { .. }
        | Inst::VExtractX { .. }
        | Inst::Halt => FlatOp::Fallback,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{PReg, XReg};

    #[test]
    fn immediates_are_pre_extended() {
        let f = lower(&Inst::AluImm {
            op: AluOp::Add,
            rd: XReg::A0,
            rs1: XReg::A1,
            imm: -3,
        });
        assert_eq!(
            f,
            FlatOp::AluImm {
                op: AluOp::Add,
                rd: 10,
                rs1: 11,
                imm: -3
            }
        );
        let l = lower(&Inst::Lui {
            rd: XReg::A0,
            imm: -1,
        });
        assert_eq!(l, FlatOp::Li { rd: 10, imm: -4096 });
    }

    #[test]
    fn stream_config_falls_back() {
        let f = lower(&Inst::SsCtl {
            op: crate::inst::StreamCtl::Stop,
            u: VReg::new(3),
        });
        assert_eq!(f, FlatOp::Fallback);
        assert_eq!(lower(&Inst::Halt), FlatOp::Fallback);
    }

    #[test]
    fn branches_keep_absolute_targets() {
        let f = lower(&Inst::BrPred {
            cond: PredCond::First,
            p: PReg::new(1),
            target: 7,
        });
        assert_eq!(
            f,
            FlatOp::BrPred {
                cond: PredCond::First,
                p: 1,
                target: 7
            }
        );
    }
}
