//! The instruction set: UVE streaming instructions plus the scalar and
//! SVE-like baseline instructions used by the evaluation.
//!
//! Instruction mnemonics follow the paper (`ss.*` for stream configuration
//! and control, `so.*` for stream/vector operations); the scalar subset is
//! RISC-V-flavoured. Branch targets are absolute instruction indices,
//! resolved from labels by [`ProgramBuilder`](crate::ProgramBuilder).

use crate::reg::{FReg, PReg, RegRef, VReg, XReg};
use std::fmt;
use uve_stream::{Behaviour, ElemWidth, IndirectBehaviour, Param};

/// Scalar integer ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the op mnemonics themselves
pub enum AluOp {
    Add,
    Sub,
    Mul,
    Mulh,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
    Sltu,
    Min,
    Max,
}

/// Scalar floating-point binary operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the op mnemonics themselves
pub enum FpOp {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
}

/// Scalar floating-point unary operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the op mnemonics themselves
pub enum FpUnOp {
    Sqrt,
    Abs,
    Neg,
    Mv,
}

/// Scalar branch condition (RISC-V style, comparing two `x` registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the op mnemonics themselves
pub enum BrCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

/// Vector arithmetic/logic operation; interpreted as integer or
/// floating-point according to the instruction's [`VType`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the op mnemonics themselves
pub enum VOp {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

/// Vector unary operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the op mnemonics themselves
pub enum VUnOp {
    Abs,
    Neg,
    Sqrt,
    Mv,
}

/// Vector comparison operation (writes a predicate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the op mnemonics themselves
pub enum VCmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Horizontal (cross-lane) reduction operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the op mnemonics themselves
pub enum HorizOp {
    Add,
    Max,
    Min,
}

/// Predicate-register logic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the op mnemonics themselves
pub enum PredOp {
    Mov,
    Not,
    And,
    Or,
}

/// Element interpretation of a vector instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VType {
    /// Signed integer lanes.
    Int,
    /// IEEE-754 lanes (`Word` = f32, `Double` = f64).
    Fp,
}

/// Stream-state branch conditions (paper Sec. III-B, *Loop control*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamCond {
    /// Branch while the stream has elements left (`so.b.nend`).
    NotEnd,
    /// Branch when the stream is exhausted (`so.b.end`).
    End,
    /// Branch when the last consumption did *not* finish dimension `k`.
    DimNotEnd(u8),
    /// Branch when the last consumption finished dimension `k`.
    DimEnd(u8),
}

/// Predicate branch conditions (SVE-style `b.first`/`b.any`/…).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredCond {
    /// The first lane of the predicate is true.
    First,
    /// Any lane is true.
    Any,
    /// No lane is true.
    None,
}

/// Stream control operation (`ss.suspend`/`ss.resume`/`ss.stop`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamCtl {
    /// Freeze the stream, releasing the register for other use.
    Suspend,
    /// Resume a suspended stream from its committed iteration state.
    Resume,
    /// Terminate the stream and release its engine structures.
    Stop,
}

/// Stream direction: input (load) or output (store).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Input stream: memory → register (`ss.ld`).
    Load,
    /// Output stream: register → memory (`ss.st`).
    Store,
}

/// Memory-hierarchy level a stream is directed at (`so.cfg.memx`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemLevel {
    /// Stream from/to the L1 data cache.
    L1,
    /// Stream from/to the unified L2 (the paper's default).
    #[default]
    L2,
    /// Bypass the caches and stream from/to DRAM.
    Mem,
}

/// Source operand of a vector broadcast/duplication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DupSrc {
    /// Broadcast a scalar integer register.
    X(XReg),
    /// Broadcast a scalar floating-point register.
    F(FReg),
}

/// Execution resource class, used by the timing model to pick a functional
/// unit and latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecClass {
    /// Simple integer ALU operation (1 cycle).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide (unpipelined).
    IntDiv,
    /// Scalar/vector FP add-type operation.
    FpAdd,
    /// Scalar/vector FP multiply.
    FpMul,
    /// Fused multiply-accumulate.
    FpMac,
    /// FP divide / square root (unpipelined).
    FpDiv,
    /// Vector integer operation.
    VecInt,
    /// Memory load (through the load/store unit).
    Load,
    /// Memory store.
    Store,
    /// Control transfer.
    Branch,
    /// Stream configuration (handled by the Streaming Engine's SCROB).
    StreamCfg,
    /// Stream control (suspend/resume/stop).
    StreamCtl,
    /// Anything retiring in one cycle with no FU pressure (moves, nop).
    Simple,
}

/// One machine instruction.
///
/// All three code flavours used in the evaluation (UVE, SVE-like, scalar)
/// share this type; the emulator and timing model dispatch on the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // field meanings documented per-variant
pub enum Inst {
    // ---- scalar ----
    /// `rd = rs1 <op> rs2`.
    Alu {
        op: AluOp,
        rd: XReg,
        rs1: XReg,
        rs2: XReg,
    },
    /// `rd = rs1 <op> imm` (12-bit signed immediate for encoding).
    AluImm {
        op: AluOp,
        rd: XReg,
        rs1: XReg,
        imm: i32,
    },
    /// `rd = imm << 12` (20-bit immediate).
    Lui { rd: XReg, imm: i32 },
    /// Scalar load: `rd = mem[rs1 + off]`, sign-extended.
    Ld {
        rd: XReg,
        base: XReg,
        off: i32,
        width: ElemWidth,
    },
    /// Scalar store: `mem[rs1 + off] = rs2`.
    St {
        src: XReg,
        base: XReg,
        off: i32,
        width: ElemWidth,
    },
    /// Scalar FP load.
    Fld {
        fd: FReg,
        base: XReg,
        off: i32,
        width: ElemWidth,
    },
    /// Scalar FP store.
    Fst {
        src: FReg,
        base: XReg,
        off: i32,
        width: ElemWidth,
    },
    /// `fd = fs1 <op> fs2`.
    FAlu {
        op: FpOp,
        width: ElemWidth,
        fd: FReg,
        fs1: FReg,
        fs2: FReg,
    },
    /// Fused multiply-add: `fd = fs1 * fs2 + fs3`.
    FMac {
        width: ElemWidth,
        fd: FReg,
        fs1: FReg,
        fs2: FReg,
        fs3: FReg,
    },
    /// FP unary: `fd = op(fs)`.
    FUn {
        op: FpUnOp,
        width: ElemWidth,
        fd: FReg,
        fs: FReg,
    },
    /// Move FP bits to integer register.
    FMvXF { rd: XReg, fs: FReg },
    /// Move integer bits to FP register.
    FMvFX { fd: FReg, rs: XReg },
    /// Convert integer to float: `fd = (fp)rs`.
    FCvtFX {
        width: ElemWidth,
        fd: FReg,
        rs: XReg,
    },
    /// Convert float to integer (truncating): `rd = (int)fs`.
    FCvtXF {
        width: ElemWidth,
        rd: XReg,
        fs: FReg,
    },
    /// Conditional branch comparing `rs1` and `rs2`.
    Branch {
        cond: BrCond,
        rs1: XReg,
        rs2: XReg,
        target: u32,
    },
    /// Unconditional jump, writing the return address to `rd`.
    Jal { rd: XReg, target: u32 },
    /// Stop the machine.
    Halt,
    /// No operation.
    Nop,

    // ---- UVE stream configuration (ss.*) ----
    /// Configure dimension 0 of stream `u`: base/size/stride from scalar
    /// registers. `done` marks a complete 1-D configuration (`ss.ld.w`);
    /// otherwise further `SsApp*` instructions follow (`ss.ld.w.sta`).
    SsStart {
        u: VReg,
        dir: Dir,
        width: ElemWidth,
        base: XReg,
        size: XReg,
        stride: XReg,
        done: bool,
    },
    /// Append an outer dimension `{offset, size, stride}` (`ss.app` /
    /// `ss.end`).
    SsApp {
        u: VReg,
        offset: XReg,
        size: XReg,
        stride: XReg,
        end: bool,
    },
    /// Append a static modifier bound to the last dimension
    /// (`ss.app.mod` / `ss.end.mod`).
    SsAppMod {
        u: VReg,
        target: Param,
        behaviour: Behaviour,
        disp: XReg,
        count: XReg,
        end: bool,
    },
    /// Append an indirect modifier whose origin is the stream configured on
    /// `origin` (`ss.app.ind` / `ss.end.ind`).
    SsAppInd {
        u: VReg,
        target: Param,
        behaviour: IndirectBehaviour,
        origin: VReg,
        end: bool,
    },
    /// Stream control: suspend/resume/stop.
    SsCtl { op: StreamCtl, u: VReg },
    /// Direct the stream at a cache level (`so.cfg.memx`). Must precede the
    /// completing configuration instruction's effect; applies to `u`.
    SsCfgMem { u: VReg, level: MemLevel },
    /// Branch on stream state (`so.b.*`).
    SsBranch {
        cond: StreamCond,
        u: VReg,
        target: u32,
    },
    /// Read the current vector length in elements of `width` into `rd`
    /// (`ss.getvl`).
    SsGetVl { rd: XReg, width: ElemWidth },
    /// Configure the active vector length (`ss.setvl`): request `rs`
    /// elements of `width`; the granted count (clamped to the hardware
    /// maximum) is written to `rd`. Enables narrower vector-length
    /// emulation (Sec. III-B, *Advanced control*).
    SsSetVl {
        rd: XReg,
        rs: XReg,
        width: ElemWidth,
    },

    // ---- vector / stream data processing (so.*) ----
    /// Broadcast a scalar to all lanes (`so.v.dup`).
    VDup {
        vd: VReg,
        src: DupSrc,
        width: ElemWidth,
        ty: VType,
    },
    /// Vector move / stream read (`so.v.mv`): `vd = vs` (consumes one chunk
    /// if `vs` is a stream, produces if `vd` is a stream).
    VMv { vd: VReg, vs: VReg },
    /// Vector unary operation under predicate.
    VUn {
        op: VUnOp,
        ty: VType,
        width: ElemWidth,
        vd: VReg,
        vs: VReg,
        pred: PReg,
    },
    /// Vector binary operation under predicate (`so.a.{add,mul,…}.{fp,sg}`).
    VArith {
        op: VOp,
        ty: VType,
        width: ElemWidth,
        vd: VReg,
        vs1: VReg,
        vs2: VReg,
        pred: PReg,
    },
    /// Vector ⊗ broadcast-scalar operation.
    VArithVS {
        op: VOp,
        ty: VType,
        width: ElemWidth,
        vd: VReg,
        vs1: VReg,
        scalar: DupSrc,
        pred: PReg,
    },
    /// Multiply-accumulate: `vd += vs1 * vs2` (`so.a.mac`).
    VMac {
        ty: VType,
        width: ElemWidth,
        vd: VReg,
        vs1: VReg,
        vs2: VReg,
        pred: PReg,
    },
    /// Vector ⊗ scalar multiply-accumulate: `vd += vs1 * scalar`
    /// (`so.a.mac.vs`).
    VMacVS {
        ty: VType,
        width: ElemWidth,
        vd: VReg,
        vs1: VReg,
        scalar: DupSrc,
        pred: PReg,
    },
    /// Horizontal reduction of `vs` into lane 0 of `vd` (`so.a.h{add,max,min}`).
    /// When `vd` is an output stream this produces exactly one element.
    VRed {
        op: HorizOp,
        ty: VType,
        width: ElemWidth,
        vd: VReg,
        vs: VReg,
        pred: PReg,
    },
    /// Vector compare, writing a predicate (`so.p.cmp.*`).
    VCmp {
        op: VCmpOp,
        ty: VType,
        width: ElemWidth,
        pd: PReg,
        vs1: VReg,
        vs2: VReg,
    },
    /// Predicate logic (`so.p.{mov,not,and,or}`).
    PredAlu {
        op: PredOp,
        pd: PReg,
        ps1: PReg,
        ps2: PReg,
    },
    /// Set a predicate from the valid lanes of a vector register
    /// (`so.p.fromvalid`) — the paper's "configure the predicate based on
    /// the valid elements of a vector register".
    PredFromValid { pd: PReg, vs: VReg },
    /// Branch on predicate state.
    BrPred {
        cond: PredCond,
        p: PReg,
        target: u32,
    },
    /// Extract lane `lane` of `vs` into an FP register.
    VExtractF {
        fd: FReg,
        vs: VReg,
        lane: u8,
        width: ElemWidth,
    },
    /// Extract lane `lane` of `vs` into an integer register.
    VExtractX {
        rd: XReg,
        vs: VReg,
        lane: u8,
        width: ElemWidth,
    },

    // ---- SVE-like baseline memory & loop control ----
    /// Predicated vector load: `vd[l] = mem[base + (index + l) * width]` for
    /// active lanes `l` (`ld1w [x_base, x_index, lsl #w]`).
    VLoad {
        vd: VReg,
        base: XReg,
        index: XReg,
        width: ElemWidth,
        pred: PReg,
    },
    /// Predicated vector store.
    VStore {
        vs: VReg,
        base: XReg,
        index: XReg,
        width: ElemWidth,
        pred: PReg,
    },
    /// Gather load: `vd[l] = mem[base + idx[l] * width]` with lane indices
    /// from vector `idx`.
    VGather {
        vd: VReg,
        base: XReg,
        idx: VReg,
        width: ElemWidth,
        pred: PReg,
    },
    /// Scatter store.
    VScatter {
        vs: VReg,
        base: XReg,
        idx: VReg,
        width: ElemWidth,
        pred: PReg,
    },
    /// `pd[l] = (rs1 + l) < rs2` (SVE `whilelt`).
    WhileLt {
        pd: PReg,
        rs1: XReg,
        rs2: XReg,
        width: ElemWidth,
    },
    /// `rd += VL / width` elements (SVE `incw`).
    IncVl { rd: XReg, width: ElemWidth },
    /// `rd = VL / width` elements (SVE `cntw`).
    CntVl { rd: XReg, width: ElemWidth },
    /// Legacy UVE vector load with post-increment of the base register
    /// (`ss.load`): `vd = mem[base]`, then `base += VL` bytes.
    VLoadPost {
        vd: VReg,
        base: XReg,
        width: ElemWidth,
        pred: PReg,
    },
    /// Legacy UVE vector store with post-increment.
    VStorePost {
        vs: VReg,
        base: XReg,
        width: ElemWidth,
        pred: PReg,
    },
}

/// Fixed-size operand list (at most 5 sources / 2 destinations).
pub type RegList = Vec<RegRef>;

impl Inst {
    /// Architectural destination registers written by this instruction.
    pub fn dests(&self) -> RegList {
        use Inst::*;
        match *self {
            Alu { rd, .. } | AluImm { rd, .. } | Lui { rd, .. } | Ld { rd, .. } => nonzero_x(rd),
            Fld { fd, .. }
            | FAlu { fd, .. }
            | FMac { fd, .. }
            | FUn { fd, .. }
            | FMvFX { fd, .. }
            | FCvtFX { fd, .. } => vec![RegRef::f(fd)],
            FMvXF { rd, .. } | FCvtXF { rd, .. } => nonzero_x(rd),
            Jal { rd, .. } => nonzero_x(rd),
            SsGetVl { rd, .. } | SsSetVl { rd, .. } | IncVl { rd, .. } | CntVl { rd, .. } => {
                nonzero_x(rd)
            }
            VDup { vd, .. }
            | VMv { vd, .. }
            | VUn { vd, .. }
            | VArith { vd, .. }
            | VArithVS { vd, .. }
            | VRed { vd, .. }
            | VLoad { vd, .. }
            | VGather { vd, .. } => vec![RegRef::v(vd)],
            VMac { vd, .. } | VMacVS { vd, .. } => vec![RegRef::v(vd)],
            VCmp { pd, .. }
            | PredAlu { pd, .. }
            | PredFromValid { pd, .. }
            | WhileLt { pd, .. } => {
                vec![RegRef::p(pd)]
            }
            VExtractF { fd, .. } => vec![RegRef::f(fd)],
            VExtractX { rd, .. } => nonzero_x(rd),
            VLoadPost { vd, base, .. } => vec![RegRef::v(vd), RegRef::x(base)],
            VStorePost { base, .. } => vec![RegRef::x(base)],
            St { .. }
            | Fst { .. }
            | Branch { .. }
            | Halt
            | Nop
            | SsStart { .. }
            | SsApp { .. }
            | SsAppMod { .. }
            | SsAppInd { .. }
            | SsCtl { .. }
            | SsCfgMem { .. }
            | SsBranch { .. }
            | BrPred { .. }
            | VStore { .. }
            | VScatter { .. } => Vec::new(),
        }
    }

    /// Architectural source registers read by this instruction.
    ///
    /// For vector instructions this includes stream-associated registers;
    /// whether a `u` register is a stream is machine state, not visible
    /// here.
    pub fn srcs(&self) -> RegList {
        use Inst::*;
        match *self {
            Alu { rs1, rs2, .. } => vec![RegRef::x(rs1), RegRef::x(rs2)],
            AluImm { rs1, .. } => vec![RegRef::x(rs1)],
            Lui { .. } => Vec::new(),
            Ld { base, .. } => vec![RegRef::x(base)],
            St { src, base, .. } => vec![RegRef::x(src), RegRef::x(base)],
            Fld { base, .. } => vec![RegRef::x(base)],
            Fst { src, base, .. } => vec![RegRef::f(src), RegRef::x(base)],
            FAlu { fs1, fs2, .. } => vec![RegRef::f(fs1), RegRef::f(fs2)],
            FMac { fs1, fs2, fs3, .. } => {
                vec![RegRef::f(fs1), RegRef::f(fs2), RegRef::f(fs3)]
            }
            FUn { fs, .. } => vec![RegRef::f(fs)],
            FMvXF { fs, .. } => vec![RegRef::f(fs)],
            FMvFX { rs, .. } => vec![RegRef::x(rs)],
            FCvtFX { rs, .. } => vec![RegRef::x(rs)],
            FCvtXF { fs, .. } => vec![RegRef::f(fs)],
            Branch { rs1, rs2, .. } => vec![RegRef::x(rs1), RegRef::x(rs2)],
            Jal { .. } | Halt | Nop => Vec::new(),
            SsStart {
                base, size, stride, ..
            } => vec![RegRef::x(base), RegRef::x(size), RegRef::x(stride)],
            SsApp {
                offset,
                size,
                stride,
                ..
            } => vec![RegRef::x(offset), RegRef::x(size), RegRef::x(stride)],
            SsAppMod { disp, count, .. } => vec![RegRef::x(disp), RegRef::x(count)],
            SsAppInd { origin, .. } => vec![RegRef::v(origin)],
            SsCtl { .. } | SsCfgMem { .. } | SsGetVl { .. } => Vec::new(),
            SsSetVl { rs, .. } => vec![RegRef::x(rs)],
            PredFromValid { vs, .. } => vec![RegRef::v(vs)],
            SsBranch { u, .. } => vec![RegRef::v(u)],
            VDup { src, .. } => dup_src(src),
            VMv { vs, .. } => vec![RegRef::v(vs)],
            VUn { vs, pred, .. } => with_pred(vec![RegRef::v(vs)], pred),
            VArith { vs1, vs2, pred, .. } => with_pred(vec![RegRef::v(vs1), RegRef::v(vs2)], pred),
            VArithVS {
                vs1, scalar, pred, ..
            } => {
                let mut v = vec![RegRef::v(vs1)];
                v.extend(dup_src(scalar));
                with_pred(v, pred)
            }
            VMac {
                vd, vs1, vs2, pred, ..
            } => with_pred(vec![RegRef::v(vd), RegRef::v(vs1), RegRef::v(vs2)], pred),
            VMacVS {
                vd,
                vs1,
                scalar,
                pred,
                ..
            } => {
                let mut v = vec![RegRef::v(vd), RegRef::v(vs1)];
                v.extend(dup_src(scalar));
                with_pred(v, pred)
            }
            VRed { vs, pred, .. } => with_pred(vec![RegRef::v(vs)], pred),
            VCmp { vs1, vs2, .. } => vec![RegRef::v(vs1), RegRef::v(vs2)],
            PredAlu { op, ps1, ps2, .. } => match op {
                PredOp::Mov | PredOp::Not => vec![RegRef::p(ps1)],
                _ => vec![RegRef::p(ps1), RegRef::p(ps2)],
            },
            BrPred { p, .. } => vec![RegRef::p(p)],
            VExtractF { vs, .. } | VExtractX { vs, .. } => vec![RegRef::v(vs)],
            VLoad {
                base, index, pred, ..
            } => with_pred(vec![RegRef::x(base), RegRef::x(index)], pred),
            VStore {
                vs,
                base,
                index,
                pred,
                ..
            } => with_pred(vec![RegRef::v(vs), RegRef::x(base), RegRef::x(index)], pred),
            VGather {
                base, idx, pred, ..
            } => with_pred(vec![RegRef::x(base), RegRef::v(idx)], pred),
            VScatter {
                vs,
                base,
                idx,
                pred,
                ..
            } => with_pred(vec![RegRef::v(vs), RegRef::x(base), RegRef::v(idx)], pred),
            WhileLt { rs1, rs2, .. } => vec![RegRef::x(rs1), RegRef::x(rs2)],
            IncVl { rd, .. } => vec![RegRef::x(rd)],
            CntVl { .. } => Vec::new(),
            VLoadPost { base, pred, .. } => with_pred(vec![RegRef::x(base)], pred),
            VStorePost { vs, base, pred, .. } => {
                with_pred(vec![RegRef::v(vs), RegRef::x(base)], pred)
            }
        }
    }

    /// The execution resource class of this instruction.
    pub fn exec_class(&self) -> ExecClass {
        use Inst::*;
        match *self {
            Alu { op, .. } | AluImm { op, .. } => match op {
                AluOp::Mul | AluOp::Mulh => ExecClass::IntMul,
                AluOp::Div | AluOp::Rem => ExecClass::IntDiv,
                _ => ExecClass::IntAlu,
            },
            Lui { .. } => ExecClass::IntAlu,
            Ld { .. } | Fld { .. } => ExecClass::Load,
            St { .. } | Fst { .. } => ExecClass::Store,
            FAlu { op, .. } => match op {
                FpOp::Add | FpOp::Sub | FpOp::Min | FpOp::Max => ExecClass::FpAdd,
                FpOp::Mul => ExecClass::FpMul,
                FpOp::Div => ExecClass::FpDiv,
            },
            FMac { .. } => ExecClass::FpMac,
            FUn { op, .. } => match op {
                FpUnOp::Sqrt => ExecClass::FpDiv,
                _ => ExecClass::FpAdd,
            },
            FMvXF { .. } | FMvFX { .. } | FCvtFX { .. } | FCvtXF { .. } => ExecClass::FpAdd,
            Branch { .. } | Jal { .. } | SsBranch { .. } | BrPred { .. } => ExecClass::Branch,
            Halt | Nop => ExecClass::Simple,
            SsStart { .. } | SsApp { .. } | SsAppMod { .. } | SsAppInd { .. } | SsCfgMem { .. } => {
                ExecClass::StreamCfg
            }
            SsCtl { .. } => ExecClass::StreamCtl,
            SsGetVl { .. } | SsSetVl { .. } => ExecClass::IntAlu,
            PredFromValid { .. } => ExecClass::VecInt,
            VDup { .. } | VMv { .. } => ExecClass::Simple,
            VUn { op, ty, .. } => match (ty, op) {
                (VType::Fp, VUnOp::Sqrt) => ExecClass::FpDiv,
                (VType::Fp, _) => ExecClass::FpAdd,
                (VType::Int, _) => ExecClass::VecInt,
            },
            VArith { op, ty, .. } | VArithVS { op, ty, .. } => match ty {
                VType::Fp => match op {
                    VOp::Mul => ExecClass::FpMul,
                    VOp::Div => ExecClass::FpDiv,
                    _ => ExecClass::FpAdd,
                },
                VType::Int => match op {
                    VOp::Div => ExecClass::IntDiv,
                    _ => ExecClass::VecInt,
                },
            },
            VMac { ty, .. } | VMacVS { ty, .. } => match ty {
                VType::Fp => ExecClass::FpMac,
                VType::Int => ExecClass::VecInt,
            },
            VRed { ty, .. } => match ty {
                VType::Fp => ExecClass::FpAdd,
                VType::Int => ExecClass::VecInt,
            },
            VCmp { .. } | PredAlu { .. } | WhileLt { .. } => ExecClass::VecInt,
            IncVl { .. } | CntVl { .. } => ExecClass::IntAlu,
            VExtractF { .. } | VExtractX { .. } => ExecClass::Simple,
            VLoad { .. } | VGather { .. } | VLoadPost { .. } => ExecClass::Load,
            VStore { .. } | VScatter { .. } | VStorePost { .. } => ExecClass::Store,
        }
    }

    /// `true` for control-transfer instructions.
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Inst::Branch { .. } | Inst::Jal { .. } | Inst::SsBranch { .. } | Inst::BrPred { .. }
        )
    }

    /// `true` for explicit memory instructions (not streams).
    pub fn is_mem(&self) -> bool {
        matches!(self.exec_class(), ExecClass::Load | ExecClass::Store)
    }

    /// The branch target, if this is a control-transfer instruction.
    pub fn branch_target(&self) -> Option<u32> {
        match *self {
            Inst::Branch { target, .. }
            | Inst::Jal { target, .. }
            | Inst::SsBranch { target, .. }
            | Inst::BrPred { target, .. } => Some(target),
            _ => None,
        }
    }

    /// Rewrites the branch target (used by the program builder's fix-ups).
    pub(crate) fn set_branch_target(&mut self, t: u32) {
        match self {
            Inst::Branch { target, .. }
            | Inst::Jal { target, .. }
            | Inst::SsBranch { target, .. }
            | Inst::BrPred { target, .. } => *target = t,
            _ => panic!("not a branch"),
        }
    }
}

fn nonzero_x(rd: XReg) -> RegList {
    if rd == XReg::ZERO {
        Vec::new()
    } else {
        vec![RegRef::x(rd)]
    }
}

fn dup_src(s: DupSrc) -> RegList {
    match s {
        DupSrc::X(r) => {
            if r == XReg::ZERO {
                Vec::new()
            } else {
                vec![RegRef::x(r)]
            }
        }
        DupSrc::F(r) => vec![RegRef::f(r)],
    }
}

fn with_pred(mut v: RegList, pred: PReg) -> RegList {
    if pred != PReg::P0 {
        v.push(RegRef::p(pred));
    }
    v
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::asm::disassemble(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_reg_is_never_a_dest() {
        let i = Inst::AluImm {
            op: AluOp::Add,
            rd: XReg::ZERO,
            rs1: XReg::A0,
            imm: 4,
        };
        assert!(i.dests().is_empty());
    }

    #[test]
    fn vmac_reads_its_destination() {
        let i = Inst::VMac {
            ty: VType::Fp,
            width: ElemWidth::Word,
            vd: VReg::new(2),
            vs1: VReg::new(3),
            vs2: VReg::new(4),
            pred: PReg::P0,
        };
        let srcs = i.srcs();
        assert!(srcs.contains(&RegRef::v(VReg::new(2))));
        assert_eq!(i.dests(), vec![RegRef::v(VReg::new(2))]);
    }

    #[test]
    fn hardwired_p0_not_a_source() {
        let i = Inst::VArith {
            op: VOp::Add,
            ty: VType::Fp,
            width: ElemWidth::Word,
            vd: VReg::new(0),
            vs1: VReg::new(1),
            vs2: VReg::new(2),
            pred: PReg::P0,
        };
        assert_eq!(i.srcs().len(), 2);
        let ip = Inst::VArith {
            op: VOp::Add,
            ty: VType::Fp,
            width: ElemWidth::Word,
            vd: VReg::new(0),
            vs1: VReg::new(1),
            vs2: VReg::new(2),
            pred: PReg::new(3),
        };
        assert_eq!(ip.srcs().len(), 3);
    }

    #[test]
    fn exec_classes() {
        assert_eq!(
            Inst::Alu {
                op: AluOp::Mul,
                rd: XReg::A0,
                rs1: XReg::A1,
                rs2: XReg::A2
            }
            .exec_class(),
            ExecClass::IntMul
        );
        assert_eq!(
            Inst::SsStart {
                u: VReg::new(0),
                dir: Dir::Load,
                width: ElemWidth::Word,
                base: XReg::A0,
                size: XReg::A1,
                stride: XReg::A2,
                done: true
            }
            .exec_class(),
            ExecClass::StreamCfg
        );
        assert!(Inst::Halt.exec_class() == ExecClass::Simple);
    }

    #[test]
    fn branch_target_roundtrip() {
        let mut i = Inst::SsBranch {
            cond: StreamCond::NotEnd,
            u: VReg::new(0),
            target: 0,
        };
        assert!(i.is_branch());
        i.set_branch_target(42);
        assert_eq!(i.branch_target(), Some(42));
    }

    #[test]
    fn post_increment_load_writes_base() {
        let i = Inst::VLoadPost {
            vd: VReg::new(1),
            base: XReg::A0,
            width: ElemWidth::Word,
            pred: PReg::P0,
        };
        assert!(i.dests().contains(&RegRef::x(XReg::A0)));
        assert!(i.srcs().contains(&RegRef::x(XReg::A0)));
    }
}
