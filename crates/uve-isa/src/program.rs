//! Programs and the label-resolving program builder.

use crate::inst::{AluOp, Inst};
use crate::reg::XReg;
use std::collections::HashMap;
use std::fmt;

/// A complete, label-resolved instruction sequence.
///
/// The program counter is an index into the instruction list; execution
/// starts at index 0 and terminates at [`Inst::Halt`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    insts: Vec<Inst>,
    labels: HashMap<String, u32>,
}

impl Program {
    /// The program's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instructions.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` if the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Fetches the instruction at `pc`, if in range.
    pub fn fetch(&self, pc: u32) -> Option<Inst> {
        self.insts.get(pc as usize).copied()
    }

    /// Resolves a label to its instruction index.
    pub fn label(&self, name: &str) -> Option<u32> {
        self.labels.get(name).copied()
    }

    /// Iterates over `(label, index)` pairs in unspecified order.
    pub fn labels(&self) -> impl Iterator<Item = (&str, u32)> {
        self.labels.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

/// Error produced when finalizing a [`ProgramBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A branch referenced a label that was never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            ProgramError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// Builds a [`Program`], resolving symbolic branch labels.
///
/// Branch-emitting helpers take a label name; labels may be referenced
/// before they are defined. [`build`](Self::build) verifies every reference.
///
/// ```rust
/// use uve_isa::{ProgramBuilder, Inst, XReg, AluOp, BrCond};
///
/// # fn main() -> Result<(), uve_isa::ProgramError> {
/// let mut b = ProgramBuilder::new("count");
/// b.li(XReg::A0, 10);
/// b.label("loop");
/// b.push(Inst::AluImm { op: AluOp::Add, rd: XReg::A0, rs1: XReg::A0, imm: -1 });
/// b.branch(BrCond::Ne, XReg::A0, XReg::ZERO, "loop");
/// b.push(Inst::Halt);
/// let prog = b.build()?;
/// assert_eq!(prog.label("loop"), Some(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    insts: Vec<Inst>,
    labels: HashMap<String, u32>,
    fixups: Vec<(usize, String)>,
    duplicate: Option<String>,
}

impl ProgramBuilder {
    /// Starts a new program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            insts: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            duplicate: None,
        }
    }

    /// Current instruction index (where the next instruction will land).
    pub fn here(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Appends an instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// Defines `label` at the current position.
    pub fn label(&mut self, label: impl Into<String>) -> &mut Self {
        let label = label.into();
        if self.labels.insert(label.clone(), self.here()).is_some() {
            self.duplicate.get_or_insert(label);
        }
        self
    }

    /// Appends a branch-family instruction whose target will be resolved to
    /// `label` at build time. The instruction's current target is ignored.
    pub fn push_branch(&mut self, inst: Inst, label: impl Into<String>) -> &mut Self {
        debug_assert!(inst.is_branch());
        self.fixups.push((self.insts.len(), label.into()));
        self.insts.push(inst);
        self
    }

    /// Appends a scalar conditional branch to `label`.
    pub fn branch(
        &mut self,
        cond: crate::inst::BrCond,
        rs1: XReg,
        rs2: XReg,
        label: impl Into<String>,
    ) -> &mut Self {
        self.push_branch(
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target: 0,
            },
            label,
        )
    }

    /// Appends an unconditional jump to `label`.
    pub fn jump(&mut self, label: impl Into<String>) -> &mut Self {
        self.push_branch(
            Inst::Jal {
                rd: XReg::ZERO,
                target: 0,
            },
            label,
        )
    }

    /// Appends a stream-state branch to `label`.
    pub fn stream_branch(
        &mut self,
        cond: crate::inst::StreamCond,
        u: crate::reg::VReg,
        label: impl Into<String>,
    ) -> &mut Self {
        self.push_branch(Inst::SsBranch { cond, u, target: 0 }, label)
    }

    /// Appends a predicate branch to `label`.
    pub fn pred_branch(
        &mut self,
        cond: crate::inst::PredCond,
        p: crate::reg::PReg,
        label: impl Into<String>,
    ) -> &mut Self {
        self.push_branch(Inst::BrPred { cond, p, target: 0 }, label)
    }

    /// Loads an arbitrary 64-bit constant into `rd`, expanding to the
    /// minimal `lui`/`addi`/shift sequence (1–5 instructions).
    pub fn li(&mut self, rd: XReg, value: i64) -> &mut Self {
        if (-2048..2048).contains(&value) {
            self.push(Inst::AluImm {
                op: AluOp::Add,
                rd,
                rs1: XReg::ZERO,
                imm: value as i32,
            });
        } else if (-(1i64 << 31)..(1i64 << 31)).contains(&value) {
            // lui + addi, RISC-V style with sign-compensation.
            let lo = ((value << 52) >> 52) as i32; // low 12 bits, sign-extended
            let hi = ((value - lo as i64) >> 12) as i32;
            self.push(Inst::Lui { rd, imm: hi });
            if lo != 0 {
                self.push(Inst::AluImm {
                    op: AluOp::Add,
                    rd,
                    rs1: rd,
                    imm: lo,
                });
            }
        } else {
            // Build the upper half, shift, then or in the lower 32 bits.
            let hi = value >> 32;
            let lo = value & 0xffff_ffff;
            self.li(rd, hi);
            self.push(Inst::AluImm {
                op: AluOp::Sll,
                rd,
                rs1: rd,
                imm: 32,
            });
            if lo != 0 {
                // lo may exceed 12 bits; assemble it in t6 and or it in.
                let mid = (lo >> 12) & 0xf_ffff;
                let low = lo & 0xfff;
                if mid != 0 {
                    self.push(Inst::Lui {
                        rd: XReg::T6,
                        imm: mid as i32,
                    });
                    if low != 0 {
                        self.push(Inst::AluImm {
                            op: AluOp::Or,
                            rd: XReg::T6,
                            rs1: XReg::T6,
                            imm: low as i32,
                        });
                    }
                    self.push(Inst::Alu {
                        op: AluOp::Or,
                        rd,
                        rs1: rd,
                        rs2: XReg::T6,
                    });
                } else if low != 0 {
                    self.push(Inst::AluImm {
                        op: AluOp::Or,
                        rd,
                        rs1: rd,
                        imm: low as i32,
                    });
                }
            }
        }
        self
    }

    /// Appends `rd = rs` (register move).
    pub fn mv(&mut self, rd: XReg, rs: XReg) -> &mut Self {
        self.push(Inst::AluImm {
            op: AluOp::Add,
            rd,
            rs1: rs,
            imm: 0,
        })
    }

    /// Resolves labels and finalizes the program.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::UndefinedLabel`] if a branch references an
    /// unknown label, or [`ProgramError::DuplicateLabel`] for double
    /// definitions.
    pub fn build(mut self) -> Result<Program, ProgramError> {
        if let Some(l) = self.duplicate {
            return Err(ProgramError::DuplicateLabel(l));
        }
        for (idx, label) in &self.fixups {
            let target = *self
                .labels
                .get(label)
                .ok_or_else(|| ProgramError::UndefinedLabel(label.clone()))?;
            self.insts[*idx].set_branch_target(target);
        }
        Ok(Program {
            name: self.name,
            insts: self.insts,
            labels: self.labels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::BrCond;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new("t");
        b.branch(BrCond::Eq, XReg::A0, XReg::ZERO, "end");
        b.label("loop");
        b.push(Inst::Nop);
        b.branch(BrCond::Ne, XReg::A0, XReg::ZERO, "loop");
        b.label("end");
        b.push(Inst::Halt);
        let p = b.build().unwrap();
        assert_eq!(p.fetch(0).unwrap().branch_target(), Some(3));
        assert_eq!(p.fetch(2).unwrap().branch_target(), Some(1));
        assert_eq!(p.label("end"), Some(3));
    }

    #[test]
    fn undefined_label_errors() {
        let mut b = ProgramBuilder::new("t");
        b.jump("nowhere");
        assert_eq!(
            b.build().unwrap_err(),
            ProgramError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    fn duplicate_label_errors() {
        let mut b = ProgramBuilder::new("t");
        b.label("a");
        b.push(Inst::Nop);
        b.label("a");
        assert_eq!(
            b.build().unwrap_err(),
            ProgramError::DuplicateLabel("a".into())
        );
    }

    #[test]
    fn li_small() {
        let mut b = ProgramBuilder::new("t");
        b.li(XReg::A0, 42);
        let p = b.build().unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn li_medium_uses_lui() {
        let mut b = ProgramBuilder::new("t");
        b.li(XReg::A0, 0x12345);
        let p = b.build().unwrap();
        assert!(p.len() >= 2);
    }

    #[test]
    fn program_accessors() {
        let mut b = ProgramBuilder::new("demo");
        b.push(Inst::Halt);
        let p = b.build().unwrap();
        assert_eq!(p.name(), "demo");
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        assert!(p.fetch(1).is_none());
    }
}
