//! Textual assembler and disassembler.
//!
//! The syntax follows the paper's mnemonics: stream configuration uses the
//! `ss.` prefix, stream/vector operations the `so.` prefix, and the scalar
//! subset is RISC-V-flavoured. [`assemble`] and [`disassemble_program`]
//! round-trip.

use crate::inst::*;
use crate::program::{Program, ProgramBuilder, ProgramError};
use crate::reg::{FReg, PReg, VReg, XReg};
use std::fmt;
use uve_stream::{Behaviour, ElemWidth, IndirectBehaviour, Param};

/// Error raised while assembling text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// Unknown mnemonic at the given line.
    UnknownMnemonic {
        /// 1-based source line.
        line: usize,
        /// The unrecognized mnemonic.
        mnemonic: String,
    },
    /// Malformed operand list.
    BadOperands {
        /// 1-based source line.
        line: usize,
        /// What was wrong.
        detail: String,
    },
    /// Label error detected at build time.
    Program(ProgramError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnknownMnemonic { line, mnemonic } => {
                write!(f, "line {line}: unknown mnemonic `{mnemonic}`")
            }
            AsmError::BadOperands { line, detail } => {
                write!(f, "line {line}: bad operands: {detail}")
            }
            AsmError::Program(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AsmError {}

impl From<ProgramError> for AsmError {
    fn from(e: ProgramError) -> Self {
        AsmError::Program(e)
    }
}

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Mul => "mul",
        AluOp::Mulh => "mulh",
        AluOp::Div => "div",
        AluOp::Rem => "rem",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Sll => "sll",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
        AluOp::Min => "min",
        AluOp::Max => "max",
    }
}

fn alu_from(name: &str) -> Option<AluOp> {
    Some(match name {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "mulh" => AluOp::Mulh,
        "div" => AluOp::Div,
        "rem" => AluOp::Rem,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "sll" => AluOp::Sll,
        "srl" => AluOp::Srl,
        "sra" => AluOp::Sra,
        "slt" => AluOp::Slt,
        "sltu" => AluOp::Sltu,
        "min" => AluOp::Min,
        "max" => AluOp::Max,
        _ => return None,
    })
}

fn fp_name(op: FpOp) -> &'static str {
    match op {
        FpOp::Add => "fadd",
        FpOp::Sub => "fsub",
        FpOp::Mul => "fmul",
        FpOp::Div => "fdiv",
        FpOp::Min => "fmin",
        FpOp::Max => "fmax",
    }
}

fn vop_name(op: VOp) -> &'static str {
    match op {
        VOp::Add => "add",
        VOp::Sub => "sub",
        VOp::Mul => "mul",
        VOp::Div => "div",
        VOp::Min => "min",
        VOp::Max => "max",
        VOp::And => "and",
        VOp::Or => "or",
        VOp::Xor => "xor",
        VOp::Shl => "shl",
        VOp::Shr => "shr",
    }
}

fn vop_from(name: &str) -> Option<VOp> {
    Some(match name {
        "add" => VOp::Add,
        "sub" => VOp::Sub,
        "mul" => VOp::Mul,
        "div" => VOp::Div,
        "min" => VOp::Min,
        "max" => VOp::Max,
        "and" => VOp::And,
        "or" => VOp::Or,
        "xor" => VOp::Xor,
        "shl" => VOp::Shl,
        "shr" => VOp::Shr,
        _ => return None,
    })
}

fn ty_name(ty: VType) -> &'static str {
    match ty {
        VType::Int => "sg",
        VType::Fp => "fp",
    }
}

fn cond_name(c: BrCond) -> &'static str {
    match c {
        BrCond::Eq => "beq",
        BrCond::Ne => "bne",
        BrCond::Lt => "blt",
        BrCond::Ge => "bge",
        BrCond::Ltu => "bltu",
        BrCond::Geu => "bgeu",
    }
}

fn param_name(p: Param) -> &'static str {
    match p {
        Param::Offset => "off",
        Param::Size => "size",
        Param::Stride => "stride",
    }
}

fn param_from(s: &str) -> Option<Param> {
    Some(match s {
        "off" => Param::Offset,
        "size" => Param::Size,
        "stride" => Param::Stride,
        _ => return None,
    })
}

/// Renders one instruction in assembly syntax (branch targets printed as
/// absolute instruction indices).
pub fn disassemble(i: &Inst) -> String {
    use Inst::*;
    match *i {
        Alu { op, rd, rs1, rs2 } => format!("{} {rd}, {rs1}, {rs2}", alu_name(op)),
        AluImm { op, rd, rs1, imm } => format!("{}i {rd}, {rs1}, {imm}", alu_name(op)),
        Lui { rd, imm } => format!("lui {rd}, {imm}"),
        Ld {
            rd,
            base,
            off,
            width,
        } => format!("ld.{width} {rd}, {off}({base})"),
        St {
            src,
            base,
            off,
            width,
        } => format!("st.{width} {src}, {off}({base})"),
        Fld {
            fd,
            base,
            off,
            width,
        } => format!("fld.{width} {fd}, {off}({base})"),
        Fst {
            src,
            base,
            off,
            width,
        } => format!("fst.{width} {src}, {off}({base})"),
        FAlu {
            op,
            width,
            fd,
            fs1,
            fs2,
        } => {
            format!("{}.{width} {fd}, {fs1}, {fs2}", fp_name(op))
        }
        FMac {
            width,
            fd,
            fs1,
            fs2,
            fs3,
        } => format!("fmadd.{width} {fd}, {fs1}, {fs2}, {fs3}"),
        FUn { op, width, fd, fs } => {
            let n = match op {
                FpUnOp::Sqrt => "fsqrt",
                FpUnOp::Abs => "fabs",
                FpUnOp::Neg => "fneg",
                FpUnOp::Mv => "fmv",
            };
            format!("{n}.{width} {fd}, {fs}")
        }
        FMvXF { rd, fs } => format!("fmv.x.f {rd}, {fs}"),
        FMvFX { fd, rs } => format!("fmv.f.x {fd}, {rs}"),
        FCvtFX { width, fd, rs } => format!("fcvt.f.x.{width} {fd}, {rs}"),
        FCvtXF { width, rd, fs } => format!("fcvt.x.f.{width} {rd}, {fs}"),
        Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            format!("{} {rs1}, {rs2}, {target}", cond_name(cond))
        }
        Jal { rd, target } => format!("jal {rd}, {target}"),
        Halt => "halt".into(),
        Nop => "nop".into(),
        SsStart {
            u,
            dir,
            width,
            base,
            size,
            stride,
            done,
        } => {
            let d = match dir {
                Dir::Load => "ld",
                Dir::Store => "st",
            };
            let sta = if done { "" } else { ".sta" };
            format!("ss.{d}.{width}{sta} {u}, {base}, {size}, {stride}")
        }
        SsApp {
            u,
            offset,
            size,
            stride,
            end,
        } => {
            let m = if end { "ss.end" } else { "ss.app" };
            format!("{m} {u}, {offset}, {size}, {stride}")
        }
        SsAppMod {
            u,
            target,
            behaviour,
            disp,
            count,
            end,
        } => {
            let m = if end { "ss.end" } else { "ss.app" };
            let b = match behaviour {
                Behaviour::Add => "add",
                Behaviour::Sub => "sub",
            };
            format!("{m}.mod.{}.{b} {u}, {disp}, {count}", param_name(target))
        }
        SsAppInd {
            u,
            target,
            behaviour,
            origin,
            end,
        } => {
            let m = if end { "ss.end" } else { "ss.app" };
            let b = match behaviour {
                IndirectBehaviour::SetAdd => "setadd",
                IndirectBehaviour::SetSub => "setsub",
                IndirectBehaviour::SetValue => "setval",
            };
            format!("{m}.ind.{}.{b} {u}, {origin}", param_name(target))
        }
        SsCtl { op, u } => {
            let n = match op {
                StreamCtl::Suspend => "ss.suspend",
                StreamCtl::Resume => "ss.resume",
                StreamCtl::Stop => "ss.stop",
            };
            format!("{n} {u}")
        }
        SsCfgMem { u, level } => {
            let l = match level {
                MemLevel::L1 => "l1",
                MemLevel::L2 => "l2",
                MemLevel::Mem => "dram",
            };
            format!("so.cfg.mem.{l} {u}")
        }
        SsBranch { cond, u, target } => {
            let c = match cond {
                StreamCond::NotEnd => "so.b.nend".to_string(),
                StreamCond::End => "so.b.end".to_string(),
                StreamCond::DimNotEnd(k) => format!("so.b.dim{k}.nend"),
                StreamCond::DimEnd(k) => format!("so.b.dim{k}.end"),
            };
            format!("{c} {u}, {target}")
        }
        SsGetVl { rd, width } => format!("ss.getvl.{width} {rd}"),
        SsSetVl { rd, rs, width } => format!("ss.setvl.{width} {rd}, {rs}"),
        PredFromValid { pd, vs } => format!("so.p.fromvalid {pd}, {vs}"),
        VDup { vd, src, width, ty } => match src {
            DupSrc::X(r) => format!("so.v.dup.{width}.{} {vd}, {r}", ty_name(ty)),
            DupSrc::F(r) => format!("so.v.dup.{width}.{} {vd}, {r}", ty_name(ty)),
        },
        VMv { vd, vs } => format!("so.v.mv {vd}, {vs}"),
        VUn {
            op,
            ty,
            width,
            vd,
            vs,
            pred,
        } => {
            let n = match op {
                VUnOp::Abs => "abs",
                VUnOp::Neg => "neg",
                VUnOp::Sqrt => "sqrt",
                VUnOp::Mv => "mvp",
            };
            format!("so.a.{n}.{width}.{} {vd}, {vs}, {pred}", ty_name(ty))
        }
        VArith {
            op,
            ty,
            width,
            vd,
            vs1,
            vs2,
            pred,
        } => format!(
            "so.a.{}.{width}.{} {vd}, {vs1}, {vs2}, {pred}",
            vop_name(op),
            ty_name(ty)
        ),
        VArithVS {
            op,
            ty,
            width,
            vd,
            vs1,
            scalar,
            pred,
        } => {
            let s = match scalar {
                DupSrc::X(r) => r.to_string(),
                DupSrc::F(r) => r.to_string(),
            };
            format!(
                "so.a.{}.vs.{width}.{} {vd}, {vs1}, {s}, {pred}",
                vop_name(op),
                ty_name(ty)
            )
        }
        VMac {
            ty,
            width,
            vd,
            vs1,
            vs2,
            pred,
        } => format!(
            "so.a.mac.{width}.{} {vd}, {vs1}, {vs2}, {pred}",
            ty_name(ty)
        ),
        VMacVS {
            ty,
            width,
            vd,
            vs1,
            scalar,
            pred,
        } => {
            let s = match scalar {
                DupSrc::X(r) => r.to_string(),
                DupSrc::F(r) => r.to_string(),
            };
            format!(
                "so.a.mac.vs.{width}.{} {vd}, {vs1}, {s}, {pred}",
                ty_name(ty)
            )
        }
        VRed {
            op,
            ty,
            width,
            vd,
            vs,
            pred,
        } => {
            let n = match op {
                HorizOp::Add => "hadd",
                HorizOp::Max => "hmax",
                HorizOp::Min => "hmin",
            };
            format!("so.a.{n}.{width}.{} {vd}, {vs}, {pred}", ty_name(ty))
        }
        VCmp {
            op,
            ty,
            width,
            pd,
            vs1,
            vs2,
        } => {
            let n = match op {
                VCmpOp::Eq => "eq",
                VCmpOp::Ne => "ne",
                VCmpOp::Lt => "lt",
                VCmpOp::Le => "le",
                VCmpOp::Gt => "gt",
                VCmpOp::Ge => "ge",
            };
            format!("so.p.{n}.{width}.{} {pd}, {vs1}, {vs2}", ty_name(ty))
        }
        PredAlu { op, pd, ps1, ps2 } => match op {
            PredOp::Mov => format!("so.p.mov {pd}, {ps1}"),
            PredOp::Not => format!("so.p.not {pd}, {ps1}"),
            PredOp::And => format!("so.p.and {pd}, {ps1}, {ps2}"),
            PredOp::Or => format!("so.p.or {pd}, {ps1}, {ps2}"),
        },
        BrPred { cond, p, target } => {
            let n = match cond {
                PredCond::First => "so.b.pfirst",
                PredCond::Any => "so.b.pany",
                PredCond::None => "so.b.pnone",
            };
            format!("{n} {p}, {target}")
        }
        VExtractF {
            fd,
            vs,
            lane,
            width,
        } => {
            format!("so.v.extr.f.{width} {fd}, {vs}[{lane}]")
        }
        VExtractX {
            rd,
            vs,
            lane,
            width,
        } => {
            format!("so.v.extr.x.{width} {rd}, {vs}[{lane}]")
        }
        VLoad {
            vd,
            base,
            index,
            width,
            pred,
        } => {
            format!("vl1.{width} {vd}, {base}, {index}, {pred}")
        }
        VStore {
            vs,
            base,
            index,
            width,
            pred,
        } => {
            format!("vs1.{width} {vs}, {base}, {index}, {pred}")
        }
        VGather {
            vd,
            base,
            idx,
            width,
            pred,
        } => {
            format!("vgather.{width} {vd}, {base}, {idx}, {pred}")
        }
        VScatter {
            vs,
            base,
            idx,
            width,
            pred,
        } => {
            format!("vscatter.{width} {vs}, {base}, {idx}, {pred}")
        }
        WhileLt {
            pd,
            rs1,
            rs2,
            width,
        } => format!("whilelt.{width} {pd}, {rs1}, {rs2}"),
        IncVl { rd, width } => format!("incvl.{width} {rd}"),
        CntVl { rd, width } => format!("cntvl.{width} {rd}"),
        VLoadPost {
            vd,
            base,
            width,
            pred,
        } => {
            format!("ss.load.{width} {vd}, {base}, {pred}")
        }
        VStorePost {
            vs,
            base,
            width,
            pred,
        } => {
            format!("ss.store.{width} {vs}, {base}, {pred}")
        }
    }
}

/// Renders a whole program, emitting labels.
pub fn disassemble_program(p: &Program) -> String {
    let mut by_index: Vec<(u32, &str)> = p.labels().map(|(l, i)| (i, l)).collect();
    by_index.sort();
    let mut out = String::new();
    for (pc, inst) in p.insts().iter().enumerate() {
        for (i, l) in &by_index {
            if *i == pc as u32 {
                out.push_str(l);
                out.push_str(":\n");
            }
        }
        out.push_str("    ");
        out.push_str(&disassemble(inst));
        out.push('\n');
    }
    out
}

struct Parser<'a> {
    line: usize,
    ops: Vec<&'a str>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, detail: impl Into<String>) -> AsmError {
        AsmError::BadOperands {
            line: self.line,
            detail: detail.into(),
        }
    }

    fn next(&mut self) -> Result<&'a str, AsmError> {
        let t = self
            .ops
            .get(self.pos)
            .copied()
            .ok_or_else(|| self.err("missing operand"))?;
        self.pos += 1;
        Ok(t)
    }

    fn x(&mut self) -> Result<XReg, AsmError> {
        let t = self.next()?;
        parse_reg(t, 'x')
            .and_then(XReg::try_new)
            .ok_or_else(|| self.err(format!("expected x register, got `{t}`")))
    }

    fn f(&mut self) -> Result<FReg, AsmError> {
        let t = self.next()?;
        parse_reg(t, 'f')
            .and_then(FReg::try_new)
            .ok_or_else(|| self.err(format!("expected f register, got `{t}`")))
    }

    fn v(&mut self) -> Result<VReg, AsmError> {
        let t = self.next()?;
        parse_reg(t, 'u')
            .and_then(VReg::try_new)
            .ok_or_else(|| self.err(format!("expected u register, got `{t}`")))
    }

    fn p(&mut self) -> Result<PReg, AsmError> {
        let t = self.next()?;
        parse_reg(t, 'p')
            .and_then(PReg::try_new)
            .ok_or_else(|| self.err(format!("expected p register, got `{t}`")))
    }

    fn imm(&mut self) -> Result<i64, AsmError> {
        let t = self.next()?;
        parse_imm(t).ok_or_else(|| self.err(format!("expected immediate, got `{t}`")))
    }

    /// `off(base)` address syntax.
    fn addr(&mut self) -> Result<(i32, XReg), AsmError> {
        let t = self.next()?;
        let open = t.find('(').ok_or_else(|| self.err("expected off(base)"))?;
        let close = t.rfind(')').ok_or_else(|| self.err("expected off(base)"))?;
        let off = parse_imm(&t[..open]).ok_or_else(|| self.err("bad offset"))? as i32;
        let base = parse_reg(&t[open + 1..close], 'x')
            .and_then(XReg::try_new)
            .ok_or_else(|| self.err("bad base register"))?;
        Ok((off, base))
    }

    /// `uN[lane]` syntax.
    fn v_lane(&mut self) -> Result<(VReg, u8), AsmError> {
        let t = self.next()?;
        let open = t.find('[').ok_or_else(|| self.err("expected u[lane]"))?;
        let close = t.rfind(']').ok_or_else(|| self.err("expected u[lane]"))?;
        let v = parse_reg(&t[..open], 'u')
            .and_then(VReg::try_new)
            .ok_or_else(|| self.err("bad u register"))?;
        let lane = t[open + 1..close]
            .parse::<u8>()
            .map_err(|_| self.err("bad lane"))?;
        Ok((v, lane))
    }

    fn dup_src(&mut self) -> Result<DupSrc, AsmError> {
        let t = self.next()?;
        if let Some(n) = parse_reg(t, 'x') {
            return XReg::try_new(n)
                .map(DupSrc::X)
                .ok_or_else(|| self.err("bad x register"));
        }
        if let Some(n) = parse_reg(t, 'f') {
            return FReg::try_new(n)
                .map(DupSrc::F)
                .ok_or_else(|| self.err("bad f register"));
        }
        Err(self.err(format!("expected x/f register, got `{t}`")))
    }

    /// Branch target: either a number (absolute) or a label.
    fn target(&mut self) -> Result<Target<'a>, AsmError> {
        let t = self.next()?;
        Ok(match parse_imm(t) {
            Some(v) => Target::Abs(v as u32),
            None => Target::Label(t),
        })
    }
}

enum Target<'a> {
    Abs(u32),
    Label(&'a str),
}

fn parse_reg(t: &str, prefix: char) -> Option<u8> {
    let t = t.trim();
    let rest = t.strip_prefix(prefix)?;
    rest.parse::<u8>().ok()
}

fn parse_imm(t: &str) -> Option<i64> {
    let t = t.trim();
    if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("-0x")) {
        let v = i64::from_str_radix(h, 16).ok()?;
        return Some(if t.starts_with('-') { -v } else { v });
    }
    t.parse::<i64>().ok()
}

fn width_of(s: &str) -> Option<ElemWidth> {
    if s.len() == 1 {
        ElemWidth::from_suffix(s.chars().next().unwrap())
    } else {
        None
    }
}

/// Assembles a text program.
///
/// One instruction per line; `label:` lines (or prefixes) define labels; `;`
/// and `#` start comments.
///
/// # Errors
///
/// Returns the first syntax or label error encountered.
pub fn assemble(name: &str, text: &str) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::new(name);
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let mut s = raw;
        if let Some(i) = s.find(';') {
            s = &s[..i];
        }
        if let Some(i) = s.find('#') {
            s = &s[..i];
        }
        let mut s = s.trim();
        // Leading labels (possibly several).
        while let Some(colon) = s.find(':') {
            let (label, rest) = s.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            b.label(label);
            s = rest[1..].trim();
        }
        if s.is_empty() {
            continue;
        }
        let (mnemonic, rest) = match s.find(char::is_whitespace) {
            Some(i) => (&s[..i], &s[i..]),
            None => (s, ""),
        };
        let ops: Vec<&str> = rest
            .split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .collect();
        let mut p = Parser { line, ops, pos: 0 };
        parse_inst(&mut b, mnemonic, &mut p)?;
    }
    Ok(b.build()?)
}

fn push_branch(b: &mut ProgramBuilder, inst: Inst, t: Target<'_>) {
    match t {
        Target::Abs(a) => {
            let mut i = inst;
            i.set_branch_target(a);
            b.push(i);
        }
        Target::Label(l) => {
            b.push_branch(inst, l);
        }
    }
}

#[allow(clippy::too_many_lines)]
fn parse_inst(b: &mut ProgramBuilder, m: &str, p: &mut Parser<'_>) -> Result<(), AsmError> {
    let parts: Vec<&str> = m.split('.').collect();
    let unknown = || AsmError::UnknownMnemonic {
        line: p.line,
        mnemonic: m.to_string(),
    };
    match parts.as_slice() {
        ["halt"] => {
            b.push(Inst::Halt);
        }
        ["nop"] => {
            b.push(Inst::Nop);
        }
        ["lui"] => {
            let i = Inst::Lui {
                rd: p.x()?,
                imm: p.imm()? as i32,
            };
            b.push(i);
        }
        ["jal"] => {
            let rd = p.x()?;
            let t = p.target()?;
            push_branch(b, Inst::Jal { rd, target: 0 }, t);
        }
        ["li"] => {
            let rd = p.x()?;
            let v = p.imm()?;
            b.li(rd, v);
        }
        ["beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu"] => {
            let cond = match parts[0] {
                "beq" => BrCond::Eq,
                "bne" => BrCond::Ne,
                "blt" => BrCond::Lt,
                "bge" => BrCond::Ge,
                "bltu" => BrCond::Ltu,
                _ => BrCond::Geu,
            };
            let rs1 = p.x()?;
            let rs2 = p.x()?;
            let t = p.target()?;
            push_branch(
                b,
                Inst::Branch {
                    cond,
                    rs1,
                    rs2,
                    target: 0,
                },
                t,
            );
        }
        ["ld", w] | ["st", w] if width_of(w).is_some() => {
            let width = width_of(w).unwrap();
            if parts[0] == "ld" {
                let rd = p.x()?;
                let (off, base) = p.addr()?;
                b.push(Inst::Ld {
                    rd,
                    base,
                    off,
                    width,
                });
            } else {
                let src = p.x()?;
                let (off, base) = p.addr()?;
                b.push(Inst::St {
                    src,
                    base,
                    off,
                    width,
                });
            }
        }
        ["fld", w] | ["fst", w] if width_of(w).is_some() => {
            let width = width_of(w).unwrap();
            if parts[0] == "fld" {
                let fd = p.f()?;
                let (off, base) = p.addr()?;
                b.push(Inst::Fld {
                    fd,
                    base,
                    off,
                    width,
                });
            } else {
                let src = p.f()?;
                let (off, base) = p.addr()?;
                b.push(Inst::Fst {
                    src,
                    base,
                    off,
                    width,
                });
            }
        }
        ["fmadd", w] if width_of(w).is_some() => {
            let width = width_of(w).unwrap();
            b.push(Inst::FMac {
                width,
                fd: p.f()?,
                fs1: p.f()?,
                fs2: p.f()?,
                fs3: p.f()?,
            });
        }
        ["fadd" | "fsub" | "fmul" | "fdiv" | "fmin" | "fmax", w] if width_of(w).is_some() => {
            let op = match parts[0] {
                "fadd" => FpOp::Add,
                "fsub" => FpOp::Sub,
                "fmul" => FpOp::Mul,
                "fdiv" => FpOp::Div,
                "fmin" => FpOp::Min,
                _ => FpOp::Max,
            };
            b.push(Inst::FAlu {
                op,
                width: width_of(w).unwrap(),
                fd: p.f()?,
                fs1: p.f()?,
                fs2: p.f()?,
            });
        }
        ["fsqrt" | "fabs" | "fneg" | "fmv", w] if width_of(w).is_some() => {
            let op = match parts[0] {
                "fsqrt" => FpUnOp::Sqrt,
                "fabs" => FpUnOp::Abs,
                "fneg" => FpUnOp::Neg,
                _ => FpUnOp::Mv,
            };
            b.push(Inst::FUn {
                op,
                width: width_of(w).unwrap(),
                fd: p.f()?,
                fs: p.f()?,
            });
        }
        ["fmv", "x", "f"] => {
            let i = Inst::FMvXF {
                rd: p.x()?,
                fs: p.f()?,
            };
            b.push(i);
        }
        ["fmv", "f", "x"] => {
            let i = Inst::FMvFX {
                fd: p.f()?,
                rs: p.x()?,
            };
            b.push(i);
        }
        ["fcvt", "f", "x", w] if width_of(w).is_some() => {
            let i = Inst::FCvtFX {
                width: width_of(w).unwrap(),
                fd: p.f()?,
                rs: p.x()?,
            };
            b.push(i);
        }
        ["fcvt", "x", "f", w] if width_of(w).is_some() => {
            let i = Inst::FCvtXF {
                width: width_of(w).unwrap(),
                rd: p.x()?,
                fs: p.f()?,
            };
            b.push(i);
        }
        // ---- stream configuration ----
        ["ss", d @ ("ld" | "st"), w, rest @ ..] if width_of(w).is_some() => {
            let done = !matches!(rest, ["sta"]);
            if !rest.is_empty() && rest != ["sta"] {
                return Err(unknown());
            }
            let dir = if *d == "ld" { Dir::Load } else { Dir::Store };
            b.push(Inst::SsStart {
                u: p.v()?,
                dir,
                width: width_of(w).unwrap(),
                base: p.x()?,
                size: p.x()?,
                stride: p.x()?,
                done,
            });
        }
        ["ss", e @ ("app" | "end")] => {
            b.push(Inst::SsApp {
                u: p.v()?,
                offset: p.x()?,
                size: p.x()?,
                stride: p.x()?,
                end: *e == "end",
            });
        }
        ["ss", e @ ("app" | "end"), "mod", t, bh] => {
            let target = param_from(t).ok_or_else(unknown)?;
            let behaviour = match *bh {
                "add" => Behaviour::Add,
                "sub" => Behaviour::Sub,
                _ => return Err(unknown()),
            };
            b.push(Inst::SsAppMod {
                u: p.v()?,
                target,
                behaviour,
                disp: p.x()?,
                count: p.x()?,
                end: *e == "end",
            });
        }
        ["ss", e @ ("app" | "end"), "ind", t, bh] => {
            let target = param_from(t).ok_or_else(unknown)?;
            let behaviour = match *bh {
                "setadd" => IndirectBehaviour::SetAdd,
                "setsub" => IndirectBehaviour::SetSub,
                "setval" => IndirectBehaviour::SetValue,
                _ => return Err(unknown()),
            };
            b.push(Inst::SsAppInd {
                u: p.v()?,
                target,
                behaviour,
                origin: p.v()?,
                end: *e == "end",
            });
        }
        ["ss", "suspend" | "resume" | "stop"] => {
            let op = match parts[1] {
                "suspend" => StreamCtl::Suspend,
                "resume" => StreamCtl::Resume,
                _ => StreamCtl::Stop,
            };
            b.push(Inst::SsCtl { op, u: p.v()? });
        }
        ["ss", "getvl", w] if width_of(w).is_some() => {
            b.push(Inst::SsGetVl {
                rd: p.x()?,
                width: width_of(w).unwrap(),
            });
        }
        ["ss", "setvl", w] if width_of(w).is_some() => {
            b.push(Inst::SsSetVl {
                rd: p.x()?,
                rs: p.x()?,
                width: width_of(w).unwrap(),
            });
        }
        ["so", "p", "fromvalid"] => {
            b.push(Inst::PredFromValid {
                pd: p.p()?,
                vs: p.v()?,
            });
        }
        ["ss", "load", w] if width_of(w).is_some() => {
            b.push(Inst::VLoadPost {
                vd: p.v()?,
                base: p.x()?,
                width: width_of(w).unwrap(),
                pred: p.p()?,
            });
        }
        ["ss", "store", w] if width_of(w).is_some() => {
            b.push(Inst::VStorePost {
                vs: p.v()?,
                base: p.x()?,
                width: width_of(w).unwrap(),
                pred: p.p()?,
            });
        }
        ["so", "cfg", "mem", l] => {
            let level = match *l {
                "l1" => MemLevel::L1,
                "l2" => MemLevel::L2,
                "dram" => MemLevel::Mem,
                _ => return Err(unknown()),
            };
            b.push(Inst::SsCfgMem { u: p.v()?, level });
        }
        // ---- stream / predicate branches ----
        ["so", "b", "nend" | "end"] => {
            let cond = if parts[2] == "nend" {
                StreamCond::NotEnd
            } else {
                StreamCond::End
            };
            let u = p.v()?;
            let t = p.target()?;
            push_branch(b, Inst::SsBranch { cond, u, target: 0 }, t);
        }
        ["so", "b", dim, e @ ("nend" | "end")] if dim.starts_with("dim") => {
            let k: u8 = dim[3..].parse().map_err(|_| unknown())?;
            let cond = if *e == "nend" {
                StreamCond::DimNotEnd(k)
            } else {
                StreamCond::DimEnd(k)
            };
            let u = p.v()?;
            let t = p.target()?;
            push_branch(b, Inst::SsBranch { cond, u, target: 0 }, t);
        }
        ["so", "b", c @ ("pfirst" | "pany" | "pnone")] => {
            let cond = match *c {
                "pfirst" => PredCond::First,
                "pany" => PredCond::Any,
                _ => PredCond::None,
            };
            let pr = p.p()?;
            let t = p.target()?;
            push_branch(
                b,
                Inst::BrPred {
                    cond,
                    p: pr,
                    target: 0,
                },
                t,
            );
        }
        // ---- vector data processing ----
        ["so", "v", "dup", w, ty] if width_of(w).is_some() => {
            let ty = match *ty {
                "fp" => VType::Fp,
                "sg" => VType::Int,
                _ => return Err(unknown()),
            };
            b.push(Inst::VDup {
                vd: p.v()?,
                src: p.dup_src()?,
                width: width_of(w).unwrap(),
                ty,
            });
        }
        ["so", "v", "mv"] => {
            b.push(Inst::VMv {
                vd: p.v()?,
                vs: p.v()?,
            });
        }
        ["so", "v", "extr", "f", w] if width_of(w).is_some() => {
            let fd = p.f()?;
            let (vs, lane) = p.v_lane()?;
            b.push(Inst::VExtractF {
                fd,
                vs,
                lane,
                width: width_of(w).unwrap(),
            });
        }
        ["so", "v", "extr", "x", w] if width_of(w).is_some() => {
            let rd = p.x()?;
            let (vs, lane) = p.v_lane()?;
            b.push(Inst::VExtractX {
                rd,
                vs,
                lane,
                width: width_of(w).unwrap(),
            });
        }
        ["so", "a", "mac", "vs", w, ty] if width_of(w).is_some() => {
            let ty = vtype(ty).ok_or_else(unknown)?;
            b.push(Inst::VMacVS {
                ty,
                width: width_of(w).unwrap(),
                vd: p.v()?,
                vs1: p.v()?,
                scalar: p.dup_src()?,
                pred: p.p()?,
            });
        }
        ["so", "a", "mac", w, ty] if width_of(w).is_some() => {
            let ty = vtype(ty).ok_or_else(unknown)?;
            b.push(Inst::VMac {
                ty,
                width: width_of(w).unwrap(),
                vd: p.v()?,
                vs1: p.v()?,
                vs2: p.v()?,
                pred: p.p()?,
            });
        }
        ["so", "a", h @ ("hadd" | "hmax" | "hmin"), w, ty] if width_of(w).is_some() => {
            let op = match *h {
                "hadd" => HorizOp::Add,
                "hmax" => HorizOp::Max,
                _ => HorizOp::Min,
            };
            let ty = vtype(ty).ok_or_else(unknown)?;
            b.push(Inst::VRed {
                op,
                ty,
                width: width_of(w).unwrap(),
                vd: p.v()?,
                vs: p.v()?,
                pred: p.p()?,
            });
        }
        ["so", "a", u @ ("abs" | "neg" | "sqrt" | "mvp"), w, ty] if width_of(w).is_some() => {
            let op = match *u {
                "abs" => VUnOp::Abs,
                "neg" => VUnOp::Neg,
                "sqrt" => VUnOp::Sqrt,
                _ => VUnOp::Mv,
            };
            let ty = vtype(ty).ok_or_else(unknown)?;
            b.push(Inst::VUn {
                op,
                ty,
                width: width_of(w).unwrap(),
                vd: p.v()?,
                vs: p.v()?,
                pred: p.p()?,
            });
        }
        ["so", "a", op, "vs", w, ty] if vop_from(op).is_some() && width_of(w).is_some() => {
            let ty = vtype(ty).ok_or_else(unknown)?;
            b.push(Inst::VArithVS {
                op: vop_from(op).unwrap(),
                ty,
                width: width_of(w).unwrap(),
                vd: p.v()?,
                vs1: p.v()?,
                scalar: p.dup_src()?,
                pred: p.p()?,
            });
        }
        ["so", "a", op, w, ty] if vop_from(op).is_some() && width_of(w).is_some() => {
            let ty = vtype(ty).ok_or_else(unknown)?;
            b.push(Inst::VArith {
                op: vop_from(op).unwrap(),
                ty,
                width: width_of(w).unwrap(),
                vd: p.v()?,
                vs1: p.v()?,
                vs2: p.v()?,
                pred: p.p()?,
            });
        }
        ["so", "p", "mov" | "not"] => {
            let op = if parts[2] == "mov" {
                PredOp::Mov
            } else {
                PredOp::Not
            };
            let pd = p.p()?;
            let ps1 = p.p()?;
            b.push(Inst::PredAlu {
                op,
                pd,
                ps1,
                ps2: PReg::P0,
            });
        }
        ["so", "p", "and" | "or"] => {
            let op = if parts[2] == "and" {
                PredOp::And
            } else {
                PredOp::Or
            };
            b.push(Inst::PredAlu {
                op,
                pd: p.p()?,
                ps1: p.p()?,
                ps2: p.p()?,
            });
        }
        ["so", "p", c, w, ty] if width_of(w).is_some() => {
            let op = match *c {
                "eq" => VCmpOp::Eq,
                "ne" => VCmpOp::Ne,
                "lt" => VCmpOp::Lt,
                "le" => VCmpOp::Le,
                "gt" => VCmpOp::Gt,
                "ge" => VCmpOp::Ge,
                _ => return Err(unknown()),
            };
            let ty = vtype(ty).ok_or_else(unknown)?;
            b.push(Inst::VCmp {
                op,
                ty,
                width: width_of(w).unwrap(),
                pd: p.p()?,
                vs1: p.v()?,
                vs2: p.v()?,
            });
        }
        // ---- SVE-like ----
        ["vl1", w] if width_of(w).is_some() => {
            b.push(Inst::VLoad {
                vd: p.v()?,
                base: p.x()?,
                index: p.x()?,
                width: width_of(w).unwrap(),
                pred: p.p()?,
            });
        }
        ["vs1", w] if width_of(w).is_some() => {
            b.push(Inst::VStore {
                vs: p.v()?,
                base: p.x()?,
                index: p.x()?,
                width: width_of(w).unwrap(),
                pred: p.p()?,
            });
        }
        ["vgather", w] if width_of(w).is_some() => {
            b.push(Inst::VGather {
                vd: p.v()?,
                base: p.x()?,
                idx: p.v()?,
                width: width_of(w).unwrap(),
                pred: p.p()?,
            });
        }
        ["vscatter", w] if width_of(w).is_some() => {
            b.push(Inst::VScatter {
                vs: p.v()?,
                base: p.x()?,
                idx: p.v()?,
                width: width_of(w).unwrap(),
                pred: p.p()?,
            });
        }
        ["whilelt", w] if width_of(w).is_some() => {
            b.push(Inst::WhileLt {
                pd: p.p()?,
                rs1: p.x()?,
                rs2: p.x()?,
                width: width_of(w).unwrap(),
            });
        }
        ["incvl", w] if width_of(w).is_some() => {
            b.push(Inst::IncVl {
                rd: p.x()?,
                width: width_of(w).unwrap(),
            });
        }
        ["cntvl", w] if width_of(w).is_some() => {
            b.push(Inst::CntVl {
                rd: p.x()?,
                width: width_of(w).unwrap(),
            });
        }
        _ => {
            // Plain scalar ALU (register or immediate form).
            if let Some(op) = alu_from(parts[0]) {
                if parts.len() == 1 {
                    let rd = p.x()?;
                    let rs1 = p.x()?;
                    b.push(Inst::Alu {
                        op,
                        rd,
                        rs1,
                        rs2: p.x()?,
                    });
                    return Ok(());
                }
            }
            if parts.len() == 1 && parts[0].ends_with('i') {
                if let Some(op) = alu_from(&parts[0][..parts[0].len() - 1]) {
                    let rd = p.x()?;
                    let rs1 = p.x()?;
                    let imm = p.imm()? as i32;
                    b.push(Inst::AluImm { op, rd, rs1, imm });
                    return Ok(());
                }
            }
            return Err(unknown());
        }
    }
    Ok(())
}

fn vtype(s: &str) -> Option<VType> {
    match s {
        "fp" => Some(VType::Fp),
        "sg" => Some(VType::Int),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saxpy_assembles() {
        // The paper's Fig. 4 saxpy loop.
        let text = "
saxpy:
    ss.ld.w u0, x11, x10, x13
    ss.ld.w u1, x12, x10, x13
    ss.st.w u2, x12, x10, x13
    so.v.dup.w.fp u3, f10
loop:
    so.a.mul.w.fp u4, u3, u0, p0
    so.a.add.w.fp u2, u4, u1, p0
    so.b.nend u0, loop
    halt
";
        let p = assemble("saxpy", text).unwrap();
        assert_eq!(p.len(), 8);
        assert_eq!(p.label("loop"), Some(4));
        assert_eq!(p.fetch(6).unwrap().branch_target(), Some(4));
    }

    #[test]
    fn disassemble_reassemble_roundtrip() {
        let text = "
    li x10, 64
    ss.ld.w.sta u0, x11, x10, x13
    ss.end u0, x0, x10, x13
    so.a.mac.w.fp u2, u0, u1, p0
    so.b.dim0.end u0, 6
    whilelt.w p1, x10, x11
    vl1.w u1, x11, x10, p1
    halt
";
        let p1 = assemble("t", text).unwrap();
        let dis = disassemble_program(&p1);
        let p2 = assemble("t", &dis).unwrap();
        assert_eq!(p1.insts(), p2.insts());
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let err = assemble("t", "\n  bogus x0, x1\n").unwrap_err();
        match err {
            AsmError::UnknownMnemonic { line, mnemonic } => {
                assert_eq!(line, 2);
                assert_eq!(mnemonic, "bogus");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn bad_operand_reports_detail() {
        let err = assemble("t", "add x1, x2").unwrap_err();
        assert!(matches!(err, AsmError::BadOperands { line: 1, .. }));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let p = assemble("t", "; comment\n# another\n\n  halt ; trailing\n").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn memory_ops_parse_address_syntax() {
        let p = assemble("t", "ld.w x10, 8(x11)\nst.d x10, -16(x2)\nhalt").unwrap();
        assert_eq!(
            p.fetch(0).unwrap(),
            Inst::Ld {
                rd: XReg::A0,
                base: XReg::A1,
                off: 8,
                width: ElemWidth::Word
            }
        );
        assert_eq!(
            p.fetch(1).unwrap(),
            Inst::St {
                src: XReg::A0,
                base: XReg::SP,
                off: -16,
                width: ElemWidth::Double
            }
        );
    }

    #[test]
    fn modifier_config_parses() {
        let p = assemble(
            "t",
            "ss.end.mod.size.add u0, x10, x11\nss.end.ind.off.setadd u1, u2\nhalt",
        )
        .unwrap();
        assert!(matches!(
            p.fetch(0).unwrap(),
            Inst::SsAppMod {
                target: Param::Size,
                behaviour: Behaviour::Add,
                end: true,
                ..
            }
        ));
        assert!(matches!(
            p.fetch(1).unwrap(),
            Inst::SsAppInd {
                target: Param::Offset,
                behaviour: IndirectBehaviour::SetAdd,
                end: true,
                ..
            }
        ));
    }

    #[test]
    fn extract_lane_syntax() {
        let p = assemble("t", "so.v.extr.f.w f1, u2[3]\nhalt").unwrap();
        assert_eq!(
            p.fetch(0).unwrap(),
            Inst::VExtractF {
                fd: FReg::new(1),
                vs: VReg::new(2),
                lane: 3,
                width: ElemWidth::Word
            }
        );
    }

    #[test]
    fn hex_immediates() {
        let p = assemble("t", "addi x10, x0, 0x7f\nhalt").unwrap();
        assert_eq!(
            p.fetch(0).unwrap(),
            Inst::AluImm {
                op: AluOp::Add,
                rd: XReg::A0,
                rs1: XReg::ZERO,
                imm: 0x7f
            }
        );
    }
}
