//! Textual assembler and disassembler.
//!
//! The syntax follows the paper's mnemonics: stream configuration uses the
//! `ss.` prefix, stream/vector operations the `so.` prefix, and the scalar
//! subset is RISC-V-flavoured. [`assemble`] and [`disassemble_program`]
//! round-trip: `assemble(p.name(), &disassemble_program(&p))` reproduces `p`
//! exactly (instructions, labels and name) for every constructible program
//! whose labels are identifier-shaped.
//!
//! Beyond the round-trip core, the front end supports:
//!
//! - **Spanned, typed diagnostics** — every error carries a [`Span`] (1-based
//!   line *and* column) and an [`AsmErrorKind`]; unknown mnemonics include a
//!   "did you mean" suggestion when a known mnemonic is within edit
//!   distance 2.
//! - **`.const NAME VALUE`** — symbolic integer constants usable in any
//!   integer operand (immediates, address offsets, extract lanes, branch
//!   targets). All constants are collected before instructions are parsed, so
//!   an operand may reference a constant defined later in the file; a
//!   constant's *value* may only reference constants defined above it.
//! - **`.include UNIT`** — multi-unit composition via [`assemble_units`]. No
//!   filesystem I/O is performed: the caller passes `(name, text)` pairs and
//!   `.include` splices the named unit's lines in place (cycles and unknown
//!   units are typed errors). The first unit is the entry point.

use crate::inst::*;
use crate::program::{Program, ProgramBuilder, ProgramError};
use crate::reg::{FReg, PReg, VReg, XReg};
use std::collections::{HashMap, HashSet};
use std::fmt;
use uve_stream::{Behaviour, ElemWidth, IndirectBehaviour, Param};

/// Source position of an assembler diagnostic: 1-based line and column
/// (columns count characters, not bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column (character offset).
    pub col: usize,
}

/// What went wrong while assembling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// Unrecognized mnemonic, with a near-miss suggestion when one exists
    /// within edit distance 2.
    UnknownMnemonic {
        /// The unrecognized mnemonic.
        mnemonic: String,
        /// Closest known mnemonic, if any is within edit distance 2.
        suggestion: Option<String>,
    },
    /// Malformed operand list.
    BadOperands {
        /// What was wrong.
        detail: String,
    },
    /// Malformed or unknown `.`-directive.
    BadDirective {
        /// What was wrong.
        detail: String,
    },
    /// `.include` named a unit that was not passed to [`assemble_units`].
    UnknownInclude {
        /// The missing unit name.
        unit: String,
    },
    /// `.include` recursion re-entered a unit already being expanded.
    IncludeCycle {
        /// The unit that closed the cycle.
        unit: String,
    },
    /// The same label was defined twice.
    DuplicateLabel {
        /// The doubly-defined label.
        label: String,
    },
    /// A branch target or constant reference that names neither a label nor
    /// a `.const`.
    UndefinedSymbol {
        /// The unresolved name.
        symbol: String,
    },
    /// Label error surfaced by the program builder (unreachable in practice:
    /// labels and targets are pre-validated before building).
    Program(ProgramError),
}

impl fmt::Display for AsmErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmErrorKind::UnknownMnemonic {
                mnemonic,
                suggestion,
            } => {
                write!(f, "unknown mnemonic `{mnemonic}`")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean `{s}`?)")?;
                }
                Ok(())
            }
            AsmErrorKind::BadOperands { detail } => write!(f, "bad operands: {detail}"),
            AsmErrorKind::BadDirective { detail } => write!(f, "bad directive: {detail}"),
            AsmErrorKind::UnknownInclude { unit } => {
                write!(f, "`.include` of unknown unit `{unit}`")
            }
            AsmErrorKind::IncludeCycle { unit } => {
                write!(f, "`.include` cycle through unit `{unit}`")
            }
            AsmErrorKind::DuplicateLabel { label } => write!(f, "duplicate label `{label}`"),
            AsmErrorKind::UndefinedSymbol { symbol } => write!(f, "undefined symbol `{symbol}`"),
            AsmErrorKind::Program(e) => write!(f, "{e}"),
        }
    }
}

/// Error raised while assembling text: a [`Span`], the offending unit (for
/// [`assemble_units`]; `None` for single-text [`assemble`]) and a typed
/// [`AsmErrorKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// Unit the error was found in (`None` for single-unit [`assemble`]).
    pub unit: Option<String>,
    /// Where in that unit.
    pub span: Span,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.unit {
            Some(u) => write!(f, "{u}:{}:{}: {}", self.span.line, self.span.col, self.kind),
            None => write!(
                f,
                "line {}, col {}: {}",
                self.span.line, self.span.col, self.kind
            ),
        }
    }
}

impl std::error::Error for AsmError {}

impl From<ProgramError> for AsmError {
    fn from(e: ProgramError) -> Self {
        AsmError {
            unit: None,
            span: Span { line: 0, col: 0 },
            kind: AsmErrorKind::Program(e),
        }
    }
}

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Mul => "mul",
        AluOp::Mulh => "mulh",
        AluOp::Div => "div",
        AluOp::Rem => "rem",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Sll => "sll",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
        AluOp::Min => "min",
        AluOp::Max => "max",
    }
}

fn alu_from(name: &str) -> Option<AluOp> {
    Some(match name {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "mulh" => AluOp::Mulh,
        "div" => AluOp::Div,
        "rem" => AluOp::Rem,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "sll" => AluOp::Sll,
        "srl" => AluOp::Srl,
        "sra" => AluOp::Sra,
        "slt" => AluOp::Slt,
        "sltu" => AluOp::Sltu,
        "min" => AluOp::Min,
        "max" => AluOp::Max,
        _ => return None,
    })
}

const ALL_ALU: [AluOp; 16] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Mulh,
    AluOp::Div,
    AluOp::Rem,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Min,
    AluOp::Max,
];

fn fp_name(op: FpOp) -> &'static str {
    match op {
        FpOp::Add => "fadd",
        FpOp::Sub => "fsub",
        FpOp::Mul => "fmul",
        FpOp::Div => "fdiv",
        FpOp::Min => "fmin",
        FpOp::Max => "fmax",
    }
}

fn vop_name(op: VOp) -> &'static str {
    match op {
        VOp::Add => "add",
        VOp::Sub => "sub",
        VOp::Mul => "mul",
        VOp::Div => "div",
        VOp::Min => "min",
        VOp::Max => "max",
        VOp::And => "and",
        VOp::Or => "or",
        VOp::Xor => "xor",
        VOp::Shl => "shl",
        VOp::Shr => "shr",
    }
}

fn vop_from(name: &str) -> Option<VOp> {
    Some(match name {
        "add" => VOp::Add,
        "sub" => VOp::Sub,
        "mul" => VOp::Mul,
        "div" => VOp::Div,
        "min" => VOp::Min,
        "max" => VOp::Max,
        "and" => VOp::And,
        "or" => VOp::Or,
        "xor" => VOp::Xor,
        "shl" => VOp::Shl,
        "shr" => VOp::Shr,
        _ => return None,
    })
}

fn ty_name(ty: VType) -> &'static str {
    match ty {
        VType::Int => "sg",
        VType::Fp => "fp",
    }
}

fn cond_name(c: BrCond) -> &'static str {
    match c {
        BrCond::Eq => "beq",
        BrCond::Ne => "bne",
        BrCond::Lt => "blt",
        BrCond::Ge => "bge",
        BrCond::Ltu => "bltu",
        BrCond::Geu => "bgeu",
    }
}

fn param_name(p: Param) -> &'static str {
    match p {
        Param::Offset => "off",
        Param::Size => "size",
        Param::Stride => "stride",
    }
}

fn param_from(s: &str) -> Option<Param> {
    Some(match s {
        "off" => Param::Offset,
        "size" => Param::Size,
        "stride" => Param::Stride,
        _ => return None,
    })
}

/// Renders one instruction in assembly syntax (branch targets printed as
/// absolute instruction indices).
pub fn disassemble(i: &Inst) -> String {
    use Inst::*;
    match *i {
        Alu { op, rd, rs1, rs2 } => format!("{} {rd}, {rs1}, {rs2}", alu_name(op)),
        AluImm { op, rd, rs1, imm } => format!("{}i {rd}, {rs1}, {imm}", alu_name(op)),
        Lui { rd, imm } => format!("lui {rd}, {imm}"),
        Ld {
            rd,
            base,
            off,
            width,
        } => format!("ld.{width} {rd}, {off}({base})"),
        St {
            src,
            base,
            off,
            width,
        } => format!("st.{width} {src}, {off}({base})"),
        Fld {
            fd,
            base,
            off,
            width,
        } => format!("fld.{width} {fd}, {off}({base})"),
        Fst {
            src,
            base,
            off,
            width,
        } => format!("fst.{width} {src}, {off}({base})"),
        FAlu {
            op,
            width,
            fd,
            fs1,
            fs2,
        } => {
            format!("{}.{width} {fd}, {fs1}, {fs2}", fp_name(op))
        }
        FMac {
            width,
            fd,
            fs1,
            fs2,
            fs3,
        } => format!("fmadd.{width} {fd}, {fs1}, {fs2}, {fs3}"),
        FUn { op, width, fd, fs } => {
            let n = match op {
                FpUnOp::Sqrt => "fsqrt",
                FpUnOp::Abs => "fabs",
                FpUnOp::Neg => "fneg",
                FpUnOp::Mv => "fmv",
            };
            format!("{n}.{width} {fd}, {fs}")
        }
        FMvXF { rd, fs } => format!("fmv.x.f {rd}, {fs}"),
        FMvFX { fd, rs } => format!("fmv.f.x {fd}, {rs}"),
        FCvtFX { width, fd, rs } => format!("fcvt.f.x.{width} {fd}, {rs}"),
        FCvtXF { width, rd, fs } => format!("fcvt.x.f.{width} {rd}, {fs}"),
        Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            format!("{} {rs1}, {rs2}, {target}", cond_name(cond))
        }
        Jal { rd, target } => format!("jal {rd}, {target}"),
        Halt => "halt".into(),
        Nop => "nop".into(),
        SsStart {
            u,
            dir,
            width,
            base,
            size,
            stride,
            done,
        } => {
            let d = match dir {
                Dir::Load => "ld",
                Dir::Store => "st",
            };
            let sta = if done { "" } else { ".sta" };
            format!("ss.{d}.{width}{sta} {u}, {base}, {size}, {stride}")
        }
        SsApp {
            u,
            offset,
            size,
            stride,
            end,
        } => {
            let m = if end { "ss.end" } else { "ss.app" };
            format!("{m} {u}, {offset}, {size}, {stride}")
        }
        SsAppMod {
            u,
            target,
            behaviour,
            disp,
            count,
            end,
        } => {
            let m = if end { "ss.end" } else { "ss.app" };
            let b = match behaviour {
                Behaviour::Add => "add",
                Behaviour::Sub => "sub",
            };
            format!("{m}.mod.{}.{b} {u}, {disp}, {count}", param_name(target))
        }
        SsAppInd {
            u,
            target,
            behaviour,
            origin,
            end,
        } => {
            let m = if end { "ss.end" } else { "ss.app" };
            let b = match behaviour {
                IndirectBehaviour::SetAdd => "setadd",
                IndirectBehaviour::SetSub => "setsub",
                IndirectBehaviour::SetValue => "setval",
            };
            format!("{m}.ind.{}.{b} {u}, {origin}", param_name(target))
        }
        SsCtl { op, u } => {
            let n = match op {
                StreamCtl::Suspend => "ss.suspend",
                StreamCtl::Resume => "ss.resume",
                StreamCtl::Stop => "ss.stop",
            };
            format!("{n} {u}")
        }
        SsCfgMem { u, level } => {
            let l = match level {
                MemLevel::L1 => "l1",
                MemLevel::L2 => "l2",
                MemLevel::Mem => "dram",
            };
            format!("so.cfg.mem.{l} {u}")
        }
        SsBranch { cond, u, target } => {
            let c = match cond {
                StreamCond::NotEnd => "so.b.nend".to_string(),
                StreamCond::End => "so.b.end".to_string(),
                StreamCond::DimNotEnd(k) => format!("so.b.dim{k}.nend"),
                StreamCond::DimEnd(k) => format!("so.b.dim{k}.end"),
            };
            format!("{c} {u}, {target}")
        }
        SsGetVl { rd, width } => format!("ss.getvl.{width} {rd}"),
        SsSetVl { rd, rs, width } => format!("ss.setvl.{width} {rd}, {rs}"),
        PredFromValid { pd, vs } => format!("so.p.fromvalid {pd}, {vs}"),
        VDup { vd, src, width, ty } => match src {
            DupSrc::X(r) => format!("so.v.dup.{width}.{} {vd}, {r}", ty_name(ty)),
            DupSrc::F(r) => format!("so.v.dup.{width}.{} {vd}, {r}", ty_name(ty)),
        },
        VMv { vd, vs } => format!("so.v.mv {vd}, {vs}"),
        VUn {
            op,
            ty,
            width,
            vd,
            vs,
            pred,
        } => {
            let n = match op {
                VUnOp::Abs => "abs",
                VUnOp::Neg => "neg",
                VUnOp::Sqrt => "sqrt",
                VUnOp::Mv => "mvp",
            };
            format!("so.a.{n}.{width}.{} {vd}, {vs}, {pred}", ty_name(ty))
        }
        VArith {
            op,
            ty,
            width,
            vd,
            vs1,
            vs2,
            pred,
        } => format!(
            "so.a.{}.{width}.{} {vd}, {vs1}, {vs2}, {pred}",
            vop_name(op),
            ty_name(ty)
        ),
        VArithVS {
            op,
            ty,
            width,
            vd,
            vs1,
            scalar,
            pred,
        } => {
            let s = match scalar {
                DupSrc::X(r) => r.to_string(),
                DupSrc::F(r) => r.to_string(),
            };
            format!(
                "so.a.{}.vs.{width}.{} {vd}, {vs1}, {s}, {pred}",
                vop_name(op),
                ty_name(ty)
            )
        }
        VMac {
            ty,
            width,
            vd,
            vs1,
            vs2,
            pred,
        } => format!(
            "so.a.mac.{width}.{} {vd}, {vs1}, {vs2}, {pred}",
            ty_name(ty)
        ),
        VMacVS {
            ty,
            width,
            vd,
            vs1,
            scalar,
            pred,
        } => {
            let s = match scalar {
                DupSrc::X(r) => r.to_string(),
                DupSrc::F(r) => r.to_string(),
            };
            format!(
                "so.a.mac.vs.{width}.{} {vd}, {vs1}, {s}, {pred}",
                ty_name(ty)
            )
        }
        VRed {
            op,
            ty,
            width,
            vd,
            vs,
            pred,
        } => {
            let n = match op {
                HorizOp::Add => "hadd",
                HorizOp::Max => "hmax",
                HorizOp::Min => "hmin",
            };
            format!("so.a.{n}.{width}.{} {vd}, {vs}, {pred}", ty_name(ty))
        }
        VCmp {
            op,
            ty,
            width,
            pd,
            vs1,
            vs2,
        } => {
            let n = match op {
                VCmpOp::Eq => "eq",
                VCmpOp::Ne => "ne",
                VCmpOp::Lt => "lt",
                VCmpOp::Le => "le",
                VCmpOp::Gt => "gt",
                VCmpOp::Ge => "ge",
            };
            format!("so.p.{n}.{width}.{} {pd}, {vs1}, {vs2}", ty_name(ty))
        }
        PredAlu { op, pd, ps1, ps2 } => match op {
            PredOp::Mov => format!("so.p.mov {pd}, {ps1}"),
            PredOp::Not => format!("so.p.not {pd}, {ps1}"),
            PredOp::And => format!("so.p.and {pd}, {ps1}, {ps2}"),
            PredOp::Or => format!("so.p.or {pd}, {ps1}, {ps2}"),
        },
        BrPred { cond, p, target } => {
            let n = match cond {
                PredCond::First => "so.b.pfirst",
                PredCond::Any => "so.b.pany",
                PredCond::None => "so.b.pnone",
            };
            format!("{n} {p}, {target}")
        }
        VExtractF {
            fd,
            vs,
            lane,
            width,
        } => {
            format!("so.v.extr.f.{width} {fd}, {vs}[{lane}]")
        }
        VExtractX {
            rd,
            vs,
            lane,
            width,
        } => {
            format!("so.v.extr.x.{width} {rd}, {vs}[{lane}]")
        }
        VLoad {
            vd,
            base,
            index,
            width,
            pred,
        } => {
            format!("vl1.{width} {vd}, {base}, {index}, {pred}")
        }
        VStore {
            vs,
            base,
            index,
            width,
            pred,
        } => {
            format!("vs1.{width} {vs}, {base}, {index}, {pred}")
        }
        VGather {
            vd,
            base,
            idx,
            width,
            pred,
        } => {
            format!("vgather.{width} {vd}, {base}, {idx}, {pred}")
        }
        VScatter {
            vs,
            base,
            idx,
            width,
            pred,
        } => {
            format!("vscatter.{width} {vs}, {base}, {idx}, {pred}")
        }
        WhileLt {
            pd,
            rs1,
            rs2,
            width,
        } => format!("whilelt.{width} {pd}, {rs1}, {rs2}"),
        IncVl { rd, width } => format!("incvl.{width} {rd}"),
        CntVl { rd, width } => format!("cntvl.{width} {rd}"),
        VLoadPost {
            vd,
            base,
            width,
            pred,
        } => {
            format!("ss.load.{width} {vd}, {base}, {pred}")
        }
        VStorePost {
            vs,
            base,
            width,
            pred,
        } => {
            format!("ss.store.{width} {vs}, {base}, {pred}")
        }
    }
}

/// Renders a whole program, emitting labels (including trailing labels that
/// sit past the last instruction).
pub fn disassemble_program(p: &Program) -> String {
    let mut by_index: Vec<(u32, &str)> = p.labels().map(|(l, i)| (i, l)).collect();
    by_index.sort();
    let mut out = String::new();
    for (pc, inst) in p.insts().iter().enumerate() {
        for (i, l) in &by_index {
            if *i == pc as u32 {
                out.push_str(l);
                out.push_str(":\n");
            }
        }
        out.push_str("    ");
        out.push_str(&disassemble(inst));
        out.push('\n');
    }
    for (i, l) in &by_index {
        if *i as usize >= p.insts().len() {
            out.push_str(l);
            out.push_str(":\n");
        }
    }
    out
}

// ---- "did you mean" suggestions ----

/// Enumerates every concrete mnemonic the parser accepts. Only used on the
/// unknown-mnemonic error path, so the allocation cost is irrelevant.
fn known_mnemonics() -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let fixed = [
        "halt",
        "nop",
        "lui",
        "jal",
        "li",
        "beq",
        "bne",
        "blt",
        "bge",
        "bltu",
        "bgeu",
        "fmv.x.f",
        "fmv.f.x",
        "ss.app",
        "ss.end",
        "ss.suspend",
        "ss.resume",
        "ss.stop",
        "so.cfg.mem.l1",
        "so.cfg.mem.l2",
        "so.cfg.mem.dram",
        "so.b.nend",
        "so.b.end",
        "so.b.pfirst",
        "so.b.pany",
        "so.b.pnone",
        "so.p.fromvalid",
        "so.p.mov",
        "so.p.not",
        "so.p.and",
        "so.p.or",
        "so.v.mv",
    ];
    out.extend(fixed.iter().map(|s| (*s).to_string()));
    for op in ALL_ALU {
        out.push(alu_name(op).to_string());
        out.push(format!("{}i", alu_name(op)));
    }
    for e in ["app", "end"] {
        for par in ["off", "size", "stride"] {
            for bh in ["add", "sub"] {
                out.push(format!("ss.{e}.mod.{par}.{bh}"));
            }
            for bh in ["setadd", "setsub", "setval"] {
                out.push(format!("ss.{e}.ind.{par}.{bh}"));
            }
        }
    }
    for k in 0..8 {
        out.push(format!("so.b.dim{k}.nend"));
        out.push(format!("so.b.dim{k}.end"));
    }
    for w in ElemWidth::all() {
        let w = w.suffix();
        for m in [
            "ld", "st", "fld", "fst", "fmadd", "fadd", "fsub", "fmul", "fdiv", "fmin", "fmax",
            "fsqrt", "fabs", "fneg", "fmv", "vl1", "vs1", "vgather", "vscatter", "whilelt",
            "incvl", "cntvl",
        ] {
            out.push(format!("{m}.{w}"));
        }
        out.push(format!("fcvt.f.x.{w}"));
        out.push(format!("fcvt.x.f.{w}"));
        for d in ["ld", "st"] {
            out.push(format!("ss.{d}.{w}"));
            out.push(format!("ss.{d}.{w}.sta"));
        }
        for m in ["getvl", "setvl", "load", "store"] {
            out.push(format!("ss.{m}.{w}"));
        }
        out.push(format!("so.v.extr.f.{w}"));
        out.push(format!("so.v.extr.x.{w}"));
        for ty in ["fp", "sg"] {
            out.push(format!("so.v.dup.{w}.{ty}"));
            out.push(format!("so.a.mac.{w}.{ty}"));
            out.push(format!("so.a.mac.vs.{w}.{ty}"));
            for u in ["hadd", "hmax", "hmin", "abs", "neg", "sqrt", "mvp"] {
                out.push(format!("so.a.{u}.{w}.{ty}"));
            }
            for vop in [
                "add", "sub", "mul", "div", "min", "max", "and", "or", "xor", "shl", "shr",
            ] {
                out.push(format!("so.a.{vop}.{w}.{ty}"));
                out.push(format!("so.a.{vop}.vs.{w}.{ty}"));
            }
            for c in ["eq", "ne", "lt", "le", "gt", "ge"] {
                out.push(format!("so.p.{c}.{w}.{ty}"));
            }
        }
    }
    out
}

/// Levenshtein distance, short-circuiting to `cap + 1` when the answer
/// cannot be within `cap`.
fn levenshtein(a: &str, b: &str, cap: usize) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) > cap {
        return cap + 1;
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for i in 1..=a.len() {
        cur[0] = i;
        for j in 1..=b.len() {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            cur[j] = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Closest known mnemonic within edit distance 2 (ties broken
/// lexicographically so the suggestion is deterministic).
fn suggest(m: &str) -> Option<String> {
    const MAX_DIST: usize = 2;
    let mut best: Option<(usize, String)> = None;
    for cand in known_mnemonics() {
        let d = levenshtein(m, &cand, MAX_DIST);
        if d <= MAX_DIST {
            let better = match &best {
                None => true,
                Some((bd, bn)) => d < *bd || (d == *bd && cand < *bn),
            };
            if better {
                best = Some((d, cand));
            }
        }
    }
    best.map(|(_, n)| n)
}

// ---- lexing helpers ----

/// Cuts a line at the first `;` or `#` comment marker.
fn strip_comment(s: &str) -> &str {
    let cut = s.find([';', '#']).unwrap_or(s.len());
    &s[..cut]
}

/// 1-based character column of byte offset `off` within `raw`.
fn col_at(raw: &str, off: usize) -> usize {
    raw[..off.min(raw.len())].chars().count() + 1
}

/// `true` for identifier-shaped tokens (label / constant names).
fn is_ident(t: &str) -> bool {
    let mut chars = t.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Splits leading `label:` prefixes off a comment-stripped line. Returns the
/// labels with their byte offsets and the remaining statement with its byte
/// offset (both relative to the start of `code`).
#[allow(clippy::type_complexity)]
fn split_labels(code: &str) -> (Vec<(usize, &str)>, (usize, &str)) {
    let mut labels = Vec::new();
    let mut off = code.len() - code.trim_start().len();
    let mut s = code.trim_start();
    while let Some(colon) = s.find(':') {
        let label = s[..colon].trim_end();
        if label.is_empty() || label.contains(char::is_whitespace) {
            break;
        }
        labels.push((off, label));
        let after = &s[colon + 1..];
        let ws = after.len() - after.trim_start().len();
        off += colon + 1 + ws;
        s = after.trim_start();
    }
    (labels, (off, s.trim_end()))
}

fn parse_reg(t: &str, prefix: char) -> Option<u8> {
    let t = t.trim();
    let rest = t.strip_prefix(prefix)?;
    rest.parse::<u8>().ok()
}

fn parse_imm(t: &str) -> Option<i64> {
    let t = t.trim();
    if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("-0x")) {
        let v = i64::from_str_radix(h, 16).ok()?;
        return Some(if t.starts_with('-') { -v } else { v });
    }
    t.parse::<i64>().ok()
}

fn width_of(s: &str) -> Option<ElemWidth> {
    if s.len() == 1 {
        ElemWidth::from_suffix(s.chars().next().unwrap())
    } else {
        None
    }
}

// ---- include expansion ----

/// One post-expansion source line: which unit it came from (`None` in
/// single-unit mode) and its 1-based line number there.
struct SrcLine<'s> {
    unit: Option<&'s str>,
    line: usize,
    raw: &'s str,
}

fn expand_units<'s>(
    units: &[(&'s str, &'s str)],
    named: bool,
) -> Result<Vec<SrcLine<'s>>, AsmError> {
    let mut seen = HashSet::new();
    for (n, _) in units {
        if !seen.insert(*n) {
            return Err(AsmError {
                unit: named.then(|| (*n).to_string()),
                span: Span { line: 1, col: 1 },
                kind: AsmErrorKind::BadDirective {
                    detail: format!("unit `{n}` provided twice"),
                },
            });
        }
    }
    let mut out = Vec::new();
    let mut stack = Vec::new();
    expand_into(units, 0, named, &mut stack, &mut out)?;
    Ok(out)
}

fn expand_into<'s>(
    units: &[(&'s str, &'s str)],
    idx: usize,
    named: bool,
    stack: &mut Vec<&'s str>,
    out: &mut Vec<SrcLine<'s>>,
) -> Result<(), AsmError> {
    let (uname, text) = units[idx];
    stack.push(uname);
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let unit = named.then_some(uname);
        let stripped = strip_comment(raw);
        let code = stripped.trim_start();
        if let Some(rest) = code.strip_prefix(".include") {
            if rest.is_empty() || rest.starts_with(char::is_whitespace) {
                let span = Span {
                    line,
                    col: col_at(raw, stripped.len() - code.len()),
                };
                let mkerr = |kind| AsmError {
                    unit: unit.map(str::to_string),
                    span,
                    kind,
                };
                let target = rest.trim().trim_matches('"');
                if target.is_empty() {
                    return Err(mkerr(AsmErrorKind::BadDirective {
                        detail: "`.include` needs a unit name".into(),
                    }));
                }
                if target.contains(char::is_whitespace) {
                    return Err(mkerr(AsmErrorKind::BadDirective {
                        detail: "`.include` takes a single unit name".into(),
                    }));
                }
                if stack.contains(&target) {
                    return Err(mkerr(AsmErrorKind::IncludeCycle {
                        unit: target.to_string(),
                    }));
                }
                let Some(tidx) = units.iter().position(|(n, _)| *n == target) else {
                    return Err(mkerr(AsmErrorKind::UnknownInclude {
                        unit: target.to_string(),
                    }));
                };
                expand_into(units, tidx, named, stack, out)?;
                continue;
            }
        }
        out.push(SrcLine { unit, line, raw });
    }
    stack.pop();
    Ok(())
}

// ---- pass 1: labels, constants, statement list ----

/// Symbol tables available while parsing instructions.
struct Symbols<'s> {
    labels: HashSet<&'s str>,
    consts: HashMap<&'s str, i64>,
}

/// A non-directive statement awaiting instruction parsing.
struct Stmt<'s> {
    unit: Option<&'s str>,
    line: usize,
    raw: &'s str,
    /// Byte offset of `text` within `raw`.
    off: usize,
    text: &'s str,
}

enum Item<'s> {
    Label(&'s str),
    Stmt(Stmt<'s>),
}

#[allow(clippy::type_complexity)]
fn scan<'s>(lines: &[SrcLine<'s>]) -> Result<(Vec<Item<'s>>, Symbols<'s>), AsmError> {
    let mut items = Vec::new();
    let mut syms = Symbols {
        labels: HashSet::new(),
        consts: HashMap::new(),
    };
    let mut const_defs: Vec<(&'s str, Option<&'s str>, Span)> = Vec::new();
    for l in lines {
        let code = strip_comment(l.raw);
        let (labels, (stmt_off, stmt)) = split_labels(code);
        for (lab_off, lab) in labels {
            let span = Span {
                line: l.line,
                col: col_at(l.raw, lab_off),
            };
            if !syms.labels.insert(lab) {
                return Err(AsmError {
                    unit: l.unit.map(str::to_string),
                    span,
                    kind: AsmErrorKind::DuplicateLabel {
                        label: lab.to_string(),
                    },
                });
            }
            items.push(Item::Label(lab));
        }
        if stmt.is_empty() {
            continue;
        }
        if stmt.starts_with('.') {
            directive(l, stmt_off, stmt, &mut syms, &mut const_defs)?;
            continue;
        }
        items.push(Item::Stmt(Stmt {
            unit: l.unit,
            line: l.line,
            raw: l.raw,
            off: stmt_off,
            text: stmt,
        }));
    }
    // A name must resolve unambiguously: reject label/constant collisions in
    // either definition order.
    for (name, unit, span) in const_defs {
        if syms.labels.contains(name) {
            return Err(AsmError {
                unit: unit.map(str::to_string),
                span,
                kind: AsmErrorKind::BadDirective {
                    detail: format!("constant `{name}` collides with a label of the same name"),
                },
            });
        }
    }
    Ok((items, syms))
}

fn directive<'s>(
    l: &SrcLine<'s>,
    off: usize,
    stmt: &'s str,
    syms: &mut Symbols<'s>,
    const_defs: &mut Vec<(&'s str, Option<&'s str>, Span)>,
) -> Result<(), AsmError> {
    let span = Span {
        line: l.line,
        col: col_at(l.raw, off),
    };
    let bad = |detail: String| AsmError {
        unit: l.unit.map(str::to_string),
        span,
        kind: AsmErrorKind::BadDirective { detail },
    };
    let mut toks = stmt.split_whitespace();
    match toks.next().unwrap_or(stmt) {
        ".const" => {
            let (Some(name), Some(value), None) = (toks.next(), toks.next(), toks.next()) else {
                return Err(bad("expected `.const NAME VALUE`".into()));
            };
            if !is_ident(name) {
                return Err(bad(format!("bad constant name `{name}`")));
            }
            let Some(v) = parse_imm(value).or_else(|| syms.consts.get(value).copied()) else {
                return Err(bad(format!(
                    "bad constant value `{value}` (integer literal or an already-defined constant)"
                )));
            };
            if syms.consts.insert(name, v).is_some() {
                return Err(bad(format!("constant `{name}` defined twice")));
            }
            const_defs.push((name, l.unit, span));
            Ok(())
        }
        ".include" => Err(bad("`.include` must appear alone on its line".into())),
        other => Err(bad(format!("unknown directive `{other}`"))),
    }
}

// ---- pass 2: operand parsing ----

struct Parser<'a, 's> {
    unit: Option<&'s str>,
    line: usize,
    raw: &'s str,
    /// Byte offset of the mnemonic within `raw`.
    mn_off: usize,
    mn_len: usize,
    /// Operand tokens with their byte offsets within `raw`.
    ops: Vec<(usize, &'s str)>,
    pos: usize,
    syms: &'a Symbols<'s>,
}

enum Target<'s> {
    Abs(u32),
    Label(&'s str),
}

impl<'a, 's> Parser<'a, 's> {
    fn err_at(&self, off: usize, kind: AsmErrorKind) -> AsmError {
        AsmError {
            unit: self.unit.map(str::to_string),
            span: Span {
                line: self.line,
                col: col_at(self.raw, off),
            },
            kind,
        }
    }

    fn bad(&self, off: usize, detail: impl Into<String>) -> AsmError {
        self.err_at(
            off,
            AsmErrorKind::BadOperands {
                detail: detail.into(),
            },
        )
    }

    fn unknown(&self, m: &str) -> AsmError {
        self.err_at(
            self.mn_off,
            AsmErrorKind::UnknownMnemonic {
                mnemonic: m.to_string(),
                suggestion: suggest(m),
            },
        )
    }

    /// Offset just past the last token — where a missing operand would be.
    fn end_off(&self) -> usize {
        self.ops
            .last()
            .map_or(self.mn_off + self.mn_len, |(o, t)| o + t.len())
    }

    fn next(&mut self) -> Result<(usize, &'s str), AsmError> {
        let t = self
            .ops
            .get(self.pos)
            .copied()
            .ok_or_else(|| self.bad(self.end_off(), "missing operand"))?;
        self.pos += 1;
        Ok(t)
    }

    fn x(&mut self) -> Result<XReg, AsmError> {
        let (off, t) = self.next()?;
        parse_reg(t, 'x')
            .and_then(XReg::try_new)
            .ok_or_else(|| self.bad(off, format!("expected x register, got `{t}`")))
    }

    fn f(&mut self) -> Result<FReg, AsmError> {
        let (off, t) = self.next()?;
        parse_reg(t, 'f')
            .and_then(FReg::try_new)
            .ok_or_else(|| self.bad(off, format!("expected f register, got `{t}`")))
    }

    fn v(&mut self) -> Result<VReg, AsmError> {
        let (off, t) = self.next()?;
        parse_reg(t, 'u')
            .and_then(VReg::try_new)
            .ok_or_else(|| self.bad(off, format!("expected u register, got `{t}`")))
    }

    fn p(&mut self) -> Result<PReg, AsmError> {
        let (off, t) = self.next()?;
        parse_reg(t, 'p')
            .and_then(PReg::try_new)
            .ok_or_else(|| self.bad(off, format!("expected p register, got `{t}`")))
    }

    /// Integer literal or `.const` reference.
    fn resolve_int(&self, t: &str) -> Option<i64> {
        parse_imm(t).or_else(|| self.syms.consts.get(t.trim()).copied())
    }

    fn imm_at(&mut self) -> Result<(usize, i64), AsmError> {
        let (off, t) = self.next()?;
        if let Some(v) = self.resolve_int(t) {
            return Ok((off, v));
        }
        if self.syms.labels.contains(t) {
            return Err(self.bad(off, format!("label `{t}` is not an integer constant")));
        }
        if is_ident(t) {
            return Err(self.err_at(
                off,
                AsmErrorKind::UndefinedSymbol {
                    symbol: t.to_string(),
                },
            ));
        }
        Err(self.bad(off, format!("expected immediate, got `{t}`")))
    }

    fn imm(&mut self) -> Result<i64, AsmError> {
        self.imm_at().map(|(_, v)| v)
    }

    /// Immediate that must fit the instruction's signed `bits`-bit field.
    fn imm_bits(&mut self, bits: u32) -> Result<i32, AsmError> {
        let (off, v) = self.imm_at()?;
        let (min, max) = (-(1i64 << (bits - 1)), (1i64 << (bits - 1)) - 1);
        if v < min || v > max {
            return Err(self.bad(
                off,
                format!("immediate {v} outside the signed {bits}-bit field ({min}..={max})"),
            ));
        }
        Ok(v as i32)
    }

    /// `off(base)` address syntax; the offset may be a `.const` name.
    fn addr(&mut self) -> Result<(i32, XReg), AsmError> {
        let (at, t) = self.next()?;
        let (Some(open), Some(close)) = (t.find('('), t.rfind(')')) else {
            return Err(self.bad(at, "expected off(base)"));
        };
        if close < open + 1 {
            return Err(self.bad(at, "expected off(base)"));
        }
        let off = self
            .resolve_int(&t[..open])
            .ok_or_else(|| self.bad(at, "bad offset"))?;
        if !(-2048..=2047).contains(&off) {
            return Err(self.bad(
                at,
                format!("offset {off} outside the signed 12-bit field (-2048..=2047)"),
            ));
        }
        let off = off as i32;
        let base = parse_reg(&t[open + 1..close], 'x')
            .and_then(XReg::try_new)
            .ok_or_else(|| self.bad(at, "bad base register"))?;
        Ok((off, base))
    }

    /// `uN[lane]` syntax; the lane may be a `.const` name.
    fn v_lane(&mut self) -> Result<(VReg, u8), AsmError> {
        let (at, t) = self.next()?;
        let (Some(open), Some(close)) = (t.find('['), t.rfind(']')) else {
            return Err(self.bad(at, "expected u[lane]"));
        };
        if close < open + 1 {
            return Err(self.bad(at, "expected u[lane]"));
        }
        let v = parse_reg(&t[..open], 'u')
            .and_then(VReg::try_new)
            .ok_or_else(|| self.bad(at, "bad u register"))?;
        let lane = self
            .resolve_int(&t[open + 1..close])
            .and_then(|l| u8::try_from(l).ok())
            .filter(|l| *l < 64)
            .ok_or_else(|| self.bad(at, "bad lane (must be 0..=63)"))?;
        Ok((v, lane))
    }

    fn dup_src(&mut self) -> Result<DupSrc, AsmError> {
        let (off, t) = self.next()?;
        if let Some(n) = parse_reg(t, 'x') {
            return XReg::try_new(n)
                .map(DupSrc::X)
                .ok_or_else(|| self.bad(off, "bad x register"));
        }
        if let Some(n) = parse_reg(t, 'f') {
            return FReg::try_new(n)
                .map(DupSrc::F)
                .ok_or_else(|| self.bad(off, "bad f register"));
        }
        Err(self.bad(off, format!("expected x/f register, got `{t}`")))
    }

    /// Branch target: a number or `.const` (absolute index) or a label.
    fn target(&mut self) -> Result<Target<'s>, AsmError> {
        let (off, t) = self.next()?;
        if let Some(v) = parse_imm(t) {
            return Ok(Target::Abs(v as u32));
        }
        if self.syms.labels.contains(t) {
            return Ok(Target::Label(t));
        }
        if let Some(&v) = self.syms.consts.get(t) {
            return Ok(Target::Abs(v as u32));
        }
        Err(self.err_at(
            off,
            AsmErrorKind::UndefinedSymbol {
                symbol: t.to_string(),
            },
        ))
    }
}

/// Splits a statement into its mnemonic and comma-separated operand tokens,
/// tracking byte offsets for spans.
fn tokenize<'a, 's>(s: &Stmt<'s>, syms: &'a Symbols<'s>) -> (&'s str, Parser<'a, 's>) {
    let text = s.text;
    let (mnemonic, rest) = match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], &text[i..]),
        None => (text, ""),
    };
    let rest_off = s.off + (text.len() - rest.len());
    let mut ops = Vec::new();
    let mut pos = 0usize;
    for piece in rest.split(',') {
        let t = piece.trim();
        if !t.is_empty() {
            let lead = piece.len() - piece.trim_start().len();
            ops.push((rest_off + pos + lead, t));
        }
        pos += piece.len() + 1;
    }
    let parser = Parser {
        unit: s.unit,
        line: s.line,
        raw: s.raw,
        mn_off: s.off,
        mn_len: mnemonic.len(),
        ops,
        pos: 0,
        syms,
    };
    (mnemonic, parser)
}

// ---- entry points ----

/// Assembles a text program.
///
/// One instruction per line; `label:` lines (or prefixes) define labels; `;`
/// and `#` start comments; `.const NAME VALUE` defines symbolic integer
/// constants usable in any integer operand.
///
/// # Errors
///
/// Returns the first syntax, directive or symbol error encountered, with a
/// [`Span`] pointing at the offending token.
pub fn assemble(name: &str, text: &str) -> Result<Program, AsmError> {
    assemble_inner(name, &[("<asm>", text)], false)
}

/// Assembles a program from multiple named units, splicing `.include UNIT`
/// lines in place. `units[0]` is the entry point; the other units are only
/// assembled where included. No filesystem I/O happens — the caller supplies
/// every `(name, text)` pair. Errors carry the unit name they occurred in.
///
/// # Errors
///
/// Returns the first syntax, directive, include or symbol error encountered.
pub fn assemble_units(name: &str, units: &[(&str, &str)]) -> Result<Program, AsmError> {
    if units.is_empty() {
        return Err(AsmError {
            unit: None,
            span: Span { line: 1, col: 1 },
            kind: AsmErrorKind::BadDirective {
                detail: "no units provided".into(),
            },
        });
    }
    assemble_inner(name, units, true)
}

fn assemble_inner(name: &str, units: &[(&str, &str)], named: bool) -> Result<Program, AsmError> {
    let lines = expand_units(units, named)?;
    let (items, syms) = scan(&lines)?;
    let mut b = ProgramBuilder::new(name);
    for item in &items {
        match item {
            Item::Label(l) => {
                b.label(*l);
            }
            Item::Stmt(s) => {
                let (mnemonic, mut p) = tokenize(s, &syms);
                parse_inst(&mut b, mnemonic, &mut p)?;
            }
        }
    }
    Ok(b.build()?)
}

fn push_branch(b: &mut ProgramBuilder, inst: Inst, t: Target<'_>) {
    match t {
        Target::Abs(a) => {
            let mut i = inst;
            i.set_branch_target(a);
            b.push(i);
        }
        Target::Label(l) => {
            b.push_branch(inst, l);
        }
    }
}

#[allow(clippy::too_many_lines)]
fn parse_inst(b: &mut ProgramBuilder, m: &str, p: &mut Parser<'_, '_>) -> Result<(), AsmError> {
    let parts: Vec<&str> = m.split('.').collect();
    match parts.as_slice() {
        ["halt"] => {
            b.push(Inst::Halt);
        }
        ["nop"] => {
            b.push(Inst::Nop);
        }
        ["lui"] => {
            let i = Inst::Lui {
                rd: p.x()?,
                imm: p.imm_bits(20)?,
            };
            b.push(i);
        }
        ["jal"] => {
            let rd = p.x()?;
            let t = p.target()?;
            push_branch(b, Inst::Jal { rd, target: 0 }, t);
        }
        ["li"] => {
            let rd = p.x()?;
            let v = p.imm()?;
            b.li(rd, v);
        }
        ["beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu"] => {
            let cond = match parts[0] {
                "beq" => BrCond::Eq,
                "bne" => BrCond::Ne,
                "blt" => BrCond::Lt,
                "bge" => BrCond::Ge,
                "bltu" => BrCond::Ltu,
                _ => BrCond::Geu,
            };
            let rs1 = p.x()?;
            let rs2 = p.x()?;
            let t = p.target()?;
            push_branch(
                b,
                Inst::Branch {
                    cond,
                    rs1,
                    rs2,
                    target: 0,
                },
                t,
            );
        }
        ["ld", w] | ["st", w] if width_of(w).is_some() => {
            let width = width_of(w).unwrap();
            if parts[0] == "ld" {
                let rd = p.x()?;
                let (off, base) = p.addr()?;
                b.push(Inst::Ld {
                    rd,
                    base,
                    off,
                    width,
                });
            } else {
                let src = p.x()?;
                let (off, base) = p.addr()?;
                b.push(Inst::St {
                    src,
                    base,
                    off,
                    width,
                });
            }
        }
        ["fld", w] | ["fst", w] if width_of(w).is_some() => {
            let width = width_of(w).unwrap();
            if parts[0] == "fld" {
                let fd = p.f()?;
                let (off, base) = p.addr()?;
                b.push(Inst::Fld {
                    fd,
                    base,
                    off,
                    width,
                });
            } else {
                let src = p.f()?;
                let (off, base) = p.addr()?;
                b.push(Inst::Fst {
                    src,
                    base,
                    off,
                    width,
                });
            }
        }
        ["fmadd", w] if width_of(w).is_some() => {
            let width = width_of(w).unwrap();
            b.push(Inst::FMac {
                width,
                fd: p.f()?,
                fs1: p.f()?,
                fs2: p.f()?,
                fs3: p.f()?,
            });
        }
        ["fadd" | "fsub" | "fmul" | "fdiv" | "fmin" | "fmax", w] if width_of(w).is_some() => {
            let op = match parts[0] {
                "fadd" => FpOp::Add,
                "fsub" => FpOp::Sub,
                "fmul" => FpOp::Mul,
                "fdiv" => FpOp::Div,
                "fmin" => FpOp::Min,
                _ => FpOp::Max,
            };
            b.push(Inst::FAlu {
                op,
                width: width_of(w).unwrap(),
                fd: p.f()?,
                fs1: p.f()?,
                fs2: p.f()?,
            });
        }
        ["fsqrt" | "fabs" | "fneg" | "fmv", w] if width_of(w).is_some() => {
            let op = match parts[0] {
                "fsqrt" => FpUnOp::Sqrt,
                "fabs" => FpUnOp::Abs,
                "fneg" => FpUnOp::Neg,
                _ => FpUnOp::Mv,
            };
            b.push(Inst::FUn {
                op,
                width: width_of(w).unwrap(),
                fd: p.f()?,
                fs: p.f()?,
            });
        }
        ["fmv", "x", "f"] => {
            let i = Inst::FMvXF {
                rd: p.x()?,
                fs: p.f()?,
            };
            b.push(i);
        }
        ["fmv", "f", "x"] => {
            let i = Inst::FMvFX {
                fd: p.f()?,
                rs: p.x()?,
            };
            b.push(i);
        }
        ["fcvt", "f", "x", w] if width_of(w).is_some() => {
            let i = Inst::FCvtFX {
                width: width_of(w).unwrap(),
                fd: p.f()?,
                rs: p.x()?,
            };
            b.push(i);
        }
        ["fcvt", "x", "f", w] if width_of(w).is_some() => {
            let i = Inst::FCvtXF {
                width: width_of(w).unwrap(),
                rd: p.x()?,
                fs: p.f()?,
            };
            b.push(i);
        }
        // ---- stream configuration ----
        ["ss", d @ ("ld" | "st"), w, rest @ ..] if width_of(w).is_some() => {
            let done = !matches!(rest, ["sta"]);
            if !rest.is_empty() && rest != ["sta"] {
                return Err(p.unknown(m));
            }
            let dir = if *d == "ld" { Dir::Load } else { Dir::Store };
            b.push(Inst::SsStart {
                u: p.v()?,
                dir,
                width: width_of(w).unwrap(),
                base: p.x()?,
                size: p.x()?,
                stride: p.x()?,
                done,
            });
        }
        ["ss", e @ ("app" | "end")] => {
            b.push(Inst::SsApp {
                u: p.v()?,
                offset: p.x()?,
                size: p.x()?,
                stride: p.x()?,
                end: *e == "end",
            });
        }
        ["ss", e @ ("app" | "end"), "mod", t, bh] => {
            let target = param_from(t).ok_or_else(|| p.unknown(m))?;
            let behaviour = match *bh {
                "add" => Behaviour::Add,
                "sub" => Behaviour::Sub,
                _ => return Err(p.unknown(m)),
            };
            b.push(Inst::SsAppMod {
                u: p.v()?,
                target,
                behaviour,
                disp: p.x()?,
                count: p.x()?,
                end: *e == "end",
            });
        }
        ["ss", e @ ("app" | "end"), "ind", t, bh] => {
            let target = param_from(t).ok_or_else(|| p.unknown(m))?;
            let behaviour = match *bh {
                "setadd" => IndirectBehaviour::SetAdd,
                "setsub" => IndirectBehaviour::SetSub,
                "setval" => IndirectBehaviour::SetValue,
                _ => return Err(p.unknown(m)),
            };
            b.push(Inst::SsAppInd {
                u: p.v()?,
                target,
                behaviour,
                origin: p.v()?,
                end: *e == "end",
            });
        }
        ["ss", "suspend" | "resume" | "stop"] => {
            let op = match parts[1] {
                "suspend" => StreamCtl::Suspend,
                "resume" => StreamCtl::Resume,
                _ => StreamCtl::Stop,
            };
            b.push(Inst::SsCtl { op, u: p.v()? });
        }
        ["ss", "getvl", w] if width_of(w).is_some() => {
            b.push(Inst::SsGetVl {
                rd: p.x()?,
                width: width_of(w).unwrap(),
            });
        }
        ["ss", "setvl", w] if width_of(w).is_some() => {
            b.push(Inst::SsSetVl {
                rd: p.x()?,
                rs: p.x()?,
                width: width_of(w).unwrap(),
            });
        }
        ["so", "p", "fromvalid"] => {
            b.push(Inst::PredFromValid {
                pd: p.p()?,
                vs: p.v()?,
            });
        }
        ["ss", "load", w] if width_of(w).is_some() => {
            b.push(Inst::VLoadPost {
                vd: p.v()?,
                base: p.x()?,
                width: width_of(w).unwrap(),
                pred: p.p()?,
            });
        }
        ["ss", "store", w] if width_of(w).is_some() => {
            b.push(Inst::VStorePost {
                vs: p.v()?,
                base: p.x()?,
                width: width_of(w).unwrap(),
                pred: p.p()?,
            });
        }
        ["so", "cfg", "mem", l] => {
            let level = match *l {
                "l1" => MemLevel::L1,
                "l2" => MemLevel::L2,
                "dram" => MemLevel::Mem,
                _ => return Err(p.unknown(m)),
            };
            b.push(Inst::SsCfgMem { u: p.v()?, level });
        }
        // ---- stream / predicate branches ----
        ["so", "b", "nend" | "end"] => {
            let cond = if parts[2] == "nend" {
                StreamCond::NotEnd
            } else {
                StreamCond::End
            };
            let u = p.v()?;
            let t = p.target()?;
            push_branch(b, Inst::SsBranch { cond, u, target: 0 }, t);
        }
        ["so", "b", dim, e @ ("nend" | "end")] if dim.starts_with("dim") => {
            let k: u8 = dim[3..].parse().map_err(|_| p.unknown(m))?;
            let cond = if *e == "nend" {
                StreamCond::DimNotEnd(k)
            } else {
                StreamCond::DimEnd(k)
            };
            let u = p.v()?;
            let t = p.target()?;
            push_branch(b, Inst::SsBranch { cond, u, target: 0 }, t);
        }
        ["so", "b", c @ ("pfirst" | "pany" | "pnone")] => {
            let cond = match *c {
                "pfirst" => PredCond::First,
                "pany" => PredCond::Any,
                _ => PredCond::None,
            };
            let pr = p.p()?;
            let t = p.target()?;
            push_branch(
                b,
                Inst::BrPred {
                    cond,
                    p: pr,
                    target: 0,
                },
                t,
            );
        }
        // ---- vector data processing ----
        ["so", "v", "dup", w, ty] if width_of(w).is_some() => {
            let ty = match *ty {
                "fp" => VType::Fp,
                "sg" => VType::Int,
                _ => return Err(p.unknown(m)),
            };
            b.push(Inst::VDup {
                vd: p.v()?,
                src: p.dup_src()?,
                width: width_of(w).unwrap(),
                ty,
            });
        }
        ["so", "v", "mv"] => {
            b.push(Inst::VMv {
                vd: p.v()?,
                vs: p.v()?,
            });
        }
        ["so", "v", "extr", "f", w] if width_of(w).is_some() => {
            let fd = p.f()?;
            let (vs, lane) = p.v_lane()?;
            b.push(Inst::VExtractF {
                fd,
                vs,
                lane,
                width: width_of(w).unwrap(),
            });
        }
        ["so", "v", "extr", "x", w] if width_of(w).is_some() => {
            let rd = p.x()?;
            let (vs, lane) = p.v_lane()?;
            b.push(Inst::VExtractX {
                rd,
                vs,
                lane,
                width: width_of(w).unwrap(),
            });
        }
        ["so", "a", "mac", "vs", w, ty] if width_of(w).is_some() => {
            let ty = vtype(ty).ok_or_else(|| p.unknown(m))?;
            b.push(Inst::VMacVS {
                ty,
                width: width_of(w).unwrap(),
                vd: p.v()?,
                vs1: p.v()?,
                scalar: p.dup_src()?,
                pred: p.p()?,
            });
        }
        ["so", "a", "mac", w, ty] if width_of(w).is_some() => {
            let ty = vtype(ty).ok_or_else(|| p.unknown(m))?;
            b.push(Inst::VMac {
                ty,
                width: width_of(w).unwrap(),
                vd: p.v()?,
                vs1: p.v()?,
                vs2: p.v()?,
                pred: p.p()?,
            });
        }
        ["so", "a", h @ ("hadd" | "hmax" | "hmin"), w, ty] if width_of(w).is_some() => {
            let op = match *h {
                "hadd" => HorizOp::Add,
                "hmax" => HorizOp::Max,
                _ => HorizOp::Min,
            };
            let ty = vtype(ty).ok_or_else(|| p.unknown(m))?;
            b.push(Inst::VRed {
                op,
                ty,
                width: width_of(w).unwrap(),
                vd: p.v()?,
                vs: p.v()?,
                pred: p.p()?,
            });
        }
        ["so", "a", u @ ("abs" | "neg" | "sqrt" | "mvp"), w, ty] if width_of(w).is_some() => {
            let op = match *u {
                "abs" => VUnOp::Abs,
                "neg" => VUnOp::Neg,
                "sqrt" => VUnOp::Sqrt,
                _ => VUnOp::Mv,
            };
            let ty = vtype(ty).ok_or_else(|| p.unknown(m))?;
            b.push(Inst::VUn {
                op,
                ty,
                width: width_of(w).unwrap(),
                vd: p.v()?,
                vs: p.v()?,
                pred: p.p()?,
            });
        }
        ["so", "a", op, "vs", w, ty] if vop_from(op).is_some() && width_of(w).is_some() => {
            let ty = vtype(ty).ok_or_else(|| p.unknown(m))?;
            b.push(Inst::VArithVS {
                op: vop_from(op).unwrap(),
                ty,
                width: width_of(w).unwrap(),
                vd: p.v()?,
                vs1: p.v()?,
                scalar: p.dup_src()?,
                pred: p.p()?,
            });
        }
        ["so", "a", op, w, ty] if vop_from(op).is_some() && width_of(w).is_some() => {
            let ty = vtype(ty).ok_or_else(|| p.unknown(m))?;
            b.push(Inst::VArith {
                op: vop_from(op).unwrap(),
                ty,
                width: width_of(w).unwrap(),
                vd: p.v()?,
                vs1: p.v()?,
                vs2: p.v()?,
                pred: p.p()?,
            });
        }
        ["so", "p", "mov" | "not"] => {
            let op = if parts[2] == "mov" {
                PredOp::Mov
            } else {
                PredOp::Not
            };
            let pd = p.p()?;
            let ps1 = p.p()?;
            b.push(Inst::PredAlu {
                op,
                pd,
                ps1,
                ps2: PReg::P0,
            });
        }
        ["so", "p", "and" | "or"] => {
            let op = if parts[2] == "and" {
                PredOp::And
            } else {
                PredOp::Or
            };
            b.push(Inst::PredAlu {
                op,
                pd: p.p()?,
                ps1: p.p()?,
                ps2: p.p()?,
            });
        }
        ["so", "p", c, w, ty] if width_of(w).is_some() => {
            let op = match *c {
                "eq" => VCmpOp::Eq,
                "ne" => VCmpOp::Ne,
                "lt" => VCmpOp::Lt,
                "le" => VCmpOp::Le,
                "gt" => VCmpOp::Gt,
                "ge" => VCmpOp::Ge,
                _ => return Err(p.unknown(m)),
            };
            let ty = vtype(ty).ok_or_else(|| p.unknown(m))?;
            b.push(Inst::VCmp {
                op,
                ty,
                width: width_of(w).unwrap(),
                pd: p.p()?,
                vs1: p.v()?,
                vs2: p.v()?,
            });
        }
        // ---- SVE-like ----
        ["vl1", w] if width_of(w).is_some() => {
            b.push(Inst::VLoad {
                vd: p.v()?,
                base: p.x()?,
                index: p.x()?,
                width: width_of(w).unwrap(),
                pred: p.p()?,
            });
        }
        ["vs1", w] if width_of(w).is_some() => {
            b.push(Inst::VStore {
                vs: p.v()?,
                base: p.x()?,
                index: p.x()?,
                width: width_of(w).unwrap(),
                pred: p.p()?,
            });
        }
        ["vgather", w] if width_of(w).is_some() => {
            b.push(Inst::VGather {
                vd: p.v()?,
                base: p.x()?,
                idx: p.v()?,
                width: width_of(w).unwrap(),
                pred: p.p()?,
            });
        }
        ["vscatter", w] if width_of(w).is_some() => {
            b.push(Inst::VScatter {
                vs: p.v()?,
                base: p.x()?,
                idx: p.v()?,
                width: width_of(w).unwrap(),
                pred: p.p()?,
            });
        }
        ["whilelt", w] if width_of(w).is_some() => {
            b.push(Inst::WhileLt {
                pd: p.p()?,
                rs1: p.x()?,
                rs2: p.x()?,
                width: width_of(w).unwrap(),
            });
        }
        ["incvl", w] if width_of(w).is_some() => {
            b.push(Inst::IncVl {
                rd: p.x()?,
                width: width_of(w).unwrap(),
            });
        }
        ["cntvl", w] if width_of(w).is_some() => {
            b.push(Inst::CntVl {
                rd: p.x()?,
                width: width_of(w).unwrap(),
            });
        }
        _ => {
            // Plain scalar ALU (register or immediate form).
            if let Some(op) = alu_from(parts[0]) {
                if parts.len() == 1 {
                    let rd = p.x()?;
                    let rs1 = p.x()?;
                    b.push(Inst::Alu {
                        op,
                        rd,
                        rs1,
                        rs2: p.x()?,
                    });
                    return Ok(());
                }
            }
            if parts.len() == 1 && parts[0].ends_with('i') {
                if let Some(op) = alu_from(&parts[0][..parts[0].len() - 1]) {
                    let rd = p.x()?;
                    let rs1 = p.x()?;
                    let imm = p.imm_bits(12)?;
                    b.push(Inst::AluImm { op, rd, rs1, imm });
                    return Ok(());
                }
            }
            return Err(p.unknown(m));
        }
    }
    Ok(())
}

fn vtype(s: &str) -> Option<VType> {
    match s {
        "fp" => Some(VType::Fp),
        "sg" => Some(VType::Int),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saxpy_assembles() {
        // The paper's Fig. 4 saxpy loop.
        let text = "
saxpy:
    ss.ld.w u0, x11, x10, x13
    ss.ld.w u1, x12, x10, x13
    ss.st.w u2, x12, x10, x13
    so.v.dup.w.fp u3, f10
loop:
    so.a.mul.w.fp u4, u3, u0, p0
    so.a.add.w.fp u2, u4, u1, p0
    so.b.nend u0, loop
    halt
";
        let p = assemble("saxpy", text).unwrap();
        assert_eq!(p.len(), 8);
        assert_eq!(p.label("loop"), Some(4));
        assert_eq!(p.fetch(6).unwrap().branch_target(), Some(4));
    }

    #[test]
    fn disassemble_reassemble_roundtrip() {
        let text = "
    li x10, 64
    ss.ld.w.sta u0, x11, x10, x13
    ss.end u0, x0, x10, x13
    so.a.mac.w.fp u2, u0, u1, p0
    so.b.dim0.end u0, 6
    whilelt.w p1, x10, x11
    vl1.w u1, x11, x10, p1
    halt
";
        let p1 = assemble("t", text).unwrap();
        let dis = disassemble_program(&p1);
        let p2 = assemble("t", &dis).unwrap();
        assert_eq!(p1.insts(), p2.insts());
    }

    #[test]
    fn strict_roundtrip_includes_labels_and_name() {
        use crate::reg::XReg;
        let mut b = ProgramBuilder::new("strict");
        b.label("start");
        b.push(Inst::Nop);
        b.branch(BrCond::Eq, XReg::A0, XReg::ZERO, "done");
        b.stream_branch(StreamCond::NotEnd, crate::reg::VReg::new(0), "start");
        b.push(Inst::Halt);
        b.label("done");
        let p = b.build().unwrap();
        // `done` sits past the last instruction; it must survive the trip.
        let p2 = assemble(p.name(), &disassemble_program(&p)).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn unknown_mnemonic_reports_line_and_col() {
        let err = assemble("t", "\n  bogus x0, x1\n").unwrap_err();
        assert_eq!(err.span, Span { line: 2, col: 3 });
        assert_eq!(err.unit, None);
        match err.kind {
            AsmErrorKind::UnknownMnemonic { mnemonic, .. } => assert_eq!(mnemonic, "bogus"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn unknown_mnemonic_suggests_near_miss() {
        let err = assemble("t", "haltt").unwrap_err();
        match err.kind {
            AsmErrorKind::UnknownMnemonic { suggestion, .. } => {
                assert_eq!(suggestion.as_deref(), Some("halt"));
            }
            other => panic!("unexpected: {other:?}"),
        }
        let err = assemble("t", "so.a.madc.w.fp u0, u1, u2, p0").unwrap_err();
        match err.kind {
            AsmErrorKind::UnknownMnemonic { suggestion, .. } => {
                assert_eq!(suggestion.as_deref(), Some("so.a.mac.w.fp"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn bad_operand_reports_detail_and_span() {
        let err = assemble("t", "add x1, x2").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadOperands { .. }));
        // Missing operand points just past the last token.
        assert_eq!(err.span, Span { line: 1, col: 11 });
        let err = assemble("t", "add x1, x2, q3").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadOperands { .. }));
        assert_eq!(err.span, Span { line: 1, col: 13 });
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let p = assemble("t", "; comment\n# another\n\n  halt ; trailing\n").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn memory_ops_parse_address_syntax() {
        let p = assemble("t", "ld.w x10, 8(x11)\nst.d x10, -16(x2)\nhalt").unwrap();
        assert_eq!(
            p.fetch(0).unwrap(),
            Inst::Ld {
                rd: XReg::A0,
                base: XReg::A1,
                off: 8,
                width: ElemWidth::Word
            }
        );
        assert_eq!(
            p.fetch(1).unwrap(),
            Inst::St {
                src: XReg::A0,
                base: XReg::SP,
                off: -16,
                width: ElemWidth::Double
            }
        );
    }

    #[test]
    fn modifier_config_parses() {
        let p = assemble(
            "t",
            "ss.end.mod.size.add u0, x10, x11\nss.end.ind.off.setadd u1, u2\nhalt",
        )
        .unwrap();
        assert!(matches!(
            p.fetch(0).unwrap(),
            Inst::SsAppMod {
                target: Param::Size,
                behaviour: Behaviour::Add,
                end: true,
                ..
            }
        ));
        assert!(matches!(
            p.fetch(1).unwrap(),
            Inst::SsAppInd {
                target: Param::Offset,
                behaviour: IndirectBehaviour::SetAdd,
                end: true,
                ..
            }
        ));
    }

    #[test]
    fn extract_lane_syntax() {
        let p = assemble("t", "so.v.extr.f.w f1, u2[3]\nhalt").unwrap();
        assert_eq!(
            p.fetch(0).unwrap(),
            Inst::VExtractF {
                fd: FReg::new(1),
                vs: VReg::new(2),
                lane: 3,
                width: ElemWidth::Word
            }
        );
    }

    #[test]
    fn hex_immediates() {
        let p = assemble("t", "addi x10, x0, 0x7f\nhalt").unwrap();
        assert_eq!(
            p.fetch(0).unwrap(),
            Inst::AluImm {
                op: AluOp::Add,
                rd: XReg::A0,
                rs1: XReg::ZERO,
                imm: 0x7f
            }
        );
    }

    #[test]
    fn const_directive_resolves_everywhere() {
        let text = "
.const N 64
.const N2 N
.const LANE 3
    li x10, N
    addi x11, x0, N2
    ld.w x12, N(x11)
    so.v.extr.f.w f1, u2[LANE]
    halt
";
        let p = assemble("t", text).unwrap();
        assert_eq!(
            p.fetch(0).unwrap(),
            Inst::AluImm {
                op: AluOp::Add,
                rd: XReg::A0,
                rs1: XReg::ZERO,
                imm: 64
            }
        );
        assert_eq!(
            p.fetch(1).unwrap(),
            Inst::AluImm {
                op: AluOp::Add,
                rd: XReg::A1,
                rs1: XReg::ZERO,
                imm: 64
            }
        );
        assert!(matches!(p.fetch(2).unwrap(), Inst::Ld { off: 64, .. }));
        assert!(matches!(
            p.fetch(3).unwrap(),
            Inst::VExtractF { lane: 3, .. }
        ));
    }

    #[test]
    fn const_defined_after_use_still_resolves() {
        // Constants are collected before instructions are parsed.
        let p = assemble("t", "    li x10, LATE\n.const LATE 7\n    halt").unwrap();
        assert_eq!(
            p.fetch(0).unwrap(),
            Inst::AluImm {
                op: AluOp::Add,
                rd: XReg::A0,
                rs1: XReg::ZERO,
                imm: 7
            }
        );
    }

    #[test]
    fn const_as_branch_target() {
        let p = assemble("t", ".const TGT 1\n    nop\n    jal x0, TGT\n    halt").unwrap();
        assert_eq!(p.fetch(1).unwrap().branch_target(), Some(1));
    }

    #[test]
    fn bad_directives_are_typed_errors() {
        for text in [
            ".const",
            ".const 5 5",
            ".const N",
            ".const N x,y z",
            ".const N nope",
            ".weird 1",
        ] {
            let err = assemble("t", text).unwrap_err();
            assert!(
                matches!(err.kind, AsmErrorKind::BadDirective { .. }),
                "{text}: {err:?}"
            );
        }
        let err = assemble("t", ".const N 1\n.const N 2\nhalt").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadDirective { .. }));
    }

    #[test]
    fn const_label_collision_is_error() {
        let err = assemble("t", ".const foo 1\nfoo:\n    halt").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadDirective { .. }));
        let err = assemble("t", "foo:\n    halt\n.const foo 1").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadDirective { .. }));
    }

    #[test]
    fn include_splices_units() {
        let units = [
            ("main", "    .include prologue\n    halt\n"),
            ("prologue", "start:\n    nop\n"),
        ];
        let p = assemble_units("t", &units).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.label("start"), Some(0));
        assert_eq!(p.fetch(1).unwrap(), Inst::Halt);
    }

    #[test]
    fn include_shares_consts_across_units() {
        let units = [
            ("main", ".include params\n    li x10, COUNT\n    halt\n"),
            ("params", ".const COUNT 32\n"),
        ];
        let p = assemble_units("t", &units).unwrap();
        assert_eq!(
            p.fetch(0).unwrap(),
            Inst::AluImm {
                op: AluOp::Add,
                rd: XReg::A0,
                rs1: XReg::ZERO,
                imm: 32
            }
        );
    }

    #[test]
    fn include_cycle_is_typed_error() {
        let units = [("a", ".include b\n"), ("b", ".include a\n")];
        let err = assemble_units("t", &units).unwrap_err();
        assert_eq!(err.unit.as_deref(), Some("b"));
        match err.kind {
            AsmErrorKind::IncludeCycle { unit } => assert_eq!(unit, "a"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn unknown_include_is_typed_error() {
        let err = assemble_units("t", &[("a", ".include nope\n    halt\n")]).unwrap_err();
        assert_eq!(err.unit.as_deref(), Some("a"));
        assert_eq!(err.span.line, 1);
        match err.kind {
            AsmErrorKind::UnknownInclude { unit } => assert_eq!(unit, "nope"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn unit_errors_carry_unit_name_in_display() {
        let units = [("main", ".include lib\n    halt\n"), ("lib", "\n  bogus\n")];
        let err = assemble_units("t", &units).unwrap_err();
        assert_eq!(err.unit.as_deref(), Some("lib"));
        assert_eq!(err.span, Span { line: 2, col: 3 });
        assert!(err.to_string().starts_with("lib:2:3:"), "{err}");
    }

    #[test]
    fn duplicate_label_reports_second_definition_site() {
        let err = assemble("t", "a:\n    nop\na:\n    halt").unwrap_err();
        assert_eq!(err.span, Span { line: 3, col: 1 });
        match err.kind {
            AsmErrorKind::DuplicateLabel { label } => assert_eq!(label, "a"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn undefined_symbol_reports_token_span() {
        let err = assemble("t", "so.b.nend u0, nowhere\nhalt").unwrap_err();
        assert_eq!(err.span, Span { line: 1, col: 15 });
        match err.kind {
            AsmErrorKind::UndefinedSymbol { symbol } => assert_eq!(symbol, "nowhere"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn hostile_inputs_error_instead_of_panicking() {
        // The first two used to panic via inverted slice ranges in the
        // off(base) / u[lane] scanners.
        for text in [
            "ld.w x1, )8(x2",
            "so.v.extr.f.w f1, ]u2[",
            "ld.w x1, 8)x2(",
            "ld.w x1, (x2",
            "so.v.extr.f.w f1, u2[",
            "add x1, x2,",
            "so.b.dim u0, 3",
            "so.b.dim99999999 u0, 3",
            ":\n::\nhalt",
            ".include",
            "x: .include y",
        ] {
            let _ = assemble("t", text);
        }
        assert!(assemble("t", "ld.w x1, )8(x2").is_err());
        assert!(assemble("t", "so.v.extr.f.w f1, ]u2[").is_err());
    }

    #[test]
    fn empty_units_rejected() {
        assert!(assemble_units("t", &[]).is_err());
        let units = [("a", "halt\n"), ("a", "nop\n")];
        assert!(assemble_units("t", &units).is_err());
    }
}
