//! Instruction set architecture for the Unlimited Vector Extension (UVE).
//!
//! Implements Section III of *"Unlimited Vector Extension with Data Streaming
//! Support"* (ISCA 2021): the UVE streaming instructions (`ss.*`
//! configuration/control, `so.*` stream/vector data processing and
//! stream-conditional branches), the scalar RISC-V-flavoured base subset, and
//! the SVE-like baseline instructions (`whilelt`, predicated vector
//! load/store, gather/scatter) used by the paper's evaluation.
//!
//! The crate provides:
//!
//! - [`Inst`]: the instruction type shared by the functional emulator and the
//!   timing model, with operand ([`Inst::srcs`]/[`Inst::dests`]) and resource
//!   ([`Inst::exec_class`]) metadata;
//! - [`Program`] / [`ProgramBuilder`]: label-resolved instruction sequences;
//! - [`assemble`] / [`disassemble_program`]: the textual assembler;
//! - [`encode`] / [`decode`]: dense 32-bit binary encodings.
//!
//! # Example
//!
//! The paper's Fig. 1.D saxpy kernel:
//!
//! ```rust
//! use uve_isa::assemble;
//!
//! # fn main() -> Result<(), uve_isa::AsmError> {
//! let program = assemble("saxpy", r#"
//!     ss.ld.w u0, x11, x10, x13   ; x stream
//!     ss.ld.w u1, x12, x10, x13   ; y stream (input)
//!     ss.st.w u2, x12, x10, x13   ; y stream (output)
//!     so.v.dup.w.fp u3, f10       ; broadcast a
//! loop:
//!     so.a.mul.w.fp u4, u3, u0, p0
//!     so.a.add.w.fp u2, u4, u1, p0
//!     so.b.nend u0, loop
//!     halt
//! "#)?;
//! assert_eq!(program.len(), 8);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod asm;
mod encode;
pub mod flat;
mod inst;
mod program;
mod reg;

pub use asm::{
    assemble, assemble_units, disassemble, disassemble_program, AsmError, AsmErrorKind, Span,
};
pub use encode::{decode, encode, encode_program, DecodeError, EncodeError};
pub use flat::{lower, FlatOp};
pub use inst::{
    AluOp, BrCond, Dir, DupSrc, ExecClass, FpOp, FpUnOp, HorizOp, Inst, MemLevel, PredCond, PredOp,
    RegList, StreamCond, StreamCtl, VCmpOp, VOp, VType, VUnOp,
};
pub use program::{Program, ProgramBuilder, ProgramError};
pub use reg::{
    FReg, PReg, RegClass, RegRef, VReg, XReg, NUM_FREGS, NUM_PREGS, NUM_VREGS, NUM_XREGS,
};

// Re-export the stream-configuration vocabulary used in instruction fields.
pub use uve_stream::{Behaviour, ElemWidth, IndirectBehaviour, Param};
