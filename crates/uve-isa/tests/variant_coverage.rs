//! Exhaustive instruction-variant coverage: one instance of every `Inst`
//! variant must survive disassemble → assemble and encode → decode.

use uve_isa::*;

fn one_of_each() -> Vec<Inst> {
    let x = XReg::A0;
    let x2 = XReg::A1;
    let x3 = XReg::A2;
    let f = FReg::FA0;
    let f2 = FReg::FA1;
    let f3 = FReg::FT0;
    let v = VReg::new(1);
    let v2 = VReg::new(2);
    let v3 = VReg::new(3);
    let p = PReg::new(1);
    let w = ElemWidth::Word;
    vec![
        Inst::Alu {
            op: AluOp::Add,
            rd: x,
            rs1: x2,
            rs2: x3,
        },
        Inst::AluImm {
            op: AluOp::Xor,
            rd: x,
            rs1: x2,
            imm: -5,
        },
        Inst::Lui { rd: x, imm: 77 },
        Inst::Ld {
            rd: x,
            base: x2,
            off: 8,
            width: w,
        },
        Inst::St {
            src: x,
            base: x2,
            off: -8,
            width: w,
        },
        Inst::Fld {
            fd: f,
            base: x,
            off: 4,
            width: w,
        },
        Inst::Fst {
            src: f,
            base: x,
            off: 4,
            width: w,
        },
        Inst::FAlu {
            op: FpOp::Mul,
            width: w,
            fd: f,
            fs1: f2,
            fs2: f3,
        },
        Inst::FMac {
            width: w,
            fd: f,
            fs1: f2,
            fs2: f3,
            fs3: f,
        },
        Inst::FUn {
            op: FpUnOp::Sqrt,
            width: w,
            fd: f,
            fs: f2,
        },
        Inst::FMvXF { rd: x, fs: f },
        Inst::FMvFX { fd: f, rs: x },
        Inst::FCvtFX {
            width: w,
            fd: f,
            rs: x,
        },
        Inst::FCvtXF {
            width: w,
            rd: x,
            fs: f,
        },
        Inst::Branch {
            cond: BrCond::Ltu,
            rs1: x,
            rs2: x2,
            target: 3,
        },
        Inst::Jal {
            rd: XReg::RA,
            target: 7,
        },
        Inst::Halt,
        Inst::Nop,
        Inst::SsStart {
            u: v,
            dir: Dir::Load,
            width: w,
            base: x,
            size: x2,
            stride: x3,
            done: false,
        },
        Inst::SsApp {
            u: v,
            offset: x,
            size: x2,
            stride: x3,
            end: true,
        },
        Inst::SsAppMod {
            u: v,
            target: Param::Size,
            behaviour: Behaviour::Sub,
            disp: x,
            count: x2,
            end: false,
        },
        Inst::SsAppInd {
            u: v,
            target: Param::Offset,
            behaviour: IndirectBehaviour::SetValue,
            origin: v2,
            end: true,
        },
        Inst::SsCtl {
            op: StreamCtl::Suspend,
            u: v,
        },
        Inst::SsCfgMem {
            u: v,
            level: MemLevel::L1,
        },
        Inst::SsBranch {
            cond: StreamCond::DimNotEnd(2),
            u: v,
            target: 1,
        },
        Inst::SsGetVl { rd: x, width: w },
        Inst::SsSetVl {
            rd: x,
            rs: x2,
            width: w,
        },
        Inst::VDup {
            vd: v,
            src: DupSrc::F(f),
            width: w,
            ty: VType::Fp,
        },
        Inst::VMv { vd: v, vs: v2 },
        Inst::VUn {
            op: VUnOp::Neg,
            ty: VType::Fp,
            width: w,
            vd: v,
            vs: v2,
            pred: p,
        },
        Inst::VArith {
            op: VOp::Min,
            ty: VType::Int,
            width: w,
            vd: v,
            vs1: v2,
            vs2: v3,
            pred: p,
        },
        Inst::VArithVS {
            op: VOp::Mul,
            ty: VType::Fp,
            width: w,
            vd: v,
            vs1: v2,
            scalar: DupSrc::F(f),
            pred: p,
        },
        Inst::VMac {
            ty: VType::Fp,
            width: w,
            vd: v,
            vs1: v2,
            vs2: v3,
            pred: p,
        },
        Inst::VMacVS {
            ty: VType::Fp,
            width: w,
            vd: v,
            vs1: v2,
            scalar: DupSrc::F(f),
            pred: p,
        },
        Inst::VRed {
            op: HorizOp::Max,
            ty: VType::Fp,
            width: w,
            vd: v,
            vs: v2,
            pred: p,
        },
        Inst::VCmp {
            op: VCmpOp::Le,
            ty: VType::Int,
            width: w,
            pd: p,
            vs1: v,
            vs2: v2,
        },
        Inst::PredAlu {
            op: PredOp::And,
            pd: p,
            ps1: PReg::new(2),
            ps2: PReg::new(3),
        },
        Inst::PredFromValid { pd: p, vs: v },
        Inst::BrPred {
            cond: PredCond::Any,
            p,
            target: 2,
        },
        Inst::VExtractF {
            fd: f,
            vs: v,
            lane: 7,
            width: w,
        },
        Inst::VExtractX {
            rd: x,
            vs: v,
            lane: 0,
            width: w,
        },
        Inst::VLoad {
            vd: v,
            base: x,
            index: x2,
            width: w,
            pred: p,
        },
        Inst::VStore {
            vs: v,
            base: x,
            index: x2,
            width: w,
            pred: p,
        },
        Inst::VGather {
            vd: v,
            base: x,
            idx: v2,
            width: w,
            pred: p,
        },
        Inst::VScatter {
            vs: v,
            base: x,
            idx: v2,
            width: w,
            pred: p,
        },
        Inst::WhileLt {
            pd: p,
            rs1: x,
            rs2: x2,
            width: w,
        },
        Inst::IncVl { rd: x, width: w },
        Inst::CntVl { rd: x, width: w },
        Inst::VLoadPost {
            vd: v,
            base: x,
            width: w,
            pred: p,
        },
        Inst::VStorePost {
            vs: v,
            base: x,
            width: w,
            pred: p,
        },
    ]
}

#[test]
fn every_variant_roundtrips_through_text() {
    for inst in one_of_each() {
        let text = format!("{}\n", disassemble(&inst));
        let prog = assemble("t", &text).unwrap_or_else(|e| panic!("{inst:?}: {e}"));
        assert_eq!(prog.insts()[0], inst, "text was: {text}");
    }
}

#[test]
fn every_variant_roundtrips_through_binary() {
    for inst in one_of_each() {
        let word = encode(&inst, 0).unwrap_or_else(|e| panic!("{inst:?}: {e}"));
        assert_eq!(decode(word, 0).unwrap(), inst, "word={word:#010x}");
    }
}

#[test]
fn every_variant_reports_metadata() {
    for inst in one_of_each() {
        // Operand and resource metadata must never panic and must be
        // consistent.
        let _ = inst.exec_class();
        let srcs = inst.srcs();
        let dests = inst.dests();
        assert!(srcs.len() <= 5, "{inst:?}");
        assert!(dests.len() <= 2, "{inst:?}");
        if inst.is_branch() {
            assert!(inst.branch_target().is_some());
        }
    }
}
