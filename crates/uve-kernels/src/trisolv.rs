//! Benchmark H — **Trisolv** (algebra, Polybench): forward substitution on
//! a lower-triangular system, `x[i] = (b[i] − Σ_{j<i} L[i][j]·x[j]) / L[i][i]`.
//!
//! The UVE flavour uses *static size modifiers* to grow the `L`-row and
//! `x`-prefix streams by one element per row — the paper's Fig. 3.B4
//! triangular pattern — plus a diagonal stream (`stride = n+1`).

use crate::common::{asm, check_f32, gen_f32_range, region, TOL};
use crate::{Benchmark, Flavor};
use uve_core::Emulator;
use uve_isa::Program;

/// The Trisolv kernel.
#[derive(Debug, Clone, Copy)]
pub struct Trisolv {
    n: usize,
}

impl Trisolv {
    /// `L` is `n×n` lower-triangular (n ≥ 2).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2);
        Self { n }
    }

    fn l(&self) -> u64 {
        region(0)
    }

    fn b(&self) -> u64 {
        region(1)
    }

    fn x(&self) -> u64 {
        region(2)
    }

    fn l_data(&self) -> Vec<f32> {
        let n = self.n;
        let mut l = gen_f32_range(0x70, n * n, -0.5, 0.5);
        for i in 0..n {
            // Dominant diagonal away from zero keeps the solve stable.
            l[i * n + i] = 2.0 + (i % 5) as f32 * 0.25;
        }
        l
    }

    fn reference(&self) -> Vec<f32> {
        let n = self.n;
        let l = self.l_data();
        let b = gen_f32_range(0x71, n, -1.0, 1.0);
        let mut x = vec![0f32; n];
        for i in 0..n {
            let mut acc = 0f32;
            for j in 0..i {
                acc += l[i * n + j] * x[j];
            }
            x[i] = (b[i] - acc) / l[i * n + i];
        }
        x
    }

    fn uve_text(&self) -> String {
        let n = self.n;
        let (l, b, x) = (self.l(), self.b(), self.x());
        let l1 = l + 4 * n as u64; // &L[1][0]
        let ldiag = l + 4 * (n as u64 + 1); // &L[1][1]
        let b1 = b + 4; // &b[1]
        let x1 = x + 4; // &x[1]
        format!(
            "
    li x10, {n}
    addi x9, x10, -1       ; n-1 rows in the streamed phase
    li x13, 1
    ; x[0] = b[0] / L[0][0]
    li x20, {b}
    fld.w f1, 0(x20)
    li x20, {l}
    fld.w f2, 0(x20)
    fdiv.w f3, f1, f2
    li x20, {x}
    fst.w f3, 0(x20)
    ; L rows, growing 1,2,…,n-1 (Fig. 3.B4)
    li x20, {l1}
    ss.ld.w.sta u0, x20, x0, x13
    ss.app u0, x0, x9, x10
    ss.end.mod.size.add u0, x13, x9
    ; x prefix, growing in lockstep
    li x20, {x}
    ss.ld.w.sta u1, x20, x0, x13
    ss.app u1, x0, x9, x0
    ss.end.mod.size.add u1, x13, x9
    ; b[i], one element per row
    li x6, 1
    li x20, {b1}
    ss.ld.w.sta u2, x20, x6, x13
    ss.end u2, x0, x9, x13
    ; diagonal L[i][i]
    addi x7, x10, 1
    li x20, {ldiag}
    ss.ld.w.sta u3, x20, x6, x13
    ss.end u3, x0, x9, x7
    ; x[i] out
    li x20, {x1}
    ss.st.w.sta u4, x20, x6, x13
    ss.end u4, x0, x9, x13
trow:
    so.v.dup.w.fp u5, f31
tdot:
    so.a.mac.w.fp u5, u0, u1, p0
    so.b.dim0.nend u0, tdot
    so.a.hadd.w.fp u6, u5, p0
    so.a.sub.w.fp u6, u2, u6, p0
    so.a.div.w.fp u4, u6, u3, p0
    so.b.nend u0, trow
    halt
"
        )
    }

    fn sve_text(&self) -> String {
        let n = self.n;
        let (l, b, x) = (self.l(), self.b(), self.x());
        format!(
            "
    li x10, {n}
    li x20, {l}
    li x21, {b}
    li x22, {x}
    li x14, 0              ; i
row:
    so.v.dup.w.fp u4, f31
    li x15, 0              ; j
    mul x16, x14, x10
    slli x16, x16, 2
    add x16, x20, x16      ; &L[i][0]
    whilelt.w p1, x15, x14
    so.b.pnone p1, finish
dot:
    vl1.w u1, x16, x15, p1
    vl1.w u2, x22, x15, p1
    so.a.mac.w.fp u4, u1, u2, p1
    incvl.w x15
    whilelt.w p1, x15, x14
    so.b.pfirst p1, dot
finish:
    so.a.hadd.w.fp u5, u4, p0
    so.v.extr.f.w f1, u5[0]
    slli x17, x14, 2
    add x18, x21, x17
    fld.w f2, 0(x18)       ; b[i]
    fsub.w f2, f2, f1
    slli x18, x14, 2
    mul x19, x14, x10
    add x19, x19, x14
    slli x19, x19, 2
    add x19, x20, x19
    fld.w f3, 0(x19)       ; L[i][i]
    fdiv.w f2, f2, f3
    add x18, x22, x17
    fst.w f2, 0(x18)
    addi x14, x14, 1
    blt x14, x10, row
    halt
"
        )
    }

    fn scalar_text(&self) -> String {
        let n = self.n;
        let (l, b, x) = (self.l(), self.b(), self.x());
        format!(
            "
    li x10, {n}
    li x20, {l}
    li x21, {b}
    li x22, {x}
    li x14, 0
row:
    fmv.w f2, f31
    li x15, 0
    mul x16, x14, x10
    slli x16, x16, 2
    add x16, x20, x16
    li x17, {x}
    beq x15, x14, finish
dot:
    fld.w f3, 0(x16)
    fld.w f4, 0(x17)
    fmadd.w f2, f3, f4, f2
    addi x16, x16, 4
    addi x17, x17, 4
    addi x15, x15, 1
    blt x15, x14, dot
finish:
    slli x17, x14, 2
    add x18, x21, x17
    fld.w f5, 0(x18)
    fsub.w f5, f5, f2
    mul x19, x14, x10
    add x19, x19, x14
    slli x19, x19, 2
    add x19, x20, x19
    fld.w f6, 0(x19)
    fdiv.w f5, f5, f6
    add x18, x22, x17
    fst.w f5, 0(x18)
    addi x14, x14, 1
    blt x14, x10, row
    halt
"
        )
    }
}

impl Benchmark for Trisolv {
    fn streams(&self) -> usize {
        5
    }

    fn pattern(&self) -> &'static str {
        "2D + static modifier"
    }

    fn name(&self) -> &'static str {
        "Trisolv"
    }

    fn domain(&self) -> &'static str {
        "algebra"
    }

    fn program(&self, flavor: Flavor) -> Program {
        match flavor {
            Flavor::Uve => asm("trisolv-uve", &self.uve_text()),
            Flavor::Sve | Flavor::Neon => asm("trisolv-sve", &self.sve_text()),
            Flavor::Scalar => asm("trisolv-scalar", &self.scalar_text()),
        }
    }

    fn setup(&self, emu: &mut Emulator) {
        emu.mem.write_f32_slice(self.l(), &self.l_data());
        emu.mem
            .write_f32_slice(self.b(), &gen_f32_range(0x71, self.n, -1.0, 1.0));
    }

    fn check(&self, emu: &Emulator) -> Result<(), String> {
        check_f32(emu, "x", self.x(), &self.reference(), 10.0 * TOL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_checked;

    #[test]
    fn all_flavors_correct() {
        for n in [8usize, 33] {
            let b = Trisolv::new(n);
            for f in Flavor::all() {
                run_checked(&b, f).unwrap();
            }
        }
    }

    #[test]
    fn uve_uses_five_streams_with_modifiers() {
        // Matches the paper's table: 5 streams, 2-D + static modifier.
        let b = Trisolv::new(16);
        let r = run_checked(&b, Flavor::Uve).unwrap();
        assert_eq!(r.result.trace.streams.len(), 5);
    }
}
