//! Benchmark L — **HACCmk** (n-body, CORAL): the short-range force kernel.
//! For every particle `i`, accumulate over all particles `j`:
//!
//! ```text
//! d = p[j] - p[i];  r2 = |d|² + ε;  f = m[j] / (r2·√r2);  F[i] += d·f
//! ```
//!
//! The UVE flavour streams the coordinate and mass arrays once per `i`
//! (re-read outer dimension with stride 0) and emits the three force
//! components through one-element-per-row output streams.

use crate::common::{asm, check_f32, gen_f32, gen_f32_range, region, TOL};
use crate::{Benchmark, Flavor};
use uve_core::Emulator;
use uve_isa::{FReg, Program};

/// The HACCmk kernel.
#[derive(Debug, Clone, Copy)]
pub struct Haccmk {
    n: usize,
}

const EPS: f32 = 0.01;

impl Haccmk {
    /// `n` particles (all-pairs interaction).
    pub fn new(n: usize) -> Self {
        Self { n }
    }

    fn coord(&self, c: usize) -> u64 {
        region(c) // x, y, z
    }

    fn mass(&self) -> u64 {
        region(3)
    }

    fn force(&self, c: usize) -> u64 {
        region(4 + c) // fx, fy, fz
    }

    fn inputs(&self) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
        (
            gen_f32(0x50, self.n),
            gen_f32(0x51, self.n),
            gen_f32(0x52, self.n),
            gen_f32_range(0x53, self.n, 0.5, 1.5),
        )
    }

    fn reference(&self) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let n = self.n;
        let (x, y, z, m) = self.inputs();
        let mut fx = vec![0f32; n];
        let mut fy = vec![0f32; n];
        let mut fz = vec![0f32; n];
        for i in 0..n {
            for j in 0..n {
                let dx = x[j] - x[i];
                let dy = y[j] - y[i];
                let dz = z[j] - z[i];
                let r2 = dx * dx + dy * dy + dz * dz + EPS;
                let f = m[j] / (r2 * r2.sqrt());
                fx[i] += dx * f;
                fy[i] += dy * f;
                fz[i] += dz * f;
            }
        }
        (fx, fy, fz)
    }

    fn uve_text(&self) -> String {
        let n = self.n;
        let (x, y, z) = (self.coord(0), self.coord(1), self.coord(2));
        let m = self.mass();
        let (fx, fy, fz) = (self.force(0), self.force(1), self.force(2));
        format!(
            "
    li x10, {n}
    li x13, 1
    li x20, {x}
    ss.ld.w.sta u0, x20, x10, x13
    ss.end u0, x0, x10, x0
    li x20, {y}
    ss.ld.w.sta u1, x20, x10, x13
    ss.end u1, x0, x10, x0
    li x20, {z}
    ss.ld.w.sta u2, x20, x10, x13
    ss.end u2, x0, x10, x0
    li x20, {m}
    ss.ld.w.sta u3, x20, x10, x13
    ss.end u3, x0, x10, x0
    li x6, 1
    li x20, {fx}
    ss.st.w.sta u4, x20, x6, x13
    ss.end u4, x0, x10, x13
    li x20, {fy}
    ss.st.w.sta u5, x20, x6, x13
    ss.end u5, x0, x10, x13
    li x20, {fz}
    ss.st.w.sta u6, x20, x6, x13
    ss.end u6, x0, x10, x13
    li x21, {x}
    li x22, {y}
    li x23, {z}
iloop:
    fld.w f1, 0(x21)
    addi x21, x21, 4
    fld.w f2, 0(x22)
    addi x22, x22, 4
    fld.w f3, 0(x23)
    addi x23, x23, 4
    so.v.dup.w.fp u10, f1
    so.v.dup.w.fp u11, f2
    so.v.dup.w.fp u12, f3
    so.v.dup.w.fp u13, f31
    so.v.dup.w.fp u14, f31
    so.v.dup.w.fp u15, f31
jloop:
    so.a.sub.w.fp u16, u0, u10, p0
    so.a.sub.w.fp u17, u1, u11, p0
    so.a.sub.w.fp u18, u2, u12, p0
    so.a.mul.w.fp u19, u16, u16, p0
    so.a.mac.w.fp u19, u17, u17, p0
    so.a.mac.w.fp u19, u18, u18, p0
    so.a.add.vs.w.fp u19, u19, f4, p0
    so.a.sqrt.w.fp u20, u19, p0
    so.a.mul.w.fp u20, u20, u19, p0
    so.a.div.w.fp u21, u3, u20, p0
    so.a.mac.w.fp u13, u16, u21, p0
    so.a.mac.w.fp u14, u17, u21, p0
    so.a.mac.w.fp u15, u18, u21, p0
    so.b.dim0.nend u0, jloop
    so.a.hadd.w.fp u4, u13, p0
    so.a.hadd.w.fp u5, u14, p0
    so.a.hadd.w.fp u6, u15, p0
    so.b.nend u0, iloop
    halt
"
        )
    }

    fn sve_text(&self) -> String {
        let n = self.n;
        let (x, y, z) = (self.coord(0), self.coord(1), self.coord(2));
        let m = self.mass();
        let (fx, fy, fz) = (self.force(0), self.force(1), self.force(2));
        format!(
            "
    li x10, {n}
    li x21, {x}
    li x22, {y}
    li x23, {z}
    li x24, {m}
    li x14, 0
iloop:
    slli x16, x14, 2
    add x17, x21, x16
    fld.w f1, 0(x17)
    add x17, x22, x16
    fld.w f2, 0(x17)
    add x17, x23, x16
    fld.w f3, 0(x17)
    so.v.dup.w.fp u10, f1
    so.v.dup.w.fp u11, f2
    so.v.dup.w.fp u12, f3
    so.v.dup.w.fp u13, f31
    so.v.dup.w.fp u14, f31
    so.v.dup.w.fp u15, f31
    li x15, 0
    whilelt.w p1, x15, x10
jloop:
    vl1.w u0, x21, x15, p1
    vl1.w u1, x22, x15, p1
    vl1.w u2, x23, x15, p1
    vl1.w u3, x24, x15, p1
    so.a.sub.w.fp u16, u0, u10, p1
    so.a.sub.w.fp u17, u1, u11, p1
    so.a.sub.w.fp u18, u2, u12, p1
    so.a.mul.w.fp u19, u16, u16, p1
    so.a.mac.w.fp u19, u17, u17, p1
    so.a.mac.w.fp u19, u18, u18, p1
    so.a.add.vs.w.fp u19, u19, f4, p1
    so.a.sqrt.w.fp u20, u19, p1
    so.a.mul.w.fp u20, u20, u19, p1
    so.a.div.w.fp u21, u3, u20, p1
    so.a.mac.w.fp u13, u16, u21, p1
    so.a.mac.w.fp u14, u17, u21, p1
    so.a.mac.w.fp u15, u18, u21, p1
    incvl.w x15
    whilelt.w p1, x15, x10
    so.b.pfirst p1, jloop
    so.a.hadd.w.fp u16, u13, p0
    so.v.extr.f.w f5, u16[0]
    li x20, {fx}
    add x20, x20, x16
    fst.w f5, 0(x20)
    so.a.hadd.w.fp u16, u14, p0
    so.v.extr.f.w f5, u16[0]
    li x20, {fy}
    add x20, x20, x16
    fst.w f5, 0(x20)
    so.a.hadd.w.fp u16, u15, p0
    so.v.extr.f.w f5, u16[0]
    li x20, {fz}
    add x20, x20, x16
    fst.w f5, 0(x20)
    addi x14, x14, 1
    blt x14, x10, iloop
    halt
"
        )
    }

    fn scalar_text(&self) -> String {
        let n = self.n;
        let (x, y, z) = (self.coord(0), self.coord(1), self.coord(2));
        let m = self.mass();
        let (fx, fy, fz) = (self.force(0), self.force(1), self.force(2));
        format!(
            "
    li x10, {n}
    li x21, {x}
    li x22, {y}
    li x23, {z}
    li x24, {m}
    li x14, 0
iloop:
    slli x16, x14, 2
    add x17, x21, x16
    fld.w f1, 0(x17)
    add x17, x22, x16
    fld.w f2, 0(x17)
    add x17, x23, x16
    fld.w f3, 0(x17)
    fmv.w f20, f31
    fmv.w f21, f31
    fmv.w f22, f31
    li x15, 0
    li x25, {x}
    li x26, {y}
    li x27, {z}
    li x28, {m}
jloop:
    fld.w f5, 0(x25)
    fsub.w f5, f5, f1
    fld.w f6, 0(x26)
    fsub.w f6, f6, f2
    fld.w f7, 0(x27)
    fsub.w f7, f7, f3
    fmul.w f8, f5, f5
    fmadd.w f8, f6, f6, f8
    fmadd.w f8, f7, f7, f8
    fadd.w f8, f8, f4
    fsqrt.w f9, f8
    fmul.w f9, f9, f8
    fld.w f11, 0(x28)
    fdiv.w f11, f11, f9
    fmadd.w f20, f5, f11, f20
    fmadd.w f21, f6, f11, f21
    fmadd.w f22, f7, f11, f22
    addi x25, x25, 4
    addi x26, x26, 4
    addi x27, x27, 4
    addi x28, x28, 4
    addi x15, x15, 1
    blt x15, x10, jloop
    li x20, {fx}
    add x20, x20, x16
    fst.w f20, 0(x20)
    li x20, {fy}
    add x20, x20, x16
    fst.w f21, 0(x20)
    li x20, {fz}
    add x20, x20, x16
    fst.w f22, 0(x20)
    addi x14, x14, 1
    blt x14, x10, iloop
    halt
"
        )
    }
}

impl Benchmark for Haccmk {
    fn streams(&self) -> usize {
        7
    }

    fn pattern(&self) -> &'static str {
        "2D"
    }

    fn name(&self) -> &'static str {
        "HACCmk"
    }

    fn domain(&self) -> &'static str {
        "n-body"
    }

    fn program(&self, flavor: Flavor) -> Program {
        match flavor {
            Flavor::Uve => asm("haccmk-uve", &self.uve_text()),
            Flavor::Sve | Flavor::Neon => asm("haccmk-sve", &self.sve_text()),
            Flavor::Scalar => asm("haccmk-scalar", &self.scalar_text()),
        }
    }

    fn setup(&self, emu: &mut Emulator) {
        emu.set_f(FReg::new(4), f64::from(EPS));
        let (x, y, z, m) = self.inputs();
        emu.mem.write_f32_slice(self.coord(0), &x);
        emu.mem.write_f32_slice(self.coord(1), &y);
        emu.mem.write_f32_slice(self.coord(2), &z);
        emu.mem.write_f32_slice(self.mass(), &m);
    }

    fn check(&self, emu: &Emulator) -> Result<(), String> {
        let (fx, fy, fz) = self.reference();
        check_f32(emu, "fx", self.force(0), &fx, 20.0 * TOL)?;
        check_f32(emu, "fy", self.force(1), &fy, 20.0 * TOL)?;
        check_f32(emu, "fz", self.force(2), &fz, 20.0 * TOL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_checked;

    #[test]
    fn all_flavors_correct() {
        for n in [32usize, 21] {
            let b = Haccmk::new(n);
            for f in Flavor::all() {
                run_checked(&b, f).unwrap();
            }
        }
    }
}
