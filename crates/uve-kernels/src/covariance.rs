//! Benchmark N — **Covariance** (data mining, Polybench): column means,
//! mean subtraction, then the `m×m` covariance matrix of an `n×m` data
//! matrix.
//!
//! Not vectorized by the paper's ARM compiler (scalar SVE/NEON baselines);
//! the UVE flavour uses the GEMM-style multi-dimensional descriptors to
//! vectorize all three phases.

use crate::common::{asm, check_f32, gen_f32, region, TOL};
use crate::{Benchmark, Flavor};
use uve_core::Emulator;
use uve_isa::{FReg, Program};

/// The Covariance kernel.
#[derive(Debug, Clone, Copy)]
pub struct Covariance {
    m: usize,
    n: usize,
}

impl Covariance {
    /// `m` variables (columns) over `n` samples (rows); `m` must be a
    /// multiple of 16.
    ///
    /// # Panics
    ///
    /// Panics unless `m % 16 == 0` and `n ≥ 2`.
    pub fn new(m: usize, n: usize) -> Self {
        assert!(m.is_multiple_of(16), "m must be a multiple of 16");
        assert!(n >= 2);
        Self { m, n }
    }

    fn data(&self) -> u64 {
        region(0)
    }

    fn mean(&self) -> u64 {
        region(1)
    }

    fn cov(&self) -> u64 {
        region(2)
    }

    fn reference(&self) -> (Vec<f32>, Vec<f32>) {
        let (m, n) = (self.m, self.n);
        let mut data = gen_f32(0xA0, n * m);
        let mut mean = vec![0f32; m];
        for j in 0..m {
            for i in 0..n {
                mean[j] += data[i * m + j];
            }
            mean[j] /= n as f32;
        }
        for i in 0..n {
            for j in 0..m {
                data[i * m + j] -= mean[j];
            }
        }
        let mut cov = vec![0f32; m * m];
        for i in 0..m {
            for j in 0..m {
                let mut acc = 0f32;
                for k in 0..n {
                    acc += data[k * m + i] * data[k * m + j];
                }
                cov[i * m + j] = acc / (n - 1) as f32;
            }
        }
        (mean, cov)
    }

    fn uve_text(&self) -> String {
        let (m, n) = (self.m, self.n);
        let (data, mean, cov) = (self.data(), self.mean(), self.cov());
        format!(
            "
    li x10, {n}
    li x11, {m}
    ss.getvl.w x5
    div x6, x11, x5            ; mb = m / vl
    li x13, 1
    ; ---- phase 1: column means ----
    ; data: for jb: for i: data[i][jb..jb+vl]  (3-D)
    li x20, {data}
    ss.ld.w.sta u0, x20, x5, x13
    ss.app u0, x0, x10, x11
    ss.end u0, x0, x6, x5
    li x20, {mean}
    ss.st.w u1, x20, x11, x13
mjb:
    so.v.dup.w.fp u4, f31
msum:
    so.a.add.w.fp u4, u4, u0, p0
    so.b.dim1.nend u0, msum
    so.a.mul.vs.w.fp u1, u4, f10, p0   ; × 1/n → mean chunk
    so.b.nend u0, mjb
    ; ---- phase 2: subtract means ----
    mul x7, x10, x11
    li x20, {data}
    ss.ld.w u0, x20, x7, x13
    ss.st.w u2, x20, x7, x13
    li x20, {mean}
    ss.ld.w.sta u1, x20, x11, x13
    ss.end u1, x0, x10, x0
sub:
    so.a.sub.w.fp u2, u0, u1, p0
    so.b.nend u0, sub
    ; ---- phase 3: covariance ----
    ; data: for i: for jb: for k: data[k][jb..jb+vl]  (4-D)
    li x20, {data}
    ss.ld.w.sta u0, x20, x5, x13
    ss.app u0, x0, x10, x11
    ss.app u0, x0, x6, x5
    ss.end u0, x0, x11, x0
    mul x7, x11, x11
    li x20, {cov}
    ss.st.w u2, x20, x7, x13
    li x14, 0                  ; i (variable index)
civ:
cjb:
    so.v.dup.w.fp u4, f31
    ; column pointer &data[0][i]
    slli x16, x14, 2
    li x17, {data}
    add x16, x17, x16
    slli x18, x11, 2           ; row stride bytes
ck:
    fld.w f1, 0(x16)
    add x16, x16, x18
    so.a.mac.vs.w.fp u4, u0, f1, p0
    so.b.dim1.nend u0, ck
    so.a.mul.vs.w.fp u2, u4, f11, p0   ; × 1/(n-1) → cov row chunk
    so.b.dim2.nend u0, cjb
    addi x14, x14, 1
    so.b.nend u0, civ
    halt
"
        )
    }

    fn scalar_text(&self) -> String {
        let (m, n) = (self.m, self.n);
        let (data, mean, cov) = (self.data(), self.mean(), self.cov());
        format!(
            "
    li x10, {n}
    li x11, {m}
    slli x12, x11, 2           ; row stride
    ; phase 1
    li x21, {mean}
    li x15, 0
mj:
    fmv.w f2, f31
    slli x16, x15, 2
    li x17, {data}
    add x16, x17, x16
    li x14, 0
mi:
    fld.w f3, 0(x16)
    fadd.w f2, f2, f3
    add x16, x16, x12
    addi x14, x14, 1
    blt x14, x10, mi
    fmul.w f2, f2, f10
    slli x16, x15, 2
    add x16, x21, x16
    fst.w f2, 0(x16)
    addi x15, x15, 1
    blt x15, x11, mj
    ; phase 2
    li x20, {data}
    li x14, 0
si:
    li x21, {mean}
    li x15, 0
sj:
    fld.w f1, 0(x20)
    fld.w f2, 0(x21)
    fsub.w f1, f1, f2
    fst.w f1, 0(x20)
    addi x20, x20, 4
    addi x21, x21, 4
    addi x15, x15, 1
    blt x15, x11, sj
    addi x14, x14, 1
    blt x14, x10, si
    ; phase 3
    li x22, {cov}
    li x14, 0                  ; i
ci:
    li x15, 0                  ; j
cj:
    fmv.w f2, f31
    slli x16, x14, 2
    li x17, {data}
    add x16, x17, x16          ; &data[0][i]
    slli x18, x15, 2
    add x18, x17, x18          ; &data[0][j]
    li x19, 0
ck:
    fld.w f3, 0(x16)
    fld.w f4, 0(x18)
    fmadd.w f2, f3, f4, f2
    add x16, x16, x12
    add x18, x18, x12
    addi x19, x19, 1
    blt x19, x10, ck
    fmul.w f2, f2, f11
    mul x16, x14, x11
    add x16, x16, x15
    slli x16, x16, 2
    add x16, x22, x16
    fst.w f2, 0(x16)
    addi x15, x15, 1
    blt x15, x11, cj
    addi x14, x14, 1
    blt x14, x11, ci
    halt
"
        )
    }
}

impl Benchmark for Covariance {
    fn streams(&self) -> usize {
        4
    }

    fn pattern(&self) -> &'static str {
        "4D"
    }

    fn name(&self) -> &'static str {
        "Covariance"
    }

    fn domain(&self) -> &'static str {
        "data mining"
    }

    fn sve_vectorized(&self) -> bool {
        false
    }

    fn program(&self, flavor: Flavor) -> Program {
        match flavor {
            Flavor::Uve => asm("covariance-uve", &self.uve_text()),
            _ => asm("covariance-scalar", &self.scalar_text()),
        }
    }

    fn setup(&self, emu: &mut Emulator) {
        emu.set_f(FReg::FA0, 1.0 / self.n as f64);
        emu.set_f(FReg::FA1, 1.0 / (self.n - 1) as f64);
        emu.mem
            .write_f32_slice(self.data(), &gen_f32(0xA0, self.n * self.m));
    }

    fn check(&self, emu: &Emulator) -> Result<(), String> {
        let (mean, cov) = self.reference();
        check_f32(emu, "mean", self.mean(), &mean, TOL)?;
        check_f32(emu, "cov", self.cov(), &cov, 10.0 * TOL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_checked;

    #[test]
    fn all_flavors_correct() {
        let b = Covariance::new(16, 10);
        for f in Flavor::all() {
            run_checked(&b, f).unwrap();
        }
    }

    #[test]
    fn wider_matrix() {
        let b = Covariance::new(32, 9);
        run_checked(&b, Flavor::Uve).unwrap();
        run_checked(&b, Flavor::Scalar).unwrap();
    }
}
