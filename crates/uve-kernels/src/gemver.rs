//! Benchmark G — **GEMVER** (algebra, Polybench): four loops touching a
//! dense matrix and several vectors; the paper's highest stream count (17).
//!
//! 1. `A[i][j] += u1[i]·v1[j] + u2[i]·v2[j]`
//! 2. `x[i] += β · Σ_j A[j][i]·y[j]`
//! 3. `x[i] += z[i]`
//! 4. `w[i] += α · Σ_j A[i][j]·x[j]`

use crate::common::{asm, check_f32, gen_f32, region, TOL};
use crate::{Benchmark, Flavor};
use uve_core::Emulator;
use uve_isa::{FReg, Program};

/// The GEMVER kernel.
#[derive(Debug, Clone, Copy)]
pub struct Gemver {
    n: usize,
}

const ALPHA: f32 = 1.25;
const BETA: f32 = 0.75;

impl Gemver {
    /// `A` is `n×n`.
    pub fn new(n: usize) -> Self {
        Self { n }
    }

    fn a(&self) -> u64 {
        region(0)
    }

    fn vec(&self, i: usize) -> u64 {
        // u1, u2, v1, v2, x, y, z, w
        region(1 + i)
    }

    #[allow(clippy::many_single_char_names)]
    fn reference(&self) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let n = self.n;
        let mut a = gen_f32(0x60, n * n);
        let u1 = gen_f32(0x61, n);
        let u2 = gen_f32(0x62, n);
        let v1 = gen_f32(0x63, n);
        let v2 = gen_f32(0x64, n);
        let mut x = gen_f32(0x65, n);
        let y = gen_f32(0x66, n);
        let z = gen_f32(0x67, n);
        let mut w = gen_f32(0x68, n);
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] += u1[i] * v1[j] + u2[i] * v2[j];
            }
        }
        for i in 0..n {
            let mut acc = 0f32;
            for j in 0..n {
                acc += a[j * n + i] * y[j];
            }
            x[i] += BETA * acc;
        }
        for i in 0..n {
            x[i] += z[i];
        }
        for i in 0..n {
            let mut acc = 0f32;
            for j in 0..n {
                acc += a[i * n + j] * x[j];
            }
            w[i] += ALPHA * acc;
        }
        (a, x, w)
    }

    fn uve_text(&self) -> String {
        let n = self.n;
        let a = self.a();
        let (u1, u2, v1, v2, x, y, z, w) = (
            self.vec(0),
            self.vec(1),
            self.vec(2),
            self.vec(3),
            self.vec(4),
            self.vec(5),
            self.vec(6),
            self.vec(7),
        );
        format!(
            "
    li x10, {n}
    li x13, 1
    ; ---- loop 1: rank-2 update of A ----
    li x20, {v1}
    ss.ld.w.sta u1, x20, x10, x13
    ss.end u1, x0, x10, x0
    li x20, {v2}
    ss.ld.w.sta u2, x20, x10, x13
    ss.end u2, x0, x10, x0
    li x20, {a}
    ss.ld.w.sta u3, x20, x10, x13
    ss.end u3, x0, x10, x10
    ss.st.w.sta u4, x20, x10, x13
    ss.end u4, x0, x10, x10
    li x21, {u1}
    li x22, {u2}
l1row:
    fld.w f1, 0(x21)
    addi x21, x21, 4
    fld.w f2, 0(x22)
    addi x22, x22, 4
l1chunk:
    so.a.mul.vs.w.fp u5, u1, f1, p0
    so.a.mac.vs.w.fp u5, u2, f2, p0
    so.a.add.w.fp u4, u3, u5, p0
    so.b.dim0.nend u3, l1chunk
    so.b.nend u3, l1row
    ; ---- loop 2: x += beta * A^T y ----
    li x20, {a}
    ss.ld.w.sta u0, x20, x10, x10
    ss.end u0, x0, x10, x13
    li x20, {y}
    ss.ld.w.sta u1, x20, x10, x13
    ss.end u1, x0, x10, x0
    li x6, 1
    li x20, {x}
    ss.ld.w.sta u2, x20, x6, x13
    ss.end u2, x0, x10, x13
    ss.st.w.sta u3, x20, x6, x13
    ss.end u3, x0, x10, x13
l2row:
    so.v.dup.w.fp u4, f31
l2dot:
    so.a.mac.w.fp u4, u0, u1, p0
    so.b.dim0.nend u0, l2dot
    so.a.hadd.w.fp u5, u4, p0
    so.a.mul.vs.w.fp u5, u5, f11, p0
    so.a.add.w.fp u3, u5, u2, p0
    so.b.nend u0, l2row
    ; ---- loop 3: x += z ----
    li x20, {x}
    ss.ld.w u0, x20, x10, x13
    li x21, {z}
    ss.ld.w u1, x21, x10, x13
    ss.st.w u2, x20, x10, x13
l3:
    so.a.add.w.fp u2, u0, u1, p0
    so.b.nend u0, l3
    ; ---- loop 4: w += alpha * A x ----
    li x20, {a}
    ss.ld.w.sta u0, x20, x10, x13
    ss.end u0, x0, x10, x10
    li x20, {x}
    ss.ld.w.sta u1, x20, x10, x13
    ss.end u1, x0, x10, x0
    li x6, 1
    li x20, {w}
    ss.ld.w.sta u2, x20, x6, x13
    ss.end u2, x0, x10, x13
    ss.st.w.sta u3, x20, x6, x13
    ss.end u3, x0, x10, x13
l4row:
    so.v.dup.w.fp u4, f31
l4dot:
    so.a.mac.w.fp u4, u0, u1, p0
    so.b.dim0.nend u0, l4dot
    so.a.hadd.w.fp u5, u4, p0
    so.a.mul.vs.w.fp u5, u5, f10, p0
    so.a.add.w.fp u3, u5, u2, p0
    so.b.nend u0, l4row
    halt
"
        )
    }

    fn sve_text(&self) -> String {
        let n = self.n;
        let a = self.a();
        let scratch = crate::common::region(9);
        let (u1, u2, v1, v2, x, y, z, w) = (
            self.vec(0),
            self.vec(1),
            self.vec(2),
            self.vec(3),
            self.vec(4),
            self.vec(5),
            self.vec(6),
            self.vec(7),
        );
        format!(
            "
    li x10, {n}
    ; ---- loop 1 ----
    li x20, {a}
    li x21, {u1}
    li x22, {u2}
    li x23, {v1}
    li x24, {v2}
    li x14, 0
l1row:
    fld.w f1, 0(x21)
    addi x21, x21, 4
    fld.w f2, 0(x22)
    addi x22, x22, 4
    mul x16, x14, x10
    slli x16, x16, 2
    add x16, x20, x16
    li x15, 0
    whilelt.w p1, x15, x10
l1vec:
    vl1.w u1, x23, x15, p1
    vl1.w u2, x24, x15, p1
    vl1.w u3, x16, x15, p1
    so.a.mul.vs.w.fp u5, u1, f1, p1
    so.a.mac.vs.w.fp u5, u2, f2, p1
    so.a.add.w.fp u3, u3, u5, p1
    vs1.w u3, x16, x15, p1
    incvl.w x15
    whilelt.w p1, x15, x10
    so.b.pfirst p1, l1vec
    addi x14, x14, 1
    blt x14, x10, l1row
    ; ---- loop 2 (gathered column dot products, as auto-vectorized) ----
    li x20, {scratch}
    cntvl.w x5
    li x15, 0
l2bld:
    mul x16, x15, x10
    slli x17, x15, 2
    add x17, x20, x17
    st.w x16, 0(x17)
    addi x15, x15, 1
    blt x15, x5, l2bld
    li x15, 0
    vl1.w u9, x20, x15, p0
    li x21, {x}
    li x22, {y}
    li x14, 0
l2row:
    so.v.dup.w.fp u4, f31
    li x15, 0
    whilelt.w p1, x15, x10
l2dot:
    mul x16, x15, x10
    add x16, x16, x14
    slli x16, x16, 2
    li x17, {a}
    add x16, x17, x16
    vgather.w u1, x16, u9, p1
    vl1.w u2, x22, x15, p1
    so.a.mac.w.fp u4, u1, u2, p1
    incvl.w x15
    whilelt.w p1, x15, x10
    so.b.pfirst p1, l2dot
    so.a.hadd.w.fp u5, u4, p0
    so.v.extr.f.w f1, u5[0]
    fmul.w f1, f1, f11
    slli x17, x14, 2
    add x17, x21, x17
    fld.w f2, 0(x17)
    fadd.w f2, f2, f1
    fst.w f2, 0(x17)
    addi x14, x14, 1
    blt x14, x10, l2row
    ; ---- loop 3 ----
    li x21, {x}
    li x22, {z}
    li x15, 0
    whilelt.w p1, x15, x10
l3:
    vl1.w u1, x21, x15, p1
    vl1.w u2, x22, x15, p1
    so.a.add.w.fp u1, u1, u2, p1
    vs1.w u1, x21, x15, p1
    incvl.w x15
    whilelt.w p1, x15, x10
    so.b.pfirst p1, l3
    ; ---- loop 4 (row dot) ----
    li x20, {a}
    li x21, {x}
    li x22, {w}
    li x14, 0
l4row:
    so.v.dup.w.fp u4, f31
    mul x16, x14, x10
    slli x16, x16, 2
    add x16, x20, x16
    li x15, 0
    whilelt.w p1, x15, x10
l4dot:
    vl1.w u1, x16, x15, p1
    vl1.w u2, x21, x15, p1
    so.a.mac.w.fp u4, u1, u2, p1
    incvl.w x15
    whilelt.w p1, x15, x10
    so.b.pfirst p1, l4dot
    so.a.hadd.w.fp u5, u4, p0
    so.v.extr.f.w f1, u5[0]
    slli x17, x14, 2
    add x17, x22, x17
    fld.w f2, 0(x17)
    fmadd.w f2, f1, f10, f2
    fst.w f2, 0(x17)
    addi x14, x14, 1
    blt x14, x10, l4row
    halt
"
        )
    }

    fn scalar_text(&self) -> String {
        let n = self.n;
        let a = self.a();
        let (u1, u2, v1, v2, x, y, z, w) = (
            self.vec(0),
            self.vec(1),
            self.vec(2),
            self.vec(3),
            self.vec(4),
            self.vec(5),
            self.vec(6),
            self.vec(7),
        );
        format!(
            "
    li x10, {n}
    ; loop 1
    li x20, {a}
    li x21, {u1}
    li x22, {u2}
    li x14, 0
l1row:
    fld.w f1, 0(x21)
    addi x21, x21, 4
    fld.w f2, 0(x22)
    addi x22, x22, 4
    li x23, {v1}
    li x24, {v2}
    li x15, 0
l1col:
    fld.w f3, 0(x23)
    addi x23, x23, 4
    fld.w f4, 0(x24)
    addi x24, x24, 4
    fld.w f5, 0(x20)
    fmadd.w f5, f1, f3, f5
    fmadd.w f5, f2, f4, f5
    fst.w f5, 0(x20)
    addi x20, x20, 4
    addi x15, x15, 1
    blt x15, x10, l1col
    addi x14, x14, 1
    blt x14, x10, l1row
    ; loop 2
    li x20, {a}
    li x21, {x}
    li x22, {y}
    li x14, 0
l2i:
    fmv.w f2, f31
    li x15, 0
    slli x16, x14, 2
    add x16, x20, x16       ; &A[0][i]
    li x17, {y}
l2j:
    fld.w f3, 0(x16)
    fld.w f4, 0(x17)
    fmadd.w f2, f3, f4, f2
    slli x18, x10, 2
    add x16, x16, x18
    addi x17, x17, 4
    addi x15, x15, 1
    blt x15, x10, l2j
    slli x17, x14, 2
    add x17, x21, x17
    fld.w f5, 0(x17)
    fmadd.w f5, f2, f11, f5
    fst.w f5, 0(x17)
    addi x14, x14, 1
    blt x14, x10, l2i
    ; loop 3
    li x21, {x}
    li x22, {z}
    li x14, 0
l3:
    fld.w f1, 0(x21)
    fld.w f2, 0(x22)
    fadd.w f1, f1, f2
    fst.w f1, 0(x21)
    addi x21, x21, 4
    addi x22, x22, 4
    addi x14, x14, 1
    blt x14, x10, l3
    ; loop 4
    li x20, {a}
    li x21, {x}
    li x22, {w}
    li x14, 0
l4i:
    fmv.w f2, f31
    li x15, 0
    mul x16, x14, x10
    slli x16, x16, 2
    add x16, x20, x16
    li x17, {x}
l4j:
    fld.w f3, 0(x16)
    fld.w f4, 0(x17)
    fmadd.w f2, f3, f4, f2
    addi x16, x16, 4
    addi x17, x17, 4
    addi x15, x15, 1
    blt x15, x10, l4j
    slli x17, x14, 2
    add x17, x22, x17
    fld.w f5, 0(x17)
    fmadd.w f5, f2, f10, f5
    fst.w f5, 0(x17)
    addi x14, x14, 1
    blt x14, x10, l4i
    halt
"
        )
    }
}

impl Benchmark for Gemver {
    fn streams(&self) -> usize {
        4
    }

    fn pattern(&self) -> &'static str {
        "2D"
    }

    fn name(&self) -> &'static str {
        "GEMVER"
    }

    fn domain(&self) -> &'static str {
        "algebra"
    }

    fn program(&self, flavor: Flavor) -> Program {
        match flavor {
            Flavor::Uve => asm("gemver-uve", &self.uve_text()),
            Flavor::Sve | Flavor::Neon => asm("gemver-sve", &self.sve_text()),
            Flavor::Scalar => asm("gemver-scalar", &self.scalar_text()),
        }
    }

    fn setup(&self, emu: &mut Emulator) {
        let n = self.n;
        emu.set_f(FReg::FA0, f64::from(ALPHA));
        emu.set_f(FReg::FA1, f64::from(BETA));
        emu.mem.write_f32_slice(self.a(), &gen_f32(0x60, n * n));
        for (i, seed) in (0..8).zip(0x61u64..) {
            emu.mem.write_f32_slice(self.vec(i), &gen_f32(seed, n));
        }
    }

    fn check(&self, emu: &Emulator) -> Result<(), String> {
        let (a, x, w) = self.reference();
        check_f32(emu, "A", self.a(), &a, TOL)?;
        check_f32(emu, "x", self.vec(4), &x, TOL)?;
        check_f32(emu, "w", self.vec(7), &w, 10.0 * TOL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_checked;

    #[test]
    fn all_flavors_correct() {
        for n in [32usize, 19] {
            let b = Gemver::new(n);
            for f in Flavor::all() {
                run_checked(&b, f).unwrap();
            }
        }
    }

    #[test]
    fn uve_stream_count_matches_paper_scale() {
        let b = Gemver::new(32);
        let r = run_checked(&b, Flavor::Uve).unwrap();
        assert_eq!(r.result.trace.streams.len(), 15);
    }
}
