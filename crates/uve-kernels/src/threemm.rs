//! Benchmark E — **3MM** (algebra): `E = A·B; F = C·D; G = E·F`
//! (Polybench, all matrices `n×n`).
//!
//! Three plain matrix multiplications; the UVE flavour reuses the GEMM
//! 4-D descriptor scheme without the `β·C` term, reconfiguring the stream
//! registers between sections.

use crate::common::{asm, check_f32, gen_f32, region, TOL};
use crate::{Benchmark, Flavor};
use uve_core::Emulator;
use uve_isa::Program;

/// The 3MM kernel.
#[derive(Debug, Clone, Copy)]
pub struct ThreeMm {
    n: usize,
}

impl ThreeMm {
    /// All five matrices are `n×n`; `n` must be a multiple of 16.
    ///
    /// # Panics
    ///
    /// Panics unless `n % 16 == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n.is_multiple_of(16), "n must be a multiple of 16");
        Self { n }
    }

    fn mat(&self, i: usize) -> u64 {
        region(i) // A,B,C,D at 0..3; E,F,G at 4..6
    }

    fn reference(&self) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let n = self.n;
        let a = gen_f32(0xE0, n * n);
        let b = gen_f32(0xE1, n * n);
        let c = gen_f32(0xE2, n * n);
        let d = gen_f32(0xE3, n * n);
        let mm = |x: &[f32], y: &[f32]| -> Vec<f32> {
            let mut g = vec![0f32; n * n];
            for i in 0..n {
                for j in 0..n {
                    let mut acc = 0f32;
                    for k in 0..n {
                        acc += x[i * n + k] * y[k * n + j];
                    }
                    g[i * n + j] = acc;
                }
            }
            g
        };
        let e = mm(&a, &b);
        let f = mm(&c, &d);
        let g = mm(&e, &f);
        (e, f, g)
    }

    fn uve_section(&self, tag: usize, x: u64, y: u64, out: u64) -> String {
        let n = self.n;
        format!(
            "
    li x10, {n}
    ss.getvl.w x5
    div x6, x10, x5
    li x21, {y}
    li x22, {out}
    li x13, 1
    ss.ld.w.sta u0, x21, x5, x13
    ss.app u0, x0, x10, x10
    ss.app u0, x0, x6, x5
    ss.end u0, x0, x10, x0
    mul x7, x10, x10
    ss.st.w u2, x22, x7, x13
    li x14, 0
    li x20, {x}
iloop{tag}:
jloop{tag}:
    so.v.dup.w.fp u4, f31
    mul x16, x14, x10
    slli x16, x16, 2
    add x16, x20, x16
kloop{tag}:
    fld.w f1, 0(x16)
    addi x16, x16, 4
    so.a.mac.vs.w.fp u4, u0, f1, p0
    so.b.dim1.nend u0, kloop{tag}
    so.v.mv u2, u4
    so.b.dim2.nend u0, jloop{tag}
    addi x14, x14, 1
    so.b.nend u0, iloop{tag}
"
        )
    }

    fn sve_section(&self, tag: usize, x: u64, y: u64, out: u64) -> String {
        let n = self.n;
        format!(
            "
    li x10, {n}
    li x20, {x}
    li x21, {y}
    li x22, {out}
    li x14, 0
iloop{tag}:
    li x15, 0
    whilelt.w p1, x15, x10
jloop{tag}:
    so.v.dup.w.fp u4, f31
    li x16, 0
    mul x17, x14, x10
    slli x17, x17, 2
    add x17, x20, x17
kloop{tag}:
    fld.w f1, 0(x17)
    addi x17, x17, 4
    mul x18, x16, x10
    slli x18, x18, 2
    add x18, x21, x18
    vl1.w u1, x18, x15, p1
    so.a.mac.vs.w.fp u4, u1, f1, p1
    addi x16, x16, 1
    blt x16, x10, kloop{tag}
    mul x18, x14, x10
    slli x18, x18, 2
    add x18, x22, x18
    vs1.w u4, x18, x15, p1
    incvl.w x15
    whilelt.w p1, x15, x10
    so.b.pfirst p1, jloop{tag}
    addi x14, x14, 1
    blt x14, x10, iloop{tag}
"
        )
    }

    fn scalar_section(&self, tag: usize, x: u64, y: u64, out: u64) -> String {
        let n = self.n;
        format!(
            "
    li x10, {n}
    li x20, {x}
    li x21, {y}
    li x22, {out}
    slli x19, x10, 2
    li x14, 0
iloop{tag}:
    li x15, 0
jloop{tag}:
    fmv.w f2, f31
    li x16, 0
    mul x17, x14, x10
    slli x17, x17, 2
    add x17, x20, x17
    slli x18, x15, 2
    add x18, x21, x18
kloop{tag}:
    fld.w f3, 0(x17)
    fld.w f4, 0(x18)
    fmadd.w f2, f3, f4, f2
    addi x17, x17, 4
    add x18, x18, x19
    addi x16, x16, 1
    blt x16, x10, kloop{tag}
    mul x9, x14, x10
    add x9, x9, x15
    slli x9, x9, 2
    add x9, x22, x9
    fst.w f2, 0(x9)
    addi x15, x15, 1
    blt x15, x10, jloop{tag}
    addi x14, x14, 1
    blt x14, x10, iloop{tag}
"
        )
    }
}

impl Benchmark for ThreeMm {
    fn streams(&self) -> usize {
        2
    }

    fn pattern(&self) -> &'static str {
        "4D"
    }

    fn name(&self) -> &'static str {
        "3MM"
    }

    fn domain(&self) -> &'static str {
        "algebra"
    }

    fn program(&self, flavor: Flavor) -> Program {
        // Sections: E(4) = A(0)·B(1); F(5) = C(2)·D(3); G(6) = E·F.
        let sections = [
            (self.mat(0), self.mat(1), self.mat(4)),
            (self.mat(2), self.mat(3), self.mat(5)),
            (self.mat(4), self.mat(5), self.mat(6)),
        ];
        let mut text = String::new();
        for (i, (x, y, out)) in sections.into_iter().enumerate() {
            text.push_str(&match flavor {
                Flavor::Uve => self.uve_section(i, x, y, out),
                Flavor::Sve | Flavor::Neon => self.sve_section(i, x, y, out),
                Flavor::Scalar => self.scalar_section(i, x, y, out),
            });
        }
        text.push_str("    halt\n");
        asm("3mm", &text)
    }

    fn setup(&self, emu: &mut Emulator) {
        let n = self.n;
        for (i, seed) in [(0usize, 0xE0u64), (1, 0xE1), (2, 0xE2), (3, 0xE3)] {
            emu.mem.write_f32_slice(self.mat(i), &gen_f32(seed, n * n));
        }
    }

    fn check(&self, emu: &Emulator) -> Result<(), String> {
        let (e, f, g) = self.reference();
        check_f32(emu, "E", self.mat(4), &e, TOL)?;
        check_f32(emu, "F", self.mat(5), &f, TOL)?;
        // G accumulates products of products: allow a looser tolerance.
        check_f32(emu, "G", self.mat(6), &g, 10.0 * TOL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_checked;

    #[test]
    fn all_flavors_correct() {
        let b = ThreeMm::new(16);
        for f in Flavor::all() {
            run_checked(&b, f).unwrap();
        }
    }

    #[test]
    fn uve_opens_six_streams() {
        let b = ThreeMm::new(16);
        let r = run_checked(&b, Flavor::Uve).unwrap();
        assert_eq!(r.result.trace.streams.len(), 6);
    }
}
