//! Benchmark R — **Seidel-2D** (stencil, Polybench): in-place 9-point
//! Gauss-Seidel sweeps,
//! `A[i][j] = (ΣA[i-1][j-1..j+1] + ΣA[i][j-1..j+1] + ΣA[i+1][j-1..j+1]) / 9`.
//!
//! The `j-1` dependence makes the inner loop serial, so the paper's ARM
//! compiler could not vectorize it (scalar baselines). The UVE flavour uses
//! the *scalar streaming* idiom: per row, three one-element-per-chunk input
//! streams supply the leading-edge neighbours while register pipelines
//! carry the trailing values — all loads and stores still disappear from
//! the loop.

use crate::common::{asm, check_f32, gen_f32, region, TOL};
use crate::{Benchmark, Flavor};
use std::fmt::Write as _;
use uve_core::Emulator;
use uve_isa::{FReg, Program};

/// The Seidel-2D kernel.
#[derive(Debug, Clone, Copy)]
pub struct Seidel2d {
    n: usize,
    tsteps: usize,
}

impl Seidel2d {
    /// `tsteps` sweeps over an `n×n` grid (n ≥ 3).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn new(n: usize, tsteps: usize) -> Self {
        assert!(n >= 3);
        Self { n, tsteps }
    }

    fn a(&self) -> u64 {
        region(0)
    }

    fn reference(&self) -> Vec<f32> {
        let n = self.n;
        let mut a = gen_f32(0x30, n * n);
        for _ in 0..self.tsteps {
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    a[i * n + j] = (a[(i - 1) * n + j - 1]
                        + a[(i - 1) * n + j]
                        + a[(i - 1) * n + j + 1]
                        + a[i * n + j - 1]
                        + a[i * n + j]
                        + a[i * n + j + 1]
                        + a[(i + 1) * n + j - 1]
                        + a[(i + 1) * n + j]
                        + a[(i + 1) * n + j + 1])
                        / 9.0;
                }
            }
        }
        a
    }

    /// One UVE row: 1-element chunks feed the leading (j+1) neighbours of
    /// the three rows; the trailing values are carried in vector registers.
    fn uve_row(&self, tag: String, row: usize) -> String {
        let n = self.n as u64;
        let m = self.n - 2;
        let a = self.a();
        let at = |i: u64, j: u64| a + 4 * (i * n + j);
        let i = row as u64;
        let mut t = String::new();
        let _ = writeln!(t, "    li x10, {m}");
        let _ = writeln!(t, "    li x13, 1");
        let _ = writeln!(t, "    li x6, 1");
        // Leading-edge streams: A[i-1][2..n], A[i+1][2..n], A[i][2..n].
        for (u, base) in [(0u32, at(i - 1, 2)), (1, at(i + 1, 2)), (2, at(i, 2))] {
            let _ = writeln!(t, "    li x20, {base}");
            let _ = writeln!(t, "    ss.ld.w.sta u{u}, x20, x6, x13");
            let _ = writeln!(t, "    ss.end u{u}, x0, x10, x13");
        }
        // Output: A[i][1..n-1].
        let _ = writeln!(t, "    li x20, {}", at(i, 1));
        let _ = writeln!(t, "    ss.st.w.sta u3, x20, x6, x13");
        let _ = writeln!(t, "    ss.end u3, x0, x10, x13");
        // Pipeline preamble (boundary and first-interior values).
        for (reg, addr) in [
            (10u32, at(i - 1, 0)), // nw
            (11, at(i - 1, 1)),    // n
            (12, at(i + 1, 0)),    // sw
            (13, at(i + 1, 1)),    // s
            (15, at(i, 0)),        // w (becomes the freshly-written value)
            (14, at(i, 1)),        // c (old centre)
        ] {
            let _ = writeln!(t, "    li x20, {addr}");
            let _ = writeln!(t, "    fld.w f1, 0(x20)");
            let _ = writeln!(t, "    so.v.dup.w.fp u{reg}, f1");
        }
        let _ = writeln!(t, "j{tag}:");
        let _ = writeln!(t, "    so.v.mv u16, u0");
        let _ = writeln!(t, "    so.v.mv u17, u1");
        let _ = writeln!(t, "    so.v.mv u18, u2");
        let _ = writeln!(t, "    so.a.add.w.fp u19, u10, u11, p0");
        let _ = writeln!(t, "    so.a.add.w.fp u19, u19, u16, p0");
        let _ = writeln!(t, "    so.a.add.w.fp u19, u19, u12, p0");
        let _ = writeln!(t, "    so.a.add.w.fp u19, u19, u13, p0");
        let _ = writeln!(t, "    so.a.add.w.fp u19, u19, u17, p0");
        let _ = writeln!(t, "    so.a.add.w.fp u19, u19, u15, p0");
        let _ = writeln!(t, "    so.a.add.w.fp u19, u19, u14, p0");
        let _ = writeln!(t, "    so.a.add.w.fp u19, u19, u18, p0");
        let _ = writeln!(t, "    so.a.mul.vs.w.fp u20, u19, f10, p0");
        let _ = writeln!(t, "    so.v.mv u3, u20");
        let _ = writeln!(t, "    so.v.mv u10, u11");
        let _ = writeln!(t, "    so.v.mv u11, u16");
        let _ = writeln!(t, "    so.v.mv u12, u13");
        let _ = writeln!(t, "    so.v.mv u13, u17");
        let _ = writeln!(t, "    so.v.mv u15, u20");
        let _ = writeln!(t, "    so.v.mv u14, u18");
        let _ = writeln!(t, "    so.b.nend u0, j{tag}");
        t
    }

    fn scalar_sweep(&self, tag: usize) -> String {
        let n = self.n;
        let a = self.a();
        format!(
            "
    li x10, {n}
    addi x9, x10, -1
    li x23, {a}
    slli x18, x10, 2
    li x14, 1            ; i
i{tag}:
    mul x16, x14, x18
    add x16, x23, x16    ; &A[i][0]
    sub x20, x16, x18    ; &A[i-1][0]
    add x21, x16, x18    ; &A[i+1][0]
    ; preload trailing columns (j-1 and j)
    fld.w f1, 0(x20)     ; nw
    fld.w f2, 4(x20)     ; n
    fld.w f4, 0(x16)     ; w
    fld.w f5, 4(x16)     ; c
    fld.w f7, 0(x21)     ; sw
    fld.w f8, 4(x21)     ; s
    li x15, 1            ; j
j{tag}:
    slli x17, x15, 2
    add x19, x20, x17
    fld.w f3, 4(x19)     ; ne
    add x19, x16, x17
    fld.w f6, 4(x19)     ; e
    add x19, x21, x17
    fld.w f9, 4(x19)     ; se
    fadd.w f11, f1, f2
    fadd.w f11, f11, f3
    fadd.w f11, f11, f4
    fadd.w f11, f11, f5
    fadd.w f11, f11, f6
    fadd.w f11, f11, f7
    fadd.w f11, f11, f8
    fadd.w f11, f11, f9
    fmul.w f11, f11, f10
    add x19, x16, x17
    fst.w f11, 0(x19)
    fmv.w f1, f2
    fmv.w f2, f3
    fmv.w f4, f11
    fmv.w f5, f6
    fmv.w f7, f8
    fmv.w f8, f9
    addi x15, x15, 1
    blt x15, x9, j{tag}
    addi x14, x14, 1
    blt x14, x9, i{tag}
"
        )
    }
}

impl Benchmark for Seidel2d {
    fn streams(&self) -> usize {
        4
    }

    fn pattern(&self) -> &'static str {
        "2D (scalar streaming)"
    }

    fn name(&self) -> &'static str {
        "Seidel-2D"
    }

    fn domain(&self) -> &'static str {
        "stencil"
    }

    fn sve_vectorized(&self) -> bool {
        false
    }

    fn program(&self, flavor: Flavor) -> Program {
        match flavor {
            Flavor::Uve => {
                let mut text = String::new();
                for t in 0..self.tsteps {
                    for i in 1..self.n - 1 {
                        text.push_str(&self.uve_row(format!("{t}_{i}"), i));
                    }
                }
                text.push_str("    halt\n");
                asm("seidel-uve", &text)
            }
            _ => {
                let mut text = String::new();
                for t in 0..self.tsteps {
                    text.push_str(&self.scalar_sweep(t));
                }
                text.push_str("    halt\n");
                asm("seidel-scalar", &text)
            }
        }
    }

    fn setup(&self, emu: &mut Emulator) {
        emu.set_f(FReg::FA0, 1.0 / 9.0);
        emu.mem
            .write_f32_slice(self.a(), &gen_f32(0x30, self.n * self.n));
    }

    fn check(&self, emu: &Emulator) -> Result<(), String> {
        check_f32(emu, "A", self.a(), &self.reference(), 10.0 * TOL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_checked;

    #[test]
    fn all_flavors_correct() {
        for n in [6usize, 11] {
            let b = Seidel2d::new(n, 2);
            for f in Flavor::all() {
                run_checked(&b, f).unwrap();
            }
        }
    }

    #[test]
    fn uve_streams_per_row() {
        let b = Seidel2d::new(6, 1);
        let r = run_checked(&b, Flavor::Uve).unwrap();
        // 4 streams per interior row.
        assert_eq!(r.result.trace.streams.len(), 4 * 4);
    }
}
