//! Benchmark C — **SAXPY** (BLAS): `y[i] = a*x[i] + y[i]`.
//!
//! The paper's running example (Figs. 1 and 4). The UVE flavour is exactly
//! the Fig. 4 code: three streams (`x` in, `y` in, `y` out), a broadcast of
//! `a`, and a two-instruction loop body (the fused multiply-add cannot be
//! used because `u2` is a write-only stream).

use crate::common::{asm, check_f32, gen_f32, region, TOL};
use crate::{Benchmark, Flavor};
use uve_core::Emulator;
use uve_isa::{FReg, Program};

/// The SAXPY kernel.
#[derive(Debug, Clone, Copy)]
pub struct Saxpy {
    n: usize,
}

/// The scalar coefficient `a`.
const A: f32 = 2.5;

impl Saxpy {
    /// Operates on `n` f32 elements.
    pub fn new(n: usize) -> Self {
        Self { n }
    }

    fn x(&self) -> u64 {
        region(0)
    }

    fn y(&self) -> u64 {
        region(1)
    }

    fn reference(&self) -> Vec<f32> {
        let x = gen_f32(0xC0, self.n);
        let y = gen_f32(0xC1, self.n);
        x.iter().zip(&y).map(|(x, y)| A * x + y).collect()
    }
}

impl Benchmark for Saxpy {
    fn streams(&self) -> usize {
        3
    }

    fn pattern(&self) -> &'static str {
        "1D"
    }

    fn name(&self) -> &'static str {
        "SAXPY"
    }

    fn domain(&self) -> &'static str {
        "BLAS"
    }

    fn program(&self, flavor: Flavor) -> Program {
        let (n, x, y) = (self.n, self.x(), self.y());
        match flavor {
            Flavor::Uve => asm(
                "saxpy-uve",
                &format!(
                    "
    li x10, {n}
    li x11, {x}
    li x12, {y}
    li x13, 1
    ss.ld.w u0, x11, x10, x13
    ss.ld.w u1, x12, x10, x13
    ss.st.w u2, x12, x10, x13
    so.v.dup.w.fp u3, f10
loop:
    so.a.mul.w.fp u4, u3, u0, p0
    so.a.add.w.fp u2, u4, u1, p0
    so.b.nend u0, loop
    halt
"
                ),
            ),
            Flavor::Sve => asm(
                "saxpy-sve",
                &format!(
                    "
    li x10, 0
    li x11, {n}
    li x12, {x}
    li x13, {y}
    whilelt.w p1, x10, x11
loop:
    vl1.w u1, x12, x10, p1
    vl1.w u2, x13, x10, p1
    so.a.mac.vs.w.fp u2, u1, f10, p1
    vs1.w u2, x13, x10, p1
    incvl.w x10
    whilelt.w p1, x10, x11
    so.b.pfirst p1, loop
    halt
"
                ),
            ),
            Flavor::Neon => asm(
                "saxpy-neon",
                &format!(
                    "
    li x10, 0
    li x11, {n}
    cntvl.w x5
    div x6, x11, x5
    mul x6, x6, x5
    li x12, {x}
    li x13, {y}
    beq x6, x0, tail_check
loop:
    vl1.w u1, x12, x10, p0
    vl1.w u2, x13, x10, p0
    so.a.mac.vs.w.fp u2, u1, f10, p0
    vs1.w u2, x13, x10, p0
    incvl.w x10
    blt x10, x6, loop
tail_check:
    bge x10, x11, done
tail:
    slli x7, x10, 2
    add x8, x12, x7
    fld.w f1, 0(x8)
    add x9, x13, x7
    fld.w f2, 0(x9)
    fmadd.w f2, f1, f10, f2
    fst.w f2, 0(x9)
    addi x10, x10, 1
    blt x10, x11, tail
done:
    halt
"
                ),
            ),
            Flavor::Scalar => asm(
                "saxpy-scalar",
                &format!(
                    "
    li x10, {n}
    li x12, {x}
    li x13, {y}
    beq x10, x0, done
loop:
    fld.w f1, 0(x12)
    fld.w f2, 0(x13)
    fmadd.w f2, f1, f10, f2
    fst.w f2, 0(x13)
    addi x12, x12, 4
    addi x13, x13, 4
    addi x10, x10, -1
    bne x10, x0, loop
done:
    halt
"
                ),
            ),
        }
    }

    fn setup(&self, emu: &mut Emulator) {
        emu.set_f(FReg::FA0, f64::from(A));
        emu.mem.write_f32_slice(self.x(), &gen_f32(0xC0, self.n));
        emu.mem.write_f32_slice(self.y(), &gen_f32(0xC1, self.n));
    }

    fn check(&self, emu: &Emulator) -> Result<(), String> {
        check_f32(emu, "y", self.y(), &self.reference(), TOL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_checked;

    #[test]
    fn all_flavors_correct() {
        for n in [64usize, 53] {
            let b = Saxpy::new(n);
            for f in Flavor::all() {
                run_checked(&b, f).unwrap();
            }
        }
    }

    #[test]
    fn uve_loop_matches_paper_shape() {
        // Fig. 1.D: the UVE steady-state loop is 3 instructions (mul, add,
        // branch) per 16 elements.
        let b = Saxpy::new(16 * 100);
        let uve = run_checked(&b, Flavor::Uve).unwrap();
        let per_iter = (uve.result.committed as f64 - 20.0) / 100.0;
        assert!((2.8..3.4).contains(&per_iter), "{per_iter}");
    }

    #[test]
    fn instruction_reduction_vs_sve() {
        // Fig. 8.A reports ≈60% fewer committed instructions than SVE.
        let b = Saxpy::new(16 * 200);
        let uve = run_checked(&b, Flavor::Uve).unwrap();
        let sve = run_checked(&b, Flavor::Sve).unwrap();
        let reduction = 1.0 - uve.result.committed as f64 / sve.result.committed as f64;
        assert!(reduction > 0.5, "reduction = {reduction}");
    }
}
