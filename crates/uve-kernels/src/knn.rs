//! Benchmark M — **KNN** (data mining): squared Euclidean distances from a
//! query point to every row of a point matrix, followed by a 1-NN
//! min-reduction.
//!
//! `dist[i] = Σ_d (P[i][d] − q[d])²`, then `best = min_i dist[i]`.

use crate::common::{asm, check_f32, gen_f32, region, TOL};
use crate::{Benchmark, Flavor};
use uve_core::Emulator;
use uve_isa::Program;

/// The KNN kernel.
#[derive(Debug, Clone, Copy)]
pub struct Knn {
    npoints: usize,
    dim: usize,
}

impl Knn {
    /// `npoints` points of `dim` f32 coordinates each.
    pub fn new(npoints: usize, dim: usize) -> Self {
        Self { npoints, dim }
    }

    fn points(&self) -> u64 {
        region(0)
    }

    fn query(&self) -> u64 {
        region(1)
    }

    fn dist(&self) -> u64 {
        region(2)
    }

    fn best(&self) -> u64 {
        region(3)
    }

    fn reference(&self) -> (Vec<f32>, f32) {
        let (n, d) = (self.npoints, self.dim);
        let p = gen_f32(0x90, n * d);
        let q = gen_f32(0x91, d);
        let mut dist = vec![0f32; n];
        for i in 0..n {
            let mut acc = 0f32;
            for k in 0..d {
                let t = p[i * d + k] - q[k];
                acc += t * t;
            }
            dist[i] = acc;
        }
        let best = dist.iter().copied().fold(f32::INFINITY, f32::min);
        (dist, best)
    }

    fn uve_text(&self) -> String {
        let (n, d) = (self.npoints, self.dim);
        let (p, q, dist, best) = (self.points(), self.query(), self.dist(), self.best());
        format!(
            "
    li x10, {n}
    li x11, {d}
    li x13, 1
    li x20, {p}
    ss.ld.w.sta u0, x20, x11, x13
    ss.end u0, x0, x10, x11
    li x20, {q}
    ss.ld.w.sta u1, x20, x11, x13
    ss.end u1, x0, x10, x0
    li x6, 1
    li x20, {dist}
    ss.st.w.sta u2, x20, x6, x13
    ss.end u2, x0, x10, x13
row:
    so.v.dup.w.fp u4, f31
chunk:
    so.a.sub.w.fp u5, u0, u1, p0
    so.a.mac.w.fp u4, u5, u5, p0
    so.b.dim0.nend u0, chunk
    so.a.hadd.w.fp u2, u4, p0
    so.b.nend u0, row
    ; ---- 1-NN min reduction over dist ----
    ; Per-chunk horizontal min into a one-lane accumulator: safe for
    ; ragged tails (lane-wise min would drop tail lanes' history).
    li x20, {dist}
    ss.ld.w u0, x20, x10, x13
    li x7, 2000000000
    fcvt.f.x.w f5, x7
    so.v.dup.w.fp u6, f5
minloop:
    so.a.hmin.w.fp u7, u0, p0
    so.a.min.w.fp u6, u6, u7, p0
    so.b.nend u0, minloop
    so.v.extr.f.w f6, u6[0]
    li x20, {best}
    fst.w f6, 0(x20)
    halt
"
        )
    }

    fn sve_text(&self) -> String {
        let (n, d) = (self.npoints, self.dim);
        let (p, q, dist, best) = (self.points(), self.query(), self.dist(), self.best());
        format!(
            "
    li x10, {n}
    li x11, {d}
    li x21, {q}
    li x22, {dist}
    li x14, 0
row:
    so.v.dup.w.fp u4, f31
    mul x16, x14, x11
    slli x16, x16, 2
    li x20, {p}
    add x16, x20, x16
    li x15, 0
    whilelt.w p1, x15, x11
chunk:
    vl1.w u1, x16, x15, p1
    vl1.w u2, x21, x15, p1
    so.a.sub.w.fp u5, u1, u2, p1
    so.a.mac.w.fp u4, u5, u5, p1
    incvl.w x15
    whilelt.w p1, x15, x11
    so.b.pfirst p1, chunk
    so.a.hadd.w.fp u5, u4, p0
    so.v.extr.f.w f1, u5[0]
    slli x17, x14, 2
    add x17, x22, x17
    fst.w f1, 0(x17)
    addi x14, x14, 1
    blt x14, x10, row
    ; ---- min reduction: full vectors, then scalar tail ----
    li x7, 2000000000
    fcvt.f.x.w f5, x7
    so.v.dup.w.fp u6, f5
    cntvl.w x5
    div x6, x10, x5
    mul x6, x6, x5
    li x15, 0
    beq x6, x0, mintailc
minloop:
    vl1.w u1, x22, x15, p0
    so.a.min.w.fp u6, u6, u1, p0
    incvl.w x15
    blt x15, x6, minloop
mintailc:
    so.a.hmin.w.fp u7, u6, p0
    so.v.extr.f.w f5, u7[0]
    bge x15, x10, minfin
mintail:
    slli x17, x15, 2
    add x17, x22, x17
    fld.w f1, 0(x17)
    fmin.w f5, f5, f1
    addi x15, x15, 1
    blt x15, x10, mintail
minfin:
    li x20, {best}
    fst.w f5, 0(x20)
    halt
"
        )
    }

    fn scalar_text(&self) -> String {
        let (n, d) = (self.npoints, self.dim);
        let (p, q, dist, best) = (self.points(), self.query(), self.dist(), self.best());
        format!(
            "
    li x10, {n}
    li x11, {d}
    li x22, {dist}
    li x14, 0
    li x20, {p}
row:
    fmv.w f2, f31
    li x21, {q}
    li x15, 0
dloop:
    fld.w f3, 0(x20)
    fld.w f4, 0(x21)
    fsub.w f3, f3, f4
    fmadd.w f2, f3, f3, f2
    addi x20, x20, 4
    addi x21, x21, 4
    addi x15, x15, 1
    blt x15, x11, dloop
    slli x17, x14, 2
    add x17, x22, x17
    fst.w f2, 0(x17)
    addi x14, x14, 1
    blt x14, x10, row
    ; min reduction
    li x7, 2000000000
    fcvt.f.x.w f5, x7
    li x14, 0
    li x21, {dist}
minloop:
    fld.w f1, 0(x21)
    fmin.w f5, f5, f1
    addi x21, x21, 4
    addi x14, x14, 1
    blt x14, x10, minloop
    li x20, {best}
    fst.w f5, 0(x20)
    halt
"
        )
    }
}

impl Benchmark for Knn {
    fn streams(&self) -> usize {
        3
    }

    fn pattern(&self) -> &'static str {
        "2D"
    }

    fn name(&self) -> &'static str {
        "KNN"
    }

    fn domain(&self) -> &'static str {
        "data mining"
    }

    fn program(&self, flavor: Flavor) -> Program {
        match flavor {
            Flavor::Uve => asm("knn-uve", &self.uve_text()),
            Flavor::Sve | Flavor::Neon => asm("knn-sve", &self.sve_text()),
            Flavor::Scalar => asm("knn-scalar", &self.scalar_text()),
        }
    }

    fn setup(&self, emu: &mut Emulator) {
        emu.mem
            .write_f32_slice(self.points(), &gen_f32(0x90, self.npoints * self.dim));
        emu.mem
            .write_f32_slice(self.query(), &gen_f32(0x91, self.dim));
    }

    fn check(&self, emu: &Emulator) -> Result<(), String> {
        let (dist, best) = self.reference();
        check_f32(emu, "dist", self.dist(), &dist, TOL)?;
        check_f32(emu, "best", self.best(), &[best], TOL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_checked;

    #[test]
    fn all_flavors_correct() {
        for (n, d) in [(32usize, 16usize), (17, 9)] {
            let b = Knn::new(n, d);
            for f in Flavor::all() {
                run_checked(&b, f).unwrap();
            }
        }
    }
}
