//! **Histogram** (sparse): `hist[idx[i]] += 1.0` — an indirect *gather +
//! scatter* read-modify-write over a bin table.
//!
//! The UVE flavour binds the same index origin stream to two B5
//! single-descriptor streams — an indirect gather load and an indirect
//! scatter *store* over the same table — demonstrating that origin patterns
//! are cloned per modifier. The loop body is a single vector-scalar add per
//! chunk.
//!
//! Vectorized flavours have a classic intra-vector RAW hazard when two
//! lanes of one chunk hit the same bin; the generator sidesteps it the way
//! baseband firmware does, by emitting conflict-free index blocks: indices
//! are unique within every 16-element aligned block (16 = the widest
//! flavour's lane count, and every narrower chunking — NEON's 4, the
//! unpacked ablation's 1 — subdivides those blocks).

use crate::common::{asm_units, check_f32, gen_f32, region, SplitMix64, TOL};
use crate::{Benchmark, Flavor};
use uve_core::Emulator;
use uve_isa::Program;

/// Checked-in UVE assembly: dual B5 descriptors (gather + scatter) off one
/// origin, counting with a vector-scalar add.
static UVE_TEXT: &str = "
    .include params
    li x10, M
    li x13, 1
    li x20, IDX
    ss.ld.w u2, x20, x10, x13
    li x6, 1
    li x20, HIST
    ss.ld.w.sta u0, x20, x6, x0
    ss.end.ind.off.setadd u0, u2
    li x20, HIST
    ss.st.w.sta u1, x20, x6, x0
    ss.end.ind.off.setadd u1, u2
    li x7, 1
    fcvt.f.x.w f1, x7
bump:
    so.a.add.vs.w.fp u1, u0, f1, p0
    so.b.nend u0, bump
    halt
";

/// Checked-in SVE/NEON assembly: gather, bump, scatter per chunk.
static SVE_TEXT: &str = "
    .include params
    li x10, M
    li x21, IDX
    li x22, HIST
    li x7, 1
    fcvt.f.x.w f1, x7
    li x15, 0
    whilelt.w p1, x15, x10
bump:
    vl1.w u3, x21, x15, p1
    vgather.w u1, x22, u3, p1
    so.a.add.vs.w.fp u1, u1, f1, p1
    vscatter.w u1, x22, u3, p1
    incvl.w x15
    whilelt.w p1, x15, x10
    so.b.pfirst p1, bump
    halt
";

/// Checked-in scalar assembly.
static SCALAR_TEXT: &str = "
    .include params
    li x10, M
    li x21, IDX
    li x20, HIST
    li x7, 1
    fcvt.f.x.w f1, x7
    li x15, 0
bump:
    ld.w x16, 0(x21)
    addi x21, x21, 4
    slli x16, x16, 2
    add x16, x20, x16
    fld.w f2, 0(x16)
    fadd.w f2, f2, f1
    fst.w f2, 0(x16)
    addi x15, x15, 1
    blt x15, x10, bump
    halt
";

/// Conflict-free block size: the widest vector flavour's f32 lane count.
const BLOCK: usize = 16;

/// The histogram kernel.
#[derive(Debug, Clone, Copy)]
pub struct Histogram {
    m: usize,
    nbins: usize,
}

impl Histogram {
    /// Bumps `m` samples into `nbins` bins (`nbins ≥ 16` so every aligned
    /// 16-sample block can draw distinct bins).
    pub fn new(m: usize, nbins: usize) -> Self {
        assert!(m > 0);
        assert!(nbins >= BLOCK, "need at least {BLOCK} bins");
        Self { m, nbins }
    }

    fn hist(&self) -> u64 {
        region(0)
    }

    fn idx(&self) -> u64 {
        region(1)
    }

    /// Bin indices, unique within each aligned [`BLOCK`]-sample block.
    fn indices(&self) -> Vec<i32> {
        let mut rng = SplitMix64::new(0xE2);
        let mut out = Vec::with_capacity(self.m);
        while out.len() < self.m {
            // Partial Fisher–Yates: the first `take` slots of a bin
            // permutation are a uniform distinct sample.
            let mut bins: Vec<i32> = (0..self.nbins as i32).collect();
            let take = BLOCK.min(self.m - out.len());
            for i in 0..take {
                let j = i + rng.below((self.nbins - i) as u64) as usize;
                bins.swap(i, j);
                out.push(bins[i]);
            }
        }
        out
    }

    fn params(&self) -> String {
        format!(
            ".const M {}\n.const HIST {}\n.const IDX {}\n",
            self.m,
            self.hist(),
            self.idx()
        )
    }

    fn reference(&self) -> Vec<f32> {
        let mut hist = gen_f32(0xE3, self.nbins);
        for &i in &self.indices() {
            hist[i as usize] += 1.0;
        }
        hist
    }
}

impl Benchmark for Histogram {
    fn name(&self) -> &'static str {
        "Histogram"
    }

    fn domain(&self) -> &'static str {
        "sparse"
    }

    fn streams(&self) -> usize {
        3
    }

    fn pattern(&self) -> &'static str {
        "1D + indirect scatter"
    }

    fn program(&self, flavor: Flavor) -> Program {
        let params = self.params();
        let (name, text) = match flavor {
            Flavor::Uve => ("histogram-uve", UVE_TEXT),
            Flavor::Sve | Flavor::Neon => ("histogram-sve", SVE_TEXT),
            Flavor::Scalar => ("histogram-scalar", SCALAR_TEXT),
        };
        asm_units(name, &[("entry", text), ("params", &params)])
    }

    fn setup(&self, emu: &mut Emulator) {
        emu.mem
            .write_f32_slice(self.hist(), &gen_f32(0xE3, self.nbins));
        emu.mem.write_i32_slice(self.idx(), &self.indices());
    }

    fn check(&self, emu: &Emulator) -> Result<(), String> {
        check_f32(emu, "hist", self.hist(), &self.reference(), TOL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_checked;
    use uve_core::program_fingerprint;
    use uve_isa::{
        encode_program, Dir, DupSrc, ElemWidth, FReg, IndirectBehaviour, Inst, PReg, Param,
        ProgramBuilder, StreamCond, VOp, VReg, VType, XReg,
    };

    #[test]
    fn all_flavors_correct() {
        for (m, nbins) in [(256usize, 32usize), (93, 16)] {
            let b = Histogram::new(m, nbins);
            for f in Flavor::all() {
                run_checked(&b, f).unwrap();
            }
        }
    }

    #[test]
    fn indices_are_conflict_free_per_block() {
        let k = Histogram::new(93, 16);
        for block in k.indices().chunks(BLOCK) {
            let mut seen: Vec<i32> = block.to_vec();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), block.len(), "duplicate bin within a block");
        }
    }

    #[test]
    fn uve_text_matches_builder_twin() {
        let k = Histogram::new(384, 64);
        let x = XReg::new;
        let v = VReg::new;
        let w = ElemWidth::Word;

        let mut b = ProgramBuilder::new("histogram-uve");
        b.li(x(10), k.m as i64);
        b.li(x(13), 1);
        b.li(x(20), k.idx() as i64);
        b.push(Inst::SsStart {
            u: v(2),
            dir: Dir::Load,
            width: w,
            base: x(20),
            size: x(10),
            stride: x(13),
            done: true,
        });
        b.li(x(6), 1);
        for (u, dir) in [(0u8, Dir::Load), (1, Dir::Store)] {
            b.li(x(20), k.hist() as i64);
            b.push(Inst::SsStart {
                u: v(u),
                dir,
                width: w,
                base: x(20),
                size: x(6),
                stride: x(0),
                done: false,
            });
            b.push(Inst::SsAppInd {
                u: v(u),
                target: Param::Offset,
                behaviour: IndirectBehaviour::SetAdd,
                origin: v(2),
                end: true,
            });
        }
        b.li(x(7), 1);
        b.push(Inst::FCvtFX {
            width: w,
            fd: FReg::new(1),
            rs: x(7),
        });
        b.label("bump");
        b.push(Inst::VArithVS {
            op: VOp::Add,
            ty: VType::Fp,
            width: w,
            vd: v(1),
            vs1: v(0),
            scalar: DupSrc::F(FReg::new(1)),
            pred: PReg::new(0),
        });
        b.stream_branch(StreamCond::NotEnd, v(0), "bump");
        b.push(Inst::Halt);
        let twin = b.build().unwrap();

        let text = k.program(Flavor::Uve);
        assert_eq!(text, twin);
        assert_eq!(
            encode_program(&text).unwrap(),
            encode_program(&twin).unwrap()
        );
        assert_eq!(program_fingerprint(&text), program_fingerprint(&twin));
    }
}
