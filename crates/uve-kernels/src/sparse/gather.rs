//! **GatherReduce** (sparse): `out = Σ_i data[idx[i]]` — a pure indirect
//! gather feeding a horizontal reduction.
//!
//! The UVE flavour is the paper's Fig. 3.B5 single-descriptor form: a
//! one-element base descriptor whose offset is set per element from the
//! index origin stream, packed to full vector width by the streaming
//! engine.

use crate::common::{asm_units, check_f32, gen_f32, gen_indices, region, TOL};
use crate::{Benchmark, Flavor};
use uve_core::Emulator;
use uve_isa::Program;

/// Checked-in UVE assembly: B5 gather + one-lane running sum.
static UVE_TEXT: &str = "
    .include params
    li x10, M
    li x13, 1
    li x20, IDX
    ss.ld.w u2, x20, x10, x13
    li x6, 1
    li x20, DATA
    ss.ld.w.sta u0, x20, x6, x0
    ss.end.ind.off.setadd u0, u2
    li x20, OUT
    ss.st.w u1, x20, x6, x13
    so.v.dup.w.fp u4, f31
acc:
    so.a.hadd.w.fp u5, u0, p0
    so.a.add.w.fp u4, u4, u5, p0
    so.b.nend u0, acc
    so.v.mv u1, u4
    halt
";

/// Checked-in SVE/NEON assembly: predicated gather + MAC against ones.
static SVE_TEXT: &str = "
    .include params
    li x10, M
    li x21, IDX
    li x22, DATA
    li x7, 1
    fcvt.f.x.w f1, x7
    so.v.dup.w.fp u2, f1
    so.v.dup.w.fp u4, f31
    li x15, 0
    whilelt.w p1, x15, x10
acc:
    vl1.w u3, x21, x15, p1
    vgather.w u1, x22, u3, p1
    so.a.mac.w.fp u4, u1, u2, p1
    incvl.w x15
    whilelt.w p1, x15, x10
    so.b.pfirst p1, acc
    so.a.hadd.w.fp u5, u4, p0
    so.v.extr.f.w f2, u5[0]
    li x20, OUT
    fst.w f2, 0(x20)
    halt
";

/// Checked-in scalar assembly.
static SCALAR_TEXT: &str = "
    .include params
    li x10, M
    li x21, IDX
    li x20, DATA
    li x22, OUT
    fmv.w f1, f31
    li x15, 0
acc:
    ld.w x16, 0(x21)
    addi x21, x21, 4
    slli x16, x16, 2
    add x16, x20, x16
    fld.w f2, 0(x16)
    fadd.w f1, f1, f2
    addi x15, x15, 1
    blt x15, x10, acc
    fst.w f1, 0(x22)
    halt
";

/// The gather-reduce kernel.
#[derive(Debug, Clone, Copy)]
pub struct GatherReduce {
    m: usize,
    dn: usize,
}

impl GatherReduce {
    /// Sums `m` gathered elements out of a `dn`-element table.
    pub fn new(m: usize, dn: usize) -> Self {
        assert!(m > 0 && dn > 0);
        Self { m, dn }
    }

    fn data(&self) -> u64 {
        region(0)
    }

    fn idx(&self) -> u64 {
        region(1)
    }

    fn out(&self) -> u64 {
        region(2)
    }

    fn params(&self) -> String {
        format!(
            ".const M {}\n.const DATA {}\n.const IDX {}\n.const OUT {}\n",
            self.m,
            self.data(),
            self.idx(),
            self.out()
        )
    }

    fn reference(&self) -> f32 {
        let data = gen_f32(0xE0, self.dn);
        let idx = gen_indices(0xE1, self.m, self.dn as i32);
        idx.iter().map(|&i| data[i as usize]).sum()
    }
}

impl Benchmark for GatherReduce {
    fn name(&self) -> &'static str {
        "GatherReduce"
    }

    fn domain(&self) -> &'static str {
        "sparse"
    }

    fn streams(&self) -> usize {
        3
    }

    fn pattern(&self) -> &'static str {
        "1D + indirect modifier"
    }

    fn program(&self, flavor: Flavor) -> Program {
        let params = self.params();
        let (name, text) = match flavor {
            Flavor::Uve => ("gatherred-uve", UVE_TEXT),
            Flavor::Sve | Flavor::Neon => ("gatherred-sve", SVE_TEXT),
            Flavor::Scalar => ("gatherred-scalar", SCALAR_TEXT),
        };
        asm_units(name, &[("entry", text), ("params", &params)])
    }

    fn setup(&self, emu: &mut Emulator) {
        emu.mem
            .write_f32_slice(self.data(), &gen_f32(0xE0, self.dn));
        emu.mem
            .write_i32_slice(self.idx(), &gen_indices(0xE1, self.m, self.dn as i32));
    }

    fn check(&self, emu: &Emulator) -> Result<(), String> {
        check_f32(emu, "out", self.out(), &[self.reference()], TOL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_checked;
    use uve_core::program_fingerprint;
    use uve_isa::{
        encode_program, Dir, DupSrc, ElemWidth, FReg, HorizOp, IndirectBehaviour, Inst, PReg,
        Param, ProgramBuilder, StreamCond, VOp, VReg, VType, XReg,
    };

    #[test]
    fn all_flavors_correct() {
        for (m, dn) in [(128usize, 64usize), (61, 33)] {
            let b = GatherReduce::new(m, dn);
            for f in Flavor::all() {
                run_checked(&b, f).unwrap();
            }
        }
    }

    #[test]
    fn uve_text_matches_builder_twin() {
        let k = GatherReduce::new(512, 256);
        let x = XReg::new;
        let v = VReg::new;
        let w = ElemWidth::Word;
        let p0 = PReg::new(0);
        let fp = VType::Fp;

        let mut b = ProgramBuilder::new("gatherred-uve");
        b.li(x(10), k.m as i64);
        b.li(x(13), 1);
        b.li(x(20), k.idx() as i64);
        b.push(Inst::SsStart {
            u: v(2),
            dir: Dir::Load,
            width: w,
            base: x(20),
            size: x(10),
            stride: x(13),
            done: true,
        });
        b.li(x(6), 1);
        b.li(x(20), k.data() as i64);
        b.push(Inst::SsStart {
            u: v(0),
            dir: Dir::Load,
            width: w,
            base: x(20),
            size: x(6),
            stride: x(0),
            done: false,
        });
        b.push(Inst::SsAppInd {
            u: v(0),
            target: Param::Offset,
            behaviour: IndirectBehaviour::SetAdd,
            origin: v(2),
            end: true,
        });
        b.li(x(20), k.out() as i64);
        b.push(Inst::SsStart {
            u: v(1),
            dir: Dir::Store,
            width: w,
            base: x(20),
            size: x(6),
            stride: x(13),
            done: true,
        });
        b.push(Inst::VDup {
            vd: v(4),
            src: DupSrc::F(FReg::new(31)),
            width: w,
            ty: fp,
        });
        b.label("acc");
        b.push(Inst::VRed {
            op: HorizOp::Add,
            ty: fp,
            width: w,
            vd: v(5),
            vs: v(0),
            pred: p0,
        });
        b.push(Inst::VArith {
            op: VOp::Add,
            ty: fp,
            width: w,
            vd: v(4),
            vs1: v(4),
            vs2: v(5),
            pred: p0,
        });
        b.stream_branch(StreamCond::NotEnd, v(0), "acc");
        b.push(Inst::VMv { vd: v(1), vs: v(4) });
        b.push(Inst::Halt);
        let twin = b.build().unwrap();

        let text = k.program(Flavor::Uve);
        assert_eq!(text, twin);
        assert_eq!(
            encode_program(&text).unwrap(),
            encode_program(&twin).unwrap()
        );
        assert_eq!(program_fingerprint(&text), program_fingerprint(&twin));
    }
}
