//! Sparse/indirect kernel family (CSR SpMV, gather-reduce, histogram),
//! exercising the descriptor shapes of the Multi-Dimensional Vector ISA
//! paper (arXiv:2501.09902): single-descriptor gathers (Fig. 3.B5),
//! dual same-shaped gathers in lockstep, per-row indirect *size*
//! modifiers, and an indirect scatter store.
//!
//! Like the [`crate::dsp`] family, every kernel is authored as checked-in
//! `.uve` assembly text assembled through `assemble_units` against a
//! generated `.const` parameter unit, with a `ProgramBuilder` twin asserted
//! byte-identical by test.

pub mod gather;
pub mod histogram;
pub mod spmv;

pub use gather::GatherReduce;
pub use histogram::Histogram;
pub use spmv::Spmv;

use crate::Benchmark;

/// The sparse family at its default evaluation sizes.
pub fn suite() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(Spmv::new(48, 64, 24)),
        Box::new(GatherReduce::new(512, 256)),
        Box::new(Histogram::new(384, 64)),
    ]
}
