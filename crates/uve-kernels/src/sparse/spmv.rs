//! **SpMV** (sparse algebra): `y = A·x` with `A` in CSR form — the paper's
//! flagship indirection workload.
//!
//! The UVE flavour configures two three-dimensional gather streams in
//! lockstep, each carrying *two* indirect modifiers off shared origins:
//! the row-lengths stream sets each row's inner **size** (`ind.size.setval`)
//! while a per-element origin sets the inner **offset** (an iota stream with
//! `setval` for the values walk, the column stream with `setadd` for the
//! `x` gather). Both gathers therefore expose the identical descriptor
//! shape, the per-row reduction loop keys off the dim-1 end flag, and the
//! scalar core issues only the butterfly of `mac`/`hadd` ops per row.

use crate::common::{asm_units, check_f32, gen_f32, gen_indices, region, SplitMix64, TOL};
use crate::{Benchmark, Flavor};
use uve_core::Emulator;
use uve_isa::Program;

/// Checked-in UVE assembly: dual dual-modifier gathers + per-row hadd.
static UVE_TEXT: &str = "
    .include params
    li x10, NROWS
    li x11, NNZ
    li x13, 1
    li x20, IOTA
    ss.ld.w u3, x20, x11, x13
    li x20, COLS
    ss.ld.w u4, x20, x11, x13
    li x20, LENS
    ss.ld.w u5, x20, x10, x13
    li x6, 1
    li x20, VALS
    ss.ld.w.sta u0, x20, x6, x0
    ss.app u0, x0, x0, x0
    ss.app.ind.off.setval u0, u3
    ss.app u0, x0, x10, x0
    ss.end.ind.size.setval u0, u5
    li x20, XBASE
    ss.ld.w.sta u1, x20, x6, x0
    ss.app u1, x0, x0, x0
    ss.app.ind.off.setadd u1, u4
    ss.app u1, x0, x10, x0
    ss.end.ind.size.setval u1, u5
    li x20, YBASE
    ss.st.w.sta u2, x20, x6, x13
    ss.end u2, x0, x10, x13
row:
    so.v.dup.w.fp u8, f31
chunk:
    so.a.mac.w.fp u8, u0, u1, p0
    so.b.dim1.nend u0, chunk
    so.a.hadd.w.fp u2, u8, p0
    so.b.nend u0, row
    halt
";

/// Checked-in SVE/NEON assembly: per-row predicated gather loop over a
/// running nonzero cursor.
static SVE_TEXT: &str = "
    .include params
    li x10, NROWS
    li x21, LENS
    li x22, COLS
    li x23, VALS
    li x24, XBASE
    li x25, YBASE
    li x18, 0
    li x14, 0
rows:
    ld.w x9, 0(x21)
    addi x21, x21, 4
    slli x16, x18, 2
    add x26, x22, x16
    add x27, x23, x16
    so.v.dup.w.fp u4, f31
    li x15, 0
    whilelt.w p1, x15, x9
body:
    vl1.w u3, x26, x15, p1
    vgather.w u1, x24, u3, p1
    vl1.w u2, x27, x15, p1
    so.a.mac.w.fp u4, u2, u1, p1
    incvl.w x15
    whilelt.w p1, x15, x9
    so.b.pfirst p1, body
    so.a.hadd.w.fp u5, u4, p0
    so.v.extr.f.w f2, u5[0]
    slli x16, x14, 2
    add x16, x25, x16
    fst.w f2, 0(x16)
    add x18, x18, x9
    addi x14, x14, 1
    blt x14, x10, rows
    halt
";

/// Checked-in scalar assembly.
static SCALAR_TEXT: &str = "
    .include params
    li x10, NROWS
    li x21, LENS
    li x22, COLS
    li x23, VALS
    li x24, XBASE
    li x25, YBASE
    li x14, 0
rows:
    ld.w x9, 0(x21)
    addi x21, x21, 4
    fmv.w f1, f31
    li x15, 0
body:
    ld.w x16, 0(x22)
    addi x22, x22, 4
    slli x16, x16, 2
    add x16, x24, x16
    fld.w f2, 0(x16)
    fld.w f3, 0(x23)
    addi x23, x23, 4
    fmadd.w f1, f3, f2, f1
    addi x15, x15, 1
    blt x15, x9, body
    fst.w f1, 0(x25)
    addi x25, x25, 4
    addi x14, x14, 1
    blt x14, x10, rows
    halt
";

/// The CSR sparse matrix–vector product kernel.
#[derive(Debug, Clone, Copy)]
pub struct Spmv {
    nrows: usize,
    ncols: usize,
    maxlen: usize,
}

impl Spmv {
    /// An `nrows × ncols` CSR matrix with 1..=`maxlen` nonzeros per row.
    ///
    /// Row lengths stay ≥ 1 because the streaming engine elides
    /// zero-iteration dims, which would desync the per-row `hadd` count.
    pub fn new(nrows: usize, ncols: usize, maxlen: usize) -> Self {
        assert!(nrows > 0 && ncols > 0 && maxlen >= 1);
        Self {
            nrows,
            ncols,
            maxlen,
        }
    }

    fn vals(&self) -> u64 {
        region(0)
    }

    fn cols(&self) -> u64 {
        region(1)
    }

    fn lens(&self) -> u64 {
        region(2)
    }

    fn x(&self) -> u64 {
        region(3)
    }

    fn y(&self) -> u64 {
        region(4)
    }

    fn iota(&self) -> u64 {
        region(5)
    }

    fn row_lens(&self) -> Vec<i32> {
        let mut rng = SplitMix64::new(0xE4);
        (0..self.nrows)
            .map(|_| 1 + rng.below(self.maxlen as u64) as i32)
            .collect()
    }

    fn nnz(&self) -> usize {
        self.row_lens().iter().map(|&l| l as usize).sum()
    }

    fn params(&self) -> String {
        format!(
            ".const NROWS {}\n.const NNZ {}\n.const VALS {}\n.const COLS {}\n\
             .const LENS {}\n.const XBASE {}\n.const YBASE {}\n.const IOTA {}\n",
            self.nrows,
            self.nnz(),
            self.vals(),
            self.cols(),
            self.lens(),
            self.x(),
            self.y(),
            self.iota()
        )
    }

    fn reference(&self) -> Vec<f32> {
        let lens = self.row_lens();
        let nnz = self.nnz();
        let vals = gen_f32(0xE5, nnz);
        let cols = gen_indices(0xE6, nnz, self.ncols as i32);
        let x = gen_f32(0xE7, self.ncols);
        let mut y = Vec::with_capacity(self.nrows);
        let mut cursor = 0usize;
        for &len in &lens {
            let mut acc = 0f32;
            for j in 0..len as usize {
                acc += vals[cursor + j] * x[cols[cursor + j] as usize];
            }
            cursor += len as usize;
            y.push(acc);
        }
        y
    }
}

impl Benchmark for Spmv {
    fn name(&self) -> &'static str {
        "SpMV"
    }

    fn domain(&self) -> &'static str {
        "sparse algebra"
    }

    fn streams(&self) -> usize {
        6
    }

    fn pattern(&self) -> &'static str {
        "3D + dual indirect modifiers"
    }

    fn program(&self, flavor: Flavor) -> Program {
        let params = self.params();
        let (name, text) = match flavor {
            Flavor::Uve => ("spmv-uve", UVE_TEXT),
            Flavor::Sve | Flavor::Neon => ("spmv-sve", SVE_TEXT),
            Flavor::Scalar => ("spmv-scalar", SCALAR_TEXT),
        };
        asm_units(name, &[("entry", text), ("params", &params)])
    }

    fn setup(&self, emu: &mut Emulator) {
        let nnz = self.nnz();
        emu.mem.write_f32_slice(self.vals(), &gen_f32(0xE5, nnz));
        emu.mem
            .write_i32_slice(self.cols(), &gen_indices(0xE6, nnz, self.ncols as i32));
        emu.mem.write_i32_slice(self.lens(), &self.row_lens());
        emu.mem
            .write_f32_slice(self.x(), &gen_f32(0xE7, self.ncols));
        let iota: Vec<i32> = (0..nnz as i32).collect();
        emu.mem.write_i32_slice(self.iota(), &iota);
    }

    fn check(&self, emu: &Emulator) -> Result<(), String> {
        check_f32(emu, "y", self.y(), &self.reference(), TOL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_checked;
    use uve_core::program_fingerprint;
    use uve_isa::{
        encode_program, Dir, DupSrc, ElemWidth, FReg, HorizOp, IndirectBehaviour, Inst, PReg,
        Param, ProgramBuilder, StreamCond, VReg, VType, XReg,
    };

    #[test]
    fn all_flavors_correct() {
        // maxlen > 16 in both cases so rows span multiple packed chunks.
        for (nrows, ncols, maxlen) in [(48usize, 64usize, 24usize), (13, 33, 20)] {
            let b = Spmv::new(nrows, ncols, maxlen);
            for f in Flavor::all() {
                run_checked(&b, f).unwrap();
            }
        }
    }

    #[test]
    fn uve_text_matches_builder_twin() {
        let k = Spmv::new(48, 64, 24);
        let x = XReg::new;
        let v = VReg::new;
        let w = ElemWidth::Word;
        let p0 = PReg::new(0);
        let fp = VType::Fp;

        let mut b = ProgramBuilder::new("spmv-uve");
        b.li(x(10), k.nrows as i64);
        b.li(x(11), k.nnz() as i64);
        b.li(x(13), 1);
        for (u, base, size) in [(3u8, k.iota(), 11u8), (4, k.cols(), 11), (5, k.lens(), 10)] {
            b.li(x(20), base as i64);
            b.push(Inst::SsStart {
                u: v(u),
                dir: Dir::Load,
                width: w,
                base: x(20),
                size: x(size),
                stride: x(13),
                done: true,
            });
        }
        b.li(x(6), 1);
        for (u, base, origin, behaviour) in [
            (0u8, k.vals(), 3u8, IndirectBehaviour::SetValue),
            (1, k.x(), 4, IndirectBehaviour::SetAdd),
        ] {
            b.li(x(20), base as i64);
            b.push(Inst::SsStart {
                u: v(u),
                dir: Dir::Load,
                width: w,
                base: x(20),
                size: x(6),
                stride: x(0),
                done: false,
            });
            b.push(Inst::SsApp {
                u: v(u),
                offset: x(0),
                size: x(0),
                stride: x(0),
                end: false,
            });
            b.push(Inst::SsAppInd {
                u: v(u),
                target: Param::Offset,
                behaviour,
                origin: v(origin),
                end: false,
            });
            b.push(Inst::SsApp {
                u: v(u),
                offset: x(0),
                size: x(10),
                stride: x(0),
                end: false,
            });
            b.push(Inst::SsAppInd {
                u: v(u),
                target: Param::Size,
                behaviour: IndirectBehaviour::SetValue,
                origin: v(5),
                end: true,
            });
        }
        b.li(x(20), k.y() as i64);
        b.push(Inst::SsStart {
            u: v(2),
            dir: Dir::Store,
            width: w,
            base: x(20),
            size: x(6),
            stride: x(13),
            done: false,
        });
        b.push(Inst::SsApp {
            u: v(2),
            offset: x(0),
            size: x(10),
            stride: x(13),
            end: true,
        });
        b.label("row");
        b.push(Inst::VDup {
            vd: v(8),
            src: DupSrc::F(FReg::new(31)),
            width: w,
            ty: fp,
        });
        b.label("chunk");
        b.push(Inst::VMac {
            ty: fp,
            width: w,
            vd: v(8),
            vs1: v(0),
            vs2: v(1),
            pred: p0,
        });
        b.stream_branch(StreamCond::DimNotEnd(1), v(0), "chunk");
        b.push(Inst::VRed {
            op: HorizOp::Add,
            ty: fp,
            width: w,
            vd: v(2),
            vs: v(8),
            pred: p0,
        });
        b.stream_branch(StreamCond::NotEnd, v(0), "row");
        b.push(Inst::Halt);
        let twin = b.build().unwrap();

        let text = k.program(Flavor::Uve);
        assert_eq!(text, twin);
        assert_eq!(
            encode_program(&text).unwrap(),
            encode_program(&twin).unwrap()
        );
        assert_eq!(program_fingerprint(&text), program_fingerprint(&twin));
    }
}
