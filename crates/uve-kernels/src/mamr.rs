//! Benchmarks O/P/Q — **MAMR**: Maximum Across Matrix Rows, the paper's
//! Fig. 2 example, in its three access-pattern variants:
//!
//! - **MAMR** (O): full `n×n` matrix,
//! - **MAMR-Diag** (P): lower-triangular matrix (static size modifier),
//! - **MAMR-Ind** (Q): `A[B[i][j]]` with an index matrix `B` (indirect
//!   modifier).
//!
//! The UVE loop body is identical for all variants — only the stream
//! configuration (and the dimension tested for row boundaries) changes,
//! demonstrating feature F3. The ARM compiler could not vectorize these
//! kernels, so the SVE/NEON baselines are scalar.

use crate::common::{asm, check_f32, gen_f32, gen_indices, region, TOL};
use crate::{Benchmark, Flavor};
use std::fmt::Write as _;
use uve_core::Emulator;
use uve_isa::Program;

/// Which MAMR variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MamrVariant {
    /// Full matrix (row `i` has `n` elements).
    Full,
    /// Lower triangular (row `i` has `i+1` elements).
    Diag,
    /// Indirect: row `i` is `A[B[i][0..n]]`.
    Indirect,
}

/// The MAMR kernel.
#[derive(Debug, Clone, Copy)]
pub struct Mamr {
    n: usize,
    variant: MamrVariant,
}

impl Mamr {
    /// Full-matrix variant (paper row O).
    pub fn full(n: usize) -> Self {
        Self {
            n,
            variant: MamrVariant::Full,
        }
    }

    /// Lower-triangular variant (row P).
    pub fn diag(n: usize) -> Self {
        Self {
            n,
            variant: MamrVariant::Diag,
        }
    }

    /// Indirect variant (row Q).
    pub fn indirect(n: usize) -> Self {
        Self {
            n,
            variant: MamrVariant::Indirect,
        }
    }

    /// The variant.
    pub fn variant(&self) -> MamrVariant {
        self.variant
    }

    fn a(&self) -> u64 {
        region(0)
    }

    fn bidx(&self) -> u64 {
        region(1)
    }

    fn c(&self) -> u64 {
        region(2)
    }

    fn reference(&self) -> Vec<f32> {
        let n = self.n;
        let a = gen_f32(0x80, n * n);
        match self.variant {
            MamrVariant::Full => (0..n)
                .map(|i| {
                    a[i * n..(i + 1) * n]
                        .iter()
                        .copied()
                        .fold(f32::MIN, f32::max)
                })
                .collect(),
            MamrVariant::Diag => (0..n)
                .map(|i| {
                    a[i * n..i * n + i + 1]
                        .iter()
                        .copied()
                        .fold(f32::MIN, f32::max)
                })
                .collect(),
            MamrVariant::Indirect => {
                let b = gen_indices(0x81, n * n, n as i32 * n as i32);
                (0..n)
                    .map(|i| {
                        (0..n)
                            .map(|j| a[b[i * n + j] as usize])
                            .fold(f32::MIN, f32::max)
                    })
                    .collect()
            }
        }
    }

    fn uve_text(&self) -> String {
        let n = self.n;
        let (a, b, c) = (self.a(), self.bidx(), self.c());
        let mut t = String::new();
        let _ = writeln!(t, "    li x10, {n}");
        let _ = writeln!(t, "    li x13, 1");
        // Variant-specific input stream configuration on u0; the row
        // boundary is signalled by `row_dim`.
        let row_dim = match self.variant {
            MamrVariant::Full => {
                let _ = writeln!(t, "    li x20, {a}");
                let _ = writeln!(t, "    ss.ld.w.sta u0, x20, x10, x13");
                let _ = writeln!(t, "    ss.end u0, x0, x10, x10");
                0
            }
            MamrVariant::Diag => {
                let _ = writeln!(t, "    li x20, {a}");
                let _ = writeln!(t, "    ss.ld.w.sta u0, x20, x0, x13");
                let _ = writeln!(t, "    ss.app u0, x0, x10, x10");
                let _ = writeln!(t, "    ss.end.mod.size.add u0, x13, x10");
                0
            }
            MamrVariant::Indirect => {
                // Origin: the index matrix B, streamed linearly.
                let _ = writeln!(t, "    mul x7, x10, x10");
                let _ = writeln!(t, "    li x20, {b}");
                let _ = writeln!(t, "    ss.ld.w u2, x20, x7, x13");
                // A[B[i][j]]: one element per origin value, rows of n.
                let _ = writeln!(t, "    li x6, 1");
                let _ = writeln!(t, "    li x20, {a}");
                let _ = writeln!(t, "    ss.ld.w.sta u0, x20, x6, x0");
                let _ = writeln!(t, "    ss.app u0, x0, x10, x0");
                let _ = writeln!(t, "    ss.app.ind.off.setadd u0, u2");
                let _ = writeln!(t, "    ss.end u0, x0, x10, x0");
                1
            }
        };
        // Output: one element per row.
        let _ = writeln!(t, "    li x6, 1");
        let _ = writeln!(t, "    li x20, {c}");
        let _ = writeln!(t, "    ss.st.w.sta u1, x20, x6, x13");
        let _ = writeln!(t, "    ss.end u1, x0, x10, x13");
        // Fig. 2 loop: per-block horizontal max folded into a one-lane
        // running max (safe for rows that are not multiples of VL).
        let _ = writeln!(t, "next_line:");
        let _ = writeln!(t, "    so.a.hmax.w.fp u5, u0, p0");
        let _ = writeln!(t, "    so.b.dim{row_dim}.end u0, row_done");
        let _ = writeln!(t, "loop:");
        let _ = writeln!(t, "    so.a.hmax.w.fp u6, u0, p0");
        let _ = writeln!(t, "    so.a.max.w.fp u5, u5, u6, p0");
        let _ = writeln!(t, "    so.b.dim{row_dim}.nend u0, loop");
        let _ = writeln!(t, "row_done:");
        let _ = writeln!(t, "    so.v.mv u1, u5");
        let _ = writeln!(t, "    so.b.nend u0, next_line");
        let _ = writeln!(t, "    halt");
        t
    }

    fn scalar_text(&self) -> String {
        let n = self.n;
        let (a, b, c) = (self.a(), self.bidx(), self.c());
        match self.variant {
            MamrVariant::Full | MamrVariant::Diag => {
                let triangular = self.variant == MamrVariant::Diag;
                let bound = if triangular {
                    "    addi x9, x14, 1" // row i has i+1 elements
                } else {
                    "    add x9, x10, x0"
                };
                format!(
                    "
    li x10, {n}
    li x20, {a}
    li x22, {c}
    li x14, 0
row:
{bound}
    mul x16, x14, x10
    slli x16, x16, 2
    li x17, {a}
    add x16, x17, x16
    fld.w f1, 0(x16)
    addi x16, x16, 4
    li x15, 1
    bge x15, x9, done_row
elem:
    fld.w f2, 0(x16)
    fmax.w f1, f1, f2
    addi x16, x16, 4
    addi x15, x15, 1
    blt x15, x9, elem
done_row:
    slli x17, x14, 2
    add x17, x22, x17
    fst.w f1, 0(x17)
    addi x14, x14, 1
    blt x14, x10, row
    halt
",
                )
            }
            MamrVariant::Indirect => format!(
                "
    li x10, {n}
    li x20, {a}
    li x21, {b}
    li x22, {c}
    li x14, 0
row:
    li x7, -2000000000
    fcvt.f.x.w f1, x7
    li x15, 0
elem:
    ld.w x16, 0(x21)
    addi x21, x21, 4
    slli x16, x16, 2
    add x16, x20, x16
    fld.w f2, 0(x16)
    fmax.w f1, f1, f2
    addi x15, x15, 1
    blt x15, x10, elem
    slli x17, x14, 2
    add x17, x22, x17
    fst.w f1, 0(x17)
    addi x14, x14, 1
    blt x14, x10, row
    halt
"
            ),
        }
    }
}

impl Benchmark for Mamr {
    fn streams(&self) -> usize {
        match self.variant {
            MamrVariant::Indirect => 3,
            _ => 2,
        }
    }

    fn pattern(&self) -> &'static str {
        match self.variant {
            MamrVariant::Full => "2D",
            MamrVariant::Diag => "2D + static modifier",
            MamrVariant::Indirect => "2D + indirect modifier",
        }
    }

    fn name(&self) -> &'static str {
        match self.variant {
            MamrVariant::Full => "MAMR",
            MamrVariant::Diag => "MAMR-Diag",
            MamrVariant::Indirect => "MAMR-Ind",
        }
    }

    fn domain(&self) -> &'static str {
        "data mining"
    }

    fn sve_vectorized(&self) -> bool {
        false
    }

    fn program(&self, flavor: Flavor) -> Program {
        match flavor {
            Flavor::Uve => asm("mamr-uve", &self.uve_text()),
            // Not vectorized by the paper's compiler: scalar baselines.
            _ => asm("mamr-scalar", &self.scalar_text()),
        }
    }

    fn setup(&self, emu: &mut Emulator) {
        let n = self.n;
        emu.mem.write_f32_slice(self.a(), &gen_f32(0x80, n * n));
        if self.variant == MamrVariant::Indirect {
            emu.mem
                .write_i32_slice(self.bidx(), &gen_indices(0x81, n * n, n as i32 * n as i32));
        }
    }

    fn check(&self, emu: &Emulator) -> Result<(), String> {
        check_f32(emu, "C", self.c(), &self.reference(), TOL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_checked;

    #[test]
    fn full_variant_all_flavors() {
        for n in [16usize, 21] {
            let b = Mamr::full(n);
            for f in Flavor::all() {
                run_checked(&b, f).unwrap();
            }
        }
    }

    #[test]
    fn diag_variant_all_flavors() {
        for n in [8usize, 19] {
            let b = Mamr::diag(n);
            for f in Flavor::all() {
                run_checked(&b, f).unwrap();
            }
        }
    }

    #[test]
    fn indirect_variant_all_flavors() {
        for n in [8usize, 13] {
            let b = Mamr::indirect(n);
            for f in Flavor::all() {
                run_checked(&b, f).unwrap();
            }
        }
    }

    #[test]
    fn scalar_baseline_flag() {
        assert!(!Mamr::full(8).sve_vectorized());
    }
}
