//! Benchmarks I and J — **Jacobi-1D** and **Jacobi-2D** stencils
//! (Polybench): `t` sweeps of 3-point / 5-point averaging between two
//! arrays.
//!
//! In UVE, each half-sweep is a set of *shifted* input streams over the
//! same array plus one output stream — the loop body is pure arithmetic
//! (3–5 additions and one scale), with a single stream branch.

use crate::common::{asm, check_f32, gen_f32, region, TOL};
use crate::{Benchmark, Flavor};
use std::fmt::Write as _;
use uve_core::Emulator;
use uve_isa::{FReg, Program};

/// The Jacobi-1D kernel.
#[derive(Debug, Clone, Copy)]
pub struct Jacobi1d {
    n: usize,
    tsteps: usize,
}

impl Jacobi1d {
    /// `tsteps` sweeps over arrays of `n` elements (n ≥ 3).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn new(n: usize, tsteps: usize) -> Self {
        assert!(n >= 3);
        Self { n, tsteps }
    }

    fn a(&self) -> u64 {
        region(0)
    }

    fn b(&self) -> u64 {
        region(1)
    }

    fn reference(&self) -> (Vec<f32>, Vec<f32>) {
        let n = self.n;
        let mut a = gen_f32(0x10, n);
        let mut b = gen_f32(0x11, n);
        for _ in 0..self.tsteps {
            for i in 1..n - 1 {
                b[i] = (a[i - 1] + a[i] + a[i + 1]) * (1.0 / 3.0);
            }
            for i in 1..n - 1 {
                a[i] = (b[i - 1] + b[i] + b[i + 1]) * (1.0 / 3.0);
            }
        }
        (a, b)
    }

    fn half_uve(&self, tag: String, src: u64, dst: u64) -> String {
        let m = self.n - 2;
        format!(
            "
    li x10, {m}
    li x13, 1
    li x20, {src}
    ss.ld.w u0, x20, x10, x13
    li x20, {src4}
    ss.ld.w u1, x20, x10, x13
    li x20, {src8}
    ss.ld.w u2, x20, x10, x13
    li x20, {dst4}
    ss.st.w u3, x20, x10, x13
h{tag}:
    so.a.add.w.fp u4, u0, u1, p0
    so.a.add.w.fp u4, u4, u2, p0
    so.a.mul.vs.w.fp u3, u4, f10, p0
    so.b.nend u0, h{tag}
",
            src4 = src + 4,
            src8 = src + 8,
            dst4 = dst + 4,
        )
    }

    fn half_sve(&self, tag: String, src: u64, dst: u64) -> String {
        let m = self.n - 2;
        format!(
            "
    li x10, {m}
    li x20, {src}
    li x21, {src4}
    li x22, {src8}
    li x23, {dst4}
    li x15, 0
    whilelt.w p1, x15, x10
h{tag}:
    vl1.w u0, x20, x15, p1
    vl1.w u1, x21, x15, p1
    vl1.w u2, x22, x15, p1
    so.a.add.w.fp u4, u0, u1, p1
    so.a.add.w.fp u4, u4, u2, p1
    so.a.mul.vs.w.fp u4, u4, f10, p1
    vs1.w u4, x23, x15, p1
    incvl.w x15
    whilelt.w p1, x15, x10
    so.b.pfirst p1, h{tag}
",
            src4 = src + 4,
            src8 = src + 8,
            dst4 = dst + 4,
        )
    }

    fn half_scalar(&self, tag: String, src: u64, dst: u64) -> String {
        let m = self.n - 2;
        format!(
            "
    li x10, {m}
    li x20, {src}
    li x23, {dst4}
    li x15, 0
h{tag}:
    fld.w f1, 0(x20)
    fld.w f2, 4(x20)
    fld.w f3, 8(x20)
    fadd.w f1, f1, f2
    fadd.w f1, f1, f3
    fmul.w f1, f1, f10
    fst.w f1, 0(x23)
    addi x20, x20, 4
    addi x23, x23, 4
    addi x15, x15, 1
    blt x15, x10, h{tag}
",
            dst4 = dst + 4,
        )
    }
}

impl Benchmark for Jacobi1d {
    fn streams(&self) -> usize {
        4
    }

    fn pattern(&self) -> &'static str {
        "1D"
    }

    fn name(&self) -> &'static str {
        "Jacobi-1D"
    }

    fn domain(&self) -> &'static str {
        "stencil"
    }

    fn program(&self, flavor: Flavor) -> Program {
        let mut text = String::new();
        for t in 0..self.tsteps {
            for (h, (src, dst)) in [(self.a(), self.b()), (self.b(), self.a())]
                .into_iter()
                .enumerate()
            {
                let tag = format!("{t}_{h}");
                text.push_str(&match flavor {
                    Flavor::Uve => self.half_uve(tag, src, dst),
                    Flavor::Sve | Flavor::Neon => self.half_sve(tag, src, dst),
                    Flavor::Scalar => self.half_scalar(tag, src, dst),
                });
            }
        }
        text.push_str("    halt\n");
        asm("jacobi1d", &text)
    }

    fn setup(&self, emu: &mut Emulator) {
        emu.set_f(FReg::FA0, 1.0 / 3.0);
        emu.mem.write_f32_slice(self.a(), &gen_f32(0x10, self.n));
        emu.mem.write_f32_slice(self.b(), &gen_f32(0x11, self.n));
    }

    fn check(&self, emu: &Emulator) -> Result<(), String> {
        let (a, b) = self.reference();
        check_f32(emu, "A", self.a(), &a, TOL)?;
        check_f32(emu, "B", self.b(), &b, TOL)
    }
}

/// The Jacobi-2D kernel.
#[derive(Debug, Clone, Copy)]
pub struct Jacobi2d {
    n: usize,
    tsteps: usize,
}

impl Jacobi2d {
    /// `tsteps` sweeps over `n×n` grids (n ≥ 3).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn new(n: usize, tsteps: usize) -> Self {
        assert!(n >= 3);
        Self { n, tsteps }
    }

    fn a(&self) -> u64 {
        region(0)
    }

    fn b(&self) -> u64 {
        region(1)
    }

    fn reference(&self) -> (Vec<f32>, Vec<f32>) {
        let n = self.n;
        let mut a = gen_f32(0x20, n * n);
        let mut b = gen_f32(0x21, n * n);
        for _ in 0..self.tsteps {
            for (s, d) in [(0, 1), (1, 0)] {
                // s/d select which array is source this half-sweep.
                let (src, dst) = if s == 0 {
                    (a.clone(), &mut b)
                } else {
                    (b.clone(), &mut a)
                };
                let _ = d;
                for i in 1..n - 1 {
                    for j in 1..n - 1 {
                        dst[i * n + j] = 0.2
                            * (src[i * n + j]
                                + src[i * n + j - 1]
                                + src[i * n + j + 1]
                                + src[(i - 1) * n + j]
                                + src[(i + 1) * n + j]);
                    }
                }
            }
        }
        (a, b)
    }

    /// Offsets (in elements, from the grid origin) of the five-point
    /// stencil's streams plus the output, for interior origin (1,1).
    fn stencil_bases(&self, src: u64, dst: u64) -> [u64; 6] {
        let n = self.n as u64;
        let at = |i: u64, j: u64| 4 * (i * n + j);
        [
            src + at(1, 1), // centre
            src + at(1, 0), // west
            src + at(1, 2), // east
            src + at(0, 1), // north
            src + at(2, 1), // south
            dst + at(1, 1), // output
        ]
    }

    fn half_uve(&self, tag: String, src: u64, dst: u64) -> String {
        let m = self.n - 2;
        let n = self.n;
        let [c, w, e, no, s, o] = self.stencil_bases(src, dst);
        let mut t = String::new();
        let _ = writeln!(t, "    li x10, {m}");
        let _ = writeln!(t, "    li x11, {n}");
        let _ = writeln!(t, "    li x13, 1");
        for (u, base) in [(0u32, c), (1, w), (2, e), (3, no), (4, s)] {
            let _ = writeln!(t, "    li x20, {base}");
            let _ = writeln!(t, "    ss.ld.w.sta u{u}, x20, x10, x13");
            let _ = writeln!(t, "    ss.end u{u}, x0, x10, x11");
        }
        let _ = writeln!(t, "    li x20, {o}");
        let _ = writeln!(t, "    ss.st.w.sta u5, x20, x10, x13");
        let _ = writeln!(t, "    ss.end u5, x0, x10, x11");
        let _ = writeln!(t, "h{tag}:");
        let _ = writeln!(t, "    so.a.add.w.fp u6, u0, u1, p0");
        let _ = writeln!(t, "    so.a.add.w.fp u6, u6, u2, p0");
        let _ = writeln!(t, "    so.a.add.w.fp u6, u6, u3, p0");
        let _ = writeln!(t, "    so.a.add.w.fp u6, u6, u4, p0");
        let _ = writeln!(t, "    so.a.mul.vs.w.fp u5, u6, f10, p0");
        let _ = writeln!(t, "    so.b.nend u0, h{tag}");
        t
    }

    fn half_sve(&self, tag: String, src: u64, dst: u64) -> String {
        let m = self.n - 2;
        let n = self.n;
        let [c, w, e, no, s, o] = self.stencil_bases(src, dst);
        format!(
            "
    li x10, {m}
    li x11, {n}
    li x14, 0              ; row
r{tag}:
    mul x16, x14, x11
    slli x16, x16, 2
    li x20, {c}
    add x20, x20, x16
    li x21, {w}
    add x21, x21, x16
    li x22, {e}
    add x22, x22, x16
    li x23, {no}
    add x23, x23, x16
    li x24, {s}
    add x24, x24, x16
    li x25, {o}
    add x25, x25, x16
    li x15, 0
    whilelt.w p1, x15, x10
h{tag}:
    vl1.w u0, x20, x15, p1
    vl1.w u1, x21, x15, p1
    vl1.w u2, x22, x15, p1
    vl1.w u3, x23, x15, p1
    vl1.w u4, x24, x15, p1
    so.a.add.w.fp u6, u0, u1, p1
    so.a.add.w.fp u6, u6, u2, p1
    so.a.add.w.fp u6, u6, u3, p1
    so.a.add.w.fp u6, u6, u4, p1
    so.a.mul.vs.w.fp u6, u6, f10, p1
    vs1.w u6, x25, x15, p1
    incvl.w x15
    whilelt.w p1, x15, x10
    so.b.pfirst p1, h{tag}
    addi x14, x14, 1
    blt x14, x10, r{tag}
"
        )
    }

    fn half_scalar(&self, tag: String, src: u64, dst: u64) -> String {
        let m = self.n - 2;
        let n = self.n;
        let [c, w, e, no, s, o] = self.stencil_bases(src, dst);
        format!(
            "
    li x10, {m}
    li x11, {n}
    li x14, 0
r{tag}:
    mul x16, x14, x11
    slli x16, x16, 2
    li x20, {c}
    add x20, x20, x16
    li x21, {w}
    add x21, x21, x16
    li x22, {e}
    add x22, x22, x16
    li x23, {no}
    add x23, x23, x16
    li x24, {s}
    add x24, x24, x16
    li x25, {o}
    add x25, x25, x16
    li x15, 0
h{tag}:
    fld.w f1, 0(x20)
    fld.w f2, 0(x21)
    fadd.w f1, f1, f2
    fld.w f2, 0(x22)
    fadd.w f1, f1, f2
    fld.w f2, 0(x23)
    fadd.w f1, f1, f2
    fld.w f2, 0(x24)
    fadd.w f1, f1, f2
    fmul.w f1, f1, f10
    fst.w f1, 0(x25)
    addi x20, x20, 4
    addi x21, x21, 4
    addi x22, x22, 4
    addi x23, x23, 4
    addi x24, x24, 4
    addi x25, x25, 4
    addi x15, x15, 1
    blt x15, x10, h{tag}
    addi x14, x14, 1
    blt x14, x10, r{tag}
"
        )
    }
}

impl Benchmark for Jacobi2d {
    fn streams(&self) -> usize {
        6
    }

    fn pattern(&self) -> &'static str {
        "2D"
    }

    fn name(&self) -> &'static str {
        "Jacobi-2D"
    }

    fn domain(&self) -> &'static str {
        "stencil"
    }

    fn program(&self, flavor: Flavor) -> Program {
        let mut text = String::new();
        for t in 0..self.tsteps {
            for (h, (src, dst)) in [(self.a(), self.b()), (self.b(), self.a())]
                .into_iter()
                .enumerate()
            {
                let tag = format!("{t}_{h}");
                text.push_str(&match flavor {
                    Flavor::Uve => self.half_uve(tag, src, dst),
                    Flavor::Sve | Flavor::Neon => self.half_sve(tag, src, dst),
                    Flavor::Scalar => self.half_scalar(tag, src, dst),
                });
            }
        }
        text.push_str("    halt\n");
        asm("jacobi2d", &text)
    }

    fn setup(&self, emu: &mut Emulator) {
        emu.set_f(FReg::FA0, 0.2);
        emu.mem
            .write_f32_slice(self.a(), &gen_f32(0x20, self.n * self.n));
        emu.mem
            .write_f32_slice(self.b(), &gen_f32(0x21, self.n * self.n));
    }

    fn check(&self, emu: &Emulator) -> Result<(), String> {
        let (a, b) = self.reference();
        check_f32(emu, "A", self.a(), &a, TOL)?;
        check_f32(emu, "B", self.b(), &b, TOL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_checked;

    #[test]
    fn jacobi1d_all_flavors() {
        for n in [67usize, 34] {
            let b = Jacobi1d::new(n, 2);
            for f in Flavor::all() {
                run_checked(&b, f).unwrap();
            }
        }
    }

    #[test]
    fn jacobi2d_all_flavors() {
        for n in [10usize, 19] {
            let b = Jacobi2d::new(n, 2);
            for f in Flavor::all() {
                run_checked(&b, f).unwrap();
            }
        }
    }

    #[test]
    fn jacobi2d_uses_twelve_streams_per_step() {
        // 6 streams per half-sweep × 2 halves (paper: 12 streams).
        let b = Jacobi2d::new(8, 1);
        let r = run_checked(&b, Flavor::Uve).unwrap();
        assert_eq!(r.result.trace.streams.len(), 12);
    }
}
