//! Benchmark A — **Memcpy** (memory domain): `y[i] = x[i]`.
//!
//! The simplest streaming pattern: two 1-D streams, a single `so.v.mv` loop
//! body in UVE.

use crate::common::{asm, check_f32, gen_f32, region};
use crate::{Benchmark, Flavor};
use uve_core::Emulator;
use uve_isa::Program;

/// The Memcpy kernel.
#[derive(Debug, Clone, Copy)]
pub struct Memcpy {
    n: usize,
}

impl Memcpy {
    /// Copies `n` 32-bit elements.
    pub fn new(n: usize) -> Self {
        Self { n }
    }

    fn src(&self) -> u64 {
        region(0)
    }

    fn dst(&self) -> u64 {
        region(1)
    }
}

impl Benchmark for Memcpy {
    fn streams(&self) -> usize {
        2
    }

    fn pattern(&self) -> &'static str {
        "1D"
    }

    fn name(&self) -> &'static str {
        "Memcpy"
    }

    fn domain(&self) -> &'static str {
        "memory"
    }

    fn program(&self, flavor: Flavor) -> Program {
        let (n, src, dst) = (self.n, self.src(), self.dst());
        match flavor {
            Flavor::Uve => asm(
                "memcpy-uve",
                &format!(
                    "
    li x10, {n}
    li x11, {src}
    li x12, {dst}
    li x13, 1
    ss.ld.w u0, x11, x10, x13
    ss.st.w u1, x12, x10, x13
loop:
    so.v.mv u1, u0
    so.b.nend u0, loop
    halt
"
                ),
            ),
            Flavor::Sve => asm(
                "memcpy-sve",
                &format!(
                    "
    li x10, 0
    li x11, {n}
    li x12, {src}
    li x13, {dst}
    whilelt.w p1, x10, x11
loop:
    vl1.w u0, x12, x10, p1
    vs1.w u0, x13, x10, p1
    incvl.w x10
    whilelt.w p1, x10, x11
    so.b.pfirst p1, loop
    halt
"
                ),
            ),
            Flavor::Neon => asm(
                "memcpy-neon",
                &format!(
                    "
    li x10, 0
    li x11, {n}
    cntvl.w x5
    div x6, x11, x5
    mul x6, x6, x5
    li x12, {src}
    li x13, {dst}
    beq x6, x0, tail_check
loop:
    vl1.w u0, x12, x10, p0
    vs1.w u0, x13, x10, p0
    incvl.w x10
    blt x10, x6, loop
tail_check:
    bge x10, x11, done
tail:
    slli x7, x10, 2
    add x8, x12, x7
    fld.w f1, 0(x8)
    add x8, x13, x7
    fst.w f1, 0(x8)
    addi x10, x10, 1
    blt x10, x11, tail
done:
    halt
"
                ),
            ),
            Flavor::Scalar => asm(
                "memcpy-scalar",
                &format!(
                    "
    li x10, {n}
    li x12, {src}
    li x13, {dst}
    beq x10, x0, done
loop:
    fld.w f1, 0(x12)
    fst.w f1, 0(x13)
    addi x12, x12, 4
    addi x13, x13, 4
    addi x10, x10, -1
    bne x10, x0, loop
done:
    halt
"
                ),
            ),
        }
    }

    fn setup(&self, emu: &mut Emulator) {
        emu.mem.write_f32_slice(self.src(), &gen_f32(0xA, self.n));
    }

    fn check(&self, emu: &Emulator) -> Result<(), String> {
        check_f32(emu, "y", self.dst(), &gen_f32(0xA, self.n), 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_checked;

    #[test]
    fn all_flavors_correct_vector_multiple() {
        let b = Memcpy::new(64);
        for f in Flavor::all() {
            run_checked(&b, f).unwrap();
        }
    }

    #[test]
    fn all_flavors_correct_ragged_tail() {
        let b = Memcpy::new(37);
        for f in Flavor::all() {
            run_checked(&b, f).unwrap();
        }
    }

    #[test]
    fn uve_commits_far_fewer_instructions() {
        let b = Memcpy::new(256);
        let uve = run_checked(&b, Flavor::Uve).unwrap();
        let sve = run_checked(&b, Flavor::Sve).unwrap();
        let scalar = run_checked(&b, Flavor::Scalar).unwrap();
        assert!(uve.result.committed * 2 < sve.result.committed);
        assert!(uve.result.committed * 10 < scalar.result.committed);
    }

    #[test]
    fn stream_trace_shape() {
        let b = Memcpy::new(64);
        let uve = run_checked(&b, Flavor::Uve).unwrap();
        let t = &uve.result.trace;
        assert_eq!(t.streams.len(), 2);
        assert_eq!(t.streams[0].elements(), 64);
        assert_eq!(t.streams[1].elements(), 64);
    }
}
