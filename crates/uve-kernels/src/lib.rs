//! The 19 evaluation kernels of the UVE paper (Fig. 8) — plus two
//! follow-on workload families ([`dsp`] and [`sparse`]) authored as
//! checked-in UVE assembly text — each in four flavours:
//!
//! - [`Flavor::Uve`]: hand-coded UVE streaming assembly (512-bit vectors),
//! - [`Flavor::Sve`]: SVE-like predicated vector-length-agnostic assembly
//!   (512-bit vectors) — or scalar code for the four kernels the paper's
//!   ARM compiler failed to vectorize,
//! - [`Flavor::Neon`]: NEON-like fixed-width vectorization (128-bit vectors
//!   plus scalar loop tails) — or scalar code under the same rule,
//! - [`Flavor::Scalar`]: plain scalar RISC code.
//!
//! Every kernel ships a deterministic workload generator ([`Benchmark::setup`])
//! and a correctness oracle ([`Benchmark::check`]) comparing simulated memory
//! against a Rust reference implementation.
//!
//! # Example
//!
//! ```rust
//! use uve_kernels::{saxpy::Saxpy, run_checked, Flavor};
//!
//! let bench = Saxpy::new(100);
//! let run = run_checked(&bench, Flavor::Uve).expect("correct");
//! assert!(run.result.committed > 0);
//! ```

#![warn(missing_docs)]

pub mod common;
pub mod covariance;
pub mod dsp;
pub mod floyd;
pub mod gemm;
pub mod gemver;
pub mod haccmk;
pub mod irsmk;
pub mod jacobi;
pub mod knn;
pub mod mamr;
pub mod memcpy;
pub mod mvt;
pub mod saxpy;
pub mod seidel;
pub mod sparse;
pub mod stream;
pub mod threemm;
pub mod trisolv;

use uve_core::{EmuConfig, Emulator, RunResult};
use uve_isa::Program;
use uve_mem::Memory;

/// Code flavour of a kernel implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flavor {
    /// UVE streaming code (512-bit vectors).
    Uve,
    /// SVE-like predicated vector code (512-bit vectors); falls back to
    /// scalar for kernels the paper's compiler could not vectorize.
    Sve,
    /// NEON-like fixed 128-bit vector code with scalar tails; same scalar
    /// fallback rule.
    Neon,
    /// Plain scalar code.
    Scalar,
}

impl Flavor {
    /// Vector length in bytes this flavour runs with.
    pub fn vlen_bytes(self) -> usize {
        match self {
            Flavor::Neon => 16,
            _ => 64,
        }
    }

    /// All four flavours.
    pub fn all() -> [Flavor; 4] {
        [Flavor::Uve, Flavor::Sve, Flavor::Neon, Flavor::Scalar]
    }
}

impl std::fmt::Display for Flavor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Flavor::Uve => "UVE",
            Flavor::Sve => "SVE",
            Flavor::Neon => "NEON",
            Flavor::Scalar => "scalar",
        })
    }
}

/// One evaluation kernel: programs in all flavours, workload setup, and a
/// correctness oracle.
///
/// `Send + Sync` is a supertrait so kernels can be sharded across the
/// worker threads of the parallel evaluation runner; implementations are
/// plain parameter structs, so this costs nothing.
pub trait Benchmark: Send + Sync {
    /// Short kernel name (paper Fig. 8 naming).
    fn name(&self) -> &'static str;

    /// Application domain label from the paper's table.
    fn domain(&self) -> &'static str {
        "misc"
    }

    /// `false` for the kernels the paper's ARM compiler failed to vectorize
    /// (Seidel-2D, MAMR variants, Covariance, Floyd-Warshall): their
    /// SVE/NEON flavours are scalar code.
    fn sve_vectorized(&self) -> bool {
        true
    }

    /// Number of concurrent streams the UVE flavour configures (the paper's
    /// `#Streams` column; for multi-phase kernels, the per-phase maximum).
    fn streams(&self) -> usize {
        0
    }

    /// Memory-access pattern label (the paper's rightmost column).
    fn pattern(&self) -> &'static str {
        "1D"
    }

    /// The program implementing this kernel in the given flavour.
    fn program(&self, flavor: Flavor) -> Program;

    /// Writes the input arrays and scalar parameters into the emulator.
    fn setup(&self, emu: &mut Emulator);

    /// Verifies the results in simulated memory against the reference
    /// implementation.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    fn check(&self, emu: &Emulator) -> Result<(), String>;
}

/// A completed kernel execution.
#[derive(Debug)]
pub struct KernelRun {
    /// The emulator after the run (memory holds results).
    pub emulator: Emulator,
    /// Committed-instruction count and dynamic trace.
    pub result: RunResult,
}

/// Runs `bench` in `flavor`, returning the emulator and trace.
///
/// # Errors
///
/// Propagates emulation failures (stream misuse, runaway loops).
pub fn run(bench: &dyn Benchmark, flavor: Flavor) -> Result<KernelRun, uve_core::EmuError> {
    let cfg = EmuConfig {
        vlen_bytes: flavor.vlen_bytes(),
        ..EmuConfig::default()
    };
    let mut emulator = Emulator::new(cfg, Memory::new());
    bench.setup(&mut emulator);
    let program = bench.program(flavor);
    let result = emulator.run(&program)?;
    Ok(KernelRun { emulator, result })
}

/// Runs `bench` in `flavor` and verifies the result.
///
/// # Errors
///
/// Returns emulation errors or correctness mismatches as strings.
pub fn run_checked(bench: &dyn Benchmark, flavor: Flavor) -> Result<KernelRun, String> {
    let run = run(bench, flavor).map_err(|e| format!("{}/{flavor}: {e}", bench.name()))?;
    bench
        .check(&run.emulator)
        .map_err(|e| format!("{}/{flavor}: {e}", bench.name()))?;
    Ok(run)
}

/// The paper's benchmark list (Fig. 8, rows A–S) at the default evaluation
/// sizes.
pub fn evaluation_suite() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(memcpy::Memcpy::new(65536)),
        Box::new(stream::Stream::new(49152)),
        Box::new(saxpy::Saxpy::new(65536)),
        Box::new(gemm::Gemm::new(32, 32, 32)),
        Box::new(threemm::ThreeMm::new(32)),
        Box::new(mvt::Mvt::new(128)),
        Box::new(gemver::Gemver::new(128)),
        Box::new(trisolv::Trisolv::new(128)),
        Box::new(jacobi::Jacobi1d::new(16384, 4)),
        Box::new(jacobi::Jacobi2d::new(64, 2)),
        Box::new(irsmk::Irsmk::new(4096)),
        Box::new(haccmk::Haccmk::new(128)),
        Box::new(knn::Knn::new(1024, 16)),
        Box::new(covariance::Covariance::new(32, 48)),
        Box::new(mamr::Mamr::full(128)),
        Box::new(mamr::Mamr::diag(128)),
        Box::new(mamr::Mamr::indirect(128)),
        Box::new(seidel::Seidel2d::new(48, 2)),
        Box::new(floyd::FloydWarshall::new(40)),
    ]
}

/// The DSP/baseband workload family (FIR, ChanEst, FFT-Stage) at its
/// default evaluation sizes.
pub fn dsp_suite() -> Vec<Box<dyn Benchmark>> {
    dsp::suite()
}

/// The sparse/indirect workload family (SpMV, GatherReduce, Histogram) at
/// its default evaluation sizes.
pub fn sparse_suite() -> Vec<Box<dyn Benchmark>> {
    sparse::suite()
}

/// Every kernel the crate ships: the paper's 19-row evaluation suite plus
/// the [`dsp`] and [`sparse`] families.
///
/// The Fig. 8 reproduction artefacts (and their drift gates) stay pinned to
/// [`evaluation_suite`]; new families only extend this roster.
pub fn extended_suite() -> Vec<Box<dyn Benchmark>> {
    let mut suite = evaluation_suite();
    suite.extend(dsp_suite());
    suite.extend(sparse_suite());
    suite
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(suite: &[Box<dyn Benchmark>]) -> Vec<&str> {
        suite.iter().map(|b| b.name()).collect()
    }

    #[test]
    fn family_registries_are_complete() {
        let (eval_suite, dsp_s, sparse_s, all_suite) = (
            evaluation_suite(),
            dsp_suite(),
            sparse_suite(),
            extended_suite(),
        );
        let eval = names(&eval_suite);
        assert_eq!(eval.len(), 19, "Fig. 8 suite stays pinned at 19 rows");
        assert!(eval.contains(&"SAXPY"));
        assert!(eval.contains(&"Floyd-Warshall"));

        let dsp = names(&dsp_s);
        for k in ["FIR", "ChanEst", "FFT-Stage"] {
            assert!(dsp.contains(&k), "dsp family missing {k}");
        }

        let sparse = names(&sparse_s);
        for k in ["SpMV", "GatherReduce", "Histogram"] {
            assert!(sparse.contains(&k), "sparse family missing {k}");
        }

        let mut all = names(&all_suite);
        assert_eq!(all.len(), eval.len() + dsp.len() + sparse.len());
        all.sort_unstable();
        all.dedup();
        assert_eq!(
            all.len(),
            eval.len() + dsp.len() + sparse.len(),
            "kernel names must be unique across families"
        );
    }

    #[test]
    fn every_kernel_declares_its_table_row() {
        for b in extended_suite() {
            assert!(b.streams() >= 2, "{}", b.name());
            assert!(!b.pattern().is_empty(), "{}", b.name());
            assert_ne!(b.domain(), "misc", "{}", b.name());
        }
    }

    #[test]
    fn flavors() {
        assert_eq!(Flavor::Neon.vlen_bytes(), 16);
        assert_eq!(Flavor::Uve.vlen_bytes(), 64);
        assert_eq!(Flavor::Uve.to_string(), "UVE");
        assert_eq!(Flavor::all().len(), 4);
    }
}
