//! Benchmark B — **STREAM** (memory domain): the four McCalpin kernels
//! executed back to back, as in the paper's table (4 kernels):
//!
//! 1. copy:  `c = a`
//! 2. scale: `b = s*c`
//! 3. add:   `c = a + b`
//! 4. triad: `a = b + s*c`
//!
//! Exercises stream-register reuse: each section reconfigures `u0`–`u2`,
//! which the microarchitecture supports through stream renaming.

use crate::common::{asm, check_f32, gen_f32, region, TOL};
use crate::{Benchmark, Flavor};
use std::fmt::Write as _;
use uve_core::Emulator;
use uve_isa::{FReg, Program};

/// The STREAM kernel (copy/scale/add/triad).
#[derive(Debug, Clone, Copy)]
pub struct Stream {
    n: usize,
}

const S: f32 = 3.0;

#[derive(Clone, Copy)]
enum Op {
    Copy,
    Scale,
    Add,
    Triad,
}

impl Stream {
    /// Operates on three arrays of `n` f32 elements.
    pub fn new(n: usize) -> Self {
        Self { n }
    }

    fn a(&self) -> u64 {
        region(0)
    }

    fn b(&self) -> u64 {
        region(1)
    }

    fn c(&self) -> u64 {
        region(2)
    }

    fn reference(&self) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut a = gen_f32(0xB0, self.n);
        let mut b = gen_f32(0xB1, self.n);
        let mut c = gen_f32(0xB2, self.n);
        c[..self.n].copy_from_slice(&a[..self.n]);
        for i in 0..self.n {
            b[i] = S * c[i];
        }
        for i in 0..self.n {
            c[i] = a[i] + b[i];
        }
        for i in 0..self.n {
            a[i] = b[i] + S * c[i];
        }
        (a, b, c)
    }

    /// `(in1, in2, out)` addresses per section.
    fn section(&self, op: Op) -> (u64, u64, u64) {
        match op {
            Op::Copy => (self.a(), 0, self.c()),
            Op::Scale => (self.c(), 0, self.b()),
            Op::Add => (self.a(), self.b(), self.c()),
            Op::Triad => (self.c(), self.b(), self.a()),
        }
    }

    fn uve_section(&self, op: Op, tag: usize) -> String {
        let (in1, in2, out) = self.section(op);
        let n = self.n;
        let mut t = String::new();
        let _ = writeln!(t, "    li x10, {n}");
        let _ = writeln!(t, "    li x11, {in1}");
        let _ = writeln!(t, "    li x12, {out}");
        let _ = writeln!(t, "    li x13, 1");
        let _ = writeln!(t, "    ss.ld.w u0, x11, x10, x13");
        let body = match op {
            Op::Copy => {
                let _ = writeln!(t, "    ss.st.w u1, x12, x10, x13");
                "    so.v.mv u1, u0"
            }
            Op::Scale => {
                let _ = writeln!(t, "    ss.st.w u1, x12, x10, x13");
                "    so.a.mul.vs.w.fp u1, u0, f10, p0"
            }
            Op::Add => {
                let _ = writeln!(t, "    li x14, {in2}");
                let _ = writeln!(t, "    ss.ld.w u1, x14, x10, x13");
                let _ = writeln!(t, "    ss.st.w u2, x12, x10, x13");
                "    so.a.add.w.fp u2, u0, u1, p0"
            }
            Op::Triad => {
                let _ = writeln!(t, "    li x14, {in2}");
                let _ = writeln!(t, "    ss.ld.w u1, x14, x10, x13");
                let _ = writeln!(t, "    ss.st.w u2, x12, x10, x13");
                // a = b + s*c : u0 = c, u1 = b
                "    so.a.mul.vs.w.fp u3, u0, f10, p0\n    so.a.add.w.fp u2, u3, u1, p0"
            }
        };
        let _ = writeln!(t, "loop{tag}:");
        let _ = writeln!(t, "{body}");
        let _ = writeln!(t, "    so.b.nend u0, loop{tag}");
        t
    }

    fn vec_section(&self, op: Op, tag: usize, neon: bool) -> String {
        let (in1, in2, out) = self.section(op);
        let n = self.n;
        let body = match op {
            Op::Copy => "    vl1.w u1, x12, x10, {p}\n    vs1.w u1, x13, x10, {p}",
            Op::Scale => {
                "    vl1.w u1, x12, x10, {p}\n    so.a.mul.vs.w.fp u2, u1, f10, {p}\n    vs1.w u2, x13, x10, {p}"
            }
            Op::Add => {
                "    vl1.w u1, x12, x10, {p}\n    vl1.w u2, x14, x10, {p}\n    so.a.add.w.fp u3, u1, u2, {p}\n    vs1.w u3, x13, x10, {p}"
            }
            Op::Triad => {
                "    vl1.w u1, x12, x10, {p}\n    vl1.w u2, x14, x10, {p}\n    so.a.mul.vs.w.fp u3, u1, f10, {p}\n    so.a.add.w.fp u4, u3, u2, {p}\n    vs1.w u4, x13, x10, {p}"
            }
        };
        let scalar_tail = match op {
            Op::Copy => "    fld.w f1, 0(x8)\n    fst.w f1, 0(x9)",
            Op::Scale => "    fld.w f1, 0(x8)\n    fmul.w f1, f1, f10\n    fst.w f1, 0(x9)",
            Op::Add => {
                "    fld.w f1, 0(x8)\n    fld.w f2, 0(x7)\n    fadd.w f1, f1, f2\n    fst.w f1, 0(x9)"
            }
            Op::Triad => {
                "    fld.w f1, 0(x8)\n    fld.w f2, 0(x7)\n    fmadd.w f1, f1, f10, f2\n    fst.w f1, 0(x9)"
            }
        };
        let mut t = String::new();
        let _ = writeln!(t, "    li x10, 0");
        let _ = writeln!(t, "    li x11, {n}");
        let _ = writeln!(t, "    li x12, {in1}");
        let _ = writeln!(t, "    li x13, {out}");
        let _ = writeln!(t, "    li x14, {in2}");
        if neon {
            let _ = writeln!(t, "    cntvl.w x5");
            let _ = writeln!(t, "    div x6, x11, x5");
            let _ = writeln!(t, "    mul x6, x6, x5");
            let _ = writeln!(t, "    beq x6, x0, tailc{tag}");
            let _ = writeln!(t, "loop{tag}:");
            let _ = writeln!(t, "{}", body.replace("{p}", "p0"));
            let _ = writeln!(t, "    incvl.w x10");
            let _ = writeln!(t, "    blt x10, x6, loop{tag}");
            let _ = writeln!(t, "tailc{tag}:");
            let _ = writeln!(t, "    bge x10, x11, done{tag}");
            let _ = writeln!(t, "tail{tag}:");
            let _ = writeln!(t, "    slli x2, x10, 2");
            let _ = writeln!(t, "    add x8, x12, x2");
            let _ = writeln!(t, "    add x9, x13, x2");
            let _ = writeln!(t, "    add x7, x14, x2");
            let _ = writeln!(t, "{scalar_tail}");
            let _ = writeln!(t, "    addi x10, x10, 1");
            let _ = writeln!(t, "    blt x10, x11, tail{tag}");
            let _ = writeln!(t, "done{tag}:");
        } else {
            let _ = writeln!(t, "    whilelt.w p1, x10, x11");
            let _ = writeln!(t, "loop{tag}:");
            let _ = writeln!(t, "{}", body.replace("{p}", "p1"));
            let _ = writeln!(t, "    incvl.w x10");
            let _ = writeln!(t, "    whilelt.w p1, x10, x11");
            let _ = writeln!(t, "    so.b.pfirst p1, loop{tag}");
        }
        t
    }

    fn scalar_section(&self, op: Op, tag: usize) -> String {
        let (in1, in2, out) = self.section(op);
        let n = self.n;
        let body = match op {
            Op::Copy => "    fld.w f1, 0(x12)\n    fst.w f1, 0(x13)",
            Op::Scale => "    fld.w f1, 0(x12)\n    fmul.w f1, f1, f10\n    fst.w f1, 0(x13)",
            Op::Add => {
                "    fld.w f1, 0(x12)\n    fld.w f2, 0(x14)\n    fadd.w f1, f1, f2\n    fst.w f1, 0(x13)"
            }
            Op::Triad => {
                "    fld.w f1, 0(x12)\n    fld.w f2, 0(x14)\n    fmadd.w f1, f1, f10, f2\n    fst.w f1, 0(x13)"
            }
        };
        format!(
            "
    li x10, {n}
    li x12, {in1}
    li x13, {out}
    li x14, {in2}
    beq x10, x0, done{tag}
loop{tag}:
{body}
    addi x12, x12, 4
    addi x13, x13, 4
    addi x14, x14, 4
    addi x10, x10, -1
    bne x10, x0, loop{tag}
done{tag}:
"
        )
    }
}

impl Benchmark for Stream {
    fn streams(&self) -> usize {
        3
    }

    fn pattern(&self) -> &'static str {
        "1D"
    }

    fn name(&self) -> &'static str {
        "STREAM"
    }

    fn domain(&self) -> &'static str {
        "memory"
    }

    fn program(&self, flavor: Flavor) -> Program {
        let ops = [Op::Copy, Op::Scale, Op::Add, Op::Triad];
        let mut text = String::new();
        for (i, op) in ops.into_iter().enumerate() {
            let section = match flavor {
                Flavor::Uve => self.uve_section(op, i),
                Flavor::Sve => self.vec_section(op, i, false),
                Flavor::Neon => self.vec_section(op, i, true),
                Flavor::Scalar => self.scalar_section(op, i),
            };
            text.push_str(&section);
        }
        text.push_str("    halt\n");
        asm("stream", &text)
    }

    fn setup(&self, emu: &mut Emulator) {
        emu.set_f(FReg::FA0, f64::from(S));
        emu.mem.write_f32_slice(self.a(), &gen_f32(0xB0, self.n));
        emu.mem.write_f32_slice(self.b(), &gen_f32(0xB1, self.n));
        emu.mem.write_f32_slice(self.c(), &gen_f32(0xB2, self.n));
    }

    fn check(&self, emu: &Emulator) -> Result<(), String> {
        let (a, b, c) = self.reference();
        check_f32(emu, "a", self.a(), &a, TOL)?;
        check_f32(emu, "b", self.b(), &b, TOL)?;
        check_f32(emu, "c", self.c(), &c, TOL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_checked;

    #[test]
    fn all_flavors_correct() {
        for n in [64usize, 45] {
            let b = Stream::new(n);
            for f in Flavor::all() {
                run_checked(&b, f).unwrap();
            }
        }
    }

    #[test]
    fn uve_uses_ten_stream_instances() {
        // copy 2 + scale 2 + add 3 + triad 3.
        let b = Stream::new(64);
        let uve = run_checked(&b, Flavor::Uve).unwrap();
        assert_eq!(uve.result.trace.streams.len(), 10);
    }
}
