//! Shared helpers: memory layout, deterministic data generation, assembly
//! convenience, and tolerant float comparison.

use uve_core::Emulator;
use uve_isa::{assemble, assemble_units, Program};

/// A seeded SplitMix64 PRNG (Steele, Lea & Flood, *Fast Splittable
/// Pseudorandom Number Generators*, OOPSLA 2014) — the workload generator.
///
/// Self-contained so the crate builds with zero registry access; the same
/// seeds as the previous `rand::SmallRng` generators are kept, but the
/// generated input *values* differ (the correctness oracles recompute their
/// references from the same inputs, so every kernel still checks).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f32` in `[0, 1)` (24 high bits → exact dyadic rationals).
    pub fn next_f32(&mut self) -> f32 {
        const SCALE: f32 = 1.0 / (1u64 << 24) as f32;
        (self.next_u64() >> 40) as f32 * SCALE
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform `u64` below `bound` (modulo method; the negligible bias is
    /// irrelevant for test-input generation).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }
}

/// Base address of array region `i`; regions are 16 MiB apart, far larger
/// than any evaluation working set.
pub const fn region(i: usize) -> u64 {
    0x0010_0000 + (i as u64) * 0x0100_0000
}

/// Assembles `text`, panicking with a readable message on failure (kernel
/// programs are compile-time-fixed strings, so assembly errors are bugs).
pub fn asm(name: &'static str, text: &str) -> Program {
    match assemble(name, text) {
        Ok(p) => p,
        Err(e) => panic!("kernel `{name}` failed to assemble: {e}\n{text}"),
    }
}

/// Assembles a multi-unit program (entry unit first), panicking with a
/// readable message on failure. The dsp/sparse families author their kernel
/// bodies as checked-in `.uve` text that `.include`s a generated `.const`
/// parameter unit; this is their registration entry point.
pub fn asm_units(name: &'static str, units: &[(&str, &str)]) -> Program {
    match assemble_units(name, units) {
        Ok(p) => p,
        Err(e) => {
            let entry = units.first().map(|(_, t)| *t).unwrap_or("");
            panic!("kernel `{name}` failed to assemble: {e}\n{entry}")
        }
    }
}

/// Deterministic `f32` test data in `[-1, 1)`.
pub fn gen_f32(seed: u64, n: usize) -> Vec<f32> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.range_f32(-1.0, 1.0)).collect()
}

/// Deterministic positive `f32` test data in `[lo, hi)`.
pub fn gen_f32_range(seed: u64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.range_f32(lo, hi)).collect()
}

/// Deterministic `i32` index data in `[0, bound)`.
pub fn gen_indices(seed: u64, n: usize, bound: i32) -> Vec<i32> {
    assert!(bound > 0, "index bound must be positive");
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.below(bound as u64) as i32).collect()
}

/// Compares an `f32` array in simulated memory against a reference,
/// tolerating reassociation differences from vector reductions.
///
/// # Errors
///
/// Reports the first element whose relative error exceeds `tol`.
pub fn check_f32(
    emu: &Emulator,
    what: &str,
    addr: u64,
    expect: &[f32],
    tol: f32,
) -> Result<(), String> {
    let got = emu.mem.read_f32_slice(addr, expect.len());
    for (i, (g, e)) in got.iter().zip(expect).enumerate() {
        let scale = e.abs().max(1.0);
        if (g - e).abs() > tol * scale || g.is_nan() != e.is_nan() {
            return Err(format!("{what}[{i}]: got {g}, expected {e} (tol {tol})"));
        }
    }
    Ok(())
}

/// Compares an `i32` array in simulated memory against a reference.
///
/// # Errors
///
/// Reports the first mismatching element.
pub fn check_i32(emu: &Emulator, what: &str, addr: u64, expect: &[i32]) -> Result<(), String> {
    let got = emu.mem.read_i32_slice(addr, expect.len());
    for (i, (g, e)) in got.iter().zip(expect).enumerate() {
        if g != e {
            return Err(format!("{what}[{i}]: got {g}, expected {e}"));
        }
    }
    Ok(())
}

/// Default relative tolerance for float checks.
pub const TOL: f32 = 2e-3;

#[cfg(test)]
mod tests {
    use super::*;
    use uve_core::EmuConfig;
    use uve_mem::Memory;

    #[test]
    fn regions_are_disjoint_and_aligned() {
        assert!(region(1) - region(0) >= 0x0100_0000);
        assert_eq!(region(3) % 64, 0);
    }

    #[test]
    fn splitmix64_reference_vector() {
        // Known-answer values from the reference SplitMix64 implementation
        // (seed 0), as used to seed the xoshiro family.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn splitmix64_ranges_respect_bounds() {
        let mut r = SplitMix64::new(42);
        for _ in 0..1000 {
            let f = r.range_f32(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn gen_is_deterministic() {
        assert_eq!(gen_f32(7, 16), gen_f32(7, 16));
        assert_ne!(gen_f32(7, 16), gen_f32(8, 16));
        let idx = gen_indices(1, 100, 10);
        assert!(idx.iter().all(|&i| (0..10).contains(&i)));
    }

    #[test]
    fn check_f32_reports_mismatch() {
        let mut emu = Emulator::new(EmuConfig::default(), Memory::new());
        emu.mem.write_f32_slice(0x1000, &[1.0, 2.0]);
        assert!(check_f32(&emu, "t", 0x1000, &[1.0, 2.0], 1e-6).is_ok());
        let err = check_f32(&emu, "t", 0x1000, &[1.0, 3.0], 1e-6).unwrap_err();
        assert!(err.contains("t[1]"));
    }

    #[test]
    #[should_panic(expected = "failed to assemble")]
    fn asm_panics_on_bad_text() {
        asm("bad", "not_an_instruction x0");
    }
}
