//! Shared helpers: memory layout, deterministic data generation, assembly
//! convenience, and tolerant float comparison.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use uve_core::Emulator;
use uve_isa::{assemble, Program};

/// Base address of array region `i`; regions are 16 MiB apart, far larger
/// than any evaluation working set.
pub const fn region(i: usize) -> u64 {
    0x0010_0000 + (i as u64) * 0x0100_0000
}

/// Assembles `text`, panicking with a readable message on failure (kernel
/// programs are compile-time-fixed strings, so assembly errors are bugs).
pub fn asm(name: &'static str, text: &str) -> Program {
    match assemble(name, text) {
        Ok(p) => p,
        Err(e) => panic!("kernel `{name}` failed to assemble: {e}\n{text}"),
    }
}

/// Deterministic `f32` test data in `[-1, 1)`.
pub fn gen_f32(seed: u64, n: usize) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// Deterministic positive `f32` test data in `[lo, hi)`.
pub fn gen_f32_range(seed: u64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Deterministic `i32` index data in `[0, bound)`.
pub fn gen_indices(seed: u64, n: usize, bound: i32) -> Vec<i32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..bound)).collect()
}

/// Compares an `f32` array in simulated memory against a reference,
/// tolerating reassociation differences from vector reductions.
///
/// # Errors
///
/// Reports the first element whose relative error exceeds `tol`.
pub fn check_f32(
    emu: &Emulator,
    what: &str,
    addr: u64,
    expect: &[f32],
    tol: f32,
) -> Result<(), String> {
    let got = emu.mem.read_f32_slice(addr, expect.len());
    for (i, (g, e)) in got.iter().zip(expect).enumerate() {
        let scale = e.abs().max(1.0);
        if (g - e).abs() > tol * scale || g.is_nan() != e.is_nan() {
            return Err(format!(
                "{what}[{i}]: got {g}, expected {e} (tol {tol})"
            ));
        }
    }
    Ok(())
}

/// Compares an `i32` array in simulated memory against a reference.
///
/// # Errors
///
/// Reports the first mismatching element.
pub fn check_i32(emu: &Emulator, what: &str, addr: u64, expect: &[i32]) -> Result<(), String> {
    let got = emu.mem.read_i32_slice(addr, expect.len());
    for (i, (g, e)) in got.iter().zip(expect).enumerate() {
        if g != e {
            return Err(format!("{what}[{i}]: got {g}, expected {e}"));
        }
    }
    Ok(())
}

/// Default relative tolerance for float checks.
pub const TOL: f32 = 2e-3;

#[cfg(test)]
mod tests {
    use super::*;
    use uve_core::EmuConfig;
    use uve_mem::Memory;

    #[test]
    fn regions_are_disjoint_and_aligned() {
        assert!(region(1) - region(0) >= 0x0100_0000);
        assert_eq!(region(3) % 64, 0);
    }

    #[test]
    fn gen_is_deterministic() {
        assert_eq!(gen_f32(7, 16), gen_f32(7, 16));
        assert_ne!(gen_f32(7, 16), gen_f32(8, 16));
        let idx = gen_indices(1, 100, 10);
        assert!(idx.iter().all(|&i| (0..10).contains(&i)));
    }

    #[test]
    fn check_f32_reports_mismatch() {
        let mut emu = Emulator::new(EmuConfig::default(), Memory::new());
        emu.mem.write_f32_slice(0x1000, &[1.0, 2.0]);
        assert!(check_f32(&emu, "t", 0x1000, &[1.0, 2.0], 1e-6).is_ok());
        let err = check_f32(&emu, "t", 0x1000, &[1.0, 3.0], 1e-6).unwrap_err();
        assert!(err.contains("t[1]"));
    }

    #[test]
    #[should_panic(expected = "failed to assemble")]
    fn asm_panics_on_bad_text() {
        asm("bad", "not_an_instruction x0");
    }
}
