//! Benchmark S — **Floyd-Warshall** (dynamic programming, Polybench):
//! all-pairs shortest paths, `D[i][j] = min(D[i][j], D[i][k] + D[k][j])`.
//!
//! Not vectorized by the paper's ARM compiler (scalar baselines). The UVE
//! flavour reconfigures its streams once per `k` step — the paper's
//! recommended idiom for deep loop nests — relying on the property that row
//! and column `k` are fixed points of step `k`, which makes the in-place
//! stream update safe.

use crate::common::{asm, check_f32, gen_f32_range, region, TOL};
use crate::{Benchmark, Flavor};
use std::fmt::Write as _;
use uve_core::Emulator;
use uve_isa::Program;

/// The Floyd-Warshall kernel.
#[derive(Debug, Clone, Copy)]
pub struct FloydWarshall {
    n: usize,
}

impl FloydWarshall {
    /// `n×n` distance matrix (f32 edge weights).
    pub fn new(n: usize) -> Self {
        Self { n }
    }

    fn d(&self) -> u64 {
        region(0)
    }

    fn input(&self) -> Vec<f32> {
        gen_f32_range(0x5F, self.n * self.n, 0.1, 10.0)
    }

    fn reference(&self) -> Vec<f32> {
        let n = self.n;
        let mut d = self.input();
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    let via = d[i * n + k] + d[k * n + j];
                    if via < d[i * n + j] {
                        d[i * n + j] = via;
                    }
                }
            }
        }
        d
    }

    fn uve_text(&self) -> String {
        let n = self.n;
        let d = self.d();
        let mut t = String::new();
        let _ = writeln!(t, "    li x10, {n}");
        let _ = writeln!(t, "    li x13, 1");
        let _ = writeln!(t, "    li x23, {d}");
        let _ = writeln!(t, "    li x14, 0            ; k");
        let _ = writeln!(t, "kstep:");
        // D in/out: full matrix, 2-D.
        let _ = writeln!(t, "    ss.ld.w.sta u0, x23, x10, x13");
        let _ = writeln!(t, "    ss.end u0, x0, x10, x10");
        let _ = writeln!(t, "    ss.st.w.sta u2, x23, x10, x13");
        let _ = writeln!(t, "    ss.end u2, x0, x10, x10");
        // Row k, re-read for every i.
        let _ = writeln!(t, "    mul x16, x14, x10");
        let _ = writeln!(t, "    slli x16, x16, 2");
        let _ = writeln!(t, "    add x16, x23, x16    ; &D[k][0]");
        let _ = writeln!(t, "    ss.ld.w.sta u1, x16, x10, x13");
        let _ = writeln!(t, "    ss.end u1, x0, x10, x0");
        // D[i][k] scalar pointer.
        let _ = writeln!(t, "    slli x17, x14, 2");
        let _ = writeln!(t, "    add x17, x23, x17    ; &D[0][k]");
        let _ = writeln!(t, "    slli x18, x10, 2     ; row stride");
        let _ = writeln!(t, "iloop:");
        let _ = writeln!(t, "    fld.w f1, 0(x17)");
        let _ = writeln!(t, "    add x17, x17, x18");
        let _ = writeln!(t, "jloop:");
        let _ = writeln!(t, "    so.a.add.vs.w.fp u4, u1, f1, p0");
        let _ = writeln!(t, "    so.a.min.w.fp u2, u0, u4, p0");
        let _ = writeln!(t, "    so.b.dim0.nend u0, jloop");
        let _ = writeln!(t, "    so.b.nend u0, iloop");
        let _ = writeln!(t, "    addi x14, x14, 1");
        let _ = writeln!(t, "    blt x14, x10, kstep");
        let _ = writeln!(t, "    halt");
        t
    }

    fn scalar_text(&self) -> String {
        let n = self.n;
        let d = self.d();
        format!(
            "
    li x10, {n}
    li x23, {d}
    slli x18, x10, 2
    li x14, 0            ; k
kstep:
    slli x17, x14, 2
    add x17, x23, x17    ; &D[0][k]
    mul x16, x14, x10
    slli x16, x16, 2
    add x16, x23, x16    ; &D[k][0]
    li x15, 0            ; i
    li x20, {d}          ; &D[i][0]
iloop:
    fld.w f1, 0(x17)     ; D[i][k]
    li x19, 0            ; j
    add x21, x16, x0     ; &D[k][j]
    add x22, x20, x0     ; &D[i][j]
jloop:
    fld.w f2, 0(x21)
    fadd.w f2, f2, f1
    fld.w f3, 0(x22)
    fmin.w f3, f3, f2
    fst.w f3, 0(x22)
    addi x21, x21, 4
    addi x22, x22, 4
    addi x19, x19, 1
    blt x19, x10, jloop
    add x17, x17, x18
    add x20, x20, x18
    addi x15, x15, 1
    blt x15, x10, iloop
    addi x14, x14, 1
    blt x14, x10, kstep
    halt
"
        )
    }
}

impl Benchmark for FloydWarshall {
    fn streams(&self) -> usize {
        3
    }

    fn pattern(&self) -> &'static str {
        "2D (per-k reconfig)"
    }

    fn name(&self) -> &'static str {
        "Floyd-Warshall"
    }

    fn domain(&self) -> &'static str {
        "dynamic programming"
    }

    fn sve_vectorized(&self) -> bool {
        false
    }

    fn program(&self, flavor: Flavor) -> Program {
        match flavor {
            Flavor::Uve => asm("floyd-uve", &self.uve_text()),
            _ => asm("floyd-scalar", &self.scalar_text()),
        }
    }

    fn setup(&self, emu: &mut Emulator) {
        emu.mem.write_f32_slice(self.d(), &self.input());
    }

    fn check(&self, emu: &Emulator) -> Result<(), String> {
        check_f32(emu, "D", self.d(), &self.reference(), TOL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_checked;

    #[test]
    fn all_flavors_correct() {
        for n in [8usize, 18] {
            let b = FloydWarshall::new(n);
            for f in Flavor::all() {
                run_checked(&b, f).unwrap();
            }
        }
    }

    #[test]
    fn uve_reconfigures_per_k() {
        let b = FloydWarshall::new(8);
        let r = run_checked(&b, Flavor::Uve).unwrap();
        assert_eq!(r.result.trace.streams.len(), 3 * 8);
    }
}
