//! Benchmark K — **IRSmk** (ASC Sequoia implicit radiation solver kernel):
//! a 27-point stencil-weighted accumulation,
//! `b[i] += Σ_t a_t[i] · x[i + off_t]` over the interior of a pseudo-3-D
//! grid.
//!
//! With 27 coefficient arrays, a single streamed pass would need 56
//! streams; the UVE flavour splits the sum into three passes of nine terms
//! (20 concurrent streams each), staying inside the 32-stream Stream Table.

use crate::common::{asm, check_f32, gen_f32, region, TOL};
use crate::{Benchmark, Flavor};
use std::fmt::Write as _;
use uve_core::Emulator;
use uve_isa::Program;

/// The IRSmk kernel.
#[derive(Debug, Clone, Copy)]
pub struct Irsmk {
    n: usize,
}

/// Pseudo-3-D geometry: plane and row strides of the flattened grid.
const PLANE: usize = 256;
const ROW: usize = 16;

impl Irsmk {
    /// Grid of `n` flattened elements (`n` > 2·(PLANE+ROW+1)).
    ///
    /// # Panics
    ///
    /// Panics when `n` is too small to have an interior.
    pub fn new(n: usize) -> Self {
        assert!(n > 2 * (PLANE + ROW + 1) + 1, "grid too small");
        Self { n }
    }

    fn offsets() -> Vec<i64> {
        let mut o = Vec::with_capacity(27);
        for p in [-(PLANE as i64), 0, PLANE as i64] {
            for r in [-(ROW as i64), 0, ROW as i64] {
                for c in [-1i64, 0, 1] {
                    o.push(p + r + c);
                }
            }
        }
        o
    }

    fn interior(&self) -> (usize, usize) {
        let lo = PLANE + ROW + 1;
        let hi = self.n - (PLANE + ROW + 1);
        (lo, hi - lo)
    }

    fn x(&self) -> u64 {
        region(0)
    }

    fn b(&self) -> u64 {
        region(1)
    }

    fn coeff(&self, t: usize) -> u64 {
        region(2 + t)
    }

    fn reference(&self) -> Vec<f32> {
        let (lo, m) = self.interior();
        let x = gen_f32(0x40, self.n);
        let mut b = gen_f32(0x41, m);
        for (t, off) in Self::offsets().into_iter().enumerate() {
            let a = gen_f32(0x42 + t as u64, m);
            for i in 0..m {
                b[i] += a[i] * x[(lo + i).wrapping_add_signed(off as isize)];
            }
        }
        b
    }

    fn pass_terms(pass: usize) -> std::ops::Range<usize> {
        (pass * 9)..(pass * 9 + 9)
    }

    fn uve_pass(&self, pass: usize) -> String {
        let (lo, m) = self.interior();
        let offsets = Self::offsets();
        let mut t = String::new();
        let _ = writeln!(t, "    li x10, {m}");
        let _ = writeln!(t, "    li x13, 1");
        for (slot, term) in Self::pass_terms(pass).enumerate() {
            let a = self.coeff(term);
            let xb = self.x() + 4 * (lo as u64).wrapping_add_signed(offsets[term] as isize as i64);
            let ua = slot; // u0..u8
            let ux = 9 + slot; // u9..u17
            let _ = writeln!(t, "    li x20, {a}");
            let _ = writeln!(t, "    ss.ld.w u{ua}, x20, x10, x13");
            let _ = writeln!(t, "    li x20, {xb}");
            let _ = writeln!(t, "    ss.ld.w u{ux}, x20, x10, x13");
        }
        let b = self.b();
        let _ = writeln!(t, "    li x20, {b}");
        let _ = writeln!(t, "    ss.ld.w u18, x20, x10, x13");
        let _ = writeln!(t, "    ss.st.w u19, x20, x10, x13");
        let _ = writeln!(t, "pass{pass}:");
        let _ = writeln!(t, "    so.v.mv u20, u18");
        for slot in 0..9 {
            let _ = writeln!(t, "    so.a.mac.w.fp u20, u{}, u{}, p0", slot, 9 + slot);
        }
        let _ = writeln!(t, "    so.v.mv u19, u20");
        let _ = writeln!(t, "    so.b.nend u18, pass{pass}");
        t
    }

    fn sve_pass(&self, pass: usize) -> String {
        let (lo, m) = self.interior();
        let offsets = Self::offsets();
        let mut t = String::new();
        let _ = writeln!(t, "    li x10, {m}");
        let b = self.b();
        let _ = writeln!(t, "    li x28, {b}");
        for (slot, term) in Self::pass_terms(pass).enumerate() {
            let a = self.coeff(term);
            let xb = self.x() + 4 * (lo as u64).wrapping_add_signed(offsets[term] as isize as i64);
            let _ = writeln!(t, "    li x{}, {a}", 14 + slot);
            let _ = writeln!(t, "    li x{}, {xb}", 23 - slot + slot); // placeholder replaced below
        }
        // x-stream bases go in x5..x9 and f-free registers are scarce;
        // recompute the x base per term from a single register instead.
        t.clear();
        let _ = writeln!(t, "    li x10, {m}");
        let _ = writeln!(t, "    li x28, {b}");
        let _ = writeln!(t, "    li x15, 0");
        let _ = writeln!(t, "    whilelt.w p1, x15, x10");
        let _ = writeln!(t, "vp{pass}:");
        let _ = writeln!(t, "    vl1.w u20, x28, x15, p1");
        for term in Self::pass_terms(pass) {
            let a = self.coeff(term);
            let xb = self.x() + 4 * (lo as u64).wrapping_add_signed(offsets[term] as isize as i64);
            let _ = writeln!(t, "    li x20, {a}");
            let _ = writeln!(t, "    vl1.w u1, x20, x15, p1");
            let _ = writeln!(t, "    li x20, {xb}");
            let _ = writeln!(t, "    vl1.w u2, x20, x15, p1");
            let _ = writeln!(t, "    so.a.mac.w.fp u20, u1, u2, p1");
        }
        let _ = writeln!(t, "    vs1.w u20, x28, x15, p1");
        let _ = writeln!(t, "    incvl.w x15");
        let _ = writeln!(t, "    whilelt.w p1, x15, x10");
        let _ = writeln!(t, "    so.b.pfirst p1, vp{pass}");
        t
    }

    fn scalar_pass(&self, pass: usize) -> String {
        let (lo, m) = self.interior();
        let offsets = Self::offsets();
        let mut t = String::new();
        let _ = writeln!(t, "    li x10, {m}");
        let _ = writeln!(t, "    li x28, {}", self.b());
        let _ = writeln!(t, "    li x15, 0");
        let _ = writeln!(t, "sp{pass}:");
        let _ = writeln!(t, "    slli x16, x15, 2");
        let _ = writeln!(t, "    add x17, x28, x16");
        let _ = writeln!(t, "    fld.w f1, 0(x17)");
        for term in Self::pass_terms(pass) {
            let a = self.coeff(term);
            let xb = self.x() + 4 * (lo as u64).wrapping_add_signed(offsets[term] as isize as i64);
            let _ = writeln!(t, "    li x20, {a}");
            let _ = writeln!(t, "    add x20, x20, x16");
            let _ = writeln!(t, "    fld.w f2, 0(x20)");
            let _ = writeln!(t, "    li x20, {xb}");
            let _ = writeln!(t, "    add x20, x20, x16");
            let _ = writeln!(t, "    fld.w f3, 0(x20)");
            let _ = writeln!(t, "    fmadd.w f1, f2, f3, f1");
        }
        let _ = writeln!(t, "    fst.w f1, 0(x17)");
        let _ = writeln!(t, "    addi x15, x15, 1");
        let _ = writeln!(t, "    blt x15, x10, sp{pass}");
        t
    }
}

impl Benchmark for Irsmk {
    fn streams(&self) -> usize {
        20
    }

    fn pattern(&self) -> &'static str {
        "3D"
    }

    fn name(&self) -> &'static str {
        "IRSmk"
    }

    fn domain(&self) -> &'static str {
        "stencil"
    }

    fn program(&self, flavor: Flavor) -> Program {
        let mut text = String::new();
        for pass in 0..3 {
            text.push_str(&match flavor {
                Flavor::Uve => self.uve_pass(pass),
                Flavor::Sve | Flavor::Neon => self.sve_pass(pass),
                Flavor::Scalar => self.scalar_pass(pass),
            });
        }
        text.push_str("    halt\n");
        asm("irsmk", &text)
    }

    fn setup(&self, emu: &mut Emulator) {
        let (_, m) = self.interior();
        emu.mem.write_f32_slice(self.x(), &gen_f32(0x40, self.n));
        emu.mem.write_f32_slice(self.b(), &gen_f32(0x41, m));
        for t in 0..27 {
            emu.mem
                .write_f32_slice(self.coeff(t), &gen_f32(0x42 + t as u64, m));
        }
    }

    fn check(&self, emu: &Emulator) -> Result<(), String> {
        check_f32(emu, "b", self.b(), &self.reference(), 10.0 * TOL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_checked;

    #[test]
    fn all_flavors_correct() {
        let b = Irsmk::new(640);
        for f in Flavor::all() {
            run_checked(&b, f).unwrap();
        }
    }

    #[test]
    fn uve_pass_stream_count_fits_table() {
        let b = Irsmk::new(640);
        let r = run_checked(&b, Flavor::Uve).unwrap();
        // 20 streams per pass × 3 passes.
        assert_eq!(r.result.trace.streams.len(), 60);
    }
}
