//! Benchmark D — **GEMM** (BLAS): `C = α·A·B + β·C` (Polybench).
//!
//! The UVE flavour uses a 4-D descriptor for `B` (`for i: for jb: for k:
//! B[k][jb..jb+vl]`) so the entire `i`/`jb`/`k` loop nest is controlled by
//! stream dimension flags — only the `A[i][k]` scalar element travels
//! through a conventional load, multiplied in with `so.a.mac.vs`.
//!
//! `NJ` must be a multiple of the 512-bit vector length (16 words); the
//! other dimensions are unconstrained.

use crate::common::{asm, check_f32, gen_f32, region, TOL};
use crate::{Benchmark, Flavor};
use uve_core::Emulator;
use uve_isa::{FReg, Program};

/// The GEMM kernel.
#[derive(Debug, Clone, Copy)]
pub struct Gemm {
    ni: usize,
    nj: usize,
    nk: usize,
}

const ALPHA: f32 = 1.5;
const BETA: f32 = 0.75;

impl Gemm {
    /// `C (ni×nj) = α · A (ni×nk) · B (nk×nj) + β · C`.
    ///
    /// # Panics
    ///
    /// Panics unless `nj` is a multiple of 16 (the 512-bit word lane
    /// count), required by the vector-aligned UVE descriptor.
    pub fn new(ni: usize, nj: usize, nk: usize) -> Self {
        assert!(nj.is_multiple_of(16), "nj must be a multiple of 16");
        Self { ni, nj, nk }
    }

    fn a(&self) -> u64 {
        region(0)
    }

    fn b(&self) -> u64 {
        region(1)
    }

    fn c(&self) -> u64 {
        region(2)
    }

    fn reference(&self) -> Vec<f32> {
        let (ni, nj, nk) = (self.ni, self.nj, self.nk);
        let a = gen_f32(0xD0, ni * nk);
        let b = gen_f32(0xD1, nk * nj);
        let mut c = gen_f32(0xD2, ni * nj);
        for i in 0..ni {
            for j in 0..nj {
                let mut acc = 0f32;
                for k in 0..nk {
                    acc += a[i * nk + k] * b[k * nj + j];
                }
                c[i * nj + j] = ALPHA * acc + BETA * c[i * nj + j];
            }
        }
        c
    }

    fn uve_text(&self) -> String {
        let (ni, nj, nk) = (self.ni, self.nj, self.nk);
        let (a, b, c) = (self.a(), self.b(), self.c());
        format!(
            "
    li x10, {ni}
    li x11, {nk}
    li x12, {nj}
    ss.getvl.w x5
    div x6, x12, x5            ; njb
    li x20, {a}
    li x21, {b}
    li x22, {c}
    li x13, 1
    ; B: for i: for jb: for k: B[k][jb..jb+vl]
    ss.ld.w.sta u0, x21, x5, x13
    ss.app u0, x0, x11, x12
    ss.app u0, x0, x6, x5
    ss.end u0, x0, x10, x0
    ; C in/out: linear ni*nj
    mul x7, x10, x12
    ss.ld.w u1, x22, x7, x13
    ss.st.w u2, x22, x7, x13
    li x14, 0                  ; i
iloop:
jloop:
    so.v.dup.w.fp u4, f31      ; acc = 0
    mul x16, x14, x11
    slli x16, x16, 2
    add x16, x20, x16          ; &A[i][0]
kloop:
    fld.w f1, 0(x16)
    addi x16, x16, 4
    so.a.mac.vs.w.fp u4, u0, f1, p0
    so.b.dim1.nend u0, kloop
    so.a.mul.vs.w.fp u5, u4, f10, p0
    so.a.mul.vs.w.fp u6, u1, f11, p0
    so.a.add.w.fp u2, u5, u6, p0
    so.b.dim2.nend u0, jloop
    addi x14, x14, 1
    so.b.nend u0, iloop
    halt
"
        )
    }

    fn sve_text(&self) -> String {
        let (ni, nj, nk) = (self.ni, self.nj, self.nk);
        let (a, b, c) = (self.a(), self.b(), self.c());
        format!(
            "
    li x10, {ni}
    li x11, {nk}
    li x12, {nj}
    li x20, {a}
    li x21, {b}
    li x22, {c}
    li x14, 0                  ; i
iloop:
    li x15, 0                  ; j
    whilelt.w p1, x15, x12
jloop:
    so.v.dup.w.fp u4, f31      ; acc = 0
    li x16, 0                  ; k
    mul x17, x14, x11
    slli x17, x17, 2
    add x17, x20, x17          ; &A[i][0]
kloop:
    fld.w f1, 0(x17)
    addi x17, x17, 4
    mul x18, x16, x12
    slli x18, x18, 2
    add x18, x21, x18          ; &B[k][0]
    vl1.w u1, x18, x15, p1
    so.a.mac.vs.w.fp u4, u1, f1, p1
    addi x16, x16, 1
    blt x16, x11, kloop
    mul x18, x14, x12
    slli x18, x18, 2
    add x18, x22, x18          ; &C[i][0]
    vl1.w u2, x18, x15, p1
    so.a.mul.vs.w.fp u5, u4, f10, p1
    so.a.mul.vs.w.fp u6, u2, f11, p1
    so.a.add.w.fp u7, u5, u6, p1
    vs1.w u7, x18, x15, p1
    incvl.w x15
    whilelt.w p1, x15, x12
    so.b.pfirst p1, jloop
    addi x14, x14, 1
    blt x14, x10, iloop
    halt
"
        )
    }

    fn scalar_text(&self) -> String {
        let (ni, nj, nk) = (self.ni, self.nj, self.nk);
        let (a, b, c) = (self.a(), self.b(), self.c());
        format!(
            "
    li x10, {ni}
    li x11, {nk}
    li x12, {nj}
    li x20, {a}
    li x21, {b}
    li x22, {c}
    li x14, 0                  ; i
iloop:
    li x15, 0                  ; j
jloop:
    fmv.w f2, f31              ; acc = 0
    li x16, 0                  ; k
    mul x17, x14, x11
    slli x17, x17, 2
    add x17, x20, x17          ; &A[i][k]
    slli x18, x15, 2
    add x18, x21, x18          ; &B[k][j]
    slli x19, x12, 2           ; row stride in bytes
kloop:
    fld.w f3, 0(x17)
    fld.w f4, 0(x18)
    fmadd.w f2, f3, f4, f2
    addi x17, x17, 4
    add x18, x18, x19
    addi x16, x16, 1
    blt x16, x11, kloop
    mul x9, x14, x12
    add x9, x9, x15
    slli x9, x9, 2
    add x9, x22, x9            ; &C[i][j]
    fld.w f5, 0(x9)
    fmul.w f2, f2, f10
    fmul.w f5, f5, f11
    fadd.w f2, f2, f5
    fst.w f2, 0(x9)
    addi x15, x15, 1
    blt x15, x12, jloop
    addi x14, x14, 1
    blt x14, x10, iloop
    halt
"
        )
    }
}

impl Benchmark for Gemm {
    fn streams(&self) -> usize {
        3
    }

    fn pattern(&self) -> &'static str {
        "4D"
    }

    fn name(&self) -> &'static str {
        "GEMM"
    }

    fn domain(&self) -> &'static str {
        "BLAS"
    }

    fn program(&self, flavor: Flavor) -> Program {
        match flavor {
            Flavor::Uve => asm("gemm-uve", &self.uve_text()),
            // NEON-like: same predicated structure at fixed 128-bit VL.
            Flavor::Sve | Flavor::Neon => asm("gemm-sve", &self.sve_text()),
            Flavor::Scalar => asm("gemm-scalar", &self.scalar_text()),
        }
    }

    fn setup(&self, emu: &mut Emulator) {
        emu.set_f(FReg::FA0, f64::from(ALPHA));
        emu.set_f(FReg::FA1, f64::from(BETA));
        emu.mem
            .write_f32_slice(self.a(), &gen_f32(0xD0, self.ni * self.nk));
        emu.mem
            .write_f32_slice(self.b(), &gen_f32(0xD1, self.nk * self.nj));
        emu.mem
            .write_f32_slice(self.c(), &gen_f32(0xD2, self.ni * self.nj));
    }

    fn check(&self, emu: &Emulator) -> Result<(), String> {
        check_f32(emu, "C", self.c(), &self.reference(), TOL)
    }
}

/// GEMM with the UVE loop nest unrolled over `factor` column blocks
/// (Fig. 8.E study).
///
/// Unrolling over `jb` keeps `factor` independent accumulator chains in
/// flight per `k` step, hiding the multiply-accumulate latency that a
/// single chain exposes — the optimization the paper leaves to manual
/// unrolling. The `B` stream descriptor gains an inner block dimension
/// (`for i: for jb_outer: for k: for jb_inner: B[k][jb…]`, 5-D).
#[derive(Debug, Clone, Copy)]
pub struct GemmUnrolled {
    base: Gemm,
    factor: usize,
}

impl GemmUnrolled {
    /// Creates an unrolled GEMM with `factor` ∈ {1, 2, 4, 8}; `nj` must
    /// contain a multiple of `factor` vector blocks.
    ///
    /// # Panics
    ///
    /// Panics on unsupported factors or when `nj / 16` is not a multiple
    /// of the factor.
    pub fn new(ni: usize, nj: usize, nk: usize, factor: usize) -> Self {
        assert!(matches!(factor, 1 | 2 | 4 | 8), "unsupported unroll factor");
        assert!(
            (nj / 16).is_multiple_of(factor),
            "nj must contain a multiple of `factor` vector blocks"
        );
        Self {
            base: Gemm::new(ni, nj, nk),
            factor,
        }
    }

    fn uve_unrolled_text(&self) -> String {
        let (ni, nj, nk) = (self.base.ni, self.base.nj, self.base.nk);
        let (a, b, c) = (self.base.a(), self.base.b(), self.base.c());
        let f = self.factor;
        let mut t = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(t, "    li x10, {ni}");
        let _ = writeln!(t, "    li x11, {nk}");
        let _ = writeln!(t, "    li x12, {nj}");
        let _ = writeln!(t, "    ss.getvl.w x5");
        let _ = writeln!(t, "    div x6, x12, x5        ; njb");
        let _ = writeln!(t, "    li x7, {f}");
        let _ = writeln!(t, "    div x8, x6, x7         ; outer block count");
        let _ = writeln!(t, "    mul x9, x5, x7         ; elements per outer block");
        let _ = writeln!(t, "    li x20, {a}");
        let _ = writeln!(t, "    li x21, {b}");
        let _ = writeln!(t, "    li x22, {c}");
        let _ = writeln!(t, "    li x13, 1");
        let _ = writeln!(t, "    ; B: for i: for jbo: for k: for jbi: B[k][jb..]");
        let _ = writeln!(t, "    ss.ld.w.sta u0, x21, x5, x13");
        let _ = writeln!(t, "    ss.app u0, x0, x7, x5");
        let _ = writeln!(t, "    ss.app u0, x0, x11, x12");
        let _ = writeln!(t, "    ss.app u0, x0, x8, x9");
        let _ = writeln!(t, "    ss.end u0, x0, x10, x0");
        let _ = writeln!(t, "    mul x4, x10, x12");
        let _ = writeln!(t, "    ss.ld.w u1, x22, x4, x13");
        let _ = writeln!(t, "    ss.st.w u2, x22, x4, x13");
        let _ = writeln!(t, "    li x14, 0              ; i");
        let _ = writeln!(t, "iloop:");
        let _ = writeln!(t, "jloop:");
        for u in 0..f {
            let _ = writeln!(t, "    so.v.dup.w.fp u{}, f31", 4 + u);
        }
        let _ = writeln!(t, "    mul x16, x14, x11");
        let _ = writeln!(t, "    slli x16, x16, 2");
        let _ = writeln!(t, "    add x16, x20, x16      ; &A[i][0]");
        let _ = writeln!(t, "kloop:");
        let _ = writeln!(t, "    fld.w f1, 0(x16)");
        let _ = writeln!(t, "    addi x16, x16, 4");
        for u in 0..f {
            let _ = writeln!(t, "    so.a.mac.vs.w.fp u{}, u0, f1, p0", 4 + u);
        }
        let _ = writeln!(t, "    so.b.dim2.nend u0, kloop");
        for u in 0..f {
            let _ = writeln!(t, "    so.a.mul.vs.w.fp u12, u{}, f10, p0", 4 + u);
            let _ = writeln!(t, "    so.a.mul.vs.w.fp u13, u1, f11, p0");
            let _ = writeln!(t, "    so.a.add.w.fp u2, u12, u13, p0");
        }
        let _ = writeln!(t, "    so.b.dim3.nend u0, jloop");
        let _ = writeln!(t, "    addi x14, x14, 1");
        let _ = writeln!(t, "    so.b.nend u0, iloop");
        let _ = writeln!(t, "    halt");
        t
    }
}

impl Benchmark for GemmUnrolled {
    fn name(&self) -> &'static str {
        "GEMM-unrolled"
    }

    fn domain(&self) -> &'static str {
        "BLAS"
    }

    fn program(&self, flavor: Flavor) -> Program {
        if flavor != Flavor::Uve || self.factor == 1 {
            return self.base.program(flavor);
        }
        asm("gemm-uve-unrolled", &self.uve_unrolled_text())
    }

    fn setup(&self, emu: &mut Emulator) {
        self.base.setup(emu);
    }

    fn check(&self, emu: &Emulator) -> Result<(), String> {
        self.base.check(emu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_checked;

    #[test]
    fn all_flavors_correct() {
        let b = Gemm::new(5, 16, 7);
        for f in Flavor::all() {
            run_checked(&b, f).unwrap();
        }
    }

    #[test]
    fn wide_matrix_multi_chunk_rows() {
        let b = Gemm::new(3, 48, 4);
        for f in Flavor::all() {
            run_checked(&b, f).unwrap();
        }
    }

    #[test]
    fn unrolled_variants_correct() {
        for factor in [1, 2, 4, 8] {
            let b = GemmUnrolled::new(4, 128, 8, factor);
            run_checked(&b, Flavor::Uve).unwrap();
        }
    }

    #[test]
    fn unrolling_reduces_instructions() {
        let plain = GemmUnrolled::new(4, 128, 8, 1);
        let unrolled = GemmUnrolled::new(4, 128, 8, 8);
        let a = run_checked(&plain, Flavor::Uve).unwrap();
        let b = run_checked(&unrolled, Flavor::Uve).unwrap();
        assert!(b.result.committed < a.result.committed);
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn rejects_ragged_nj() {
        let _ = Gemm::new(4, 10, 4);
    }
}
