//! **FFT-Stage** (wireless baseband): one radix-2 decimation-in-time
//! butterfly stage of an `n`-point split-complex FFT, out-of-place.
//!
//! For stage `s` (butterfly half-span `h = 2^s`, group span `m = 2h`,
//! `g = n/m` groups): `t = W·b`, `a' = a + t`, `b' = a − t`, with twiddles
//! `W[j] = e^{-2πi·j/m}`.
//!
//! The UVE flavour expresses the whole stage as ten 2-D streams (four
//! loads, two stride-0 twiddle replays, four stores) and a single
//! branch-per-chunk butterfly loop — the group structure lives entirely in
//! the stream descriptors.

use crate::common::{asm_units, check_f32, gen_f32, region, TOL};
use crate::{Benchmark, Flavor};
use uve_core::Emulator;
use uve_isa::Program;

/// Checked-in UVE assembly: ten streams, descriptor-encoded groups.
static UVE_TEXT: &str = "
    .include params
    li x10, GROUPS
    li x11, HALF
    li x12, SPAN
    li x13, 1
    li x20, XR
    ss.ld.w.sta u0, x20, x11, x13
    ss.end u0, x0, x10, x12
    li x20, XI
    ss.ld.w.sta u1, x20, x11, x13
    ss.end u1, x0, x10, x12
    li x20, XRB
    ss.ld.w.sta u2, x20, x11, x13
    ss.end u2, x0, x10, x12
    li x20, XIB
    ss.ld.w.sta u3, x20, x11, x13
    ss.end u3, x0, x10, x12
    li x20, TWR
    ss.ld.w.sta u4, x20, x11, x13
    ss.end u4, x0, x10, x0
    li x20, TWI
    ss.ld.w.sta u5, x20, x11, x13
    ss.end u5, x0, x10, x0
    li x20, YR
    ss.st.w.sta u6, x20, x11, x13
    ss.end u6, x0, x10, x12
    li x20, YI
    ss.st.w.sta u7, x20, x11, x13
    ss.end u7, x0, x10, x12
    li x20, YRB
    ss.st.w.sta u8, x20, x11, x13
    ss.end u8, x0, x10, x12
    li x20, YIB
    ss.st.w.sta u9, x20, x11, x13
    ss.end u9, x0, x10, x12
bfly:
    so.a.mvp.w.fp u10, u2, p0
    so.a.mvp.w.fp u11, u3, p0
    so.a.mvp.w.fp u12, u4, p0
    so.a.mvp.w.fp u13, u5, p0
    so.a.mvp.w.fp u14, u0, p0
    so.a.mvp.w.fp u15, u1, p0
    so.a.mul.w.fp u16, u12, u10, p0
    so.a.mul.w.fp u17, u13, u11, p0
    so.a.sub.w.fp u18, u16, u17, p0
    so.a.mul.w.fp u16, u12, u11, p0
    so.a.mul.w.fp u17, u13, u10, p0
    so.a.add.w.fp u19, u16, u17, p0
    so.a.add.w.fp u6, u14, u18, p0
    so.a.add.w.fp u7, u15, u19, p0
    so.a.sub.w.fp u8, u14, u18, p0
    so.a.sub.w.fp u9, u15, u19, p0
    so.b.nend u0, bfly
    halt
";

/// Checked-in SVE/NEON assembly: scalar group loop, predicated j-loop.
static SVE_TEXT: &str = "
    .include params
    li x10, GROUPS
    li x11, HALF
    li x12, SPAN
    li x14, 0
grp:
    mul x16, x14, x12
    slli x16, x16, 2
    li x20, XR
    add x21, x20, x16
    li x20, XI
    add x22, x20, x16
    li x20, XRB
    add x23, x20, x16
    li x20, XIB
    add x24, x20, x16
    li x20, YR
    add x25, x20, x16
    li x20, YI
    add x26, x20, x16
    li x20, YRB
    add x27, x20, x16
    li x20, YIB
    add x28, x20, x16
    li x20, TWR
    li x19, TWI
    li x15, 0
    whilelt.w p1, x15, x11
bfly:
    vl1.w u10, x23, x15, p1
    vl1.w u11, x24, x15, p1
    vl1.w u12, x20, x15, p1
    vl1.w u13, x19, x15, p1
    vl1.w u14, x21, x15, p1
    vl1.w u15, x22, x15, p1
    so.a.mul.w.fp u16, u12, u10, p1
    so.a.mul.w.fp u17, u13, u11, p1
    so.a.sub.w.fp u18, u16, u17, p1
    so.a.mul.w.fp u16, u12, u11, p1
    so.a.mul.w.fp u17, u13, u10, p1
    so.a.add.w.fp u19, u16, u17, p1
    so.a.add.w.fp u1, u14, u18, p1
    vs1.w u1, x25, x15, p1
    so.a.add.w.fp u1, u15, u19, p1
    vs1.w u1, x26, x15, p1
    so.a.sub.w.fp u1, u14, u18, p1
    vs1.w u1, x27, x15, p1
    so.a.sub.w.fp u1, u15, u19, p1
    vs1.w u1, x28, x15, p1
    incvl.w x15
    whilelt.w p1, x15, x11
    so.b.pfirst p1, bfly
    addi x14, x14, 1
    blt x14, x10, grp
    halt
";

/// Checked-in scalar assembly.
static SCALAR_TEXT: &str = "
    .include params
    li x10, GROUPS
    li x11, HALF
    li x12, SPAN
    li x14, 0
grp:
    mul x16, x14, x12
    slli x16, x16, 2
    li x20, XR
    add x21, x20, x16
    li x20, XI
    add x22, x20, x16
    li x20, XRB
    add x23, x20, x16
    li x20, XIB
    add x24, x20, x16
    li x20, YR
    add x25, x20, x16
    li x20, YI
    add x26, x20, x16
    li x20, YRB
    add x27, x20, x16
    li x20, YIB
    add x28, x20, x16
    li x20, TWR
    li x19, TWI
    li x15, 0
bfly:
    fld.w f1, 0(x21)
    fld.w f2, 0(x22)
    fld.w f3, 0(x23)
    fld.w f4, 0(x24)
    fld.w f5, 0(x20)
    fld.w f6, 0(x19)
    fmul.w f7, f5, f3
    fmul.w f8, f6, f4
    fsub.w f7, f7, f8
    fmul.w f8, f5, f4
    fmul.w f9, f6, f3
    fadd.w f8, f8, f9
    fadd.w f10, f1, f7
    fst.w f10, 0(x25)
    fadd.w f10, f2, f8
    fst.w f10, 0(x26)
    fsub.w f10, f1, f7
    fst.w f10, 0(x27)
    fsub.w f10, f2, f8
    fst.w f10, 0(x28)
    addi x21, x21, 4
    addi x22, x22, 4
    addi x23, x23, 4
    addi x24, x24, 4
    addi x25, x25, 4
    addi x26, x26, 4
    addi x27, x27, 4
    addi x28, x28, 4
    addi x20, x20, 4
    addi x19, x19, 4
    addi x15, x15, 1
    blt x15, x11, bfly
    addi x14, x14, 1
    blt x14, x10, grp
    halt
";

/// One radix-2 FFT butterfly stage.
#[derive(Debug, Clone, Copy)]
pub struct FftStage {
    n: usize,
    stage: u32,
}

impl FftStage {
    /// Stage `stage` (half-span `2^stage`) of an `n`-point FFT. `n` must be
    /// a power of two with at least one full group at this stage.
    pub fn new(n: usize, stage: u32) -> Self {
        assert!(n.is_power_of_two(), "FFT size must be a power of two");
        assert!(1usize << (stage + 1) <= n, "stage exceeds FFT size");
        Self { n, stage }
    }

    fn half(&self) -> usize {
        1 << self.stage
    }

    fn span(&self) -> usize {
        2 * self.half()
    }

    fn groups(&self) -> usize {
        self.n / self.span()
    }

    fn xr(&self) -> u64 {
        region(0)
    }

    fn xi(&self) -> u64 {
        region(1)
    }

    fn yr(&self) -> u64 {
        region(2)
    }

    fn yi(&self) -> u64 {
        region(3)
    }

    fn twr(&self) -> u64 {
        region(4)
    }

    fn twi(&self) -> u64 {
        region(5)
    }

    fn twiddles(&self) -> (Vec<f32>, Vec<f32>) {
        let m = self.span() as f64;
        (0..self.half())
            .map(|j| {
                let th = -2.0 * std::f64::consts::PI * j as f64 / m;
                (th.cos() as f32, th.sin() as f32)
            })
            .unzip()
    }

    fn params(&self) -> String {
        let hb = 4 * self.half() as u64;
        format!(
            ".const GROUPS {}\n.const HALF {}\n.const SPAN {}\n.const XR {}\n.const XI {}\n\
             .const XRB {}\n.const XIB {}\n.const YR {}\n.const YI {}\n.const YRB {}\n\
             .const YIB {}\n.const TWR {}\n.const TWI {}\n",
            self.groups(),
            self.half(),
            self.span(),
            self.xr(),
            self.xi(),
            self.xr() + hb,
            self.xi() + hb,
            self.yr(),
            self.yi(),
            self.yr() + hb,
            self.yi() + hb,
            self.twr(),
            self.twi()
        )
    }

    fn reference(&self) -> (Vec<f32>, Vec<f32>) {
        let (n, h, m) = (self.n, self.half(), self.span());
        let xr = gen_f32(0xD4, n);
        let xi = gen_f32(0xD5, n);
        let (twr, twi) = self.twiddles();
        let mut yr = vec![0f32; n];
        let mut yi = vec![0f32; n];
        for p in 0..self.groups() {
            let base = p * m;
            for j in 0..h {
                let (ar, ai) = (xr[base + j], xi[base + j]);
                let (br, bi) = (xr[base + h + j], xi[base + h + j]);
                let tr = twr[j] * br - twi[j] * bi;
                let ti = twr[j] * bi + twi[j] * br;
                yr[base + j] = ar + tr;
                yi[base + j] = ai + ti;
                yr[base + h + j] = ar - tr;
                yi[base + h + j] = ai - ti;
            }
        }
        (yr, yi)
    }
}

impl Benchmark for FftStage {
    fn name(&self) -> &'static str {
        "FFT-Stage"
    }

    fn domain(&self) -> &'static str {
        "wireless baseband"
    }

    fn streams(&self) -> usize {
        10
    }

    fn pattern(&self) -> &'static str {
        "2D grouped + replay"
    }

    fn program(&self, flavor: Flavor) -> Program {
        let params = self.params();
        let (name, text) = match flavor {
            Flavor::Uve => ("fft-uve", UVE_TEXT),
            Flavor::Sve | Flavor::Neon => ("fft-sve", SVE_TEXT),
            Flavor::Scalar => ("fft-scalar", SCALAR_TEXT),
        };
        asm_units(name, &[("entry", text), ("params", &params)])
    }

    fn setup(&self, emu: &mut Emulator) {
        emu.mem.write_f32_slice(self.xr(), &gen_f32(0xD4, self.n));
        emu.mem.write_f32_slice(self.xi(), &gen_f32(0xD5, self.n));
        let (twr, twi) = self.twiddles();
        emu.mem.write_f32_slice(self.twr(), &twr);
        emu.mem.write_f32_slice(self.twi(), &twi);
    }

    fn check(&self, emu: &Emulator) -> Result<(), String> {
        let (yr, yi) = self.reference();
        check_f32(emu, "yr", self.yr(), &yr, TOL)?;
        check_f32(emu, "yi", self.yi(), &yi, TOL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_checked;
    use uve_core::program_fingerprint;
    use uve_isa::{
        encode_program, Dir, ElemWidth, Inst, PReg, ProgramBuilder, StreamCond, VOp, VReg, VType,
        VUnOp, XReg,
    };

    #[test]
    fn all_flavors_correct() {
        for (n, stage) in [(64usize, 0u32), (64, 2), (128, 4)] {
            let b = FftStage::new(n, stage);
            for f in Flavor::all() {
                run_checked(&b, f).unwrap();
            }
        }
    }

    #[test]
    fn stage_zero_through_log2n_compose() {
        // Sanity of the reference construction: every legal stage runs.
        for stage in 0..5 {
            run_checked(&FftStage::new(32, stage), Flavor::Uve).unwrap();
        }
    }

    #[test]
    fn uve_text_matches_builder_twin() {
        let k = FftStage::new(256, 3);
        let x = XReg::new;
        let v = VReg::new;
        let w = ElemWidth::Word;
        let p0 = PReg::new(0);
        let fp = VType::Fp;
        let hb = 4 * k.half() as u64;

        let mut b = ProgramBuilder::new("fft-uve");
        b.li(x(10), k.groups() as i64);
        b.li(x(11), k.half() as i64);
        b.li(x(12), k.span() as i64);
        b.li(x(13), 1);
        let streams: [(u8, u64, Dir, u8); 10] = [
            (0, k.xr(), Dir::Load, 12),
            (1, k.xi(), Dir::Load, 12),
            (2, k.xr() + hb, Dir::Load, 12),
            (3, k.xi() + hb, Dir::Load, 12),
            (4, k.twr(), Dir::Load, 0),
            (5, k.twi(), Dir::Load, 0),
            (6, k.yr(), Dir::Store, 12),
            (7, k.yi(), Dir::Store, 12),
            (8, k.yr() + hb, Dir::Store, 12),
            (9, k.yi() + hb, Dir::Store, 12),
        ];
        for (u, base, dir, outer_stride) in streams {
            b.li(x(20), base as i64);
            b.push(Inst::SsStart {
                u: v(u),
                dir,
                width: w,
                base: x(20),
                size: x(11),
                stride: x(13),
                done: false,
            });
            b.push(Inst::SsApp {
                u: v(u),
                offset: x(0),
                size: x(10),
                stride: x(outer_stride),
                end: true,
            });
        }
        b.label("bfly");
        for (dst, src) in [(10u8, 2u8), (11, 3), (12, 4), (13, 5), (14, 0), (15, 1)] {
            b.push(Inst::VUn {
                op: VUnOp::Mv,
                ty: fp,
                width: w,
                vd: v(dst),
                vs: v(src),
                pred: p0,
            });
        }
        let arith = |op: VOp, vd: u8, vs1: u8, vs2: u8| Inst::VArith {
            op,
            ty: fp,
            width: w,
            vd: v(vd),
            vs1: v(vs1),
            vs2: v(vs2),
            pred: p0,
        };
        b.push(arith(VOp::Mul, 16, 12, 10));
        b.push(arith(VOp::Mul, 17, 13, 11));
        b.push(arith(VOp::Sub, 18, 16, 17));
        b.push(arith(VOp::Mul, 16, 12, 11));
        b.push(arith(VOp::Mul, 17, 13, 10));
        b.push(arith(VOp::Add, 19, 16, 17));
        b.push(arith(VOp::Add, 6, 14, 18));
        b.push(arith(VOp::Add, 7, 15, 19));
        b.push(arith(VOp::Sub, 8, 14, 18));
        b.push(arith(VOp::Sub, 9, 15, 19));
        b.stream_branch(StreamCond::NotEnd, v(0), "bfly");
        b.push(Inst::Halt);
        let twin = b.build().unwrap();

        let text = k.program(Flavor::Uve);
        assert_eq!(text, twin);
        assert_eq!(
            encode_program(&text).unwrap(),
            encode_program(&twin).unwrap()
        );
        assert_eq!(program_fingerprint(&text), program_fingerprint(&twin));
    }
}
