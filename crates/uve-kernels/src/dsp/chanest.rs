//! **ChanEst** (wireless baseband): least-squares channel estimation over a
//! pilot sequence — the complex correlation `ĥ = Σ_i y[i]·conj(p[i])` of the
//! received symbols `y` against the known pilots `p`, both stored as
//! interleaved re/im `f32` pairs.
//!
//! The UVE flavour de-interleaves with four stride-2 streams (re/im of each
//! array) and keeps two vector accumulators (real and imaginary part) live
//! across the whole sequence; the conjugation is a stream-register negate.

use crate::common::{asm_units, check_f32, gen_f32, region, TOL};
use crate::{Benchmark, Flavor};
use uve_core::Emulator;
use uve_isa::Program;

/// Checked-in UVE assembly: four stride-2 streams, dual MAC accumulators.
static UVE_TEXT: &str = "
    .include params
    li x10, NPAIRS
    li x12, 2
    li x13, 1
    li x20, YBASE
    ss.ld.w u0, x20, x10, x12
    li x20, YIMB
    ss.ld.w u1, x20, x10, x12
    li x20, PBASE
    ss.ld.w u2, x20, x10, x12
    li x20, PIMB
    ss.ld.w u3, x20, x10, x12
    li x6, 1
    li x20, OUT
    ss.st.w.sta u4, x20, x6, x13
    ss.end u4, x0, x12, x13
    so.v.dup.w.fp u8, f31
    so.v.dup.w.fp u9, f31
acc:
    so.a.mvp.w.fp u10, u0, p0
    so.a.mvp.w.fp u11, u1, p0
    so.a.mvp.w.fp u12, u2, p0
    so.a.mvp.w.fp u13, u3, p0
    so.a.mac.w.fp u8, u10, u12, p0
    so.a.mac.w.fp u8, u11, u13, p0
    so.a.mac.w.fp u9, u11, u12, p0
    so.a.neg.w.fp u14, u13, p0
    so.a.mac.w.fp u9, u10, u14, p0
    so.b.nend u0, acc
    so.a.hadd.w.fp u4, u8, p0
    so.a.hadd.w.fp u4, u9, p0
    halt
";

/// Checked-in SVE/NEON assembly: gathers through a lane-index vector
/// `{0,2,4,…}` (incremented by `2·VL` per iteration) to de-interleave.
static SVE_TEXT: &str = "
    .include params
    li x10, NPAIRS
    li x20, SCRATCH
    cntvl.w x5
    li x15, 0
bld:
    slli x16, x15, 1
    slli x17, x15, 2
    add x17, x20, x17
    st.w x16, 0(x17)
    addi x15, x15, 1
    blt x15, x5, bld
    li x15, 0
    vl1.w u9, x20, x15, p0
    slli x6, x5, 1
    li x21, YBASE
    li x22, YIMB
    li x23, PBASE
    li x24, PIMB
    so.v.dup.w.fp u4, f31
    so.v.dup.w.fp u6, f31
    li x14, 0
    whilelt.w p1, x14, x10
acc:
    vgather.w u1, x21, u9, p1
    vgather.w u2, x22, u9, p1
    vgather.w u3, x23, u9, p1
    vgather.w u5, x24, u9, p1
    so.a.mac.w.fp u4, u1, u3, p1
    so.a.mac.w.fp u4, u2, u5, p1
    so.a.mac.w.fp u6, u2, u3, p1
    so.a.neg.w.fp u7, u5, p1
    so.a.mac.w.fp u6, u1, u7, p1
    so.a.add.vs.w.sg u9, u9, x6, p0
    incvl.w x14
    whilelt.w p1, x14, x10
    so.b.pfirst p1, acc
    li x20, OUT
    so.a.hadd.w.fp u8, u4, p0
    so.v.extr.f.w f2, u8[0]
    fst.w f2, 0(x20)
    so.a.hadd.w.fp u8, u6, p0
    so.v.extr.f.w f2, u8[0]
    fst.w f2, 4(x20)
    halt
";

/// Checked-in scalar assembly.
static SCALAR_TEXT: &str = "
    .include params
    li x10, NPAIRS
    li x21, YBASE
    li x23, PBASE
    fmv.w f5, f31
    fmv.w f6, f31
    li x15, 0
acc:
    fld.w f1, 0(x21)
    fld.w f2, 4(x21)
    fld.w f3, 0(x23)
    fld.w f4, 4(x23)
    fmadd.w f5, f1, f3, f5
    fmadd.w f5, f2, f4, f5
    fmadd.w f6, f2, f3, f6
    fneg.w f4, f4
    fmadd.w f6, f1, f4, f6
    addi x21, x21, 8
    addi x23, x23, 8
    addi x15, x15, 1
    blt x15, x10, acc
    li x20, OUT
    fst.w f5, 0(x20)
    fst.w f6, 4(x20)
    halt
";

/// The channel-estimation kernel.
#[derive(Debug, Clone, Copy)]
pub struct ChanEst {
    npairs: usize,
}

impl ChanEst {
    /// Correlates `npairs` complex samples against `npairs` complex pilots.
    pub fn new(npairs: usize) -> Self {
        assert!(npairs > 0);
        Self { npairs }
    }

    fn y(&self) -> u64 {
        region(0)
    }

    fn p(&self) -> u64 {
        region(1)
    }

    fn out(&self) -> u64 {
        region(2)
    }

    fn scratch(&self) -> u64 {
        region(3)
    }

    fn params(&self) -> String {
        format!(
            ".const NPAIRS {}\n.const YBASE {}\n.const YIMB {}\n.const PBASE {}\n\
             .const PIMB {}\n.const OUT {}\n.const SCRATCH {}\n",
            self.npairs,
            self.y(),
            self.y() + 4,
            self.p(),
            self.p() + 4,
            self.out(),
            self.scratch()
        )
    }

    fn reference(&self) -> [f32; 2] {
        let n = self.npairs;
        let y = gen_f32(0xD2, 2 * n);
        let p = gen_f32(0xD3, 2 * n);
        let (mut re, mut im) = (0f32, 0f32);
        for i in 0..n {
            let (yr, yi) = (y[2 * i], y[2 * i + 1]);
            let (pr, pi) = (p[2 * i], p[2 * i + 1]);
            re += yr * pr + yi * pi;
            im += yi * pr - yr * pi;
        }
        [re, im]
    }
}

impl Benchmark for ChanEst {
    fn name(&self) -> &'static str {
        "ChanEst"
    }

    fn domain(&self) -> &'static str {
        "wireless baseband"
    }

    fn streams(&self) -> usize {
        5
    }

    fn pattern(&self) -> &'static str {
        "1D strided (complex)"
    }

    fn program(&self, flavor: Flavor) -> Program {
        let params = self.params();
        let (name, text) = match flavor {
            Flavor::Uve => ("chanest-uve", UVE_TEXT),
            Flavor::Sve | Flavor::Neon => ("chanest-sve", SVE_TEXT),
            Flavor::Scalar => ("chanest-scalar", SCALAR_TEXT),
        };
        asm_units(name, &[("entry", text), ("params", &params)])
    }

    fn setup(&self, emu: &mut Emulator) {
        emu.mem
            .write_f32_slice(self.y(), &gen_f32(0xD2, 2 * self.npairs));
        emu.mem
            .write_f32_slice(self.p(), &gen_f32(0xD3, 2 * self.npairs));
    }

    fn check(&self, emu: &Emulator) -> Result<(), String> {
        check_f32(emu, "h", self.out(), &self.reference(), TOL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_checked;
    use uve_core::program_fingerprint;
    use uve_isa::{
        encode_program, Dir, DupSrc, ElemWidth, FReg, HorizOp, Inst, PReg, ProgramBuilder,
        StreamCond, VReg, VType, VUnOp, XReg,
    };

    #[test]
    fn all_flavors_correct() {
        for n in [64usize, 37] {
            let b = ChanEst::new(n);
            for f in Flavor::all() {
                run_checked(&b, f).unwrap();
            }
        }
    }

    #[test]
    fn uve_text_matches_builder_twin() {
        let k = ChanEst::new(256);
        let x = XReg::new;
        let v = VReg::new;
        let w = ElemWidth::Word;
        let p0 = PReg::new(0);
        let fp = VType::Fp;

        let mut b = ProgramBuilder::new("chanest-uve");
        b.li(x(10), k.npairs as i64);
        b.li(x(12), 2);
        b.li(x(13), 1);
        for (i, base) in [k.y(), k.y() + 4, k.p(), k.p() + 4].into_iter().enumerate() {
            b.li(x(20), base as i64);
            b.push(Inst::SsStart {
                u: v(i as u8),
                dir: Dir::Load,
                width: w,
                base: x(20),
                size: x(10),
                stride: x(12),
                done: true,
            });
        }
        b.li(x(6), 1);
        b.li(x(20), k.out() as i64);
        b.push(Inst::SsStart {
            u: v(4),
            dir: Dir::Store,
            width: w,
            base: x(20),
            size: x(6),
            stride: x(13),
            done: false,
        });
        b.push(Inst::SsApp {
            u: v(4),
            offset: x(0),
            size: x(12),
            stride: x(13),
            end: true,
        });
        for acc in [8u8, 9] {
            b.push(Inst::VDup {
                vd: v(acc),
                src: DupSrc::F(FReg::new(31)),
                width: w,
                ty: fp,
            });
        }
        b.label("acc");
        for (dst, src) in [(10u8, 0u8), (11, 1), (12, 2), (13, 3)] {
            b.push(Inst::VUn {
                op: VUnOp::Mv,
                ty: fp,
                width: w,
                vd: v(dst),
                vs: v(src),
                pred: p0,
            });
        }
        let mac = |vd: u8, vs1: u8, vs2: u8| Inst::VMac {
            ty: fp,
            width: w,
            vd: v(vd),
            vs1: v(vs1),
            vs2: v(vs2),
            pred: p0,
        };
        b.push(mac(8, 10, 12));
        b.push(mac(8, 11, 13));
        b.push(mac(9, 11, 12));
        b.push(Inst::VUn {
            op: VUnOp::Neg,
            ty: fp,
            width: w,
            vd: v(14),
            vs: v(13),
            pred: p0,
        });
        b.push(mac(9, 10, 14));
        b.stream_branch(StreamCond::NotEnd, v(0), "acc");
        for acc in [8u8, 9] {
            b.push(Inst::VRed {
                op: HorizOp::Add,
                ty: fp,
                width: w,
                vd: v(4),
                vs: v(acc),
                pred: p0,
            });
        }
        b.push(Inst::Halt);
        let twin = b.build().unwrap();

        let text = k.program(Flavor::Uve);
        assert_eq!(text, twin);
        assert_eq!(
            encode_program(&text).unwrap(),
            encode_program(&twin).unwrap()
        );
        assert_eq!(program_fingerprint(&text), program_fingerprint(&twin));
    }
}
