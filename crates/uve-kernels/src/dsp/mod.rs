//! Wireless-baseband DSP kernel family (FIR, channel estimation, FFT),
//! following *"Unlimited Vector Processing for Wireless Baseband"*
//! (arXiv:2504.10832).
//!
//! Unlike the 19 paper kernels (built from `format!`-interpolated strings),
//! every kernel in this family is authored as **checked-in `.uve` assembly
//! text**: a `&'static str` body that `.include`s a generated `.const`
//! parameter unit and is assembled through [`assemble_units`] at
//! registration. The textual assembler front end is load-bearing here — each
//! kernel's test suite asserts the text assembles byte-identical (encoded
//! words and fingerprint) to a [`ProgramBuilder`]-built twin.
//!
//! [`assemble_units`]: uve_isa::assemble_units
//! [`ProgramBuilder`]: uve_isa::ProgramBuilder

pub mod chanest;
pub mod fft;
pub mod fir;

pub use chanest::ChanEst;
pub use fft::FftStage;
pub use fir::Fir;

use crate::Benchmark;

/// The DSP family at its default evaluation sizes.
pub fn suite() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(Fir::new(96, 16)),
        Box::new(ChanEst::new(256)),
        Box::new(FftStage::new(256, 3)),
    ]
}
