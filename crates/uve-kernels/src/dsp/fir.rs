//! **FIR** (wireless baseband): `n`-output finite-impulse-response filter in
//! correlation form, `y[i] = Σ_k x[i+k]·h[k]` for `taps` coefficients.
//!
//! The UVE flavour streams the sliding input window as a 2-D descriptor
//! (`dim0 = taps, dim1` slides by one element per output) and replays the
//! coefficient vector with a stride-0 outer dimension — no scalar address
//! arithmetic in the loop at all.

use crate::common::{asm_units, check_f32, gen_f32, region, TOL};
use crate::{Benchmark, Flavor};
use uve_core::Emulator;
use uve_isa::Program;

/// Checked-in UVE assembly: the sliding-window MAC loop.
static UVE_TEXT: &str = "
    .include params
    li x10, N
    li x11, TAPS
    li x13, 1
    li x20, XBASE
    ss.ld.w.sta u0, x20, x11, x13
    ss.end u0, x0, x10, x13
    li x20, HBASE
    ss.ld.w.sta u1, x20, x11, x13
    ss.end u1, x0, x10, x0
    li x6, 1
    li x20, YBASE
    ss.st.w.sta u2, x20, x6, x13
    ss.end u2, x0, x10, x13
row:
    so.v.dup.w.fp u4, f31
chunk:
    so.a.mac.w.fp u4, u0, u1, p0
    so.b.dim0.nend u0, chunk
    so.a.hadd.w.fp u2, u4, p0
    so.b.nend u0, row
    halt
";

/// Checked-in SVE/NEON assembly: per-output predicated MAC over the taps.
static SVE_TEXT: &str = "
    .include params
    li x10, N
    li x11, TAPS
    li x22, YBASE
    li x14, 0
row:
    so.v.dup.w.fp u4, f31
    slli x16, x14, 2
    li x20, XBASE
    add x16, x20, x16
    li x21, HBASE
    li x15, 0
    whilelt.w p1, x15, x11
chunk:
    vl1.w u1, x16, x15, p1
    vl1.w u2, x21, x15, p1
    so.a.mac.w.fp u4, u1, u2, p1
    incvl.w x15
    whilelt.w p1, x15, x11
    so.b.pfirst p1, chunk
    so.a.hadd.w.fp u5, u4, p0
    so.v.extr.f.w f1, u5[0]
    slli x17, x14, 2
    add x17, x22, x17
    fst.w f1, 0(x17)
    addi x14, x14, 1
    blt x14, x10, row
    halt
";

/// Checked-in scalar assembly.
static SCALAR_TEXT: &str = "
    .include params
    li x10, N
    li x11, TAPS
    li x22, YBASE
    li x14, 0
row:
    fmv.w f2, f31
    slli x16, x14, 2
    li x20, XBASE
    add x16, x20, x16
    li x21, HBASE
    li x15, 0
tap:
    fld.w f3, 0(x16)
    fld.w f4, 0(x21)
    fmadd.w f2, f3, f4, f2
    addi x16, x16, 4
    addi x21, x21, 4
    addi x15, x15, 1
    blt x15, x11, tap
    slli x17, x14, 2
    add x17, x22, x17
    fst.w f2, 0(x17)
    addi x14, x14, 1
    blt x14, x10, row
    halt
";

/// The FIR kernel.
#[derive(Debug, Clone, Copy)]
pub struct Fir {
    n: usize,
    taps: usize,
}

impl Fir {
    /// `n` outputs filtered through `taps` coefficients (the input signal
    /// has `n + taps - 1` samples).
    pub fn new(n: usize, taps: usize) -> Self {
        assert!(n > 0 && taps > 0);
        Self { n, taps }
    }

    fn x(&self) -> u64 {
        region(0)
    }

    fn h(&self) -> u64 {
        region(1)
    }

    fn y(&self) -> u64 {
        region(2)
    }

    fn params(&self) -> String {
        format!(
            ".const N {}\n.const TAPS {}\n.const XBASE {}\n.const HBASE {}\n.const YBASE {}\n",
            self.n,
            self.taps,
            self.x(),
            self.h(),
            self.y()
        )
    }

    fn reference(&self) -> Vec<f32> {
        let (n, t) = (self.n, self.taps);
        let x = gen_f32(0xD0, n + t - 1);
        let h = gen_f32(0xD1, t);
        (0..n)
            .map(|i| (0..t).map(|k| x[i + k] * h[k]).sum())
            .collect()
    }
}

impl Benchmark for Fir {
    fn name(&self) -> &'static str {
        "FIR"
    }

    fn domain(&self) -> &'static str {
        "wireless baseband"
    }

    fn streams(&self) -> usize {
        3
    }

    fn pattern(&self) -> &'static str {
        "2D sliding window"
    }

    fn program(&self, flavor: Flavor) -> Program {
        let params = self.params();
        let text = match flavor {
            Flavor::Uve => UVE_TEXT,
            Flavor::Sve | Flavor::Neon => SVE_TEXT,
            Flavor::Scalar => SCALAR_TEXT,
        };
        let name = match flavor {
            Flavor::Uve => "fir-uve",
            Flavor::Sve | Flavor::Neon => "fir-sve",
            Flavor::Scalar => "fir-scalar",
        };
        asm_units(name, &[("entry", text), ("params", &params)])
    }

    fn setup(&self, emu: &mut Emulator) {
        emu.mem
            .write_f32_slice(self.x(), &gen_f32(0xD0, self.n + self.taps - 1));
        emu.mem.write_f32_slice(self.h(), &gen_f32(0xD1, self.taps));
    }

    fn check(&self, emu: &Emulator) -> Result<(), String> {
        check_f32(emu, "y", self.y(), &self.reference(), TOL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_checked;
    use uve_core::program_fingerprint;
    use uve_isa::{
        encode_program, Dir, DupSrc, ElemWidth, FReg, Inst, PReg, ProgramBuilder, StreamCond, VReg,
        VType, XReg,
    };

    #[test]
    fn all_flavors_correct() {
        for (n, taps) in [(32usize, 8usize), (19, 7)] {
            let b = Fir::new(n, taps);
            for f in Flavor::all() {
                run_checked(&b, f).unwrap();
            }
        }
    }

    /// The checked-in `.uve` text must assemble byte-identical to a program
    /// built directly through the `ProgramBuilder` API.
    #[test]
    fn uve_text_matches_builder_twin() {
        let k = Fir::new(96, 16);
        let x = XReg::new;
        let v = VReg::new;
        let w = ElemWidth::Word;
        let p0 = PReg::new(0);

        let mut b = ProgramBuilder::new("fir-uve");
        b.li(x(10), k.n as i64);
        b.li(x(11), k.taps as i64);
        b.li(x(13), 1);
        b.li(x(20), k.x() as i64);
        b.push(Inst::SsStart {
            u: v(0),
            dir: Dir::Load,
            width: w,
            base: x(20),
            size: x(11),
            stride: x(13),
            done: false,
        });
        b.push(Inst::SsApp {
            u: v(0),
            offset: x(0),
            size: x(10),
            stride: x(13),
            end: true,
        });
        b.li(x(20), k.h() as i64);
        b.push(Inst::SsStart {
            u: v(1),
            dir: Dir::Load,
            width: w,
            base: x(20),
            size: x(11),
            stride: x(13),
            done: false,
        });
        b.push(Inst::SsApp {
            u: v(1),
            offset: x(0),
            size: x(10),
            stride: x(0),
            end: true,
        });
        b.li(x(6), 1);
        b.li(x(20), k.y() as i64);
        b.push(Inst::SsStart {
            u: v(2),
            dir: Dir::Store,
            width: w,
            base: x(20),
            size: x(6),
            stride: x(13),
            done: false,
        });
        b.push(Inst::SsApp {
            u: v(2),
            offset: x(0),
            size: x(10),
            stride: x(13),
            end: true,
        });
        b.label("row");
        b.push(Inst::VDup {
            vd: v(4),
            src: DupSrc::F(FReg::new(31)),
            width: w,
            ty: VType::Fp,
        });
        b.label("chunk");
        b.push(Inst::VMac {
            ty: VType::Fp,
            width: w,
            vd: v(4),
            vs1: v(0),
            vs2: v(1),
            pred: p0,
        });
        b.stream_branch(StreamCond::DimNotEnd(0), v(0), "chunk");
        b.push(Inst::VRed {
            op: uve_isa::HorizOp::Add,
            ty: VType::Fp,
            width: w,
            vd: v(2),
            vs: v(4),
            pred: p0,
        });
        b.stream_branch(StreamCond::NotEnd, v(0), "row");
        b.push(Inst::Halt);
        let twin = b.build().unwrap();

        let text = k.program(Flavor::Uve);
        assert_eq!(text, twin);
        assert_eq!(
            encode_program(&text).unwrap(),
            encode_program(&twin).unwrap()
        );
        assert_eq!(program_fingerprint(&text), program_fingerprint(&twin));
    }
}
