//! Benchmark F — **MVT** (algebra, Polybench):
//! `x1 = x1 + A·y1` and `x2 = x2 + Aᵀ·y2`.
//!
//! The transposed pass showcases the Streaming Engine's scatter-gather
//! linearization (feature F3): the UVE code for both passes is identical
//! except for the descriptor strides — column-major access is just a
//! different `{O,E,S}` tuple.

use crate::common::{asm, check_f32, gen_f32, region, TOL};
use crate::{Benchmark, Flavor};
use uve_core::Emulator;
use uve_isa::Program;

/// The MVT kernel.
#[derive(Debug, Clone, Copy)]
pub struct Mvt {
    n: usize,
}

impl Mvt {
    /// `A` is `n×n`.
    pub fn new(n: usize) -> Self {
        Self { n }
    }

    fn a(&self) -> u64 {
        region(0)
    }

    fn x1(&self) -> u64 {
        region(1)
    }

    fn x2(&self) -> u64 {
        region(2)
    }

    fn y1(&self) -> u64 {
        region(3)
    }

    fn y2(&self) -> u64 {
        region(4)
    }

    fn reference(&self) -> (Vec<f32>, Vec<f32>) {
        let n = self.n;
        let a = gen_f32(0xF0, n * n);
        let mut x1 = gen_f32(0xF1, n);
        let mut x2 = gen_f32(0xF2, n);
        let y1 = gen_f32(0xF3, n);
        let y2 = gen_f32(0xF4, n);
        for i in 0..n {
            for j in 0..n {
                x1[i] += a[i * n + j] * y1[j];
            }
        }
        for i in 0..n {
            for j in 0..n {
                x2[i] += a[j * n + i] * y2[j];
            }
        }
        (x1, x2)
    }

    /// One UVE pass: per row/column of `A`, a dot product with `y`
    /// accumulated into one element of `x`. `d0_stride`/`d1_stride` select
    /// row-major (1, n) or column-major (n, 1) traversal.
    fn uve_pass(
        &self,
        tag: usize,
        a_d0_stride: usize,
        a_d1_stride: usize,
        x: u64,
        y: u64,
    ) -> String {
        let n = self.n;
        let a = self.a();
        format!(
            "
    li x10, {n}
    li x11, {a}
    li x12, {x}
    li x9, {y}
    li x13, 1
    li x7, {a_d0_stride}
    li x8, {a_d1_stride}
    ; A: per i, one row/column
    ss.ld.w.sta u0, x11, x10, x7
    ss.end u0, x0, x10, x8
    ; y: re-read per i
    ss.ld.w.sta u1, x9, x10, x13
    ss.end u1, x0, x10, x0
    ; x in/out: one element per i
    li x6, 1
    ss.ld.w.sta u2, x12, x6, x13
    ss.end u2, x0, x10, x13
    ss.st.w.sta u3, x12, x6, x13
    ss.end u3, x0, x10, x13
row{tag}:
    so.v.dup.w.fp u4, f31
dot{tag}:
    so.a.mac.w.fp u4, u0, u1, p0
    so.b.dim0.nend u0, dot{tag}
    so.a.hadd.w.fp u5, u4, p0
    so.a.add.w.fp u3, u5, u2, p0
    so.b.nend u0, row{tag}
"
        )
    }

    /// SVE row-major pass (dot product per row, horizontal add at the end).
    fn sve_pass1(&self) -> String {
        let n = self.n;
        let (a, x1, y1) = (self.a(), self.x1(), self.y1());
        format!(
            "
    li x10, {n}
    li x20, {a}
    li x21, {x1}
    li x22, {y1}
    li x14, 0
p1row:
    so.v.dup.w.fp u4, f31
    li x15, 0
    whilelt.w p1, x15, x10
    mul x16, x14, x10
    slli x16, x16, 2
    add x16, x20, x16
p1dot:
    vl1.w u1, x16, x15, p1
    vl1.w u2, x22, x15, p1
    so.a.mac.w.fp u4, u1, u2, p1
    incvl.w x15
    whilelt.w p1, x15, x10
    so.b.pfirst p1, p1dot
    so.a.hadd.w.fp u5, u4, p0
    so.v.extr.f.w f1, u5[0]
    slli x17, x14, 2
    add x17, x21, x17
    fld.w f2, 0(x17)
    fadd.w f2, f2, f1
    fst.w f2, 0(x17)
    addi x14, x14, 1
    blt x14, x10, p1row
"
        )
    }

    /// SVE transposed pass as an auto-vectorizer would emit it: the inner
    /// `j` loop is vectorized with *gather* loads of the strided column
    /// `A[j][i]` (loop interchange is not an `-O3` transform), using an
    /// index vector `[0, n, 2n, …]` built once in the preamble.
    fn sve_pass2(&self) -> String {
        let n = self.n;
        let (a, x2, y2) = (self.a(), self.x2(), self.y2());
        let scratch = crate::common::region(5);
        format!(
            "
    li x10, {n}
    li x20, {scratch}
    cntvl.w x5
    li x15, 0
bld2:
    mul x16, x15, x10
    slli x17, x15, 2
    add x17, x20, x17
    st.w x16, 0(x17)
    addi x15, x15, 1
    blt x15, x5, bld2
    li x15, 0
    vl1.w u9, x20, x15, p0 ; gather indices l*n
    li x21, {x2}
    li x22, {y2}
    li x14, 0              ; i
p2row:
    so.v.dup.w.fp u4, f31
    li x15, 0              ; j
    whilelt.w p1, x15, x10
p2dot:
    mul x16, x15, x10
    add x16, x16, x14
    slli x16, x16, 2
    li x17, {a}
    add x16, x17, x16      ; &A[j][i]
    vgather.w u1, x16, u9, p1
    vl1.w u2, x22, x15, p1
    so.a.mac.w.fp u4, u1, u2, p1
    incvl.w x15
    whilelt.w p1, x15, x10
    so.b.pfirst p1, p2dot
    so.a.hadd.w.fp u5, u4, p0
    so.v.extr.f.w f1, u5[0]
    slli x17, x14, 2
    add x17, x21, x17
    fld.w f2, 0(x17)
    fadd.w f2, f2, f1
    fst.w f2, 0(x17)
    addi x14, x14, 1
    blt x14, x10, p2row
"
        )
    }

    fn scalar_pass(&self, tag: usize, row_major: bool, x: u64, y: u64) -> String {
        let n = self.n;
        let a = self.a();
        let (d0, d1) = if row_major { (4, 4 * n) } else { (4 * n, 4) };
        format!(
            "
    li x10, {n}
    li x20, {a}
    li x21, {x}
    li x22, {y}
    li x14, 0
row{tag}:
    fmv.w f2, f31
    li x15, 0
    li x18, {d1}
    mul x16, x14, x18
    add x16, x20, x16      ; &A[i][0] / &A[0][i]
    li x17, 0              ; y offset
sdot{tag}:
    fld.w f3, 0(x16)
    add x19, x22, x17
    fld.w f4, 0(x19)
    fmadd.w f2, f3, f4, f2
    addi x16, x16, {d0}
    addi x17, x17, 4
    addi x15, x15, 1
    blt x15, x10, sdot{tag}
    slli x17, x14, 2
    add x17, x21, x17
    fld.w f5, 0(x17)
    fadd.w f5, f5, f2
    fst.w f5, 0(x17)
    addi x14, x14, 1
    blt x14, x10, row{tag}
"
        )
    }
}

impl Benchmark for Mvt {
    fn streams(&self) -> usize {
        4
    }

    fn pattern(&self) -> &'static str {
        "2D"
    }

    fn name(&self) -> &'static str {
        "MVT"
    }

    fn domain(&self) -> &'static str {
        "algebra"
    }

    fn program(&self, flavor: Flavor) -> Program {
        let n = self.n;
        let mut text = String::new();
        match flavor {
            Flavor::Uve => {
                text.push_str(&self.uve_pass(0, 1, n, self.x1(), self.y1()));
                text.push_str(&self.uve_pass(1, n, 1, self.x2(), self.y2()));
            }
            Flavor::Sve | Flavor::Neon => {
                text.push_str(&self.sve_pass1());
                text.push_str(&self.sve_pass2());
            }
            Flavor::Scalar => {
                text.push_str(&self.scalar_pass(0, true, self.x1(), self.y1()));
                text.push_str(&self.scalar_pass(1, false, self.x2(), self.y2()));
            }
        }
        text.push_str("    halt\n");
        asm("mvt", &text)
    }

    fn setup(&self, emu: &mut Emulator) {
        let n = self.n;
        emu.mem.write_f32_slice(self.a(), &gen_f32(0xF0, n * n));
        emu.mem.write_f32_slice(self.x1(), &gen_f32(0xF1, n));
        emu.mem.write_f32_slice(self.x2(), &gen_f32(0xF2, n));
        emu.mem.write_f32_slice(self.y1(), &gen_f32(0xF3, n));
        emu.mem.write_f32_slice(self.y2(), &gen_f32(0xF4, n));
    }

    fn check(&self, emu: &Emulator) -> Result<(), String> {
        let (x1, x2) = self.reference();
        check_f32(emu, "x1", self.x1(), &x1, TOL)?;
        check_f32(emu, "x2", self.x2(), &x2, TOL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_checked;

    #[test]
    fn all_flavors_correct() {
        for n in [32usize, 21] {
            let b = Mvt::new(n);
            for f in Flavor::all() {
                run_checked(&b, f).unwrap();
            }
        }
    }

    #[test]
    fn transposed_pass_touches_many_lines_per_chunk() {
        // Column-major chunks of the UVE transposed pass hit one line per
        // element (scatter-gather linearization, feature F3).
        let b = Mvt::new(32);
        let r = run_checked(&b, Flavor::Uve).unwrap();
        let col_stream = &r.result.trace.streams[4]; // pass 2's A stream
        let first_chunk = &col_stream.chunks[0];
        assert!(first_chunk.lines.len() >= first_chunk.valid as usize / 2);
    }
}
