//! Descriptor-based memory access pattern model for the Unlimited Vector
//! Extension (UVE).
//!
//! This crate implements Section II of *"Unlimited Vector Extension with Data
//! Streaming Support"* (ISCA 2021): a stream is a predictable n-dimensional
//! sequence of addresses described by hierarchically cascaded descriptors
//! `{offset, size, stride}`, optionally refined by *static modifiers*
//! `{target, behaviour, displacement, size}` and *indirect modifiers*
//! `{target, behaviour, origin stream}`.
//!
//! The central types are:
//!
//! - [`Pattern`]: a validated n-dimensional access pattern (built with
//!   [`PatternBuilder`]),
//! - [`Walker`]: an iterator over the exact byte addresses of a pattern,
//!   reporting end-of-dimension boundaries,
//! - [`VectorWalker`]: groups elements into vector-register-sized chunks.
//!   Affine chunks never cross an innermost-dimension boundary (the paper's
//!   automatic padding rule); indirectly modified streams pack gathered
//!   elements to full vector width by default, tunable via
//!   [`IndirectPacking`],
//! - [`StreamMemory`]: the minimal memory interface needed to resolve
//!   indirect (data-dependent) patterns.
//!
//! # Example
//!
//! A row scan of a `4×8` row-major `f32` matrix starting at address `0x1000`:
//!
//! ```rust
//! use uve_stream::{ElemWidth, Pattern, Walker, NoMemory};
//!
//! # fn main() -> Result<(), uve_stream::PatternError> {
//! let pattern = Pattern::builder(0x1000, ElemWidth::Word)
//!     .dim(0, 8, 1)   // innermost: 8 consecutive elements
//!     .dim(0, 4, 8)   // outermost: 4 rows, stride = row length
//!     .build()?;
//! let addrs: Vec<u64> = Walker::new(&pattern)
//!     .iter(&NoMemory)
//!     .map(|e| e.addr)
//!     .collect();
//! assert_eq!(addrs.len(), 32);
//! assert_eq!(addrs[0], 0x1000);
//! assert_eq!(addrs[8], 0x1000 + 8 * 4); // second row
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod pattern;
mod state;
mod walker;

pub use pattern::{
    Behaviour, Dim, ElemWidth, IndirectBehaviour, IndirectMod, Param, Pattern, PatternBuilder,
    PatternError, StaticMod, MAX_DIMS, MAX_MODIFIERS,
};
pub use state::{SavedWalker, StateSizeReport};
pub use walker::{Elem, EndFlags, IndirectPacking, VecChunk, VectorWalker, Walker, WalkerIter};

/// Minimal read-only memory interface used to resolve indirect modifiers.
///
/// Indirect patterns (`B[A[i]]`) need the *data* of an origin stream to
/// compute target addresses; implementors provide little-endian loads of the
/// elementary UVE data types. `uve-mem`'s memory implements this trait.
pub trait StreamMemory {
    /// Loads a sign-extended value of `width` bytes from byte address `addr`.
    fn load(&self, addr: u64, width: ElemWidth) -> i64;
}

/// A [`StreamMemory`] that holds no data; every load returns zero.
///
/// Useful for walking purely affine patterns, which never read memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoMemory;

impl StreamMemory for NoMemory {
    fn load(&self, _addr: u64, _width: ElemWidth) -> i64 {
        0
    }
}

impl<M: StreamMemory + ?Sized> StreamMemory for &M {
    fn load(&self, addr: u64, width: ElemWidth) -> i64 {
        (**self).load(addr, width)
    }
}

/// A [`StreamMemory`] backed by a slice of `i64` element indices.
///
/// Address `a` maps to `values[a / width]`; convenient for tests and for
/// building indirect patterns over synthetic index tables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SliceMemory {
    values: Vec<i64>,
}

impl SliceMemory {
    /// Creates a memory whose element `i` (at byte address `i * width`) is
    /// `values[i]`, for any `width` used on loads.
    pub fn new(values: Vec<i64>) -> Self {
        Self { values }
    }
}

impl StreamMemory for SliceMemory {
    fn load(&self, addr: u64, width: ElemWidth) -> i64 {
        let idx = (addr / width.bytes() as u64) as usize;
        self.values.get(idx).copied().unwrap_or(0)
    }
}
